// Readingclub tours the extensions this library implements beyond the
// paper's core algorithm, on the Figure-1 books graph:
//
//   - a group Why-Not question ("why nothing from my fantasy list?"),
//
//   - a category question ("why nothing from the Fantasy shelf?"),
//
//   - the Combined add/remove mode on a question the pure modes miss,
//
//   - a top-k placement question ("I just want it in my top 3"),
//
//   - per-action score contributions (why IS Python on top?).
//
//     go run ./examples/readingclub
package main

import (
	"errors"
	"fmt"
	"log"

	emigre "github.com/why-not-xai/emigre"
)

func main() {
	books, err := emigre.NewBooks()
	if err != nil {
		log.Fatal(err)
	}
	g := books.Graph
	cfg := emigre.DefaultRecommenderConfig(books.Types.Item)
	cfg.Beta = 1
	rec, err := emigre.NewRecommender(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ex := emigre.NewExplainer(g, rec, emigre.Options{
		AllowedEdgeTypes: books.ActionEdgeTypes(),
		AddEdgeType:      books.Types.Rated,
	})

	fmt.Println("=== Why IS Python the recommendation? (score contributions) ===")
	top, err := rec.Recommend(books.Paul)
	if err != nil {
		log.Fatal(err)
	}
	contribs, err := rec.Contributions(books.Paul, top)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range contribs {
		fmt.Printf("  via %-24s transition %.3f × endorsement %.4f = share %.5f\n",
			g.Label(c.Edge.To), c.Transition, c.Target, c.Share)
	}

	fmt.Println("\n=== Group question: why nothing from my fantasy wishlist? ===")
	group := emigre.GroupQuery{
		User:  books.Paul,
		Items: []emigre.NodeID{books.HarryPotter, books.TheHobbit},
	}
	expl, err := ex.ExplainGroup(group, emigre.Add, emigre.Powerset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n  (promoted member: %s)\n", expl.Describe(g), g.Label(expl.NewTop))

	fmt.Println("\n=== Category question: why nothing from the Fantasy shelf? ===")
	expl, err = ex.ExplainCategory(books.Paul, books.Fantasy, 0, emigre.Add, emigre.Powerset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n", expl.Describe(g))

	fmt.Println("\n=== Combined mode on a question Remove mode cannot answer ===")
	q := emigre.Query{User: books.Paul, WNI: books.TheHobbit}
	if _, err := ex.ExplainWith(q, emigre.Remove, emigre.Exhaustive); errors.Is(err, emigre.ErrNoExplanation) {
		fmt.Println("  remove mode: no explanation (as expected)")
	}
	expl, err = ex.ExplainWith(q, emigre.Combined, emigre.Exhaustive)
	if err != nil {
		fmt.Printf("  combined mode: %v\n", err)
	} else {
		fmt.Printf("  combined mode: %s\n", expl.Describe(g))
	}

	fmt.Println("\n=== Relaxed rank: just put The Hobbit in my top 3 ===")
	relaxed := emigre.NewExplainer(g, rec, emigre.Options{
		AllowedEdgeTypes: books.ActionEdgeTypes(),
		AddEdgeType:      books.Types.Rated,
		TargetRank:       3,
	})
	expl, err = relaxed.ExplainWith(q, emigre.Add, emigre.Powerset)
	if err != nil {
		fmt.Printf("  %v\n", err)
	} else {
		fmt.Printf("  %d edge(s) suffice for a top-3 spot: %s\n", expl.Size(), expl.Describe(g))
	}

	fmt.Println("\n=== Diagnosis of an unanswerable Remove-mode question ===")
	d, err := ex.Diagnose(q, emigre.Remove)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s: %s\n", d.Kind, d.Detail)
}
