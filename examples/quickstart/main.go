// Quickstart: ask one Why-Not question on the paper's running-example
// books graph and print the counterfactual explanations in both modes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	emigre "github.com/why-not-xai/emigre"
)

func main() {
	// The Figure-1 graph: Paul read Candide and C, follows two other
	// readers, and is recommended Python.
	books, err := emigre.NewBooks()
	if err != nil {
		log.Fatal(err)
	}

	cfg := emigre.DefaultRecommenderConfig(books.Types.Item)
	cfg.Beta = 1 // plain weighted walk for the toy graph
	rec, err := emigre.NewRecommender(books.Graph, cfg)
	if err != nil {
		log.Fatal(err)
	}

	top, err := rec.Recommend(books.Paul)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Paul's recommendation: %s\n", books.Graph.Label(top))
	fmt.Printf("Paul asks: why not %s?\n\n", books.Graph.Label(books.HarryPotter))

	ex := emigre.NewExplainer(books.Graph, rec, emigre.Options{
		AllowedEdgeTypes: books.ActionEdgeTypes(), // only reading actions
		AddEdgeType:      books.Types.Rated,
	})
	query := emigre.Query{User: books.Paul, WNI: books.HarryPotter}

	// Remove mode: which past actions caused the miss?
	removal, err := ex.ExplainWith(query, emigre.Remove, emigre.Powerset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Remove mode:", removal.Describe(books.Graph))

	// Add mode: which new action would fix it?
	addition, err := ex.ExplainWith(query, emigre.Add, emigre.Powerset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Add mode:  ", addition.Describe(books.Graph))
}
