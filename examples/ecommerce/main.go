// Ecommerce runs EMiGRe on a synthetic Amazon-like store: it generates
// the dataset with the paper's preprocessing pipeline, picks a handful
// of shoppers, and compares all eight method configurations of §6.2 on
// their Why-Not questions, printing the paper's figures for the
// mini-evaluation.
//
//	go run ./examples/ecommerce [-users N] [-scenarios M]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	emigre "github.com/why-not-xai/emigre"
)

func main() {
	users := flag.Int("users", 6, "number of shoppers to evaluate")
	scenarios := flag.Int("scenarios", 2, "Why-Not questions per shopper")
	flag.Parse()

	fmt.Println("Generating the synthetic store (small scale)...")
	ds, err := emigre.GenerateDataset(emigre.SmallDatasetConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Store graph: %d nodes, %d directed edges\n\n",
		ds.Graph.NumNodes(), ds.Graph.NumEdges())

	cfg := emigre.DefaultRecommenderConfig(ds.Types.Item)
	cfg.PPR.Epsilon = 1e-7 // slightly looser push tolerance for speed
	rec, err := emigre.NewRecommender(ds.Graph, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// One worked question first: shopper 0's runner-up item.
	u := ds.Users[0]
	top, err := rec.TopN(u, 3)
	if err != nil {
		log.Fatal(err)
	}
	if len(top) >= 2 {
		ex := emigre.NewExplainer(ds.Graph, rec, emigre.Options{
			AllowedEdgeTypes: ds.UserActionEdgeTypes(),
			AddEdgeType:      ds.Types.Reviewed,
		})
		wni := top[1].Node
		fmt.Printf("Shopper %s: recommended %s, asks why not %s?\n",
			ds.Graph.Label(u), ds.Graph.Label(top[0].Node), ds.Graph.Label(wni))
		expl, err := ex.ExplainWith(emigre.Query{User: u, WNI: wni}, emigre.Add, emigre.Incremental)
		if err != nil {
			fmt.Printf("  no add-mode explanation: %v\n\n", err)
		} else {
			fmt.Printf("  %s\n\n", expl.Describe(ds.Graph))
		}
	}

	// Mini-evaluation across all eight paper methods.
	fmt.Printf("Running the §6.2 method matrix on %d shoppers × %d questions...\n\n",
		*users, *scenarios)
	if *users > len(ds.Users) {
		*users = len(ds.Users)
	}
	runner := emigre.NewEvalRunner(ds.Graph, rec)
	base := emigre.Options{
		AllowedEdgeTypes: ds.UserActionEdgeTypes(),
		AddEdgeType:      ds.Types.Reviewed,
		MaxTests:         60,
	}
	brute := base
	brute.MaxTests = 400 // the oracle gets a bigger budget, as in the paper
	results, err := runner.Run(emigre.EvalConfig{
		Users:               ds.Users[:*users],
		TopN:                10,
		MaxScenariosPerUser: *scenarios,
		Explainer:           base,
		Overrides:           map[string]emigre.Options{"remove_brute": brute},
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d", done, total)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr)
	for _, render := range []func() error{
		func() error { return emigre.RenderFigure4(os.Stdout, results) },
		func() error { return emigre.RenderFigure5(os.Stdout, results) },
		func() error { return emigre.RenderFigure6(os.Stdout, results) },
		func() error { return emigre.RenderTable5(os.Stdout, results) },
	} {
		if err := render(); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
