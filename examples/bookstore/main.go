// Bookstore replays the paper's full running example (Figures 1a, 1b
// and 2) on the books graph:
//
//   - Paul's top-10 list and the Why-Not question "Why not Harry
//     Potter?";
//
//   - the Remove-mode explanation {Candide, C} (Figure 1a);
//
//   - the Add-mode explanation {The Lord of the Rings} (Figure 1b);
//
//   - the PRINCE contrast (Figure 2): a Why explanation of the current
//     recommendation removes {C} and promotes The Alchemist — it does
//     NOT answer the Why-Not question.
//
//     go run ./examples/bookstore
package main

import (
	"fmt"
	"log"
	"strings"

	emigre "github.com/why-not-xai/emigre"
)

func main() {
	books, err := emigre.NewBooks()
	if err != nil {
		log.Fatal(err)
	}
	g := books.Graph

	cfg := emigre.DefaultRecommenderConfig(books.Types.Item)
	cfg.Beta = 1
	rec, err := emigre.NewRecommender(g, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Paul's recommendation list ===")
	top, err := rec.TopN(books.Paul, 10)
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range top {
		fmt.Printf("%2d. %-24s %.6f\n", i+1, g.Label(s.Node), s.Score)
	}
	fmt.Printf("\nPaul asks: \"Why not %s?\"\n\n", g.Label(books.HarryPotter))

	ex := emigre.NewExplainer(g, rec, emigre.Options{
		AllowedEdgeTypes: books.ActionEdgeTypes(),
		AddEdgeType:      books.Types.Rated,
	})
	query := emigre.Query{User: books.Paul, WNI: books.HarryPotter}

	fmt.Println("=== EMiGRe Why-Not explanations ===")
	for _, mode := range []emigre.Mode{emigre.Remove, emigre.Add} {
		for _, method := range []emigre.Method{emigre.Incremental, emigre.Powerset, emigre.Exhaustive} {
			expl, err := ex.ExplainWith(query, mode, method)
			if err != nil {
				fmt.Printf("%-7s %-12s no explanation (%v)\n", mode, method, err)
				continue
			}
			var edges []string
			for _, e := range expl.Edges {
				edges = append(edges, g.Label(e.To))
			}
			fmt.Printf("%-7s %-12s A* = {%s}  (checks: %d, |H|: %d)\n",
				mode, method, strings.Join(edges, ", "),
				expl.Stats.Tests, expl.Stats.SearchSpace)
		}
	}

	expl, err := ex.ExplainWith(query, emigre.Remove, emigre.Powerset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 1a: %s\n", expl.Describe(g))
	expl, err = ex.ExplainWith(query, emigre.Add, emigre.Powerset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 1b: %s\n\n", expl.Describe(g))

	fmt.Println("=== PRINCE contrast (Figure 2) ===")
	pr := emigre.NewPrinceExplainer(g, rec, emigre.PrinceOptions{
		AllowedEdgeTypes: books.ActionEdgeTypes(),
	})
	cfe, err := pr.Explain(books.Paul)
	if err != nil {
		log.Fatal(err)
	}
	var removed []string
	for _, e := range cfe.Edges {
		removed = append(removed, g.Label(e.To))
	}
	fmt.Printf("PRINCE: had Paul not read {%s}, the recommendation would be %s.\n",
		strings.Join(removed, ", "), g.Label(cfe.NewTop))
	if cfe.NewTop != books.HarryPotter {
		fmt.Println("Note: PRINCE's replacement is NOT Harry Potter — a Why")
		fmt.Println("explanation for the current top item does not answer the")
		fmt.Println("Why-Not question; that is the gap EMiGRe fills.")
	}
}
