// Debugging is the system-designer session sketched in §6.4 of the
// paper: scan a store's users for Why-Not questions that Remove mode
// cannot answer, and let EMiGRe's Diagnose API classify each failure
// into the paper's meta-explanation taxonomy:
//
//   - cold start / less active user: too few actions to remove;
//
//   - out of scope: removals alone cannot promote the item, but another
//     mode (Add or the Combined extension) can;
//
//   - popular item: the displaced recommendation draws its score from
//     other users' actions, out of this user's reach (Figure 7).
//
//     go run ./examples/debugging
package main

import (
	"errors"
	"fmt"
	"log"

	emigre "github.com/why-not-xai/emigre"
)

func main() {
	cfg := emigre.SmallDatasetConfig()
	cfg.Seed = 7
	ds, err := emigre.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rcfg := emigre.DefaultRecommenderConfig(ds.Types.Item)
	rcfg.PPR.Epsilon = 1e-7
	rec, err := emigre.NewRecommender(ds.Graph, rcfg)
	if err != nil {
		log.Fatal(err)
	}
	ex := emigre.NewExplainer(ds.Graph, rec, emigre.Options{
		AllowedEdgeTypes: ds.UserActionEdgeTypes(),
		AddEdgeType:      ds.Types.Reviewed,
		MaxTests:         80,
	})

	fmt.Println("Scanning for Remove-mode failures and classifying them (§6.4)...")
	fmt.Println()
	failures := 0
	kinds := map[emigre.FailureKind]int{}
	for _, u := range ds.Users[:12] {
		top, err := rec.TopN(u, 4)
		if err != nil || len(top) < 2 {
			continue
		}
		for _, wni := range top[1:] {
			q := emigre.Query{User: u, WNI: wni.Node}
			_, err := ex.ExplainWith(q, emigre.Remove, emigre.Exhaustive)
			if err == nil {
				continue // Remove mode can answer: nothing to debug
			}
			if !errors.Is(err, emigre.ErrNoExplanation) {
				log.Fatal(err)
			}
			d, err := ex.Diagnose(q, emigre.Remove)
			if err != nil {
				log.Fatal(err)
			}
			failures++
			kinds[d.Kind]++
			fmt.Printf("user %-9s why-not %-9s -> %s\n",
				ds.Graph.Label(u), ds.Graph.Label(wni.Node), d.Kind)
			fmt.Printf("  %s\n", d.Detail)
			if d.Kind == emigre.FailureOutOfScope {
				// Show the designer the answer the working mode found.
				expl, err := ex.ExplainWith(q, d.WorkingMode, emigre.Exhaustive)
				if err == nil {
					fmt.Printf("  %s\n", expl.Describe(ds.Graph))
				}
			}
			fmt.Println()
		}
	}
	if failures == 0 {
		fmt.Println("No Remove-mode failures among the scanned users — rerun with another seed.")
		return
	}
	fmt.Printf("%d unanswerable Remove-mode questions diagnosed:\n", failures)
	for _, k := range []emigre.FailureKind{emigre.FailureColdStart, emigre.FailureOutOfScope, emigre.FailurePopularItem} {
		if kinds[k] > 0 {
			fmt.Printf("  %-14s %d\n", k.String(), kinds[k])
		}
	}
}
