package emigre_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	emigre "github.com/why-not-xai/emigre"
)

// TestPublicAPIQuickstart exercises the README quickstart end to end
// through the facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	books, err := emigre.NewBooks()
	if err != nil {
		t.Fatal(err)
	}
	cfg := emigre.DefaultRecommenderConfig(books.Types.Item)
	cfg.Beta = 1
	r, err := emigre.NewRecommender(books.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	top, err := r.Recommend(books.Paul)
	if err != nil {
		t.Fatal(err)
	}
	if books.Graph.Label(top) != "Python" {
		t.Fatalf("recommendation = %q, want Python", books.Graph.Label(top))
	}
	ex := emigre.NewExplainer(books.Graph, r, emigre.Options{
		AllowedEdgeTypes: books.ActionEdgeTypes(),
		AddEdgeType:      books.Types.Rated,
	})
	q := emigre.Query{User: books.Paul, WNI: books.HarryPotter}

	rm, err := ex.ExplainWith(q, emigre.Remove, emigre.Powerset)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Size() != 2 {
		t.Fatalf("Figure 1a explanation size = %d, want 2 (Candide, C)", rm.Size())
	}
	got := map[string]bool{}
	for _, e := range rm.Edges {
		got[books.Graph.Label(e.To)] = true
	}
	if !got["Candide"] || !got["C"] {
		t.Fatalf("Figure 1a explanation = %v, want {Candide, C}", got)
	}

	ad, err := ex.ExplainWith(q, emigre.Add, emigre.Powerset)
	if err != nil {
		t.Fatal(err)
	}
	if ad.Size() != 1 || books.Graph.Label(ad.Edges[0].To) != "The Lord of the Rings" {
		t.Fatalf("Figure 1b explanation = %v, want {The Lord of the Rings}", ad.Edges)
	}
}

// TestPrinceContrast pins the paper's Figure-2 result through the
// public API: PRINCE removes {C} and lands on The Alchemist.
func TestPrinceContrast(t *testing.T) {
	books, err := emigre.NewBooks()
	if err != nil {
		t.Fatal(err)
	}
	cfg := emigre.DefaultRecommenderConfig(books.Types.Item)
	cfg.Beta = 1
	r, err := emigre.NewRecommender(books.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pr := emigre.NewPrinceExplainer(books.Graph, r, emigre.PrinceOptions{
		AllowedEdgeTypes: books.ActionEdgeTypes(),
	})
	cfe, err := pr.Explain(books.Paul)
	if err != nil {
		t.Fatal(err)
	}
	if cfe.NewTop != books.TheAlchemist {
		t.Fatalf("PRINCE replacement = %q, want The Alchemist", books.Graph.Label(cfe.NewTop))
	}
	if cfe.Size() != 1 || books.Graph.Label(cfe.Edges[0].To) != "C" {
		t.Fatalf("PRINCE CFE = %v, want {C}", cfe.Edges)
	}
	if cfe.NewTop == books.HarryPotter {
		t.Fatal("PRINCE must not answer the Why-Not question in this fixture")
	}
}

func TestGraphRoundTripThroughFacade(t *testing.T) {
	books, err := emigre.NewBooks()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := books.Graph.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := emigre.ReadGraphJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != books.Graph.NumNodes() || g.NumEdges() != books.Graph.NumEdges() {
		t.Fatal("round trip changed the graph")
	}
	paul, ok := g.NodeByLabel("Paul")
	if !ok {
		t.Fatal("labels lost in round trip")
	}
	if paul != books.Paul {
		t.Fatal("node ids changed in round trip")
	}
}

func TestFacadeErrorsExposed(t *testing.T) {
	books, err := emigre.NewBooks()
	if err != nil {
		t.Fatal(err)
	}
	cfg := emigre.DefaultRecommenderConfig(books.Types.Item)
	cfg.Beta = 1
	r, err := emigre.NewRecommender(books.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex := emigre.NewExplainer(books.Graph, r, emigre.Options{
		AllowedEdgeTypes: books.ActionEdgeTypes(),
		AddEdgeType:      books.Types.Rated,
	})
	_, err = ex.ExplainWith(emigre.Query{User: books.Paul, WNI: books.Candide}, emigre.Remove, emigre.Powerset)
	if !errors.Is(err, emigre.ErrNotWhyNotItem) {
		t.Fatalf("err = %v, want ErrNotWhyNotItem", err)
	}
	_, err = ex.ExplainWith(emigre.Query{User: books.Paul, WNI: books.Python}, emigre.Remove, emigre.Powerset)
	if !errors.Is(err, emigre.ErrAlreadyTop) {
		t.Fatalf("err = %v, want ErrAlreadyTop", err)
	}
}

func TestEvalThroughFacade(t *testing.T) {
	cfg := emigre.SmallDatasetConfig()
	cfg.Users = 10
	cfg.Items = 120
	cfg.Categories = 4
	ds, err := emigre.GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := emigre.DefaultRecommenderConfig(ds.Types.Item)
	rcfg.PPR.Epsilon = 1e-6
	r, err := emigre.NewRecommender(ds.Graph, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	runner := emigre.NewEvalRunner(ds.Graph, r)
	results, err := runner.Run(emigre.EvalConfig{
		Users:               ds.Users[:4],
		TopN:                5,
		MaxScenariosPerUser: 1,
		Methods:             emigre.PaperMethods()[:2],
		Explainer: emigre.Options{
			AllowedEdgeTypes: ds.UserActionEdgeTypes(),
			AddEdgeType:      ds.Types.Reviewed,
			MaxTests:         10,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := emigre.RenderFigure4(&buf, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "add_incremental") {
		t.Fatalf("figure output missing method:\n%s", buf.String())
	}
	buf.Reset()
	if err := emigre.RenderTable4(&buf, ds.Graph); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "review") {
		t.Fatalf("table 4 output missing review row:\n%s", buf.String())
	}
}
