// Command emigre-loadgen drives an emigre-server with synthesized or
// replayed traffic and reports latency/SLO results.
//
// Four modes:
//
//	# synthesize a stream and print it (inspection; nothing is sent)
//	emigre-loadgen -mode generate -seed 7 -count 100
//
//	# synthesize, run against a server, record a session log + report
//	emigre-loadgen -mode run -addr http://localhost:8080 \
//	    -seed 7 -count 500 -rate 200 -log session.jsonl \
//	    -report report.json -bench BENCH_loadgen.json
//
//	# replay a recorded session at 2x the recorded rate
//	emigre-loadgen -mode replay -addr http://localhost:8080 \
//	    -log session.jsonl -speed 2
//
//	# summarize a recorded session offline (no server)
//	emigre-loadgen -mode report -log session.jsonl
//
// A run scrapes GET /metrics before and after the traffic and folds
// the counter deltas into the report. The -bench output is the
// normalized benchfmt schema cmd/emigre-benchdiff diffs against a
// committed baseline.
//
// The workload model is fully seeded: the same -seed and shape flags
// produce a byte-identical request stream, and a replay re-sends the
// recorded logical request IDs (X-Emigre-Request-Id), so server-side
// captures line up across runs.
//
// Exit status: 0 on success, 1 when the run aborted or any output
// could not be written, 2 on usage errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/why-not-xai/emigre/client"
	"github.com/why-not-xai/emigre/internal/load"
	"github.com/why-not-xai/emigre/internal/load/benchfmt"
	"github.com/why-not-xai/emigre/internal/obs"
)

// Default populations mirror the books preset emigre-server ships, so
// a bare `emigre-loadgen -mode run` exercises a default server.
const (
	defaultUsers = "Paul,Alice,Dan,Greg,Hank,Clara,Fiona"
	defaultItems = "Harry Potter,Candide,C,Python"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("emigre-loadgen: ")
	var (
		mode = flag.String("mode", "run", "generate, run, replay or report")
		addr = flag.String("addr", "http://localhost:8080", "server base URL (run, replay)")

		// Workload shape (generate, run).
		seed      = flag.Int64("seed", 1, "workload seed; same seed + shape = identical stream")
		count     = flag.Int("count", 200, "requests to synthesize")
		users     = flag.String("users", defaultUsers, "comma-separated user labels")
		items     = flag.String("items", defaultItems, "comma-separated why-not item labels")
		userSkew  = flag.Float64("user-skew", 1.2, "user popularity Zipf s (0 = uniform, else > 1)")
		itemSkew  = flag.Float64("item-skew", 1.2, "item popularity Zipf s (0 = uniform, else > 1)")
		opMix     = flag.String("op-mix", "explain=0.7,recommend=0.25,diagnose=0.05", "op weights k=w,...")
		modeMix   = flag.String("mode-mix", "remove=1", "explanation-mode weights k=w,...")
		methodMix = flag.String("method-mix", "powerset=0.5,incremental=0.5", "search-method weights k=w,...")
		arrival   = flag.String("arrival", load.ArrivalPoisson, "arrival process: poisson or closed")
		rate      = flag.Float64("rate", 100, "poisson arrival rate, requests/second")
		topN      = flag.Int("n", 10, "recommend top-N size")
		budgetMS  = flag.Int("timeout-ms", 0, "server-side budget stamped on explain/diagnose (0 = server default)")

		// Execution (run, replay).
		concurrency = flag.Int("concurrency", 0, "workers (closed) or in-flight cap (open); 0 = default")
		speed       = flag.Float64("speed", 1, "open-loop rate multiplier: 1 = recorded/scheduled rate, 0 = no pacing")
		timeout     = flag.Duration("timeout", 10*time.Second, "client timeout per HTTP attempt")
		attempts    = flag.Int("attempts", client.DefaultMaxAttempts, "max client attempts per call")

		// Outputs.
		logPath    = flag.String("log", "", "session log: output path (run), input path (replay, report)")
		logOut     = flag.String("log-out", "", "replay's own session log output path (replay)")
		reportPath = flag.String("report", "", "write the JSON report here (- = stdout)")
		benchPath  = flag.String("bench", "", "write the benchfmt projection here")
		benchDesc  = flag.String("bench-desc", "emigre-loadgen run", "benchfmt description field")
		quiet      = flag.Bool("quiet", false, "suppress the rendered report on stdout")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Printf("unexpected arguments: %v", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	cfg := load.Config{
		Seed:       *seed,
		Count:      *count,
		Users:      splitList(*users),
		Items:      splitList(*items),
		UserSkew:   *userSkew,
		ItemSkew:   *itemSkew,
		Arrival:    *arrival,
		Rate:       *rate,
		RecommendN: *topN,
		TimeoutMS:  *budgetMS,
	}
	var err error
	if cfg.OpMix, err = parseMix(*opMix); err != nil {
		log.Fatalf("-op-mix: %v", err)
	}
	if cfg.ModeMix, err = parseMix(*modeMix); err != nil {
		log.Fatalf("-mode-mix: %v", err)
	}
	if cfg.MethodMix, err = parseMix(*methodMix); err != nil {
		log.Fatalf("-method-mix: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch *mode {
	case "generate":
		reqs, err := load.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		for i := range reqs {
			if err := enc.Encode(&reqs[i]); err != nil {
				log.Fatal(err)
			}
		}

	case "run", "replay":
		var reqs []load.Request
		closed := false
		if *mode == "run" {
			if reqs, err = load.Generate(cfg); err != nil {
				log.Fatal(err)
			}
			closed = cfg.Arrival == load.ArrivalClosed
		} else {
			if *logPath == "" {
				log.Fatal("-mode replay needs -log <session.jsonl>")
			}
			recs, err := readLogFile(*logPath)
			if err != nil {
				log.Fatal(err)
			}
			reqs = load.Requests(recs)
		}
		cl, err := client.New(client.Config{BaseURL: *addr, MaxAttempts: *attempts,
			PerAttemptTimeout: *timeout})
		if err != nil {
			log.Fatal(err)
		}
		metricsURL := strings.TrimRight(*addr, "/") + "/metrics"
		before := scrape(ctx, metricsURL)

		began := time.Now()
		recs, err := load.Run(ctx, load.RunConfig{
			Client:      cl,
			Requests:    reqs,
			Closed:      closed,
			Concurrency: *concurrency,
			Speed:       *speed,
		})
		if err != nil {
			log.Fatalf("run aborted: %v", err)
		}
		duration := time.Since(began).Seconds()
		after := scrape(ctx, metricsURL)

		out := *logPath
		if *mode == "replay" {
			out = *logOut
		}
		if out != "" {
			if err := writeLogFile(out, recs); err != nil {
				log.Fatal(err)
			}
		}
		emitReport(load.BuildReport(recs, before, after, duration),
			*reportPath, *benchPath, *benchDesc, *quiet)

	case "report":
		if *logPath == "" {
			log.Fatal("-mode report needs -log <session.jsonl>")
		}
		recs, err := readLogFile(*logPath)
		if err != nil {
			log.Fatal(err)
		}
		// Offline duration: the span from first dispatch to last
		// completion recorded in the log.
		var maxEnd int64
		minStart := recs[0].StartUS
		for _, r := range recs {
			if r.StartUS < minStart {
				minStart = r.StartUS
			}
			if end := r.StartUS + r.LatencyUS; end > maxEnd {
				maxEnd = end
			}
		}
		duration := float64(maxEnd-minStart) / 1e6
		emitReport(load.BuildReport(recs, nil, nil, duration),
			*reportPath, *benchPath, *benchDesc, *quiet)

	default:
		log.Printf("unknown -mode %q", *mode)
		flag.Usage()
		os.Exit(2)
	}
}

// scrape fetches the exposition, tolerating unreachable debug setups:
// a missing scrape degrades the report (no deltas), it does not kill
// the run.
func scrape(ctx context.Context, url string) *obs.Exposition {
	e, err := load.Scrape(ctx, url)
	if err != nil {
		log.Printf("warning: %v (report will have no metrics deltas)", err)
		return nil
	}
	return e
}

func emitReport(rep *load.Report, reportPath, benchPath, benchDesc string, quiet bool) {
	if !quiet {
		fmt.Print(rep.Render())
	}
	if reportPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
		if reportPath == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(reportPath, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if benchPath != "" {
		data, err := benchfmt.Marshal(rep.ToBenchFmt(benchDesc))
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(benchPath, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
}

func readLogFile(path string) ([]load.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return load.ReadLog(f)
}

func writeLogFile(path string, recs []load.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := load.WriteLog(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// splitList parses a comma-separated label list, trimming whitespace.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseMix parses "key=weight,key=weight" into a weight map.
func parseMix(s string) (map[string]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	mix := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad entry %q (want key=weight)", part)
		}
		w, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("bad weight in %q: %v", part, err)
		}
		mix[strings.TrimSpace(k)] = w
	}
	return mix, nil
}
