package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenBadModule pins the CLI contract end to end: diagnostics
// print in the canonical "file:line:col: [analyzer] message" form with
// module-root-relative slash paths, and a tree with violations exits 1.
func TestGoldenBadModule(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "badmod"), "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errb.String())
	}
	want, err := os.ReadFile(filepath.Join("testdata", "badmod.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("output mismatch\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
	if errb.Len() != 0 {
		t.Errorf("unexpected stderr: %s", errb.String())
	}
}

// TestCleanSubsetExitsZero runs a subset of analyzers the fixture does
// not violate: clean output, exit 0.
func TestCleanSubsetExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "badmod"), "-run", "ctxpoll,versionbump,rawengine", "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected output: %s", out.String())
	}
}

// TestConcurrencySubset runs only the whole-program concurrency
// analyzers: the workers fixture violates all three, so the run must
// exit 1 and every diagnostic must come from one of them.
func TestConcurrencySubset(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "badmod"), "-run", "lockorder,goroleak,atomicmix", "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errb.String())
	}
	for _, name := range []string{"[lockorder]", "[goroleak]", "[atomicmix]"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("output missing %s diagnostics:\n%s", name, out.String())
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if strings.Contains(line, "[errcmp]") || strings.Contains(line, "[floateq]") {
			t.Errorf("unselected analyzer ran: %s", line)
		}
	}
}

// TestListAnalyzers checks -list names every analyzer of the suite.
func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-list"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"atomicmix", "ctxpoll", "errcmp", "faultsite", "floateq", "goroleak", "lockorder", "metricname", "rawengine", "versionbump"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestUnknownAnalyzerIsUsageError checks -run with a bogus name exits 2.
func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-run", "nosuch"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr missing explanation: %s", errb.String())
	}
}
