// Command emigre-vet runs the repository's custom static-analysis
// suite (internal/lint) over the module: ten stdlib-only analyzers
// enforcing the invariants the code relies on for correctness —
// cancellation polling in unbounded search loops (ctxpoll), version
// bumps on graph mutation (versionbump), fmath-routed float
// comparisons (floateq), cache-routed PPR engine calls (rawengine),
// errors.Is for sentinel errors (errcmp), unique string-literal
// failpoint names (faultsite), unique string-literal metric family
// names (metricname), and three whole-program concurrency checks:
// acquisition-order cycles over struct-owned mutexes (lockorder),
// bounded-lifetime evidence for every spawned goroutine (goroleak)
// and no mixing of atomic and plain access to one field (atomicmix).
//
// Usage:
//
//	go run ./cmd/emigre-vet ./...
//	go run ./cmd/emigre-vet -run ctxpoll,errcmp ./internal/ppr/...
//	go run ./cmd/emigre-vet -list
//
// Diagnostics print as "file:line:col: [analyzer] message" with paths
// relative to the module root. Exit status: 0 clean, 1 diagnostics
// reported, 2 usage, load or type-check failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/why-not-xai/emigre/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("emigre-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "module root (directory containing go.mod); \".\" searches upward from the working directory")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: emigre-vet [flags] [patterns]\n\nRuns the repo's invariant analyzers over the module (default pattern ./...).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Suite()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "emigre-vet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "emigre-vet: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := lint.Run(lint.LoadConfig{Dir: root}, analyzers, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "emigre-vet: %v\n", err)
		return 2
	}
	if len(res.TypeErrors) > 0 {
		// Analyzing half-typed syntax risks false negatives; refuse
		// rather than pretend the tree was vetted.
		for _, te := range res.TypeErrors {
			fmt.Fprintf(stderr, "emigre-vet: type error: %v\n", te)
		}
		return 2
	}
	for _, d := range res.Diagnostics {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		}
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot resolves dir to the nearest ancestor containing
// go.mod (dir itself first).
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in %s or any parent", abs)
		}
		d = parent
	}
}
