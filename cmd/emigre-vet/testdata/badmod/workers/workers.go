// Package workers is a deliberately broken fixture for the emigre-vet
// golden test: it violates lockorder, goroleak and atomicmix.
package workers

import (
	"sync"
	"sync/atomic"
)

// Hub holds two mutexes acquired in opposite orders and a counter
// accessed both atomically and plainly.
type Hub struct {
	a    sync.Mutex
	b    sync.Mutex
	done atomic.Int64
}

func (h *Hub) Forward() {
	h.a.Lock()
	defer h.a.Unlock()
	h.b.Lock()
	h.b.Unlock()
}

func (h *Hub) Backward() {
	h.b.Lock()
	defer h.b.Unlock()
	h.a.Lock()
	h.a.Unlock()
}

func (h *Hub) Pump() {
	go func() {
		for {
			h.done.Add(1)
		}
	}()
}

func (h *Hub) Done() int64 {
	return h.done.Load()
}

func (h *Hub) Reset() {
	var zero atomic.Int64
	h.done = zero
}
