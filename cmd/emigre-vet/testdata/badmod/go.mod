module badmod.example/m

go 1.24.0
