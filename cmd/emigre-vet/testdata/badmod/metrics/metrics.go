// Package metrics is a deliberately broken fixture for the emigre-vet
// golden test: it violates floateq and errcmp.
package metrics

import "errors"

var ErrEmpty = errors.New("empty")

func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

func IsEmpty(err error) bool {
	return err == ErrEmpty
}

func Same(a, b float64) bool {
	return a == b
}
