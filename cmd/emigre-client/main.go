// Command emigre-client exercises an emigre-server through the
// resilient client: retries with backoff and jitter, Retry-After
// honoring, and explicit reporting of degraded responses.
//
//	emigre-client -addr http://localhost:8080 -op ready
//	emigre-client -addr http://localhost:8080 -op recommend -user Paul
//	emigre-client -addr http://localhost:8080 -op explain -user Paul -wni "The Hobbit"
//	emigre-client -addr http://localhost:8080 -op explain -user Paul -wni Dune -timeout 500ms -count 10
//
// The exit status is 0 when every call converged (degraded answers
// included) and 1 otherwise. -stats prints the retry tallies on exit,
// which is what the chaos-smoke CI job asserts on.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"github.com/why-not-xai/emigre/client"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("emigre-client: ")
	var (
		addr     = flag.String("addr", "http://localhost:8080", "server base URL")
		op       = flag.String("op", "explain", "operation: explain, recommend, diagnose, ready")
		user     = flag.String("user", "", "user node (label or ID)")
		wni      = flag.String("wni", "", "why-not item (label or ID)")
		items    = flag.String("items", "", "comma-separated group items (group explain)")
		category = flag.String("category", "", "category node (category explain)")
		mode     = flag.String("mode", "remove", "explanation mode")
		method   = flag.String("method", "powerset", "search method")
		timeout  = flag.Duration("timeout", 30*time.Second, "overall deadline per call")
		budgetMS = flag.Int("timeout-ms", 0, "server-side budget (timeout_ms) sent with explain requests; 0 = server default")
		attempts = flag.Int("attempts", client.DefaultMaxAttempts, "max attempts per call")
		count    = flag.Int("count", 1, "how many times to run the call")
		topN     = flag.Int("n", 10, "recommendation list length")
		stats    = flag.Bool("stats", false, "print client retry stats as JSON on exit")
	)
	flag.Parse()

	c, err := client.New(client.Config{BaseURL: *addr, MaxAttempts: *attempts})
	if err != nil {
		log.Fatal(err)
	}

	failures := 0
	for i := 0; i < *count; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		err := runOne(ctx, c, *op, *user, *wni, *items, *category, *mode, *method, *topN, *budgetMS)
		cancel()
		if err != nil {
			failures++
			log.Printf("call %d/%d failed: %v", i+1, *count, err)
		}
	}
	if *stats {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(c.Stats()); err != nil {
			log.Fatal(err)
		}
	}
	if failures > 0 {
		log.Fatalf("%d/%d call(s) failed", failures, *count)
	}
}

func runOne(ctx context.Context, c *client.Client, op, user, wni, items, category, mode, method string, topN, budgetMS int) error {
	switch op {
	case "ready":
		if err := c.Ready(ctx); err != nil {
			return err
		}
		fmt.Println("ready")
		return nil
	case "recommend":
		out, err := c.Recommend(ctx, user, topN)
		if err != nil {
			return err
		}
		for _, it := range out.Items {
			name := it.Label
			if name == "" {
				name = fmt.Sprint(it.Node)
			}
			fmt.Printf("%-30s %.6g\n", name, it.Score)
		}
		return nil
	case "diagnose":
		out, err := c.Diagnose(ctx, client.DiagnoseRequest{User: user, WNI: wni, Mode: mode})
		if err != nil {
			return err
		}
		fmt.Printf("%s: %s\n", out.Kind, out.Detail)
		fmt.Printf("  actions available: %d (working mode: %s)\n", out.Actions, out.WorkingMode)
		return nil
	case "explain":
		req := client.ExplainRequest{User: user, WNI: wni, Category: category, Mode: mode, Method: method, TimeoutMS: budgetMS}
		if items != "" {
			req.Items = strings.Split(items, ",")
			req.WNI = ""
		}
		out, err := c.Explain(ctx, req)
		if err != nil {
			return err
		}
		if out.Degraded {
			fmt.Printf("[degraded: %s] ", out.DegradedLevel)
		}
		fmt.Println(out.Description)
		return nil
	default:
		return fmt.Errorf("unknown -op %q (want explain, recommend, diagnose or ready)", op)
	}
}
