// Command emigre-routerbench merges a single-backend and a routed
// multi-backend loadgen benchfmt file into the BENCH_router.json
// scale-out baseline, and gates the merge on the scale-out contract:
//
//	emigre-routerbench -single /tmp/single.json -routed /tmp/routed.json \
//	    -out BENCH_router.json -min-speedup 2.0 -max-error-delta 0.02
//
// Both inputs are emigre-loadgen -bench projections; the loadgen/total
// result of each is lifted into router/1backend and router/3backends,
// and their throughput ratio becomes router/speedup. The tool exits
// nonzero when the routed topology is below -min-speedup times the
// single-backend throughput, or when the two runs' error rates diverge
// by more than -max-error-delta — "2x throughput at equal error rate"
// fails loudly instead of silently committing a weaker baseline.
//
// Keeping the ratio as its own benchfmt result lets CI hold the
// speedup tight with emigre-benchdiff (the ratio is machine-rate
// independent) while the raw qps results carry a wide bound for
// runner-speed variance.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/why-not-xai/emigre/internal/load/benchfmt"
)

func main() {
	var (
		singlePath    = flag.String("single", "", "benchfmt file from the single-backend run")
		routedPath    = flag.String("routed", "", "benchfmt file from the routed multi-backend run")
		outPath       = flag.String("out", "", "write the merged benchfmt baseline here (default stdout)")
		desc          = flag.String("desc", "emigre-router scale-out: identical closed-loop loadgen vs 1 backend direct and 3 backends through the router", "description for the merged file")
		minSpeedup    = flag.Float64("min-speedup", 2.0, "fail when routed qps / single qps is below this")
		maxErrorDelta = flag.Float64("max-error-delta", 0.02, "fail when |routed error_rate - single error_rate| exceeds this")
	)
	flag.Parse()
	if *singlePath == "" || *routedPath == "" {
		fmt.Fprintln(os.Stderr, "emigre-routerbench: -single and -routed are required")
		flag.Usage()
		os.Exit(2)
	}

	single, err := totalResult(*singlePath)
	if err != nil {
		fatal(err)
	}
	routed, err := totalResult(*routedPath)
	if err != nil {
		fatal(err)
	}

	singleQPS := single.Metrics["qps"]
	routedQPS := routed.Metrics["qps"]
	if singleQPS <= 0 {
		fatal(fmt.Errorf("single-backend run has qps %g; cannot form a speedup ratio", singleQPS))
	}
	speedup := routedQPS / singleQPS
	errDelta := routed.Metrics["error_rate"] - single.Metrics["error_rate"]
	if errDelta < 0 {
		errDelta = -errDelta
	}

	out := &benchfmt.File{
		Schema:      benchfmt.Schema,
		Description: *desc,
		Results: []benchfmt.Result{
			lift("router/1backend", single),
			lift("router/3backends", routed),
			{
				// A pure ratio: no iterations, so no ns/op — per-op time
				// lives on the two topology results it was derived from.
				Name: "router/speedup",
				Metrics: map[string]float64{
					"throughput": speedup,
					"error_rate": errDelta,
				},
			},
		},
	}
	data, err := benchfmt.Marshal(out)
	if err != nil {
		fatal(err)
	}
	if *outPath == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "routerbench: single %.1f qps, routed %.1f qps, speedup %.2fx, |error delta| %.4f\n",
		singleQPS, routedQPS, speedup, errDelta)
	if speedup < *minSpeedup {
		fatal(fmt.Errorf("speedup %.2fx below required %.2fx", speedup, *minSpeedup))
	}
	if errDelta > *maxErrorDelta {
		fatal(fmt.Errorf("error-rate delta %.4f exceeds allowed %.4f", errDelta, *maxErrorDelta))
	}
}

// totalResult reads one loadgen benchfmt file and returns its
// loadgen/total result.
func totalResult(path string) (*benchfmt.Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := benchfmt.Read(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	r := f.Result("loadgen/total")
	if r == nil {
		return nil, fmt.Errorf("%s: no loadgen/total result", path)
	}
	return r, nil
}

// lift renames a loadgen/total result into the merged namespace,
// keeping throughput, error and central latency metrics (ns/op keeps
// the committed file go-bench-normalizable) and dropping the tail
// percentiles (machine noise in a scale-out baseline).
func lift(name string, r *benchfmt.Result) benchfmt.Result {
	out := benchfmt.Result{Name: name, Iterations: r.Iterations, Metrics: map[string]float64{}}
	for _, m := range []string{"qps", "error_rate", "rate_503", "mean_us", "p95_us", "ns/op"} {
		if v, ok := r.Metrics[m]; ok {
			out.Metrics[m] = v
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emigre-routerbench:", err)
	os.Exit(1)
}
