// Command emigre answers one Why-Not question on a graph.
//
//	emigre -preset books -user Paul -wni "Harry Potter"
//	emigre -graph store.json -user user-3 -wni item-42 -mode add -method powerset
//	emigre -preset books -user Paul -wni "Harry Potter" -mode combined
//	emigre -graph store.json -user user-3 -wni item-42 -diagnose
//
// Nodes are addressed by label (as stored in the graph file) or by
// numeric ID. The tool prints the current recommendation, the
// explanation edge set, its natural-language reading, and search
// statistics; with -diagnose it instead classifies why the question
// has no answer in the selected mode (§6.4 meta-explanations).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"

	emigre "github.com/why-not-xai/emigre"
	"github.com/why-not-xai/emigre/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("emigre: ")
	var (
		graphPath = flag.String("graph", "", "graph file (JSON/TSV from emigre-gen); empty with -preset books uses the toy graph")
		preset    = flag.String("preset", "", "built-in graph: books")
		userArg   = flag.String("user", "", "user node (label or numeric id)")
		wniArg    = flag.String("wni", "", "Why-Not item (label or numeric id)")
		modeArg   = flag.String("mode", "remove", "explanation mode: remove, add, combined, reweight")
		methodArg = flag.String("method", "powerset", "strategy: incremental, powerset, exhaustive, exhaustive-direct, brute-force")
		itemTypes = flag.String("item-types", "item", "comma-separated recommendable node types")
		edgeTypes = flag.String("edge-types", "rated,reviewed", "comma-separated T_e (explanation edge types); empty = all")
		addType   = flag.String("add-type", "rated", "edge type used for Add-mode suggestions")
		alpha     = flag.Float64("alpha", 0.15, "PPR teleportation probability")
		epsilon   = flag.Float64("epsilon", 2.7e-8, "local-push residual threshold")
		beta      = flag.Float64("beta", 1, "transition mix: 1=weighted walk, 0=uniform")
		topn      = flag.Int("topn", 10, "print the user's top-N list")
		rank      = flag.Int("rank", 1, "success criterion: place the item within the top-RANK")
		diagnose  = flag.Bool("diagnose", false, "classify the failure instead of explaining (§6.4)")
		timeout   = flag.Duration("timeout", 0, "abort the search after this long (0 = no limit)")
	)
	flag.Parse()
	if *userArg == "" || *wniArg == "" {
		log.Fatal("both -user and -wni are required")
	}

	g, err := cli.LoadGraph(*graphPath, *preset)
	if err != nil {
		log.Fatal(err)
	}
	user, err := cli.ResolveNode(g, *userArg)
	if err != nil {
		log.Fatal(err)
	}
	wni, err := cli.ResolveNode(g, *wniArg)
	if err != nil {
		log.Fatal(err)
	}

	cfg := emigre.RecommenderConfig{PPR: emigre.DefaultPPRParams(), Beta: *beta}
	cfg.PPR.Alpha = *alpha
	cfg.PPR.Epsilon = *epsilon
	cfg.ItemTypes, err = cli.NodeTypeIDs(g, *itemTypes)
	if err != nil {
		log.Fatal(err)
	}
	r, err := emigre.NewRecommender(g, cfg)
	if err != nil {
		log.Fatal(err)
	}

	allowed, err := cli.EdgeTypeIDs(g, *edgeTypes)
	if err != nil {
		log.Fatal(err)
	}
	addIDs, err := cli.EdgeTypeIDs(g, *addType)
	if err != nil {
		log.Fatal(err)
	}
	ex := emigre.NewExplainer(g, r, emigre.Options{
		AllowedEdgeTypes: emigre.NewEdgeTypeSet(allowed...),
		AddEdgeType:      addIDs[0],
		TargetRank:       *rank,
	})

	mode, err := cli.ParseMode(*modeArg)
	if err != nil {
		log.Fatal(err)
	}
	method, err := cli.ParseMethod(*methodArg)
	if err != nil {
		log.Fatal(err)
	}

	top, err := r.TopN(user, *topn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Top-%d recommendations for %s:\n", len(top), cli.NodeName(g, user))
	for i, s := range top {
		marker := " "
		if s.Node == wni {
			marker = "*"
		}
		fmt.Printf("%s%2d. %-30s %.6g\n", marker, i+1, cli.NodeName(g, s.Node), s.Score)
	}
	fmt.Printf("\nWhy not %s?\n\n", cli.NodeName(g, wni))

	ctx, cancel := cli.Deadline(*timeout)
	defer cancel()

	q := emigre.Query{User: user, WNI: wni}
	if *diagnose {
		d, err := ex.DiagnoseContext(ctx, q, mode)
		if err != nil {
			if errors.Is(err, emigre.ErrCanceled) {
				log.Fatalf("diagnosis aborted after %v: raise -timeout to let the probes finish", *timeout)
			}
			log.Fatal(err)
		}
		fmt.Printf("diagnosis: %s\n  %s\n", d.Kind, d.Detail)
		return
	}

	expl, err := ex.ExplainWithContext(ctx, q, mode, method)
	if err != nil {
		if errors.Is(err, emigre.ErrNoExplanation) {
			fmt.Printf("no explanation found in %s mode; rerun with -diagnose for the reason\n", mode)
			return
		}
		var ce *emigre.CanceledError
		if errors.As(err, &ce) {
			log.Fatalf("search aborted after %v (%d checks done): raise -timeout or try -method incremental",
				*timeout, ce.Stats.Tests)
		}
		log.Fatal(err)
	}
	fmt.Printf("Explanation (%s mode, %s): %d edge(s)\n", mode, method, expl.Size())
	printEdges(g, "remove", expl.Removals)
	printEdges(g, "add", expl.Additions)
	printEdges(g, "reweight to", expl.Reweights)
	fmt.Println()
	fmt.Println(expl.Describe(g))
	fmt.Printf("\nsearch space: %d candidates, %d checks, %v\n",
		expl.Stats.SearchSpace, expl.Stats.Tests, expl.Stats.Duration)
}

func printEdges(g *emigre.Graph, verb string, edges []emigre.Edge) {
	for _, e := range edges {
		fmt.Printf("  %s %s -> %s (type %s, weight %g)\n",
			verb, cli.NodeName(g, e.From), cli.NodeName(g, e.To),
			g.Types().EdgeTypeName(e.Type), e.Weight)
	}
}
