// Command emigre-benchdiff diffs a fresh benchmark or load-test run
// against a committed baseline and fails (exit 1) on regression beyond
// explicit noise bounds.
//
// Both inputs normalize through internal/load/benchfmt, so any of the
// three shapes work on either side: the emigre/benchfmt/v1 schema
// (what emigre-loadgen -bench writes), the repo's legacy BENCH_*.json
// shape, or raw `go test -bench` text:
//
//	go test -bench . -benchmem -run - ./internal/ppr/ > fresh.txt
//	emigre-benchdiff -baseline BENCH_ppr.json -current fresh.txt \
//	    -tolerance 4.0 -metric-tolerance allocs/op=0.01
//
// Tolerances are relative moves in the bad direction: 4.0 allows a 4x
// slowdown (wide, because wall-clock metrics depend on machine speed),
// while allocs/op=0.01 is effectively exact (allocation counts are
// machine-independent). Improvements never fail the diff. Direction is
// per metric: qps/throughput-style metrics regress downward, everything
// else regresses upward.
//
// Exit status: 0 no regressions, 1 regressions found, 2 usage or read
// failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"github.com/why-not-xai/emigre/internal/load/benchfmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("emigre-benchdiff: ")
	var (
		basePath  = flag.String("baseline", "", "baseline file (required; benchfmt JSON, legacy BENCH_*.json, or go-bench text)")
		curPath   = flag.String("current", "-", "current run file (- = stdin)")
		tolerance = flag.Float64("tolerance", 0.5, "default relative noise bound (0.5 = 50% worse allowed)")
		perMetric = flag.String("metric-tolerance", "", "per-metric overrides, name=bound,... (e.g. allocs/op=0.01,ns/op=4.0)")
		strict    = flag.Bool("strict", false, "baseline results missing from the current run are regressions, not warnings")
		quiet     = flag.Bool("quiet", false, "print only the verdict line")
	)
	flag.Parse()
	if *basePath == "" || flag.NArg() > 0 {
		flag.Usage()
		os.Exit(2)
	}

	tol := benchfmt.Tolerances{Default: *tolerance, Strict: *strict}
	if strings.TrimSpace(*perMetric) != "" {
		tol.PerMetric = map[string]float64{}
		for _, part := range strings.Split(*perMetric, ",") {
			name, v, ok := strings.Cut(strings.TrimSpace(part), "=")
			if !ok {
				log.Fatalf("-metric-tolerance: bad entry %q (want name=bound)", part)
			}
			bound, err := strconv.ParseFloat(v, 64)
			if err != nil {
				log.Fatalf("-metric-tolerance: bad bound in %q: %v", part, err)
			}
			tol.PerMetric[strings.TrimSpace(name)] = bound
		}
	}

	baseline := readFile(*basePath)
	current := readFile(*curPath)

	rep := benchfmt.Diff(baseline, current, tol)
	if !*quiet {
		fmt.Print(rep.Render())
	}
	if !rep.OK() {
		fmt.Printf("FAIL: %d regression(s) vs %s\n", rep.Regressions, *basePath)
		os.Exit(1)
	}
	fmt.Printf("PASS: no regressions vs %s\n", *basePath)
}

func readFile(path string) *benchfmt.File {
	var (
		raw []byte
		err error
	)
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		log.Fatalf("reading %s: %v", path, err)
	}
	f, err := benchfmt.Read(raw)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return f
}
