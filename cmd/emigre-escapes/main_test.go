package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseEscapes(t *testing.T) {
	out := strings.Join([]string{
		"# example.com/m/p",
		"p/a.go:10:2: can inline f",
		"p/a.go:12:14: make([]int, n) escapes to heap",
		"p/a.go:40:14: make([]int, n) escapes to heap", // same class, new line
		"p/a.go:13:2: moved to heap: x",
		"p/b.go:3:9: &T{...} escapes to heap",
		"/usr/local/go/src/sync/atomic/type.go:63:6: v escapes to heap", // stdlib: skipped
		"not a diagnostic line",
		"",
	}, "\n")
	got := parseEscapes([]byte(out))
	want := []Entry{
		{File: "p/a.go", Message: "make([]int, n) escapes to heap", Count: 2},
		{File: "p/a.go", Message: "moved to heap: x", Count: 1},
		{File: "p/b.go", Message: "&T{...} escapes to heap", Count: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseEscapes =\n%+v\nwant\n%+v", got, want)
	}
}

func TestDiff(t *testing.T) {
	base := []Entry{
		{File: "a.go", Message: "m1", Count: 2},
		{File: "a.go", Message: "m2", Count: 1},
		{File: "b.go", Message: "m3", Count: 1},
	}
	cur := []Entry{
		{File: "a.go", Message: "m1", Count: 3}, // grew
		{File: "b.go", Message: "m3", Count: 1}, // unchanged
		{File: "c.go", Message: "m4", Count: 1}, // new
		// a.go m2 eliminated
	}
	reg, imp := diff(base, cur)
	if len(reg) != 2 {
		t.Fatalf("regressions = %v, want 2", reg)
	}
	if !strings.Contains(reg[0], "grew 2 -> 3") || !strings.Contains(reg[1], "new escape") {
		t.Errorf("regression text = %v", reg)
	}
	if len(imp) != 1 || !strings.Contains(imp[0], "eliminated") {
		t.Errorf("improvements = %v, want one elimination", imp)
	}
}

// writeTempModule lays out a one-package module whose single function
// forces n slice escapes.
func writeTempModule(t *testing.T, dir string, escapes int) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module escapes.example/m\n\ngo 1.24.0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("package p\n\nvar Sink []*[]int\n\nfunc Grow(n int) {\n")
	for i := 0; i < escapes; i++ {
		b.WriteString("\t{\n\t\ts := make([]int, n)\n\t\tSink = append(Sink, &s)\n\t}\n")
	}
	b.WriteString("}\n")
	if err := os.MkdirAll(filepath.Join(dir, "p"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "p", "p.go"), []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGateEndToEnd drives the real compiler: baseline a module, verify
// a clean re-run passes, seed an extra escape and verify the gate
// trips with exit 1, then -update and verify it passes again.
func TestGateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go build")
	}
	dir := t.TempDir()
	writeTempModule(t, dir, 1)

	var out, errb bytes.Buffer
	if code := run([]string{"-C", dir, "-update", "./p"}, &out, &errb); code != 0 {
		t.Fatalf("-update exit = %d: %s%s", code, out.String(), errb.String())
	}
	out.Reset()
	if code := run([]string{"-C", dir, "./p"}, &out, &errb); code != 0 {
		t.Fatalf("clean diff exit = %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "unchanged") {
		t.Errorf("clean diff output = %q", out.String())
	}

	// The escape class count is position-insensitive, so the seeded
	// regression is the same (file, message) growing — the hard case.
	writeTempModule(t, dir, 2)
	out.Reset()
	if code := run([]string{"-C", dir, "./p"}, &out, &errb); code != 1 {
		t.Fatalf("regression exit = %d, want 1: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "grew 1 -> 2") {
		t.Errorf("regression output = %q", out.String())
	}

	out.Reset()
	if code := run([]string{"-C", dir, "-update", "./p"}, &out, &errb); code != 0 {
		t.Fatalf("re-update exit = %d: %s%s", code, out.String(), errb.String())
	}
	out.Reset()
	if code := run([]string{"-C", dir, "./p"}, &out, &errb); code != 0 {
		t.Fatalf("post-update diff exit = %d: %s%s", code, out.String(), errb.String())
	}

	// Shrinking back is an improvement, not a failure.
	writeTempModule(t, dir, 1)
	out.Reset()
	if code := run([]string{"-C", dir, "./p"}, &out, &errb); code != 0 {
		t.Fatalf("improvement exit = %d, want 0: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "improved") {
		t.Errorf("improvement output = %q", out.String())
	}
}

// TestPackageScopeMismatchRefuses: diffing against a baseline built
// for different packages is a usage error, not a silent pass.
func TestPackageScopeMismatchRefuses(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go build")
	}
	dir := t.TempDir()
	writeTempModule(t, dir, 1)
	var out, errb bytes.Buffer
	if code := run([]string{"-C", dir, "-update", "./p"}, &out, &errb); code != 0 {
		t.Fatalf("-update exit = %d: %s%s", code, out.String(), errb.String())
	}
	if code := run([]string{"-C", dir, "./..."}, &out, &errb); code != 2 {
		t.Fatalf("mismatched scope exit = %d, want 2: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "baseline covers") {
		t.Errorf("stderr = %q", errb.String())
	}
}

// TestMissingBaselineIsUsageError: no ESCAPES.json and no -update.
func TestMissingBaselineIsUsageError(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go build")
	}
	dir := t.TempDir()
	writeTempModule(t, dir, 1)
	var out, errb bytes.Buffer
	if code := run([]string{"-C", dir, "./p"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "-update") {
		t.Errorf("stderr does not point at -update: %q", errb.String())
	}
}
