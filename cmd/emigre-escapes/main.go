// Command emigre-escapes gates the allocation budget of the hot-path
// packages: it runs the compiler's escape analysis (go build
// -gcflags=-m), normalizes the "escapes to heap" / "moved to heap"
// diagnostics into a stable baseline, and fails when code review
// would want to know — a new escape site appeared or an existing one
// multiplied.
//
// Usage:
//
//	go run ./cmd/emigre-escapes            # diff against ESCAPES.json
//	go run ./cmd/emigre-escapes -update    # rewrite the baseline
//	go run ./cmd/emigre-escapes ./internal/ppr
//
// Entries are keyed by (file, message) with an occurrence count, NOT
// by line: moving code around is free, adding heap traffic is not.
// Exit status: 0 clean (improvements are reported but pass), 1 new or
// grown escapes, 2 build or usage failure.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// hotPackages is the default gate scope: the per-request compute path
// (push PPR, graph kernels, vector cache, explanation search).
var hotPackages = []string{
	"./internal/emigre",
	"./internal/hin",
	"./internal/ppr",
	"./internal/pprcache",
}

// Entry is one escape site class: every diagnostic in file with this
// exact message, however many lines carry it.
type Entry struct {
	File    string `json:"file"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

// Baseline is the committed ESCAPES.json document.
type Baseline struct {
	// Packages records the gate scope so a diff is meaningless-proof:
	// comparing runs over different package sets fails loudly.
	Packages []string `json:"packages"`
	Entries  []Entry  `json:"entries"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	var (
		dir      = "."
		baseline = "ESCAPES.json"
		update   = false
	)
	var pkgs []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-C":
			if i+1 >= len(args) {
				fmt.Fprintln(stderr, "emigre-escapes: -C needs a directory")
				return 2
			}
			i++
			dir = args[i]
		case "-baseline":
			if i+1 >= len(args) {
				fmt.Fprintln(stderr, "emigre-escapes: -baseline needs a path")
				return 2
			}
			i++
			baseline = args[i]
		case "-update":
			update = true
		case "-h", "-help", "--help":
			fmt.Fprint(stderr, "usage: emigre-escapes [-C dir] [-baseline ESCAPES.json] [-update] [packages]\n")
			return 2
		default:
			if strings.HasPrefix(args[i], "-") {
				fmt.Fprintf(stderr, "emigre-escapes: unknown flag %s\n", args[i])
				return 2
			}
			pkgs = append(pkgs, args[i])
		}
	}
	if len(pkgs) == 0 {
		pkgs = hotPackages
	}
	sort.Strings(pkgs)

	out, err := escapeOutput(dir, pkgs)
	if err != nil {
		fmt.Fprintf(stderr, "emigre-escapes: %v\n", err)
		return 2
	}
	got := Baseline{Packages: pkgs, Entries: parseEscapes(out)}

	path := baseline
	if !filepath.IsAbs(path) {
		path = filepath.Join(dir, path)
	}
	if update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "emigre-escapes: %v\n", err)
			return 2
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "emigre-escapes: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s: %d escape classes across %d packages\n", baseline, len(got.Entries), len(pkgs))
		return 0
	}

	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "emigre-escapes: %v (run with -update to create the baseline)\n", err)
		return 2
	}
	var want Baseline
	if err := json.Unmarshal(data, &want); err != nil {
		fmt.Fprintf(stderr, "emigre-escapes: %s: %v\n", baseline, err)
		return 2
	}
	if !equalStrings(want.Packages, pkgs) {
		fmt.Fprintf(stderr, "emigre-escapes: baseline covers %v, this run covers %v; rerun with matching packages or -update\n",
			want.Packages, pkgs)
		return 2
	}

	regressions, improvements := diff(want.Entries, got.Entries)
	for _, line := range improvements {
		fmt.Fprintf(stdout, "improved: %s\n", line)
	}
	if len(regressions) > 0 {
		for _, line := range regressions {
			fmt.Fprintf(stdout, "REGRESSION: %s\n", line)
		}
		fmt.Fprintf(stdout, "%d new or grown escape class(es); if intentional, rerun with -update and justify in the PR\n", len(regressions))
		return 1
	}
	if len(improvements) > 0 {
		fmt.Fprintf(stdout, "allocation budget improved; rerun with -update to ratchet the baseline down\n")
	} else {
		fmt.Fprintf(stdout, "allocation budget unchanged: %d escape classes\n", len(got.Entries))
	}
	return 0
}

// escapeOutput builds pkgs with -gcflags=-m and returns the combined
// diagnostics. The compiler replays diagnostics from the build cache,
// so repeat runs are cheap and deterministic. A build failure is an
// error; -m diagnostics land on stderr next to it, so the output is
// returned only when the build succeeded.
func escapeOutput(dir string, pkgs []string) ([]byte, error) {
	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m"}, pkgs...)...)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, buf.String())
	}
	return buf.Bytes(), nil
}

// parseEscapes extracts heap-escape diagnostics from -m output and
// folds them into sorted (file, message, count) entries. Positions are
// deliberately discarded: the key survives unrelated line churn. Paths
// outside the module (absolute GOROOT paths from inlined generic
// instantiations) are skipped — stdlib internals are not ours to gate.
func parseEscapes(out []byte) []Entry {
	counts := map[Entry]int{}
	for _, line := range strings.Split(string(out), "\n") {
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		// file.go:line:col: message
		parts := strings.SplitN(line, ":", 4)
		if len(parts) != 4 {
			continue
		}
		file := strings.TrimSpace(parts[0])
		if file == "" || filepath.IsAbs(file) || !strings.HasSuffix(file, ".go") {
			continue
		}
		msg := strings.TrimSpace(parts[3])
		counts[Entry{File: filepath.ToSlash(file), Message: msg}]++
	}
	entries := make([]Entry, 0, len(counts))
	for e, n := range counts {
		e.Count = n
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].File != entries[j].File {
			return entries[i].File < entries[j].File
		}
		return entries[i].Message < entries[j].Message
	})
	return entries
}

// diff compares baseline entries to the current run. A key present
// only in got, or with a higher count, is a regression; a key that
// shrank or vanished is an improvement.
func diff(want, got []Entry) (regressions, improvements []string) {
	wantN := map[Entry]int{}
	for _, e := range want {
		wantN[Entry{File: e.File, Message: e.Message}] = e.Count
	}
	gotN := map[Entry]int{}
	for _, e := range got {
		key := Entry{File: e.File, Message: e.Message}
		gotN[key] = e.Count
		old, ok := wantN[key]
		switch {
		case !ok:
			regressions = append(regressions, fmt.Sprintf("%s: %q is a new escape (%d site(s))", e.File, e.Message, e.Count))
		case e.Count > old:
			regressions = append(regressions, fmt.Sprintf("%s: %q grew %d -> %d", e.File, e.Message, old, e.Count))
		case e.Count < old:
			improvements = append(improvements, fmt.Sprintf("%s: %q shrank %d -> %d", e.File, e.Message, old, e.Count))
		}
	}
	for _, e := range want {
		if _, ok := gotN[Entry{File: e.File, Message: e.Message}]; !ok {
			improvements = append(improvements, fmt.Sprintf("%s: %q eliminated (was %d)", e.File, e.Message, e.Count))
		}
	}
	sort.Strings(regressions)
	sort.Strings(improvements)
	return regressions, improvements
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
