// Command emigre-eval regenerates the paper's evaluation (§6): it
// builds the evaluation graph, enumerates (user, Why-Not item)
// scenarios, runs the eight method configurations of §6.2, and prints
// the requested tables and figures.
//
//	emigre-eval -preset small                        # quick sanity run
//	emigre-eval -preset amazon -users 25 -scenarios 3
//	emigre-eval -preset amazon -table 4              # dataset shape only
//	emigre-eval -preset small -csv outcomes.csv
//
// The -users and -scenarios flags subsample the paper's 100 × 9 matrix;
// the full matrix on the full-scale graph runs for tens of minutes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	emigre "github.com/why-not-xai/emigre"
	"github.com/why-not-xai/emigre/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("emigre-eval: ")
	var (
		preset     = flag.String("preset", "small", "dataset preset: small or amazon")
		seed       = flag.Int64("seed", 1, "generator seed")
		users      = flag.Int("users", 10, "users to evaluate (0 = all sampled users)")
		scenarios  = flag.Int("scenarios", 3, "Why-Not questions per user (0 = all of top-N)")
		topn       = flag.Int("topn", 10, "recommendation list length")
		epsilon    = flag.Float64("epsilon", 2.7e-8, "local-push residual threshold")
		beta       = flag.Float64("beta", 0.5, "transition mix (paper: 0.5)")
		maxTests   = flag.Int("max-tests", 200, "CHECK budget per query")
		bruteTests = flag.Int("brute-tests", 2000, "CHECK budget for the brute-force oracle")
		table      = flag.Int("table", 0, "print only this table (4 or 5)")
		figure     = flag.Int("figure", 0, "print only this figure (4, 5 or 6)")
		csvPath    = flag.String("csv", "", "also export per-outcome CSV")
		mdPath     = flag.String("markdown", "", "also export the figures as a Markdown report")
		breakdown  = flag.Bool("breakdown", false, "also print success rate by Why-Not item rank")
		methodsArg = flag.String("methods", "", "comma-separated method subset (default: all eight)")
		workers    = flag.Int("workers", 1, "combined concurrency budget (scenario workers × check-workers)")
		checkWkrs  = flag.Int("check-workers", 1, "parallel CHECK workers per query, carved out of -workers")
		deltaCheck = flag.Bool("delta-check", false, "screen CHECKs with warm-start delta pushes from the cached base state")
		deltaEdits = flag.Int("delta-max-edits", 0, "edit-set size above which a delta CHECK falls back to a full recompute (0 = default)")
		sweepFlag  = flag.Bool("sweep", false, "run an α/β hyper-parameter sweep (remove_ex + add_incremental) instead of the figures")
		quiet      = flag.Bool("quiet", false, "suppress the progress meter")
		metricsOut = flag.String("metrics-out", "", "dump the run's metrics (Prometheus text format) to this file on exit")
	)
	flag.Parse()

	ds, sampled, err := buildDataset(*preset, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluation graph: %d nodes, %d directed edges, %d sampled users\n\n",
		ds.Graph.NumNodes(), ds.Graph.NumEdges(), len(sampled))

	if *table == 4 {
		if err := emigre.RenderTable4(os.Stdout, ds.Graph); err != nil {
			log.Fatal(err)
		}
		return
	}

	cfg := emigre.DefaultRecommenderConfig(ds.Types.Item)
	cfg.PPR.Epsilon = *epsilon
	cfg.Beta = *beta
	r, err := emigre.NewRecommender(ds.Graph, cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *users > 0 && *users < len(sampled) {
		sampled = sampled[:*users]
	}
	base := emigre.Options{
		AllowedEdgeTypes: ds.UserActionEdgeTypes(),
		AddEdgeType:      ds.Types.Reviewed,
		MaxTests:         *maxTests,
		DeltaCheck:       *deltaCheck,
		DeltaMaxEdits:    *deltaEdits,
	}
	brute := base
	brute.MaxTests = *bruteTests

	methods, err := selectMethods(*methodsArg)
	if err != nil {
		log.Fatal(err)
	}

	if *sweepFlag {
		runSweep(ds, sampled, base, *topn, *scenarios, *workers)
		writeMetrics(*metricsOut)
		return
	}

	runner := emigre.NewEvalRunner(ds.Graph, r)
	evalCfg := emigre.EvalConfig{
		Users:               sampled,
		TopN:                *topn,
		MaxScenariosPerUser: *scenarios,
		Methods:             methods,
		Explainer:           base,
		Overrides:           map[string]emigre.Options{"remove_brute": brute},
		Workers:             *workers,
		CheckWorkers:        *checkWkrs,
	}
	if !*quiet {
		evalCfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d", done, total)
		}
	}
	results, err := runner.Run(evalCfg)
	if err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	fmt.Printf("%d scenarios × %d methods\n\n", len(results.Scenarios), len(methods))

	type section struct {
		table, figure int
		render        func() error
	}
	sections := []section{
		{figure: 4, render: func() error { return emigre.RenderFigure4(os.Stdout, results) }},
		{figure: 5, render: func() error { return emigre.RenderFigure5(os.Stdout, results) }},
		{figure: 6, render: func() error { return emigre.RenderFigure6(os.Stdout, results) }},
		{table: 5, render: func() error { return emigre.RenderTable5(os.Stdout, results) }},
	}
	for _, s := range sections {
		if *table != 0 && s.table != *table {
			continue
		}
		if *figure != 0 && s.figure != *figure {
			continue
		}
		if err := s.render(); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	if *breakdown {
		if err := emigre.RenderRankBreakdown(os.Stdout, results); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := results.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if *mdPath != "" {
		f, err := os.Create(*mdPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := results.WriteMarkdown(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *mdPath)
	}
	writeMetrics(*metricsOut)
}

// writeMetrics dumps the process-global registry — the engine counters
// (emigre_ppr_*) and the harness's outcome tallies (emigre_eval_*) the
// run accumulated — as a Prometheus text exposition, so batch runs can
// be post-processed with the same tooling that scrapes the server.
func writeMetrics(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	obs.Default().WritePrometheus(f)
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// runSweep evaluates a grid of (α, β) recommender variants and prints
// a success-rate row per point — the §6.1 design-choice ablation.
func runSweep(ds *emigre.Dataset, sampled []emigre.NodeID, base emigre.Options, topn, scenarios, workers int) {
	var variants []emigre.SweepVariant
	for _, alpha := range []float64{0.1, 0.15, 0.3} {
		for _, beta := range []float64{0.5, 1.0} {
			cfg := emigre.DefaultRecommenderConfig(ds.Types.Item)
			cfg.PPR.Alpha = alpha
			cfg.PPR.Epsilon = 1e-7
			cfg.Beta = beta
			variants = append(variants, emigre.SweepVariant{
				Label: fmt.Sprintf("a=%.2f b=%.1f", alpha, beta),
				Rec:   cfg,
			})
		}
	}
	results, err := emigre.RunSweep(ds.Graph, variants, emigre.EvalConfig{
		Users:               sampled,
		TopN:                topn,
		MaxScenariosPerUser: scenarios,
		Methods: []emigre.EvalMethodSpec{
			{Name: "remove_ex", Mode: emigre.Remove, Method: emigre.Exhaustive},
			{Name: "add_incremental", Mode: emigre.Add, Method: emigre.Incremental},
		},
		Explainer: base,
		Workers:   workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := emigre.RenderSweep(os.Stdout, results); err != nil {
		log.Fatal(err)
	}
}

func buildDataset(preset string, seed int64) (*emigre.Dataset, []emigre.NodeID, error) {
	switch preset {
	case "small":
		cfg := emigre.SmallDatasetConfig()
		cfg.Seed = seed
		ds, err := emigre.GenerateDataset(cfg)
		if err != nil {
			return nil, nil, err
		}
		return ds, ds.Users, nil
	case "amazon":
		cfg := emigre.DefaultDatasetConfig()
		cfg.Seed = seed
		ds, err := emigre.GenerateDataset(cfg)
		if err != nil {
			return nil, nil, err
		}
		lcfg := emigre.DefaultLiteConfig()
		lcfg.Seed = seed
		lite, sampled, err := ds.Lite(lcfg)
		if err != nil {
			return nil, nil, err
		}
		return lite, sampled, nil
	default:
		return nil, nil, fmt.Errorf("unknown preset %q (want small or amazon)", preset)
	}
}

func selectMethods(arg string) ([]emigre.EvalMethodSpec, error) {
	all := emigre.PaperMethods()
	if arg == "" {
		return all, nil
	}
	byName := map[string]emigre.EvalMethodSpec{}
	for _, m := range append(all, emigre.ExtensionMethods()...) {
		byName[m.Name] = m
	}
	var out []emigre.EvalMethodSpec
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown method %q", name)
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no methods selected")
	}
	return out, nil
}
