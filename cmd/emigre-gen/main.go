// Command emigre-gen generates the library's benchmark graphs and
// writes them to disk.
//
//	emigre-gen -preset amazon -out amazon.json       # full paper scale
//	emigre-gen -preset lite -out lite.json           # + Amazon-Lite sampling
//	emigre-gen -preset small -format tsv -out s.tsv  # quick experiments
//	emigre-gen -preset books -stats                  # Figure-1 toy graph
//
// With -stats the tool prints the Table-4 degree statistics of the
// generated graph; with no -out it only prints statistics.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	emigre "github.com/why-not-xai/emigre"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("emigre-gen: ")
	var (
		preset = flag.String("preset", "small", "graph preset: amazon, lite, small, books")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("out", "", "output file (empty: stats only)")
		format = flag.String("format", "json", "output format: json or tsv")
		stats  = flag.Bool("stats", true, "print Table-4 degree statistics")
	)
	flag.Parse()

	g, err := buildGraph(*preset, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s graph: %d nodes, %d directed edges\n", *preset, g.NumNodes(), g.NumEdges())
	if *stats {
		if err := emigre.RenderTable4(os.Stdout, g); err != nil {
			log.Fatal(err)
		}
	}
	if *out == "" {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	switch *format {
	case "json":
		err = g.WriteJSON(f)
	case "tsv":
		err = g.WriteTSV(f)
	default:
		err = fmt.Errorf("unknown format %q (want json or tsv)", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%s)\n", *out, *format)
}

func buildGraph(preset string, seed int64) (*emigre.Graph, error) {
	switch preset {
	case "books":
		b, err := emigre.NewBooks()
		if err != nil {
			return nil, err
		}
		return b.Graph, nil
	case "small":
		cfg := emigre.SmallDatasetConfig()
		cfg.Seed = seed
		ds, err := emigre.GenerateDataset(cfg)
		if err != nil {
			return nil, err
		}
		return ds.Graph, nil
	case "amazon":
		cfg := emigre.DefaultDatasetConfig()
		cfg.Seed = seed
		ds, err := emigre.GenerateDataset(cfg)
		if err != nil {
			return nil, err
		}
		return ds.Graph, nil
	case "lite":
		cfg := emigre.DefaultDatasetConfig()
		cfg.Seed = seed
		ds, err := emigre.GenerateDataset(cfg)
		if err != nil {
			return nil, err
		}
		lcfg := emigre.DefaultLiteConfig()
		lcfg.Seed = seed
		lite, _, err := ds.Lite(lcfg)
		if err != nil {
			return nil, err
		}
		return lite.Graph, nil
	default:
		return nil, fmt.Errorf("unknown preset %q (want amazon, lite, small, books)", preset)
	}
}
