// Command emigre-router fronts a fleet of emigre-server backends: it
// consistent-hashes each request's user over the backend ring (so warm
// PPR push state and cached vectors stay shard-local), probes backend
// readiness and routes around draining or dead nodes, hedges slow
// explain requests against the ring successor, and coalesces
// multi-user batches into per-backend fan-outs.
//
//	emigre-router -listen :8090 -backends 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083
//
// Endpoints (JSON, mirror emigre-server's shapes byte for byte):
//
//	GET  /healthz
//	GET  /readyz
//	GET  /metrics
//	GET  /recommend?user=Paul&n=10
//	POST /explain        {"user":"Paul","wni":"Harry Potter","mode":"remove"}
//	POST /explain/batch  {"requests":[{...},{...}]}
//	POST /diagnose       {"user":"Paul","wni":"The Hobbit","mode":"remove"}
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/why-not-xai/emigre/internal/obs"
	"github.com/why-not-xai/emigre/internal/router"
	"github.com/why-not-xai/emigre/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("emigre-router: ")
	var (
		listen   = flag.String("listen", ":8090", "listen address")
		backends = flag.String("backends", "",
			"comma-separated emigre-server base URLs or host:port addresses (required)")
		vnodes = flag.Int("virtual-nodes", router.DefaultVirtualNodes,
			"virtual nodes per backend on the consistent-hash ring")
		probeInterval = flag.Duration("probe-interval", router.DefaultProbeInterval,
			"backend /readyz poll period (keep it under the backends' -drain-grace)")
		hedgeAfter = flag.Duration("hedge-after", 0,
			"fixed hedge trigger for slow requests (0 = adaptive per-op p95)")
		failoverLegs = flag.Int("failover-legs", router.DefaultFailoverLegs,
			"max distinct backends one request may try, hedge leg included (1 = no hedging)")
		maxConcurrent = flag.Int64("max-concurrent", router.DefaultMaxConcurrent,
			"request units admitted at once at the router front door (a batch costs its size)")
		queueDepth = flag.Int("queue-depth", router.DefaultQueueDepth,
			"requests allowed to wait for admission before 503 (0 = no queue)")
		upstreamTimeout = flag.Duration("upstream-timeout", router.DefaultUpstreamTimeout,
			"end-to-end deadline per routed call, hedge legs included")
		upstreamAttempts = flag.Int("upstream-attempts", router.DefaultUpstreamAttempts,
			"resilient-client attempts per backend leg")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second,
			"how long to wait for in-flight requests on shutdown")
		drainGrace = flag.Duration("drain-grace", server.DefaultDrainGrace,
			"how long /readyz serves 503 while still accepting connections before the listener closes")
	)
	flag.Parse()

	if *backends == "" {
		log.Fatal("-backends is required (comma-separated emigre-server addresses)")
	}
	var list []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			list = append(list, b)
		}
	}

	reg := obs.NewRegistry()
	rt, err := router.New(router.Config{
		Backends:         list,
		VirtualNodes:     *vnodes,
		ProbeInterval:    *probeInterval,
		HedgeAfter:       *hedgeAfter,
		FailoverLegs:     *failoverLegs,
		MaxConcurrent:    *maxConcurrent,
		QueueDepth:       *queueDepth,
		UpstreamTimeout:  *upstreamTimeout,
		UpstreamAttempts: *upstreamAttempts,
		Logger:           log.Default(),
	}, reg)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	httpServer := &http.Server{Addr: *listen, Handler: rt.Handler()}
	log.Printf("routing %d backends on %s (vnodes=%d, legs=%d)",
		len(list), *listen, *vnodes, *failoverLegs)

	// Serve until SIGINT/SIGTERM, then drain in the order the fleet's
	// own prober depends on: readiness 503 first, grace window, then
	// listener close.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	//lint:allow goroleak listener runs for the process lifetime; ListenAndServe returns into the buffered errc when DrainOrdered shuts it down below
	go func() { errc <- httpServer.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("shutdown signal received, draining (readiness grace %v, then up to %v for in-flight work)", *drainGrace, *drainTimeout)
		if err := server.DrainOrdered(rt, httpServer, *drainGrace, *drainTimeout); err != nil {
			log.Fatalf("drain incomplete: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		log.Print("drained cleanly")
	}
}
