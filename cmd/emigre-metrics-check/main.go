// Command emigre-metrics-check validates a Prometheus text exposition
// read from stdin (or a file) against the format contract obs
// implements: HELP/TYPE headers, label syntax, histogram bucket
// invariants. CI pipes a live /metrics scrape through it and asserts
// the families every instrumented layer must export are present:
//
//	curl -fsS localhost:8080/metrics | emigre-metrics-check \
//	    -require emigre_http_requests_total,emigre_ppr_runs_total
//
// Exit status is 0 when the exposition is valid and every required
// family appears, non-zero otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"github.com/why-not-xai/emigre/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("emigre-metrics-check: ")
	var (
		input   = flag.String("input", "-", "exposition file to check (- = stdin)")
		require = flag.String("require", "", "comma-separated metric families that must be present")
		quiet   = flag.Bool("quiet", false, "suppress the summary line")
	)
	flag.Parse()

	var (
		raw []byte
		err error
	)
	if *input == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(*input)
	}
	if err != nil {
		log.Fatal(err)
	}
	if len(raw) == 0 {
		log.Fatal("empty exposition")
	}
	if err := obs.ValidateExposition(raw); err != nil {
		log.Fatal(err)
	}
	// The structural parse complements the validator: it groups samples
	// into families (histogram series under their base name included),
	// so required-family checks don't re-scan raw text.
	exp, err := obs.ParseExposition(raw)
	if err != nil {
		log.Fatal(err)
	}
	families := make(map[string]bool)
	for _, name := range exp.FamilyNames() {
		families[name] = true
	}
	var missing []string
	for _, want := range strings.Split(*require, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		// A histogram family is declared under its base name; accept the
		// base name for its derived _bucket/_sum/_count series too.
		base := want
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if cut, ok := strings.CutSuffix(want, suffix); ok && families[cut] {
				base = cut
				break
			}
		}
		if !families[base] {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		log.Fatalf("valid exposition, but missing required families: %s", strings.Join(missing, ", "))
	}
	if !*quiet {
		fmt.Printf("ok: %d families, %d bytes\n", len(families), len(raw))
	}
}
