// Command emigre-server serves Why-Not explanations over HTTP.
//
//	emigre-server -preset books -addr :8080
//	emigre-server -graph store.json -item-types item -edge-types rated,reviewed
//
// Endpoints (JSON):
//
//	GET  /healthz
//	GET  /stats
//	GET  /recommend?user=Paul&n=10
//	POST /explain   {"user":"Paul","wni":"Harry Potter","mode":"remove","method":"powerset"}
//	POST /explain   {"user":"Paul","items":["A","B"],"mode":"add"}        (group)
//	POST /explain   {"user":"Paul","category":"Fantasy","mode":"add"}     (category)
//	POST /diagnose  {"user":"Paul","wni":"The Hobbit","mode":"remove"}
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	emigre "github.com/why-not-xai/emigre"
	"github.com/why-not-xai/emigre/internal/cli"
	"github.com/why-not-xai/emigre/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("emigre-server: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		graphPath = flag.String("graph", "", "graph file (JSON/TSV from emigre-gen)")
		preset    = flag.String("preset", "", "built-in graph: books")
		itemTypes = flag.String("item-types", "item", "comma-separated recommendable node types")
		edgeTypes = flag.String("edge-types", "rated,reviewed", "comma-separated T_e (explanation edge types)")
		addType   = flag.String("add-type", "rated", "edge type used for Add-mode suggestions")
		alpha     = flag.Float64("alpha", 0.15, "PPR teleportation probability")
		epsilon   = flag.Float64("epsilon", 2.7e-8, "local-push residual threshold")
		beta      = flag.Float64("beta", 1, "transition mix: 1=weighted walk, 0=uniform")
		maxTests  = flag.Int("max-tests", 200, "CHECK budget per explanation request")
	)
	flag.Parse()

	g, err := cli.LoadGraph(*graphPath, *preset)
	if err != nil {
		log.Fatal(err)
	}
	cfg := emigre.RecommenderConfig{PPR: emigre.DefaultPPRParams(), Beta: *beta}
	cfg.PPR.Alpha = *alpha
	cfg.PPR.Epsilon = *epsilon
	cfg.ItemTypes, err = cli.NodeTypeIDs(g, *itemTypes)
	if err != nil {
		log.Fatal(err)
	}
	r, err := emigre.NewRecommender(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	allowed, err := cli.EdgeTypeIDs(g, *edgeTypes)
	if err != nil {
		log.Fatal(err)
	}
	addIDs, err := cli.EdgeTypeIDs(g, *addType)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Graph:       g,
		Recommender: r,
		Options: emigre.Options{
			AllowedEdgeTypes: emigre.NewEdgeTypeSet(allowed...),
			AddEdgeType:      addIDs[0],
			MaxTests:         *maxTests,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %d nodes / %d edges on %s", g.NumNodes(), g.NumEdges(), *addr)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(httpServer.ListenAndServe())
}
