// Command emigre-server serves Why-Not explanations over HTTP.
//
//	emigre-server -preset books -addr :8080
//	emigre-server -graph store.json -item-types item -edge-types rated,reviewed
//
// Endpoints (JSON):
//
//	GET  /healthz
//	GET  /readyz
//	GET  /stats
//	GET  /recommend?user=Paul&n=10
//	POST /explain   {"user":"Paul","wni":"Harry Potter","mode":"remove","method":"powerset"}
//	POST /explain   {"user":"Paul","items":["A","B"],"mode":"add"}        (group)
//	POST /explain   {"user":"Paul","category":"Fantasy","mode":"add"}     (category)
//	POST /diagnose  {"user":"Paul","wni":"The Hobbit","mode":"remove"}
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	emigre "github.com/why-not-xai/emigre"
	"github.com/why-not-xai/emigre/internal/cli"
	"github.com/why-not-xai/emigre/internal/fault"
	"github.com/why-not-xai/emigre/internal/obs"
	"github.com/why-not-xai/emigre/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("emigre-server: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		graphPath = flag.String("graph", "", "graph file (JSON/TSV from emigre-gen)")
		preset    = flag.String("preset", "", "built-in graph: books")
		itemTypes = flag.String("item-types", "item", "comma-separated recommendable node types")
		edgeTypes = flag.String("edge-types", "rated,reviewed", "comma-separated T_e (explanation edge types)")
		addType   = flag.String("add-type", "rated", "edge type used for Add-mode suggestions")
		alpha     = flag.Float64("alpha", 0.15, "PPR teleportation probability")
		epsilon   = flag.Float64("epsilon", 2.7e-8, "local-push residual threshold")
		beta      = flag.Float64("beta", 1, "transition mix: 1=weighted walk, 0=uniform")
		maxTests  = flag.Int("max-tests", 200, "CHECK budget per explanation request")

		deltaCheck = flag.Bool("delta-check", false,
			"screen explanation CHECKs with warm-start delta pushes from the cached base push state (composes with -explain-workers)")
		deltaEdits = flag.Int("delta-max-edits", emigre.DefaultDeltaMaxEdits,
			"edit-set size above which a delta CHECK falls back to a full recompute")

		explainTimeout = flag.Duration("explain-timeout", server.DefaultExplainTimeout,
			"deadline per /explain or /diagnose request (0 = no deadline)")
		maxConcurrent = flag.Int("max-concurrent", server.DefaultMaxConcurrent,
			"units of explanation work allowed to run at once")
		explainWorkers = flag.Int("explain-workers", 1,
			"parallel CHECK workers per explanation (ordered commit keeps results byte-identical; up to max-concurrent × explain-workers PPR runs in flight)")
		queueDepth = flag.Int("queue-depth", server.DefaultQueueDepth,
			"requests allowed to wait for a slot before 503 (0 = no queue)")
		cacheEntries = flag.Int("cache-entries", emigre.DefaultPPRCacheEntries,
			"PPR-vector cache capacity in entries (0 = caching disabled)")
		cacheBytes = flag.Int64("cache-bytes", emigre.DefaultPPRCacheBytes,
			"PPR-vector cache capacity in bytes (0 = caching disabled)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second,
			"how long to wait for in-flight requests on shutdown")
		drainGrace = flag.Duration("drain-grace", server.DefaultDrainGrace,
			"how long /readyz serves 503 while still accepting connections before the listener closes (give health probers at least one interval; 0 = immediate)")
		noDegrade = flag.Bool("no-degrade", false,
			"disable the degradation ladder: deadline-squeezed explanations 504 instead of stepping down to lean/cache-only/partial answers")
		debugAddr = flag.String("debug-addr", "",
			"optional second listen address serving net/http/pprof, /metrics and /debug/fault; keep it private (empty = off)")
		failpoints = flag.String("failpoints", os.Getenv("EMIGRE_FAILPOINTS"),
			"fault-injection schedule, e.g. 'pprcache.fill=error(boom)*1;emigre.check=sleep(25ms)' (default $EMIGRE_FAILPOINTS; test/chaos use only)")
		faultSeed = flag.Int64("fault-seed", 0,
			"seed for probabilistic failpoints (0 = nondeterministic)")
	)
	flag.Parse()

	if *faultSeed != 0 {
		fault.SetSeed(*faultSeed)
	}
	if *failpoints != "" {
		if err := fault.Apply(*failpoints); err != nil {
			log.Fatalf("-failpoints: %v", err)
		}
		log.Printf("fault injection armed: %d site(s) — NOT for production traffic", fault.ArmedCount())
	}

	g, err := cli.LoadGraph(*graphPath, *preset)
	if err != nil {
		log.Fatal(err)
	}
	cfg := emigre.RecommenderConfig{PPR: emigre.DefaultPPRParams(), Beta: *beta}
	cfg.PPR.Alpha = *alpha
	cfg.PPR.Epsilon = *epsilon
	cfg.ItemTypes, err = cli.NodeTypeIDs(g, *itemTypes)
	if err != nil {
		log.Fatal(err)
	}
	r, err := emigre.NewRecommender(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	allowed, err := cli.EdgeTypeIDs(g, *edgeTypes)
	if err != nil {
		log.Fatal(err)
	}
	addIDs, err := cli.EdgeTypeIDs(g, *addType)
	if err != nil {
		log.Fatal(err)
	}
	// The flags read "0 = disabled"; Config reads "0 = default,
	// negative = disabled". Same for the queue depth and cache bounds.
	timeout := *explainTimeout
	if timeout == 0 {
		timeout = -1
	}
	queue := *queueDepth
	if queue == 0 {
		queue = -1
	}
	entries := *cacheEntries
	if entries == 0 {
		entries = -1
	}
	bytes := *cacheBytes
	if bytes == 0 {
		bytes = -1
	}
	srv, err := server.New(server.Config{
		Graph:       g,
		Recommender: r,
		Options: emigre.Options{
			AllowedEdgeTypes: emigre.NewEdgeTypeSet(allowed...),
			AddEdgeType:      addIDs[0],
			MaxTests:         *maxTests,
			DeltaCheck:       *deltaCheck,
			DeltaMaxEdits:    *deltaEdits,
		},
		ExplainTimeout:  timeout,
		MaxConcurrent:   *maxConcurrent,
		ExplainWorkers:  *explainWorkers,
		QueueDepth:      queue,
		CacheEntries:    entries,
		CacheBytes:      bytes,
		DisableDegraded: *noDegrade,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %d nodes / %d edges on %s", g.NumNodes(), g.NumEdges(), *addr)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The debug listener is opt-in and separate from the API address so
	// profiling endpoints never face the public side: pprof handlers are
	// registered explicitly on a private mux (importing net/http/pprof
	// for side effects would mount them on http.DefaultServeMux for
	// every caller of this package's libraries).
	if *debugAddr != "" {
		dm := http.NewServeMux()
		dm.HandleFunc("/debug/pprof/", pprof.Index)
		dm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dm.Handle("/metrics", obs.Handler(obs.Default()))
		dm.Handle("/debug/fault", fault.Handler())
		debugServer := &http.Server{
			Addr:              *debugAddr,
			Handler:           dm,
			ReadHeaderTimeout: 10 * time.Second,
		}
		log.Printf("debug endpoints (pprof, /metrics) on %s", *debugAddr)
		//lint:allow goroleak listener runs for the process lifetime; ListenAndServe returns when the deferred debugServer.Close fires at shutdown
		go func() {
			if err := debugServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
		defer debugServer.Close()
	}

	// Serve until SIGINT/SIGTERM, then drain: flip /readyz to 503 so
	// load balancers stop sending traffic, and give in-flight
	// explanations up to -drain-timeout to finish.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	//lint:allow goroleak listener runs for the process lifetime; ListenAndServe returns into the buffered errc when Shutdown drains below
	go func() { errc <- httpServer.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("shutdown signal received, draining (readiness grace %v, then up to %v for in-flight work)", *drainGrace, *drainTimeout)
		if err := server.DrainOrdered(srv, httpServer, *drainGrace, *drainTimeout); err != nil {
			log.Fatalf("drain incomplete: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		log.Print("drained cleanly")
	}
}
