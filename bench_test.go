// Benchmarks regenerating the paper's evaluation artifacts (§6). One
// benchmark per table and figure:
//
//	BenchmarkTable4_DegreeStats       — dataset shape (Table 4)
//	BenchmarkFigure4_SuccessRate      — success rate per method (Figure 4)
//	BenchmarkFigure5_RelativeSuccess  — success vs brute force (Figure 5)
//	BenchmarkFigure6_ExplanationSize  — explanation size (Figure 6)
//	BenchmarkTable5_Runtime           — runtime per method (Table 5)
//	BenchmarkRunningExample           — Figures 1a/1b/2, Tables 1-3 machinery
//
// The benchmark fixture is the scaled-down synthetic store so `go test
// -bench=.` completes in minutes; cmd/emigre-eval reproduces the same
// artifacts at the paper's full scale (see EXPERIMENTS.md). Non-time
// metrics are attached with b.ReportMetric: success rates as
// "success-%", sizes as "edges/expl".
package emigre_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	emigre "github.com/why-not-xai/emigre"
)

type benchEnv struct {
	ds        *emigre.Dataset
	rec       *emigre.Recommender
	ex        *emigre.Explainer
	bruteEx   *emigre.Explainer
	scenarios []emigre.EvalScenario
}

var (
	benchOnce sync.Once
	benchErr  error
	env       benchEnv
)

func setup(b *testing.B) *benchEnv {
	b.Helper()
	benchOnce.Do(func() {
		cfg := emigre.SmallDatasetConfig()
		ds, err := emigre.GenerateDataset(cfg)
		if err != nil {
			benchErr = err
			return
		}
		rcfg := emigre.DefaultRecommenderConfig(ds.Types.Item)
		rcfg.PPR.Epsilon = 1e-7
		r, err := emigre.NewRecommender(ds.Graph, rcfg)
		if err != nil {
			benchErr = err
			return
		}
		base := emigre.Options{
			AllowedEdgeTypes: ds.UserActionEdgeTypes(),
			AddEdgeType:      ds.Types.Reviewed,
			MaxTests:         60,
		}
		brute := base
		brute.MaxTests = 500
		runner := emigre.NewEvalRunner(ds.Graph, r)
		scenarios, err := runner.Scenarios(ds.Users[:8], 10, 2)
		if err != nil {
			benchErr = err
			return
		}
		env = benchEnv{
			ds:        ds,
			rec:       r,
			ex:        emigre.NewExplainer(ds.Graph, r, base),
			bruteEx:   emigre.NewExplainer(ds.Graph, r, brute),
			scenarios: scenarios,
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	if len(env.scenarios) == 0 {
		b.Fatal("no benchmark scenarios")
	}
	return &env
}

func (e *benchEnv) explainerFor(m emigre.EvalMethodSpec) *emigre.Explainer {
	if m.Method == emigre.BruteForce {
		return e.bruteEx
	}
	return e.ex
}

// runScenario answers one Why-Not question; it returns (found, size).
func (e *benchEnv) runScenario(b *testing.B, m emigre.EvalMethodSpec, i int) (bool, int) {
	b.Helper()
	sc := e.scenarios[i%len(e.scenarios)]
	expl, err := e.explainerFor(m).ExplainWith(
		emigre.Query{User: sc.User, WNI: sc.WNI}, m.Mode, m.Method)
	if err != nil {
		if errors.Is(err, emigre.ErrNoExplanation) {
			return false, 0
		}
		b.Fatal(err)
	}
	if !expl.Verified {
		ok, err := e.explainerFor(m).Verify(expl)
		if err != nil {
			b.Fatal(err)
		}
		return ok, expl.Size()
	}
	return true, expl.Size()
}

// BenchmarkTable4_DegreeStats regenerates the dataset shape row of the
// evaluation: the per-node-type degree statistics of Table 4. The
// generation pass itself is benchmarked as a sub-benchmark.
func BenchmarkTable4_DegreeStats(b *testing.B) {
	e := setup(b)
	b.Run("stats", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows := emigre.DegreeStats(e.ds.Graph)
			if len(rows) == 0 {
				b.Fatal("no stats rows")
			}
		}
	})
	b.Run("generate-small", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := emigre.SmallDatasetConfig()
			cfg.Seed = int64(i + 1)
			if _, err := emigre.GenerateDataset(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFigure4_SuccessRate measures every §6.2 method over the
// scenario set and reports its success rate — the bars of Figure 4.
func BenchmarkFigure4_SuccessRate(b *testing.B) {
	e := setup(b)
	for _, m := range emigre.PaperMethods() {
		b.Run(m.Name, func(b *testing.B) {
			correct := 0
			for i := 0; i < b.N; i++ {
				if ok, _ := e.runScenario(b, m, i); ok {
					correct++
				}
			}
			b.ReportMetric(100*float64(correct)/float64(b.N), "success-%")
		})
	}
}

// BenchmarkFigure5_RelativeSuccess measures remove-mode methods only on
// the scenarios the brute-force oracle solves — the bars of Figure 5.
func BenchmarkFigure5_RelativeSuccess(b *testing.B) {
	e := setup(b)
	bruteSpec := emigre.EvalMethodSpec{Name: "remove_brute", Mode: emigre.Remove, Method: emigre.BruteForce}
	var solvable []int
	for i := range e.scenarios {
		if ok, _ := e.runScenario(b, bruteSpec, i); ok {
			solvable = append(solvable, i)
		}
	}
	if len(solvable) == 0 {
		b.Skip("brute force solved no scenario at this scale")
	}
	for _, m := range emigre.PaperMethods() {
		if m.Mode != emigre.Remove {
			continue
		}
		b.Run(m.Name, func(b *testing.B) {
			correct := 0
			for i := 0; i < b.N; i++ {
				if ok, _ := e.runScenario(b, m, solvable[i%len(solvable)]); ok {
					correct++
				}
			}
			b.ReportMetric(100*float64(correct)/float64(b.N), "rel-success-%")
		})
	}
}

// BenchmarkFigure6_ExplanationSize reports the average explanation size
// per method — the bars of Figure 6.
func BenchmarkFigure6_ExplanationSize(b *testing.B) {
	e := setup(b)
	for _, m := range emigre.PaperMethods() {
		b.Run(m.Name, func(b *testing.B) {
			totalSize, found := 0, 0
			for i := 0; i < b.N; i++ {
				if ok, size := e.runScenario(b, m, i); ok {
					totalSize += size
					found++
				}
			}
			if found > 0 {
				b.ReportMetric(float64(totalSize)/float64(found), "edges/expl")
			}
		})
	}
}

// BenchmarkTable5_Runtime is the runtime matrix of Table 5: ns/op per
// method over the mixed found/not-found scenario stream (column a); the
// split columns are reported as found-% so the reader can relate the
// mean to the mixture.
func BenchmarkTable5_Runtime(b *testing.B) {
	e := setup(b)
	for _, m := range emigre.PaperMethods() {
		b.Run(m.Name, func(b *testing.B) {
			found := 0
			for i := 0; i < b.N; i++ {
				if ok, _ := e.runScenario(b, m, i); ok {
					found++
				}
			}
			b.ReportMetric(100*float64(found)/float64(b.N), "found-%")
		})
	}
}

// BenchmarkAblation_HyperParameters sweeps the α and β design choices
// of §6.1 over the small store, reporting each variant's remove-mode
// success rate — the ablation DESIGN.md calls out for the β-mixed
// transition.
func BenchmarkAblation_HyperParameters(b *testing.B) {
	e := setup(b)
	variants := []emigre.SweepVariant{}
	for _, alpha := range []float64{0.1, 0.15, 0.3} {
		for _, beta := range []float64{0.5, 1.0} {
			cfg := emigre.DefaultRecommenderConfig(e.ds.Types.Item)
			cfg.PPR.Alpha = alpha
			cfg.PPR.Epsilon = 1e-7
			cfg.Beta = beta
			variants = append(variants, emigre.SweepVariant{
				Label: fmt.Sprintf("a=%.2f,b=%.1f", alpha, beta),
				Rec:   cfg,
			})
		}
	}
	evalCfg := emigre.EvalConfig{
		Users:               e.ds.Users[:4],
		TopN:                4,
		MaxScenariosPerUser: 1,
		Methods: []emigre.EvalMethodSpec{
			{Name: "remove_ex", Mode: emigre.Remove, Method: emigre.Exhaustive},
		},
		Explainer: emigre.Options{
			AllowedEdgeTypes: e.ds.UserActionEdgeTypes(),
			AddEdgeType:      e.ds.Types.Reviewed,
			MaxTests:         40,
		},
	}
	for i := 0; i < b.N; i++ {
		sweep, err := emigre.RunSweep(e.ds.Graph, variants, evalCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range sweep {
				if st, ok := p.Results.StatsFor("remove_ex"); ok {
					b.ReportMetric(100*st.SuccessRate, p.Label+"-success-%")
				}
			}
		}
	}
}

// BenchmarkRunningExample replays the paper's Figure 1/2 story on the
// books graph: the Remove-mode and Add-mode explanations (whose
// Exhaustive variant exercises the Tables 1-3 contribution-matrix
// machinery) and the PRINCE contrast.
func BenchmarkRunningExample(b *testing.B) {
	books, err := emigre.NewBooks()
	if err != nil {
		b.Fatal(err)
	}
	cfg := emigre.DefaultRecommenderConfig(books.Types.Item)
	cfg.Beta = 1
	r, err := emigre.NewRecommender(books.Graph, cfg)
	if err != nil {
		b.Fatal(err)
	}
	ex := emigre.NewExplainer(books.Graph, r, emigre.Options{
		AllowedEdgeTypes: books.ActionEdgeTypes(),
		AddEdgeType:      books.Types.Rated,
	})
	q := emigre.Query{User: books.Paul, WNI: books.HarryPotter}
	b.Run("figure1a-remove-exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ex.ExplainWith(q, emigre.Remove, emigre.Exhaustive); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("figure1b-add-powerset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ex.ExplainWith(q, emigre.Add, emigre.Powerset); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("figure2-prince", func(b *testing.B) {
		pr := emigre.NewPrinceExplainer(books.Graph, r, emigre.PrinceOptions{
			AllowedEdgeTypes: books.ActionEdgeTypes(),
		})
		for i := 0; i < b.N; i++ {
			if _, err := pr.Explain(books.Paul); err != nil {
				b.Fatal(err)
			}
		}
	})
}
