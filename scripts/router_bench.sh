#!/usr/bin/env bash
# router_bench.sh — produce BENCH_router.json, the horizontal scale-out
# baseline for cmd/emigre-router.
#
# Topology A: one backend behind the router. Topology B: three backends
# behind the router. Both legs run the identical seeded closed-loop
# emigre-loadgen stream through the router, so the request mix
# (including the deterministic 422 share) is byte-identical and the
# error rates must match; only the backend count differs.
#
# Per-node capacity is emulated machine-independently: every backend
# runs with -max-concurrent 1 (one explain in service at a time) and a
# 40ms injected CHECK sleep, so a node's ceiling is ~25 explains/s
# regardless of host core count or speed. Scale-out throughput then
# comes from the router fanning the keyspace across nodes — which is
# the property this bench gates — not from oversubscribing local CPUs,
# and the committed numbers reproduce on a 1-core CI runner.
#
# The workload is the emigre-gen small graph: 30 users (user-0..29)
# hit uniformly, so shard load tracks the hash split. BASE_PORT is
# pinned to an even split of that population (10/10/10 at 18128) —
# backend identity is its address, so the split is a deterministic
# function of the ports, and an adversarial split would measure hash
# variance on a 30-key population rather than router scale-out.
#
# Usage: scripts/router_bench.sh [out.json]   (default BENCH_router.json)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_router.json}"
BASE_PORT="${BASE_PORT:-18128}"
COUNT="${COUNT:-600}"
SEED="${SEED:-7}"
CONCURRENCY="${CONCURRENCY:-10}"
SLEEP_MS="${SLEEP_MS:-40}"
# CHECK budget per request. The sleep makes each CHECK a fixed quantum
# of node capacity; capping the budget bounds the cost of any single
# request, so shard load tracks request count instead of being decided
# by a handful of 200-CHECK whales landing on one shard. The workload
# is diagnose-only: diagnosis runs the same admission-gated CHECK
# machinery but answers 200 for any resolvable pair, so the baseline's
# error rate stays at the true 4xx share (~4%) instead of the ~98%
# "no explanation found" share a random-pair explain stream yields.
MAX_TESTS="${MAX_TESTS:-4}"
OP_MIX="${OP_MIX:-diagnose=1}"
BIN="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/emigre-server" ./cmd/emigre-server
go build -o "$BIN/emigre-router" ./cmd/emigre-router
go build -o "$BIN/emigre-loadgen" ./cmd/emigre-loadgen
go build -o "$BIN/emigre-routerbench" ./cmd/emigre-routerbench
go run ./cmd/emigre-gen -preset small -seed 1 -stats=false -out "$BIN/small.json"

USERS=$(seq -s, -f 'user-%g' 0 29)
ITEMS=$(seq -s, -f 'item-%g' 0 59)

start_backend() { # port
  "$BIN/emigre-server" -graph "$BIN/small.json" -addr "127.0.0.1:$1" \
    -max-concurrent 1 -queue-depth 16 -max-tests "$MAX_TESTS" \
    -failpoints "emigre.check=sleep(${SLEEP_MS}ms)" &
  PIDS+=($!)
}

wait_ready() { # url
  for _ in $(seq 1 100); do
    curl -fsS "$1" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "router_bench: $1 never became ready" >&2
  exit 1
}

run_loadgen() { # router-port out.json desc
  "$BIN/emigre-loadgen" -mode run -addr "http://127.0.0.1:$1" \
    -seed "$SEED" -count "$COUNT" -arrival closed -concurrency "$CONCURRENCY" \
    -op-mix "$OP_MIX" -users "$USERS" -items "$ITEMS" -user-skew 0 -item-skew 0 \
    -bench "$2" -bench-desc "$3" -quiet
}

# --- Topology A: router over one backend -----------------------------
P0=$BASE_PORT
start_backend "$P0"
wait_ready "http://127.0.0.1:$P0/healthz"
RP=$((BASE_PORT + 10))
# -hedge-after 5s: the bench measures sharded throughput, so hedging is
# pinned out of both legs rather than left to the adaptive p95 delay.
"$BIN/emigre-router" -listen "127.0.0.1:$RP" -backends "127.0.0.1:$P0" \
  -hedge-after 5s &
PIDS+=($!)
wait_ready "http://127.0.0.1:$RP/readyz"
run_loadgen "$RP" "$BIN/single.json" "router over 1 backend, closed loop c=$CONCURRENCY"
kill "${PIDS[@]}" 2>/dev/null || true
wait 2>/dev/null || true
PIDS=()

# --- Topology B: router over three backends --------------------------
P1=$((BASE_PORT + 1)); P2=$((BASE_PORT + 2)); P3=$((BASE_PORT + 3))
for p in "$P1" "$P2" "$P3"; do start_backend "$p"; done
for p in "$P1" "$P2" "$P3"; do wait_ready "http://127.0.0.1:$p/healthz"; done
RP3=$((BASE_PORT + 11))
"$BIN/emigre-router" -listen "127.0.0.1:$RP3" \
  -backends "127.0.0.1:$P1,127.0.0.1:$P2,127.0.0.1:$P3" \
  -hedge-after 5s &
PIDS+=($!)
wait_ready "http://127.0.0.1:$RP3/readyz"
run_loadgen "$RP3" "$BIN/routed.json" "router over 3 backends, closed loop c=$CONCURRENCY"

# --- Merge + gate ----------------------------------------------------
"$BIN/emigre-routerbench" -single "$BIN/single.json" -routed "$BIN/routed.json" \
  -out "$OUT" -min-speedup 2.0 -max-error-delta 0.02 \
  -desc "emigre-router scale-out: seeded closed-loop loadgen (seed $SEED, $COUNT ops of $OP_MIX over 30 uniform users, c=$CONCURRENCY) vs 1 and 3 capacity-capped small-graph backends (-max-concurrent 1, ${SLEEP_MS}ms CHECK sleep)"
echo "router_bench: wrote $OUT"
