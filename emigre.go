// Package emigre is the public API of the EMiGRe library — a from-
// scratch Go implementation of "Why-Not Explainable Graph Recommender"
// (Attolou, Tzompanaki, Stefanidis, Kotzinos — ICDE 2024).
//
// EMiGRe answers Why-Not questions over a graph-based recommender:
// given a user and an item they expected to see recommended, it
// computes a counterfactual set of user-rooted edges whose removal from
// — or addition to — the interaction graph makes that item the top-1
// recommendation.
//
// The package re-exports the library's building blocks:
//
//   - the heterogeneous information network (Graph, Overlay, View);
//   - Personalized PageRank engines (PowerEngine, ForwardPushEngine,
//     ReversePushEngine, MonteCarloEngine);
//   - the PPR recommender (Recommender);
//   - the EMiGRe explainer (Explainer) with its Remove/Add modes and
//     Incremental/Powerset/Exhaustive strategies plus the
//     ExhaustiveDirect and BruteForce baselines;
//   - the PRINCE-style Why explainer used as a contrast baseline
//     (PrinceExplainer);
//   - the synthetic Amazon dataset generator and the paper's
//     running-example books graph (GenerateDataset, NewBooks);
//   - the evaluation harness that regenerates the paper's tables and
//     figures (EvalRunner).
//
// Quick start:
//
//	books, _ := emigre.NewBooks()
//	r, _ := emigre.NewRecommender(books.Graph, emigre.RecommenderConfig{
//	    PPR: emigre.DefaultPPRParams(), Beta: 1,
//	    ItemTypes: []emigre.NodeTypeID{books.Types.Item},
//	})
//	ex := emigre.NewExplainer(books.Graph, r, emigre.Options{
//	    AllowedEdgeTypes: books.ActionEdgeTypes(),
//	    AddEdgeType:      books.Types.Rated,
//	})
//	expl, _ := ex.ExplainWith(
//	    emigre.Query{User: books.Paul, WNI: books.HarryPotter},
//	    emigre.Remove, emigre.Powerset)
//	fmt.Println(expl.Describe(books.Graph))
//	// Had you not interacted with C and Candide, your top
//	// recommendation would be Harry Potter.
package emigre

import (
	"context"
	"io"

	"github.com/why-not-xai/emigre/internal/dataset"
	core "github.com/why-not-xai/emigre/internal/emigre"
	"github.com/why-not-xai/emigre/internal/eval"
	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/ppr"
	"github.com/why-not-xai/emigre/internal/pprcache"
	"github.com/why-not-xai/emigre/internal/prince"
	"github.com/why-not-xai/emigre/internal/rec"
)

// Graph substrate (Definition 3.1): a directed, weighted,
// typed multigraph with copy-on-write counterfactual overlays.
type (
	// Graph is a mutable heterogeneous information network.
	Graph = hin.Graph
	// View is the read-only graph interface shared by Graph, Overlay
	// and CSR snapshots.
	View = hin.View
	// Overlay is a counterfactual view applying edge edits to a base
	// view without copying it.
	Overlay = hin.Overlay
	// NodeID identifies a node.
	NodeID = hin.NodeID
	// NodeTypeID identifies a registered node type.
	NodeTypeID = hin.NodeTypeID
	// EdgeTypeID identifies a registered edge type.
	EdgeTypeID = hin.EdgeTypeID
	// Edge is a directed, typed, weighted edge.
	Edge = hin.Edge
	// HalfEdge is an adjacency-list entry.
	HalfEdge = hin.HalfEdge
	// EdgeTypeSet restricts explanations to certain edge types (T_e).
	EdgeTypeSet = hin.EdgeTypeSet
	// TypeRegistry maps type names to IDs.
	TypeRegistry = hin.TypeRegistry
	// TypeDegreeStats is one row of the paper's Table 4.
	TypeDegreeStats = hin.TypeDegreeStats
)

// NewGraph returns an empty heterogeneous information network.
func NewGraph() *Graph { return hin.NewGraph() }

// NewOverlay builds a counterfactual view of base with the given edge
// removals and additions.
func NewOverlay(base View, removals, additions []Edge) (*Overlay, error) {
	return hin.NewOverlay(base, removals, additions)
}

// NewEdgeTypeSet builds an edge-type restriction set; with no arguments
// every type is allowed.
func NewEdgeTypeSet(types ...EdgeTypeID) EdgeTypeSet { return hin.NewEdgeTypeSet(types...) }

// DegreeStats computes per-node-type degree statistics (Table 4).
func DegreeStats(g View) []TypeDegreeStats { return hin.DegreeStats(g) }

// ReadGraphJSON parses a graph written by Graph.WriteJSON.
func ReadGraphJSON(r io.Reader) (*Graph, error) { return hin.ReadJSON(r) }

// ReadGraphTSV parses a graph written by Graph.WriteTSV.
func ReadGraphTSV(r io.Reader) (*Graph, error) { return hin.ReadTSV(r) }

// InvalidNode is returned by failed node lookups.
const InvalidNode = hin.InvalidNode

// Personalized PageRank (Eq. 1).
type (
	// PPRParams holds the PPR hyper-parameters (α, ε, ...).
	PPRParams = ppr.Params
	// PPRVector is a dense score vector indexed by NodeID.
	PPRVector = ppr.Vector
	// PowerEngine is the exact dense reference engine.
	PowerEngine = ppr.Power
	// ForwardPushEngine is Forward Local Push (Eq. 3).
	ForwardPushEngine = ppr.ForwardPush
	// ReversePushEngine is Reverse Local Push (Eq. 4).
	ReversePushEngine = ppr.ReversePush
	// MonteCarloEngine estimates PPR with α-terminated random walks.
	MonteCarloEngine = ppr.MonteCarlo
)

// DefaultPPRParams returns the paper's hyper-parameters: α = 0.15,
// ε = 2.7e-8.
func DefaultPPRParams() PPRParams { return ppr.DefaultParams() }

// NewPowerEngine returns the dense power-iteration engine.
func NewPowerEngine(p PPRParams) *PowerEngine { return ppr.NewPower(p) }

// NewForwardPushEngine returns the Forward Local Push engine.
func NewForwardPushEngine(p PPRParams) *ForwardPushEngine { return ppr.NewForwardPush(p) }

// NewReversePushEngine returns the Reverse Local Push engine.
func NewReversePushEngine(p PPRParams) *ReversePushEngine { return ppr.NewReversePush(p) }

// Recommender (Eq. 2).
type (
	// Recommender ranks items by PPR, excluding the user's neighborhood.
	Recommender = rec.Recommender
	// RecommenderConfig parameterizes a Recommender.
	RecommenderConfig = rec.Config
	// Scored pairs an item with its personalized score.
	Scored = rec.Scored
)

// NewRecommender builds a recommender over g.
func NewRecommender(g View, cfg RecommenderConfig) (*Recommender, error) { return rec.New(g, cfg) }

// PPR-vector caching (internal/pprcache): a versioned, sharded,
// singleflight-deduplicating cache shared between the recommender's
// forward vectors and the explainer's reverse columns. Attach one with
// Recommender.SetCache and/or Options.Cache.
type (
	// PPRCache is the shared vector cache.
	PPRCache = pprcache.Cache
	// PPRCacheConfig bounds a PPRCache (entries, bytes, shards).
	PPRCacheConfig = pprcache.Config
	// PPRCacheStats is a point-in-time snapshot of cache counters.
	PPRCacheStats = pprcache.Stats
)

// NewPPRCache builds a vector cache; zero fields use the package
// defaults (4096 entries, 256 MiB, 16 shards).
func NewPPRCache(cfg PPRCacheConfig) *PPRCache { return pprcache.New(cfg) }

// Default PPR-cache bounds, re-exported for flag defaults.
const (
	DefaultPPRCacheEntries = pprcache.DefaultMaxEntries
	DefaultPPRCacheBytes   = int64(pprcache.DefaultMaxBytes)
)

// DefaultRecommenderConfig returns the paper's setting (α = 0.15,
// ε = 2.7e-8, β = 0.5) for the given recommendable item types.
func DefaultRecommenderConfig(itemTypes ...NodeTypeID) RecommenderConfig {
	return rec.DefaultConfig(itemTypes...)
}

// EMiGRe explainer (the paper's contribution).
type (
	// Explainer answers Why-Not queries.
	Explainer = core.Explainer
	// Options configures an Explainer.
	Options = core.Options
	// Query is one Why-Not question.
	Query = core.Query
	// Explanation is a Why-Not explanation (Definition 4.2).
	Explanation = core.Explanation
	// Mode selects the Remove or Add search space.
	Mode = core.Mode
	// Method selects the explanation strategy.
	Method = core.Method
	// ExplainStats records the work performed per query.
	ExplainStats = core.Stats
	// GroupQuery is a Why-Not question at the set granularity of §4
	// ("why is none of these items recommended?"). Use
	// Explainer.ExplainGroup / Explainer.ExplainCategory.
	GroupQuery = core.GroupQuery
)

// ErrEmptyGroup reports a group query with no valid Why-Not item.
var ErrEmptyGroup = core.ErrEmptyGroup

// Modes and methods.
const (
	// Remove explains with the user's past actions (A⁻).
	Remove = core.Remove
	// Add explains with suggested new actions (A⁺).
	Add = core.Add
	// Combined mixes removals of past actions with suggested new ones —
	// the extension the paper names as future work for §6.4's
	// out-of-scope failures.
	Combined = core.Combined
	// Reweight raises the weight of existing actions ("you should have
	// rated this 5 stars") — the other future-work extension of §7.
	Reweight = core.Reweight

	// Incremental is the runtime-optimized heuristic (Algorithm 3).
	Incremental = core.Incremental
	// Powerset is the size-optimized heuristic (Algorithm 4).
	Powerset = core.Powerset
	// Exhaustive is the Exhaustive Comparison (Algorithm 5).
	Exhaustive = core.Exhaustive
	// ExhaustiveDirect is Exhaustive without the CHECK step.
	ExhaustiveDirect = core.ExhaustiveDirect
	// BruteForce enumerates action subsets (Remove mode only).
	BruteForce = core.BruteForce
)

// Explainer errors.
var (
	// ErrNoExplanation reports an exhausted search space.
	ErrNoExplanation = core.ErrNoExplanation
	// ErrAlreadyTop reports that the Why-Not item already tops the list.
	ErrAlreadyTop = core.ErrAlreadyTop
	// ErrNotWhyNotItem reports a Definition-4.1 violation.
	ErrNotWhyNotItem = core.ErrNotWhyNotItem
	// ErrCanceled reports a search stopped by context cancellation or
	// deadline expiry (returned by the *Context entry points, e.g.
	// Explainer.ExplainContext, as a *CanceledError).
	ErrCanceled = core.ErrCanceled
)

// CanceledError is the concrete error behind ErrCanceled: it wraps the
// context's own error and carries the partial ExplainStats accumulated
// before the search was interrupted.
type CanceledError = core.CanceledError

// DefaultDeltaMaxEdits is the edit-set size above which a delta-screened
// CHECK (Options.DeltaCheck) steps aside for a full recompute,
// re-exported for flag defaults.
const DefaultDeltaMaxEdits = core.DefaultDeltaMaxEdits

// NewExplainer builds a Why-Not explainer over g and its recommender.
func NewExplainer(g *Graph, r *Recommender, opts Options) *Explainer {
	return core.New(g, r, opts)
}

// Parallel CHECK pipeline observability. With Options.Parallelism > 1
// the explainer verifies candidate sets on a speculative worker pool
// with ordered commit (results stay byte-identical to sequential
// search); these types expose its gauges.
type (
	// PipelineStats is a snapshot of the explainer's cumulative CHECK-
	// pipeline counters (Explainer.PipelineStats).
	PipelineStats = core.PipelineStats
	// PipelineRequestStats tallies one request's committed and
	// speculatively wasted checks when attached to the search context
	// with WithPipelineRequestStats.
	PipelineRequestStats = core.PipelineRequestStats
)

// WithPipelineRequestStats attaches a per-request CHECK-pipeline tally
// to ctx; every parallel search under ctx adds its committed and wasted
// check counts to p.
func WithPipelineRequestStats(ctx context.Context, p *PipelineRequestStats) context.Context {
	return core.WithPipelineRequestStats(ctx, p)
}

// Failure diagnosis (the §6.4 meta-explanations).
type (
	// Diagnosis is a meta-explanation for an unanswerable Why-Not
	// question.
	Diagnosis = core.Diagnosis
	// FailureKind classifies a diagnosis.
	FailureKind = core.FailureKind
)

// Failure kinds.
const (
	// FailureNone: the question is answerable in the probed mode.
	FailureNone = core.FailureNone
	// FailureColdStart: the user has too few past actions.
	FailureColdStart = core.FailureColdStart
	// FailureOutOfScope: another mode answers the question.
	FailureOutOfScope = core.FailureOutOfScope
	// FailurePopularItem: the displaced recommendation is powered by
	// other users' actions (Figure 7).
	FailurePopularItem = core.FailurePopularItem
)

// PRINCE baseline (Why explanations for existing recommendations).
type (
	// PrinceExplainer computes counterfactuals for existing
	// recommendations.
	PrinceExplainer = prince.Explainer
	// PrinceOptions configures a PrinceExplainer.
	PrinceOptions = prince.Options
	// CFE is a verified counterfactual explanation.
	CFE = prince.CFE
)

// NewPrinceExplainer builds a PRINCE-style Why explainer.
func NewPrinceExplainer(g *Graph, r *Recommender, opts PrinceOptions) *PrinceExplainer {
	return prince.New(g, r, opts)
}

// Dataset substrate.
type (
	// DatasetConfig parameterizes the synthetic Amazon generator.
	DatasetConfig = dataset.Config
	// Dataset is a preprocessed dataset graph with its node inventory.
	Dataset = dataset.Amazon
	// DatasetTypes bundles the registered node and edge types.
	DatasetTypes = dataset.Types
	// LiteConfig parameterizes the Amazon-Lite sampling (§6.1).
	LiteConfig = dataset.LiteConfig
	// Books is the Figure-1 running-example graph.
	Books = dataset.Books
)

// DefaultDatasetConfig returns the full paper-scale generator
// configuration.
func DefaultDatasetConfig() DatasetConfig { return dataset.DefaultConfig() }

// SmallDatasetConfig returns a scaled-down configuration for quick
// experiments.
func SmallDatasetConfig() DatasetConfig { return dataset.SmallConfig() }

// DefaultLiteConfig returns the paper's Amazon-Lite sampling
// parameters (100 users with 10-100 actions, 4 hops).
func DefaultLiteConfig() LiteConfig { return dataset.DefaultLiteConfig() }

// GenerateDataset synthesizes and preprocesses an Amazon-like dataset.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) { return dataset.Generate(cfg) }

// RawDataset is the un-preprocessed synthetic dataset (items with
// categories, rating records with review text). It round-trips through
// CSV via its Write*CSV methods and ReadRawDatasetCSV, and becomes a
// graph through BuildDatasetGraph.
type RawDataset = dataset.Raw

// GenerateRawDataset produces the raw synthetic records before
// preprocessing.
func GenerateRawDataset(cfg DatasetConfig) (*RawDataset, error) { return dataset.GenerateRaw(cfg) }

// BuildDatasetGraph applies the paper's §6.1 preprocessing to raw
// records.
func BuildDatasetGraph(raw *RawDataset) (*Dataset, error) { return dataset.BuildGraph(raw) }

// ReadRawDatasetCSV rebuilds raw records from the items and ratings
// CSV files written by RawDataset.WriteItemsCSV / WriteRatingsCSV.
func ReadRawDatasetCSV(cfg DatasetConfig, items, ratings io.Reader) (*RawDataset, error) {
	return dataset.ReadRawCSV(cfg, items, ratings)
}

// NewBooks builds the paper's running-example books graph.
func NewBooks() (*Books, error) { return dataset.NewBooks() }

// Evaluation harness (§6).
type (
	// EvalRunner executes evaluation runs.
	EvalRunner = eval.Runner
	// EvalConfig drives a harness run.
	EvalConfig = eval.Config
	// EvalResults aggregates outcomes.
	EvalResults = eval.Results
	// EvalMethodSpec names one evaluated (mode, method) configuration.
	EvalMethodSpec = eval.MethodSpec
	// EvalScenario is one Why-Not question drawn from a user's list.
	EvalScenario = eval.Scenario
	// EvalMethodStats aggregates one method's results.
	EvalMethodStats = eval.MethodStats
)

// NewEvalRunner builds an evaluation harness over a graph and
// recommender.
func NewEvalRunner(g *Graph, r *Recommender) *EvalRunner { return eval.NewRunner(g, r) }

// PaperMethods returns the eight method configurations of §6.2.
func PaperMethods() []EvalMethodSpec { return eval.PaperMethods() }

// ExtensionMethods returns configurations for the implemented
// future-work modes (Combined, Reweight).
func ExtensionMethods() []EvalMethodSpec { return eval.ExtensionMethods() }

// RenderTable4 prints the graph's per-node-type degree statistics in
// the layout of the paper's Table 4.
func RenderTable4(w io.Writer, g View) error { return eval.RenderTable4(w, g) }

// RenderFigure4 prints the per-method success rates (Figure 4).
func RenderFigure4(w io.Writer, r *EvalResults) error { return eval.RenderFigure4(w, r) }

// RenderFigure5 prints the remove-mode success rates relative to the
// brute-force oracle (Figure 5).
func RenderFigure5(w io.Writer, r *EvalResults) error { return eval.RenderFigure5(w, r) }

// RenderFigure6 prints the average explanation sizes (Figure 6).
func RenderFigure6(w io.Writer, r *EvalResults) error { return eval.RenderFigure6(w, r) }

// RenderTable5 prints the average runtimes per method (Table 5).
func RenderTable5(w io.Writer, r *EvalResults) error { return eval.RenderTable5(w, r) }

// RenderRankBreakdown prints each method's success rate split by the
// Why-Not item's original rank.
func RenderRankBreakdown(w io.Writer, r *EvalResults) error { return eval.RenderRankBreakdown(w, r) }

// Sweep support: evaluate the same scenarios under several recommender
// configurations (α/β/ε ablations).
type (
	// SweepVariant pairs a label with a recommender configuration.
	SweepVariant = eval.SweepVariant
	// SweepResult is one variant's evaluation outcome.
	SweepResult = eval.SweepResult
	// RateCount is a success counter used by the breakdown helpers.
	RateCount = eval.RateCount
)

// RunSweep evaluates cfg under each recommender variant.
func RunSweep(g *Graph, variants []SweepVariant, cfg EvalConfig) ([]SweepResult, error) {
	return eval.RunSweep(g, variants, cfg)
}

// RunSweepContext is RunSweep with cancellation, polled between
// variants: a canceled sweep returns the variants completed so far
// plus ctx's error.
func RunSweepContext(ctx context.Context, g *Graph, variants []SweepVariant, cfg EvalConfig) ([]SweepResult, error) {
	return eval.RunSweepContext(ctx, g, variants, cfg)
}

// RenderSweep prints a success-rate row per (variant, method) pair.
func RenderSweep(w io.Writer, sweep []SweepResult) error { return eval.RenderSweep(w, sweep) }
