package emigre_test

import (
	"fmt"
	"log"
	"os"

	emigre "github.com/why-not-xai/emigre"
)

// ExampleExplainer reproduces the paper's Figure 1a on the books graph.
func ExampleExplainer() {
	books, err := emigre.NewBooks()
	if err != nil {
		log.Fatal(err)
	}
	cfg := emigre.DefaultRecommenderConfig(books.Types.Item)
	cfg.Beta = 1
	rec, err := emigre.NewRecommender(books.Graph, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ex := emigre.NewExplainer(books.Graph, rec, emigre.Options{
		AllowedEdgeTypes: books.ActionEdgeTypes(),
		AddEdgeType:      books.Types.Rated,
	})
	expl, err := ex.ExplainWith(
		emigre.Query{User: books.Paul, WNI: books.HarryPotter},
		emigre.Remove, emigre.Powerset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(expl.Describe(books.Graph))
	// Output: Had you not interacted with C and Candide, your top recommendation would be Harry Potter.
}

// ExampleExplainer_add reproduces Figure 1b: a suggested new action.
func ExampleExplainer_add() {
	books, _ := emigre.NewBooks()
	cfg := emigre.DefaultRecommenderConfig(books.Types.Item)
	cfg.Beta = 1
	rec, _ := emigre.NewRecommender(books.Graph, cfg)
	ex := emigre.NewExplainer(books.Graph, rec, emigre.Options{
		AllowedEdgeTypes: books.ActionEdgeTypes(),
		AddEdgeType:      books.Types.Rated,
	})
	expl, err := ex.ExplainWith(
		emigre.Query{User: books.Paul, WNI: books.HarryPotter},
		emigre.Add, emigre.Powerset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(expl.Describe(books.Graph))
	// Output: Had you interacted with The Lord of the Rings, your top recommendation would be Harry Potter.
}

// ExampleRecommender shows the host recommender of Eq. 2.
func ExampleRecommender() {
	books, _ := emigre.NewBooks()
	cfg := emigre.DefaultRecommenderConfig(books.Types.Item)
	cfg.Beta = 1
	rec, _ := emigre.NewRecommender(books.Graph, cfg)
	top, err := rec.Recommend(books.Paul)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(books.Graph.Label(top))
	// Output: Python
}

// ExamplePrinceExplainer shows the Figure-2 contrast: a Why explanation
// of the existing recommendation lands on a different item than the
// user's Why-Not question.
func ExamplePrinceExplainer() {
	books, _ := emigre.NewBooks()
	cfg := emigre.DefaultRecommenderConfig(books.Types.Item)
	cfg.Beta = 1
	rec, _ := emigre.NewRecommender(books.Graph, cfg)
	pr := emigre.NewPrinceExplainer(books.Graph, rec, emigre.PrinceOptions{
		AllowedEdgeTypes: books.ActionEdgeTypes(),
	})
	cfe, err := pr.Explain(books.Paul)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remove %s -> %s\n",
		books.Graph.Label(cfe.Edges[0].To), books.Graph.Label(cfe.NewTop))
	// Output: remove C -> The Alchemist
}

// ExampleExplainer_diagnose classifies an unanswerable question.
func ExampleExplainer_diagnose() {
	books, _ := emigre.NewBooks()
	cfg := emigre.DefaultRecommenderConfig(books.Types.Item)
	cfg.Beta = 1
	rec, _ := emigre.NewRecommender(books.Graph, cfg)
	ex := emigre.NewExplainer(books.Graph, rec, emigre.Options{
		AllowedEdgeTypes: books.ActionEdgeTypes(),
		AddEdgeType:      books.Types.Rated,
	})
	d, err := ex.Diagnose(emigre.Query{User: books.Paul, WNI: books.TheHobbit}, emigre.Remove)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.Kind)
	// Output: out-of-scope
}

// ExampleGraph_WriteTSV round-trips a graph through the TSV format.
func ExampleGraph_WriteTSV() {
	g := emigre.NewGraph()
	user := g.Types().NodeType("user")
	item := g.Types().NodeType("item")
	rated := g.Types().EdgeType("rated")
	u := g.AddNode(user, "u")
	i := g.AddNode(item, "i")
	if err := g.AddBidirectional(u, i, rated, 1); err != nil {
		log.Fatal(err)
	}
	if err := g.WriteTSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
	// Output:
	// # nodes
	// 0	user	u
	// 1	item	i
	// # edges
	// 0	1	rated	1
	// 1	0	rated	1
}
