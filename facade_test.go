package emigre_test

import (
	"bytes"
	"testing"

	emigre "github.com/why-not-xai/emigre"
)

// TestFacadeGraphConstruction exercises the graph-building wrappers end
// to end without touching internal packages.
func TestFacadeGraphConstruction(t *testing.T) {
	g := emigre.NewGraph()
	user := g.Types().NodeType("user")
	item := g.Types().NodeType("item")
	rated := g.Types().EdgeType("rated")
	u := g.AddNode(user, "u")
	a := g.AddNode(item, "a")
	b := g.AddNode(item, "b")
	if err := g.AddBidirectional(u, a, rated, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddBidirectional(u, b, rated, 2); err != nil {
		t.Fatal(err)
	}
	o, err := emigre.NewOverlay(g, []emigre.Edge{{From: u, To: a, Type: rated, Weight: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.HasEdge(u, a) {
		t.Fatal("overlay removal not applied")
	}
	set := emigre.NewEdgeTypeSet(rated)
	if !set.Contains(rated) {
		t.Fatal("edge type set broken")
	}
	rows := emigre.DegreeStats(g)
	if len(rows) != 2 {
		t.Fatalf("DegreeStats rows = %d, want 2", len(rows))
	}
	var buf bytes.Buffer
	if err := g.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := emigre.ReadGraphTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatal("TSV round trip lost edges")
	}
}

// TestFacadePPREngines runs each engine wrapper once on the books graph.
func TestFacadePPREngines(t *testing.T) {
	books, err := emigre.NewBooks()
	if err != nil {
		t.Fatal(err)
	}
	params := emigre.DefaultPPRParams()
	if params.Alpha != 0.15 || params.Epsilon != 2.7e-8 {
		t.Fatalf("default params are not the paper's: %+v", params)
	}
	fwd, err := emigre.NewForwardPushEngine(params).FromSource(books.Graph, books.Paul)
	if err != nil {
		t.Fatal(err)
	}
	pow, err := emigre.NewPowerEngine(params).FromSource(books.Graph, books.Paul)
	if err != nil {
		t.Fatal(err)
	}
	if fwd.ArgMax() != pow.ArgMax() {
		t.Fatal("power and push disagree on the argmax")
	}
	rev, err := emigre.NewReversePushEngine(params).ToTarget(books.Graph, books.Python)
	if err != nil {
		t.Fatal(err)
	}
	if rev[books.Paul] <= 0 {
		t.Fatal("reverse push found no mass from Paul to Python")
	}
}

// TestFacadeModesComplete checks all exported modes and methods resolve
// and carry distinct names.
func TestFacadeModesComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range []emigre.Mode{emigre.Remove, emigre.Add, emigre.Combined, emigre.Reweight} {
		if seen[m.String()] {
			t.Fatalf("duplicate mode name %q", m)
		}
		seen[m.String()] = true
	}
	for _, m := range []emigre.Method{emigre.Incremental, emigre.Powerset, emigre.Exhaustive,
		emigre.ExhaustiveDirect, emigre.BruteForce} {
		if seen[m.String()] {
			t.Fatalf("duplicate method name %q", m)
		}
		seen[m.String()] = true
	}
	for _, k := range []emigre.FailureKind{emigre.FailureNone, emigre.FailureColdStart,
		emigre.FailureOutOfScope, emigre.FailurePopularItem} {
		if seen[k.String()] {
			t.Fatalf("duplicate failure kind %q", k)
		}
		seen[k.String()] = true
	}
}

// TestFacadeDiagnose exercises the meta-explanation API through the
// facade.
func TestFacadeDiagnose(t *testing.T) {
	books, err := emigre.NewBooks()
	if err != nil {
		t.Fatal(err)
	}
	cfg := emigre.DefaultRecommenderConfig(books.Types.Item)
	cfg.Beta = 1
	r, err := emigre.NewRecommender(books.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex := emigre.NewExplainer(books.Graph, r, emigre.Options{
		AllowedEdgeTypes: books.ActionEdgeTypes(),
		AddEdgeType:      books.Types.Rated,
	})
	d, err := ex.Diagnose(emigre.Query{User: books.Paul, WNI: books.HarryPotter}, emigre.Remove)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != emigre.FailureNone {
		t.Fatalf("the books question is answerable; got %v", d.Kind)
	}
}

// TestFacadeCombinedAndReweight runs the extension modes through the
// public API.
func TestFacadeCombinedAndReweight(t *testing.T) {
	books, err := emigre.NewBooks()
	if err != nil {
		t.Fatal(err)
	}
	cfg := emigre.DefaultRecommenderConfig(books.Types.Item)
	cfg.Beta = 1
	r, err := emigre.NewRecommender(books.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex := emigre.NewExplainer(books.Graph, r, emigre.Options{
		AllowedEdgeTypes: books.ActionEdgeTypes(),
		AddEdgeType:      books.Types.Rated,
		ReweightTo:       5,
	})
	q := emigre.Query{User: books.Paul, WNI: books.HarryPotter}
	expl, err := ex.ExplainWith(q, emigre.Combined, emigre.Powerset)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := ex.Verify(expl)
	if err != nil || !ok {
		t.Fatalf("combined explanation failed verification: %v", err)
	}
	// Reweight may or may not find an answer on this graph; it must not
	// error in an unexpected way.
	if _, err := ex.ExplainWith(q, emigre.Reweight, emigre.Powerset); err != nil &&
		err.Error() == "" {
		t.Fatal("unexpected empty error")
	}
}
