package hin

import (
	"math"
	"sync/atomic"
)

// Version identifies the content of a graph view for caching purposes.
// Two views with equal versions are guaranteed to present the same
// adjacency structure (up to digest collision odds of ~2^-64); views
// with different versions may or may not differ — version inequality is
// always safe, it only costs a cache miss.
//
//   - Stamp is a globally monotonic mutation stamp: every mutating
//     operation on a Graph assigns it a fresh stamp from a process-wide
//     counter, so no two distinct graph states ever share one.
//   - Digest folds in derived-view structure: an Overlay mixes an
//     order-insensitive digest of its edit set into its base's version,
//     and transition decorators (e.g. the recommender's β-mix) fold
//     their parameters in via Mix. It is 0 for a plain Graph.
type Version struct {
	Stamp  uint64
	Digest uint64
}

// Versioned is implemented by views that can identify their content.
// The boolean reports whether a version is available: wrappers forward
// their base's answer, so a chain rooted at an unversioned custom View
// answers false and is simply not cacheable.
type Versioned interface {
	Version() (Version, bool)
}

// ViewVersion returns the version of v when it (and, transitively, the
// views it wraps) supports versioning.
func ViewVersion(v View) (Version, bool) {
	if vv, ok := v.(Versioned); ok {
		return vv.Version()
	}
	return Version{}, false
}

// Mix derives the version of a view computed from this one plus extra
// structure identified by salt (an edit-set digest, a parameter hash).
// Mixing is deterministic, and distinct salts land on distinct digests
// with overwhelming probability.
func (v Version) Mix(salt uint64) Version {
	return Version{Stamp: v.Stamp, Digest: mix64(v.Digest ^ mix64(salt^0x9e3779b97f4a7c15))}
}

// versionCounter hands out globally unique mutation stamps. Stamp 0 is
// reserved for "never stamped" (a zero-value Graph, which is unusable
// anyway).
var versionCounter atomic.Uint64

// nextVersionStamp returns a fresh, process-unique stamp.
func nextVersionStamp() uint64 { return versionCounter.Add(1) }

// mix64 is the SplitMix64 finalizer: a cheap bijective mixer with full
// avalanche, used to combine digest components.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Edit-kind tags keeping a removal of edge e distinguishable from an
// addition of the same e in an overlay digest.
const (
	editTagRemove = 0x72656d6f76650000 // "remove"
	editTagAdd    = 0x6164640000000000 // "add"
)

// editDigest hashes one overlay edit. Edits are combined by wrapping
// addition, so the digest of an edit set does not depend on the order
// the edits were listed in.
func editDigest(tag uint64, from, to NodeID, typ EdgeTypeID, weight float64) uint64 {
	h := mix64(tag)
	h = mix64(h ^ uint64(uint32(from)))
	h = mix64(h ^ uint64(uint32(to))<<1)
	h = mix64(h ^ uint64(typ)<<2)
	h = mix64(h ^ math.Float64bits(weight))
	return h
}
