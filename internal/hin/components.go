package hin

// Components labels the weakly connected components of a view (treating
// every directed edge as undirected). It returns one component ID per
// node (0-based, in order of discovery from the lowest node ID) and the
// number of components. The dataset pipeline uses it to check that the
// Lite extraction produced a coherent neighborhood around the sampled
// users.
func Components(g View) ([]int, int) {
	n := g.NumNodes()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	var stack []NodeID
	for start := 0; start < n; start++ {
		if comp[start] != -1 {
			continue
		}
		comp[start] = next
		stack = append(stack[:0], NodeID(start))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			visit := func(h HalfEdge) bool {
				if comp[h.Node] == -1 {
					comp[h.Node] = next
					stack = append(stack, h.Node)
				}
				return true
			}
			g.OutEdges(v, visit)
			g.InEdges(v, visit)
		}
		next++
	}
	return comp, next
}

// ReachableWithin returns the set of nodes reachable from the seeds in
// at most hops steps over outgoing edges — the neighborhood the
// paper's Amazon-Lite extraction keeps (§6.1).
func ReachableWithin(g View, seeds []NodeID, hops int) map[NodeID]bool {
	keep := make(map[NodeID]bool, len(seeds))
	frontier := make([]NodeID, 0, len(seeds))
	for _, s := range seeds {
		if s < 0 || int(s) >= g.NumNodes() || keep[s] {
			continue
		}
		keep[s] = true
		frontier = append(frontier, s)
	}
	for h := 0; h < hops && len(frontier) > 0; h++ {
		var next []NodeID
		for _, v := range frontier {
			g.OutEdges(v, func(e HalfEdge) bool {
				if !keep[e.Node] {
					keep[e.Node] = true
					next = append(next, e.Node)
				}
				return true
			})
		}
		frontier = next
	}
	return keep
}
