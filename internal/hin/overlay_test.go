package hin

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func edgesEqual(g View, v NodeID, want []HalfEdge) bool {
	var got []HalfEdge
	g.OutEdges(v, func(h HalfEdge) bool { got = append(got, h); return true })
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestOverlayRemove(t *testing.T) {
	g, ids := buildTriangle(t)
	u, a, b := ids[0], ids[1], ids[2]
	rated, _ := g.Types().LookupEdgeType("rated")

	o, err := NewOverlay(g, []Edge{{From: u, To: a, Type: rated, Weight: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.HasEdge(u, a) {
		t.Fatal("removed edge still visible")
	}
	if !o.HasEdge(u, b) {
		t.Fatal("untouched edge missing")
	}
	if got := o.OutDegree(u); got != 1 {
		t.Fatalf("OutDegree = %d, want 1", got)
	}
	if got := o.OutWeightSum(u); math.Abs(got-2) > 1e-15 {
		t.Fatalf("OutWeightSum = %g, want 2", got)
	}
	// Base graph unchanged.
	if !g.HasEdge(u, a) || g.OutDegree(u) != 2 {
		t.Fatal("overlay mutated the base graph")
	}
}

func TestOverlayAdd(t *testing.T) {
	g, ids := buildTriangle(t)
	u, c := ids[0], ids[3]
	rated, _ := g.Types().LookupEdgeType("rated")

	o, err := NewOverlay(g, nil, []Edge{{From: u, To: c, Type: rated, Weight: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !o.HasEdge(u, c) {
		t.Fatal("added edge not visible")
	}
	if got := o.OutDegree(u); got != 3 {
		t.Fatalf("OutDegree = %d, want 3", got)
	}
	if got := o.OutWeightSum(u); math.Abs(got-7) > 1e-15 {
		t.Fatalf("OutWeightSum = %g, want 7", got)
	}
	// InEdges must include the addition.
	found := false
	o.InEdges(c, func(h HalfEdge) bool {
		if h.Node == u && h.Weight == 4 {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Fatal("added edge missing from InEdges of target")
	}
	if g.HasEdge(u, c) {
		t.Fatal("overlay mutated the base graph")
	}
}

func TestOverlayValidation(t *testing.T) {
	g, ids := buildTriangle(t)
	u, a := ids[0], ids[1]
	rated, _ := g.Types().LookupEdgeType("rated")
	belongs, _ := g.Types().LookupEdgeType("belongs-to")

	cases := []struct {
		name      string
		removals  []Edge
		additions []Edge
		wantErr   error
	}{
		{"remove missing edge", []Edge{{From: a, To: u, Type: rated}}, nil, ErrNoSuchEdge},
		{"remove wrong type", []Edge{{From: u, To: a, Type: belongs}}, nil, ErrNoSuchEdge},
		{"remove twice", []Edge{{From: u, To: a, Type: rated}, {From: u, To: a, Type: rated}}, nil, nil},
		{"add existing edge", nil, []Edge{{From: u, To: a, Type: rated, Weight: 1}}, ErrDuplicateEdge},
		{"add self loop", nil, []Edge{{From: u, To: u, Type: rated, Weight: 1}}, ErrSelfLoop},
		{"add bad weight", nil, []Edge{{From: u, To: a, Type: belongs, Weight: 0}}, ErrBadWeight},
		{"add out of range", nil, []Edge{{From: u, To: 99, Type: rated, Weight: 1}}, ErrNodeOutOfRange},
		{"add twice", nil, []Edge{{From: a, To: u, Type: rated, Weight: 1}, {From: a, To: u, Type: rated, Weight: 1}}, ErrDuplicateEdge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewOverlay(g, tc.removals, tc.additions)
			if err == nil {
				t.Fatal("expected error")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestOverlayRemoveThenAddSamePairDifferentType(t *testing.T) {
	g, ids := buildTriangle(t)
	u, a := ids[0], ids[1]
	rated, _ := g.Types().LookupEdgeType("rated")
	reviewed := g.Types().EdgeType("reviewed")

	o, err := NewOverlay(g,
		[]Edge{{From: u, To: a, Type: rated}},
		[]Edge{{From: u, To: a, Type: reviewed, Weight: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !o.HasEdge(u, a) {
		t.Fatal("pair should still have an edge (reviewed added)")
	}
	if got := o.OutWeightSum(u); math.Abs(got-5) > 1e-15 { // 3 (base b) + 3 - 1
		t.Fatalf("OutWeightSum = %g, want 5", got)
	}
}

func TestOverlayComposition(t *testing.T) {
	g, ids := buildTriangle(t)
	u, a, b := ids[0], ids[1], ids[2]
	rated, _ := g.Types().LookupEdgeType("rated")

	o1, err := NewOverlay(g, []Edge{{From: u, To: a, Type: rated}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := NewOverlay(o1, []Edge{{From: u, To: b, Type: rated}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o2.OutDegree(u) != 0 {
		t.Fatalf("OutDegree = %d, want 0", o2.OutDegree(u))
	}
	if o2.OutWeightSum(u) != 0 {
		t.Fatalf("OutWeightSum = %g, want 0", o2.OutWeightSum(u))
	}
	// Removing an already-removed edge through composition must fail.
	if _, err := NewOverlay(o1, []Edge{{From: u, To: a, Type: rated}}, nil); !errors.Is(err, ErrNoSuchEdge) {
		t.Fatalf("err = %v, want ErrNoSuchEdge", err)
	}
}

func TestOverlayMaterializeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 10, 40)
		et, _ := g.Types().LookupEdgeType("e")

		// Pick random removals from existing edges and random additions.
		var removals, additions []Edge
		for v := 0; v < g.NumNodes(); v++ {
			for _, e := range g.OutEdgesOfType(NodeID(v), NewEdgeTypeSet()) {
				if rng.Float64() < 0.2 {
					removals = append(removals, e)
				}
			}
		}
		for i := 0; i < 5; i++ {
			a, b := NodeID(rng.Intn(10)), NodeID(rng.Intn(10))
			if a == b {
				continue
			}
			if _, exists := g.EdgeWeight(a, b, et); exists {
				continue
			}
			dup := false
			for _, e := range additions {
				if e.From == a && e.To == b {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			additions = append(additions, Edge{From: a, To: b, Type: et, Weight: rng.Float64() + 0.1})
		}

		o, err := NewOverlay(g, removals, additions)
		if err != nil {
			t.Fatalf("trial %d: overlay: %v", trial, err)
		}
		m, err := o.Materialize()
		if err != nil {
			t.Fatalf("trial %d: materialize: %v", trial, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: materialized graph invalid: %v", trial, err)
		}
		// The overlay and the materialized graph must agree on every
		// view query.
		for v := 0; v < g.NumNodes(); v++ {
			id := NodeID(v)
			if o.OutDegree(id) != m.OutDegree(id) {
				t.Fatalf("trial %d node %d: OutDegree overlay %d != materialized %d",
					trial, v, o.OutDegree(id), m.OutDegree(id))
			}
			if math.Abs(o.OutWeightSum(id)-m.OutWeightSum(id)) > 1e-9 {
				t.Fatalf("trial %d node %d: OutWeightSum overlay %g != materialized %g",
					trial, v, o.OutWeightSum(id), m.OutWeightSum(id))
			}
			var mEdges []HalfEdge
			m.OutEdges(id, func(h HalfEdge) bool { mEdges = append(mEdges, h); return true })
			if !edgesEqual(o, id, mEdges) {
				t.Fatalf("trial %d node %d: out-edge lists differ", trial, v)
			}
			for w := 0; w < g.NumNodes(); w++ {
				if o.HasEdge(id, NodeID(w)) != m.HasEdge(id, NodeID(w)) {
					t.Fatalf("trial %d: HasEdge(%d,%d) disagrees", trial, v, w)
				}
			}
		}
	}
}

func TestOverlayEarlyStopIteration(t *testing.T) {
	g, ids := buildTriangle(t)
	u, c := ids[0], ids[3]
	rated, _ := g.Types().LookupEdgeType("rated")
	o, err := NewOverlay(g, nil, []Edge{{From: u, To: c, Type: rated, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	o.OutEdges(u, func(HalfEdge) bool {
		count++
		return false // stop immediately
	})
	if count != 1 {
		t.Fatalf("iteration did not stop early: %d edges seen", count)
	}
}
