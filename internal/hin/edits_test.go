package hin

import (
	"reflect"
	"testing"
)

// editsGraph builds u -> {a,b,c} with distinct weights plus an
// unrelated edge x -> a, so row edits can be checked per node.
func editsGraph(t *testing.T) (*Graph, [5]NodeID) {
	t.Helper()
	g := NewGraph()
	nt := g.Types().NodeType("n")
	u := g.AddNode(nt, "u")
	a := g.AddNode(nt, "a")
	b := g.AddNode(nt, "b")
	c := g.AddNode(nt, "c")
	x := g.AddNode(nt, "x")
	et := g.Types().EdgeType("e")
	for _, e := range []struct {
		from, to NodeID
		w        float64
	}{{u, a, 1}, {u, b, 2}, {u, c, 3}, {x, a, 4}} {
		if err := g.AddEdge(e.from, e.to, et, e.w); err != nil {
			t.Fatal(err)
		}
	}
	return g, [5]NodeID{u, a, b, c, x}
}

func TestRowEditsEmpty(t *testing.T) {
	g, _ := editsGraph(t)
	o, err := NewOverlay(g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.RowEdits(); got != nil {
		t.Fatalf("RowEdits on empty overlay = %v, want nil", got)
	}
	if got := o.EditedRows(); got != nil {
		t.Fatalf("EditedRows on empty overlay = %v, want nil", got)
	}
}

func TestRowEditsRemoveAddReweight(t *testing.T) {
	g, n := editsGraph(t)
	u, a, b, x := n[0], n[1], n[2], n[4]
	et := g.Types().EdgeType("e")
	// Remove u->a, reweight u->b to 5 (remove + re-add), add u->x at 7,
	// and add x->b at 1 so two rows are edited.
	o, err := NewOverlay(g,
		[]Edge{{From: u, To: a, Type: et, Weight: 1}, {From: u, To: b, Type: et, Weight: 2}},
		[]Edge{{From: u, To: b, Type: et, Weight: 5}, {From: u, To: x, Type: et, Weight: 7}, {From: x, To: b, Type: et, Weight: 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	edits := o.RowEdits()
	if len(edits) != 2 {
		t.Fatalf("got %d row edits, want 2: %+v", len(edits), edits)
	}
	wantU := RowEdit{
		Node: u,
		Changes: []WeightChange{
			{To: a, Type: et, OldWeight: 1, NewWeight: 0},
			{To: b, Type: et, OldWeight: 2, NewWeight: 5},
			{To: x, Type: et, OldWeight: 0, NewWeight: 7},
		},
		OldDeg: 3, NewDeg: 3, // -2 removed, +2 added
		OldSum: 6, NewSum: 6 - 1 - 2 + 5 + 7,
	}
	wantX := RowEdit{
		Node:    x,
		Changes: []WeightChange{{To: b, Type: et, OldWeight: 0, NewWeight: 1}},
		OldDeg:  1, NewDeg: 2,
		OldSum: 4, NewSum: 5,
	}
	if !reflect.DeepEqual(edits[0], wantU) {
		t.Errorf("row edit for u:\n got %+v\nwant %+v", edits[0], wantU)
	}
	if !reflect.DeepEqual(edits[1], wantX) {
		t.Errorf("row edit for x:\n got %+v\nwant %+v", edits[1], wantX)
	}
	if rows := o.EditedRows(); !reflect.DeepEqual(rows, []NodeID{u, x}) {
		t.Errorf("EditedRows = %v, want [%d %d]", rows, u, x)
	}
	// The enumeration must agree with the overlay's own row view.
	for _, e := range edits {
		if got := o.OutDegree(e.Node); got != e.NewDeg {
			t.Errorf("node %d: NewDeg %d but overlay OutDegree %d", e.Node, e.NewDeg, got)
		}
		if got := o.OutWeightSum(e.Node); got != e.NewSum {
			t.Errorf("node %d: NewSum %g but overlay OutWeightSum %g", e.Node, e.NewSum, got)
		}
	}
}

func TestRowEditsDeterministic(t *testing.T) {
	g, n := editsGraph(t)
	u, a, _, _, x := n[0], n[1], n[2], n[3], n[4]
	et := g.Types().EdgeType("e")
	removals := []Edge{{From: u, To: a, Type: et, Weight: 1}}
	additions := []Edge{{From: x, To: u, Type: et, Weight: 2}, {From: u, To: x, Type: et, Weight: 3}}
	o1, err := NewOverlay(g, removals, additions)
	if err != nil {
		t.Fatal(err)
	}
	// Same edits, different addition order.
	o2, err := NewOverlay(g, removals, []Edge{additions[1], additions[0]})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o1.RowEdits(), o2.RowEdits()) {
		t.Errorf("RowEdits order-sensitive:\n %+v\nvs %+v", o1.RowEdits(), o2.RowEdits())
	}
}
