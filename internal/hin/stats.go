package hin

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// TypeDegreeStats summarizes node degrees for one node type — one row of
// the paper's Table 4.
type TypeDegreeStats struct {
	TypeName  string
	NumNodes  int
	AvgDegree float64
	DegreeStd float64
	MinDegree int
	MaxDegree int
}

// DegreeStats computes per-node-type degree statistics over a view.
// Because the paper's preprocessing makes every relationship
// bidirectional, a node's "degree" is its out-degree (equal to its
// in-degree on such graphs); on asymmetric graphs this still reports
// out-degree, which is what the PPR transition uses. Rows are sorted by
// type name for deterministic output.
func DegreeStats(g View) []TypeDegreeStats {
	reg := g.Types()
	n := g.NumNodes()
	type acc struct {
		count int
		sum   float64
		sumSq float64
		min   int
		max   int
	}
	accs := make(map[NodeTypeID]*acc)
	for v := 0; v < n; v++ {
		t := g.NodeType(NodeID(v))
		a := accs[t]
		if a == nil {
			a = &acc{min: math.MaxInt32}
			accs[t] = a
		}
		d := g.OutDegree(NodeID(v))
		a.count++
		a.sum += float64(d)
		a.sumSq += float64(d) * float64(d)
		if d < a.min {
			a.min = d
		}
		if d > a.max {
			a.max = d
		}
	}
	rows := make([]TypeDegreeStats, 0, len(accs))
	for t, a := range accs {
		mean := a.sum / float64(a.count)
		variance := a.sumSq/float64(a.count) - mean*mean
		if variance < 0 {
			variance = 0
		}
		rows = append(rows, TypeDegreeStats{
			TypeName:  reg.NodeTypeName(t),
			NumNodes:  a.count,
			AvgDegree: mean,
			DegreeStd: math.Sqrt(variance),
			MinDegree: a.min,
			MaxDegree: a.max,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].TypeName < rows[j].TypeName })
	return rows
}

// FormatDegreeStats renders degree statistics as an aligned text table
// in the layout of the paper's Table 4.
func FormatDegreeStats(rows []TypeDegreeStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %16s %12s\n", "Node Type", "# of Nodes", "Average Degree", "Degree STD")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10d %16.2f %12.1f\n", r.TypeName, r.NumNodes, r.AvgDegree, r.DegreeStd)
	}
	return b.String()
}

// CountNodesOfType returns how many nodes have the given type.
func CountNodesOfType(g View, typ NodeTypeID) int {
	n := 0
	for v := 0; v < g.NumNodes(); v++ {
		if g.NodeType(NodeID(v)) == typ {
			n++
		}
	}
	return n
}

// EdgeTypeCounts returns the number of directed edges per edge-type
// name, sorted by name.
func EdgeTypeCounts(g View) map[string]int {
	reg := g.Types()
	counts := make(map[string]int)
	for v := 0; v < g.NumNodes(); v++ {
		g.OutEdges(NodeID(v), func(h HalfEdge) bool {
			counts[reg.EdgeTypeName(h.Type)]++
			return true
		})
	}
	return counts
}
