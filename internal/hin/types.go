// Package hin implements the Heterogeneous Information Network (HIN)
// substrate from Definition 3.1 of "Why-Not Explainable Graph Recommender"
// (Attolou et al., ICDE 2024): a directed, weighted graph in which every
// node and every edge belongs to exactly one registered type.
//
// The package provides:
//
//   - Graph: a mutable HIN with O(1) typed-edge lookup, per-node in/out
//     adjacency, and cached out-weight sums (the denominators of the
//     row-stochastic transition matrix W used by Personalized PageRank);
//   - Overlay: a copy-on-write counterfactual view over a base graph that
//     applies a set of edge additions and removals without copying the
//     graph — the workhorse of EMiGRe's CHECK step;
//   - degree statistics per node type (the paper's Table 4);
//   - JSON and TSV serialization.
//
// All PPR and recommendation code operates on the read-only View
// interface, so a Graph and an Overlay are interchangeable.
package hin

import "fmt"

// NodeID identifies a node within a Graph. IDs are dense, starting at 0,
// in order of insertion. The zero value is a valid ID only if the graph
// has at least one node.
type NodeID int32

// InvalidNode is returned by lookups that fail to resolve a node.
const InvalidNode NodeID = -1

// NodeTypeID identifies a registered node type (e.g. "user", "item").
type NodeTypeID uint8

// EdgeTypeID identifies a registered edge type (e.g. "rated").
type EdgeTypeID uint8

// InvalidType is returned when a type name is not registered.
const InvalidType = ^uint8(0)

// Edge is a directed, typed, weighted edge. Weight must be positive and
// finite; the transition probability used by PPR is Weight divided by the
// sum of the source node's outgoing weights.
type Edge struct {
	From   NodeID
	To     NodeID
	Type   EdgeTypeID
	Weight float64
}

// String renders the edge as "from -type#k-> to (w)".
func (e Edge) String() string {
	return fmt.Sprintf("%d -%d-> %d (w=%g)", e.From, e.Type, e.To, e.Weight)
}

// HalfEdge is the adjacency-list representation of an Edge with the
// implicit endpoint dropped.
type HalfEdge struct {
	Node   NodeID
	Type   EdgeTypeID
	Weight float64
}

// View is the read-only interface shared by Graph and Overlay. PPR
// engines, the recommender and the explainers are all written against
// View so counterfactual overlays can be evaluated without materializing
// modified graphs.
type View interface {
	// NumNodes returns the number of nodes. Node IDs are 0..NumNodes-1.
	NumNodes() int
	// NodeType returns the type of node v.
	NodeType(v NodeID) NodeTypeID
	// OutEdges calls yield for every outgoing edge of v until yield
	// returns false. The iteration order is deterministic.
	OutEdges(v NodeID, yield func(HalfEdge) bool)
	// InEdges calls yield for every incoming edge of v until yield
	// returns false. The reported HalfEdge.Node is the edge source and
	// HalfEdge.Weight is the edge's weight (not normalized).
	InEdges(v NodeID, yield func(HalfEdge) bool)
	// OutDegree returns the number of outgoing edges of v.
	OutDegree(v NodeID) int
	// OutWeightSum returns the sum of outgoing edge weights of v — the
	// denominator of the transition probability W(v, .). It returns 0
	// for dangling nodes.
	OutWeightSum(v NodeID) float64
	// HasEdge reports whether at least one directed edge (from, to)
	// exists, of any type.
	HasEdge(from, to NodeID) bool
	// Types returns the shared type registry.
	Types() *TypeRegistry
}

// Transition returns the transition probability W(u, v) summed over all
// parallel typed edges from u to v under view g. It is 0 when u has no
// outgoing edges.
func Transition(g View, u, v NodeID) float64 {
	total := g.OutWeightSum(u)
	if total <= 0 {
		return 0
	}
	var w float64
	g.OutEdges(u, func(h HalfEdge) bool {
		if h.Node == v {
			w += h.Weight
		}
		return true
	})
	return w / total
}

// OutNeighbors returns the distinct out-neighbors of u in deterministic
// order (first-occurrence order of the adjacency list).
func OutNeighbors(g View, u NodeID) []NodeID {
	seen := make(map[NodeID]bool)
	var out []NodeID
	g.OutEdges(u, func(h HalfEdge) bool {
		if !seen[h.Node] {
			seen[h.Node] = true
			out = append(out, h.Node)
		}
		return true
	})
	return out
}

// TypeRegistry maps node- and edge-type names to small dense IDs. A
// registry is owned by a Graph and shared by all of its overlays.
type TypeRegistry struct {
	nodeNames []string
	nodeIDs   map[string]NodeTypeID
	edgeNames []string
	edgeIDs   map[string]EdgeTypeID
}

// NewTypeRegistry returns an empty registry.
func NewTypeRegistry() *TypeRegistry {
	return &TypeRegistry{
		nodeIDs: make(map[string]NodeTypeID),
		edgeIDs: make(map[string]EdgeTypeID),
	}
}

// NodeType registers (or resolves) a node type by name.
func (r *TypeRegistry) NodeType(name string) NodeTypeID {
	if id, ok := r.nodeIDs[name]; ok {
		return id
	}
	id := NodeTypeID(len(r.nodeNames))
	r.nodeNames = append(r.nodeNames, name)
	r.nodeIDs[name] = id
	return id
}

// EdgeType registers (or resolves) an edge type by name.
func (r *TypeRegistry) EdgeType(name string) EdgeTypeID {
	if id, ok := r.edgeIDs[name]; ok {
		return id
	}
	id := EdgeTypeID(len(r.edgeNames))
	r.edgeNames = append(r.edgeNames, name)
	r.edgeIDs[name] = id
	return id
}

// LookupNodeType resolves a node-type name without registering it. The
// second result is false if the name is unknown.
func (r *TypeRegistry) LookupNodeType(name string) (NodeTypeID, bool) {
	id, ok := r.nodeIDs[name]
	return id, ok
}

// LookupEdgeType resolves an edge-type name without registering it.
func (r *TypeRegistry) LookupEdgeType(name string) (EdgeTypeID, bool) {
	id, ok := r.edgeIDs[name]
	return id, ok
}

// NodeTypeName returns the name of a node type ID, or "" if out of range.
func (r *TypeRegistry) NodeTypeName(id NodeTypeID) string {
	if int(id) >= len(r.nodeNames) {
		return ""
	}
	return r.nodeNames[id]
}

// EdgeTypeName returns the name of an edge type ID, or "" if out of range.
func (r *TypeRegistry) EdgeTypeName(id EdgeTypeID) string {
	if int(id) >= len(r.edgeNames) {
		return ""
	}
	return r.edgeNames[id]
}

// NumNodeTypes returns the number of registered node types.
func (r *TypeRegistry) NumNodeTypes() int { return len(r.nodeNames) }

// NumEdgeTypes returns the number of registered edge types.
func (r *TypeRegistry) NumEdgeTypes() int { return len(r.edgeNames) }

// EdgeTypeSet is a small set of edge types, used to restrict the
// explanation search space (the paper's T_e). The zero value is the
// empty set, which by convention means "all types allowed".
type EdgeTypeSet struct {
	mask uint64 // bit i set <=> EdgeTypeID(i) allowed; 0 == allow all
}

// NewEdgeTypeSet builds a set from explicit type IDs. With no arguments
// the returned set allows every edge type.
func NewEdgeTypeSet(types ...EdgeTypeID) EdgeTypeSet {
	var s EdgeTypeSet
	for _, t := range types {
		if t > 63 {
			panic("hin: EdgeTypeSet supports at most 64 edge types")
		}
		s.mask |= 1 << uint(t)
	}
	return s
}

// Contains reports whether t is allowed by the set. The empty set allows
// every type.
func (s EdgeTypeSet) Contains(t EdgeTypeID) bool {
	return s.mask == 0 || s.mask&(1<<uint(t)) != 0
}

// IsAll reports whether the set allows every type.
func (s EdgeTypeSet) IsAll() bool { return s.mask == 0 }
