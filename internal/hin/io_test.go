package hin

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func graphsEquivalent(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("node counts differ: %d vs %d", a.NumNodes(), b.NumNodes())
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for v := 0; v < a.NumNodes(); v++ {
		id := NodeID(v)
		if a.Types().NodeTypeName(a.NodeType(id)) != b.Types().NodeTypeName(b.NodeType(id)) {
			t.Fatalf("node %d type differs", v)
		}
		if a.Label(id) != b.Label(id) {
			t.Fatalf("node %d label differs: %q vs %q", v, a.Label(id), b.Label(id))
		}
		var ae, be []HalfEdge
		a.OutEdges(id, func(h HalfEdge) bool { ae = append(ae, h); return true })
		b.OutEdges(id, func(h HalfEdge) bool { be = append(be, h); return true })
		if len(ae) != len(be) {
			t.Fatalf("node %d out-degree differs", v)
		}
		for i := range ae {
			if ae[i].Node != be[i].Node || ae[i].Weight != be[i].Weight {
				t.Fatalf("node %d edge %d differs: %+v vs %+v", v, i, ae[i], be[i])
			}
			if a.Types().EdgeTypeName(ae[i].Type) != b.Types().EdgeTypeName(be[i].Type) {
				t.Fatalf("node %d edge %d type name differs", v, i)
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g, _ := buildTriangle(t)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEquivalent(t, g, got)
}

func TestTSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 15, 50)
	var buf bytes.Buffer
	if err := g.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEquivalent(t, g, got)
}

func TestReadJSONRejectsSparseIDs(t *testing.T) {
	in := `{"nodes":[{"id":1,"type":"x"}],"edges":[]}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Fatal("expected error for non-dense node ids")
	}
}

func TestReadJSONRejectsBadEdges(t *testing.T) {
	in := `{"nodes":[{"id":0,"type":"x"},{"id":1,"type":"x"}],
	        "edges":[{"from":0,"to":9,"type":"e","weight":1}]}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Fatal("expected error for dangling edge")
	}
	in = `{"nodes":[{"id":0,"type":"x"},{"id":1,"type":"x"}],
	       "edges":[{"from":0,"to":1,"type":"e","weight":-2}]}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Fatal("expected error for negative weight")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := map[string]string{
		"content before section": "0\tuser\t\n",
		"bad node id":            "# nodes\nxx\tuser\t\n",
		"sparse node ids":        "# nodes\n5\tuser\t\n",
		"short edge line":        "# nodes\n0\tuser\t\n# edges\n0\t0\n",
		"bad weight":             "# nodes\n0\tu\t\n1\tu\t\n# edges\n0\t1\te\tzz\n",
		"self loop edge":         "# nodes\n0\tu\t\n# edges\n0\t0\te\t1\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadTSV(strings.NewReader(in)); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestDegreeStats(t *testing.T) {
	g, _ := buildTriangle(t)
	rows := DegreeStats(g)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	// Rows sorted by type name: category, item, user.
	if rows[0].TypeName != "category" || rows[1].TypeName != "item" || rows[2].TypeName != "user" {
		t.Fatalf("unexpected row order: %+v", rows)
	}
	if rows[2].NumNodes != 1 || rows[2].AvgDegree != 2 {
		t.Fatalf("user row wrong: %+v", rows[2])
	}
	if rows[1].NumNodes != 2 || rows[1].AvgDegree != 1 || rows[1].DegreeStd != 0 {
		t.Fatalf("item row wrong: %+v", rows[1])
	}
	if rows[0].AvgDegree != 0 { // category c has no out-edges
		t.Fatalf("category row wrong: %+v", rows[0])
	}
	out := FormatDegreeStats(rows)
	for _, want := range []string{"Node Type", "category", "item", "user"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted stats missing %q:\n%s", want, out)
		}
	}
}

func TestEdgeTypeCounts(t *testing.T) {
	g, _ := buildTriangle(t)
	counts := EdgeTypeCounts(g)
	if counts["rated"] != 2 || counts["belongs-to"] != 2 {
		t.Fatalf("unexpected counts: %v", counts)
	}
}
