package hin

import (
	"bytes"
	"testing"
)

// FuzzReadTSV checks the TSV parser never panics and that any graph it
// accepts round-trips: write → read → write reproduces the bytes.
func FuzzReadTSV(f *testing.F) {
	f.Add([]byte("# nodes\n0\tuser\talice\n1\titem\tbook\n# edges\n0\t1\trated\t0.8\n"))
	f.Add([]byte("# nodes\n0\tuser\n# edges\n"))
	f.Add([]byte("# edges\n0\t1\trated\tnot-a-number\n"))
	f.Add([]byte("0\tuser\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadTSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := g.WriteTSV(&first); err != nil {
			t.Fatalf("WriteTSV on accepted graph: %v", err)
		}
		g2, err := ReadTSV(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own TSV output: %v\noutput:\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := g2.WriteTSV(&second); err != nil {
			t.Fatalf("WriteTSV on round-tripped graph: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("TSV round trip not stable\nfirst:\n%s\nsecond:\n%s", first.Bytes(), second.Bytes())
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Errorf("round trip changed sizes: %d/%d nodes, %d/%d edges",
				g.NumNodes(), g2.NumNodes(), g.NumEdges(), g2.NumEdges())
		}
	})
}

// FuzzReadJSON is the JSON twin of FuzzReadTSV.
func FuzzReadJSON(f *testing.F) {
	f.Add([]byte(`{"nodes":[{"id":0,"type":"user","label":"alice"},{"id":1,"type":"item"}],"edges":[{"from":0,"to":1,"type":"rated","weight":0.8}]}`))
	f.Add([]byte(`{"nodes":[],"edges":[]}`))
	f.Add([]byte(`{"nodes":[{"id":1,"type":"user"}]}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := g.WriteJSON(&first); err != nil {
			t.Fatalf("WriteJSON on accepted graph: %v", err)
		}
		g2, err := ReadJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own JSON output: %v\noutput:\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := g2.WriteJSON(&second); err != nil {
			t.Fatalf("WriteJSON on round-tripped graph: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("JSON round trip not stable\nfirst:\n%s\nsecond:\n%s", first.Bytes(), second.Bytes())
		}
	})
}

// fuzzBaseGraph builds the small fixed graph overlay-digest fuzzing
// edits against.
func fuzzBaseGraph() (*Graph, EdgeTypeID, EdgeTypeID) {
	g := NewGraph()
	user := g.Types().NodeType("user")
	rated := g.Types().EdgeType("rated")
	similar := g.Types().EdgeType("similar")
	for i := 0; i < 6; i++ {
		g.AddNode(user, "")
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i == j || (i+j)%2 == 0 {
				continue
			}
			_ = g.AddEdge(NodeID(i), NodeID(j), rated, float64(i+j)/10+0.1)
		}
	}
	return g, rated, similar
}

// decodeEdits derives removal/addition lists from fuzz bytes, five
// bytes per edit. The edits are not necessarily valid — NewOverlay's
// error paths are part of the surface under test.
func decodeEdits(g *Graph, rated, similar EdgeTypeID, data []byte) (removals, additions []Edge) {
	types := []EdgeTypeID{rated, similar}
	for i := 0; i+5 <= len(data); i += 5 {
		e := Edge{
			From:   NodeID(data[i+1] % 7), // 6 is deliberately out of range
			To:     NodeID(data[i+2] % 7),
			Type:   types[data[i+3]%2],
			Weight: float64(data[i+4]%100+1) / 10,
		}
		if data[i]%2 == 0 {
			removals = append(removals, e)
		} else {
			additions = append(additions, e)
		}
	}
	return removals, additions
}

// FuzzOverlayDigest checks the Overlay version contract: the same edit
// set applied in any order yields the same Version, and acceptance is
// order-insensitive too.
func FuzzOverlayDigest(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 0, 5})
	f.Add([]byte{1, 0, 2, 1, 9, 1, 2, 0, 1, 3})
	f.Add([]byte{0, 0, 1, 0, 5, 1, 0, 1, 0, 7, 0, 1, 2, 0, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, rated, similar := fuzzBaseGraph()
		removals, additions := decodeEdits(g, rated, similar, data)

		o1, err1 := NewOverlay(g, removals, additions)

		rev := func(in []Edge) []Edge {
			out := make([]Edge, len(in))
			for i, e := range in {
				out[len(in)-1-i] = e
			}
			return out
		}
		o2, err2 := NewOverlay(g, rev(removals), rev(additions))

		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("acceptance depends on edit order: forward err=%v, reversed err=%v", err1, err2)
		}
		if err1 != nil {
			return
		}
		v1, ok1 := o1.Version()
		v2, ok2 := o2.Version()
		if ok1 != ok2 {
			t.Fatalf("version availability depends on edit order")
		}
		if v1 != v2 {
			t.Errorf("same edits in different order produced different versions: %v vs %v", v1, v2)
		}
		if len(removals)+len(additions) > 0 {
			base, _ := ViewVersion(g)
			if v1 == base {
				t.Errorf("non-empty edit set left the base version unchanged")
			}
		}
	})
}
