package hin

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// jsonGraph is the on-disk JSON representation of a graph.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	ID    int    `json:"id"`
	Type  string `json:"type"`
	Label string `json:"label,omitempty"`
}

type jsonEdge struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	Type   string  `json:"type"`
	Weight float64 `json:"weight"`
}

// WriteJSON serializes the graph as a single JSON document with explicit
// node and edge lists, using type names rather than numeric type IDs so
// the file is self-describing.
func (g *Graph) WriteJSON(w io.Writer) error {
	jg := jsonGraph{
		Nodes: make([]jsonNode, g.NumNodes()),
		Edges: make([]jsonEdge, 0, g.NumEdges()),
	}
	for v := 0; v < g.NumNodes(); v++ {
		jg.Nodes[v] = jsonNode{
			ID:    v,
			Type:  g.types.NodeTypeName(g.ntype[v]),
			Label: g.labels[v],
		}
		for _, h := range g.out[v] {
			jg.Edges = append(jg.Edges, jsonEdge{
				From:   v,
				To:     int(h.Node),
				Type:   g.types.EdgeTypeName(h.Type),
				Weight: h.Weight,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(jg)
}

// ReadJSON parses a graph previously written by WriteJSON. Node IDs in
// the file must be dense and start at 0.
func ReadJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jg); err != nil {
		return nil, fmt.Errorf("hin: decoding graph JSON: %w", err)
	}
	g := NewGraph()
	for i, n := range jg.Nodes {
		if n.ID != i {
			return nil, fmt.Errorf("hin: node ids must be dense, got %d at position %d", n.ID, i)
		}
		// AddNode panics on duplicate labels; validate file input here.
		if n.Label != "" {
			if _, exists := g.NodeByLabel(n.Label); exists {
				return nil, fmt.Errorf("hin: node %d: duplicate label %q", i, n.Label)
			}
		}
		g.AddNode(g.types.NodeType(n.Type), n.Label)
	}
	for _, e := range jg.Edges {
		if err := g.AddEdge(NodeID(e.From), NodeID(e.To), g.types.EdgeType(e.Type), e.Weight); err != nil {
			return nil, fmt.Errorf("hin: edge (%d,%d): %w", e.From, e.To, err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteTSV writes the graph as two sections: a "# nodes" section with
// one "id<TAB>type<TAB>label" line per node, then a "# edges" section
// with one "from<TAB>to<TAB>type<TAB>weight" line per edge. The format
// round-trips through ReadTSV and is convenient for shell inspection.
func (g *Graph) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# nodes"); err != nil {
		return err
	}
	for v := 0; v < g.NumNodes(); v++ {
		if _, err := fmt.Fprintf(bw, "%d\t%s\t%s\n", v, g.types.NodeTypeName(g.ntype[v]), g.labels[v]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "# edges"); err != nil {
		return err
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, h := range g.out[v] {
			if _, err := fmt.Fprintf(bw, "%d\t%d\t%s\t%g\n", v, h.Node, g.types.EdgeTypeName(h.Type), h.Weight); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTSV parses the format produced by WriteTSV.
func ReadTSV(r io.Reader) (*Graph, error) {
	g := NewGraph()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	section := ""
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			section = strings.TrimSpace(strings.TrimPrefix(text, "#"))
			continue
		}
		fields := strings.Split(text, "\t")
		// Trim each field: edge whitespace cannot round-trip through the
		// line-level TrimSpace above (found by FuzzReadTSV), so types and
		// labels are stored trimmed.
		for i := range fields {
			fields[i] = strings.TrimSpace(fields[i])
		}
		switch section {
		case "nodes":
			if len(fields) < 2 {
				return nil, fmt.Errorf("hin: line %d: node needs id and type", line)
			}
			id, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("hin: line %d: bad node id: %w", line, err)
			}
			if id != g.NumNodes() {
				return nil, fmt.Errorf("hin: line %d: node ids must be dense, got %d want %d", line, id, g.NumNodes())
			}
			// An empty type name would round-trip to a line whose trailing
			// tabs are trimmed away on re-read (found by FuzzReadTSV).
			if fields[1] == "" {
				return nil, fmt.Errorf("hin: line %d: empty node type", line)
			}
			label := ""
			if len(fields) >= 3 {
				label = fields[2]
			}
			// AddNode panics on duplicate labels (a programming-error
			// contract); file input must be validated here instead
			// (found by FuzzReadTSV).
			if label != "" {
				if _, exists := g.NodeByLabel(label); exists {
					return nil, fmt.Errorf("hin: line %d: duplicate node label %q", line, label)
				}
			}
			g.AddNode(g.types.NodeType(fields[1]), label)
		case "edges":
			if len(fields) < 4 {
				return nil, fmt.Errorf("hin: line %d: edge needs from, to, type, weight", line)
			}
			from, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("hin: line %d: bad from: %w", line, err)
			}
			to, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("hin: line %d: bad to: %w", line, err)
			}
			if fields[2] == "" {
				return nil, fmt.Errorf("hin: line %d: empty edge type", line)
			}
			w, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("hin: line %d: bad weight: %w", line, err)
			}
			if err := g.AddEdge(NodeID(from), NodeID(to), g.types.EdgeType(fields[2]), w); err != nil {
				return nil, fmt.Errorf("hin: line %d: %w", line, err)
			}
		default:
			return nil, fmt.Errorf("hin: line %d: content before a section header", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
