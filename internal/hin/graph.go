package hin

import (
	"errors"
	"fmt"
	"math"
)

// Graph is a mutable Heterogeneous Information Network: a directed,
// weighted graph in which every node and edge has exactly one type.
// The zero value is not usable; create graphs with NewGraph.
//
// Graph is not safe for concurrent mutation. Concurrent reads are safe
// once mutation has stopped.
type Graph struct {
	types  *TypeRegistry
	ntype  []NodeTypeID
	labels []string
	byName map[string]NodeID

	out [][]HalfEdge
	in  [][]HalfEdge

	outWeight []float64 // cached sum of outgoing weights per node
	numEdges  int

	// edgeSet indexes directed (from,to) pairs for O(1) HasEdge,
	// counting parallel typed edges.
	edgeSet map[pairKey]int

	// version is the globally unique stamp of the graph's current
	// state; every mutating operation assigns a fresh one. See Version.
	version uint64
}

type pairKey struct{ from, to NodeID }

// NewGraph returns an empty graph with a fresh type registry.
func NewGraph() *Graph {
	return &Graph{
		types:   NewTypeRegistry(),
		byName:  make(map[string]NodeID),
		edgeSet: make(map[pairKey]int),
		version: nextVersionStamp(),
	}
}

// Version implements Versioned: it identifies the graph's current
// state with a process-unique stamp. Any mutation (AddNode, AddEdge,
// RemoveEdge, ...) moves the graph to a fresh stamp, so cache entries
// keyed by an old version can never be served against the new state.
func (g *Graph) Version() (Version, bool) {
	return Version{Stamp: g.version}, true
}

// bumpVersion moves the graph to a fresh state stamp. Every mutator
// calls it; readers never do.
func (g *Graph) bumpVersion() { g.version = nextVersionStamp() }

// Errors returned by graph mutators.
var (
	ErrNodeOutOfRange = errors.New("hin: node id out of range")
	ErrBadWeight      = errors.New("hin: edge weight must be positive and finite")
	ErrSelfLoop       = errors.New("hin: self loops are not allowed")
	ErrDuplicateEdge  = errors.New("hin: duplicate typed edge")
	ErrNoSuchEdge     = errors.New("hin: no such edge")
	ErrDuplicateLabel = errors.New("hin: duplicate node label")
)

// Types returns the graph's type registry.
func (g *Graph) Types() *TypeRegistry { return g.types }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.ntype) }

// NumEdges returns the number of directed edges (a bidirectional
// relation stored as two directed edges counts twice).
func (g *Graph) NumEdges() int { return g.numEdges }

// AddNode creates a node of the given type with an optional label and
// returns its ID. Labels must be unique when non-empty; AddNode panics
// on a duplicate label (it indicates a programming error in graph
// construction — use NodeByLabel to resolve existing nodes).
func (g *Graph) AddNode(typ NodeTypeID, label string) NodeID {
	if label != "" {
		if _, exists := g.byName[label]; exists {
			panic(fmt.Sprintf("hin: duplicate node label %q", label))
		}
	}
	id := NodeID(len(g.ntype))
	g.ntype = append(g.ntype, typ)
	g.labels = append(g.labels, label)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.outWeight = append(g.outWeight, 0)
	if label != "" {
		g.byName[label] = id
	}
	g.bumpVersion()
	return id
}

// NodeByLabel resolves a node by its label. It returns InvalidNode and
// false when no node has that label.
func (g *Graph) NodeByLabel(label string) (NodeID, bool) {
	id, ok := g.byName[label]
	if !ok {
		return InvalidNode, false
	}
	return id, true
}

// Label returns the label of node v ("" when unlabeled).
func (g *Graph) Label(v NodeID) string {
	if !g.valid(v) {
		return ""
	}
	return g.labels[v]
}

// NodeType returns the type of node v. It panics if v is out of range.
func (g *Graph) NodeType(v NodeID) NodeTypeID {
	g.mustValid(v)
	return g.ntype[v]
}

// NodesOfType returns all node IDs of the given type, in ID order.
func (g *Graph) NodesOfType(typ NodeTypeID) []NodeID {
	var out []NodeID
	for v, t := range g.ntype {
		if t == typ {
			out = append(out, NodeID(v))
		}
	}
	return out
}

func (g *Graph) valid(v NodeID) bool { return v >= 0 && int(v) < len(g.ntype) }

func (g *Graph) mustValid(v NodeID) {
	if !g.valid(v) {
		panic(fmt.Sprintf("hin: node %d out of range [0,%d)", v, len(g.ntype)))
	}
}

// AddEdge inserts a directed, typed, weighted edge. It returns an error
// when either endpoint is out of range, the weight is not a positive
// finite number, the edge is a self loop, or an edge with the same
// (from, to, type) triple already exists.
func (g *Graph) AddEdge(from, to NodeID, typ EdgeTypeID, weight float64) error {
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("%w: (%d, %d)", ErrNodeOutOfRange, from, to)
	}
	if from == to {
		return fmt.Errorf("%w: node %d", ErrSelfLoop, from)
	}
	if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return fmt.Errorf("%w: got %g", ErrBadWeight, weight)
	}
	for _, h := range g.out[from] {
		if h.Node == to && h.Type == typ {
			return fmt.Errorf("%w: (%d, %d, type %d)", ErrDuplicateEdge, from, to, typ)
		}
	}
	g.out[from] = append(g.out[from], HalfEdge{Node: to, Type: typ, Weight: weight})
	g.in[to] = append(g.in[to], HalfEdge{Node: from, Type: typ, Weight: weight})
	g.outWeight[from] += weight
	g.edgeSet[pairKey{from, to}]++
	g.numEdges++
	g.bumpVersion()
	return nil
}

// AddBidirectional inserts the edge in both directions with the same
// type and weight. The paper's preprocessing treats every relationship
// as bidirectional (§6.1); this helper implements that convention.
func (g *Graph) AddBidirectional(a, b NodeID, typ EdgeTypeID, weight float64) error {
	if err := g.AddEdge(a, b, typ, weight); err != nil {
		return err
	}
	if err := g.AddEdge(b, a, typ, weight); err != nil {
		// Roll back the first direction to keep the pair atomic.
		if rbErr := g.RemoveEdge(a, b, typ); rbErr != nil {
			return errors.Join(err, rbErr)
		}
		return err
	}
	return nil
}

// RemoveEdge deletes the directed edge (from, to, typ). It returns
// ErrNoSuchEdge when the edge does not exist.
func (g *Graph) RemoveEdge(from, to NodeID, typ EdgeTypeID) error {
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("%w: (%d, %d)", ErrNodeOutOfRange, from, to)
	}
	idx := -1
	for i, h := range g.out[from] {
		if h.Node == to && h.Type == typ {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("%w: (%d, %d, type %d)", ErrNoSuchEdge, from, to, typ)
	}
	w := g.out[from][idx].Weight
	g.out[from] = append(g.out[from][:idx], g.out[from][idx+1:]...)
	for i, h := range g.in[to] {
		if h.Node == from && h.Type == typ {
			g.in[to] = append(g.in[to][:i], g.in[to][i+1:]...)
			break
		}
	}
	g.outWeight[from] -= w
	if g.outWeight[from] < 0 { // numeric drift guard
		g.outWeight[from] = 0
	}
	k := pairKey{from, to}
	if n := g.edgeSet[k] - 1; n <= 0 {
		delete(g.edgeSet, k)
	} else {
		g.edgeSet[k] = n
	}
	g.numEdges--
	g.bumpVersion()
	return nil
}

// EdgeWeight returns the weight of the typed edge (from, to, typ) and
// whether it exists.
func (g *Graph) EdgeWeight(from, to NodeID, typ EdgeTypeID) (float64, bool) {
	if !g.valid(from) {
		return 0, false
	}
	for _, h := range g.out[from] {
		if h.Node == to && h.Type == typ {
			return h.Weight, true
		}
	}
	return 0, false
}

// HasEdge reports whether at least one directed edge (from, to) of any
// type exists.
func (g *Graph) HasEdge(from, to NodeID) bool {
	_, ok := g.edgeSet[pairKey{from, to}]
	return ok
}

// OutEdges iterates the outgoing edges of v.
func (g *Graph) OutEdges(v NodeID, yield func(HalfEdge) bool) {
	g.mustValid(v)
	for _, h := range g.out[v] {
		if !yield(h) {
			return
		}
	}
}

// InEdges iterates the incoming edges of v. HalfEdge.Node is the source.
func (g *Graph) InEdges(v NodeID, yield func(HalfEdge) bool) {
	g.mustValid(v)
	for _, h := range g.in[v] {
		if !yield(h) {
			return
		}
	}
}

// OutDegree returns the number of outgoing edges of v.
func (g *Graph) OutDegree(v NodeID) int {
	g.mustValid(v)
	return len(g.out[v])
}

// InDegree returns the number of incoming edges of v.
func (g *Graph) InDegree(v NodeID) int {
	g.mustValid(v)
	return len(g.in[v])
}

// OutWeightSum returns the total outgoing weight of v.
func (g *Graph) OutWeightSum(v NodeID) float64 {
	g.mustValid(v)
	return g.outWeight[v]
}

// OutEdgesOfType returns the outgoing edges of v whose type is allowed
// by the set, as full Edge values rooted at v.
func (g *Graph) OutEdgesOfType(v NodeID, allowed EdgeTypeSet) []Edge {
	g.mustValid(v)
	var edges []Edge
	for _, h := range g.out[v] {
		if allowed.Contains(h.Type) {
			edges = append(edges, Edge{From: v, To: h.Node, Type: h.Type, Weight: h.Weight})
		}
	}
	return edges
}

// Clone returns a deep copy of the graph sharing the type registry.
// Mutating the clone does not affect the original. The registry is
// shared because type IDs must stay consistent between the two graphs;
// registering further types on either graph is visible to both.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		types:     g.types,
		ntype:     append([]NodeTypeID(nil), g.ntype...),
		labels:    append([]string(nil), g.labels...),
		byName:    make(map[string]NodeID, len(g.byName)),
		out:       make([][]HalfEdge, len(g.out)),
		in:        make([][]HalfEdge, len(g.in)),
		outWeight: append([]float64(nil), g.outWeight...),
		numEdges:  g.numEdges,
		edgeSet:   make(map[pairKey]int, len(g.edgeSet)),
		// A clone is a distinct mutable state even though its content
		// currently matches the original: giving it a fresh stamp keeps
		// later divergent mutations of the two graphs from ever
		// colliding in a cache.
		version: nextVersionStamp(),
	}
	for k, v := range g.byName {
		c.byName[k] = v
	}
	for i := range g.out {
		c.out[i] = append([]HalfEdge(nil), g.out[i]...)
		c.in[i] = append([]HalfEdge(nil), g.in[i]...)
	}
	for k, v := range g.edgeSet {
		c.edgeSet[k] = v
	}
	return c
}

// Validate checks internal invariants: adjacency symmetry between out
// and in lists, cached out-weight sums, edge counting, and weight
// sanity. It returns a descriptive error for the first violation found.
// Validate is O(V + E) and intended for tests and data loading.
func (g *Graph) Validate() error {
	edges := 0
	for v := range g.out {
		var sum float64
		for _, h := range g.out[v] {
			if !g.valid(h.Node) {
				return fmt.Errorf("hin: node %d has out edge to invalid node %d", v, h.Node)
			}
			if h.Weight <= 0 || math.IsNaN(h.Weight) || math.IsInf(h.Weight, 0) {
				return fmt.Errorf("hin: edge (%d,%d) has bad weight %g", v, h.Node, h.Weight)
			}
			found := false
			for _, r := range g.in[h.Node] {
				// The in-list entry is a literal copy of the out-list
				// entry, so bitwise weight equality is the invariant.
				//lint:allow floateq in/out lists must carry bit-identical copies
				if r.Node == NodeID(v) && r.Type == h.Type && r.Weight == h.Weight {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("hin: edge (%d,%d,type %d) missing from in-list", v, h.Node, h.Type)
			}
			if _, ok := g.edgeSet[pairKey{NodeID(v), h.Node}]; !ok {
				return fmt.Errorf("hin: edge (%d,%d) missing from edge set", v, h.Node)
			}
			sum += h.Weight
			edges++
		}
		if diff := math.Abs(sum - g.outWeight[v]); diff > 1e-9*(1+math.Abs(sum)) {
			return fmt.Errorf("hin: node %d cached out weight %g != actual %g", v, g.outWeight[v], sum)
		}
	}
	if edges != g.numEdges {
		return fmt.Errorf("hin: edge count %d != cached %d", edges, g.numEdges)
	}
	inEdges := 0
	for v := range g.in {
		inEdges += len(g.in[v])
	}
	if inEdges != edges {
		return fmt.Errorf("hin: in-list edge count %d != out-list %d", inEdges, edges)
	}
	return nil
}
