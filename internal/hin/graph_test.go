package hin

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildTriangle returns a small typed graph:
//
//	u (user) -> a (item), u -> b (item), a -> c (category), b -> c
func buildTriangle(t *testing.T) (*Graph, []NodeID) {
	t.Helper()
	g := NewGraph()
	user := g.Types().NodeType("user")
	item := g.Types().NodeType("item")
	cat := g.Types().NodeType("category")
	rated := g.Types().EdgeType("rated")
	belongs := g.Types().EdgeType("belongs-to")

	u := g.AddNode(user, "u")
	a := g.AddNode(item, "a")
	b := g.AddNode(item, "b")
	c := g.AddNode(cat, "c")
	for _, e := range []struct {
		from, to NodeID
		typ      EdgeTypeID
		w        float64
	}{
		{u, a, rated, 1},
		{u, b, rated, 2},
		{a, c, belongs, 1},
		{b, c, belongs, 1},
	} {
		if err := g.AddEdge(e.from, e.to, e.typ, e.w); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return g, []NodeID{u, a, b, c}
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := NewGraph()
	typ := g.Types().NodeType("x")
	for i := 0; i < 10; i++ {
		if got := g.AddNode(typ, ""); got != NodeID(i) {
			t.Fatalf("AddNode #%d = %d, want %d", i, got, i)
		}
	}
	if g.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", g.NumNodes())
	}
}

func TestNodeByLabel(t *testing.T) {
	g, ids := buildTriangle(t)
	u, ok := g.NodeByLabel("u")
	if !ok || u != ids[0] {
		t.Fatalf("NodeByLabel(u) = %d, %v; want %d, true", u, ok, ids[0])
	}
	if _, ok := g.NodeByLabel("nope"); ok {
		t.Fatal("NodeByLabel(nope) should not resolve")
	}
}

func TestDuplicateLabelPanics(t *testing.T) {
	g := NewGraph()
	typ := g.Types().NodeType("x")
	g.AddNode(typ, "dup")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate label")
		}
	}()
	g.AddNode(typ, "dup")
}

func TestAddEdgeValidation(t *testing.T) {
	g, ids := buildTriangle(t)
	u, a := ids[0], ids[1]
	rated, _ := g.Types().LookupEdgeType("rated")

	cases := []struct {
		name    string
		from    NodeID
		to      NodeID
		w       float64
		wantErr error
	}{
		{"out of range from", 99, a, 1, ErrNodeOutOfRange},
		{"out of range to", u, -1, 1, ErrNodeOutOfRange},
		{"self loop", u, u, 1, ErrSelfLoop},
		{"zero weight", a, u, 0, ErrBadWeight},
		{"negative weight", a, u, -3, ErrBadWeight},
		{"nan weight", a, u, math.NaN(), ErrBadWeight},
		{"inf weight", a, u, math.Inf(1), ErrBadWeight},
		{"duplicate typed edge", u, a, 1, ErrDuplicateEdge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := g.AddEdge(tc.from, tc.to, rated, tc.w); !errors.Is(err, tc.wantErr) {
				t.Fatalf("AddEdge = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestParallelEdgesOfDifferentTypes(t *testing.T) {
	g, ids := buildTriangle(t)
	u, a := ids[0], ids[1]
	reviewed := g.Types().EdgeType("reviewed")
	if err := g.AddEdge(u, a, reviewed, 0.5); err != nil {
		t.Fatalf("parallel typed edge rejected: %v", err)
	}
	if g.OutDegree(u) != 3 {
		t.Fatalf("OutDegree(u) = %d, want 3", g.OutDegree(u))
	}
	// Transition sums both parallel edges: (1 + 0.5) / (1 + 2 + 0.5).
	want := 1.5 / 3.5
	if got := Transition(g, u, a); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Transition(u,a) = %g, want %g", got, want)
	}
}

func TestRemoveEdge(t *testing.T) {
	g, ids := buildTriangle(t)
	u, a := ids[0], ids[1]
	rated, _ := g.Types().LookupEdgeType("rated")

	if err := g.RemoveEdge(u, a, rated); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	if g.HasEdge(u, a) {
		t.Fatal("HasEdge(u,a) should be false after removal")
	}
	if g.OutDegree(u) != 1 {
		t.Fatalf("OutDegree(u) = %d, want 1", g.OutDegree(u))
	}
	if got := g.OutWeightSum(u); math.Abs(got-2) > 1e-15 {
		t.Fatalf("OutWeightSum(u) = %g, want 2", got)
	}
	if err := g.RemoveEdge(u, a, rated); !errors.Is(err, ErrNoSuchEdge) {
		t.Fatalf("second RemoveEdge = %v, want ErrNoSuchEdge", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after removal: %v", err)
	}
}

func TestHasEdgeCountsParallelTypes(t *testing.T) {
	g, ids := buildTriangle(t)
	u, a := ids[0], ids[1]
	rated, _ := g.Types().LookupEdgeType("rated")
	reviewed := g.Types().EdgeType("reviewed")
	if err := g.AddEdge(u, a, reviewed, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdge(u, a, rated); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(u, a) {
		t.Fatal("HasEdge should still be true: reviewed edge remains")
	}
	if err := g.RemoveEdge(u, a, reviewed); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(u, a) {
		t.Fatal("HasEdge should be false after removing both typed edges")
	}
}

func TestAddBidirectional(t *testing.T) {
	g, ids := buildTriangle(t)
	a, c := ids[1], ids[3]
	sim := g.Types().EdgeType("similar")
	if err := g.AddBidirectional(a, c, sim, 0.7); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(a, c) || !g.HasEdge(c, a) {
		t.Fatal("bidirectional edge missing a direction")
	}
	// Rollback path: second direction collides -> first removed.
	b := ids[2]
	if err := g.AddEdge(c, b, sim, 1); err != nil {
		t.Fatal(err)
	}
	before := g.NumEdges()
	if err := g.AddBidirectional(b, c, sim, 1); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("AddBidirectional = %v, want ErrDuplicateEdge", err)
	}
	if g.NumEdges() != before {
		t.Fatalf("edge count changed on failed AddBidirectional: %d -> %d", before, g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeWeight(t *testing.T) {
	g, ids := buildTriangle(t)
	u, b := ids[0], ids[2]
	rated, _ := g.Types().LookupEdgeType("rated")
	w, ok := g.EdgeWeight(u, b, rated)
	if !ok || w != 2 {
		t.Fatalf("EdgeWeight(u,b) = %g, %v; want 2, true", w, ok)
	}
	if _, ok := g.EdgeWeight(b, u, rated); ok {
		t.Fatal("EdgeWeight should be directional")
	}
}

func TestNodesOfType(t *testing.T) {
	g, ids := buildTriangle(t)
	item, _ := g.Types().LookupNodeType("item")
	items := g.NodesOfType(item)
	if len(items) != 2 || items[0] != ids[1] || items[1] != ids[2] {
		t.Fatalf("NodesOfType(item) = %v, want [%d %d]", items, ids[1], ids[2])
	}
}

func TestOutEdgesOfTypeFilter(t *testing.T) {
	g, ids := buildTriangle(t)
	u, a := ids[0], ids[1]
	reviewed := g.Types().EdgeType("reviewed")
	rated, _ := g.Types().LookupEdgeType("rated")
	if err := g.AddEdge(u, a, reviewed, 1); err != nil {
		t.Fatal(err)
	}
	onlyRated := g.OutEdgesOfType(u, NewEdgeTypeSet(rated))
	if len(onlyRated) != 2 {
		t.Fatalf("rated edges = %d, want 2", len(onlyRated))
	}
	all := g.OutEdgesOfType(u, NewEdgeTypeSet())
	if len(all) != 3 {
		t.Fatalf("all edges = %d, want 3", len(all))
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g, ids := buildTriangle(t)
	u, a := ids[0], ids[1]
	rated, _ := g.Types().LookupEdgeType("rated")
	c := g.Clone()
	if err := c.RemoveEdge(u, a, rated); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(u, a) {
		t.Fatal("mutating clone affected original")
	}
	if c.HasEdge(u, a) {
		t.Fatal("clone did not apply mutation")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOutNeighborsDeduplicates(t *testing.T) {
	g, ids := buildTriangle(t)
	u, a := ids[0], ids[1]
	reviewed := g.Types().EdgeType("reviewed")
	if err := g.AddEdge(u, a, reviewed, 1); err != nil {
		t.Fatal(err)
	}
	nbrs := OutNeighbors(g, u)
	if len(nbrs) != 2 {
		t.Fatalf("OutNeighbors = %v, want 2 distinct", nbrs)
	}
}

func TestTransitionRowIsStochastic(t *testing.T) {
	g, ids := buildTriangle(t)
	u := ids[0]
	var sum float64
	for _, v := range OutNeighbors(g, u) {
		sum += Transition(g, u, v)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("transition row sums to %g, want 1", sum)
	}
	// Dangling node: transition is zero everywhere.
	c := ids[3]
	if got := Transition(g, c, u); got != 0 {
		t.Fatalf("Transition(dangling, u) = %g, want 0", got)
	}
}

func TestEdgeTypeSet(t *testing.T) {
	s := NewEdgeTypeSet(1, 3)
	if !s.Contains(1) || !s.Contains(3) {
		t.Fatal("set should contain registered types")
	}
	if s.Contains(0) || s.Contains(2) {
		t.Fatal("set should not contain unregistered types")
	}
	all := NewEdgeTypeSet()
	if !all.IsAll() || !all.Contains(42) {
		t.Fatal("empty set should allow everything")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for type id > 63")
		}
	}()
	NewEdgeTypeSet(64)
}

// randomGraph builds a pseudo-random bidirectional typed graph for
// property tests.
func randomGraph(rng *rand.Rand, nodes, edges int) *Graph {
	g := NewGraph()
	nt := g.Types().NodeType("n")
	et := g.Types().EdgeType("e")
	for i := 0; i < nodes; i++ {
		g.AddNode(nt, "")
	}
	for i := 0; i < edges; i++ {
		a := NodeID(rng.Intn(nodes))
		b := NodeID(rng.Intn(nodes))
		if a == b {
			continue
		}
		w := rng.Float64() + 0.1
		// Ignore duplicate errors: the property is about surviving edges.
		_ = g.AddBidirectional(a, b, et, w)
	}
	return g
}

func TestRandomGraphsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		g := randomGraph(rng, 2+rng.Intn(30), rng.Intn(120))
		if err := g.Validate(); err != nil {
			t.Fatalf("random graph #%d invalid: %v", i, err)
		}
	}
}

func TestQuickRemoveRestoresWeightSum(t *testing.T) {
	// Property: adding then removing an edge restores the out-weight sum
	// and degree exactly (weights are compared bit-exactly because the
	// cached sum uses the same additions and subtractions).
	f := func(seed int64, wRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 12, 30)
		et := g.Types().EdgeType("extra")
		a, b := NodeID(rng.Intn(12)), NodeID(rng.Intn(12))
		if a == b || g.HasEdge(a, b) {
			return true
		}
		w := float64(wRaw)/1000 + 0.001
		beforeDeg := g.OutDegree(a)
		if err := g.AddEdge(a, b, et, w); err != nil {
			return false
		}
		if err := g.RemoveEdge(a, b, et); err != nil {
			return false
		}
		return g.OutDegree(a) == beforeDeg && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
