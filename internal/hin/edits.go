package hin

import "sort"

// WeightChange is one typed edge's weight transition under an overlay:
// OldWeight == 0 marks a pure addition, NewWeight == 0 a pure removal,
// and both non-zero a reweight (a removal re-added at a different
// weight, the Reweight-mode shape).
type WeightChange struct {
	To        NodeID
	Type      EdgeTypeID
	OldWeight float64
	NewWeight float64
}

// RowEdit aggregates every outgoing-edge change of one node under an
// overlay, together with the row-level quantities a warm-started PPR
// update needs: the out-degree and out-weight-sum before and after the
// edit. Degree and sum changes matter because the recommender's β-mix
// spreads a uniform term over the whole row — a single edge edit
// perturbs every transition probability of the row, and the consumer
// must know the row changed without re-walking composed adjacency.
type RowEdit struct {
	// Node is the edited row's source node.
	Node NodeID
	// Changes lists the typed-edge weight transitions of the row,
	// ordered by (To, Type).
	Changes []WeightChange
	// OldDeg/NewDeg are the row's out-degrees before/after the edit.
	OldDeg, NewDeg int
	// OldSum/NewSum are the row's out-weight sums before/after the
	// edit (NewSum clamped at zero like OutWeightSum).
	OldSum, NewSum float64
}

// RowEdits enumerates the overlay's edits grouped by source node, in
// ascending node order, with each row's changes ordered by (To, Type).
// This is the first-class edit set the delta-PPR path consumes: the
// engines learn which rows changed (and by how much) in O(|edits|)
// instead of re-walking overlay adjacency. Only directly edited rows
// appear; the enumeration covers this overlay's own edits relative to
// its base view (which may itself be an overlay).
//
// The result is built fresh on every call and owned by the caller; an
// Overlay stays immutable and safe for concurrent readers.
func (o *Overlay) RowEdits() []RowEdit {
	if len(o.outWeight) == 0 {
		return nil
	}
	type rowKey struct {
		to  NodeID
		typ EdgeTypeID
	}
	changes := make(map[NodeID]map[rowKey]*WeightChange, len(o.outWeight))
	rowChange := func(from NodeID, k rowKey) *WeightChange {
		row := changes[from]
		if row == nil {
			row = make(map[rowKey]*WeightChange)
			changes[from] = row
		}
		c := row[k]
		if c == nil {
			c = &WeightChange{To: k.to, Type: k.typ}
			row[k] = c
		}
		return c
	}
	removedCount := make(map[NodeID]int, len(o.outWeight))
	for k, w := range o.removed {
		c := rowChange(k.from, rowKey{k.to, k.typ})
		c.OldWeight = w
		removedCount[k.from]++
	}
	for from, halves := range o.added {
		for _, h := range halves {
			c := rowChange(from, rowKey{h.Node, h.Type})
			c.NewWeight = h.Weight
		}
	}
	edits := make([]RowEdit, 0, len(changes))
	for from, row := range changes {
		e := RowEdit{
			Node:    from,
			Changes: make([]WeightChange, 0, len(row)),
			OldDeg:  o.base.OutDegree(from),
			OldSum:  o.base.OutWeightSum(from),
			NewSum:  o.OutWeightSum(from),
		}
		e.NewDeg = e.OldDeg - removedCount[from] + len(o.added[from])
		for _, c := range row {
			e.Changes = append(e.Changes, *c)
		}
		sort.Slice(e.Changes, func(i, j int) bool {
			a, b := e.Changes[i], e.Changes[j]
			if a.To != b.To {
				return a.To < b.To
			}
			return a.Type < b.Type
		})
		edits = append(edits, e)
	}
	sort.Slice(edits, func(i, j int) bool { return edits[i].Node < edits[j].Node })
	return edits
}

// EditedRows returns the edited source nodes of RowEdits in ascending
// order — the row set a warm-started push must repair.
func (o *Overlay) EditedRows() []NodeID {
	if len(o.outWeight) == 0 {
		return nil
	}
	rows := make([]NodeID, 0, len(o.outWeight))
	for v := range o.outWeight {
		rows = append(rows, v)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	return rows
}
