package hin

import (
	"math/rand"
	"testing"
)

func benchRandomGraph(b *testing.B, nodes, edges int) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, nodes, edges)
	return g
}

func BenchmarkAddEdge(b *testing.B) {
	g := NewGraph()
	nt := g.Types().NodeType("n")
	et := g.Types().EdgeType("e")
	n := 1 << 12
	for i := 0; i < n; i++ {
		g.AddNode(nt, "")
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := NodeID(rng.Intn(n))
		to := NodeID(rng.Intn(n))
		if from == to {
			continue
		}
		// Ignore duplicate errors: they exercise the same lookup path.
		_ = g.AddEdge(from, to, et, 1)
	}
}

func BenchmarkOverlayBuild(b *testing.B) {
	g := benchRandomGraph(b, 2000, 12000)
	u := NodeID(7)
	edges := g.OutEdgesOfType(u, NewEdgeTypeSet())
	if len(edges) == 0 {
		b.Skip("node 7 has no edges in this seed")
	}
	et, _ := g.Types().LookupEdgeType("e")
	additions := []Edge{{From: u, To: NodeID(1999), Type: et, Weight: 0.5}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewOverlay(g, edges[:1], additions); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverlayOutEdges(b *testing.B) {
	g := benchRandomGraph(b, 2000, 12000)
	u := NodeID(7)
	edges := g.OutEdgesOfType(u, NewEdgeTypeSet())
	if len(edges) == 0 {
		b.Skip("node 7 has no edges in this seed")
	}
	o, err := NewOverlay(g, edges[:1], nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sum := 0.0
	for i := 0; i < b.N; i++ {
		v := NodeID(i % 2000)
		o.OutEdges(v, func(h HalfEdge) bool {
			sum += h.Weight
			return true
		})
	}
	_ = sum
}

func BenchmarkCSRBuild(b *testing.B) {
	g := benchRandomGraph(b, 5000, 30000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewCSR(g)
	}
}

func BenchmarkCSRTraversal(b *testing.B) {
	g := benchRandomGraph(b, 5000, 30000)
	c := NewCSR(g)
	b.Run("callback", func(b *testing.B) {
		sum := 0.0
		for i := 0; i < b.N; i++ {
			c.OutEdges(NodeID(i%5000), func(h HalfEdge) bool {
				sum += h.Weight
				return true
			})
		}
		_ = sum
	})
	b.Run("slice", func(b *testing.B) {
		sum := 0.0
		for i := 0; i < b.N; i++ {
			for _, h := range c.OutSlice(NodeID(i % 5000)) {
				sum += h.Weight
			}
		}
		_ = sum
	})
}

func BenchmarkDegreeStats(b *testing.B) {
	g := benchRandomGraph(b, 5000, 30000)
	for i := 0; i < b.N; i++ {
		if rows := DegreeStats(g); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkClone(b *testing.B) {
	g := benchRandomGraph(b, 2000, 12000)
	for i := 0; i < b.N; i++ {
		g.Clone()
	}
}
