package hin

import (
	"math/rand"
	"testing"
)

func TestComponentsTwoIslands(t *testing.T) {
	g := NewGraph()
	nt := g.Types().NodeType("n")
	et := g.Types().EdgeType("e")
	for i := 0; i < 6; i++ {
		g.AddNode(nt, "")
	}
	// Island 1: 0-1-2, island 2: 3-4, isolated: 5.
	mustAdd := func(a, b NodeID) {
		if err := g.AddEdge(a, b, et, 1); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 1)
	mustAdd(1, 2)
	mustAdd(3, 4)
	comp, n := Components(g)
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("island 1 split: %v", comp)
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Fatalf("island 2 wrong: %v", comp)
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatalf("isolated node merged: %v", comp)
	}
}

func TestComponentsDirectionIgnored(t *testing.T) {
	// A directed chain is one weak component even though node 0 is not
	// reachable from node 2.
	g := NewGraph()
	nt := g.Types().NodeType("n")
	et := g.Types().EdgeType("e")
	for i := 0; i < 3; i++ {
		g.AddNode(nt, "")
	}
	if err := g.AddEdge(0, 1, et, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 1, et, 1); err != nil {
		t.Fatal(err)
	}
	_, n := Components(g)
	if n != 1 {
		t.Fatalf("components = %d, want 1", n)
	}
}

func TestReachableWithin(t *testing.T) {
	g := NewGraph()
	nt := g.Types().NodeType("n")
	et := g.Types().EdgeType("e")
	for i := 0; i < 5; i++ {
		g.AddNode(nt, "")
	}
	// Chain 0 -> 1 -> 2 -> 3; 4 detached.
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(NodeID(i), NodeID(i+1), et, 1); err != nil {
			t.Fatal(err)
		}
	}
	for hops, want := range map[int]int{0: 1, 1: 2, 2: 3, 3: 4, 9: 4} {
		got := ReachableWithin(g, []NodeID{0}, hops)
		if len(got) != want {
			t.Fatalf("hops=%d: reachable %d, want %d", hops, len(got), want)
		}
	}
	// Multiple seeds union; invalid seeds ignored.
	got := ReachableWithin(g, []NodeID{0, 4, -1, 99}, 1)
	if len(got) != 3 { // {0,1} ∪ {4}
		t.Fatalf("multi-seed reachable = %v", got)
	}
}

func TestBidirectionalGraphSingleComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// randomBidirGraph-style construction via a spanning chain is done
	// in the ppr package; here connect everything through one hub.
	g := NewGraph()
	nt := g.Types().NodeType("n")
	et := g.Types().EdgeType("e")
	hub := g.AddNode(nt, "")
	for i := 0; i < 20; i++ {
		v := g.AddNode(nt, "")
		if err := g.AddBidirectional(hub, v, et, rng.Float64()+0.1); err != nil {
			t.Fatal(err)
		}
	}
	if _, n := Components(g); n != 1 {
		t.Fatalf("hub graph components = %d, want 1", n)
	}
	reach := ReachableWithin(g, []NodeID{hub}, 1)
	if len(reach) != g.NumNodes() {
		t.Fatalf("hub 1-hop reach = %d, want all %d", len(reach), g.NumNodes())
	}
}
