package hin

import (
	"strings"
	"testing"
)

func TestEdgeString(t *testing.T) {
	e := Edge{From: 1, To: 2, Type: 3, Weight: 0.5}
	s := e.String()
	for _, want := range []string{"1", "2", "0.5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Edge.String() = %q missing %q", s, want)
		}
	}
}

func TestInDegree(t *testing.T) {
	g, ids := buildTriangle(t)
	if got := g.InDegree(ids[3]); got != 2 { // c receives from a and b
		t.Fatalf("InDegree(c) = %d, want 2", got)
	}
	if got := g.InDegree(ids[0]); got != 0 {
		t.Fatalf("InDegree(u) = %d, want 0", got)
	}
}

func TestCountNodesOfType(t *testing.T) {
	g, _ := buildTriangle(t)
	item, _ := g.Types().LookupNodeType("item")
	if got := CountNodesOfType(g, item); got != 2 {
		t.Fatalf("CountNodesOfType(item) = %d, want 2", got)
	}
}

func TestOverlayBaseAccessor(t *testing.T) {
	g, _ := buildTriangle(t)
	o, err := NewOverlay(g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.Base() != View(g) {
		t.Fatal("Base() does not return the wrapped view")
	}
}

func TestCSRTypesShared(t *testing.T) {
	g, _ := buildTriangle(t)
	c := NewCSR(g)
	if c.Types() != g.Types() {
		t.Fatal("CSR must share the graph's type registry")
	}
}

func TestTypeRegistryAccessors(t *testing.T) {
	r := NewTypeRegistry()
	a := r.NodeType("a")
	e := r.EdgeType("x")
	if r.NodeTypeName(a) != "a" || r.EdgeTypeName(e) != "x" {
		t.Fatal("name round trip failed")
	}
	if r.NodeTypeName(99) != "" || r.EdgeTypeName(99) != "" {
		t.Fatal("out-of-range type names should be empty")
	}
	if r.NumNodeTypes() != 1 || r.NumEdgeTypes() != 1 {
		t.Fatal("type counts wrong")
	}
	if _, ok := r.LookupNodeType("missing"); ok {
		t.Fatal("LookupNodeType should miss")
	}
	if _, ok := r.LookupEdgeType("missing"); ok {
		t.Fatal("LookupEdgeType should miss")
	}
	// Registering the same name twice returns the same id.
	if r.NodeType("a") != a || r.EdgeType("x") != e {
		t.Fatal("re-registration changed ids")
	}
}

func TestLabelOutOfRange(t *testing.T) {
	g := NewGraph()
	if g.Label(5) != "" {
		t.Fatal("out-of-range label should be empty")
	}
}

func TestMustValidPanics(t *testing.T) {
	g, _ := buildTriangle(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range node")
		}
	}()
	g.OutDegree(99)
}
