package hin

import "testing"

// versionFixture builds a small graph with two users and two items.
func versionFixture(t *testing.T) (*Graph, EdgeTypeID) {
	t.Helper()
	g := NewGraph()
	user := g.Types().NodeType("user")
	item := g.Types().NodeType("item")
	rated := g.Types().EdgeType("rated")
	for i := 0; i < 2; i++ {
		g.AddNode(user, "")
	}
	for i := 0; i < 3; i++ {
		g.AddNode(item, "")
	}
	mustAdd := func(a, b NodeID) {
		t.Helper()
		if err := g.AddBidirectional(a, b, rated, 1); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 2)
	mustAdd(0, 3)
	mustAdd(1, 3)
	return g, rated
}

func version(t *testing.T, v View) Version {
	t.Helper()
	ver, ok := ViewVersion(v)
	if !ok {
		t.Fatalf("view %T is not versioned", v)
	}
	return ver
}

func TestGraphVersionChangesOnMutation(t *testing.T) {
	g, rated := versionFixture(t)
	v0 := version(t, g)
	if v0.Stamp == 0 {
		t.Fatal("constructed graph has zero version stamp")
	}
	if v1 := version(t, g); v1 != v0 {
		t.Fatalf("version changed without mutation: %v -> %v", v0, v1)
	}

	if err := g.AddEdge(1, 2, rated, 1); err != nil {
		t.Fatal(err)
	}
	v1 := version(t, g)
	if v1 == v0 {
		t.Fatal("AddEdge did not change the version")
	}
	if err := g.RemoveEdge(1, 2, rated); err != nil {
		t.Fatal(err)
	}
	v2 := version(t, g)
	if v2 == v1 || v2 == v0 {
		// Removing the edge restores the original content, but the
		// stamp is deliberately conservative: it never goes back.
		t.Fatalf("RemoveEdge produced a reused version: %v (prev %v, %v)", v2, v1, v0)
	}
	g.AddNode(g.Types().NodeType("user"), "")
	if v3 := version(t, g); v3 == v2 {
		t.Fatal("AddNode did not change the version")
	}
}

func TestGraphCloneHasDistinctVersion(t *testing.T) {
	g, _ := versionFixture(t)
	c := g.Clone()
	if version(t, c) == version(t, g) {
		t.Fatal("clone shares the original's version")
	}
}

func TestOverlayVersionStableAcrossRebuilds(t *testing.T) {
	g, rated := versionFixture(t)
	removals := []Edge{{From: 0, To: 2, Type: rated, Weight: 1}, {From: 0, To: 3, Type: rated, Weight: 1}}
	additions := []Edge{{From: 0, To: 4, Type: rated, Weight: 2}}

	o1, err := NewOverlay(g, removals, additions)
	if err != nil {
		t.Fatal(err)
	}
	// Same edits, listed in the opposite order.
	o2, err := NewOverlay(g, []Edge{removals[1], removals[0]}, additions)
	if err != nil {
		t.Fatal(err)
	}
	if version(t, o1) != version(t, o2) {
		t.Fatalf("identical overlays disagree: %v vs %v", version(t, o1), version(t, o2))
	}
	if version(t, o1) == version(t, g) {
		t.Fatal("overlay shares the base graph's version")
	}
}

func TestOverlayVersionDistinguishesEditSets(t *testing.T) {
	g, rated := versionFixture(t)
	r1 := []Edge{{From: 0, To: 2, Type: rated}}
	r2 := []Edge{{From: 0, To: 3, Type: rated}}
	a1 := []Edge{{From: 0, To: 4, Type: rated, Weight: 1}}

	o1, err := NewOverlay(g, r1, nil)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := NewOverlay(g, r2, nil)
	if err != nil {
		t.Fatal(err)
	}
	o3, err := NewOverlay(g, r1, a1)
	if err != nil {
		t.Fatal(err)
	}
	// Removing (0,4) vs adding (0,4): kind must matter. (0,4) does not
	// exist, so probe with an addition at a different weight instead.
	o4, err := NewOverlay(g, r1, []Edge{{From: 0, To: 4, Type: rated, Weight: 3}})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Version]string{version(t, g): "base"}
	for name, o := range map[string]*Overlay{"r1": o1, "r2": o2, "r1+a1": o3, "r1+a1w3": o4} {
		v := version(t, o)
		if prev, dup := seen[v]; dup {
			t.Fatalf("overlay %q collides with %q on version %v", name, prev, v)
		}
		seen[v] = name
	}
}

func TestOverlayVersionTracksBaseMutation(t *testing.T) {
	g, rated := versionFixture(t)
	edits := []Edge{{From: 0, To: 2, Type: rated}}
	o, err := NewOverlay(g, edits, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := version(t, o)
	if err := g.AddEdge(1, 4, rated, 1); err != nil {
		t.Fatal(err)
	}
	if after := version(t, o); after == before {
		t.Fatal("overlay version did not move with a base-graph mutation")
	}
}

func TestCSRCapturesVersionAtSnapshot(t *testing.T) {
	g, rated := versionFixture(t)
	want := version(t, g)
	c := NewCSR(g)
	if got := version(t, c); got != want {
		t.Fatalf("CSR version %v != source version %v", got, want)
	}
	// Mutating the graph moves the graph's version but not the frozen
	// snapshot's.
	if err := g.AddEdge(1, 2, rated, 1); err != nil {
		t.Fatal(err)
	}
	if got := version(t, c); got != want {
		t.Fatal("CSR version moved after a source mutation")
	}
	if version(t, g) == want {
		t.Fatal("graph version did not move")
	}
}

func TestVersionMixDistinguishesSalts(t *testing.T) {
	base := Version{Stamp: 7, Digest: 42}
	a, b := base.Mix(1), base.Mix(2)
	if a == b {
		t.Fatal("different salts mixed to the same version")
	}
	if a != base.Mix(1) {
		t.Fatal("Mix is not deterministic")
	}
	if a.Stamp != base.Stamp {
		t.Fatal("Mix must preserve the stamp")
	}
}

func TestUnversionedViewAnswersFalse(t *testing.T) {
	g, _ := versionFixture(t)
	// An anonymous wrapper hides the Versioned implementation.
	wrapped := struct{ View }{g}
	if _, ok := ViewVersion(wrapped); ok {
		t.Fatal("expected no version through an opaque wrapper")
	}
	o, err := NewOverlay(wrapped, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := o.Version(); ok {
		t.Fatal("overlay over an unversioned base must not report a version")
	}
}
