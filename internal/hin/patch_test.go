package hin

import (
	"math/rand"
	"testing"
)

// TestPatchedCSRMatchesOverlay verifies that patching a single node's
// out-row into a CSR is observationally identical to the overlay it
// models, across every View method.
func TestPatchedCSRMatchesOverlay(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(rng, 4+rng.Intn(12), 10+rng.Intn(40))
		u := NodeID(rng.Intn(g.NumNodes()))
		et, _ := g.Types().LookupEdgeType("e")

		// Random u-row edits: drop some out-edges, add some new ones.
		var removals, additions []Edge
		for _, e := range g.OutEdgesOfType(u, NewEdgeTypeSet()) {
			if rng.Float64() < 0.5 {
				removals = append(removals, e)
			}
		}
		for i := 0; i < 3; i++ {
			v := NodeID(rng.Intn(g.NumNodes()))
			if v == u {
				continue
			}
			if _, exists := g.EdgeWeight(u, v, et); exists {
				continue
			}
			dup := false
			for _, e := range additions {
				if e.To == v {
					dup = true
				}
			}
			if !dup {
				additions = append(additions, Edge{From: u, To: v, Type: et, Weight: rng.Float64() + 0.1})
			}
		}
		o, err := NewOverlay(g, removals, additions)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Build the patch from the overlay's u-row.
		var row []HalfEdge
		o.OutEdges(u, func(h HalfEdge) bool { row = append(row, h); return true })
		p := NewPatchedCSR(NewCSR(g), u, row, o.OutWeightSum(u))

		viewsAgree(t, o, p)
	}
}

func TestPatchedCSRDanglingPatch(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	g := randomGraph(rng, 8, 20)
	u := NodeID(0)
	p := NewPatchedCSR(NewCSR(g), u, nil, 0)
	if p.OutDegree(u) != 0 || p.OutWeightSum(u) != 0 {
		t.Fatal("empty patch should make the node dangling")
	}
	p.OutEdges(u, func(HalfEdge) bool {
		t.Fatal("dangling patched node yielded an edge")
		return false
	})
	// Other nodes unaffected.
	for v := 1; v < g.NumNodes(); v++ {
		if p.OutDegree(NodeID(v)) != g.OutDegree(NodeID(v)) {
			t.Fatalf("node %d degree changed by unrelated patch", v)
		}
	}
	// In-edges from u must vanish everywhere.
	for v := 0; v < g.NumNodes(); v++ {
		p.InEdges(NodeID(v), func(h HalfEdge) bool {
			if h.Node == u {
				t.Fatalf("node %d still has an in-edge from the patched-dangling node", v)
			}
			return true
		})
	}
}

func TestPatchedCSREarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	g := randomGraph(rng, 8, 30)
	u := NodeID(0)
	et, _ := g.Types().LookupEdgeType("e")
	row := []HalfEdge{{Node: 1, Type: et, Weight: 1}, {Node: 2, Type: et, Weight: 1}}
	p := NewPatchedCSR(NewCSR(g), u, row, 2)
	n := 0
	p.OutEdges(u, func(HalfEdge) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d edges", n)
	}
	n = 0
	p.InEdges(1, func(HalfEdge) bool { n++; return false })
	if n != 1 {
		t.Fatalf("in-edge early stop visited %d edges", n)
	}
}
