package hin

import (
	"fmt"

	"github.com/why-not-xai/emigre/internal/fault"
)

// overlaySite is the failpoint at the head of every counterfactual
// overlay build — the CHECK step's snapshot seam. Arming it makes every
// CHECK fail at construction time, before any PPR work runs.
var overlaySite = fault.Register("hin.overlay.snapshot")

type typedKey struct {
	from, to NodeID
	typ      EdgeTypeID
}

// Overlay is a read-only counterfactual view over a base View with a set
// of edge removals and additions applied. Building an Overlay is
// O(|edits|) and evaluating PPR over it costs the same as over the base
// graph, so EMiGRe's CHECK step can test thousands of candidate
// explanations without copying the graph.
//
// An Overlay may wrap another Overlay, composing edits.
//
// An Overlay is immutable after NewOverlay returns and therefore safe
// to read from any number of goroutines — the parallel CHECK pipeline
// builds one overlay per speculative worker over the same base view.
type Overlay struct {
	base View

	removed map[typedKey]float64 // removed typed edges -> their base weight
	added   map[NodeID][]HalfEdge
	addedIn map[NodeID][]HalfEdge

	// outWeight holds corrected out-weight sums for nodes whose
	// out-edge set changed.
	outWeight map[NodeID]float64

	// pairDelta tracks HasEdge corrections: +1 per added typed edge,
	// -1 per removed typed edge for the (from,to) pair.
	pairDelta map[pairKey]int

	// digest is the order-insensitive digest of the edit set, combined
	// with the base version by Version. Two overlays built over the same
	// base from the same edits — in any order — share it.
	digest uint64
}

// NewOverlay builds a counterfactual view of base with the given edge
// removals and additions. Every removal must identify an existing typed
// edge of the base view, every addition must not collide with an
// existing typed edge (or another addition), and additions must carry a
// positive finite weight. Self-loop additions are rejected.
func NewOverlay(base View, removals, additions []Edge) (*Overlay, error) {
	if err := overlaySite.Hit(nil); err != nil {
		return nil, fmt.Errorf("hin: building overlay: %w", err)
	}
	o := &Overlay{
		base:      base,
		removed:   make(map[typedKey]float64, len(removals)),
		added:     make(map[NodeID][]HalfEdge, len(additions)),
		addedIn:   make(map[NodeID][]HalfEdge, len(additions)),
		outWeight: make(map[NodeID]float64),
		pairDelta: make(map[pairKey]int),
	}
	for _, e := range removals {
		w, ok := baseEdgeWeight(base, e.From, e.To, e.Type)
		if !ok {
			return nil, fmt.Errorf("%w: remove (%d,%d,type %d)", ErrNoSuchEdge, e.From, e.To, e.Type)
		}
		k := typedKey{e.From, e.To, e.Type}
		if _, dup := o.removed[k]; dup {
			return nil, fmt.Errorf("hin: edge (%d,%d,type %d) removed twice", e.From, e.To, e.Type)
		}
		o.removed[k] = w
		o.pairDelta[pairKey{e.From, e.To}]--
		o.touch(e.From)
		o.outWeight[e.From] -= w
		o.digest += editDigest(editTagRemove, e.From, e.To, e.Type, 0)
	}
	for _, e := range additions {
		if e.From == e.To {
			return nil, fmt.Errorf("%w: node %d", ErrSelfLoop, e.From)
		}
		if e.Weight <= 0 {
			return nil, fmt.Errorf("%w: got %g", ErrBadWeight, e.Weight)
		}
		if e.From < 0 || int(e.From) >= base.NumNodes() || e.To < 0 || int(e.To) >= base.NumNodes() {
			return nil, fmt.Errorf("%w: (%d,%d)", ErrNodeOutOfRange, e.From, e.To)
		}
		k := typedKey{e.From, e.To, e.Type}
		if _, wasRemoved := o.removed[k]; !wasRemoved {
			if _, exists := baseEdgeWeight(base, e.From, e.To, e.Type); exists {
				return nil, fmt.Errorf("%w: add (%d,%d,type %d)", ErrDuplicateEdge, e.From, e.To, e.Type)
			}
		}
		// Removing a typed edge and re-adding it with a different weight
		// is allowed: that is how counterfactual *re-weightings* ("had
		// you rated this 5 stars") are expressed.
		for _, h := range o.added[e.From] {
			if h.Node == e.To && h.Type == e.Type {
				return nil, fmt.Errorf("%w: add (%d,%d,type %d) twice", ErrDuplicateEdge, e.From, e.To, e.Type)
			}
		}
		o.added[e.From] = append(o.added[e.From], HalfEdge{Node: e.To, Type: e.Type, Weight: e.Weight})
		o.addedIn[e.To] = append(o.addedIn[e.To], HalfEdge{Node: e.From, Type: e.Type, Weight: e.Weight})
		o.pairDelta[pairKey{e.From, e.To}]++
		o.touch(e.From)
		o.outWeight[e.From] += e.Weight
		o.digest += editDigest(editTagAdd, e.From, e.To, e.Type, e.Weight)
	}
	return o, nil
}

// Version implements Versioned: the base view's version with the edit
// set's order-insensitive digest mixed in. Identical overlays rebuilt
// from the same edits over the same base state share a version (so
// repeated counterfactual probes can hit a cache), while a different
// edit set — or a mutation of the base graph — moves it. No version is
// available when the base view itself is unversioned.
func (o *Overlay) Version() (Version, bool) {
	base, ok := ViewVersion(o.base)
	if !ok {
		return Version{}, false
	}
	return base.Mix(o.digest), true
}

func baseEdgeWeight(base View, from, to NodeID, typ EdgeTypeID) (float64, bool) {
	if from < 0 || int(from) >= base.NumNodes() {
		return 0, false
	}
	var w float64
	found := false
	base.OutEdges(from, func(h HalfEdge) bool {
		if h.Node == to && h.Type == typ {
			w, found = h.Weight, true
			return false
		}
		return true
	})
	return w, found
}

// touch ensures o.outWeight has an entry for v seeded with the base sum.
func (o *Overlay) touch(v NodeID) {
	if _, ok := o.outWeight[v]; !ok {
		o.outWeight[v] = o.base.OutWeightSum(v)
	}
}

// Base returns the wrapped view.
func (o *Overlay) Base() View { return o.base }

// NumNodes returns the base view's node count (overlays cannot add nodes).
func (o *Overlay) NumNodes() int { return o.base.NumNodes() }

// NodeType returns the type of node v.
func (o *Overlay) NodeType(v NodeID) NodeTypeID { return o.base.NodeType(v) }

// Types returns the shared type registry.
func (o *Overlay) Types() *TypeRegistry { return o.base.Types() }

// OutEdges iterates v's outgoing edges with the overlay's edits applied.
func (o *Overlay) OutEdges(v NodeID, yield func(HalfEdge) bool) {
	stopped := false
	o.base.OutEdges(v, func(h HalfEdge) bool {
		if _, gone := o.removed[typedKey{v, h.Node, h.Type}]; gone {
			return true
		}
		if !yield(h) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, h := range o.added[v] {
		if !yield(h) {
			return
		}
	}
}

// InEdges iterates v's incoming edges with the overlay's edits applied.
func (o *Overlay) InEdges(v NodeID, yield func(HalfEdge) bool) {
	stopped := false
	o.base.InEdges(v, func(h HalfEdge) bool {
		if _, gone := o.removed[typedKey{h.Node, v, h.Type}]; gone {
			return true
		}
		if !yield(h) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, h := range o.addedIn[v] {
		if !yield(h) {
			return
		}
	}
}

// OutDegree returns the out-degree of v under the overlay.
func (o *Overlay) OutDegree(v NodeID) int {
	n := 0
	o.OutEdges(v, func(HalfEdge) bool { n++; return true })
	return n
}

// OutWeightSum returns the total outgoing weight of v under the overlay.
func (o *Overlay) OutWeightSum(v NodeID) float64 {
	if w, ok := o.outWeight[v]; ok {
		if w < 0 {
			return 0
		}
		return w
	}
	return o.base.OutWeightSum(v)
}

// HasEdge reports whether a directed edge (from, to) of any type exists
// under the overlay.
func (o *Overlay) HasEdge(from, to NodeID) bool {
	delta, touched := o.pairDelta[pairKey{from, to}]
	if !touched {
		return o.base.HasEdge(from, to)
	}
	// Count base typed edges for the pair, then apply the delta.
	n := 0
	o.base.OutEdges(from, func(h HalfEdge) bool {
		if h.Node == to {
			n++
		}
		return true
	})
	return n+delta > 0
}

// Materialize copies the overlay into a fresh standalone Graph. Labels
// are preserved when the ultimate base is a *Graph.
func (o *Overlay) Materialize() (*Graph, error) {
	g := &Graph{
		types:   o.Types(),
		byName:  make(map[string]NodeID),
		edgeSet: make(map[pairKey]int),
		version: nextVersionStamp(),
	}
	var root *Graph
	base := o.base
	for {
		switch b := base.(type) {
		case *Graph:
			root = b
		case *Overlay:
			base = b.base
			continue
		}
		break
	}
	for v := 0; v < o.NumNodes(); v++ {
		label := ""
		if root != nil {
			label = root.Label(NodeID(v))
		}
		g.AddNode(o.NodeType(NodeID(v)), label)
	}
	var err error
	for v := 0; v < o.NumNodes(); v++ {
		o.OutEdges(NodeID(v), func(h HalfEdge) bool {
			if e := g.AddEdge(NodeID(v), h.Node, h.Type, h.Weight); e != nil {
				err = e
				return false
			}
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}
