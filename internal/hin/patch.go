package hin

// PatchedCSR is a View over a base CSR with a single node's outgoing
// row replaced. EMiGRe's counterfactuals only ever edit the target
// user's out-edges, so the CHECK step can score an overlay without
// re-flattening the whole graph: build the user's new row (O(deg u))
// and share everything else.
//
// All View methods are exact: InEdges and HasEdge account for the
// patch by filtering base entries originating at the patched node and
// substituting the patched row.
type PatchedCSR struct {
	base *CSR
	node NodeID
	out  []HalfEdge
	sum  float64
}

// NewPatchedCSR returns a view of base with node's outgoing row
// replaced by out (weight sum outSum). The slice is retained; callers
// must not mutate it afterwards.
func NewPatchedCSR(base *CSR, node NodeID, out []HalfEdge, outSum float64) *PatchedCSR {
	return &PatchedCSR{base: base, node: node, out: out, sum: outSum}
}

// NumNodes implements View.
func (p *PatchedCSR) NumNodes() int { return p.base.NumNodes() }

// NodeType implements View.
func (p *PatchedCSR) NodeType(v NodeID) NodeTypeID { return p.base.NodeType(v) }

// Types implements View.
func (p *PatchedCSR) Types() *TypeRegistry { return p.base.Types() }

// OutSlice returns v's outgoing adjacency (the patched row for the
// patched node). Callers must not mutate the result.
func (p *PatchedCSR) OutSlice(v NodeID) []HalfEdge {
	if v == p.node {
		return p.out
	}
	return p.base.OutSlice(v)
}

// OutEdges implements View.
func (p *PatchedCSR) OutEdges(v NodeID, yield func(HalfEdge) bool) {
	for _, h := range p.OutSlice(v) {
		if !yield(h) {
			return
		}
	}
}

// InEdges implements View: base in-edges originating at the patched
// node are suppressed and replaced by the patched row's entries.
func (p *PatchedCSR) InEdges(v NodeID, yield func(HalfEdge) bool) {
	stopped := false
	p.base.InEdges(v, func(h HalfEdge) bool {
		if h.Node == p.node {
			return true
		}
		if !yield(h) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, h := range p.out {
		if h.Node == v {
			if !yield(HalfEdge{Node: p.node, Type: h.Type, Weight: h.Weight}) {
				return
			}
		}
	}
}

// OutDegree implements View.
func (p *PatchedCSR) OutDegree(v NodeID) int { return len(p.OutSlice(v)) }

// OutWeightSum implements View.
func (p *PatchedCSR) OutWeightSum(v NodeID) float64 {
	if v == p.node {
		return p.sum
	}
	return p.base.OutWeightSum(v)
}

// HasEdge implements View.
func (p *PatchedCSR) HasEdge(from, to NodeID) bool {
	for _, h := range p.OutSlice(from) {
		if h.Node == to {
			return true
		}
	}
	return false
}
