package hin

import (
	"math"
	"math/rand"
	"testing"
)

func viewsAgree(t *testing.T, a, b View) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("node counts differ: %d vs %d", a.NumNodes(), b.NumNodes())
	}
	for v := 0; v < a.NumNodes(); v++ {
		id := NodeID(v)
		if a.NodeType(id) != b.NodeType(id) {
			t.Fatalf("node %d type differs", v)
		}
		if a.OutDegree(id) != b.OutDegree(id) {
			t.Fatalf("node %d out-degree differs: %d vs %d", v, a.OutDegree(id), b.OutDegree(id))
		}
		if math.Abs(a.OutWeightSum(id)-b.OutWeightSum(id)) > 1e-12 {
			t.Fatalf("node %d weight sum differs", v)
		}
		var ae, be []HalfEdge
		a.OutEdges(id, func(h HalfEdge) bool { ae = append(ae, h); return true })
		b.OutEdges(id, func(h HalfEdge) bool { be = append(be, h); return true })
		if len(ae) != len(be) {
			t.Fatalf("node %d out lists differ in length", v)
		}
		for i := range ae {
			if ae[i] != be[i] {
				t.Fatalf("node %d out edge %d differs: %+v vs %+v", v, i, ae[i], be[i])
			}
		}
		ae, be = nil, nil
		a.InEdges(id, func(h HalfEdge) bool { ae = append(ae, h); return true })
		b.InEdges(id, func(h HalfEdge) bool { be = append(be, h); return true })
		if len(ae) != len(be) {
			t.Fatalf("node %d in lists differ in length: %d vs %d", v, len(ae), len(be))
		}
		for w := 0; w < a.NumNodes(); w++ {
			if a.HasEdge(id, NodeID(w)) != b.HasEdge(id, NodeID(w)) {
				t.Fatalf("HasEdge(%d,%d) disagrees", v, w)
			}
		}
	}
}

func TestCSRMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 3+rng.Intn(20), rng.Intn(80))
		viewsAgree(t, g, NewCSR(g))
	}
}

func TestCSRMatchesOverlay(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := randomGraph(rng, 12, 50)
	et, _ := g.Types().LookupEdgeType("e")
	var removals []Edge
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.OutEdgesOfType(NodeID(v), NewEdgeTypeSet()) {
			if rng.Float64() < 0.25 {
				removals = append(removals, e)
			}
		}
	}
	additions := []Edge{}
	for i := 0; i < 4; i++ {
		a, b := NodeID(rng.Intn(12)), NodeID(rng.Intn(12))
		if a == b {
			continue
		}
		if _, ok := g.EdgeWeight(a, b, et); ok {
			continue
		}
		dup := false
		for _, e := range additions {
			if e.From == a && e.To == b {
				dup = true
			}
		}
		if !dup {
			additions = append(additions, Edge{From: a, To: b, Type: et, Weight: 0.5})
		}
	}
	o, err := NewOverlay(g, removals, additions)
	if err != nil {
		t.Fatal(err)
	}
	viewsAgree(t, o, NewCSR(o))
}

func TestCSRIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := randomGraph(rng, 6, 12)
	c := NewCSR(g)
	if NewCSR(c) != c {
		t.Fatal("NewCSR of a CSR should return it unchanged")
	}
}

func TestCSRSlicesMatchIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	g := randomGraph(rng, 10, 40)
	c := NewCSR(g)
	for v := 0; v < c.NumNodes(); v++ {
		id := NodeID(v)
		if len(c.OutSlice(id)) != c.OutDegree(id) {
			t.Fatalf("OutSlice(%d) length mismatch", v)
		}
		i := 0
		c.OutEdges(id, func(h HalfEdge) bool {
			if c.OutSlice(id)[i] != h {
				t.Fatalf("OutSlice(%d)[%d] mismatch", v, i)
			}
			i++
			return true
		})
		i = 0
		c.InEdges(id, func(h HalfEdge) bool {
			if c.InSlice(id)[i] != h {
				t.Fatalf("InSlice(%d)[%d] mismatch", v, i)
			}
			i++
			return true
		})
	}
}

func TestCSREarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	g := randomGraph(rng, 8, 40)
	c := NewCSR(g)
	for v := 0; v < c.NumNodes(); v++ {
		if c.OutDegree(NodeID(v)) < 2 {
			continue
		}
		n := 0
		c.OutEdges(NodeID(v), func(HalfEdge) bool { n++; return false })
		if n != 1 {
			t.Fatalf("early stop failed: saw %d edges", n)
		}
		return
	}
}
