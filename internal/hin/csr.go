package hin

// CSR is an immutable, flat (compressed sparse row) snapshot of a View.
// PPR push loops over a CSR run several times faster than over a Graph
// or Overlay because adjacency is contiguous and the per-node weight
// sums are precomputed — the recommender flattens each (overlay) view
// once before scoring it.
type CSR struct {
	reg   *TypeRegistry
	ntype []NodeTypeID

	outStart []int32
	outHalf  []HalfEdge
	inStart  []int32
	inHalf   []HalfEdge
	outSum   []float64

	// version is the source view's version captured at flatten time: a
	// CSR is a frozen snapshot, so it keeps identifying that state even
	// if the source graph mutates afterwards.
	version   Version
	versioned bool
}

// NewCSR flattens v. If v is already a *CSR it is returned as-is.
func NewCSR(v View) *CSR {
	if c, ok := v.(*CSR); ok {
		return c
	}
	n := v.NumNodes()
	c := &CSR{
		reg:      v.Types(),
		ntype:    make([]NodeTypeID, n),
		outStart: make([]int32, n+1),
		inStart:  make([]int32, n+1),
		outSum:   make([]float64, n),
	}
	c.version, c.versioned = ViewVersion(v)
	outDeg := make([]int32, n)
	inDeg := make([]int32, n)
	edges := 0
	for i := 0; i < n; i++ {
		c.ntype[i] = v.NodeType(NodeID(i))
		c.outSum[i] = v.OutWeightSum(NodeID(i))
		v.OutEdges(NodeID(i), func(h HalfEdge) bool {
			outDeg[i]++
			inDeg[h.Node]++
			edges++
			return true
		})
	}
	c.outHalf = make([]HalfEdge, edges)
	c.inHalf = make([]HalfEdge, edges)
	for i := 0; i < n; i++ {
		c.outStart[i+1] = c.outStart[i] + outDeg[i]
		c.inStart[i+1] = c.inStart[i] + inDeg[i]
	}
	outPos := make([]int32, n)
	inPos := make([]int32, n)
	copy(outPos, c.outStart[:n])
	copy(inPos, c.inStart[:n])
	for i := 0; i < n; i++ {
		v.OutEdges(NodeID(i), func(h HalfEdge) bool {
			c.outHalf[outPos[i]] = h
			outPos[i]++
			c.inHalf[inPos[h.Node]] = HalfEdge{Node: NodeID(i), Type: h.Type, Weight: h.Weight}
			inPos[h.Node]++
			return true
		})
	}
	return c
}

// Version implements Versioned: the version of the view the snapshot
// was flattened from.
func (c *CSR) Version() (Version, bool) { return c.version, c.versioned }

// NumNodes implements View.
func (c *CSR) NumNodes() int { return len(c.ntype) }

// NodeType implements View.
func (c *CSR) NodeType(v NodeID) NodeTypeID { return c.ntype[v] }

// Types implements View.
func (c *CSR) Types() *TypeRegistry { return c.reg }

// OutEdges implements View.
func (c *CSR) OutEdges(v NodeID, yield func(HalfEdge) bool) {
	for _, h := range c.outHalf[c.outStart[v]:c.outStart[v+1]] {
		if !yield(h) {
			return
		}
	}
}

// InEdges implements View.
func (c *CSR) InEdges(v NodeID, yield func(HalfEdge) bool) {
	for _, h := range c.inHalf[c.inStart[v]:c.inStart[v+1]] {
		if !yield(h) {
			return
		}
	}
}

// OutDegree implements View.
func (c *CSR) OutDegree(v NodeID) int { return int(c.outStart[v+1] - c.outStart[v]) }

// OutWeightSum implements View.
func (c *CSR) OutWeightSum(v NodeID) float64 { return c.outSum[v] }

// OutSlice returns v's outgoing adjacency as a shared slice. Callers
// must not mutate it; it exists so hot loops (PPR pushes) can avoid the
// callback overhead of OutEdges.
func (c *CSR) OutSlice(v NodeID) []HalfEdge {
	return c.outHalf[c.outStart[v]:c.outStart[v+1]]
}

// InSlice returns v's incoming adjacency as a shared slice (see
// OutSlice).
func (c *CSR) InSlice(v NodeID) []HalfEdge {
	return c.inHalf[c.inStart[v]:c.inStart[v+1]]
}

// HasEdge implements View by scanning v's out list (CSR is built for
// push loops; candidate filtering keeps using the underlying graph's
// indexed lookup).
func (c *CSR) HasEdge(from, to NodeID) bool {
	for _, h := range c.outHalf[c.outStart[from]:c.outStart[from+1]] {
		if h.Node == to {
			return true
		}
	}
	return false
}
