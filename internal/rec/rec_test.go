package rec

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/why-not-xai/emigre/internal/fmath"
	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/ppr"
	"github.com/why-not-xai/emigre/internal/pprcache"
)

// smallShop builds a bidirectional user-item-category graph:
//
//	u1 - i1, u1 - i2, u2 - i2, u2 - i3
//	i1,i2 - cA ; i3 - cB
//
// For u1 the only unseen items are i3 (reachable via u2) — so the
// recommendation is deterministic.
func smallShop(t *testing.T) (*hin.Graph, Config, map[string]hin.NodeID) {
	t.Helper()
	g := hin.NewGraph()
	user := g.Types().NodeType("user")
	item := g.Types().NodeType("item")
	cat := g.Types().NodeType("category")
	rated := g.Types().EdgeType("rated")
	belongs := g.Types().EdgeType("belongs-to")

	ids := map[string]hin.NodeID{
		"u1": g.AddNode(user, "u1"),
		"u2": g.AddNode(user, "u2"),
		"i1": g.AddNode(item, "i1"),
		"i2": g.AddNode(item, "i2"),
		"i3": g.AddNode(item, "i3"),
		"i4": g.AddNode(item, "i4"),
		"cA": g.AddNode(cat, "cA"),
		"cB": g.AddNode(cat, "cB"),
	}
	pairs := []struct {
		a, b string
		typ  hin.EdgeTypeID
	}{
		{"u1", "i1", rated}, {"u1", "i2", rated},
		{"u2", "i2", rated}, {"u2", "i3", rated},
		{"i1", "cA", belongs}, {"i2", "cA", belongs},
		{"i3", "cB", belongs}, {"i4", "cB", belongs},
	}
	for _, p := range pairs {
		if err := g.AddBidirectional(ids[p.a], ids[p.b], p.typ, 1); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultConfig(item)
	cfg.Beta = 1
	cfg.PPR.Epsilon = 1e-9
	return g, cfg, ids
}

func TestConfigValidation(t *testing.T) {
	g, cfg, _ := smallShop(t)
	bad := cfg
	bad.Beta = 1.5
	if _, err := New(g, bad); err == nil {
		t.Fatal("expected error for beta > 1")
	}
	bad = cfg
	bad.ItemTypes = nil
	if _, err := New(g, bad); err == nil {
		t.Fatal("expected error for empty item types")
	}
	bad = cfg
	bad.PPR.Alpha = 2
	if _, err := New(g, bad); err == nil {
		t.Fatal("expected error for bad alpha")
	}
}

func TestRecommendExcludesNeighbors(t *testing.T) {
	g, cfg, ids := smallShop(t)
	r, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Recommend(ids["u1"])
	if err != nil {
		t.Fatal(err)
	}
	if rec == ids["i1"] || rec == ids["i2"] {
		t.Fatalf("recommended an already-rated item %d", rec)
	}
	// i3 is two hops away through u2; i4 only via category cB. i3 must
	// score higher.
	if rec != ids["i3"] {
		t.Fatalf("rec = %v, want i3 (%v)", rec, ids["i3"])
	}
}

func TestTopNOrderingAndExclusion(t *testing.T) {
	g, cfg, ids := smallShop(t)
	r, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	top, err := r.TopN(ids["u1"], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 { // only i3 and i4 are candidates
		t.Fatalf("TopN returned %d items, want 2", len(top))
	}
	if top[0].Node != ids["i3"] || top[1].Node != ids["i4"] {
		t.Fatalf("TopN order = %v", top)
	}
	if top[0].Score < top[1].Score {
		t.Fatal("TopN not in descending score order")
	}
	for _, s := range top {
		if !r.IsCandidate(ids["u1"], s.Node) {
			t.Fatalf("non-candidate %d in TopN", s.Node)
		}
	}
}

func TestRankOf(t *testing.T) {
	g, cfg, ids := smallShop(t)
	r, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rank, err := r.RankOf(ids["u1"], ids["i3"])
	if err != nil {
		t.Fatal(err)
	}
	if rank != 1 {
		t.Fatalf("RankOf(i3) = %d, want 1", rank)
	}
	rank, err = r.RankOf(ids["u1"], ids["i4"])
	if err != nil {
		t.Fatal(err)
	}
	if rank != 2 {
		t.Fatalf("RankOf(i4) = %d, want 2", rank)
	}
	if _, err := r.RankOf(ids["u1"], ids["i1"]); !errors.Is(err, ErrNotCandidate) {
		t.Fatalf("RankOf(rated item) err = %v, want ErrNotCandidate", err)
	}
	if _, err := r.RankOf(ids["u1"], ids["cA"]); !errors.Is(err, ErrNotCandidate) {
		t.Fatalf("RankOf(category) err = %v, want ErrNotCandidate", err)
	}
}

func TestNoCandidates(t *testing.T) {
	g := hin.NewGraph()
	user := g.Types().NodeType("user")
	item := g.Types().NodeType("item")
	rated := g.Types().EdgeType("rated")
	u := g.AddNode(user, "u")
	i := g.AddNode(item, "i")
	if err := g.AddBidirectional(u, i, rated, 1); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(item)
	r, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Recommend(u); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
}

func TestWithViewOverlayChangesRecommendation(t *testing.T) {
	g, cfg, ids := smallShop(t)
	r, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rated, _ := g.Types().LookupEdgeType("rated")
	// Remove u1's link into the cluster that reaches i3 (the i2 edge,
	// both directions) — i4's relative standing must not degrade.
	o, err := hin.NewOverlay(g,
		[]hin.Edge{
			{From: ids["u1"], To: ids["i2"], Type: rated},
			{From: ids["i2"], To: ids["u1"], Type: rated},
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2 := r.WithView(o)
	top, err := r2.TopN(ids["u1"], 5)
	if err != nil {
		t.Fatal(err)
	}
	// i2 became a candidate again after removal.
	foundI2 := false
	for _, s := range top {
		if s.Node == ids["i2"] {
			foundI2 = true
		}
	}
	if !foundI2 {
		t.Fatal("removed item i2 should re-enter the candidate set")
	}
	// Original recommender is untouched.
	recBefore, err := r.Recommend(ids["u1"])
	if err != nil {
		t.Fatal(err)
	}
	if recBefore != ids["i3"] {
		t.Fatalf("base recommender changed: %v", recBefore)
	}
}

func TestBetaViewRowStochastic(t *testing.T) {
	g, _, ids := smallShop(t)
	for _, beta := range []float64{0, 0.25, 0.5, 0.75} {
		v := WrapBeta(g, beta)
		for _, node := range ids {
			if v.OutDegree(node) == 0 {
				continue
			}
			var sum float64
			v.OutEdges(node, func(h hin.HalfEdge) bool { sum += h.Weight; return true })
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("beta=%g node %d: weights sum to %g, want 1", beta, node, sum)
			}
			if math.Abs(v.OutWeightSum(node)-1) > 1e-12 {
				t.Fatalf("beta=%g node %d: OutWeightSum = %g, want 1", beta, node, v.OutWeightSum(node))
			}
		}
	}
}

func TestBetaViewUniformAtZero(t *testing.T) {
	// β = 0 ignores edge weights entirely.
	g := hin.NewGraph()
	nt := g.Types().NodeType("n")
	et := g.Types().EdgeType("e")
	a := g.AddNode(nt, "")
	b := g.AddNode(nt, "")
	c := g.AddNode(nt, "")
	if err := g.AddEdge(a, b, et, 100); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a, c, et, 1); err != nil {
		t.Fatal(err)
	}
	v := WrapBeta(g, 0)
	if got := hin.Transition(v, a, b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Transition(a,b) = %g, want 0.5", got)
	}
}

func TestBetaOneIsIdentity(t *testing.T) {
	g, _, _ := smallShop(t)
	if WrapBeta(g, 1) != hin.View(g) {
		t.Fatal("beta=1 should return the original view")
	}
}

func TestBetaViewInOutConsistency(t *testing.T) {
	// Reverse push divides incoming weight by the source's OutWeightSum;
	// the rewritten in-edge weights must equal the rewritten out-edge
	// weights so forward and reverse agree.
	rng := rand.New(rand.NewSource(17))
	g := hin.NewGraph()
	nt := g.Types().NodeType("n")
	et := g.Types().EdgeType("e")
	for i := 0; i < 12; i++ {
		g.AddNode(nt, "")
	}
	for i := 0; i < 40; i++ {
		a := hin.NodeID(rng.Intn(12))
		b := hin.NodeID(rng.Intn(12))
		if a != b {
			_ = g.AddBidirectional(a, b, et, rng.Float64()+0.1)
		}
	}
	v := WrapBeta(g, 0.5)
	params := ppr.DefaultParams()
	params.Epsilon = 1e-9
	fwd := ppr.NewForwardPush(params)
	rev := ppr.NewReversePush(params)
	src, tgt := hin.NodeID(0), hin.NodeID(7)
	rowVec, err := fwd.FromSource(v, src)
	if err != nil {
		t.Fatal(err)
	}
	colVec, err := rev.ToTarget(v, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(rowVec[tgt] - colVec[src]); diff > 1e-6 {
		t.Fatalf("forward/reverse disagree on beta view: %g vs %g", rowVec[tgt], colVec[src])
	}
}

func TestBetaAffectsScores(t *testing.T) {
	g, cfg, ids := smallShop(t)
	rated, _ := g.Types().LookupEdgeType("rated")
	// Unequal weights so beta matters.
	if err := g.RemoveEdge(ids["u1"], ids["i1"], rated); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(ids["u1"], ids["i1"], rated, 10); err != nil {
		t.Fatal(err)
	}
	cfgHalf := cfg
	cfgHalf.Beta = 0.5
	r1, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(g, cfgHalf)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := r1.Scores(ids["u1"])
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r2.Scores(ids["u1"])
	if err != nil {
		t.Fatal(err)
	}
	var maxDiff float64
	for i := range s1 {
		if d := math.Abs(s1[i] - s2[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff < 1e-6 {
		t.Fatal("beta mix had no effect on scores despite unequal weights")
	}
}

// TestWithCacheClonesRecommender pins the WithCache contract: the
// returned recommender carries the cache, the receiver is untouched,
// and both score over the same view. This is the seam the server uses
// to rebind a borrowed recommender to its private cache — before the
// constructor existed, call sites took shallow struct copies that would
// silently alias any state Recommender grows later.
func TestWithCacheClonesRecommender(t *testing.T) {
	g, cfg, ids := smallShop(t)
	r, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := pprcache.New(pprcache.Config{})

	cloned := r.WithCache(cache)
	if r.Cache() != nil {
		t.Fatal("WithCache mutated the receiver")
	}
	if cloned == r {
		t.Fatal("WithCache must return a distinct instance")
	}
	if cloned.Cache() != cache {
		t.Fatal("clone does not carry the cache")
	}

	// Both instances produce identical recommendations.
	want, err := r.TopN(ids["u1"], 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cloned.TopN(ids["u1"], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("clone TopN len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Node != want[i].Node || !fmath.Eq(got[i].Score, want[i].Score) {
			t.Fatalf("clone TopN[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// The clone's scoring populated the cache; the original stays
	// detached from it.
	if cache.Stats().Misses == 0 {
		t.Fatal("clone never touched the attached cache")
	}

	// Detaching via WithCache(nil) works and still leaves the receiver
	// (which has the cache here) alone.
	detached := cloned.WithCache(nil)
	if detached.Cache() != nil {
		t.Fatal("WithCache(nil) must detach")
	}
	if cloned.Cache() != cache {
		t.Fatal("WithCache(nil) mutated its receiver")
	}
}
