// Package rec implements the graph recommender of §3.2: items are
// ranked for a user u by their Personalized PageRank score PPR(u, i),
// and the recommendation is
//
//	rec = argmax_{i ∈ I \ Nout(u)} PPR(u, i)      (Eq. 2)
//
// — the best-scoring item the user has not already interacted with.
//
// The transition structure follows the RecWalk idea the paper builds on:
// the walk follows outgoing edges with a β-mix between weight-
// proportional and uniform transitions (β = 1 is the plain weighted
// walk; the paper's experimental setting uses β = 0.5). The mix is
// exposed as a View decorator so PPR engines, the EMiGRe explainer and
// the PRINCE baseline all see exactly the same transition matrix.
package rec

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/why-not-xai/emigre/internal/fmath"
	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/ppr"
	"github.com/why-not-xai/emigre/internal/pprcache"
)

// Config parameterizes a Recommender.
type Config struct {
	// PPR holds the Personalized PageRank hyper-parameters (α, ε, ...).
	PPR ppr.Params
	// Beta mixes weight-proportional (β) and uniform (1−β) transition
	// probabilities over a node's outgoing edges. The paper's setting
	// uses β = 0.5.
	Beta float64
	// ItemTypes lists the node types that are recommendable (the item
	// set I). At least one type is required.
	ItemTypes []hin.NodeTypeID
}

// DefaultConfig returns the paper's experimental setting: α = 0.15,
// ε = 2.7e-8, β = 0.5, with the given recommendable item types.
func DefaultConfig(itemTypes ...hin.NodeTypeID) Config {
	return Config{
		PPR:       ppr.DefaultParams(),
		Beta:      0.5,
		ItemTypes: itemTypes,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.PPR.Validate(); err != nil {
		return err
	}
	if c.Beta < 0 || c.Beta > 1 {
		return fmt.Errorf("rec: beta must be in [0,1], got %g", c.Beta)
	}
	if len(c.ItemTypes) == 0 {
		return errors.New("rec: at least one item node type is required")
	}
	return nil
}

// Errors returned by the recommender.
var (
	ErrNoCandidates = errors.New("rec: user has no recommendable candidate items")
	ErrNotCandidate = errors.New("rec: node is not a candidate item for this user")
)

// Scored pairs a node with its personalized score.
type Scored struct {
	Node  hin.NodeID
	Score float64
}

// Recommender ranks items for users over a fixed view. Use WithView to
// rebind the same configuration to a counterfactual overlay.
//
// Concurrency contract: every scoring method (Recommend, TopN, RankOf
// and their Context variants) only reads the recommender's state, so a
// Recommender is safe for concurrent use once its flat snapshot exists —
// call Flat() (or any scoring method) once before sharing it across
// goroutines; the lazy build itself is not synchronized. The mutating
// methods (SetCache) and the cheap rebinding constructors (WithView,
// WithUserPatch) must not race with anything; rebinding returns a new
// instance and never mutates the receiver, so the parallel CHECK
// pipeline can call WithUserPatch from many workers over one warm
// shared recommender.
type Recommender struct {
	cfg      Config
	base     hin.View
	view     hin.View        // base wrapped with the β-mix when Beta != 1
	flat     *hin.CSR        // lazy CSR snapshot of view for fast push loops
	scoring  *hin.PatchedCSR // set by WithUserPatch: single-row patch over a shared snapshot
	engine   *ppr.ForwardPush
	itemMask []bool          // node type id -> recommendable
	cache    *pprcache.Cache // optional shared vector cache (SetCache)
}

// New builds a recommender over g. It returns an error for an invalid
// configuration.
func New(g hin.View, cfg Config) (*Recommender, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mask := make([]bool, 256)
	for _, t := range cfg.ItemTypes {
		mask[t] = true
	}
	return &Recommender{
		cfg:      cfg,
		base:     g,
		view:     WrapBeta(g, cfg.Beta),
		engine:   ppr.NewForwardPush(cfg.PPR),
		itemMask: mask,
	}, nil
}

// WithView returns a recommender with the same configuration bound to a
// different view (typically a counterfactual hin.Overlay of the
// original graph).
func (r *Recommender) WithView(g hin.View) *Recommender {
	c := *r
	c.base = g
	c.view = WrapBeta(g, r.cfg.Beta)
	c.flat = nil
	c.scoring = nil
	return &c
}

// Flat returns a CSR snapshot of the scoring view, built on first use.
// PPR engines (including EMiGRe's reverse pushes) should run over it:
// it is equivalent to View() but several times faster to traverse.
//
// The first call builds the snapshot without synchronization; warm it
// single-threaded before sharing the recommender across goroutines.
// Once built, the snapshot is immutable and read-shared by every copy
// made with WithUserPatch.
func (r *Recommender) Flat() *hin.CSR {
	if r.flat == nil {
		r.flat = hin.NewCSR(r.view)
	}
	return r.flat
}

// WithUserPatch returns a recommender bound to view v, which must
// differ from this recommender's base view only in the outgoing edges
// of node u — the shape of every EMiGRe counterfactual. Unlike
// WithView, the returned recommender scores over a PatchedCSR that
// shares this recommender's flat snapshot, so binding costs O(deg u)
// instead of O(V+E). The receiver is never mutated and the shared
// snapshot is only read, so concurrent WithUserPatch calls over one
// warm recommender are safe (the clone-safety contract the parallel
// CHECK pipeline relies on).
func (r *Recommender) WithUserPatch(v hin.View, u hin.NodeID) *Recommender {
	c := *r
	c.base = v
	c.view = WrapBeta(v, r.cfg.Beta)
	c.flat = nil
	c.scoring = r.patchedRow(v, u)
	return &c
}

// ScoringView returns the view PPR runs over: the patched snapshot
// when one is bound (WithUserPatch), else the full flat snapshot.
func (r *Recommender) ScoringView() hin.View {
	if r.scoring != nil {
		return r.scoring
	}
	return r.Flat()
}

// patchedRow builds u's β-mixed outgoing row under v and patches it
// into the base flat snapshot.
func (r *Recommender) patchedRow(v hin.View, u hin.NodeID) *hin.PatchedCSR {
	total := v.OutWeightSum(u)
	deg := v.OutDegree(u)
	var row []hin.HalfEdge
	var sum float64
	if total > 0 && deg > 0 {
		row = make([]hin.HalfEdge, 0, deg)
		if fmath.Eq(r.cfg.Beta, 1) {
			v.OutEdges(u, func(h hin.HalfEdge) bool {
				row = append(row, h)
				return true
			})
			sum = total
		} else {
			uniform := (1 - r.cfg.Beta) / float64(deg)
			v.OutEdges(u, func(h hin.HalfEdge) bool {
				h.Weight = r.cfg.Beta*h.Weight/total + uniform
				row = append(row, h)
				return true
			})
			sum = 1
		}
	}
	return hin.NewPatchedCSR(r.Flat(), u, row, sum)
}

// Config returns the recommender's configuration.
func (r *Recommender) Config() Config { return r.cfg }

// SetCache attaches a shared PPR-vector cache. Scores computed by this
// recommender — and by every recommender later derived from it via
// WithView or WithUserPatch — are then served from c when the scoring
// view is versioned (graphs, overlays and their β-wraps all are).
// Passing nil detaches the cache. Not safe to call concurrently with
// scoring.
func (r *Recommender) SetCache(c *pprcache.Cache) { r.cache = c }

// WithCache returns a copy of the recommender with the shared PPR-
// vector cache attached (nil detaches). The receiver is never mutated,
// so callers that must not alias the original's future state — the
// server and the explainer both rebind a borrowed recommender to their
// own cache — get a clone with the same safety contract as WithView:
// the flat snapshot (when already built) is read-shared, everything
// else is independent. Unlike a bare struct copy at the call site,
// adding synchronization state to Recommender later only requires
// updating this one constructor.
func (r *Recommender) WithCache(c *pprcache.Cache) *Recommender {
	cp := *r
	cp.cache = c
	return &cp
}

// Cache returns the attached vector cache, nil when none.
func (r *Recommender) Cache() *pprcache.Cache { return r.cache }

// View returns the transition view the recommender scores over: the
// underlying graph wrapped with the β-mix. EMiGRe's contribution
// functions must read transition weights from this view so heuristics
// and the CHECK step agree.
func (r *Recommender) View() hin.View { return r.view }

// IsItem reports whether node v has a recommendable type.
func (r *Recommender) IsItem(v hin.NodeID) bool {
	return r.itemMask[r.base.NodeType(v)]
}

// IsCandidate reports whether v may appear in u's recommendation list:
// v is an item, v ≠ u, and the user has no outgoing edge to v.
func (r *Recommender) IsCandidate(u, v hin.NodeID) bool {
	return v != u && r.IsItem(v) && !r.base.HasEdge(u, v)
}

// Scores returns the full personalized score vector PPR(u, ·) over the
// β-mixed transition view.
func (r *Recommender) Scores(u hin.NodeID) (ppr.Vector, error) {
	return r.ScoresContext(context.Background(), u)
}

// ScoresContext is Scores with cancellation: the underlying PPR run
// aborts with ctx.Err() once ctx is canceled or its deadline passes.
//
// When a cache is attached (SetCache) the vector may be shared with
// concurrent callers and MUST be treated as read-only. The cache key is
// derived from r.View() — the β-mixed transition view — which the
// scoring snapshots (Flat, WithUserPatch's PatchedCSR) are exact
// materializations of.
func (r *Recommender) ScoresContext(ctx context.Context, u hin.NodeID) (ppr.Vector, error) {
	if r.cache != nil {
		if k, ok := pprcache.ForwardKey(r.view, r.engine, u); ok {
			vec, _, err := r.cache.GetOrCompute(ctx, k, func(cctx context.Context) (ppr.Vector, error) {
				return r.engine.FromSourceContext(cctx, r.ScoringView(), u)
			})
			return vec, err
		}
	}
	return r.engine.FromSourceContext(ctx, r.ScoringView(), u)
}

// ForwardResult returns the full forward-push state (estimates and
// residuals) of PPR(u, ·) over the β-mixed transition view. See
// ForwardResultContext.
func (r *Recommender) ForwardResult(u hin.NodeID) (*ppr.PushResult, error) {
	return r.ForwardResultContext(context.Background(), u)
}

// ForwardResultContext is ScoresContext at the push-result level: the
// residual half of the push state is returned (and kept resident in
// the attached cache) alongside the estimates, so callers can
// warm-start incremental pushes from it (WarmScoresContext). When the
// cache holds a vector-only entry for this key — stored by an earlier
// ScoresContext — the entry is upgraded in place rather than
// recomputed into a second slot.
//
// The returned result may be shared with concurrent callers and MUST
// be treated as read-only.
func (r *Recommender) ForwardResultContext(ctx context.Context, u hin.NodeID) (*ppr.PushResult, error) {
	if r.cache != nil {
		if k, ok := pprcache.ForwardKey(r.view, r.engine, u); ok {
			res, _, err := r.cache.GetOrComputeResult(ctx, k, func(cctx context.Context) (*ppr.PushResult, error) {
				return r.engine.RunContext(cctx, r.ScoringView(), u)
			})
			return res, err
		}
	}
	return r.engine.RunContext(ctx, r.ScoringView(), u)
}

// WarmScoresContext scores the personalized vector over this
// recommender's scoring view by warm-starting from base, a completed
// push state over baseView (typically another recommender's
// ForwardResultContext result, whose source node also fixes the
// personalization here). The two views must differ only in the
// outgoing rows listed in rows — the shape of every EMiGRe
// counterfactual, where a WithUserPatch recommender differs from its
// parent in the query user's row alone. The push repairs the perturbed
// mass only, O(Δ) instead of a full recomputation.
//
// The result aliases sc's buffers (see ppr.UpdateScratch): it is valid
// until sc's next use, must not be retained, and is therefore never
// routed through the cache. base is not mutated.
func (r *Recommender) WarmScoresContext(ctx context.Context, baseView hin.View, base *ppr.PushResult, rows []hin.NodeID, sc *ppr.UpdateScratch) (*ppr.PushResult, error) {
	return r.engine.UpdateForEdit(ctx, baseView, r.ScoringView(), base, rows, sc)
}

// Recommend returns the top-1 recommendation for u per Eq. 2. It
// returns ErrNoCandidates when no item is recommendable.
func (r *Recommender) Recommend(u hin.NodeID) (hin.NodeID, error) {
	return r.RecommendContext(context.Background(), u)
}

// RecommendContext is Recommend with cancellation.
func (r *Recommender) RecommendContext(ctx context.Context, u hin.NodeID) (hin.NodeID, error) {
	top, err := r.TopNContext(ctx, u, 1)
	if err != nil {
		return hin.InvalidNode, err
	}
	return top[0].Node, nil
}

// TopN returns the n best-scoring candidate items for u in descending
// score order (ties broken toward the lower node ID). Fewer than n
// entries are returned when the graph has fewer candidates; zero
// candidates is ErrNoCandidates.
func (r *Recommender) TopN(u hin.NodeID, n int) ([]Scored, error) {
	return r.TopNContext(context.Background(), u, n)
}

// TopNContext is TopN with cancellation: the PPR pass behind the
// ranking aborts with ctx.Err() once ctx is done.
func (r *Recommender) TopNContext(ctx context.Context, u hin.NodeID, n int) ([]Scored, error) {
	scores, err := r.ScoresContext(ctx, u)
	if err != nil {
		return nil, err
	}
	var all []Scored
	for v := range scores {
		id := hin.NodeID(v)
		if r.IsCandidate(u, id) {
			all = append(all, Scored{Node: id, Score: scores[v]})
		}
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("%w (user %d)", ErrNoCandidates, u)
	}
	sort.Slice(all, func(i, j int) bool {
		return fmath.Before(all[i].Score, all[j].Score, int(all[i].Node), int(all[j].Node))
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n], nil
}

// RankOf returns the 1-based rank of item v in u's candidate ranking.
// It returns ErrNotCandidate when v cannot be recommended to u.
func (r *Recommender) RankOf(u, v hin.NodeID) (int, error) {
	return r.RankOfContext(context.Background(), u, v)
}

// RankOfContext is RankOf with cancellation.
func (r *Recommender) RankOfContext(ctx context.Context, u, v hin.NodeID) (int, error) {
	if !r.IsCandidate(u, v) {
		return 0, fmt.Errorf("%w: user %d, node %d", ErrNotCandidate, u, v)
	}
	scores, err := r.ScoresContext(ctx, u)
	if err != nil {
		return 0, err
	}
	rank := 1
	sv := scores[v]
	for x := range scores {
		id := hin.NodeID(x)
		if id == v || !r.IsCandidate(u, id) {
			continue
		}
		if fmath.Before(scores[x], sv, int(id), int(v)) {
			rank++
		}
	}
	return rank, nil
}
