package rec

import (
	"context"
	"math"
	"testing"

	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/ppr"
	"github.com/why-not-xai/emigre/internal/pprcache"
)

// counterfactualShop binds a WithUserPatch recommender editing u1's row
// (drop i1, add i4) alongside the base recommender.
func counterfactualShop(t *testing.T, beta float64) (*Recommender, *Recommender, hin.NodeID) {
	t.Helper()
	g, cfg, ids := smallShop(t)
	cfg.Beta = beta
	r, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := ids["u1"]
	rated, _ := g.Types().LookupEdgeType("rated")
	o, err := hin.NewOverlay(g,
		[]hin.Edge{{From: u, To: ids["i1"], Type: rated, Weight: 1}},
		[]hin.Edge{{From: u, To: ids["i4"], Type: rated, Weight: 2}})
	if err != nil {
		t.Fatal(err)
	}
	return r, r.WithUserPatch(o, u), u
}

func TestForwardResultContextCaches(t *testing.T) {
	g, cfg, ids := smallShop(t)
	r, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.SetCache(pprcache.New(pprcache.Config{}))
	ctx := context.Background()
	u := ids["u1"]

	res, err := r.ForwardResultContext(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	if res.Residuals == nil {
		t.Fatal("ForwardResultContext returned no residuals")
	}
	res2, err := r.ForwardResultContext(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res {
		t.Fatal("second call did not hit the shared resident result")
	}
	// The vector-level path shares the entry too.
	vec, err := r.ScoresContext(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	if &vec[0] != &res.Estimates[0] {
		t.Fatal("ScoresContext did not alias the resident full result")
	}
	s := r.Cache().Stats()
	if s.Misses != 1 || s.Hits != 2 {
		t.Fatalf("cache stats = %+v, want 1 miss / 2 hits", s)
	}
}

func TestForwardResultContextUpgradesVectorEntry(t *testing.T) {
	g, cfg, ids := smallShop(t)
	r, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.SetCache(pprcache.New(pprcache.Config{}))
	ctx := context.Background()
	u := ids["u2"]
	if _, err := r.ScoresContext(ctx, u); err != nil { // vector-only fill
		t.Fatal(err)
	}
	res, err := r.ForwardResultContext(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	if res.Residuals == nil {
		t.Fatal("upgrade returned no residuals")
	}
	if s := r.Cache().Stats(); s.Upgrades != 1 || s.Entries != 1 {
		t.Fatalf("cache stats = %+v, want 1 upgrade over 1 entry", s)
	}
}

func TestForwardResultContextWithoutCache(t *testing.T) {
	g, cfg, ids := smallShop(t)
	r, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.ForwardResultContext(context.Background(), ids["u1"])
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Residuals == nil {
		t.Fatalf("uncached result = %+v, want a full push state", res)
	}
}

// TestWarmScoresMatchesColdScores is the facade-level delta contract:
// warm-starting the patched recommender from the base recommender's
// cached push state reproduces a cold recompute within the push
// tolerance, for both the plain walk and the paper's β-mix.
func TestWarmScoresMatchesColdScores(t *testing.T) {
	for _, beta := range []float64{1, 0.5} {
		base, patched, u := counterfactualShop(t, beta)
		ctx := context.Background()
		baseRes, err := base.ForwardResultContext(ctx, u)
		if err != nil {
			t.Fatal(err)
		}
		var sc ppr.UpdateScratch
		warm, err := patched.WarmScoresContext(ctx, base.ScoringView(), baseRes, []hin.NodeID{u}, &sc)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := patched.ScoresContext(ctx, u)
		if err != nil {
			t.Fatal(err)
		}
		for v := range cold {
			if diff := math.Abs(cold[v] - warm.Estimates[v]); diff > 1e-6 {
				t.Fatalf("beta=%g: score[%d] cold %g vs warm %g (diff %g)",
					beta, v, cold[v], warm.Estimates[v], diff)
			}
		}
	}
}
