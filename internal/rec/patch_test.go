package rec

import (
	"math"
	"testing"

	"github.com/why-not-xai/emigre/internal/hin"
)

// TestWithUserPatchEquivalentToWithView compares full scoring through a
// re-flattened overlay against the O(deg u) patched binding, for both
// β = 1 and the paper's β = 0.5 mix.
func TestWithUserPatchEquivalentToWithView(t *testing.T) {
	for _, beta := range []float64{1, 0.5} {
		g, cfg, ids := smallShop(t)
		cfg.Beta = beta
		r, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		u := ids["u1"]
		rated, _ := g.Types().LookupEdgeType("rated")
		o, err := hin.NewOverlay(g,
			[]hin.Edge{{From: u, To: ids["i1"], Type: rated, Weight: 1}},
			[]hin.Edge{{From: u, To: ids["i4"], Type: rated, Weight: 2}})
		if err != nil {
			t.Fatal(err)
		}
		full := r.WithView(o)
		patched := r.WithUserPatch(o, u)

		sf, err := full.Scores(u)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := patched.Scores(u)
		if err != nil {
			t.Fatal(err)
		}
		for v := range sf {
			if diff := math.Abs(sf[v] - sp[v]); diff > 1e-9 {
				t.Fatalf("beta=%g: score[%d] full %g vs patched %g", beta, v, sf[v], sp[v])
			}
		}
		tf, err := full.TopN(u, 5)
		if err != nil {
			t.Fatal(err)
		}
		tp, err := patched.TopN(u, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(tf) != len(tp) {
			t.Fatalf("beta=%g: TopN lengths differ", beta)
		}
		for i := range tf {
			if tf[i].Node != tp[i].Node {
				t.Fatalf("beta=%g: TopN[%d] full %v vs patched %v", beta, i, tf[i], tp[i])
			}
		}
	}
}

func TestWithUserPatchDanglingUser(t *testing.T) {
	g, cfg, ids := smallShop(t)
	r, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := ids["u1"]
	rated, _ := g.Types().LookupEdgeType("rated")
	// Remove every outgoing edge of u1 (rated edges only in fixture).
	removals := g.OutEdgesOfType(u, hin.NewEdgeTypeSet())
	_ = rated
	o, err := hin.NewOverlay(g, removals, nil)
	if err != nil {
		t.Fatal(err)
	}
	patched := r.WithUserPatch(o, u)
	scores, err := patched.Scores(u)
	if err != nil {
		t.Fatal(err)
	}
	// Isolated user: all mass stays at u (α of it), nothing else scored.
	for v := range scores {
		if hin.NodeID(v) == u {
			continue
		}
		if scores[v] != 0 {
			t.Fatalf("dangling user leaked score to node %d: %g", v, scores[v])
		}
	}
}

func TestConfigAndViewAccessors(t *testing.T) {
	g, cfg, _ := smallShop(t)
	r, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Config().Beta != cfg.Beta {
		t.Fatal("Config accessor wrong")
	}
	if r.View() == nil || r.ScoringView() == nil {
		t.Fatal("view accessors returned nil")
	}
}
