package rec

import (
	"context"
	"fmt"
	"sort"

	"github.com/why-not-xai/emigre/internal/fmath"
	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/ppr"
	"github.com/why-not-xai/emigre/internal/pprcache"
)

// EdgeContribution decomposes a personalized score along one of the
// user's outgoing edges.
type EdgeContribution struct {
	// Edge is the user's action (with its raw weight).
	Edge hin.Edge
	// Transition is the edge's probability W(u, n) under the β-mixed
	// view.
	Transition float64
	// Target is PPR(n, target): how strongly the neighbor endorses the
	// target item.
	Target float64
	// Share is the edge's additive share of PPR(u, target):
	// (1−α)·Transition·Target.
	Share float64
}

// Contributions decomposes PPR(u, target) along u's outgoing edges
// using the linearity of Eq. 1 (DESIGN.md §3.1):
//
//	PPR(u,t) = α·[u=t] + (1−α)·Σ_n W(u,n)·PPR(n,t)
//
// The returned shares therefore sum to PPR(u, target) when u ≠ target
// (up to push tolerance). This is the "why is this item scored the way
// it is" introspection the EMiGRe contribution functions build on, and
// a useful white-box explanation in its own right.
func (r *Recommender) Contributions(u, target hin.NodeID) ([]EdgeContribution, error) {
	n := r.base.NumNodes()
	if u < 0 || int(u) >= n || target < 0 || int(target) >= n {
		return nil, fmt.Errorf("rec: node out of range (user %d, target %d, %d nodes)", u, target, n)
	}
	col, err := r.reverseColumn(context.Background(), target)
	if err != nil {
		return nil, err
	}
	view := r.View()
	total := view.OutWeightSum(u)
	if total <= 0 {
		return nil, nil
	}
	alpha := r.cfg.PPR.Alpha
	var out []EdgeContribution
	view.OutEdges(u, func(h hin.HalfEdge) bool {
		w := h.Weight / total
		out = append(out, EdgeContribution{
			Edge:       hin.Edge{From: u, To: h.Node, Type: h.Type, Weight: h.Weight},
			Transition: w,
			Target:     col[h.Node],
			Share:      (1 - alpha) * w * col[h.Node],
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		return fmath.Before(out[i].Share, out[j].Share, int(out[i].Edge.To), int(out[j].Edge.To))
	})
	return out, nil
}

// reverseColumn returns PPR(·, target) over the recommender's scoring
// view, served through the attached vector cache when the view is
// versioned — the recommender-side twin of the explainer's
// session.reverseColumn, and (with ScoresContext) one of the two
// routing helpers the rawengine analyzer permits to invoke an engine
// directly.
func (r *Recommender) reverseColumn(ctx context.Context, target hin.NodeID) (ppr.Vector, error) {
	rev := ppr.NewReversePush(r.cfg.PPR)
	if r.cache != nil {
		if k, ok := pprcache.ReverseKey(r.view, rev, target); ok {
			vec, _, err := r.cache.GetOrCompute(ctx, k, func(cctx context.Context) (ppr.Vector, error) {
				return rev.ToTargetContext(cctx, r.ScoringView(), target)
			})
			return vec, err
		}
	}
	return rev.ToTargetContext(ctx, r.ScoringView(), target)
}
