package rec

import (
	"math"

	"github.com/why-not-xai/emigre/internal/fmath"
	"github.com/why-not-xai/emigre/internal/hin"
)

// betaView decorates a hin.View so the transition probability out of a
// node v becomes
//
//	W'(v,x) = β · w(v,x)/Σw(v,·) + (1−β) · 1/deg(v)
//
// — a RecWalk-style mix of the weight-proportional walk and the uniform
// walk. It is implemented by rewriting edge weights so that each node's
// out-weights sum to exactly 1 (except dangling nodes, which stay
// dangling), which means downstream PPR engines need no changes.
type betaView struct {
	hin.View
	beta float64
}

// WrapBeta wraps g with the β-mix. β = 1 returns g unchanged (the plain
// weighted walk needs no rewrite because the engines normalize rows
// themselves).
func WrapBeta(g hin.View, beta float64) hin.View {
	if fmath.Eq(beta, 1) {
		return g
	}
	return &betaView{View: g, beta: beta}
}

func (b *betaView) OutEdges(v hin.NodeID, yield func(hin.HalfEdge) bool) {
	total := b.View.OutWeightSum(v)
	deg := b.View.OutDegree(v)
	if total <= 0 || deg == 0 {
		return
	}
	uniform := (1 - b.beta) / float64(deg)
	b.View.OutEdges(v, func(h hin.HalfEdge) bool {
		h.Weight = b.beta*h.Weight/total + uniform
		return yield(h)
	})
}

func (b *betaView) InEdges(v hin.NodeID, yield func(hin.HalfEdge) bool) {
	// The incoming edge (x -> v) must carry the same rewritten weight it
	// has in x's out-list, because reverse push divides by x's
	// OutWeightSum.
	b.View.InEdges(v, func(h hin.HalfEdge) bool {
		src := h.Node
		total := b.View.OutWeightSum(src)
		deg := b.View.OutDegree(src)
		if total <= 0 || deg == 0 {
			return true
		}
		h.Weight = b.beta*h.Weight/total + (1-b.beta)/float64(deg)
		return yield(h)
	})
}

// Version implements hin.Versioned: the β-mix is a pure function of the
// underlying view and β, so its version is the base version salted with
// β's bit pattern. WrapBeta(g, 0.5) and g itself therefore never share
// cache entries, while two wraps of the same view with the same β do.
func (b *betaView) Version() (hin.Version, bool) {
	base, ok := hin.ViewVersion(b.View)
	if !ok {
		return hin.Version{}, false
	}
	return base.Mix(math.Float64bits(b.beta)), true
}

func (b *betaView) OutWeightSum(v hin.NodeID) float64 {
	if b.View.OutDegree(v) == 0 || b.View.OutWeightSum(v) <= 0 {
		return 0
	}
	return 1
}
