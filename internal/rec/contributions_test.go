package rec

import (
	"math"
	"testing"

	"github.com/why-not-xai/emigre/internal/ppr"
)

func TestContributionsSumToScore(t *testing.T) {
	for _, beta := range []float64{1, 0.5} {
		g, cfg, ids := smallShop(t)
		cfg.Beta = beta
		cfg.PPR.Epsilon = 1e-10
		r, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		u, target := ids["u1"], ids["i3"]
		contribs, err := r.Contributions(u, target)
		if err != nil {
			t.Fatal(err)
		}
		if len(contribs) != g.OutDegree(u) {
			t.Fatalf("got %d contributions, want %d", len(contribs), g.OutDegree(u))
		}
		var sum, transSum float64
		for _, c := range contribs {
			sum += c.Share
			transSum += c.Transition
		}
		scores, err := r.Scores(u)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(sum - scores[target]); diff > 1e-6 {
			t.Fatalf("beta=%g: shares sum to %g, score is %g", beta, sum, scores[target])
		}
		if math.Abs(transSum-1) > 1e-9 {
			t.Fatalf("beta=%g: transitions sum to %g, want 1", beta, transSum)
		}
		// Sorted descending by share.
		for i := 1; i < len(contribs); i++ {
			if contribs[i-1].Share < contribs[i].Share {
				t.Fatal("contributions not sorted")
			}
		}
	}
}

func TestContributionsSelfTargetIncludesAlpha(t *testing.T) {
	// For u == target the decomposition misses only the α teleport
	// term.
	g, cfg, ids := smallShop(t)
	cfg.PPR.Epsilon = 1e-10
	r, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := ids["u1"]
	contribs, err := r.Contributions(u, u)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, c := range contribs {
		sum += c.Share
	}
	col, err := ppr.NewReversePush(cfg.PPR).ToTarget(r.ScoringView(), u)
	if err != nil {
		t.Fatal(err)
	}
	want := col[u] - cfg.PPR.Alpha
	if diff := math.Abs(sum - want); diff > 1e-6 {
		t.Fatalf("self-target shares %g, want %g", sum, want)
	}
}

func TestContributionsErrorsAndDangling(t *testing.T) {
	g, cfg, ids := smallShop(t)
	r, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Contributions(999, ids["i1"]); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := r.Contributions(ids["u1"], -1); err == nil {
		t.Fatal("expected range error")
	}
	// A dangling node yields no contributions and no error.
	iso := g.AddNode(g.Types().NodeType("user"), "")
	r2, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	contribs, err := r2.Contributions(iso, ids["i1"])
	if err != nil {
		t.Fatal(err)
	}
	if len(contribs) != 0 {
		t.Fatal("dangling node should have no contributions")
	}
}
