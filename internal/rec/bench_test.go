package rec

import (
	"math/rand"
	"testing"

	"github.com/why-not-xai/emigre/internal/hin"
)

func benchGraph(b *testing.B) (*hin.Graph, []hin.NodeID, Config) {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	g := hin.NewGraph()
	user := g.Types().NodeType("user")
	item := g.Types().NodeType("item")
	rated := g.Types().EdgeType("rated")
	const nUsers, nItems = 50, 1000
	users := make([]hin.NodeID, nUsers)
	for i := range users {
		users[i] = g.AddNode(user, "")
	}
	for i := 0; i < nItems; i++ {
		g.AddNode(item, "")
	}
	for i := 0; i < nUsers*20; i++ {
		u := users[rng.Intn(nUsers)]
		it := hin.NodeID(nUsers + rng.Intn(nItems))
		if !g.HasEdge(u, it) {
			_ = g.AddBidirectional(u, it, rated, 0.5+rng.Float64())
		}
	}
	return g, users, DefaultConfig(item)
}

func BenchmarkTopN(b *testing.B) {
	g, users, cfg := benchGraph(b)
	for _, beta := range []float64{1, 0.5} {
		name := "beta=1"
		if beta != 1 {
			name = "beta=0.5"
		}
		b.Run(name, func(b *testing.B) {
			c := cfg
			c.Beta = beta
			r, err := New(g, c)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.TopN(users[i%len(users)], 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWithViewOverlay(b *testing.B) {
	g, users, cfg := benchGraph(b)
	r, err := New(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	u := users[0]
	edges := g.OutEdgesOfType(u, hin.NewEdgeTypeSet())
	if len(edges) == 0 {
		b.Skip("user 0 has no edges")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := hin.NewOverlay(g, edges[:1], nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.WithView(o).Recommend(u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRankOf(b *testing.B) {
	g, users, cfg := benchGraph(b)
	r, err := New(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	top, err := r.TopN(users[0], 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RankOf(users[0], top[len(top)-1].Node); err != nil {
			b.Fatal(err)
		}
	}
}
