package prince

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/why-not-xai/emigre/internal/emigre"
	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/rec"
)

// twoClusterGraph mirrors the emigre package fixture: user u is
// programming-leaning (rec = p3), fantasy item f2 is the runner-up.
func twoClusterGraph(t *testing.T) (*hin.Graph, *rec.Recommender, map[string]hin.NodeID, hin.EdgeTypeID) {
	t.Helper()
	g := hin.NewGraph()
	user := g.Types().NodeType("user")
	item := g.Types().NodeType("item")
	cat := g.Types().NodeType("category")
	rated := g.Types().EdgeType("rated")
	belongs := g.Types().EdgeType("belongs-to")

	ids := make(map[string]hin.NodeID)
	node := func(typ hin.NodeTypeID, name string) hin.NodeID {
		id := g.AddNode(typ, name)
		ids[name] = id
		return id
	}
	u := node(user, "u")
	v := node(user, "v")
	w := node(user, "w")
	x := node(user, "x")
	p1 := node(item, "p1")
	p2 := node(item, "p2")
	p3 := node(item, "p3")
	f1 := node(item, "f1")
	f2 := node(item, "f2")
	f3 := node(item, "f3")
	cP := node(cat, "cP")
	cF := node(cat, "cF")
	add := func(a, b hin.NodeID, typ hin.EdgeTypeID) {
		t.Helper()
		if err := g.AddBidirectional(a, b, typ, 1); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []hin.NodeID{p1, p2, p3} {
		add(i, cP, belongs)
	}
	for _, i := range []hin.NodeID{f1, f2, f3} {
		add(i, cF, belongs)
	}
	add(u, p1, rated)
	add(u, p2, rated)
	add(u, f1, rated)
	add(v, p1, rated)
	add(v, p2, rated)
	add(v, p3, rated)
	add(w, f1, rated)
	add(w, f2, rated)
	add(w, f3, rated)
	add(x, f1, rated)
	add(x, f2, rated)

	cfg := rec.DefaultConfig(item)
	cfg.Beta = 1
	r, err := rec.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g, r, ids, rated
}

func TestExplainChangesRecommendation(t *testing.T) {
	g, r, ids, rated := twoClusterGraph(t)
	p := New(g, r, Options{AllowedEdgeTypes: hin.NewEdgeTypeSet(rated)})
	cfe, err := p.Explain(ids["u"])
	if err != nil {
		t.Fatal(err)
	}
	if cfe.OldTop != ids["p3"] {
		t.Fatalf("OldTop = %v, want p3", cfe.OldTop)
	}
	if cfe.NewTop == cfe.OldTop {
		t.Fatal("counterfactual did not change the recommendation")
	}
	if cfe.Size() == 0 || cfe.Size() == 3 {
		t.Fatalf("CFE size = %d, want 1 or 2 (not empty, not all actions)", cfe.Size())
	}
	// Soundness: apply the removals and confirm the change.
	o, err := hin.NewOverlay(g, cfe.Edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	newTop, err := r.WithView(o).Recommend(ids["u"])
	if err != nil {
		t.Fatal(err)
	}
	if newTop != cfe.NewTop {
		t.Fatalf("replayed new top %v != reported %v", newTop, cfe.NewTop)
	}
	// All removed edges are user actions of the allowed type.
	for _, e := range cfe.Edges {
		if e.From != ids["u"] || e.Type != rated {
			t.Fatalf("invalid removed action %v", e)
		}
	}
}

func TestPrinceAnswersADifferentQuestionThanEmigre(t *testing.T) {
	// The paper's Figure 1a vs Figure 2 contrast: a PRINCE CFE for the
	// current top item need not promote the user's Why-Not item.
	g, r, ids, rated := twoClusterGraph(t)
	p := New(g, r, Options{AllowedEdgeTypes: hin.NewEdgeTypeSet(rated)})
	cfe, err := p.Explain(ids["u"])
	if err != nil {
		t.Fatal(err)
	}
	// EMiGRe targets f3 — a weaker item PRINCE would never pick as its
	// replacement (PRINCE lands on the strongest runner-up).
	ex := emigre.New(g, r, emigre.Options{
		AllowedEdgeTypes: hin.NewEdgeTypeSet(rated),
		AddEdgeType:      rated,
	})
	wni := ids["f3"]
	if cfe.NewTop == wni {
		t.Skipf("fixture assumption broken: PRINCE replacement is f3")
	}
	expl, err := ex.ExplainWith(emigre.Query{User: ids["u"], WNI: wni}, emigre.Remove, emigre.Exhaustive)
	if errors.Is(err, emigre.ErrNoExplanation) {
		// Remove mode may genuinely have no answer for f3; Add mode must.
		expl, err = ex.ExplainWith(emigre.Query{User: ids["u"], WNI: wni}, emigre.Add, emigre.Exhaustive)
	}
	if err != nil {
		t.Fatal(err)
	}
	if expl.NewTop != wni {
		t.Fatalf("EMiGRe explanation promotes %v, want %v", expl.NewTop, wni)
	}
	// And the PRINCE CFE is NOT a Why-Not explanation for f3.
	o, err := hin.NewOverlay(g, cfe.Edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	top, err := r.WithView(o).Recommend(ids["u"])
	if err != nil {
		t.Fatal(err)
	}
	if top == wni {
		t.Fatal("PRINCE CFE accidentally promotes the Why-Not item; fixture too weak")
	}
}

func TestNoActionsNoCFE(t *testing.T) {
	g, r, ids, rated := twoClusterGraph(t)
	// Restrict removable actions to a type u does not use.
	other := g.Types().EdgeType("other")
	p := New(g, r, Options{AllowedEdgeTypes: hin.NewEdgeTypeSet(other)})
	if _, err := p.Explain(ids["u"]); !errors.Is(err, ErrNoCFE) {
		t.Fatalf("err = %v, want ErrNoCFE", err)
	}
	_ = rated
}

// TestQuickCFEAlwaysChangesRecommendation: whatever PRINCE returns on
// random graphs, replaying the removals must change the top-1.
func TestQuickCFEAlwaysChangesRecommendation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := hin.NewGraph()
		user := g.Types().NodeType("user")
		item := g.Types().NodeType("item")
		rated := g.Types().EdgeType("rated")
		nUsers, nItems := 3+rng.Intn(4), 6+rng.Intn(8)
		for i := 0; i < nUsers; i++ {
			g.AddNode(user, "")
		}
		for i := 0; i < nItems; i++ {
			g.AddNode(item, "")
		}
		for i := 0; i < nUsers*4; i++ {
			u := hin.NodeID(rng.Intn(nUsers))
			it := hin.NodeID(nUsers + rng.Intn(nItems))
			if !g.HasEdge(u, it) {
				_ = g.AddBidirectional(u, it, rated, 0.5+rng.Float64())
			}
		}
		cfg := rec.DefaultConfig(item)
		cfg.Beta = 1
		r, err := rec.New(g, cfg)
		if err != nil {
			return false
		}
		p := New(g, r, Options{AllowedEdgeTypes: hin.NewEdgeTypeSet(rated)})
		u := hin.NodeID(rng.Intn(nUsers))
		cfe, err := p.Explain(u)
		if err != nil {
			return true // no CFE on this instance is fine
		}
		o, err := hin.NewOverlay(g, cfe.Edges, nil)
		if err != nil {
			return false
		}
		newTop, err := r.WithView(o).Recommend(u)
		if err != nil {
			return false
		}
		return newTop != cfe.OldTop && newTop == cfe.NewTop
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	g, r, _, _ := twoClusterGraph(t)
	p := New(g, r, Options{})
	if p.opts.MaxReplacements != defaultMaxReplacements || p.opts.MaxTests != defaultMaxTests {
		t.Fatalf("defaults not applied: %+v", p.opts)
	}
}
