// Package prince implements a PRINCE-style counterfactual explainer
// (Ghazimatin, Balalau, Saha Roy & Weikum, WSDM 2020) over the same HIN
// and PPR substrate as EMiGRe.
//
// PRINCE answers the *Why* question for an existing recommendation: it
// finds a minimal set of the user's own actions whose removal changes
// the top-1 recommendation to *any* other item. The paper this
// repository reproduces uses PRINCE as a contrast (its Figure 2): a Why
// explanation for the current top item is not a Why-Not explanation for
// a chosen missing item, because PRINCE's replacement item is whatever
// happens to win, not the item the user asked about.
//
// Implementation note: PRINCE's published algorithm derives exact swap
// sets from u-absorbing PPR values. This implementation uses the same
// first-order action scores as EMiGRe's Remove mode (the contribution
// of each action to rec versus a candidate replacement item) with a
// greedy swap per replacement candidate, and verifies each candidate
// counterfactual by re-running the recommender — so every returned CFE
// is sound, and minimality is approximate in the same sense as the
// original's candidate enumeration over top-k replacement items.
package prince

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/why-not-xai/emigre/internal/fmath"
	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/ppr"
	"github.com/why-not-xai/emigre/internal/rec"
)

// ErrNoCFE is returned when no counterfactual explanation exists within
// the configured budgets.
var ErrNoCFE = errors.New("prince: no counterfactual explanation found")

// Options configures the explainer.
type Options struct {
	// AllowedEdgeTypes restricts the action edges that may be removed
	// (PRINCE removes user actions only). Zero allows all types.
	AllowedEdgeTypes hin.EdgeTypeSet
	// MaxReplacements is the number of top-ranked candidate replacement
	// items examined. Default 10.
	MaxReplacements int
	// MaxTests caps verification runs. Default 100.
	MaxTests int
}

const (
	defaultMaxReplacements = 10
	defaultMaxTests        = 100
)

// CFE is a verified counterfactual explanation: removing Edges changes
// the user's top-1 recommendation from OldTop to NewTop.
type CFE struct {
	User   hin.NodeID
	OldTop hin.NodeID
	NewTop hin.NodeID
	// Edges is the minimal action set found (the paper's A*).
	Edges []hin.Edge
	// Tests counts the verification runs performed.
	Tests    int
	Duration time.Duration
}

// Size returns the number of removed actions.
func (c *CFE) Size() int { return len(c.Edges) }

// Explainer computes counterfactual explanations for existing
// recommendations.
type Explainer struct {
	g    *hin.Graph
	r    *rec.Recommender
	opts Options
	rev  *ppr.ReversePush
}

// New builds a PRINCE explainer over g and its recommender.
func New(g *hin.Graph, r *rec.Recommender, opts Options) *Explainer {
	if opts.MaxReplacements == 0 {
		opts.MaxReplacements = defaultMaxReplacements
	}
	if opts.MaxTests == 0 {
		opts.MaxTests = defaultMaxTests
	}
	return &Explainer{g: g, r: r, opts: opts, rev: ppr.NewReversePush(r.Config().PPR)}
}

// Explain returns a minimal-by-search counterfactual for u's current
// top-1 recommendation.
func (p *Explainer) Explain(u hin.NodeID) (*CFE, error) {
	start := time.Now()
	oldTop, err := p.r.Recommend(u)
	if err != nil {
		return nil, err
	}
	view := p.r.Flat()
	toRec, err := p.rev.ToTarget(view, oldTop)
	if err != nil {
		return nil, err
	}
	actions := p.g.OutEdgesOfType(u, p.opts.AllowedEdgeTypes)
	if len(actions) == 0 {
		return nil, fmt.Errorf("%w: user %d has no removable actions", ErrNoCFE, u)
	}
	trans := transitionTable(view, u)

	// Candidate replacement items: the runners-up of the current list.
	top, err := p.r.TopN(u, p.opts.MaxReplacements+1)
	if err != nil {
		return nil, err
	}

	type swapSet struct {
		edges  []hin.Edge
		target hin.NodeID
		margin float64
	}
	var candidates []swapSet
	for _, sc := range top {
		y := sc.Node
		if y == oldTop {
			continue
		}
		toY, err := p.rev.ToTarget(view, y)
		if err != nil {
			return nil, err
		}
		// Score each action by how much it favors oldTop over y; the
		// greedy swap removes the strongest oldTop-supporters until the
		// first-order gap flips.
		type scored struct {
			edge  hin.Edge
			score float64
		}
		scoredActions := make([]scored, len(actions))
		var gap float64
		for i, e := range actions {
			s := trans[edgeKey{e.To, e.Type}] * (toRec[e.To] - toY[e.To])
			scoredActions[i] = scored{edge: e, score: s}
			gap += s
		}
		sort.Slice(scoredActions, func(i, j int) bool {
			return fmath.Before(scoredActions[i].score, scoredActions[j].score,
				int(scoredActions[i].edge.To), int(scoredActions[j].edge.To))
		})
		var removed []hin.Edge
		feasible := false
		for _, sa := range scoredActions {
			if gap <= 0 {
				feasible = true
				break
			}
			if sa.score <= 0 {
				break // only oldTop-supporters help the swap
			}
			removed = append(removed, sa.edge)
			gap -= sa.score
		}
		if gap <= 0 {
			feasible = true
		}
		if !feasible || len(removed) == 0 || len(removed) == len(actions) {
			// Removing every action leaves the user isolated — PRINCE
			// excludes the degenerate full removal.
			continue
		}
		candidates = append(candidates, swapSet{edges: removed, target: y, margin: -gap})
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("%w: no feasible swap among top-%d replacements", ErrNoCFE, p.opts.MaxReplacements)
	}
	sort.Slice(candidates, func(i, j int) bool {
		if len(candidates[i].edges) != len(candidates[j].edges) {
			return len(candidates[i].edges) < len(candidates[j].edges)
		}
		return candidates[i].margin > candidates[j].margin
	})

	tests := 0
	for _, cand := range candidates {
		if tests >= p.opts.MaxTests {
			break
		}
		tests++
		o, err := hin.NewOverlay(p.g, cand.edges, nil)
		if err != nil {
			return nil, err
		}
		newTop, err := p.r.WithUserPatch(o, u).Recommend(u)
		if err != nil {
			if errors.Is(err, rec.ErrNoCandidates) {
				continue
			}
			return nil, err
		}
		if newTop != oldTop {
			return &CFE{
				User:     u,
				OldTop:   oldTop,
				NewTop:   newTop,
				Edges:    cand.edges,
				Tests:    tests,
				Duration: time.Since(start),
			}, nil
		}
	}
	return nil, fmt.Errorf("%w: %d candidate swaps failed verification", ErrNoCFE, tests)
}

type edgeKey struct {
	to  hin.NodeID
	typ hin.EdgeTypeID
}

func transitionTable(view hin.View, u hin.NodeID) map[edgeKey]float64 {
	total := view.OutWeightSum(u)
	t := make(map[edgeKey]float64)
	if total <= 0 {
		return t
	}
	view.OutEdges(u, func(h hin.HalfEdge) bool {
		t[edgeKey{h.Node, h.Type}] += h.Weight / total
		return true
	})
	return t
}
