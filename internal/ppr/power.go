package ppr

import (
	"context"
	"fmt"
	"math"

	"github.com/why-not-xai/emigre/internal/fmath"
	"github.com/why-not-xai/emigre/internal/hin"
)

// Power is the dense power-iteration engine: the exact reference
// implementation the push engines are validated against. It implements
// both Engine (rows) and ReverseEngine (columns).
type Power struct {
	Params Params
}

// NewPower returns a power-iteration engine with the given parameters.
func NewPower(p Params) *Power { return &Power{Params: p} }

// Name implements Engine.
func (e *Power) Name() string { return "power" }

// Identity implements Identifier: power iteration's output depends on
// α, the convergence tolerance and the iteration cap.
func (e *Power) Identity() string {
	return fmt.Sprintf("power/a=%g,tol=%g,maxiter=%d", e.Params.Alpha, e.Params.Tol, e.Params.MaxIter)
}

// FromSource iterates p ← α·e_s + (1−α)·p·W until the L1 change drops
// below Tol. Each iteration is O(E).
func (e *Power) FromSource(g hin.View, s hin.NodeID) (Vector, error) {
	return e.FromSourceContext(context.Background(), g, s)
}

// FromSourceContext is FromSource with cancellation: the context is
// checked once per power sweep and the iteration aborts with ctx.Err().
func (e *Power) FromSourceContext(ctx context.Context, g hin.View, s hin.NodeID) (Vector, error) {
	if err := e.Params.Validate(); err != nil {
		return nil, err
	}
	if err := checkNode(g, s); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	alpha := e.Params.Alpha
	p := make(Vector, n)
	next := make(Vector, n)
	p[s] = 1 // start from e_s; converges to the same fixed point
	for iter := 0; iter < e.Params.MaxIter; iter++ {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		if err := powerSweepSite.Hit(ctx); err != nil {
			return nil, err
		}
		for i := range next {
			next[i] = 0
		}
		next[s] = alpha
		for v := 0; v < n; v++ {
			mass := p[v]
			if fmath.Eq(mass, 0) {
				continue
			}
			total := g.OutWeightSum(hin.NodeID(v))
			if total <= 0 {
				continue // dangling: walk absorbed
			}
			scale := (1 - alpha) * mass / total
			g.OutEdges(hin.NodeID(v), func(h hin.HalfEdge) bool {
				next[h.Node] += scale * h.Weight
				return true
			})
		}
		var diff float64
		for i := range p {
			diff += math.Abs(next[i] - p[i])
		}
		p, next = next, p
		if diff < e.Params.Tol {
			runsPower.Inc()
			powerIterations.Add(int64(iter) + 1)
			return p, nil
		}
	}
	return nil, fmt.Errorf("%w after %d iterations (source %d)", ErrNoConvergence, e.Params.MaxIter, s)
}

// ToTarget iterates the column recursion c ← α·e_t + (1−α)·W·c, which
// follows from unrolling the first step of the walk:
//
//	PPR(s,t) = α·[s==t] + (1−α)·Σ_v W(s,v)·PPR(v,t)
func (e *Power) ToTarget(g hin.View, t hin.NodeID) (Vector, error) {
	return e.ToTargetContext(context.Background(), g, t)
}

// ToTargetContext is ToTarget with cancellation: the context is checked
// once per power sweep and the iteration aborts with ctx.Err().
func (e *Power) ToTargetContext(ctx context.Context, g hin.View, t hin.NodeID) (Vector, error) {
	if err := e.Params.Validate(); err != nil {
		return nil, err
	}
	if err := checkNode(g, t); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	alpha := e.Params.Alpha
	c := make(Vector, n)
	next := make(Vector, n)
	c[t] = alpha
	for iter := 0; iter < e.Params.MaxIter; iter++ {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		if err := powerSweepSite.Hit(ctx); err != nil {
			return nil, err
		}
		for i := range next {
			next[i] = 0
		}
		next[t] = alpha
		for v := 0; v < n; v++ {
			total := g.OutWeightSum(hin.NodeID(v))
			if total <= 0 {
				continue
			}
			var acc float64
			g.OutEdges(hin.NodeID(v), func(h hin.HalfEdge) bool {
				acc += h.Weight * c[h.Node]
				return true
			})
			next[v] += (1 - alpha) * acc / total
		}
		var diff float64
		for i := range c {
			diff += math.Abs(next[i] - c[i])
		}
		c, next = next, c
		if diff < e.Params.Tol {
			runsPower.Inc()
			powerIterations.Add(int64(iter) + 1)
			return c, nil
		}
	}
	return nil, fmt.Errorf("%w after %d iterations (target %d)", ErrNoConvergence, e.Params.MaxIter, t)
}
