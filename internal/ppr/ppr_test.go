package ppr

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/why-not-xai/emigre/internal/hin"
)

// testParams are loose enough to run fast but tight enough that the
// engines agree to ~1e-6.
func testParams() Params {
	p := DefaultParams()
	p.Epsilon = 1e-9
	p.Tol = 1e-13
	return p
}

// lineGraph builds u -> a -> b with unit weights (b dangling).
func lineGraph(t *testing.T) (*hin.Graph, []hin.NodeID) {
	t.Helper()
	g := hin.NewGraph()
	nt := g.Types().NodeType("n")
	et := g.Types().EdgeType("e")
	u := g.AddNode(nt, "u")
	a := g.AddNode(nt, "a")
	b := g.AddNode(nt, "b")
	if err := g.AddEdge(u, a, et, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a, b, et, 1); err != nil {
		t.Fatal(err)
	}
	return g, []hin.NodeID{u, a, b}
}

// randomBidirGraph builds a connected-ish random bidirectional graph.
func randomBidirGraph(rng *rand.Rand, nodes, extra int) *hin.Graph {
	g := hin.NewGraph()
	nt := g.Types().NodeType("n")
	et := g.Types().EdgeType("e")
	for i := 0; i < nodes; i++ {
		g.AddNode(nt, "")
	}
	// Spanning chain keeps the graph connected.
	for i := 1; i < nodes; i++ {
		_ = g.AddBidirectional(hin.NodeID(i-1), hin.NodeID(i), et, rng.Float64()+0.2)
	}
	for i := 0; i < extra; i++ {
		a := hin.NodeID(rng.Intn(nodes))
		b := hin.NodeID(rng.Intn(nodes))
		if a == b {
			continue
		}
		_ = g.AddBidirectional(a, b, et, rng.Float64()+0.2)
	}
	return g
}

func TestPowerLineGraphClosedForm(t *testing.T) {
	g, ids := lineGraph(t)
	u, a, b := ids[0], ids[1], ids[2]
	p := testParams()
	alpha := p.Alpha
	e := NewPower(p)
	v, err := e.FromSource(g, u)
	if err != nil {
		t.Fatal(err)
	}
	// Walk from u: stays at u w.p. alpha; goes to a, stops w.p. alpha...
	want := []float64{alpha, (1 - alpha) * alpha, (1 - alpha) * (1 - alpha) * alpha}
	for i, node := range []hin.NodeID{u, a, b} {
		if math.Abs(v[node]-want[i]) > 1e-9 {
			t.Fatalf("PPR(u,%d) = %g, want %g", node, v[node], want[i])
		}
	}
	// Mass lost at dangling b: total = alpha + (1-a)alpha + (1-a)^2 (walk
	// absorbed at b contributes alpha at arrival only).
	if v.Sum() >= 1 {
		t.Fatalf("sum = %g, want < 1 on dangling graph", v.Sum())
	}
}

func TestPowerToTargetMatchesFromSource(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomBidirGraph(rng, 20, 30)
	e := NewPower(testParams())
	tgt := hin.NodeID(7)
	col, err := e.ToTarget(g, tgt)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < g.NumNodes(); s += 3 {
		row, err := e.FromSource(g, hin.NodeID(s))
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(row[tgt] - col[s]); diff > 1e-8 {
			t.Fatalf("PPR(%d,%d): row %g vs column %g", s, tgt, row[tgt], col[s])
		}
	}
}

func TestForwardPushAgreesWithPower(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		g := randomBidirGraph(rng, 10+rng.Intn(20), rng.Intn(40))
		pw := NewPower(testParams())
		fp := NewForwardPush(testParams())
		s := hin.NodeID(rng.Intn(g.NumNodes()))
		exact, err := pw.FromSource(g, s)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := fp.FromSource(g, s)
		if err != nil {
			t.Fatal(err)
		}
		for v := range exact {
			if diff := math.Abs(exact[v] - approx[v]); diff > 1e-6 {
				t.Fatalf("trial %d: PPR(%d,%d) power %g vs push %g", trial, s, v, exact[v], approx[v])
			}
		}
	}
}

func TestReversePushAgreesWithPower(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		g := randomBidirGraph(rng, 10+rng.Intn(20), rng.Intn(40))
		pw := NewPower(testParams())
		rp := NewReversePush(testParams())
		tgt := hin.NodeID(rng.Intn(g.NumNodes()))
		exact, err := pw.ToTarget(g, tgt)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := rp.ToTarget(g, tgt)
		if err != nil {
			t.Fatal(err)
		}
		for v := range exact {
			if diff := math.Abs(exact[v] - approx[v]); diff > 1e-6 {
				t.Fatalf("trial %d: PPR(%d,%d) power %g vs reverse push %g", trial, v, tgt, exact[v], approx[v])
			}
		}
	}
}

func TestForwardPushInvariantEq3(t *testing.T) {
	// PPR(s,t) = P(s,t) + Σ_x R(s,x)·PPR(x,t): verify with a loose
	// epsilon so residuals are substantial.
	rng := rand.New(rand.NewSource(21))
	g := randomBidirGraph(rng, 12, 20)
	p := testParams()
	p.Epsilon = 1e-3 // deliberately coarse
	fp := NewForwardPush(p)
	pw := NewPower(testParams())
	s := hin.NodeID(0)
	res, err := fp.Run(g, s)
	if err != nil {
		t.Fatal(err)
	}
	for tgt := 0; tgt < g.NumNodes(); tgt += 2 {
		exactCol, err := pw.ToTarget(g, hin.NodeID(tgt))
		if err != nil {
			t.Fatal(err)
		}
		recon := res.Estimates[tgt]
		for x := range res.Residuals {
			if res.Residuals[x] > 0 {
				recon += res.Residuals[x] * exactCol[x]
			}
		}
		exactRow, err := pw.FromSource(g, s)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(recon - exactRow[tgt]); diff > 1e-7 {
			t.Fatalf("Eq.3 invariant violated at t=%d: recon %g vs exact %g", tgt, recon, exactRow[tgt])
		}
	}
}

func TestReversePushInvariantEq4(t *testing.T) {
	// PPR(s,t) = P(s,t) + Σ_x PPR(s,x)·R(x,t).
	rng := rand.New(rand.NewSource(22))
	g := randomBidirGraph(rng, 12, 20)
	p := testParams()
	p.Epsilon = 1e-3
	rp := NewReversePush(p)
	pw := NewPower(testParams())
	tgt := hin.NodeID(3)
	res, err := rp.Run(g, tgt)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < g.NumNodes(); s += 2 {
		exactRow, err := pw.FromSource(g, hin.NodeID(s))
		if err != nil {
			t.Fatal(err)
		}
		recon := res.Estimates[s]
		for x := range res.Residuals {
			if res.Residuals[x] > 0 {
				recon += exactRow[x] * res.Residuals[x]
			}
		}
		if diff := math.Abs(recon - exactRow[tgt]); diff > 1e-7 {
			t.Fatalf("Eq.4 invariant violated at s=%d: recon %g vs exact %g", s, recon, exactRow[tgt])
		}
	}
}

func TestPPRLinearityOverOutEdges(t *testing.T) {
	// PPR(u,t) = α[u==t] + (1−α) Σ_n W(u,n) PPR(n,t) — the identity
	// EMiGRe's contribution functions rely on (DESIGN.md §3.1).
	rng := rand.New(rand.NewSource(33))
	g := randomBidirGraph(rng, 15, 25)
	p := testParams()
	pw := NewPower(p)
	tgt := hin.NodeID(9)
	col, err := pw.ToTarget(g, tgt)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumNodes(); u++ {
		var acc float64
		total := g.OutWeightSum(hin.NodeID(u))
		g.OutEdges(hin.NodeID(u), func(h hin.HalfEdge) bool {
			acc += h.Weight / total * col[h.Node]
			return true
		})
		want := (1 - p.Alpha) * acc
		if hin.NodeID(u) == tgt {
			want += p.Alpha
		}
		if diff := math.Abs(col[u] - want); diff > 1e-8 {
			t.Fatalf("linearity violated at u=%d: PPR %g vs decomposition %g", u, col[u], want)
		}
	}
}

func TestMonteCarloApproximatesPower(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	g := randomBidirGraph(rng, 10, 15)
	p := testParams()
	p.Walks = 200000
	p.Seed = 99
	mc := NewMonteCarlo(p)
	pw := NewPower(p)
	s := hin.NodeID(2)
	exact, err := pw.FromSource(g, s)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := mc.FromSource(g, s)
	if err != nil {
		t.Fatal(err)
	}
	for v := range exact {
		if diff := math.Abs(exact[v] - approx[v]); diff > 0.01 {
			t.Fatalf("MC error too large at %d: %g vs %g", v, exact[v], approx[v])
		}
	}
}

func TestMonteCarloDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	g := randomBidirGraph(rng, 8, 10)
	p := testParams()
	p.Walks = 1000
	mc := NewMonteCarlo(p)
	a, err := mc.FromSource(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mc.FromSource(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Monte Carlo not deterministic for fixed seed")
		}
	}
}

func TestPPRSumsToOneOnStochasticGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	g := randomBidirGraph(rng, 20, 40) // bidirectional: no dangling nodes
	pw := NewPower(testParams())
	v, err := pw.FromSource(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.Sum()-1) > 1e-9 {
		t.Fatalf("PPR mass = %g, want 1", v.Sum())
	}
	for i, x := range v {
		if x < 0 {
			t.Fatalf("negative score at %d: %g", i, x)
		}
	}
}

func TestParamValidation(t *testing.T) {
	bad := []Params{
		{Alpha: 0, Epsilon: 1e-8, MaxIter: 10},
		{Alpha: 1, Epsilon: 1e-8, MaxIter: 10},
		{Alpha: 0.5, Epsilon: 0, MaxIter: 10},
		{Alpha: 0.5, Epsilon: 1e-8, MaxIter: 0},
		{Alpha: math.NaN(), Epsilon: 1e-8, MaxIter: 10},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("params #%d should be invalid: %+v", i, p)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestEngineNodeRangeErrors(t *testing.T) {
	g, _ := lineGraph(t)
	p := testParams()
	engines := []Engine{NewPower(p), NewForwardPush(p), NewMonteCarlo(p)}
	for _, e := range engines {
		if _, err := e.FromSource(g, -1); !errors.Is(err, ErrNodeOutOfRange) {
			t.Fatalf("%s: err = %v, want ErrNodeOutOfRange", e.Name(), err)
		}
		if _, err := e.FromSource(g, 99); !errors.Is(err, ErrNodeOutOfRange) {
			t.Fatalf("%s: err = %v, want ErrNodeOutOfRange", e.Name(), err)
		}
	}
	for _, e := range []ReverseEngine{NewPower(p), NewReversePush(p)} {
		if _, err := e.ToTarget(g, 99); !errors.Is(err, ErrNodeOutOfRange) {
			t.Fatalf("%s: err = %v, want ErrNodeOutOfRange", e.Name(), err)
		}
	}
}

func TestVectorHelpers(t *testing.T) {
	v := Vector{0.1, 0.5, 0.4}
	if got := v.ArgMax(); got != 1 {
		t.Fatalf("ArgMax = %d, want 1", got)
	}
	if math.Abs(v.Sum()-1.0) > 1e-15 {
		t.Fatalf("Sum = %g, want 1", v.Sum())
	}
	var empty Vector
	if got := empty.ArgMax(); got != hin.InvalidNode {
		t.Fatalf("ArgMax(empty) = %d, want InvalidNode", got)
	}
	tie := Vector{0.5, 0.5}
	if got := tie.ArgMax(); got != 0 {
		t.Fatalf("ArgMax should break ties toward lowest index, got %d", got)
	}
}

func TestQuickPushAgreement(t *testing.T) {
	// Property: forward push and reverse push agree on PPR(s,t) for
	// random graphs, sources and targets.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBidirGraph(rng, 5+rng.Intn(15), rng.Intn(30))
		s := hin.NodeID(rng.Intn(g.NumNodes()))
		tgt := hin.NodeID(rng.Intn(g.NumNodes()))
		p := testParams()
		fwd, err := NewForwardPush(p).FromSource(g, s)
		if err != nil {
			return false
		}
		rev, err := NewReversePush(p).ToTarget(g, tgt)
		if err != nil {
			return false
		}
		return math.Abs(fwd[tgt]-rev[s]) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerNoConvergenceError(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	g := randomBidirGraph(rng, 30, 60)
	p := testParams()
	p.MaxIter = 1
	p.Tol = 1e-300
	if _, err := NewPower(p).FromSource(g, 0); !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
	if _, err := NewPower(p).ToTarget(g, 0); !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
}
