package ppr

import (
	"context"
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/why-not-xai/emigre/internal/hin"
)

// FuzzDeltaPPREquivalence is the randomized contract check behind the
// warm-start refactor: for any base graph and any stacked sequence of
// row edits, UpdateForEdit applied to the cold base push state must
// agree with a full recomputation of the edited view — forward rows
// and reverse columns alike. The fuzz input seeds the generator: the
// first 8 bytes pick the graph, the next byte the edit count, so every
// corpus entry is a fully deterministic scenario.
func FuzzDeltaPPREquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 42, 2})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 7, 3})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0x13, 0x37, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 9 {
			t.Skip("need 8 seed bytes + 1 edit-count byte")
		}
		seed := int64(binary.BigEndian.Uint64(data[:8]))
		nEdits := 1 + int(data[8]%4)
		rng := rand.New(rand.NewSource(seed))

		nodes := 8 + rng.Intn(16)
		g := randomBidirGraph(rng, nodes, nodes+rng.Intn(2*nodes))
		params := testParams()
		s := hin.NodeID(rng.Intn(nodes))

		// Stack nEdits single-row overlays; the warm start sees only the
		// outermost view plus the union of edited rows.
		var view hin.View = g
		touched := map[hin.NodeID]bool{}
		for i := 0; i < nEdits; i++ {
			u := hin.NodeID(rng.Intn(nodes))
			view = toggleRowOverlay(t, g, view, u, rng)
			touched[u] = true
		}
		rows := make([]hin.NodeID, 0, len(touched))
		for u := range touched {
			rows = append(rows, u)
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })

		fwd := NewForwardPush(params)
		base, err := fwd.Run(g, s)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := fwd.UpdateForEdit(context.Background(), g, view, base, rows, nil)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := NewPower(params).FromSource(view, s)
		if err != nil {
			t.Fatal(err)
		}
		for v := range exact {
			if diff := math.Abs(exact[v] - warm.Estimates[v]); diff > 1e-6 {
				t.Fatalf("forward PPR(%d,%d): warm %g vs exact %g (diff %g, %d edits)",
					s, v, warm.Estimates[v], exact[v], diff, nEdits)
			}
		}

		// Reverse columns: same contract from the target side.
		rev := NewReversePush(params)
		rbase, err := rev.Run(g, s)
		if err != nil {
			t.Fatal(err)
		}
		rwarm, err := rev.UpdateForEdit(context.Background(), g, view, rbase, rows, nil)
		if err != nil {
			t.Fatal(err)
		}
		rexact := exactReverseColumn(t, view, s)
		for v := range rexact {
			if diff := math.Abs(rexact[v] - rwarm.Estimates[v]); diff > 1e-6 {
				t.Fatalf("reverse PPR(%d,%d): warm %g vs exact %g (diff %g, %d edits)",
					v, s, rwarm.Estimates[v], rexact[v], diff, nEdits)
			}
		}
	})
}
