package ppr

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"github.com/why-not-xai/emigre/internal/hin"
)

// canceledCtx returns an already-canceled context: every engine must
// notice it and bail out instead of running the full computation.
func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestEnginesHonorCanceledContext(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomBidirGraph(rng, 30, 60)
	p := testParams()
	s := hin.NodeID(3)

	cases := []struct {
		name string
		run  func(ctx context.Context) error
	}{
		{"Power.FromSource", func(ctx context.Context) error {
			_, err := NewPower(p).FromSourceContext(ctx, g, s)
			return err
		}},
		{"Power.ToTarget", func(ctx context.Context) error {
			_, err := NewPower(p).ToTargetContext(ctx, g, s)
			return err
		}},
		{"ForwardPush", func(ctx context.Context) error {
			_, err := NewForwardPush(p).FromSourceContext(ctx, g, s)
			return err
		}},
		{"ReversePush", func(ctx context.Context) error {
			_, err := NewReversePush(p).ToTargetContext(ctx, g, s)
			return err
		}},
		{"MonteCarlo", func(ctx context.Context) error {
			_, err := NewMonteCarlo(p).FromSourceContext(ctx, g, s)
			return err
		}},
		{"NewDynamicForwardPush", func(ctx context.Context) error {
			_, err := NewDynamicForwardPushContext(ctx, p, g, s)
			return err
		}},
		{"DynamicForwardPush.Update", func(ctx context.Context) error {
			dyn, err := NewDynamicForwardPush(p, g, s)
			if err != nil {
				t.Fatal(err)
			}
			o := applyUserEdits(t, g, s, rng)
			return dyn.UpdateContext(ctx, o, s)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.run(canceledCtx()); !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			// The same call with a live context must still work: the
			// cancellation paths must not corrupt the happy path.
			if err := tc.run(context.Background()); err != nil {
				t.Fatalf("background ctx: %v", err)
			}
		})
	}
}

func TestNonContextEntryPointsIgnoreCancellation(t *testing.T) {
	g, ids := lineGraph(t)
	e := NewForwardPush(testParams())
	// FromSource delegates to a background context and must succeed.
	if _, err := e.FromSource(g, ids[0]); err != nil {
		t.Fatalf("FromSource: %v", err)
	}
}
