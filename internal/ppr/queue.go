package ppr

import "github.com/why-not-xai/emigre/internal/hin"

// nodeQueue is the FIFO work queue of the push loops: a fixed-capacity
// ring over the nodes of one graph. The engines enqueue a node only
// when its inQueue mark is clear, so at most n nodes are ever live and
// the ring (n+1 slots to tell full from empty) never reallocates —
// the previous slice queue popped by reslicing, which burned its
// capacity from the front and made append reallocate in the inner
// loop. One setup allocation, zero per push; TestForwardPushAllocsConstant
// and the ESCAPES.json gate hold it there.
type nodeQueue struct {
	ring []hin.NodeID
	head int
	tail int
}

func newNodeQueue(n int) nodeQueue {
	return nodeQueue{ring: make([]hin.NodeID, n+1)}
}

func (q *nodeQueue) empty() bool { return q.head == q.tail }

func (q *nodeQueue) push(v hin.NodeID) {
	q.ring[q.tail] = v
	q.tail++
	if q.tail == len(q.ring) {
		q.tail = 0
	}
}

func (q *nodeQueue) pop() hin.NodeID {
	v := q.ring[q.head]
	q.head++
	if q.head == len(q.ring) {
		q.head = 0
	}
	return v
}
