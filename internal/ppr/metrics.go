package ppr

import "github.com/why-not-xai/emigre/internal/obs"

// Engine-level metrics, exported on the process-global obs registry:
// the engines already tally their work locally (push counts, power
// sweeps, walk counts), so instrumentation is a handful of batched
// counter adds at the end of each run — never inside the hot loops.
// The residual-mass histogram needs an O(n) sum the engines do not
// otherwise compute; it is gated on obs.Enabled so disabling metrics
// removes the pass entirely.
var (
	runsForward = obs.Default().Counter("emigre_ppr_runs_total",
		"Completed PPR engine runs by engine.", obs.L("engine", "forward_push"))
	runsReverse = obs.Default().Counter("emigre_ppr_runs_total",
		"Completed PPR engine runs by engine.", obs.L("engine", "reverse_push"))
	runsPower = obs.Default().Counter("emigre_ppr_runs_total",
		"Completed PPR engine runs by engine.", obs.L("engine", "power"))
	runsMonteCarlo = obs.Default().Counter("emigre_ppr_runs_total",
		"Completed PPR engine runs by engine.", obs.L("engine", "monte_carlo"))

	pushesForward = obs.Default().Counter("emigre_ppr_pushes_total",
		"Individual local-push operations by engine.", obs.L("engine", "forward_push"))
	pushesReverse = obs.Default().Counter("emigre_ppr_pushes_total",
		"Individual local-push operations by engine.", obs.L("engine", "reverse_push"))
	pushesDynamic = obs.Default().Counter("emigre_ppr_pushes_total",
		"Individual local-push operations by engine.", obs.L("engine", "dynamic"))

	powerIterations = obs.Default().Counter("emigre_ppr_iterations_total",
		"Power-iteration sweeps (each O(E)) across both directions.")
	walkChunks = obs.Default().Counter("emigre_ppr_walks_total",
		"Monte Carlo random walks sampled.")
	dynamicUpdates = obs.Default().Counter("emigre_ppr_dynamic_updates_total",
		"Dynamic forward-push incremental updates applied.")

	// residualMass spans n·ε (the push termination bound, ~1e-3 on the
	// paper's graphs) down to fully drained vectors.
	residualMassForward = obs.Default().Histogram("emigre_ppr_residual_mass",
		"Terminal residual L1 mass of completed push runs.",
		obs.ExpBuckets(1e-9, 10, 10), obs.L("engine", "forward_push"))
	residualMassReverse = obs.Default().Histogram("emigre_ppr_residual_mass",
		"Terminal residual L1 mass of completed push runs.",
		obs.ExpBuckets(1e-9, 10, 10), obs.L("engine", "reverse_push"))
)

// recordPush tallies one completed static push run.
func recordPush(runs, pushes *obs.Counter, hist *obs.Histogram, res *PushResult) {
	if !obs.Enabled() {
		return
	}
	runs.Inc()
	pushes.Add(int64(res.Pushes))
	var mass float64
	for _, r := range res.Residuals {
		mass += abs(r)
	}
	hist.Observe(mass)
}
