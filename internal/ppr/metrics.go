package ppr

import "github.com/why-not-xai/emigre/internal/obs"

// Engine-level metrics, exported on the process-global obs registry:
// the engines already tally their work locally (push counts, power
// sweeps, walk counts), so instrumentation is a handful of batched
// counter adds at the end of each run — never inside the hot loops.
// The residual-mass histogram needs an O(n) sum the engines do not
// otherwise compute; it is gated on obs.Enabled so disabling metrics
// removes the pass entirely.
// Each family's name literal lives in exactly one helper so help
// strings and bucket layouts cannot drift between per-engine variants
// (the metricname vet check enforces this repo-wide).
func runsCounter(engine string) *obs.Counter {
	return obs.Default().Counter("emigre_ppr_runs_total",
		"Completed PPR engine runs by engine.", obs.L("engine", engine))
}

func pushesCounter(engine string) *obs.Counter {
	return obs.Default().Counter("emigre_ppr_pushes_total",
		"Individual local-push operations by engine.", obs.L("engine", engine))
}

// residualMassHistogram spans n·ε (the push termination bound, ~1e-3 on
// the paper's graphs) down to fully drained vectors.
func residualMassHistogram(engine string) *obs.Histogram {
	return obs.Default().Histogram("emigre_ppr_residual_mass",
		"Terminal residual L1 mass of completed push runs.",
		obs.ExpBuckets(1e-9, 10, 10), obs.L("engine", engine))
}

var (
	runsForward       = runsCounter("forward_push")
	runsReverse       = runsCounter("reverse_push")
	runsPower         = runsCounter("power")
	runsMonteCarlo    = runsCounter("monte_carlo")
	runsForwardUpdate = runsCounter("forward_update")
	runsReverseUpdate = runsCounter("reverse_update")

	pushesForward       = pushesCounter("forward_push")
	pushesReverse       = pushesCounter("reverse_push")
	pushesDynamic       = pushesCounter("dynamic")
	pushesForwardUpdate = pushesCounter("forward_update")
	pushesReverseUpdate = pushesCounter("reverse_update")

	powerIterations = obs.Default().Counter("emigre_ppr_iterations_total",
		"Power-iteration sweeps (each O(E)) across both directions.")
	walkChunks = obs.Default().Counter("emigre_ppr_walks_total",
		"Monte Carlo random walks sampled.")
	dynamicUpdates = obs.Default().Counter("emigre_ppr_dynamic_updates_total",
		"Dynamic forward-push incremental updates applied.")

	residualMassForward       = residualMassHistogram("forward_push")
	residualMassReverse       = residualMassHistogram("reverse_push")
	residualMassForwardUpdate = residualMassHistogram("forward_update")
	residualMassReverseUpdate = residualMassHistogram("reverse_update")
)

// recordPush tallies one completed static push run.
func recordPush(runs, pushes *obs.Counter, hist *obs.Histogram, res *PushResult) {
	if !obs.Enabled() {
		return
	}
	runs.Inc()
	pushes.Add(int64(res.Pushes))
	var mass float64
	for _, r := range res.Residuals {
		mass += abs(r)
	}
	hist.Observe(mass)
}
