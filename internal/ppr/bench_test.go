package ppr

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/why-not-xai/emigre/internal/hin"
)

// benchGraph builds a random bidirectional graph and its CSR snapshot.
func benchGraph(nodes, extra int) (*hin.Graph, *hin.CSR) {
	rng := rand.New(rand.NewSource(42))
	g := randomBidirGraph(rng, nodes, extra)
	return g, hin.NewCSR(g)
}

func benchSizes() []struct{ nodes, extra int } {
	return []struct{ nodes, extra int }{
		{nodes: 500, extra: 2000},
		{nodes: 5000, extra: 20000},
	}
}

func BenchmarkForwardPush(b *testing.B) {
	for _, sz := range benchSizes() {
		g, csr := benchGraph(sz.nodes, sz.extra)
		params := DefaultParams()
		b.Run(fmt.Sprintf("n=%d/graph", sz.nodes), func(b *testing.B) {
			e := NewForwardPush(params)
			for i := 0; i < b.N; i++ {
				if _, err := e.FromSource(g, hin.NodeID(i%sz.nodes)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/csr", sz.nodes), func(b *testing.B) {
			e := NewForwardPush(params)
			for i := 0; i < b.N; i++ {
				if _, err := e.FromSource(csr, hin.NodeID(i%sz.nodes)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReversePush(b *testing.B) {
	for _, sz := range benchSizes() {
		_, csr := benchGraph(sz.nodes, sz.extra)
		params := DefaultParams()
		b.Run(fmt.Sprintf("n=%d", sz.nodes), func(b *testing.B) {
			e := NewReversePush(params)
			for i := 0; i < b.N; i++ {
				if _, err := e.ToTarget(csr, hin.NodeID(i%sz.nodes)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPowerIteration(b *testing.B) {
	g, _ := benchGraph(500, 2000)
	params := DefaultParams()
	params.Tol = 1e-10
	e := NewPower(params)
	b.Run("from-source", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.FromSource(g, hin.NodeID(i%500)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("to-target", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.ToTarget(g, hin.NodeID(i%500)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMonteCarlo(b *testing.B) {
	g, _ := benchGraph(500, 2000)
	params := DefaultParams()
	params.Walks = 10000
	e := NewMonteCarlo(params)
	for i := 0; i < b.N; i++ {
		if _, err := e.FromSource(g, hin.NodeID(i%500)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDynamicVsStatic is the ablation for the §5.3
// optimization: the cost of evaluating a counterfactual (one user
// out-row edit) with a fresh forward push versus the dynamic repair.
func BenchmarkAblationDynamicVsStatic(b *testing.B) {
	g, csr := benchGraph(5000, 20000)
	params := DefaultParams()
	rng := rand.New(rand.NewSource(9))
	s := hin.NodeID(3)
	u := s
	et, _ := g.Types().LookupEdgeType("e")

	// Pre-build a pool of counterfactual overlays toggling u's edges.
	var overlays []*hin.Overlay
	edges := g.OutEdgesOfType(u, hin.NewEdgeTypeSet())
	for i := 0; i < 16 && i < len(edges); i++ {
		o, err := hin.NewOverlay(csr, []hin.Edge{edges[i%len(edges)]},
			[]hin.Edge{{From: u, To: hin.NodeID((i*37 + 11) % 5000), Type: et, Weight: 0.8}})
		if err != nil {
			continue
		}
		overlays = append(overlays, o)
	}
	if len(overlays) == 0 {
		b.Skip("no overlays constructible")
	}
	_ = rng

	b.Run("static-recompute", func(b *testing.B) {
		e := NewForwardPush(params)
		for i := 0; i < b.N; i++ {
			if _, err := e.FromSource(overlays[i%len(overlays)], s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dynamic-update", func(b *testing.B) {
		dyn, err := NewDynamicForwardPush(params, csr, s)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := dyn.Update(overlays[i%len(overlays)], u); err != nil {
				b.Fatal(err)
			}
		}
	})
}
