package ppr

import (
	"math/rand"
	"testing"

	"github.com/why-not-xai/emigre/internal/hin"
)

func TestEngineNames(t *testing.T) {
	p := DefaultParams()
	names := map[string]string{
		NewPower(p).Name():       "power",
		NewForwardPush(p).Name(): "forward-push",
		NewReversePush(p).Name(): "reverse-push",
		NewMonteCarlo(p).Name():  "monte-carlo",
		NewExact(p).Name():       "exact",
	}
	for got, want := range names {
		if got != want {
			t.Fatalf("engine name %q, want %q", got, want)
		}
	}
}

func TestDynamicSourceAccessor(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomBidirGraph(rng, 8, 12)
	dyn, err := NewDynamicForwardPush(testParams(), g, hin.NodeID(3))
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Source() != 3 {
		t.Fatalf("Source = %d, want 3", dyn.Source())
	}
}
