package ppr

import "github.com/why-not-xai/emigre/internal/fault"

// Failpoint sites inside each engine's inner loop, consulted on the
// same cadence as the cancellation polls (every ctxCheckInterval queue
// steps / walks, or once per power-iteration sweep) so an armed site
// costs nothing extra on the unarmed hot path and fires mid-computation
// when armed — exactly where a real engine failure (OOM-killed shard,
// corrupted snapshot read, scheduling stall) would surface.
var (
	forwardLoopSite = fault.Register("ppr.forward.loop")
	reverseLoopSite = fault.Register("ppr.reverse.loop")
	powerSweepSite  = fault.Register("ppr.power.sweep")
	mcWalkSite      = fault.Register("ppr.montecarlo.walk")
	dynamicLoopSite = fault.Register("ppr.dynamic.loop")
	updateLoopSite  = fault.Register("ppr.update.loop")
)
