package ppr

import (
	"fmt"
	"math"

	"github.com/why-not-xai/emigre/internal/fmath"
	"github.com/why-not-xai/emigre/internal/hin"
)

// Exact solves the PPR linear system directly by Gaussian elimination
// with partial pivoting:
//
//	π_s (I − (1−α)W) = α e_s
//
// It is O(n³) and exists as the ground-truth oracle for validating the
// iterative engines on small graphs (the engines' own agreement tests
// are circular without an independent reference). Refuses graphs
// larger than MaxNodes.
type Exact struct {
	Params Params
	// MaxNodes bounds the dense solve; default 512.
	MaxNodes int
}

// DefaultExactMaxNodes bounds the dense O(n³) solve.
const DefaultExactMaxNodes = 512

// NewExact returns the dense direct solver.
func NewExact(p Params) *Exact { return &Exact{Params: p, MaxNodes: DefaultExactMaxNodes} }

// Name implements Engine.
func (e *Exact) Name() string { return "exact" }

// FromSource solves for the full row π_s.
func (e *Exact) FromSource(g hin.View, s hin.NodeID) (Vector, error) {
	if err := e.Params.Validate(); err != nil {
		return nil, err
	}
	if err := checkNode(g, s); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	limit := e.MaxNodes
	if limit == 0 {
		limit = DefaultExactMaxNodes
	}
	if n > limit {
		return nil, fmt.Errorf("ppr: exact solver limited to %d nodes, graph has %d", limit, n)
	}
	// Row system: π (I − (1−α)W) = α e_s  ⇔  (I − (1−α)Wᵀ) πᵀ = α e_s.
	alpha := e.Params.Alpha
	a := make([][]float64, n) // dense (I − (1−α)Wᵀ)
	for i := range a {
		a[i] = make([]float64, n)
		a[i][i] = 1
	}
	for v := 0; v < n; v++ {
		total := g.OutWeightSum(hin.NodeID(v))
		if total <= 0 {
			continue
		}
		g.OutEdges(hin.NodeID(v), func(h hin.HalfEdge) bool {
			// W(v, h.Node) contributes to row h.Node of Wᵀ.
			a[h.Node][v] -= (1 - alpha) * h.Weight / total
			return true
		})
	}
	b := make([]float64, n)
	b[s] = alpha
	if err := solveInPlace(a, b); err != nil {
		return nil, err
	}
	return b, nil
}

// solveInPlace performs Gaussian elimination with partial pivoting on
// the augmented system [a | b], leaving the solution in b.
func solveInPlace(a [][]float64, b []float64) error {
	n := len(a)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best = v
				pivot = r
			}
		}
		if best < 1e-14 {
			return fmt.Errorf("ppr: singular system at column %d", col)
		}
		if pivot != col {
			a[pivot], a[col] = a[col], a[pivot]
			b[pivot], b[col] = b[col], b[pivot]
		}
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if fmath.Eq(f, 0) {
				continue
			}
			a[r][col] = 0
			for c := col + 1; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		sum := b[col]
		for c := col + 1; c < n; c++ {
			sum -= a[col][c] * b[c]
		}
		b[col] = sum / a[col][col]
	}
	return nil
}
