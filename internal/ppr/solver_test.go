package ppr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/why-not-xai/emigre/internal/hin"
)

func TestExactMatchesPowerIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 10; trial++ {
		g := randomBidirGraph(rng, 5+rng.Intn(25), rng.Intn(60))
		s := hin.NodeID(rng.Intn(g.NumNodes()))
		params := testParams()
		exact, err := NewExact(params).FromSource(g, s)
		if err != nil {
			t.Fatal(err)
		}
		iter, err := NewPower(params).FromSource(g, s)
		if err != nil {
			t.Fatal(err)
		}
		for v := range exact {
			if diff := math.Abs(exact[v] - iter[v]); diff > 1e-8 {
				t.Fatalf("trial %d: π(%d,%d) exact %g vs power %g", trial, s, v, exact[v], iter[v])
			}
		}
	}
}

func TestExactMatchesForwardPush(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	g := randomBidirGraph(rng, 30, 80)
	params := testParams()
	s := hin.NodeID(3)
	exact, err := NewExact(params).FromSource(g, s)
	if err != nil {
		t.Fatal(err)
	}
	push, err := NewForwardPush(params).FromSource(g, s)
	if err != nil {
		t.Fatal(err)
	}
	for v := range exact {
		if diff := math.Abs(exact[v] - push[v]); diff > 1e-6 {
			t.Fatalf("π(%d,%d) exact %g vs push %g", s, v, exact[v], push[v])
		}
	}
}

func TestExactDanglingGraph(t *testing.T) {
	g, ids := lineGraph(t) // u -> a -> b, b dangling
	params := testParams()
	exact, err := NewExact(params).FromSource(g, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	alpha := params.Alpha
	want := []float64{alpha, (1 - alpha) * alpha, (1 - alpha) * (1 - alpha) * alpha}
	for i, node := range ids {
		if diff := math.Abs(exact[node] - want[i]); diff > 1e-12 {
			t.Fatalf("π(u,%d) = %g, want %g", node, exact[node], want[i])
		}
	}
}

func TestExactNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	g := randomBidirGraph(rng, 40, 60)
	e := NewExact(testParams())
	e.MaxNodes = 10
	if _, err := e.FromSource(g, 0); err == nil {
		t.Fatal("expected node-limit error")
	}
	if _, err := NewExact(testParams()).FromSource(g, -1); err == nil {
		t.Fatal("expected range error")
	}
}

func TestQuickExactAgreesWithPush(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBidirGraph(rng, 4+rng.Intn(12), rng.Intn(24))
		s := hin.NodeID(rng.Intn(g.NumNodes()))
		params := testParams()
		exact, err := NewExact(params).FromSource(g, s)
		if err != nil {
			return false
		}
		push, err := NewForwardPush(params).FromSource(g, s)
		if err != nil {
			return false
		}
		for v := range exact {
			if math.Abs(exact[v]-push[v]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
