package ppr

import (
	"strings"
	"testing"
)

// TestIdentityDistinguishesParams checks that every engine folds the
// parameters it reads into its cache identity.
func TestIdentityDistinguishesParams(t *testing.T) {
	base := DefaultParams()
	alt := base
	alt.Alpha = 0.3
	engines := func(p Params) []Identifier {
		return []Identifier{NewPower(p), NewForwardPush(p), NewReversePush(p), NewMonteCarlo(p)}
	}
	for i, e := range engines(base) {
		a, b := e.Identity(), engines(alt)[i].Identity()
		if a == b {
			t.Errorf("%T: identity ignores Alpha: %q", e, a)
		}
		if a != engines(base)[i].Identity() {
			t.Errorf("%T: identity is not stable", e)
		}
	}
}

// TestMonteCarloIdentityIncludesSeed is the regression test for the
// cache honesty of randomized estimates: two Monte Carlo engines that
// differ only in their Seed (or Walks) must have distinct identities,
// so their estimates can never collide under one cache key.
func TestMonteCarloIdentityIncludesSeed(t *testing.T) {
	p1 := DefaultParams()
	p2 := p1
	p2.Seed = p1.Seed + 1
	if NewMonteCarlo(p1).Identity() == NewMonteCarlo(p2).Identity() {
		t.Fatalf("identities collide across seeds: %q", NewMonteCarlo(p1).Identity())
	}
	p3 := p1
	p3.Walks = p1.Walks * 2
	if NewMonteCarlo(p1).Identity() == NewMonteCarlo(p3).Identity() {
		t.Fatalf("identities collide across walk counts: %q", NewMonteCarlo(p1).Identity())
	}
	if !strings.Contains(NewMonteCarlo(p1).Identity(), "seed=") {
		t.Fatalf("identity %q does not name its seed", NewMonteCarlo(p1).Identity())
	}
}

// TestDeterministicIdentitiesIgnoreSeed pins the opposite property: the
// deterministic engines' identities must NOT move with Seed or Walks,
// or identical cached vectors would be needlessly recomputed.
func TestDeterministicIdentitiesIgnoreSeed(t *testing.T) {
	p1 := DefaultParams()
	p2 := p1
	p2.Seed = 99
	p2.Walks = 7
	for _, pair := range [][2]Identifier{
		{NewPower(p1), NewPower(p2)},
		{NewForwardPush(p1), NewForwardPush(p2)},
		{NewReversePush(p1), NewReversePush(p2)},
	} {
		if pair[0].Identity() != pair[1].Identity() {
			t.Errorf("%T: identity moves with Monte Carlo-only params: %q vs %q",
				pair[0], pair[0].Identity(), pair[1].Identity())
		}
	}
}

// TestIdentitiesDistinctAcrossEngines guards against two different
// algorithms sharing an identity string.
func TestIdentitiesDistinctAcrossEngines(t *testing.T) {
	p := DefaultParams()
	seen := map[string]string{}
	for _, e := range []Identifier{NewPower(p), NewForwardPush(p), NewReversePush(p), NewMonteCarlo(p)} {
		id := e.Identity()
		if prev, dup := seen[id]; dup {
			t.Fatalf("engines %T and %s share identity %q", e, prev, id)
		}
		seen[id] = id
	}
}
