package ppr

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/why-not-xai/emigre/internal/hin"
)

// MonteCarlo estimates PPR(s,·) as the terminal-node frequency of
// α-terminated random walks: the walk restarts... rather, terminates at
// its current node with probability α at every step, so
//
//	P(walk from s ends at v) = Σ_k α(1−α)^k · P(X_k = v) = PPR(s, v).
//
// A walk reaching a dangling node is absorbed without producing a
// terminal sample, matching the sub-stochastic convention of the other
// engines. MonteCarlo is used for ablation benchmarks; it is not
// accurate enough for EMiGRe's tight score comparisons.
type MonteCarlo struct {
	Params Params
}

// NewMonteCarlo returns a Monte Carlo engine with the given parameters.
func NewMonteCarlo(p Params) *MonteCarlo { return &MonteCarlo{Params: p} }

// Name implements Engine.
func (e *MonteCarlo) Name() string { return "monte-carlo" }

// Identity implements Identifier. Unlike the deterministic engines, a
// Monte Carlo estimate depends on the RNG stream: the walk count AND
// the seed are part of the identity, so two differently-seeded
// estimates can never collide under one cache key.
func (e *MonteCarlo) Identity() string {
	walks := e.Params.Walks
	if walks <= 0 {
		walks = 10000 // the engine's fallback, mirrored here for honesty
	}
	return fmt.Sprintf("monte-carlo/a=%g,walks=%d,seed=%d", e.Params.Alpha, walks, e.Params.Seed)
}

// FromSource samples Params.Walks random walks from s and returns the
// empirical terminal distribution. The engine is deterministic for a
// fixed Params.Seed.
func (e *MonteCarlo) FromSource(g hin.View, s hin.NodeID) (Vector, error) {
	return e.FromSourceContext(context.Background(), g, s)
}

// FromSourceContext is FromSource with cancellation: the context is
// checked every ctxCheckInterval walks and sampling aborts with
// ctx.Err().
func (e *MonteCarlo) FromSourceContext(ctx context.Context, g hin.View, s hin.NodeID) (Vector, error) {
	if err := e.Params.Validate(); err != nil {
		return nil, err
	}
	if err := checkNode(g, s); err != nil {
		return nil, err
	}
	walks := e.Params.Walks
	if walks <= 0 {
		walks = 10000
	}
	rng := rand.New(rand.NewSource(e.Params.Seed))
	counts := make([]int, g.NumNodes())
	for i := 0; i < walks; i++ {
		if i%ctxCheckInterval == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			if err := mcWalkSite.Hit(ctx); err != nil {
				return nil, err
			}
		}
		v := s
		for {
			if rng.Float64() < e.Params.Alpha {
				counts[v]++
				break
			}
			next, ok := sampleOutEdge(g, v, rng)
			if !ok {
				break // absorbed at dangling node
			}
			v = next
		}
	}
	p := make(Vector, g.NumNodes())
	for v, c := range counts {
		p[v] = float64(c) / float64(walks)
	}
	runsMonteCarlo.Inc()
	walkChunks.Add(int64(walks))
	return p, nil
}

// sampleOutEdge picks an outgoing neighbor of v with probability
// proportional to edge weight. It reports false when v is dangling.
func sampleOutEdge(g hin.View, v hin.NodeID, rng *rand.Rand) (hin.NodeID, bool) {
	total := g.OutWeightSum(v)
	if total <= 0 {
		return hin.InvalidNode, false
	}
	target := rng.Float64() * total
	var acc float64
	next := hin.InvalidNode
	g.OutEdges(v, func(h hin.HalfEdge) bool {
		acc += h.Weight
		next = h.Node
		return acc < target
	})
	if next == hin.InvalidNode {
		return hin.InvalidNode, false
	}
	return next, true
}
