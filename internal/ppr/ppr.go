// Package ppr implements Personalized PageRank (PPR) over a HIN view,
// the scoring substrate of the paper's recommender (§3.2):
//
//	PPR(s,·) = α·e_s + (1−α)·PPR(s,·)·W           (Eq. 1)
//
// where W is the row-stochastic transition matrix induced by outgoing
// edge weights. Four interchangeable engines are provided:
//
//   - Power: dense (reverse-)power iteration, the exact reference;
//   - ForwardPush: Forward Local Push from a source node, maintaining the
//     invariant of Eq. 3 of the paper (estimates + residuals);
//   - ReversePush: Reverse Local Push toward a target node, maintaining
//     the invariant of Eq. 4 — the engine EMiGRe's Add mode uses to
//     discover candidate neighbors;
//   - MonteCarlo: terminal-node frequency of α-terminated random walks,
//     used for ablations.
//
// Dangling nodes (no outgoing edges) absorb the walk: the transition
// matrix is sub-stochastic there and PPR mass is lost. This convention
// (rather than teleport-to-seed) keeps PPR(·,t) a solution of a single
// linear system, which Reverse Local Push requires; graphs produced by
// the paper's preprocessing are bidirectional, so dangling nodes do not
// occur in practice and the engines agree exactly.
package ppr

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/why-not-xai/emigre/internal/hin"
)

// Vector is a dense PPR score vector indexed by NodeID.
type Vector []float64

// Sum returns the total mass of the vector.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// ArgMax returns the index with the highest score, breaking ties toward
// the lowest index. It returns -1 for an empty vector.
func (v Vector) ArgMax() hin.NodeID {
	best := hin.InvalidNode
	bestScore := math.Inf(-1)
	for i, x := range v {
		if x > bestScore {
			bestScore = x
			best = hin.NodeID(i)
		}
	}
	return best
}

// Params configures the PPR engines.
type Params struct {
	// Alpha is the teleportation probability of Eq. 1. The paper sets
	// α = 0.15.
	Alpha float64
	// Epsilon is the residual threshold of the local-push engines. The
	// paper sets ε = 2.7e-8.
	Epsilon float64
	// MaxIter bounds power iteration.
	MaxIter int
	// Tol is the L1 convergence tolerance of power iteration.
	Tol float64
	// Walks is the number of random walks of the Monte Carlo engine.
	Walks int
	// Seed seeds the Monte Carlo engine.
	Seed int64
}

// DefaultParams returns the hyper-parameters used in the paper's
// experimental setting (§6.1): α = 0.15, ε = 2.7e-8.
func DefaultParams() Params {
	return Params{
		Alpha:   0.15,
		Epsilon: 2.7e-8,
		MaxIter: 500,
		Tol:     1e-12,
		Walks:   100000,
		Seed:    1,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Alpha <= 0 || p.Alpha >= 1 || math.IsNaN(p.Alpha) {
		return fmt.Errorf("ppr: alpha must be in (0,1), got %g", p.Alpha)
	}
	if p.Epsilon <= 0 {
		return fmt.Errorf("ppr: epsilon must be positive, got %g", p.Epsilon)
	}
	if p.MaxIter <= 0 {
		return fmt.Errorf("ppr: max iterations must be positive, got %d", p.MaxIter)
	}
	return nil
}

// Errors shared by the engines.
var (
	ErrNodeOutOfRange = errors.New("ppr: node out of range")
	ErrNoConvergence  = errors.New("ppr: power iteration did not converge")
)

func checkNode(g hin.View, v hin.NodeID) error {
	if v < 0 || int(v) >= g.NumNodes() {
		return fmt.Errorf("%w: %d (graph has %d nodes)", ErrNodeOutOfRange, v, g.NumNodes())
	}
	return nil
}

// ctxCheckInterval is the number of inner-loop steps between context
// checks in the push and Monte Carlo engines: frequent enough that a
// canceled computation stops within microseconds, rare enough that the
// check never shows up in profiles. Power iteration checks once per
// O(E) sweep instead.
const ctxCheckInterval = 1024

// ctxErr reports a pending cancellation. A nil context (callers that
// predate the context plumbing) never cancels.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Engine computes the personalized score vector of a single source, the
// row PPR(s,·) of Eq. 1. Every concrete engine additionally offers a
// Context-suffixed variant of its methods that aborts mid-computation
// with ctx.Err() once the context is canceled or its deadline passes.
type Engine interface {
	// FromSource returns PPR(s, v) for every node v.
	FromSource(g hin.View, s hin.NodeID) (Vector, error)
	// Name identifies the engine in reports.
	Name() string
}

// Identifier is implemented by engines that can state their cache
// identity: a stable string naming the algorithm together with every
// parameter that influences its output. Two engine values with equal
// identities are guaranteed to return the same vector for the same
// (view, node) pair, so the identity is safe to use as a cache-key
// component. Engines must include ONLY the parameters they actually
// read — and ALL of them: the Monte Carlo engine's identity carries its
// Walks and Seed because two differently seeded estimates differ, while
// the deterministic push engines omit both.
type Identifier interface {
	Identity() string
}

// OutSliceView is satisfied by flat views (hin.CSR, hin.PatchedCSR)
// that expose outgoing adjacency as shared slices; the forward-push hot
// loop uses it to skip callback overhead.
type OutSliceView interface {
	hin.View
	OutSlice(v hin.NodeID) []hin.HalfEdge
}

// ReverseEngine computes the column PPR(·,t): the score of a fixed
// target t personalized to every possible source.
type ReverseEngine interface {
	// ToTarget returns PPR(x, t) for every node x.
	ToTarget(g hin.View, t hin.NodeID) (Vector, error)
	Name() string
}
