package ppr

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"github.com/why-not-xai/emigre/internal/hin"
)

// toggleRowOverlay returns an overlay over view editing exactly node
// u's out-row: the first existing out-edge removed and one new edge
// added toward a non-neighbor. Unlike applyUserEdits it accepts any
// view, so edits can be stacked across rows.
func toggleRowOverlay(t *testing.T, g *hin.Graph, view hin.View, u hin.NodeID, rng *rand.Rand) *hin.Overlay {
	t.Helper()
	et, _ := g.Types().LookupEdgeType("e")
	var rm, add []hin.Edge
	view.OutEdges(u, func(h hin.HalfEdge) bool {
		rm = append(rm, hin.Edge{From: u, To: h.Node, Type: h.Type, Weight: h.Weight})
		return false
	})
	for attempt := 0; attempt < g.NumNodes(); attempt++ {
		v := hin.NodeID(rng.Intn(g.NumNodes()))
		if v == u {
			continue
		}
		has := false
		view.OutEdges(u, func(h hin.HalfEdge) bool {
			if h.Node == v {
				has = true
				return false
			}
			return true
		})
		if !has {
			add = append(add, hin.Edge{From: u, To: v, Type: et, Weight: rng.Float64() + 0.3})
			break
		}
	}
	o, err := hin.NewOverlay(view, rm, add)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// exactReverseColumn computes the exact PPR(·, t) column by running the
// power solver from every source (graphs in these tests are small).
func exactReverseColumn(t *testing.T, g hin.View, target hin.NodeID) Vector {
	t.Helper()
	col := make(Vector, g.NumNodes())
	solver := NewPower(testParams())
	for s := 0; s < g.NumNodes(); s++ {
		vec, err := solver.FromSource(g, hin.NodeID(s))
		if err != nil {
			t.Fatal(err)
		}
		col[s] = vec[target]
	}
	return col
}

func TestForwardUpdateForEditMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	sc := &UpdateScratch{} // reused across trials on purpose
	for trial := 0; trial < 12; trial++ {
		g := randomBidirGraph(rng, 12+rng.Intn(20), 20+rng.Intn(40))
		params := testParams()
		s := hin.NodeID(rng.Intn(g.NumNodes()))
		u := hin.NodeID(rng.Intn(g.NumNodes()))
		e := NewForwardPush(params)
		base, err := e.Run(g, s)
		if err != nil {
			t.Fatal(err)
		}
		o := applyUserEdits(t, g, u, rng)
		warm, err := e.UpdateForEdit(context.Background(), g, o, base, []hin.NodeID{u}, sc)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := NewPower(params).FromSource(o, s)
		if err != nil {
			t.Fatal(err)
		}
		for v := range exact {
			if diff := math.Abs(exact[v] - warm.Estimates[v]); diff > 1e-6 {
				t.Fatalf("trial %d: PPR(%d,%d) warm %g vs exact %g (diff %g)",
					trial, s, v, warm.Estimates[v], exact[v], diff)
			}
		}
		// The base pair must be untouched: warm starts are stateless.
		again, err := e.Run(g, s)
		if err != nil {
			t.Fatal(err)
		}
		for v := range again.Estimates {
			if base.Estimates[v] != again.Estimates[v] || base.Residuals[v] != again.Residuals[v] {
				t.Fatalf("trial %d: base push state mutated at node %d", trial, v)
			}
		}
	}
}

func TestForwardUpdateForEditMultiRow(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 8; trial++ {
		g := randomBidirGraph(rng, 15+rng.Intn(15), 30+rng.Intn(30))
		params := testParams()
		s := hin.NodeID(rng.Intn(g.NumNodes()))
		u1 := hin.NodeID(rng.Intn(g.NumNodes()))
		u2 := hin.NodeID((int(u1) + 1 + rng.Intn(g.NumNodes()-1)) % g.NumNodes())
		e := NewForwardPush(params)
		base, err := e.Run(g, s)
		if err != nil {
			t.Fatal(err)
		}
		// Two edited rows, composed overlays; old -> new differs at u1 and u2.
		o1 := applyUserEdits(t, g, u1, rng)
		o2 := toggleRowOverlay(t, g, o1, u2, rng)
		warm, err := e.UpdateForEdit(context.Background(), g, o2, base, []hin.NodeID{u1, u2}, nil)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := NewPower(params).FromSource(o2, s)
		if err != nil {
			t.Fatal(err)
		}
		for v := range exact {
			if diff := math.Abs(exact[v] - warm.Estimates[v]); diff > 1e-6 {
				t.Fatalf("trial %d: PPR(%d,%d) warm %g vs exact %g (diff %g)",
					trial, s, v, warm.Estimates[v], exact[v], diff)
			}
		}
	}
}

func TestReverseUpdateForEditMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	sc := &UpdateScratch{}
	for trial := 0; trial < 10; trial++ {
		g := randomBidirGraph(rng, 10+rng.Intn(12), 15+rng.Intn(25))
		params := testParams()
		target := hin.NodeID(rng.Intn(g.NumNodes()))
		u := hin.NodeID(rng.Intn(g.NumNodes()))
		e := NewReversePush(params)
		base, err := e.Run(g, target)
		if err != nil {
			t.Fatal(err)
		}
		o := applyUserEdits(t, g, u, rng)
		warm, err := e.UpdateForEdit(context.Background(), g, o, base, []hin.NodeID{u}, sc)
		if err != nil {
			t.Fatal(err)
		}
		exact := exactReverseColumn(t, o, target)
		for v := range exact {
			if diff := math.Abs(exact[v] - warm.Estimates[v]); diff > 1e-6 {
				t.Fatalf("trial %d: PPR(%d,%d) warm %g vs exact %g (diff %g)",
					trial, v, target, warm.Estimates[v], exact[v], diff)
			}
		}
	}
}

func TestReverseUpdateForEditCSRFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	g := randomBidirGraph(rng, 25, 60)
	params := testParams()
	target := hin.NodeID(3)
	u := hin.NodeID(7)
	e := NewReversePush(params)
	oldCSR := hin.NewCSR(g)
	base, err := e.Run(oldCSR, target)
	if err != nil {
		t.Fatal(err)
	}
	o := applyUserEdits(t, g, u, rng)
	newCSR := hin.NewCSR(o)
	warm, err := e.UpdateForEdit(context.Background(), oldCSR, newCSR, base, []hin.NodeID{u}, nil)
	if err != nil {
		t.Fatal(err)
	}
	exact := exactReverseColumn(t, o, target)
	for v := range exact {
		if diff := math.Abs(exact[v] - warm.Estimates[v]); diff > 1e-6 {
			t.Fatalf("PPR(%d,%d) warm %g vs exact %g (diff %g)",
				v, target, warm.Estimates[v], exact[v], diff)
		}
	}
}

func TestDynamicUpdateForEditMultiRow(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for trial := 0; trial < 8; trial++ {
		g := randomBidirGraph(rng, 15+rng.Intn(15), 30+rng.Intn(30))
		params := testParams()
		s := hin.NodeID(rng.Intn(g.NumNodes()))
		u1 := hin.NodeID(rng.Intn(g.NumNodes()))
		u2 := hin.NodeID((int(u1) + 1 + rng.Intn(g.NumNodes()-1)) % g.NumNodes())
		dyn, err := NewDynamicForwardPush(params, g, s)
		if err != nil {
			t.Fatal(err)
		}
		o1 := applyUserEdits(t, g, u1, rng)
		o2 := toggleRowOverlay(t, g, o1, u2, rng)
		if err := dyn.UpdateForEdit(context.Background(), o2, []hin.NodeID{u1, u2}); err != nil {
			t.Fatal(err)
		}
		exact, err := NewPower(params).FromSource(o2, s)
		if err != nil {
			t.Fatal(err)
		}
		got := dyn.Estimates()
		for v := range exact {
			if diff := math.Abs(exact[v] - got[v]); diff > 1e-6 {
				t.Fatalf("trial %d: PPR(%d,%d) dynamic %g vs exact %g (diff %g)",
					trial, s, v, got[v], exact[v], diff)
			}
		}
	}
}

func TestUpdateForEditRejectsBadInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	g := randomBidirGraph(rng, 10, 20)
	e := NewForwardPush(testParams())
	base, err := e.Run(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	bigger := randomBidirGraph(rng, 11, 20)
	if _, err := e.UpdateForEdit(context.Background(), g, bigger, base, []hin.NodeID{0}, nil); err == nil {
		t.Error("node-count change accepted")
	}
	if _, err := e.UpdateForEdit(context.Background(), g, g, nil, []hin.NodeID{0}, nil); err == nil {
		t.Error("nil base accepted")
	}
	short := &PushResult{Estimates: make(Vector, 1), Residuals: make(Vector, 1)}
	if _, err := e.UpdateForEdit(context.Background(), g, g, short, []hin.NodeID{0}, nil); err == nil {
		t.Error("mis-sized base accepted")
	}
	if _, err := e.UpdateForEdit(context.Background(), g, g, base, []hin.NodeID{hin.NodeID(g.NumNodes())}, nil); err == nil {
		t.Error("out-of-range row accepted")
	}
}

func TestUpdateForEditCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	g := randomBidirGraph(rng, 30, 80)
	e := NewForwardPush(testParams())
	base, err := e.Run(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	o := applyUserEdits(t, g, 0, rng)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.UpdateForEdit(ctx, g, o, base, []hin.NodeID{0}, nil); err == nil {
		t.Error("canceled context accepted")
	}
}

// updateAllocs measures per-call allocations of a warm-started forward
// update with a shared scratch, alternating between two views so every
// call performs real repair work.
func updateAllocs(t *testing.T, nodes, extra int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	g := randomBidirGraph(rng, nodes, extra)
	oldCSR := hin.NewCSR(g)
	o := applyUserEdits(t, g, 0, rng)
	newCSR := hin.NewCSR(o)
	e := NewForwardPush(DefaultParams())
	base, err := e.Run(oldCSR, 0)
	if err != nil {
		t.Fatal(err)
	}
	sc := &UpdateScratch{}
	ctx := context.Background()
	if _, err := e.UpdateForEdit(ctx, oldCSR, newCSR, base, []hin.NodeID{0}, sc); err != nil {
		t.Fatal(err)
	}
	return testing.AllocsPerRun(50, func() {
		if _, err := e.UpdateForEdit(ctx, oldCSR, newCSR, base, []hin.NodeID{0}, sc); err != nil {
			t.Fatal(err)
		}
	})
}

// TestUpdateForEditAllocsConstant pins the warm-start path's allocation
// shape: with a warmed scratch, UpdateForEdit allocates only the result
// struct plus loop-closure bookkeeping — a small constant independent of
// graph size. This is the satellite guarantee that replaced the per-call
// map of the old transitionDelta (internal/ppr/dynamic.go) with
// slice-based reusable scratch.
func TestUpdateForEditAllocsConstant(t *testing.T) {
	small := updateAllocs(t, 50, 100)
	large := updateAllocs(t, 2000, 8000)
	if small != large {
		t.Errorf("allocs per warm update: %.1f on 50 nodes vs %.1f on 2000 nodes; scratch is not being reused", small, large)
	}
	if small > 4 {
		t.Errorf("allocs per warm update = %.1f, want <= 4 (result struct + loop bookkeeping)", small)
	}
}

// dynamicUpdateAllocs measures per-call allocations of the dynamic
// engine's maintenance path, toggling between two views.
func dynamicUpdateAllocs(t *testing.T, nodes, extra int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	g := randomBidirGraph(rng, nodes, extra)
	oldCSR := hin.NewCSR(g)
	o := applyUserEdits(t, g, 0, rng)
	newCSR := hin.NewCSR(o)
	dyn, err := NewDynamicForwardPush(DefaultParams(), oldCSR, 0)
	if err != nil {
		t.Fatal(err)
	}
	views := [2]hin.View{newCSR, oldCSR}
	i := 0
	return testing.AllocsPerRun(50, func() {
		if err := dyn.Update(views[i%2], 0); err != nil {
			t.Fatal(err)
		}
		i++
	})
}

// TestDynamicUpdateAllocsConstant pins the dynamic engine's update path
// at a size-independent allocation count: the transition delta now
// accumulates into struct-owned slices and the push queue is reused, so
// repeated updates allocate (close to) nothing.
func TestDynamicUpdateAllocsConstant(t *testing.T) {
	small := dynamicUpdateAllocs(t, 50, 100)
	large := dynamicUpdateAllocs(t, 2000, 8000)
	if small != large {
		t.Errorf("allocs per dynamic update: %.1f on 50 nodes vs %.1f on 2000 nodes; scratch is not being reused", small, large)
	}
	if small > 2 {
		t.Errorf("allocs per dynamic update = %.1f, want <= 2 (loop bookkeeping only)", small)
	}
}
