package ppr

import (
	"context"
	"fmt"

	"github.com/why-not-xai/emigre/internal/hin"
)

// ReversePush is the Reverse Local Push engine (RLP, §3.2; Zhang,
// Lofgren & Goel, KDD'16). It explores the graph backward from a target
// node t, pushing mass over *incoming* edges, and estimates the whole
// column PPR(·,t): how much every possible source personalizes t. The
// invariant maintained is Eq. 4 of the paper:
//
//	PPR(s,t) = P(s,t) + Σ_x PPR(s,x)·R(x,t)   for every s
//
// EMiGRe's Add mode (Algorithm 2) runs RLP from the Why-Not item to
// enumerate candidate neighbors whose connection would lift it.
type ReversePush struct {
	Params Params
}

// NewReversePush returns a reverse-push engine with the given parameters.
func NewReversePush(p Params) *ReversePush { return &ReversePush{Params: p} }

// Name implements ReverseEngine.
func (e *ReversePush) Name() string { return "reverse-push" }

// Identity implements Identifier: the push loop's output depends on α
// and the residual threshold ε only.
func (e *ReversePush) Identity() string {
	return fmt.Sprintf("reverse-push/a=%g,eps=%g", e.Params.Alpha, e.Params.Epsilon)
}

// ToTarget returns the estimate vector of Run.
func (e *ReversePush) ToTarget(g hin.View, t hin.NodeID) (Vector, error) {
	return e.ToTargetContext(context.Background(), g, t)
}

// ToTargetContext is ToTarget with cancellation: the context is checked
// every push batch and the loop aborts with ctx.Err().
func (e *ReversePush) ToTargetContext(ctx context.Context, g hin.View, t hin.NodeID) (Vector, error) {
	res, err := e.RunContext(ctx, g, t)
	if err != nil {
		return nil, err
	}
	return res.Estimates, nil
}

// Run performs reverse local push toward t until all residuals are below
// Epsilon, returning estimates and residuals. Estimates[x] approximates
// PPR(x, t) with additive error bounded by Epsilon/α per the invariant.
func (e *ReversePush) Run(g hin.View, t hin.NodeID) (*PushResult, error) {
	return e.RunContext(context.Background(), g, t)
}

// RunContext is Run with cancellation, checked every ctxCheckInterval
// queue steps.
func (e *ReversePush) RunContext(ctx context.Context, g hin.View, t hin.NodeID) (*PushResult, error) {
	if err := e.Params.Validate(); err != nil {
		return nil, err
	}
	if err := checkNode(g, t); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	alpha := e.Params.Alpha
	eps := e.Params.Epsilon

	p := make(Vector, n)
	r := make(Vector, n)
	r[t] = 1

	queue := newNodeQueue(n)
	inQueue := make([]bool, n)
	queue.push(t)
	inQueue[t] = true
	pushes := 0

	csr, _ := g.(*hin.CSR) // fast path: direct slice iteration

	steps := 0
	for !queue.empty() {
		if steps%ctxCheckInterval == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			if err := reverseLoopSite.Hit(ctx); err != nil {
				return nil, err
			}
		}
		steps++
		v := queue.pop()
		inQueue[v] = false
		rv := r[v]
		if rv <= eps {
			continue
		}
		r[v] = 0
		p[v] += alpha * rv
		pushes++
		if csr != nil {
			for _, h := range csr.InSlice(v) {
				total := csr.OutWeightSum(h.Node)
				if total <= 0 {
					continue
				}
				r[h.Node] += (1 - alpha) * rv * h.Weight / total
				if r[h.Node] > eps && !inQueue[h.Node] {
					queue.push(h.Node)
					inQueue[h.Node] = true
				}
			}
			continue
		}
		g.InEdges(v, func(h hin.HalfEdge) bool {
			// h.Node is the source x of edge (x -> v); the transition
			// probability W(x,v) uses x's outgoing weight sum.
			total := g.OutWeightSum(h.Node)
			if total <= 0 {
				return true
			}
			r[h.Node] += (1 - alpha) * rv * h.Weight / total
			if r[h.Node] > eps && !inQueue[h.Node] {
				queue.push(h.Node)
				inQueue[h.Node] = true
			}
			return true
		})
	}
	res := &PushResult{Estimates: p, Residuals: r, Pushes: pushes}
	recordPush(runsReverse, pushesReverse, residualMassReverse, res)
	return res, nil
}
