package ppr

import (
	"context"
	"fmt"

	"github.com/why-not-xai/emigre/internal/fmath"
	"github.com/why-not-xai/emigre/internal/hin"
)

// DynamicForwardPush maintains a forward-push PPR state PPR(s,·) across
// graph updates that modify a single node's outgoing edges — exactly
// the shape of EMiGRe's counterfactuals, which only touch the target
// user's out-neighborhood. It follows the dynamic local-push idea of
// Zhang, Lofgren & Goel (KDD'16), reference [38/39] of the paper.
//
// Derivation (DESIGN.md §3): the push invariant is equivalent to
// p = Zᵀ(e_s − r) with Z = α(I − (1−α)W)⁻¹. When row u of W changes by
// δᵀ = W′(u,·) − W(u,·), keeping p and setting
//
//	r′ = r + (1−α)/α · p(u) · δ
//
// re-establishes the invariant exactly on the new graph. The repair is
// O(deg(u)); resuming the push loop (with signed residuals — δ can be
// negative) converges to the new PPR without a full recomputation.
type DynamicForwardPush struct {
	params Params
	view   hin.View
	source hin.NodeID
	p, r   Vector
	// UpdatePushes accumulates the pushes performed by Update calls,
	// for ablation reporting.
	UpdatePushes int
}

// NewDynamicForwardPush runs a full forward push on g and returns the
// maintained state.
func NewDynamicForwardPush(params Params, g hin.View, s hin.NodeID) (*DynamicForwardPush, error) {
	return NewDynamicForwardPushContext(context.Background(), params, g, s)
}

// NewDynamicForwardPushContext is NewDynamicForwardPush with
// cancellation of the initial full push.
func NewDynamicForwardPushContext(ctx context.Context, params Params, g hin.View, s hin.NodeID) (*DynamicForwardPush, error) {
	res, err := NewForwardPush(params).RunContext(ctx, g, s)
	if err != nil {
		return nil, err
	}
	return &DynamicForwardPush{
		params: params,
		view:   g,
		source: s,
		p:      res.Estimates,
		r:      res.Residuals,
	}, nil
}

// Estimates returns the current estimate vector. It approximates the
// PPR of the most recently bound view within the usual push tolerance.
func (d *DynamicForwardPush) Estimates() Vector { return d.p }

// Source returns the personalization source node.
func (d *DynamicForwardPush) Source() hin.NodeID { return d.source }

// Update rebinds the state to newView, which must differ from the
// previous view only in the outgoing edges of node u, and repairs the
// push invariant locally before resuming the push loop.
func (d *DynamicForwardPush) Update(newView hin.View, u hin.NodeID) error {
	return d.UpdateContext(context.Background(), newView, u)
}

// UpdateContext is Update with cancellation of the resumed push loop.
// A canceled update leaves the residual repair applied but the push
// incomplete; the state must not be reused after a cancellation error.
func (d *DynamicForwardPush) UpdateContext(ctx context.Context, newView hin.View, u hin.NodeID) error {
	if newView.NumNodes() != d.view.NumNodes() {
		return fmt.Errorf("ppr: dynamic update cannot change the node count (%d -> %d)",
			d.view.NumNodes(), newView.NumNodes())
	}
	if err := checkNode(newView, u); err != nil {
		return err
	}
	delta := transitionDelta(d.view, newView, u)
	scale := (1 - d.params.Alpha) / d.params.Alpha * d.p[u]
	if !fmath.Eq(scale, 0) {
		for y, dw := range delta {
			d.r[y] += scale * dw
		}
	}
	d.view = newView
	before := d.UpdatePushes
	if err := d.push(ctx); err != nil {
		return err
	}
	dynamicUpdates.Inc()
	pushesDynamic.Add(int64(d.UpdatePushes - before))
	return nil
}

// transitionDelta returns W′(u,·) − W(u,·) as a sparse map over the
// union of u's old and new out-neighborhoods.
func transitionDelta(oldView, newView hin.View, u hin.NodeID) map[hin.NodeID]float64 {
	delta := make(map[hin.NodeID]float64)
	if total := oldView.OutWeightSum(u); total > 0 {
		oldView.OutEdges(u, func(h hin.HalfEdge) bool {
			delta[h.Node] -= h.Weight / total
			return true
		})
	}
	if total := newView.OutWeightSum(u); total > 0 {
		newView.OutEdges(u, func(h hin.HalfEdge) bool {
			delta[h.Node] += h.Weight / total
			return true
		})
	}
	for y, dw := range delta {
		if fmath.Eq(dw, 0) {
			delete(delta, y)
		}
	}
	return delta
}

// push drains residuals above the tolerance in absolute value. Unlike
// the static loop, residuals may be negative after a repair; the push
// rule is linear, so it applies unchanged.
func (d *DynamicForwardPush) push(ctx context.Context) error {
	alpha := d.params.Alpha
	eps := d.params.Epsilon
	n := d.view.NumNodes()
	queue := newNodeQueue(n)
	inQueue := make([]bool, n)
	for v := range d.r {
		if abs(d.r[v]) > eps {
			queue.push(hin.NodeID(v))
			inQueue[v] = true
		}
	}
	csr, _ := d.view.(OutSliceView)
	steps := 0
	for !queue.empty() {
		if steps%ctxCheckInterval == 0 {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			if err := dynamicLoopSite.Hit(ctx); err != nil {
				return err
			}
		}
		steps++
		v := queue.pop()
		inQueue[v] = false
		rv := d.r[v]
		if abs(rv) <= eps {
			continue
		}
		d.r[v] = 0
		d.p[v] += alpha * rv
		d.UpdatePushes++
		total := d.view.OutWeightSum(v)
		if total <= 0 {
			continue
		}
		scale := (1 - alpha) * rv / total
		visit := func(h hin.HalfEdge) bool {
			d.r[h.Node] += scale * h.Weight
			if abs(d.r[h.Node]) > eps && !inQueue[h.Node] {
				queue.push(h.Node)
				inQueue[h.Node] = true
			}
			return true
		}
		if csr != nil {
			for _, h := range csr.OutSlice(v) {
				visit(h)
			}
		} else {
			d.view.OutEdges(v, visit)
		}
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
