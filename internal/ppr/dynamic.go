package ppr

import (
	"context"
	"fmt"
	"math"

	"github.com/why-not-xai/emigre/internal/fmath"
	"github.com/why-not-xai/emigre/internal/hin"
)

// DynamicForwardPush maintains a forward-push PPR state PPR(s,·) across
// graph updates that modify a single node's outgoing edges — exactly
// the shape of EMiGRe's counterfactuals, which only touch the target
// user's out-neighborhood. It follows the dynamic local-push idea of
// Zhang, Lofgren & Goel (KDD'16), reference [38/39] of the paper.
//
// Derivation (DESIGN.md §3): the push invariant is equivalent to
// p = Zᵀ(e_s − r) with Z = α(I − (1−α)W)⁻¹. When row u of W changes by
// δᵀ = W′(u,·) − W(u,·), keeping p and setting
//
//	r′ = r + (1−α)/α · p(u) · δ
//
// re-establishes the invariant exactly on the new graph. The repair is
// O(deg(u)); resuming the push loop (with signed residuals — δ can be
// negative) converges to the new PPR without a full recomputation.
type DynamicForwardPush struct {
	params Params
	view   hin.View
	source hin.NodeID
	p, r   Vector
	// Reusable push scratch: the work queue, its membership marks and
	// the sparse transition-delta accumulator live on the state so the
	// update path allocates nothing per call (TestDynamicUpdateAllocs
	// pins this; the ESCAPES.json gate watches the escape sites).
	queue   nodeQueue
	inQueue []bool
	delta   deltaAcc
	rowBuf  [1]hin.NodeID
	// UpdatePushes accumulates the pushes performed by Update calls,
	// for ablation reporting.
	UpdatePushes int
}

// NewDynamicForwardPush runs a full forward push on g and returns the
// maintained state.
func NewDynamicForwardPush(params Params, g hin.View, s hin.NodeID) (*DynamicForwardPush, error) {
	return NewDynamicForwardPushContext(context.Background(), params, g, s)
}

// NewDynamicForwardPushContext is NewDynamicForwardPush with
// cancellation of the initial full push.
func NewDynamicForwardPushContext(ctx context.Context, params Params, g hin.View, s hin.NodeID) (*DynamicForwardPush, error) {
	res, err := NewForwardPush(params).RunContext(ctx, g, s)
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	d := &DynamicForwardPush{
		params:  params,
		view:    g,
		source:  s,
		p:       res.Estimates,
		r:       res.Residuals,
		queue:   newNodeQueue(n),
		inQueue: make([]bool, n),
	}
	d.delta.ensure(n)
	return d, nil
}

// Estimates returns the current estimate vector. It approximates the
// PPR of the most recently bound view within the usual push tolerance.
func (d *DynamicForwardPush) Estimates() Vector { return d.p }

// Source returns the personalization source node.
func (d *DynamicForwardPush) Source() hin.NodeID { return d.source }

// Update rebinds the state to newView, which must differ from the
// previous view only in the outgoing edges of node u, and repairs the
// push invariant locally before resuming the push loop.
func (d *DynamicForwardPush) Update(newView hin.View, u hin.NodeID) error {
	return d.UpdateContext(context.Background(), newView, u)
}

// UpdateContext is Update with cancellation of the resumed push loop.
// A canceled update leaves the residual repair applied but the push
// incomplete; the state must not be reused after a cancellation error.
func (d *DynamicForwardPush) UpdateContext(ctx context.Context, newView hin.View, u hin.NodeID) error {
	d.rowBuf[0] = u
	return d.UpdateForEdit(ctx, newView, d.rowBuf[:])
}

// UpdateForEdit rebinds the state to newView, which must differ from
// the previous view only in the outgoing rows listed in rows, and
// repairs the push invariant at each edited row before resuming the
// push loop — the multi-row generalization of Update (rows of length
// one is exactly Update). The same cancellation caveat applies: a
// canceled call leaves the state unusable.
func (d *DynamicForwardPush) UpdateForEdit(ctx context.Context, newView hin.View, rows []hin.NodeID) error {
	if newView.NumNodes() != d.view.NumNodes() {
		return fmt.Errorf("ppr: dynamic update cannot change the node count (%d -> %d)",
			d.view.NumNodes(), newView.NumNodes())
	}
	eps := d.params.Epsilon
	for _, u := range rows {
		if err := checkNode(newView, u); err != nil {
			return err
		}
		d.delta.reset()
		transitionDeltaInto(&d.delta, d.view, newView, u)
		scale := (1 - d.params.Alpha) / d.params.Alpha * d.p[u]
		if fmath.Eq(scale, 0) {
			continue
		}
		// Only repaired entries can exceed ε: the previous drain left
		// every residual at or below it, so seeding the queue from the
		// touched set alone visits exactly the nodes a full scan would
		// (the touched IDs are sorted, matching the scan order).
		for _, y := range d.delta.touched {
			d.r[y] += scale * d.delta.val[y]
			if abs(d.r[y]) > eps && !d.inQueue[y] {
				d.queue.push(y)
				d.inQueue[y] = true
			}
		}
	}
	d.view = newView
	pushes, err := signedForwardPush(ctx, d.params, newView, d.p, d.r, &d.queue, d.inQueue, dynamicLoopSite)
	d.UpdatePushes += pushes
	if err != nil {
		return err
	}
	dynamicUpdates.Inc()
	pushesDynamic.Add(int64(pushes))
	return nil
}

// abs delegates to the math.Abs intrinsic (a single sign-bit clear):
// a branching |x| mispredicts heavily inside the signed push loops,
// where residual signs are effectively random.
func abs(x float64) float64 {
	return math.Abs(x)
}
