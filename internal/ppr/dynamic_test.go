package ppr

import (
	"math"
	"math/rand"
	"testing"

	"github.com/why-not-xai/emigre/internal/hin"
)

// applyUserEdits builds an overlay removing some of u's out-edges and
// adding new ones, returning it with the edit lists.
func applyUserEdits(t *testing.T, g *hin.Graph, u hin.NodeID, rng *rand.Rand) *hin.Overlay {
	t.Helper()
	et, _ := g.Types().LookupEdgeType("e")
	var removals, additions []hin.Edge
	for _, e := range g.OutEdgesOfType(u, hin.NewEdgeTypeSet()) {
		if rng.Float64() < 0.4 {
			removals = append(removals, e)
		}
	}
	for i := 0; i < 3; i++ {
		v := hin.NodeID(rng.Intn(g.NumNodes()))
		if v == u {
			continue
		}
		if _, exists := g.EdgeWeight(u, v, et); exists {
			continue
		}
		dup := false
		for _, e := range additions {
			if e.To == v {
				dup = true
			}
		}
		if !dup {
			additions = append(additions, hin.Edge{From: u, To: v, Type: et, Weight: rng.Float64() + 0.2})
		}
	}
	o, err := hin.NewOverlay(g, removals, additions)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestDynamicForwardPushMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 12; trial++ {
		g := randomBidirGraph(rng, 12+rng.Intn(20), 20+rng.Intn(40))
		params := testParams()
		s := hin.NodeID(rng.Intn(g.NumNodes()))
		u := hin.NodeID(rng.Intn(g.NumNodes()))

		dyn, err := NewDynamicForwardPush(params, g, s)
		if err != nil {
			t.Fatal(err)
		}
		o := applyUserEdits(t, g, u, rng)
		if err := dyn.Update(o, u); err != nil {
			t.Fatal(err)
		}
		exact, err := NewPower(params).FromSource(o, s)
		if err != nil {
			t.Fatal(err)
		}
		for v := range exact {
			if diff := math.Abs(exact[v] - dyn.Estimates()[v]); diff > 1e-6 {
				t.Fatalf("trial %d: PPR(%d,%d) after update: dynamic %g vs exact %g",
					trial, s, v, dyn.Estimates()[v], exact[v])
			}
		}
	}
}

func TestDynamicForwardPushChainedUpdates(t *testing.T) {
	// Apply several successive edit rounds at the same node; the state
	// must track the final graph.
	rng := rand.New(rand.NewSource(72))
	g := randomBidirGraph(rng, 20, 50)
	params := testParams()
	s, u := hin.NodeID(0), hin.NodeID(5)
	dyn, err := NewDynamicForwardPush(params, g, s)
	if err != nil {
		t.Fatal(err)
	}
	var view hin.View = g
	for round := 0; round < 4; round++ {
		et, _ := g.Types().LookupEdgeType("e")
		// Build an overlay over the *current* view toggling one edge.
		var o *hin.Overlay
		target := hin.NodeID((round*3 + 7) % g.NumNodes())
		if target == u {
			target++
		}
		has := false
		view.OutEdges(u, func(h hin.HalfEdge) bool {
			if h.Node == target {
				has = true
				return false
			}
			return true
		})
		if has {
			var typ hin.EdgeTypeID
			var w float64
			view.OutEdges(u, func(h hin.HalfEdge) bool {
				if h.Node == target {
					typ, w = h.Type, h.Weight
					return false
				}
				return true
			})
			o, err = hin.NewOverlay(view, []hin.Edge{{From: u, To: target, Type: typ, Weight: w}}, nil)
		} else {
			o, err = hin.NewOverlay(view, nil, []hin.Edge{{From: u, To: target, Type: et, Weight: 0.7}})
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := dyn.Update(o, u); err != nil {
			t.Fatal(err)
		}
		view = o
	}
	exact, err := NewPower(testParams()).FromSource(view, s)
	if err != nil {
		t.Fatal(err)
	}
	for v := range exact {
		if diff := math.Abs(exact[v] - dyn.Estimates()[v]); diff > 1e-6 {
			t.Fatalf("after chained updates: PPR(%d,%d) dynamic %g vs exact %g",
				s, v, dyn.Estimates()[v], exact[v])
		}
	}
}

func TestDynamicUpdateCheapLocalChange(t *testing.T) {
	// The whole point: an update must push far less than a fresh run.
	rng := rand.New(rand.NewSource(73))
	g := randomBidirGraph(rng, 400, 1600)
	params := testParams()
	params.Epsilon = 1e-8
	s, u := hin.NodeID(1), hin.NodeID(1) // edits at the source: worst locality
	dyn, err := NewDynamicForwardPush(params, g, s)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewForwardPush(params).Run(g, s)
	if err != nil {
		t.Fatal(err)
	}
	o := applyUserEdits(t, g, u, rng)
	if err := dyn.Update(o, u); err != nil {
		t.Fatal(err)
	}
	if dyn.UpdatePushes == 0 {
		t.Fatal("update performed no pushes despite edits at the source")
	}
	if dyn.UpdatePushes >= fresh.Pushes {
		t.Fatalf("dynamic update pushed %d times, fresh run only %d — no saving",
			dyn.UpdatePushes, fresh.Pushes)
	}
}

func TestDynamicUpdateRejectsNodeCountChange(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	g := randomBidirGraph(rng, 10, 20)
	dyn, err := NewDynamicForwardPush(testParams(), g, 0)
	if err != nil {
		t.Fatal(err)
	}
	bigger := randomBidirGraph(rng, 11, 20)
	if err := dyn.Update(bigger, 0); err == nil {
		t.Fatal("expected error for node-count change")
	}
	if err := dyn.Update(g, 99); err == nil {
		t.Fatal("expected error for out-of-range node")
	}
}

func TestDynamicNoOpUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	g := randomBidirGraph(rng, 15, 30)
	dyn, err := NewDynamicForwardPush(testParams(), g, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := append(Vector(nil), dyn.Estimates()...)
	if err := dyn.Update(g, 5); err != nil { // same view: empty delta
		t.Fatal(err)
	}
	for v := range before {
		if before[v] != dyn.Estimates()[v] {
			t.Fatal("no-op update changed estimates")
		}
	}
	if dyn.UpdatePushes != 0 {
		t.Fatalf("no-op update pushed %d times", dyn.UpdatePushes)
	}
}
