package ppr

import (
	"context"
	"fmt"

	"github.com/why-not-xai/emigre/internal/fault"
	"github.com/why-not-xai/emigre/internal/fmath"
	"github.com/why-not-xai/emigre/internal/hin"
)

// This file is the warm-start ("delta-PPR") entry point of the static
// push engines: given a completed base PushResult over one view and a
// new view that differs only in the outgoing rows of a known node set,
// UpdateForEdit repairs the push invariant at the edited rows and
// resumes the push loop over the perturbation only — O(Δ) work instead
// of a full O(push) recomputation. It is the stateless sibling of
// DynamicForwardPush: the base state is never mutated, so any number
// of concurrent callers can warm-start from one shared base result as
// long as each brings its own UpdateScratch. EMiGRe's CHECK step uses
// exactly this shape — every counterfactual differs from the base
// graph in the query user's row alone — and hands one scratch to each
// speculative pipeline worker.
//
// Update rules (Zhang, Lofgren & Goel, KDD'16; DESIGN.md §3.15). With
// Z = α(I − (1−α)W)⁻¹ and ΔW = W′ − W supported on the edited rows:
//
//   - forward (row vector p ≈ PPR(s,·), invariant p = Zᵀ(e_s − r)):
//     keeping p fixed, r′ = r + (1−α)/α · ΔWᵀ p re-establishes the
//     invariant on W′; only the edited rows' out-neighborhood unions
//     are touched, each scaled by the row's estimate p(u).
//   - reverse (column p ≈ PPR(·,t), invariant Z(e_t − r) = p): keeping
//     p fixed, r′ = r + (1−α)/α · ΔW p; (ΔW p)(x) is non-zero only at
//     the edited rows x = u, so each row repairs a single residual by
//     the inner product of its transition delta with the estimates.
//
// Residuals may turn negative after a repair; the push rule is linear
// and applies unchanged (the signed loop drains |r| > ε).

// UpdateScratch holds the reusable working set of UpdateForEdit calls:
// estimate/residual copies, the push queue and marks, and the sparse
// transition-delta accumulator. The zero value is ready to use; the
// first call sizes it to the graph. A scratch must not be shared by
// concurrent calls — give each worker its own.
//
// Results returned from UpdateForEdit alias the scratch buffers: they
// are valid until the scratch's next use and must be copied for longer
// retention (the CHECK path reads the verdict and moves on, so no copy
// is ever made on the hot path).
type UpdateScratch struct {
	p, r    Vector
	inQueue []bool
	queue   nodeQueue
	delta   deltaAcc
}

// ensure sizes the scratch for an n-node graph and clears the queue
// state left by a previous (possibly canceled) run.
func (sc *UpdateScratch) ensure(n int) {
	if len(sc.p) != n {
		sc.p = make(Vector, n)
		sc.r = make(Vector, n)
		sc.inQueue = make([]bool, n)
		sc.queue = newNodeQueue(n)
	} else {
		for i := range sc.inQueue {
			sc.inQueue[i] = false
		}
		sc.queue.head, sc.queue.tail = 0, 0
	}
	sc.delta.ensure(n)
}

// deltaAcc is a sparse signed accumulator over node IDs: a dense value
// slice plus the touched-ID list, so repeated use never re-allocates
// and reset is O(touched) — the slice-based replacement for the
// per-call map the dynamic engine's transitionDelta used to allocate.
type deltaAcc struct {
	val     []float64
	mark    []bool
	touched []hin.NodeID
}

func (d *deltaAcc) ensure(n int) {
	if len(d.val) != n {
		d.val = make([]float64, n)
		d.mark = make([]bool, n)
		d.touched = d.touched[:0]
	}
}

func (d *deltaAcc) add(y hin.NodeID, x float64) {
	if !d.mark[y] {
		d.mark[y] = true
		d.touched = append(d.touched, y)
	}
	d.val[y] += x
}

// reset clears only the touched entries, keeping the buffers.
func (d *deltaAcc) reset() {
	for _, y := range d.touched {
		d.val[y] = 0
		d.mark[y] = false
	}
	d.touched = d.touched[:0]
}

// transitionDeltaInto accumulates W′(u,·) − W(u,·) into d over the
// union of u's old and new out-neighborhoods, and sorts the touched
// IDs ascending so every consumer iterates deterministically (the
// same order a full residual scan would visit).
func transitionDeltaInto(d *deltaAcc, oldView, newView hin.View, u hin.NodeID) {
	if total := oldView.OutWeightSum(u); total > 0 {
		oldView.OutEdges(u, func(h hin.HalfEdge) bool {
			d.add(h.Node, -h.Weight/total)
			return true
		})
	}
	if total := newView.OutWeightSum(u); total > 0 {
		newView.OutEdges(u, func(h hin.HalfEdge) bool {
			d.add(h.Node, h.Weight/total)
			return true
		})
	}
	// Insertion sort: touched lists are O(row degree) and sort.Slice
	// would allocate its closure on every repair.
	for i := 1; i < len(d.touched); i++ {
		for j := i; j > 0 && d.touched[j] < d.touched[j-1]; j-- {
			d.touched[j], d.touched[j-1] = d.touched[j-1], d.touched[j]
		}
	}
}

// checkUpdateInputs validates the shared preconditions of the
// warm-start entry points.
func checkUpdateInputs(params Params, oldView, newView hin.View, base *PushResult) error {
	if err := params.Validate(); err != nil {
		return err
	}
	n := newView.NumNodes()
	if oldView.NumNodes() != n {
		return fmt.Errorf("ppr: warm-start update cannot change the node count (%d -> %d)",
			oldView.NumNodes(), n)
	}
	if base == nil || len(base.Estimates) != n || len(base.Residuals) != n {
		return fmt.Errorf("ppr: warm-start update requires a completed base push over the same %d nodes", n)
	}
	return nil
}

// UpdateForEdit warm-starts a forward push: base must be a completed
// run of this engine from s over oldView, and newView must differ from
// oldView only in the outgoing rows listed in rows. The residuals are
// repaired at the edited rows' out-neighborhoods and the push loop
// resumes over the perturbed mass only, restoring the ε contract on
// newView — the returned estimates carry the same per-entry error
// bound as a fresh RunContext over newView.
//
// base is never mutated; the result aliases sc's buffers (see
// UpdateScratch). sc may be nil for one-shot use.
func (e *ForwardPush) UpdateForEdit(ctx context.Context, oldView, newView hin.View, base *PushResult, rows []hin.NodeID, sc *UpdateScratch) (*PushResult, error) {
	if err := checkUpdateInputs(e.Params, oldView, newView, base); err != nil {
		return nil, err
	}
	if sc == nil {
		sc = &UpdateScratch{}
	}
	n := newView.NumNodes()
	sc.ensure(n)
	copy(sc.p, base.Estimates)
	copy(sc.r, base.Residuals)
	alpha := e.Params.Alpha
	eps := e.Params.Epsilon
	for _, u := range rows {
		if err := checkNode(newView, u); err != nil {
			return nil, err
		}
		sc.delta.reset()
		transitionDeltaInto(&sc.delta, oldView, newView, u)
		scale := (1 - alpha) / alpha * sc.p[u]
		if fmath.Eq(scale, 0) {
			continue
		}
		for _, y := range sc.delta.touched {
			sc.r[y] += scale * sc.delta.val[y]
			if abs(sc.r[y]) > eps && !sc.inQueue[y] {
				sc.queue.push(y)
				sc.inQueue[y] = true
			}
		}
	}
	pushes, err := signedForwardPush(ctx, e.Params, newView, sc.p, sc.r, &sc.queue, sc.inQueue, updateLoopSite)
	if err != nil {
		return nil, err
	}
	res := &PushResult{Estimates: sc.p, Residuals: sc.r, Pushes: pushes}
	recordPush(runsForwardUpdate, pushesForwardUpdate, residualMassForwardUpdate, res)
	return res, nil
}

// UpdateForEdit warm-starts a reverse push: base must be a completed
// run of this engine toward t over oldView, and newView must differ
// from oldView only in the outgoing rows listed in rows. Each edited
// row repairs exactly one residual — its own — by the inner product of
// its transition delta with the base estimates; the signed reverse
// loop then restores the ε contract on newView.
//
// base is never mutated; the result aliases sc's buffers (see
// UpdateScratch). sc may be nil for one-shot use.
func (e *ReversePush) UpdateForEdit(ctx context.Context, oldView, newView hin.View, base *PushResult, rows []hin.NodeID, sc *UpdateScratch) (*PushResult, error) {
	if err := checkUpdateInputs(e.Params, oldView, newView, base); err != nil {
		return nil, err
	}
	if sc == nil {
		sc = &UpdateScratch{}
	}
	n := newView.NumNodes()
	sc.ensure(n)
	copy(sc.p, base.Estimates)
	copy(sc.r, base.Residuals)
	alpha := e.Params.Alpha
	eps := e.Params.Epsilon
	for _, u := range rows {
		if err := checkNode(newView, u); err != nil {
			return nil, err
		}
		sc.delta.reset()
		transitionDeltaInto(&sc.delta, oldView, newView, u)
		dot := 0.0
		for _, y := range sc.delta.touched {
			dot += sc.delta.val[y] * sc.p[y]
		}
		sc.r[u] += (1 - alpha) / alpha * dot
		if abs(sc.r[u]) > eps && !sc.inQueue[u] {
			sc.queue.push(u)
			sc.inQueue[u] = true
		}
	}
	pushes, err := signedReversePush(ctx, e.Params, newView, sc.p, sc.r, &sc.queue, sc.inQueue, updateLoopSite)
	if err != nil {
		return nil, err
	}
	res := &PushResult{Estimates: sc.p, Residuals: sc.r, Pushes: pushes}
	recordPush(runsReverseUpdate, pushesReverseUpdate, residualMassReverseUpdate, res)
	return res, nil
}

// signedForwardPush drains residuals above eps in absolute value over
// view, updating p and r in place. The queue must be pre-seeded with
// every node whose |r| exceeds eps (inQueue marking them); during the
// drain new nodes enqueue as usual. Shared by the warm-start forward
// update (updateLoopSite) and the dynamic engine's resume loop
// (dynamicLoopSite), each gating its own failpoint.
func signedForwardPush(ctx context.Context, params Params, view hin.View, p, r Vector, queue *nodeQueue, inQueue []bool, site *fault.Site) (int, error) {
	alpha := params.Alpha
	eps := params.Epsilon
	csr, _ := view.(OutSliceView)
	pushes := 0
	steps := 0
	for !queue.empty() {
		if steps%ctxCheckInterval == 0 {
			if err := ctxErr(ctx); err != nil {
				return pushes, err
			}
			if err := site.Hit(ctx); err != nil {
				return pushes, err
			}
		}
		steps++
		v := queue.pop()
		inQueue[v] = false
		rv := r[v]
		if abs(rv) <= eps {
			continue
		}
		r[v] = 0
		p[v] += alpha * rv
		pushes++
		total := view.OutWeightSum(v)
		if total <= 0 {
			continue
		}
		scale := (1 - alpha) * rv / total
		if csr != nil { // fast path inlined: the closure below escapes
			for _, h := range csr.OutSlice(v) {
				r[h.Node] += scale * h.Weight
				if abs(r[h.Node]) > eps && !inQueue[h.Node] {
					queue.push(h.Node)
					inQueue[h.Node] = true
				}
			}
			continue
		}
		view.OutEdges(v, func(h hin.HalfEdge) bool {
			r[h.Node] += scale * h.Weight
			if abs(r[h.Node]) > eps && !inQueue[h.Node] {
				queue.push(h.Node)
				inQueue[h.Node] = true
			}
			return true
		})
	}
	return pushes, nil
}

// signedReversePush is signedForwardPush's reverse twin: mass flows
// backward over incoming edges, each scaled by the *source's* outgoing
// weight sum under the new view.
func signedReversePush(ctx context.Context, params Params, view hin.View, p, r Vector, queue *nodeQueue, inQueue []bool, site *fault.Site) (int, error) {
	alpha := params.Alpha
	eps := params.Epsilon
	csr, _ := view.(*hin.CSR)
	pushes := 0
	steps := 0
	for !queue.empty() {
		if steps%ctxCheckInterval == 0 {
			if err := ctxErr(ctx); err != nil {
				return pushes, err
			}
			if err := site.Hit(ctx); err != nil {
				return pushes, err
			}
		}
		steps++
		v := queue.pop()
		inQueue[v] = false
		rv := r[v]
		if abs(rv) <= eps {
			continue
		}
		r[v] = 0
		p[v] += alpha * rv
		pushes++
		if csr != nil { // fast path inlined: the closure below escapes
			for _, h := range csr.InSlice(v) {
				total := view.OutWeightSum(h.Node)
				if total <= 0 {
					continue
				}
				r[h.Node] += (1 - alpha) * rv * h.Weight / total
				if abs(r[h.Node]) > eps && !inQueue[h.Node] {
					queue.push(h.Node)
					inQueue[h.Node] = true
				}
			}
			continue
		}
		view.InEdges(v, func(h hin.HalfEdge) bool {
			total := view.OutWeightSum(h.Node)
			if total <= 0 {
				return true
			}
			r[h.Node] += (1 - alpha) * rv * h.Weight / total
			if abs(r[h.Node]) > eps && !inQueue[h.Node] {
				queue.push(h.Node)
				inQueue[h.Node] = true
			}
			return true
		})
	}
	return pushes, nil
}
