package ppr

import (
	"context"
	"fmt"

	"github.com/why-not-xai/emigre/internal/hin"
)

// ForwardPush is the Forward Local Push engine (FLP, §3.2 of the paper;
// Zhang, Lofgren & Goel, KDD'16). It explores the graph outward from the
// source node, maintaining per-node estimates P and residuals R with the
// invariant of Eq. 3:
//
//	PPR(s,t) = P(s,t) + Σ_x R(s,x)·PPR(x,t)   for every t
//
// The push loop terminates once every residual is below Epsilon, so each
// estimate is within Epsilon·n of the true score (and usually far
// closer). The returned estimate vector alone is the usual result;
// PushResult additionally exposes the residuals so tests can verify the
// invariant.
type ForwardPush struct {
	Params Params
}

// NewForwardPush returns a forward-push engine with the given parameters.
func NewForwardPush(p Params) *ForwardPush { return &ForwardPush{Params: p} }

// Name implements Engine.
func (e *ForwardPush) Name() string { return "forward-push" }

// Identity implements Identifier: the push loop's output depends on α
// and the residual threshold ε only.
func (e *ForwardPush) Identity() string {
	return fmt.Sprintf("forward-push/a=%g,eps=%g", e.Params.Alpha, e.Params.Epsilon)
}

// PushResult carries the estimate and residual vectors of a local-push
// run, plus the number of individual pushes performed.
type PushResult struct {
	Estimates Vector
	Residuals Vector
	Pushes    int
}

// FromSource returns the estimate vector of Run.
func (e *ForwardPush) FromSource(g hin.View, s hin.NodeID) (Vector, error) {
	return e.FromSourceContext(context.Background(), g, s)
}

// FromSourceContext is FromSource with cancellation: the context is
// checked every push batch and the loop aborts with ctx.Err().
func (e *ForwardPush) FromSourceContext(ctx context.Context, g hin.View, s hin.NodeID) (Vector, error) {
	res, err := e.RunContext(ctx, g, s)
	if err != nil {
		return nil, err
	}
	return res.Estimates, nil
}

// Run performs forward local push from s until all residuals are below
// Epsilon, returning estimates and residuals.
func (e *ForwardPush) Run(g hin.View, s hin.NodeID) (*PushResult, error) {
	return e.RunContext(context.Background(), g, s)
}

// RunContext is Run with cancellation, checked every ctxCheckInterval
// queue steps.
func (e *ForwardPush) RunContext(ctx context.Context, g hin.View, s hin.NodeID) (*PushResult, error) {
	if err := e.Params.Validate(); err != nil {
		return nil, err
	}
	if err := checkNode(g, s); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	alpha := e.Params.Alpha
	eps := e.Params.Epsilon

	p := make(Vector, n)
	r := make(Vector, n)
	r[s] = 1

	queue := newNodeQueue(n)
	inQueue := make([]bool, n)
	queue.push(s)
	inQueue[s] = true
	pushes := 0

	csr, _ := g.(OutSliceView) // fast path: direct slice iteration

	steps := 0
	for !queue.empty() {
		if steps%ctxCheckInterval == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			if err := forwardLoopSite.Hit(ctx); err != nil {
				return nil, err
			}
		}
		steps++
		v := queue.pop()
		inQueue[v] = false
		rv := r[v]
		if rv <= eps {
			continue
		}
		r[v] = 0
		p[v] += alpha * rv
		pushes++
		total := g.OutWeightSum(v)
		if total <= 0 {
			continue // dangling: remaining mass absorbed
		}
		scale := (1 - alpha) * rv / total
		if csr != nil {
			for _, h := range csr.OutSlice(v) {
				r[h.Node] += scale * h.Weight
				if r[h.Node] > eps && !inQueue[h.Node] {
					queue.push(h.Node)
					inQueue[h.Node] = true
				}
			}
			continue
		}
		g.OutEdges(v, func(h hin.HalfEdge) bool {
			r[h.Node] += scale * h.Weight
			if r[h.Node] > eps && !inQueue[h.Node] {
				queue.push(h.Node)
				inQueue[h.Node] = true
			}
			return true
		})
	}
	res := &PushResult{Estimates: p, Residuals: r, Pushes: pushes}
	recordPush(runsForward, pushesForward, residualMassForward, res)
	return res, nil
}
