package ppr

import (
	"math/rand"
	"testing"

	"github.com/why-not-xai/emigre/internal/hin"
)

// pushAllocs measures the per-run allocation count of a forward push
// from node 0 over the CSR fast path.
func pushAllocs(t *testing.T, nodes, extra int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	csr := hin.NewCSR(randomBidirGraph(rng, nodes, extra))
	e := NewForwardPush(DefaultParams())
	return testing.AllocsPerRun(50, func() {
		if _, err := e.Run(csr, 0); err != nil {
			t.Fatal(err)
		}
	})
}

// TestForwardPushAllocsConstant pins the push engine's allocation
// shape: RunContext allocates a fixed set of setup buffers (estimates,
// residuals, queue, in-queue marks, the result struct) and the inner
// push loop must allocate nothing — so the count per run is a small
// constant, independent of how much of the graph the push visits.
// A size-dependent count means the loop started heap-allocating and
// the ESCAPES.json gate (cmd/emigre-escapes) needs a close look.
func TestForwardPushAllocsConstant(t *testing.T) {
	small := pushAllocs(t, 50, 100)
	large := pushAllocs(t, 2000, 8000)
	if small != large {
		t.Errorf("allocs per push: %.1f on 50 nodes vs %.1f on 2000 nodes; inner loop is allocating", small, large)
	}
	// The setup buffers above plus minor runtime bookkeeping; the exact
	// figure is pinned loosely so a growslice or map added to the loop
	// trips it, while compiler-version drift does not.
	if small > 8 {
		t.Errorf("allocs per push = %.1f, want <= 8 fixed setup allocations", small)
	}
}
