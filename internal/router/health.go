package router

import (
	"context"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultProbeInterval is how often each backend's /readyz is polled.
// It must be comfortably inside the server's -drain-grace window so a
// draining backend is pulled from rotation before its listener closes.
const DefaultProbeInterval = time.Second

// defaultProbeTimeout bounds one readiness probe; /readyz is a local
// atomic read server-side, so a slow probe means a sick backend.
const defaultProbeTimeout = 2 * time.Second

// prober polls every backend's /readyz on an interval and publishes
// per-backend readiness. A backend is ready iff its latest probe
// returned 200. Before the first probe completes, backends count as
// ready — the router must not shed traffic during its own startup
// races.
type prober struct {
	interval time.Duration
	client   *http.Client
	cancel   context.CancelFunc
	wg       sync.WaitGroup

	mu    sync.Mutex
	state map[string]*backendHealth
}

type backendHealth struct {
	ready atomic.Bool
	// consecutive failed probes, for log damping (first failure logs,
	// repeats do not).
	fails atomic.Int64
}

// newProber builds (but does not start) a prober for the backends.
func newProber(backends []string, interval time.Duration) *prober {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	p := &prober{
		interval: interval,
		client:   &http.Client{Timeout: defaultProbeTimeout},
		state:    make(map[string]*backendHealth, len(backends)),
	}
	for _, b := range backends {
		h := &backendHealth{}
		h.ready.Store(true) // optimistic until the first probe lands
		p.state[b] = h
	}
	return p
}

// start launches the probe loop; stop() cancels it and waits.
func (p *prober) start(logf func(format string, args ...any)) {
	ctx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	p.wg.Add(1)
	go p.loop(ctx, logf)
}

func (p *prober) stop() {
	if p.cancel != nil {
		p.cancel()
	}
	p.wg.Wait()
}

// loop probes all backends once per interval until ctx is canceled.
func (p *prober) loop(ctx context.Context, logf func(format string, args ...any)) {
	defer p.wg.Done()
	p.probeAll(ctx, logf) // first sweep immediately, not an interval later
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.probeAll(ctx, logf)
		}
	}
}

// probeAll probes every backend concurrently and waits for the sweep
// to finish, so one wedged backend cannot delay the others' state
// updates past the probe timeout.
func (p *prober) probeAll(ctx context.Context, logf func(format string, args ...any)) {
	var wg sync.WaitGroup
	p.mu.Lock()
	for b, h := range p.state {
		wg.Add(1)
		go func(b string, h *backendHealth) {
			defer wg.Done()
			p.probeOne(ctx, b, h, logf)
		}(b, h)
	}
	p.mu.Unlock()
	wg.Wait()
}

func (p *prober) probeOne(ctx context.Context, backend string, h *backendHealth, logf func(format string, args ...any)) {
	ctx, cancel := context.WithTimeout(ctx, defaultProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, backend+"/readyz", nil)
	if err != nil {
		p.setReady(backend, h, false, logf, err.Error())
		return
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.setReady(backend, h, false, logf, err.Error())
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	p.setReady(backend, h, resp.StatusCode == http.StatusOK, logf,
		"readyz returned "+resp.Status)
}

func (p *prober) setReady(backend string, h *backendHealth, ready bool, logf func(format string, args ...any), detail string) {
	was := h.ready.Swap(ready)
	if ready {
		h.fails.Store(0)
		if !was && logf != nil {
			logf("backend %s ready again", backend)
		}
		return
	}
	if h.fails.Add(1) == 1 && logf != nil {
		logf("backend %s unready: %s", backend, detail)
	}
}

// isReady reports the latest probe verdict for backend; unknown
// backends read as unready.
func (p *prober) isReady(backend string) bool {
	p.mu.Lock()
	h := p.state[backend]
	p.mu.Unlock()
	return h != nil && h.ready.Load()
}

// unreadyCount returns how many backends are currently unready — the
// emigre_router_unready_backends gauge.
func (p *prober) unreadyCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, h := range p.state {
		if !h.ready.Load() {
			n++
		}
	}
	return n
}
