package router

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/why-not-xai/emigre/client"
)

// legResult is one upstream attempt's outcome.
type legResult struct {
	backend string
	val     any
	err     error
	took    time.Duration
	hedged  bool // true when this leg was launched by the hedge timer
}

// raceUpstream runs call against candidates with hedging and failover:
//
//   - leg 1 goes to candidates[0] (the shard owner) immediately;
//   - if it has not answered after the hedge delay, leg 2 goes to the
//     ring successor (first response wins, the loser's context is
//     canceled — the hedge);
//   - if a leg fails with a shed/transport error, the next unlaunched
//     candidate is tried immediately (failover);
//   - a definitive upstream answer (2xx, or a 4xx the backend meant)
//     wins instantly and cancels everything else.
//
// Hedging is idempotency-aware exactly like client/retry.go: only
// idempotent calls hedge or fail over on ambiguous errors; for
// non-idempotent calls, only 429/503 (request provably never admitted)
// move to another backend. All built-in ops are pure reads, so they
// all hedge; the flag keeps future mutating endpoints on the safe
// side.
//
// The returned legResult carries the winning backend; err is non-nil
// only when every launched leg failed, and is then the most
// informative of the leg errors (an *client.APIError preferred over a
// transport error, so the caller can mirror the upstream status).
func (rt *Router) raceUpstream(ctx context.Context, op string, candidates []string,
	idempotent bool, call func(ctx context.Context, backend string) (any, error)) legResult {

	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // reclaims every losing leg's request context

	if !idempotent {
		candidates = candidates[:1]
	}
	results := make(chan legResult, len(candidates)) // buffered: losers never block
	launched := 0
	launch := func(hedged bool) {
		b := candidates[launched]
		launched++
		start := time.Now()
		go func() {
			v, err := call(ctx, b)
			results <- legResult{backend: b, val: v, err: err, took: time.Since(start), hedged: hedged}
		}()
	}
	launch(false)

	hedge := time.NewTimer(rt.hedgeDelayFor(op))
	defer hedge.Stop()

	var lastErr legResult
	lastErr.err = errors.New("router: no upstream attempted")
	for done := 0; done < launched; {
		select {
		case <-ctx.Done():
			return legResult{err: ctx.Err()}
		case <-hedge.C:
			if launched < len(candidates) {
				rt.m.hedges.Inc()
				launch(true)
			}
		case res := <-results:
			done++
			if res.err == nil {
				if res.hedged {
					rt.m.hedgeWins.Inc()
				}
				return res
			}
			lastErr = pickErr(lastErr, res)
			if !failoverable(res.err, idempotent) {
				return res
			}
			if launched < len(candidates) {
				rt.m.failovers.Inc()
				launch(false)
			}
		}
	}
	return lastErr
}

// failoverable mirrors client.retryable's classification at the
// router tier: 429/503 always move on (the backend did no work);
// transport errors and ambiguous 5xx move on only for idempotent
// calls; everything else (4xx, decode errors) is the answer.
func failoverable(err error, idempotent bool) bool {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		switch apiErr.Status {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			return true
		case http.StatusInternalServerError, http.StatusBadGateway,
			http.StatusGatewayTimeout:
			return idempotent
		default:
			return false
		}
	}
	// Anything non-API (transport, context) is ambiguous.
	return idempotent && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// pickErr keeps the most informative failure: an upstream *APIError
// (carrying a real status to mirror) beats a transport error, and
// later errors beat earlier ones within a class.
func pickErr(prev, next legResult) legResult {
	var prevAPI, nextAPI *client.APIError
	prevIs := errors.As(prev.err, &prevAPI)
	nextIs := errors.As(next.err, &nextAPI)
	if prevIs && !nextIs {
		return prev
	}
	return next
}

// hedgeDelayFor returns the hedge trigger for op: the configured fixed
// delay when set, else the per-op adaptive p95.
func (rt *Router) hedgeDelayFor(op string) time.Duration {
	if rt.cfg.HedgeAfter > 0 {
		return rt.cfg.HedgeAfter
	}
	return rt.latencyFor(op).hedgeDelay()
}

// upstreamError converts a terminal legResult into the HTTP response
// the router owes its client: upstream API errors mirror their status
// and message; transport-level failures become 502.
func upstreamError(res legResult) (int, string, int) {
	var apiErr *client.APIError
	if errors.As(res.err, &apiErr) {
		return apiErr.Status, apiErr.Message, int(apiErr.RetryAfter / time.Second)
	}
	if errors.Is(res.err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout, "upstream deadline exceeded", 0
	}
	return http.StatusBadGateway, fmt.Sprintf("no backend available: %v", res.err), 0
}
