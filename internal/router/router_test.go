package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/why-not-xai/emigre/client"
	"github.com/why-not-xai/emigre/internal/testleak"
)

// fakeBackend is a scriptable stand-in for emigre-server: readiness is
// a flag, /explain answers with the backend's name in the description
// (so tests can see which shard served), and delay/status knobs model
// slow and failing nodes. Handlers poll the request context while
// delaying, like the real server's searches do.
type fakeBackend struct {
	ts       *httptest.Server
	name     string
	ready    atomic.Bool
	delay    atomic.Int64 // nanoseconds
	status   atomic.Int64 // 0 = 200
	served   atomic.Int64
	canceled atomic.Int64 // requests whose context died mid-delay
}

func newFakeBackend(t *testing.T, name string) *fakeBackend {
	t.Helper()
	b := &fakeBackend{name: name}
	b.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !b.ready.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("POST /explain", func(w http.ResponseWriter, r *http.Request) {
		var req client.ExplainRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if d := time.Duration(b.delay.Load()); d > 0 {
			select {
			case <-time.After(d):
			case <-r.Context().Done():
				b.canceled.Add(1)
				return
			}
		}
		if s := int(b.status.Load()); s != 0 {
			writeJSON(w, s, map[string]string{"error": "scripted failure"})
			return
		}
		b.served.Add(1)
		writeJSON(w, http.StatusOK, &client.ExplainResponse{
			Mode:        "remove",
			Method:      "exhaustive",
			Edges:       []client.Edge{},
			Description: "served by " + b.name + " for " + req.User,
			Verified:    true,
			Checks:      1,
			DurationUS:  7,
		})
	})
	b.ts = httptest.NewServer(mux)
	t.Cleanup(b.ts.Close)
	return b
}

func (b *fakeBackend) url() string { return b.ts.URL }

// newTestRouter builds a router over the fakes with test-friendly
// timing: fast probes, bounded upstream budget, no client retries
// (failover behavior is the unit under test, not the client's).
func newTestRouter(t *testing.T, mutate func(*Config), backends ...*fakeBackend) *Router {
	t.Helper()
	urls := make([]string, len(backends))
	for i, b := range backends {
		urls[i] = b.url()
	}
	cfg := Config{
		Backends:         urls,
		ProbeInterval:    20 * time.Millisecond,
		FailoverLegs:     2,
		UpstreamTimeout:  5 * time.Second,
		UpstreamAttempts: 1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func postExplain(t *testing.T, h http.Handler, user string) *httptest.ResponseRecorder {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"user": user, "wni": "X", "mode": "remove"})
	req := httptest.NewRequest("POST", "/explain", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeExplain(t *testing.T, rec *httptest.ResponseRecorder) client.ExplainResponse {
	t.Helper()
	var out client.ExplainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decoding %d response %q: %v", rec.Code, rec.Body.String(), err)
	}
	return out
}

// TestRouteShardAffinity: every request for one user lands on that
// user's ring owner, consistently across repeats.
func TestRouteShardAffinity(t *testing.T) {
	testleak.Check(t)
	b1, b2, b3 := newFakeBackend(t, "b1"), newFakeBackend(t, "b2"), newFakeBackend(t, "b3")
	rt := newTestRouter(t, nil, b1, b2, b3)
	for i := 0; i < 20; i++ {
		user := fmt.Sprintf("user-%d", i)
		owner := rt.ring.owner(user)
		for rep := 0; rep < 3; rep++ {
			rec := postExplain(t, rt.Handler(), user)
			if rec.Code != http.StatusOK {
				t.Fatalf("user %s: status %d: %s", user, rec.Code, rec.Body.String())
			}
			if got := rec.Header().Get(BackendHeader); got != owner {
				t.Fatalf("user %s rep %d served by %s, ring owner is %s", user, rep, got, owner)
			}
		}
	}
}

// TestHealthRoutesAroundUnready: when a backend's /readyz flips to
// 503, the prober pulls it from rotation and its users' requests land
// on the ring successor; recovery puts it back.
func TestHealthRoutesAroundUnready(t *testing.T) {
	testleak.Check(t)
	b1, b2, b3 := newFakeBackend(t, "b1"), newFakeBackend(t, "b2"), newFakeBackend(t, "b3")
	rt := newTestRouter(t, nil, b1, b2, b3)
	byURL := map[string]*fakeBackend{b1.url(): b1, b2.url(): b2, b3.url(): b3}

	user := "affinity-user"
	owner := byURL[rt.ring.owner(user)]
	owner.ready.Store(false)
	waitForProbe(t, rt, owner.url(), false)

	rec := postExplain(t, rt.Handler(), user)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(BackendHeader); got == owner.url() {
		t.Fatalf("request served by unready owner %s", got)
	}

	owner.ready.Store(true)
	waitForProbe(t, rt, owner.url(), true)
	rec = postExplain(t, rt.Handler(), user)
	if got := rec.Header().Get(BackendHeader); got != owner.url() {
		t.Fatalf("after recovery, served by %s, want owner %s", got, owner.url())
	}
}

func waitForProbe(t *testing.T, rt *Router, backend string, want bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rt.prober.isReady(backend) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("prober never saw %s ready=%v", backend, want)
}

// TestFailoverOn503: a shedding owner (503) fails over to the ring
// successor within the same request — the caller sees 200.
func TestFailoverOn503(t *testing.T) {
	testleak.Check(t)
	b1, b2, b3 := newFakeBackend(t, "b1"), newFakeBackend(t, "b2"), newFakeBackend(t, "b3")
	rt := newTestRouter(t, nil, b1, b2, b3)
	byURL := map[string]*fakeBackend{b1.url(): b1, b2.url(): b2, b3.url(): b3}

	user := "failover-user"
	owner := byURL[rt.ring.owner(user)]
	owner.status.Store(http.StatusServiceUnavailable)

	rec := postExplain(t, rt.Handler(), user)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 via failover: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(BackendHeader); got == owner.url() {
		t.Fatal("response credited to the shedding owner")
	}
	if rt.m.failovers.Value() == 0 {
		t.Fatal("failover counter never moved")
	}
}

// TestBadRequestDoesNotFailOver: a 4xx is the answer — the router must
// not burn a second backend on it.
func TestBadRequestDoesNotFailOver(t *testing.T) {
	testleak.Check(t)
	b1, b2 := newFakeBackend(t, "b1"), newFakeBackend(t, "b2")
	rt := newTestRouter(t, nil, b1, b2)
	byURL := map[string]*fakeBackend{b1.url(): b1, b2.url(): b2}
	user := "bad-request-user"
	owner := byURL[rt.ring.owner(user)]
	owner.status.Store(http.StatusNotFound)

	rec := postExplain(t, rt.Handler(), user)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want mirrored 404: %s", rec.Code, rec.Body.String())
	}
	if rt.m.failovers.Value() != 0 {
		t.Fatal("4xx triggered a failover")
	}
}

// TestHedgeSlowOwnerCancellationHygiene: with the owner wedged, the
// hedge leg answers fast, the winning response is returned, and the
// losing leg's goroutine and request context are reclaimed —
// testleak.Check fails the test if the slow leg outlives it.
func TestHedgeSlowOwnerCancellationHygiene(t *testing.T) {
	testleak.Check(t)
	b1, b2, b3 := newFakeBackend(t, "b1"), newFakeBackend(t, "b2"), newFakeBackend(t, "b3")
	rt := newTestRouter(t, func(c *Config) {
		c.HedgeAfter = 10 * time.Millisecond
	}, b1, b2, b3)
	byURL := map[string]*fakeBackend{b1.url(): b1, b2.url(): b2, b3.url(): b3}

	user := "hedge-user"
	owner := byURL[rt.ring.owner(user)]
	owner.delay.Store(int64(2 * time.Second))

	start := time.Now()
	rec := postExplain(t, rt.Handler(), user)
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(BackendHeader); got == owner.url() {
		t.Fatal("wedged owner somehow won the race")
	}
	if elapsed > time.Second {
		t.Fatalf("hedged answer took %v, want well under the owner's 2s delay", elapsed)
	}
	if rt.m.hedges.Value() == 0 || rt.m.hedgeWins.Value() == 0 {
		t.Fatalf("hedge counters: hedges=%d wins=%d, want both > 0",
			rt.m.hedges.Value(), rt.m.hedgeWins.Value())
	}
	// The loser's request context must be canceled promptly — observed
	// by the fake backend's handler unblocking on ctx.Done.
	deadline := time.Now().Add(3 * time.Second)
	for owner.canceled.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if owner.canceled.Load() == 0 {
		t.Fatal("losing hedge leg's request context was never canceled")
	}
}

// TestBatchOrderAndSharding: /explain/batch answers in request order
// with each item served by its user's ring owner.
func TestBatchOrderAndSharding(t *testing.T) {
	testleak.Check(t)
	b1, b2, b3 := newFakeBackend(t, "b1"), newFakeBackend(t, "b2"), newFakeBackend(t, "b3")
	rt := newTestRouter(t, nil, b1, b2, b3)
	names := map[string]string{b1.url(): "b1", b2.url(): "b2", b3.url(): "b3"}

	var breq BatchRequest
	users := make([]string, 24)
	for i := range users {
		users[i] = fmt.Sprintf("batch-user-%d", i)
		breq.Requests = append(breq.Requests, client.ExplainRequest{User: users[i], WNI: "X", Mode: "remove"})
	}
	body, _ := json.Marshal(breq)
	req := httptest.NewRequest("POST", "/explain/batch", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(users) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(users))
	}
	shards := map[string]bool{}
	for i, item := range resp.Results {
		if item.Status != http.StatusOK || item.Result == nil {
			t.Fatalf("item %d: status %d error %q", i, item.Status, item.Error)
		}
		wantOwner := names[rt.ring.owner(users[i])]
		want := "served by " + wantOwner + " for " + users[i]
		if item.Result.Description != want {
			t.Fatalf("item %d: %q, want %q (request order or sharding broken)", i, item.Result.Description, want)
		}
		shards[wantOwner] = true
	}
	if len(shards) < 2 {
		t.Fatalf("batch exercised %d shards, want a real fan-out", len(shards))
	}
}

// TestBatchPerItemFailure: one bad shard yields per-item errors, not a
// voided batch.
func TestBatchPerItemFailure(t *testing.T) {
	testleak.Check(t)
	b1, b2 := newFakeBackend(t, "b1"), newFakeBackend(t, "b2")
	rt := newTestRouter(t, nil, b1, b2)
	byURL := map[string]*fakeBackend{b1.url(): b1, b2.url(): b2}

	// Find users on both shards.
	var onB1, onB2 string
	for i := 0; onB1 == "" || onB2 == ""; i++ {
		u := fmt.Sprintf("pf-user-%d", i)
		if byURL[rt.ring.owner(u)] == b1 {
			if onB1 == "" {
				onB1 = u
			}
		} else if onB2 == "" {
			onB2 = u
		}
	}
	b2.status.Store(http.StatusInternalServerError)

	body, _ := json.Marshal(BatchRequest{Requests: []client.ExplainRequest{
		{User: onB1, WNI: "X", Mode: "remove"},
		{User: onB2, WNI: "X", Mode: "remove"},
	}})
	req := httptest.NewRequest("POST", "/explain/batch", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d, want 200 with per-item errors", rec.Code)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Status != http.StatusOK {
		t.Fatalf("healthy shard's item failed: %+v", resp.Results[0])
	}
	if resp.Results[1].Status != http.StatusInternalServerError || resp.Results[1].Error == "" {
		t.Fatalf("bad shard's item = %+v, want per-item 500", resp.Results[1])
	}
}

// TestRouterReadyz: draining and an all-unready ring both flip the
// router's own readiness, so a fronting balancer can drain routers the
// same way routers drain backends.
func TestRouterReadyz(t *testing.T) {
	testleak.Check(t)
	b1 := newFakeBackend(t, "b1")
	rt := newTestRouter(t, nil, b1)

	req := httptest.NewRequest("GET", "/readyz", nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("ready status = %d", rec.Code)
	}

	b1.ready.Store(false)
	waitForProbe(t, rt, b1.url(), false)
	rec = httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-backends-unready readyz = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "no ready backends") {
		t.Fatalf("body = %s", rec.Body.String())
	}

	b1.ready.Store(true)
	waitForProbe(t, rt, b1.url(), true)
	rt.SetDraining()
	rec = httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("draining readyz = %d %s", rec.Code, rec.Body.String())
	}
}

// TestRequestIDPropagation: the inbound correlation ID is echoed to
// the caller and carried to the upstream backend.
func TestRequestIDPropagation(t *testing.T) {
	testleak.Check(t)
	var upstreamRID atomic.Value
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("POST /explain", func(w http.ResponseWriter, r *http.Request) {
		upstreamRID.Store(r.Header.Get(client.RequestIDHeader))
		io.Copy(io.Discard, r.Body)
		writeJSON(w, http.StatusOK, &client.ExplainResponse{Mode: "remove", Edges: []client.Edge{}})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	rt, err := New(Config{Backends: []string{ts.URL}, ProbeInterval: 20 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)

	body, _ := json.Marshal(map[string]string{"user": "rid-user", "wni": "X"})
	req := httptest.NewRequest("POST", "/explain", bytes.NewReader(body))
	req.Header.Set(client.RequestIDHeader, "rid-test-42")
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(client.RequestIDHeader); got != "rid-test-42" {
		t.Fatalf("echoed rid = %q", got)
	}
	if got, _ := upstreamRID.Load().(string); got != "rid-test-42" {
		t.Fatalf("upstream saw rid %q, want the inbound one", got)
	}
}

// TestRouterSaturation503: the front-door admission controller sheds
// with 503 + Retry-After once capacity and queue are full.
func TestRouterSaturation503(t *testing.T) {
	testleak.Check(t)
	b1 := newFakeBackend(t, "b1")
	b1.delay.Store(int64(2 * time.Second))
	rtNoQueue, err := New(Config{
		Backends:         []string{b1.url()},
		ProbeInterval:    20 * time.Millisecond,
		MaxConcurrent:    1,
		QueueDepth:       -1,
		UpstreamTimeout:  5 * time.Second,
		UpstreamAttempts: 1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rtNoQueue.Close)

	slow := make(chan *httptest.ResponseRecorder, 1)
	go func() { slow <- postExplain(t, rtNoQueue.Handler(), "sat-user-a") }()
	// Wait for the slow request to occupy the only unit.
	deadline := time.Now().Add(3 * time.Second)
	for rtNoQueue.adm.Used() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if rtNoQueue.adm.Used() == 0 {
		t.Fatal("slow request never acquired the unit")
	}
	rec := postExplain(t, rtNoQueue.Handler(), "sat-user-b")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	b1.delay.Store(0)
	if r := <-slow; r.Code != http.StatusOK {
		t.Fatalf("slow request finished %d", r.Code)
	}
}

// TestResponseFramingMatchesServer: routed success responses use the
// exact framing the server uses — Content-Type and json.Encoder's
// trailing newline — so byte-identity holds end to end.
func TestResponseFramingMatchesServer(t *testing.T) {
	testleak.Check(t)
	b1 := newFakeBackend(t, "b1")
	rt := newTestRouter(t, nil, b1)
	rec := postExplain(t, rt.Handler(), "framing-user")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !bytes.HasSuffix(rec.Body.Bytes(), []byte("}\n")) {
		dump, _ := httputil.DumpResponse(rec.Result(), true)
		t.Fatalf("body missing Encoder framing:\n%s", dump)
	}
}
