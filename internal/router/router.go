package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/why-not-xai/emigre/client"
	"github.com/why-not-xai/emigre/internal/admit"
	"github.com/why-not-xai/emigre/internal/obs"
)

// Defaults for zero Config fields.
const (
	DefaultFailoverLegs     = 2
	DefaultMaxConcurrent    = 256
	DefaultQueueDepth       = 128
	DefaultUpstreamTimeout  = 30 * time.Second
	DefaultUpstreamAttempts = 2
)

// Op names used for routing metrics and per-op hedge tracking.
const (
	opExplain   = "explain"
	opRecommend = "recommend"
	opDiagnose  = "diagnose"
	opBatch     = "batch"
)

// Config wires a Router to its backends.
type Config struct {
	// Backends are the emigre-server base URLs (scheme optional;
	// "host:port" gets "http://"). At least one is required.
	Backends []string
	// VirtualNodes is the per-backend point count on the hash ring
	// (0 = DefaultVirtualNodes).
	VirtualNodes int
	// ProbeInterval is the /readyz poll period (0 = DefaultProbeInterval).
	ProbeInterval time.Duration
	// HedgeAfter, when > 0, is a fixed hedge trigger; 0 selects the
	// adaptive per-op p95 delay.
	HedgeAfter time.Duration
	// FailoverLegs caps how many distinct backends one request may try,
	// hedge leg included (0 = DefaultFailoverLegs; 1 disables hedging).
	FailoverLegs int
	// MaxConcurrent and QueueDepth shape the front-door admission
	// controller, in request units (a batch costs its request count).
	MaxConcurrent int64
	QueueDepth    int
	// UpstreamTimeout bounds one routed call end to end, hedge legs
	// included (0 = DefaultUpstreamTimeout).
	UpstreamTimeout time.Duration
	// UpstreamAttempts is the resilient client's per-backend attempt
	// budget (0 = DefaultUpstreamAttempts; the router's failover is a
	// separate, cross-backend layer).
	UpstreamAttempts int
	// Logger receives request and probe lines; nil discards them.
	Logger *log.Logger
}

// metrics is the emigre_router_* family set.
type metrics struct {
	requests  map[string]*obs.Counter // by op
	errors    map[string]*obs.Counter // by op (5xx and transport only)
	upReqs    map[string]*obs.Counter // by backend
	upErrs    map[string]*obs.Counter // by backend
	upLat     map[string]*obs.Histogram
	hedges    *obs.Counter
	hedgeWins *obs.Counter
	failovers *obs.Counter
	batchSub  *obs.Counter
}

// Router is the partitioned-serving HTTP front. Build with New, serve
// Handler(), stop the prober with Close.
type Router struct {
	cfg      Config
	ring     *ring
	prober   *prober
	clients  map[string]*client.Client
	adm      *admit.Controller
	reg      *obs.Registry
	log      *log.Logger
	handler  http.Handler
	draining atomic.Bool
	m        metrics
	lat      map[string]*latencyTracker
}

// New builds a router over cfg.Backends and starts its health prober.
func New(cfg Config, reg *obs.Registry) (*Router, error) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	backends := make([]string, 0, len(cfg.Backends))
	for _, b := range cfg.Backends {
		n, err := normalizeBackend(b)
		if err != nil {
			return nil, err
		}
		backends = append(backends, n)
	}
	ring, err := newRing(backends, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	if cfg.FailoverLegs <= 0 {
		cfg.FailoverLegs = DefaultFailoverLegs
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	switch {
	case cfg.QueueDepth == 0:
		cfg.QueueDepth = DefaultQueueDepth
	case cfg.QueueDepth < 0:
		cfg.QueueDepth = 0 // no queueing, mirroring server.Config
	}
	if cfg.UpstreamTimeout <= 0 {
		cfg.UpstreamTimeout = DefaultUpstreamTimeout
	}
	if cfg.UpstreamAttempts <= 0 {
		cfg.UpstreamAttempts = DefaultUpstreamAttempts
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(nopWriter{}, "", 0)
	}

	rt := &Router{
		cfg:     cfg,
		ring:    ring,
		prober:  newProber(backends, cfg.ProbeInterval),
		clients: make(map[string]*client.Client, len(backends)),
		adm:     admit.New(cfg.MaxConcurrent, cfg.QueueDepth),
		reg:     reg,
		log:     logger,
		lat: map[string]*latencyTracker{
			opExplain:   {},
			opRecommend: {},
			opDiagnose:  {},
			opBatch:     {},
		},
	}
	for _, b := range backends {
		c, err := client.New(client.Config{
			BaseURL:     b,
			MaxAttempts: cfg.UpstreamAttempts,
			BaseDelay:   25 * time.Millisecond,
			MaxDelay:    250 * time.Millisecond,
		})
		if err != nil {
			return nil, fmt.Errorf("router: backend %s: %w", b, err)
		}
		rt.clients[b] = c
	}

	rt.m = metrics{
		requests:  map[string]*obs.Counter{},
		errors:    map[string]*obs.Counter{},
		upReqs:    map[string]*obs.Counter{},
		upErrs:    map[string]*obs.Counter{},
		upLat:     map[string]*obs.Histogram{},
		hedges:    reg.Counter("emigre_router_hedges_total", "hedge legs launched after the p95 delay"),
		hedgeWins: reg.Counter("emigre_router_hedge_wins_total", "requests won by the hedged (second) leg"),
		failovers: reg.Counter("emigre_router_failovers_total", "legs launched because an earlier backend failed"),
		batchSub:  reg.Counter("emigre_router_batch_subrequests_total", "individual explain requests carried by /explain/batch bodies"),
	}
	for _, op := range []string{opExplain, opRecommend, opDiagnose, opBatch} {
		rt.m.requests[op] = reg.Counter("emigre_router_requests_total", "routed requests by op", obs.L("op", op))
		rt.m.errors[op] = reg.Counter("emigre_router_errors_total", "routed requests that failed (shed, 5xx or transport) by op", obs.L("op", op))
	}
	for _, b := range backends {
		rt.m.upReqs[b] = reg.Counter("emigre_router_upstream_requests_total", "upstream legs sent by backend", obs.L("backend", b))
		rt.m.upErrs[b] = reg.Counter("emigre_router_upstream_errors_total", "upstream legs that failed by backend", obs.L("backend", b))
		rt.m.upLat[b] = reg.Histogram("emigre_router_upstream_latency_seconds", "upstream leg latency by backend", obs.DefBuckets(), obs.L("backend", b))
	}
	reg.GaugeFunc("emigre_router_ring_size", "backends on the hash ring", func() int64 { return int64(ring.size()) })
	reg.GaugeFunc("emigre_router_unready_backends", "backends whose last readiness probe failed", rt.prober.unreadyCount)
	reg.GaugeFunc("emigre_router_inflight_requests", "request units currently admitted", rt.adm.Used)
	reg.GaugeFunc("emigre_router_queued_requests", "requests waiting for admission", rt.adm.QueueLen)
	rt.adm.Rejections = reg.Counter("emigre_router_rejections_total", "requests shed at the router front door")
	rt.adm.Clamped = reg.Counter("emigre_router_clamped_weights_total", "batch requests wider than router capacity, clamped")

	mux := http.NewServeMux()
	mux.HandleFunc("POST /explain", rt.handleExplain)
	mux.HandleFunc("POST /explain/batch", rt.handleBatch)
	mux.HandleFunc("GET /recommend", rt.handleRecommend)
	mux.HandleFunc("POST /diagnose", rt.handleDiagnose)
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	mux.HandleFunc("GET /readyz", rt.handleReady)
	mux.Handle("GET /metrics", obs.Handler(reg))
	rt.handler = rt.withMiddleware(mux)

	rt.prober.start(logger.Printf)
	return rt, nil
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

// normalizeBackend turns "host:port" into "http://host:port" and
// strips any trailing slash, so ring identity and client base agree.
func normalizeBackend(b string) (string, error) {
	b = strings.TrimRight(strings.TrimSpace(b), "/")
	if b == "" {
		return "", fmt.Errorf("router: empty backend address")
	}
	if !strings.Contains(b, "://") {
		b = "http://" + b
	}
	u, err := url.Parse(b)
	if err != nil || u.Host == "" {
		return "", fmt.Errorf("router: bad backend address %q", b)
	}
	return b, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.handler }

// Registry returns the router's metric registry.
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// SetDraining flips /readyz to 503; implements server.ReadinessSetter
// so cmd/emigre-router drains with server.DrainOrdered.
func (rt *Router) SetDraining() { rt.draining.Store(true) }

// Close stops the health prober. The handler keeps serving (requests
// in flight during shutdown still need routing decisions).
func (rt *Router) Close() { rt.prober.stop() }

// latencyFor returns op's tracker (opExplain for unknown ops).
func (rt *Router) latencyFor(op string) *latencyTracker {
	if l, ok := rt.lat[op]; ok {
		return l
	}
	return rt.lat[opExplain]
}

// candidates returns the backends a request keyed by user may try, in
// ring order, ready ones first: the owner and its successors filtered
// by the latest probe verdicts, capped at FailoverLegs. When every
// backend is unready the unfiltered prefix is returned — a stale "all
// down" verdict must degrade to trying, not to refusing.
func (rt *Router) candidates(user string) []string {
	all := rt.ring.successors(user, rt.ring.size())
	ready := make([]string, 0, rt.cfg.FailoverLegs)
	for _, b := range all {
		if rt.prober.isReady(b) {
			ready = append(ready, b)
			if len(ready) == rt.cfg.FailoverLegs {
				return ready
			}
		}
	}
	if len(ready) == 0 {
		if len(all) > rt.cfg.FailoverLegs {
			all = all[:rt.cfg.FailoverLegs]
		}
		return all
	}
	return ready
}

// callUpstream wraps one leg: per-backend counters, latency histogram
// and the per-op hedge-delay tracker.
func (rt *Router) callUpstream(op, backend string, fn func(c *client.Client) (any, error)) (any, error) {
	rt.m.upReqs[backend].Inc()
	start := time.Now()
	v, err := fn(rt.clients[backend])
	took := time.Since(start)
	rt.m.upLat[backend].Observe(took.Seconds())
	if err != nil {
		rt.m.upErrs[backend].Inc()
		return nil, err
	}
	rt.latencyFor(op).observe(took)
	return v, nil
}

// admitRequest acquires weight units at the front door, writing the
// 503 itself on saturation. Callers must invoke the release func on
// admission success.
func (rt *Router) admitRequest(ctx context.Context, w http.ResponseWriter, op string, weight int64) (func(), bool) {
	err := rt.adm.Acquire(ctx, weight)
	if err == nil {
		acquired := time.Now()
		return func() { rt.adm.ReleaseObserved(weight, time.Since(acquired)) }, true
	}
	rt.m.errors[op].Inc()
	if errors.Is(err, admit.ErrSaturated) {
		secs := rt.adm.RetryAfterSeconds()
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":               "router saturated: too many requests in flight; retry later",
			"retry_after_seconds": secs,
		})
		return nil, false
	}
	writeError(w, http.StatusGatewayTimeout, "timed out waiting for a routing slot: "+err.Error())
	return nil, false
}

// route runs one single-user op end to end: admission, candidate
// selection, hedged/failed-over upstream call, response mirroring.
// decodeMeta exposes the winning call's Meta for tally headers.
func (rt *Router) route(w http.ResponseWriter, r *http.Request, op, user string,
	call func(ctx context.Context, backend string) (any, error), metaOf func(v any) client.Meta) {

	rt.m.requests[op].Inc()
	if user == "" {
		writeError(w, http.StatusBadRequest, "user is required")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.UpstreamTimeout)
	defer cancel()
	ctx = client.WithRequestID(ctx, requestIDFrom(r))

	release, ok := rt.admitRequest(ctx, w, op, 1)
	if !ok {
		return
	}
	defer release()

	res := rt.raceUpstream(ctx, op, rt.candidates(user), true, call)
	if res.err != nil {
		rt.m.errors[op].Inc()
		status, msg, retryAfter := upstreamError(res)
		if retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
			writeJSON(w, status, map[string]any{"error": msg, "retry_after_seconds": retryAfter})
			return
		}
		writeError(w, status, msg)
		return
	}
	meta := metaOf(res.val)
	setUpstreamHeaders(w, res.backend, meta)
	writeJSON(w, http.StatusOK, res.val)
}

func (rt *Router) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req client.ExplainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		rt.m.requests[opExplain].Inc()
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	rt.route(w, r, opExplain, req.User,
		func(ctx context.Context, backend string) (any, error) {
			return rt.callUpstream(opExplain, backend, func(c *client.Client) (any, error) {
				return c.Explain(ctx, req)
			})
		},
		func(v any) client.Meta { return v.(*client.ExplainResponse).Meta })
}

func (rt *Router) handleRecommend(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	n := 0
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			rt.m.requests[opRecommend].Inc()
			writeError(w, http.StatusBadRequest, "bad n: "+s)
			return
		}
		n = v
	}
	rt.route(w, r, opRecommend, user,
		func(ctx context.Context, backend string) (any, error) {
			return rt.callUpstream(opRecommend, backend, func(c *client.Client) (any, error) {
				return c.Recommend(ctx, user, n)
			})
		},
		func(v any) client.Meta { return v.(*client.RecommendResponse).Meta })
}

func (rt *Router) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	var req client.DiagnoseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		rt.m.requests[opDiagnose].Inc()
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	rt.route(w, r, opDiagnose, req.User,
		func(ctx context.Context, backend string) (any, error) {
			return rt.callUpstream(opDiagnose, backend, func(c *client.Client) (any, error) {
				return c.Diagnose(ctx, req)
			})
		},
		func(v any) client.Meta { return v.(*client.DiagnoseResponse).Meta })
}

func (rt *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady: the router is ready when it is not draining and at
// least one backend passed its last readiness probe — a router with an
// empty ring cannot serve anything.
func (rt *Router) handleReady(w http.ResponseWriter, _ *http.Request) {
	if rt.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if int(rt.prober.unreadyCount()) >= rt.ring.size() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no ready backends"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// writeJSON mirrors the server's writer byte for byte: same
// Content-Type, same json.Encoder framing (trailing newline), so a
// routed response is indistinguishable from a direct one.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The status line is already on the wire: an encode failure here can
	// only truncate the body, which the client's decoder reports.
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// BackendHeader names the backend that served a routed response —
// debugging aid for shard-affinity questions, excluded from byte
// identity (headers are not the body).
const BackendHeader = "X-Emigre-Backend"

// setUpstreamHeaders propagates the winning backend's wire metadata so
// loadgen session captures record the same tallies through the router
// as they do direct.
func setUpstreamHeaders(w http.ResponseWriter, backend string, meta client.Meta) {
	w.Header().Set(BackendHeader, backend)
	if meta.CacheHits > 0 || meta.CacheMisses > 0 {
		w.Header().Set("X-Emigre-Cache",
			strconv.FormatInt(meta.CacheHits, 10)+"h/"+strconv.FormatInt(meta.CacheMisses, 10)+"m")
	}
	if meta.ParCommitted > 0 || meta.ParWasted > 0 {
		w.Header().Set("X-Emigre-Par",
			strconv.FormatInt(meta.ParCommitted, 10)+"c/"+strconv.FormatInt(meta.ParWasted, 10)+"w")
	}
}
