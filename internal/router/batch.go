package router

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"

	"github.com/why-not-xai/emigre/client"
)

// maxBatchRequests bounds one /explain/batch body; bigger batches
// should be split by the caller (the bound keeps one request from
// monopolizing the admission gate).
const maxBatchRequests = 256

// BatchRequest is the /explain/batch body: independent Why-Not
// questions, answered in order.
type BatchRequest struct {
	Requests []client.ExplainRequest `json:"requests"`
}

// BatchItem is one slot of a batch response: exactly one of Result or
// Error is set. Status carries the per-item HTTP status the request
// would have received standalone.
type BatchItem struct {
	Status int                     `json:"status"`
	Result *client.ExplainResponse `json:"result,omitempty"`
	Error  string                  `json:"error,omitempty"`
}

// BatchResponse answers /explain/batch. Results[i] answers
// Requests[i] — order is the caller's, not the fan-out's.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// handleBatch splits a multi-user body into per-backend sub-batches by
// ring ownership, fans the sub-batches out concurrently through the
// resilient client, and reassembles the answers in request order.
// Per-item failures are per-item results, not a batch failure: one
// cold shard must not void the other users' answers.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	rt.m.requests[opBatch].Inc()
	var body BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	if len(body.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "requests is empty")
		return
	}
	if len(body.Requests) > maxBatchRequests {
		writeError(w, http.StatusBadRequest,
			"batch of "+strconv.Itoa(len(body.Requests))+" exceeds the "+strconv.Itoa(maxBatchRequests)+"-request limit")
		return
	}
	for i, req := range body.Requests {
		if req.User == "" {
			writeError(w, http.StatusBadRequest, "requests["+strconv.Itoa(i)+"]: user is required")
			return
		}
	}
	rt.m.batchSub.Add(int64(len(body.Requests)))

	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.UpstreamTimeout)
	defer cancel()
	ctx = client.WithRequestID(ctx, requestIDFrom(r))

	// The batch holds one admission unit per item for its whole
	// duration: a 64-user batch is 64 users' worth of upstream work.
	release, ok := rt.admitRequest(ctx, w, opBatch, int64(len(body.Requests)))
	if !ok {
		return
	}
	defer release()

	// Group items by owning backend, preserving each item's original
	// index for reassembly.
	type slot struct {
		idx int
		req client.ExplainRequest
	}
	groups := make(map[string][]slot)
	for i, req := range body.Requests {
		owner := rt.candidates(req.User)[0]
		groups[owner] = append(groups[owner], slot{idx: i, req: req})
	}

	results := make([]BatchItem, len(body.Requests))
	var wg sync.WaitGroup
	for backend, slots := range groups {
		wg.Add(1)
		go func(backend string, slots []slot) {
			defer wg.Done()
			for _, s := range slots {
				if ctx.Err() != nil {
					results[s.idx] = BatchItem{Status: http.StatusGatewayTimeout, Error: "batch deadline exceeded"}
					continue
				}
				v, err := rt.callUpstream(opExplain, backend, func(c *client.Client) (any, error) {
					return c.Explain(ctx, s.req)
				})
				if err != nil {
					status, msg, _ := upstreamError(legResult{err: err})
					results[s.idx] = BatchItem{Status: status, Error: msg}
					continue
				}
				results[s.idx] = BatchItem{Status: http.StatusOK, Result: v.(*client.ExplainResponse)}
			}
		}(backend, slots)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}
