package router

import (
	"sort"
	"sync"
	"time"
)

// Hedge-delay policy bounds. The adaptive delay is the p95 of recent
// upstream latencies: hedging earlier than p95 more than doubles
// upstream load for little tail win ("The Tail at Scale" budgets
// hedges at ~5% extra load); the floor keeps a fast warm cache from
// hedging everything, and the ceiling keeps a cold start from never
// hedging at all.
const (
	latencyWindow   = 256
	minHedgeDelay   = 2 * time.Millisecond
	maxHedgeDelay   = 2 * time.Second
	coldHedgeDelay  = 100 * time.Millisecond // until minHedgeSamples observations
	minHedgeSamples = 8
)

// latencyTracker is a fixed-size ring of recent upstream latencies
// feeding the adaptive hedge delay. One tracker per op keeps cheap
// /recommend calls from dragging the /explain hedge delay down.
type latencyTracker struct {
	mu  sync.Mutex
	buf [latencyWindow]time.Duration
	n   int // total observations ever
}

// observe records one upstream latency.
func (l *latencyTracker) observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.n%latencyWindow] = d
	l.n++
	l.mu.Unlock()
}

// hedgeDelay returns the current hedge trigger: p95 of the window,
// clamped to [minHedgeDelay, maxHedgeDelay], or coldHedgeDelay while
// the window holds fewer than minHedgeSamples observations.
func (l *latencyTracker) hedgeDelay() time.Duration {
	l.mu.Lock()
	n := l.n
	if n > latencyWindow {
		n = latencyWindow
	}
	sample := make([]time.Duration, n)
	copy(sample, l.buf[:n])
	total := l.n
	l.mu.Unlock()

	if total < minHedgeSamples {
		return coldHedgeDelay
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	rank := int(0.95*float64(n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	d := sample[rank-1]
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	if d > maxHedgeDelay {
		d = maxHedgeDelay
	}
	return d
}
