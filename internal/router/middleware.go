package router

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"runtime/debug"
	"time"

	"github.com/why-not-xai/emigre/client"
)

// maxRequestIDLen mirrors the server's bound on client-supplied IDs.
const maxRequestIDLen = 64

type requestIDKey struct{}

// requestIDFrom returns the correlation ID the middleware pinned on
// the request context (fresh random when the middleware is absent, as
// in direct handler tests).
func requestIDFrom(r *http.Request) string {
	if id, _ := r.Context().Value(requestIDKey{}).(string); id != "" {
		return id
	}
	return newRequestID()
}

// newRequestID mints a 16-hex-char random correlation ID, same shape
// as the server's.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID applies the server's acceptance rule: short,
// printable ASCII, no spaces or quotes — an ID is either the client's
// exact string or unambiguously router-minted.
func sanitizeRequestID(s string) string {
	if s == "" || len(s) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c > '~' || c == '"' {
			return ""
		}
	}
	return s
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status = status
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the wrapped writer to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// withMiddleware adds panic recovery, correlation-ID adoption/echo and
// one access-log line per request. The same X-Emigre-Request-Id flows
// inbound → router log → every upstream leg → backend log, so one grep
// follows a request across the whole topology.
func (rt *Router) withMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := sanitizeRequestID(r.Header.Get(client.RequestIDHeader))
		if rid == "" {
			rid = newRequestID()
		}
		w.Header().Set(client.RequestIDHeader, rid)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, rid))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				rt.log.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, "internal router error")
				}
			}
			rt.log.Printf("%s %s %d %s rid=%s backend=%s",
				r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond),
				rid, sw.Header().Get(BackendHeader))
		}()
		next.ServeHTTP(sw, r)
	})
}
