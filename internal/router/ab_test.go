package router

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"
	"time"

	emigre "github.com/why-not-xai/emigre"
	"github.com/why-not-xai/emigre/internal/server"
	"github.com/why-not-xai/emigre/internal/testleak"
)

// newBooksBackend boots a real emigre-server over the books graph —
// the A/B tests compare the router against the genuine article, not a
// fake.
func newBooksBackend(t *testing.T) *httptest.Server {
	t.Helper()
	books, err := emigre.NewBooks()
	if err != nil {
		t.Fatal(err)
	}
	rc := emigre.DefaultRecommenderConfig(books.Types.Item)
	rc.Beta = 1
	rec, err := emigre.NewRecommender(books.Graph, rc)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Graph:       books.Graph,
		Recommender: rec,
		Options: emigre.Options{
			AllowedEdgeTypes: books.ActionEdgeTypes(),
			AddEdgeType:      books.Types.Rated,
		},
		Logger: log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// durationRe scrubs the only legitimately nondeterministic byte range
// of an explain response before comparison.
var durationRe = regexp.MustCompile(`"duration_us":\d+`)

func normalizeDuration(b []byte) []byte {
	return durationRe.ReplaceAll(b, []byte(`"duration_us":0`))
}

func postRaw(t *testing.T, baseURL, path string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func getRaw(t *testing.T, baseURL, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(baseURL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestRoutedExplainByteIdenticalToDirect is the A/B acceptance check:
// an explain response served through the router — with hedging forced
// on, so the answer may come from either leg — is byte-identical to
// the same question asked directly of a backend, modulo duration_us.
// Run under -race in CI.
func TestRoutedExplainByteIdenticalToDirect(t *testing.T) {
	testleak.Check(t, "emigre") // backend search worker pools drain asynchronously
	back1, back2 := newBooksBackend(t), newBooksBackend(t)

	rt, err := New(Config{
		Backends:      []string{back1.URL, back2.URL},
		ProbeInterval: 50 * time.Millisecond,
		HedgeAfter:    time.Nanosecond, // hedge every request: identity must survive either leg winning
		FailoverLegs:  2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	questions := []map[string]any{
		{"user": "Paul", "wni": "Harry Potter", "mode": "remove", "method": "powerset"},
		{"user": "Paul", "wni": "Harry Potter", "mode": "remove", "method": "exhaustive"},
		{"user": "Paul", "items": []string{"Harry Potter", "The Hobbit"}, "mode": "add"},
		{"user": "Paul", "category": "Fantasy", "mode": "add"},
	}
	for i, q := range questions {
		directStatus, direct := postRaw(t, back1.URL, "/explain", q)
		routedStatus, routed := postRaw(t, front.URL, "/explain", q)
		if directStatus != http.StatusOK || routedStatus != http.StatusOK {
			t.Fatalf("q%d: direct=%d routed=%d: %s / %s", i, directStatus, routedStatus, direct, routed)
		}
		if !bytes.Equal(normalizeDuration(direct), normalizeDuration(routed)) {
			t.Fatalf("q%d: routed response differs from direct:\ndirect: %s\nrouted: %s", i, direct, routed)
		}
	}
	if rt.m.hedges.Value() == 0 {
		t.Fatal("hedging never fired — the A/B run did not exercise the hedge path")
	}

	// Error shapes must mirror too: a 422 from the backend arrives
	// unchanged through the router.
	q := map[string]any{"user": "Paul", "wni": "Python"}
	directStatus, direct := postRaw(t, back1.URL, "/explain", q)
	routedStatus, routed := postRaw(t, front.URL, "/explain", q)
	if directStatus != http.StatusUnprocessableEntity || routedStatus != directStatus {
		t.Fatalf("422 mirror: direct=%d routed=%d", directStatus, routedStatus)
	}
	if !bytes.Equal(direct, routed) {
		t.Fatalf("422 body differs:\ndirect: %s\nrouted: %s", direct, routed)
	}
}

// TestRoutedRecommendByteIdenticalToDirect: same identity contract for
// the read-side endpoint.
func TestRoutedRecommendByteIdenticalToDirect(t *testing.T) {
	testleak.Check(t, "emigre")
	back := newBooksBackend(t)
	rt, err := New(Config{
		Backends:      []string{back.URL},
		ProbeInterval: 50 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	directStatus, direct := getRaw(t, back.URL, "/recommend?user=Paul&n=5")
	routedStatus, routed := getRaw(t, front.URL, "/recommend?user=Paul&n=5")
	if directStatus != http.StatusOK || routedStatus != http.StatusOK {
		t.Fatalf("direct=%d routed=%d", directStatus, routedStatus)
	}
	if !bytes.Equal(direct, routed) {
		t.Fatalf("recommend differs:\ndirect: %s\nrouted: %s", direct, routed)
	}

	q := map[string]any{"user": "Paul", "wni": "The Hobbit", "mode": "remove"}
	directStatus, direct = postRaw(t, back.URL, "/diagnose", q)
	routedStatus, routed = postRaw(t, front.URL, "/diagnose", q)
	if directStatus != http.StatusOK || routedStatus != http.StatusOK {
		t.Fatalf("diagnose: direct=%d routed=%d: %s / %s", directStatus, routedStatus, direct, routed)
	}
	if !bytes.Equal(direct, routed) {
		t.Fatalf("diagnose differs:\ndirect: %s\nrouted: %s", direct, routed)
	}
}

// TestRoutedBatchMatchesSingles: each slot of a routed batch carries
// the same payload the same question yields as a standalone routed
// call (duration scrubbed).
func TestRoutedBatchMatchesSingles(t *testing.T) {
	testleak.Check(t, "emigre")
	back1, back2 := newBooksBackend(t), newBooksBackend(t)
	rt, err := New(Config{
		Backends:      []string{back1.URL, back2.URL},
		ProbeInterval: 50 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	q := map[string]any{"user": "Paul", "wni": "Harry Potter", "mode": "remove", "method": "powerset"}
	singleStatus, single := postRaw(t, front.URL, "/explain", q)
	if singleStatus != http.StatusOK {
		t.Fatalf("single: %d %s", singleStatus, single)
	}
	batchStatus, batchRaw := postRaw(t, front.URL, "/explain/batch", map[string]any{
		"requests": []map[string]any{q, q},
	})
	if batchStatus != http.StatusOK {
		t.Fatalf("batch: %d %s", batchStatus, batchRaw)
	}
	var batch BatchResponse
	if err := json.Unmarshal(batchRaw, &batch); err != nil {
		t.Fatal(err)
	}
	var want map[string]any
	if err := json.Unmarshal(normalizeDuration(single), &want); err != nil {
		t.Fatal(err)
	}
	for i, item := range batch.Results {
		if item.Status != http.StatusOK || item.Result == nil {
			t.Fatalf("slot %d: %+v", i, item)
		}
		gotRaw, err := json.Marshal(item.Result)
		if err != nil {
			t.Fatal(err)
		}
		wantRaw, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		var got map[string]any
		if err := json.Unmarshal(normalizeDuration(gotRaw), &got); err != nil {
			t.Fatal(err)
		}
		gotNorm, _ := json.Marshal(got)
		if !bytes.Equal(gotNorm, wantRaw) {
			t.Fatalf("slot %d differs from single:\nsingle: %s\nbatch:  %s", i, wantRaw, gotNorm)
		}
	}
}
