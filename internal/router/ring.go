// Package router is the partitioned-serving front for emigre: a
// stdlib-only HTTP router that consistent-hashes each request's user
// over a ring of emigre-server backends (so a user's warm PPR push
// state and cached vectors live in exactly one shard), probes backend
// readiness and routes around drained or dead nodes, hedges slow
// explain requests against the ring successor, and coalesces
// multi-user batches into per-backend fan-outs.
package router

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-backend virtual-node count. 128
// points per backend keeps the max/min shard-size ratio within a few
// percent for small rings while the ring stays tiny (N×128 points).
const DefaultVirtualNodes = 128

// ring is an immutable consistent-hash ring: each backend owns
// VirtualNodes points on a 64-bit circle, and a key routes to the
// backend owning the first point clockwise from the key's hash.
// Immutability is the concurrency story — membership changes build a
// new ring and swap the pointer.
type ring struct {
	points   []ringPoint // sorted by hash
	backends []string    // distinct, insertion order
}

type ringPoint struct {
	hash    uint64
	backend string
}

// hashKey is FNV-1a 64 run through a splitmix64 finalizer: fast,
// dependency-free, and stable across processes and restarts — the
// shard map must outlive any one router. The finalizer matters: raw
// FNV-1a barely avalanches its trailing bytes, so near-identical keys
// ("user-1".."user-30", and the ring's own vnode keys "b#0".."b#127")
// land in tight clusters and one backend silently inherits half the
// keyspace. Mixing spreads those clusters over the full circle.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Stafford variant 13): a bijective
// avalanche over uint64, so it cannot introduce collisions.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newRing builds a ring of the given backends with vnodes points each.
// Backend identity is its address string; duplicates are rejected
// (two points for one address would silently halve every other shard).
func newRing(backends []string, vnodes int) (*ring, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("router: ring needs at least one backend")
	}
	if vnodes < 1 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(backends))
	r := &ring{
		points:   make([]ringPoint, 0, len(backends)*vnodes),
		backends: make([]string, 0, len(backends)),
	}
	for _, b := range backends {
		if b == "" {
			return nil, fmt.Errorf("router: empty backend address")
		}
		if seen[b] {
			return nil, fmt.Errorf("router: duplicate backend %q", b)
		}
		seen[b] = true
		r.backends = append(r.backends, b)
		for v := 0; v < vnodes; v++ {
			// The point key embeds the vnode index with a separator that
			// cannot occur in a host:port address, so "host:1" vnode 2 and
			// "host:12" vnode 0 ("host:1#2" vs "host:12#0") never collide.
			r.points = append(r.points, ringPoint{
				hash:    hashKey(b + "#" + strconv.Itoa(v)),
				backend: b,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by address so the ring is
		// deterministic regardless of input order.
		return r.points[i].backend < r.points[j].backend
	})
	return r, nil
}

// owner returns the backend owning key: the first ring point clockwise
// from the key's hash.
func (r *ring) owner(key string) string {
	return r.points[r.search(hashKey(key))].backend
}

// search returns the index of the first point with hash >= h, wrapping
// to 0 past the last point.
func (r *ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// successors returns up to n distinct backends in clockwise order
// starting at key's owner. successors(key, 1)[0] == owner(key); the
// rest are the failover/hedge order — the backends that would inherit
// the shard if earlier ones left the ring, so a hedged request lands
// where the user's state would migrate to anyway.
func (r *ring) successors(key string, n int) []string {
	if n > len(r.backends) {
		n = len(r.backends)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	start := r.search(hashKey(key))
	for i := 0; len(out) < n && i < len(r.points); i++ {
		b := r.points[(start+i)%len(r.points)].backend
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

// size returns the number of backends on the ring.
func (r *ring) size() int { return len(r.backends) }
