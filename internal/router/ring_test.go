package router

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("user-%d", i)
	}
	return out
}

// TestRingStabilityOnRemoval pins the property warm shards depend on:
// removing one backend only moves the keys that backend owned — every
// other key keeps its owner, so its pprcache shard stays warm.
func TestRingStabilityOnRemoval(t *testing.T) {
	backends := []string{"http://b1:1", "http://b2:1", "http://b3:1", "http://b4:1"}
	full, err := newRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := newRing(backends[:3], 0) // b4 removed
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range keys(4096) {
		before := full.owner(k)
		after := reduced.owner(k)
		if before == "http://b4:1" {
			continue // orphaned keys must land somewhere new
		}
		if before != after {
			moved++
			t.Errorf("key %s moved %s -> %s though its owner survived", k, before, after)
		}
	}
	if moved > 0 {
		t.Fatalf("%d keys moved off surviving owners", moved)
	}
}

// TestRingBalance: with 128 vnodes the shards stay within a small
// factor of each other — no backend silently takes half the keyspace.
func TestRingBalance(t *testing.T) {
	backends := []string{"http://b1:1", "http://b2:1", "http://b3:1"}
	r, err := newRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, k := range keys(30000) {
		counts[r.owner(k)]++
	}
	min, max := 1<<30, 0
	for _, b := range backends {
		c := counts[b]
		if c == 0 {
			t.Fatalf("backend %s owns no keys", b)
		}
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if float64(max) > 2.5*float64(min) {
		t.Fatalf("shard imbalance: min=%d max=%d", min, max)
	}
}

// TestRingSuccessorsDistinctAndOrdered: successors start at the owner,
// never repeat a backend, and cap at the ring size.
func TestRingSuccessorsDistinctAndOrdered(t *testing.T) {
	backends := []string{"http://b1:1", "http://b2:1", "http://b3:1"}
	r, err := newRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(200) {
		s := r.successors(k, 10)
		if len(s) != len(backends) {
			t.Fatalf("successors(%s) = %v, want %d distinct", k, s, len(backends))
		}
		if s[0] != r.owner(k) {
			t.Fatalf("successors(%s)[0] = %s, owner = %s", k, s[0], r.owner(k))
		}
		seen := map[string]bool{}
		for _, b := range s {
			if seen[b] {
				t.Fatalf("successors(%s) repeats %s", k, b)
			}
			seen[b] = true
		}
	}
}

// TestRingSequentialKeysDoNotCluster is the regression test for the
// unmixed-FNV bug: raw FNV-1a barely avalanches trailing bytes, so
// sequentially-numbered keys ("user-0", "user-1", ...) — the shape
// real user ids actually have — landed in long same-owner runs and one
// backend inherited whole blocks of the population. With the mixed
// hash, consecutive keys change owner about as often as independent
// uniform draws would.
func TestRingSequentialKeysDoNotCluster(t *testing.T) {
	backends := []string{"http://b1:1", "http://b2:1", "http://b3:1"}
	r, err := newRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	ks := keys(1000)
	transitions := 0
	counts := map[string]int{}
	for i, k := range ks {
		counts[r.owner(k)]++
		if i > 0 && r.owner(k) != r.owner(ks[i-1]) {
			transitions++
		}
	}
	// Independent draws over 3 backends flip owner with p = 2/3:
	// ~666 transitions over 999 pairs. The unmixed hash produced runs
	// of 10-100 identical owners (a few dozen transitions total), so
	// 450 splits the regimes with huge margin on both sides.
	if transitions < 450 {
		t.Fatalf("sequential keys cluster: only %d owner transitions over %d keys", transitions, len(ks))
	}
	for _, b := range backends {
		if c := counts[b]; c < len(ks)/6 {
			t.Fatalf("backend %s owns only %d of %d sequential keys", b, c, len(ks))
		}
	}
}

// TestRingRejectsBadMembership: empty and duplicate backends are
// construction errors, not silent shard corruption.
func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := newRing(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := newRing([]string{"http://b1:1", "http://b1:1"}, 0); err == nil {
		t.Fatal("duplicate backend accepted")
	}
	if _, err := newRing([]string{""}, 0); err == nil {
		t.Fatal("empty backend accepted")
	}
}
