// Package pprcache is a concurrency-safe, sharded LRU cache of PPR
// push state — the scoring substrate every recommendation and every
// EMiGRe explanation bottoms out in. Entries hold a ppr.PushResult:
// vector-level producers (GetOrCompute) store estimates only, while
// result-level producers (GetOrComputeResult) keep the residual pair
// resident so incremental "delta" CHECKs can warm-start pushes from a
// cached base instead of recomputing from scratch. Under serving
// traffic the same
// forward vector is recomputed for every returning user and the same
// reverse column for every popular item; PRINCE (Ghazimatin et al.,
// WSDM'20) and the push framework of Zhang, Lofgren & Goel (KDD'16)
// both exploit exactly this reuse structure, and this package makes it
// a first-class subsystem:
//
//   - entries are keyed by (view version, direction, engine identity,
//     node), where the version comes from internal/hin's graph
//     versioning and the identity from ppr.Identifier — so a graph
//     mutation or a different counterfactual overlay can never serve a
//     stale vector, while an identical overlay rebuilt across requests
//     still hits;
//   - the cache is sharded to keep lock hold times off the hot path,
//     and bounded both by entry count and by bytes, with per-shard LRU
//     eviction;
//   - concurrent misses on one key are collapsed singleflight-style:
//     one goroutine computes, the rest wait. The wait is context-aware
//     (a canceled waiter unblocks immediately with its context's
//     cause), and the computation itself is detached from any single
//     request: it is canceled only when the last interested waiter has
//     gone away, so one client's timeout cannot poison the result for
//     the others.
//
// Cached vectors are shared between callers and MUST be treated as
// immutable. Every producer in this repository already does (PPR
// engines return fresh vectors and all consumers only read them).
package pprcache

import (
	"context"
	"sync/atomic"

	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/ppr"
)

// Direction distinguishes forward vectors PPR(s,·) from reverse
// columns PPR(·,t) in cache keys.
type Direction uint8

const (
	// Forward marks a single-source row PPR(s,·).
	Forward Direction = iota
	// Reverse marks a single-target column PPR(·,t).
	Reverse
)

// String returns "fwd" or "rev".
func (d Direction) String() string {
	if d == Reverse {
		return "rev"
	}
	return "fwd"
}

// Key identifies one cached vector. Keys are value types usable as map
// keys; equality of every field is required for a hit.
type Key struct {
	// Version identifies the graph view content the vector was computed
	// over (see hin.ViewVersion).
	Version hin.Version
	// Dir is the computation direction.
	Dir Direction
	// Engine is the engine's cache identity: algorithm name plus the
	// digest of every parameter that influences its output
	// (ppr.Identifier). Callers scoring over a view whose version does
	// not capture all scoring parameters must fold the rest in here.
	Engine string
	// Node is the source (Forward) or target (Reverse) node.
	Node hin.NodeID
}

// ForwardKey builds the key of the forward vector PPR(node,·) computed
// by engine over view v. It reports false — caching impossible — when
// the view does not support versioning.
func ForwardKey(v hin.View, engine ppr.Identifier, node hin.NodeID) (Key, bool) {
	ver, ok := hin.ViewVersion(v)
	if !ok {
		return Key{}, false
	}
	return Key{Version: ver, Dir: Forward, Engine: engine.Identity(), Node: node}, true
}

// ReverseKey builds the key of the reverse column PPR(·,node) computed
// by engine over view v (see ForwardKey).
func ReverseKey(v hin.View, engine ppr.Identifier, node hin.NodeID) (Key, bool) {
	ver, ok := hin.ViewVersion(v)
	if !ok {
		return Key{}, false
	}
	return Key{Version: ver, Dir: Reverse, Engine: engine.Identity(), Node: node}, true
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	// Hits counts lookups answered from a resident entry.
	Hits int64 `json:"hits"`
	// Misses counts lookups that led a new computation.
	Misses int64 `json:"misses"`
	// Collapsed counts lookups that joined an in-flight computation
	// started by another goroutine (singleflight dedup).
	Collapsed int64 `json:"collapsed"`
	// Evictions counts entries dropped to enforce the entry or byte
	// bounds.
	Evictions int64 `json:"evictions"`
	// Entries and Bytes are the current residency gauges.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Inflight is the number of computations currently running.
	Inflight int64 `json:"inflight"`
	// Denied counts cold misses refused under a hit-only context
	// (WithHitOnly) — the degradation ladder's cache-only rung at work.
	Denied int64 `json:"denied"`
	// Upgrades counts resident vector-only entries promoted to full
	// push results by GetOrComputeResult (warm-start consumers needing
	// residuals a vector-level producer did not keep).
	Upgrades int64 `json:"upgrades"`
}

// RequestStats accumulates per-request cache activity. Attach one to a
// context with WithRequestStats and every cache lookup performed under
// that context is tallied — the server's request log uses this to print
// per-request hit/miss counts. Safe for concurrent use.
type RequestStats struct {
	hits   atomic.Int64
	misses atomic.Int64
}

// Hits returns the number of lookups served without a fresh
// computation charged to this request (resident hits plus collapsed
// waits on another request's computation).
func (r *RequestStats) Hits() int64 { return r.hits.Load() }

// Misses returns the number of computations this request led.
func (r *RequestStats) Misses() int64 { return r.misses.Load() }

type requestStatsKey struct{}

// WithRequestStats returns a context whose cache lookups are tallied
// into rs.
func WithRequestStats(ctx context.Context, rs *RequestStats) context.Context {
	return context.WithValue(ctx, requestStatsKey{}, rs)
}

// requestStatsFrom extracts the request tally, nil when absent.
func requestStatsFrom(ctx context.Context) *RequestStats {
	rs, _ := ctx.Value(requestStatsKey{}).(*RequestStats)
	return rs
}

// countRequest tallies one lookup outcome into the context's request
// stats, when present.
func countRequest(ctx context.Context, hit bool) {
	rs := requestStatsFrom(ctx)
	if rs == nil {
		return
	}
	if hit {
		rs.hits.Add(1)
	} else {
		rs.misses.Add(1)
	}
}
