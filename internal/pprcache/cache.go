package pprcache

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/why-not-xai/emigre/internal/fault"
	"github.com/why-not-xai/emigre/internal/ppr"
)

// fillSite is the failpoint at the head of every cache fill — the
// singleflight leader's compute call. Arming it exercises the error
// propagation of the flight machinery: every attached waiter must see
// the injected error and the next caller must recompute fresh (no
// poisoning).
var fillSite = fault.Register("pprcache.fill")

// ErrCacheOnlyMiss is returned by GetOrCompute for a cold miss under a
// hit-only context (WithHitOnly): the caller asked to be answered from
// warm state only, and the key is neither resident nor already being
// computed. The server's degradation ladder uses this mode to trade
// coverage for latency when a request's deadline budget runs low.
var ErrCacheOnlyMiss = errors.New("pprcache: cold miss in hit-only mode")

type hitOnlyKey struct{}

// WithHitOnly marks ctx so cache lookups under it never lead a new
// computation: resident entries and joins onto already-in-flight
// computations are served normally, but a cold miss returns
// ErrCacheOnlyMiss immediately instead of computing.
func WithHitOnly(ctx context.Context) context.Context {
	return context.WithValue(ctx, hitOnlyKey{}, true)
}

// HitOnly reports whether ctx carries the WithHitOnly marker.
func HitOnly(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	on, _ := ctx.Value(hitOnlyKey{}).(bool)
	return on
}

// Defaults used when the corresponding Config field is zero.
const (
	// DefaultMaxEntries bounds the total number of resident vectors.
	DefaultMaxEntries = 4096
	// DefaultMaxBytes bounds the total resident vector payload
	// (256 MiB).
	DefaultMaxBytes = 256 << 20
	// DefaultShards is the lock-striping factor.
	DefaultShards = 16
)

// entryOverhead approximates the per-entry bookkeeping cost (key,
// list element, map slot) charged on top of the vector payload.
const entryOverhead = 128

// Config bounds a Cache.
type Config struct {
	// MaxEntries bounds the number of resident vectors across all
	// shards. 0 means DefaultMaxEntries.
	MaxEntries int
	// MaxBytes bounds the resident payload across all shards, counting
	// 8 bytes per vector element plus a small per-entry overhead.
	// 0 means DefaultMaxBytes.
	MaxBytes int64
	// Shards is the lock-striping factor, rounded up to a power of two.
	// 0 means DefaultShards.
	Shards int
}

// Cache is a sharded, bounded, singleflight-deduplicating PPR-vector
// cache. Create with New; the zero value is not usable.
type Cache struct {
	shards    []shard
	shardMask uint64
	// Per-shard budgets: the global bounds split evenly. A pathological
	// workload hashing every key to one shard would see effective
	// bounds of 1/Shards of the configured totals; with the SplitMix64
	// key hash this does not happen in practice.
	entryBudget int
	byteBudget  int64

	hits      atomic.Int64
	misses    atomic.Int64
	collapsed atomic.Int64
	evictions atomic.Int64
	inflight  atomic.Int64
	denied    atomic.Int64
	upgrades  atomic.Int64
}

type shard struct {
	mu      sync.Mutex
	entries map[Key]*list.Element
	lru     *list.List // front = most recently used
	bytes   int64
	flights map[Key]*flight
}

// entry is one resident push result. Vector-only producers store a
// result with nil Residuals — byte-for-byte the same charge as the
// plain vector entries of earlier revisions — while full producers
// (GetOrComputeResult) keep the residual pair resident so warm-start
// consumers can resume pushes from it.
type entry struct {
	key  Key
	res  *ppr.PushResult
	size int64
}

// full reports whether the entry carries the residual half of the push
// state, i.e. can serve warm-start (GetResult) consumers.
func (e *entry) full() bool { return e.res.Residuals != nil }

// entrySize charges 8 bytes per resident float plus the bookkeeping
// overhead; a vector-only entry costs exactly what it did before
// residuals became storable.
func entrySize(res *ppr.PushResult) int64 {
	return int64(len(res.Estimates))*8 + int64(len(res.Residuals))*8 + entryOverhead
}

// flight is one in-progress computation that concurrent lookups of the
// same key attach to. waiters is guarded by the owning shard's mutex;
// the computation is canceled when it drops to zero so a result nobody
// wants is not computed to completion. full marks flights led by a
// result-level caller: vector-level callers can join any flight, but a
// result-level caller joining a vector-only flight waits it out and
// then upgrades the resident entry.
type flight struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int
	full    bool
	res     *ppr.PushResult
	err     error
}

// New builds a cache with the given bounds.
func New(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	shards := 1
	for shards < cfg.Shards {
		shards <<= 1
	}
	c := &Cache{
		shards:      make([]shard, shards),
		shardMask:   uint64(shards - 1),
		entryBudget: max(1, cfg.MaxEntries/shards),
		byteBudget:  max(1, cfg.MaxBytes/int64(shards)),
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*list.Element)
		c.shards[i].lru = list.New()
		c.shards[i].flights = make(map[Key]*flight)
	}
	return c
}

// shardFor picks the shard of a key by hashing every key component.
func (c *Cache) shardFor(k Key) *shard {
	h := uint64(0x9e3779b97f4a7c15)
	h = mix64(h ^ k.Version.Stamp)
	h = mix64(h ^ k.Version.Digest)
	h = mix64(h ^ uint64(k.Dir))
	for i := 0; i < len(k.Engine); i++ {
		h = (h ^ uint64(k.Engine[i])) * 0x100000001b3
	}
	h = mix64(h ^ uint64(uint32(k.Node)))
	return &c.shards[h&c.shardMask]
}

// mix64 is the SplitMix64 finalizer (shared shape with internal/hin's
// version mixing; duplicated to keep the dependency surface one-way).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Get returns the cached vector for k without computing on a miss.
// Vector-only and full entries both answer.
func (c *Cache) Get(ctx context.Context, k Key) (ppr.Vector, bool) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	el, ok := sh.entries[k]
	if ok {
		sh.lru.MoveToFront(el)
	}
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	c.hits.Add(1)
	countRequest(ctx, true)
	return el.Value.(*entry).res.Estimates, true
}

// GetResult returns the cached push result for k without computing on
// a miss. Only full entries (residuals resident) answer: a vector-only
// entry cannot serve a warm start and reports a miss here while still
// answering Get.
func (c *Cache) GetResult(ctx context.Context, k Key) (*ppr.PushResult, bool) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	el, ok := sh.entries[k]
	var e *entry
	if ok {
		e = el.Value.(*entry)
		if !e.full() {
			ok = false
		} else {
			sh.lru.MoveToFront(el)
		}
	}
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	c.hits.Add(1)
	countRequest(ctx, true)
	return e.res, true
}

// GetOrCompute returns the vector for k, computing it with compute on a
// miss. Concurrent misses on the same key are collapsed: exactly one
// compute call runs and every caller receives its result. The returned
// boolean reports whether the call was answered from a resident entry.
//
// Cancellation semantics: a caller whose ctx ends while waiting returns
// immediately with context.Cause(ctx); the computation keeps running
// for the remaining waiters — and still populates the cache — unless
// every waiter has gone away, in which case the context passed to
// compute is canceled too. An abandoned flight stays registered until
// its compute call winds down; a live caller that joins it in that
// window does not inherit the departed waiters' cancellation — it
// retries with a fresh flight instead (the parallel CHECK pipeline
// abandons speculative lookups routinely, so this window is hit in
// practice).
//
// The returned vector is shared with other callers and must not be
// mutated.
func (c *Cache) GetOrCompute(ctx context.Context, k Key, compute func(context.Context) (ppr.Vector, error)) (ppr.Vector, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Resident fast path before the result-level wrapper is built: the
	// wrapping closure heap-allocates, and a warm lookup must stay at
	// zero allocations (TestWarmGetOrComputeZeroAlloc). getOrCompute
	// re-checks residency under the same lock, so this is purely an
	// optimization, not a second code path — including the cancellation
	// poll, which warm hits must honor exactly like the shared loop.
	if err := ctx.Err(); err != nil {
		return nil, false, context.Cause(ctx)
	}
	sh := c.shardFor(k)
	sh.mu.Lock()
	if el, ok := sh.entries[k]; ok {
		sh.lru.MoveToFront(el)
		vec := el.Value.(*entry).res.Estimates
		sh.mu.Unlock()
		c.hits.Add(1)
		countRequest(ctx, true)
		return vec, true, nil
	}
	sh.mu.Unlock()
	res, hit, err := c.lookupOrCompute(ctx, k, false, false, func(fctx context.Context) (*ppr.PushResult, error) {
		vec, err := compute(fctx)
		if err != nil {
			return nil, err
		}
		return &ppr.PushResult{Estimates: vec}, nil
	})
	if err != nil {
		return nil, hit, err
	}
	return res.Estimates, hit, nil
}

// GetOrComputeResult is GetOrCompute at the push-result level: on a
// miss, compute must return the full estimate/residual pair, which is
// kept resident so later callers can warm-start incremental pushes
// from it. A resident vector-only entry (stored by GetOrCompute) is
// upgraded in place — compute runs once, the entry's residuals become
// resident, and Stats.Upgrades tallies the promotion. Vector-level
// callers share full entries and flights transparently.
//
// Cancellation, singleflight and hit-only semantics match GetOrCompute;
// a hit-only caller is denied by a vector-only resident entry too,
// since serving it would require a fill.
//
// The returned result is shared with other callers and must not be
// mutated — warm starts hand it to ppr.UpdateForEdit, which copies.
func (c *Cache) GetOrComputeResult(ctx context.Context, k Key, compute func(context.Context) (*ppr.PushResult, error)) (*ppr.PushResult, bool, error) {
	return c.lookupOrCompute(ctx, k, true, true, compute)
}

// lookupOrCompute is the shared lookup/flight loop. full selects the
// result-level contract: only entries and flights carrying residuals
// answer, and leading a fill over a resident vector-only entry counts
// as an upgrade rather than a miss. pollFirst is false when the caller
// already ran the cancellation poll for this attempt (GetOrCompute's
// resident fast path): every lookup must poll exactly once per attempt
// — never zero, never twice — so that cold and warm calls present the
// same cancellation points to deterministic poll-counting callers.
func (c *Cache) lookupOrCompute(ctx context.Context, k Key, full, pollFirst bool, compute func(context.Context) (*ppr.PushResult, error)) (*ppr.PushResult, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for poll := pollFirst; ; poll = true {
		if poll {
			if err := ctx.Err(); err != nil {
				return nil, false, context.Cause(ctx)
			}
		}
		sh := c.shardFor(k)
		sh.mu.Lock()
		upgrade := false
		if el, ok := sh.entries[k]; ok {
			e := el.Value.(*entry)
			if !full || e.full() {
				sh.lru.MoveToFront(el)
				sh.mu.Unlock()
				c.hits.Add(1)
				countRequest(ctx, true)
				return e.res, true, nil
			}
			// Resident but vector-only and the caller needs residuals:
			// fall through to the flight/fill logic below as an upgrade.
			// The entry keeps serving vector-level callers meanwhile.
			upgrade = true
		}
		if f, ok := sh.flights[k]; ok {
			f.waiters++
			sh.mu.Unlock()
			c.collapsed.Add(1)
			// A collapsed wait is charged as a hit at the request level:
			// no computation runs on this request's behalf.
			countRequest(ctx, true)
			res, hit, err := c.wait(ctx, sh, f)
			if err != nil && errors.Is(err, context.Canceled) && ctx.Err() == nil {
				// The flight was abandoned (every earlier waiter left and
				// its computation was canceled) before this caller joined.
				// That cancellation belongs to the departed waiters, not
				// to this live request: retry with a fresh flight.
				continue
			}
			if err == nil && full && !f.full {
				// Joined a vector-only fill but residuals are needed: the
				// vector entry is resident now, so retry — the next pass
				// takes the upgrade path and leads a full fill.
				continue
			}
			return res, hit, err
		}
		// A hit-only caller never leads a computation: a cold miss — or a
		// vector-only entry that would need a fill to serve residuals —
		// is answered with ErrCacheOnlyMiss before any fill starts.
		if HitOnly(ctx) {
			sh.mu.Unlock()
			c.denied.Add(1)
			countRequest(ctx, false)
			return nil, false, ErrCacheOnlyMiss
		}
		// Miss (or upgrade): this caller leads the computation. The
		// compute context is detached from the leader's request
		// (context.WithoutCancel keeps its values — tracing, request
		// stats — but not its cancellation) so a canceled leader cannot
		// poison the result for waiters that joined after it.
		if upgrade {
			c.upgrades.Add(1)
		} else {
			c.misses.Add(1)
		}
		countRequest(ctx, false)
		fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		f := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1, full: full}
		sh.flights[k] = f
		sh.mu.Unlock()
		c.inflight.Add(1)
		go func() {
			res, err := runFill(fctx, compute)
			sh.mu.Lock()
			f.res, f.err = res, err
			delete(sh.flights, k)
			if err == nil {
				c.insertLocked(sh, k, res)
			}
			sh.mu.Unlock()
			c.inflight.Add(-1)
			cancel()
			close(f.done)
		}()
		return c.wait(ctx, sh, f)
	}
}

// runFill executes one cache fill with the pprcache.fill failpoint at
// its head and panic containment around the engine call: the fill runs
// in its own goroutine, outside any HTTP middleware recovery, so a
// panicking compute must resolve the flight with an error instead of
// killing the process. Waiters observe the panic as an ordinary fill
// error; nothing is inserted into the cache.
func runFill(ctx context.Context, compute func(context.Context) (*ppr.PushResult, error)) (res *ppr.PushResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("pprcache: fill panicked: %v", p)
		}
	}()
	if err := fillSite.Hit(ctx); err != nil {
		return nil, err
	}
	return compute(ctx)
}

// wait blocks until the flight completes or ctx ends. The hit flag of
// the return triple is always false: the value did not come from a
// resident entry.
func (c *Cache) wait(ctx context.Context, sh *shard, f *flight) (*ppr.PushResult, bool, error) {
	select {
	case <-f.done:
		return f.res, false, f.err
	case <-ctx.Done():
		sh.mu.Lock()
		f.waiters--
		abandoned := f.waiters == 0
		sh.mu.Unlock()
		if abandoned {
			// Nobody is interested in the result any more; stop the
			// computation (PR 1's cancellation plumbing aborts the PPR
			// loops within microseconds).
			f.cancel()
		}
		return nil, false, context.Cause(ctx)
	}
}

// insertLocked adds a computed result and enforces the shard budgets.
// The caller holds sh.mu.
func (c *Cache) insertLocked(sh *shard, k Key, res *ppr.PushResult) {
	if el, ok := sh.entries[k]; ok {
		e := el.Value.(*entry)
		if res.Residuals != nil && !e.full() {
			// Upgrade in place: the full result replaces the vector-only
			// payload (and its byte charge) under the same LRU slot.
			sh.bytes -= e.size
			e.res = res
			e.size = entrySize(res)
			sh.bytes += e.size
		}
		// Otherwise a concurrent writer (distinct flight after an
		// eviction race) already resides; keep the resident entry.
		sh.lru.MoveToFront(el)
	} else {
		e := &entry{key: k, res: res, size: entrySize(res)}
		sh.entries[k] = sh.lru.PushFront(e)
		sh.bytes += e.size
	}
	for (sh.lru.Len() > c.entryBudget || sh.bytes > c.byteBudget) && sh.lru.Len() > 0 {
		tail := sh.lru.Back()
		victim := tail.Value.(*entry)
		sh.lru.Remove(tail)
		delete(sh.entries, victim.key)
		sh.bytes -= victim.size
		c.evictions.Add(1)
	}
}

// Stats returns a point-in-time snapshot of the counters and residency
// gauges.
func (c *Cache) Stats() Stats {
	s := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Collapsed: c.collapsed.Load(),
		Evictions: c.evictions.Load(),
		Inflight:  c.inflight.Load(),
		Denied:    c.denied.Load(),
		Upgrades:  c.upgrades.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += sh.lru.Len()
		s.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return s
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// Purge drops every resident entry (in-flight computations are not
// interrupted; they will repopulate on completion).
func (c *Cache) Purge() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[Key]*list.Element)
		sh.lru.Init()
		sh.bytes = 0
		sh.mu.Unlock()
	}
}
