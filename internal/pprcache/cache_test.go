package pprcache

import (
	"context"
	"fmt"
	"testing"

	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/ppr"
)

func testKey(stamp uint64, node int) Key {
	return Key{
		Version: hin.Version{Stamp: stamp},
		Dir:     Forward,
		Engine:  "test-engine/a=0.15",
		Node:    hin.NodeID(node),
	}
}

func constVec(n int, val float64) func(context.Context) (ppr.Vector, error) {
	return func(context.Context) (ppr.Vector, error) {
		v := make(ppr.Vector, n)
		for i := range v {
			v[i] = val
		}
		return v, nil
	}
}

func TestGetOrComputeHitAndMiss(t *testing.T) {
	c := New(Config{})
	ctx := context.Background()
	k := testKey(1, 7)

	v1, hit, err := c.GetOrCompute(ctx, k, constVec(4, 0.5))
	if err != nil || hit {
		t.Fatalf("first lookup: hit=%v err=%v", hit, err)
	}
	v2, hit, err := c.GetOrCompute(ctx, k, func(context.Context) (ppr.Vector, error) {
		t.Fatal("compute ran on a warm key")
		return nil, nil
	})
	if err != nil || !hit {
		t.Fatalf("second lookup: hit=%v err=%v", hit, err)
	}
	if &v1[0] != &v2[0] {
		t.Fatal("warm hit did not return the shared resident vector")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}
}

func TestDistinctKeysDoNotCollide(t *testing.T) {
	c := New(Config{})
	ctx := context.Background()
	base := testKey(1, 7)
	variants := []Key{
		{Version: hin.Version{Stamp: 2}, Dir: base.Dir, Engine: base.Engine, Node: base.Node},
		{Version: hin.Version{Stamp: 1, Digest: 3}, Dir: base.Dir, Engine: base.Engine, Node: base.Node},
		{Version: base.Version, Dir: Reverse, Engine: base.Engine, Node: base.Node},
		{Version: base.Version, Dir: base.Dir, Engine: "other-engine", Node: base.Node},
		{Version: base.Version, Dir: base.Dir, Engine: base.Engine, Node: base.Node + 1},
	}
	if _, _, err := c.GetOrCompute(ctx, base, constVec(2, 1)); err != nil {
		t.Fatal(err)
	}
	for i, k := range variants {
		computed := false
		if _, _, err := c.GetOrCompute(ctx, k, func(context.Context) (ppr.Vector, error) {
			computed = true
			return make(ppr.Vector, 2), nil
		}); err != nil {
			t.Fatal(err)
		}
		if !computed {
			t.Errorf("variant %d collided with the base key", i)
		}
	}
}

func TestEntryBoundEvictsLRU(t *testing.T) {
	// Single shard so the LRU order is global and deterministic.
	c := New(Config{MaxEntries: 3, Shards: 1})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, _, err := c.GetOrCompute(ctx, testKey(1, i), constVec(1, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key 0 so key 1 is the least recently used.
	if _, ok := c.Get(ctx, testKey(1, 0)); !ok {
		t.Fatal("key 0 should be resident")
	}
	if _, _, err := c.GetOrCompute(ctx, testKey(1, 3), constVec(1, 3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(ctx, testKey(1, 1)); ok {
		t.Fatal("LRU key 1 survived the eviction")
	}
	for _, n := range []int{0, 2, 3} {
		if _, ok := c.Get(ctx, testKey(1, n)); !ok {
			t.Fatalf("key %d was evicted out of LRU order", n)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 3 {
		t.Fatalf("stats = %+v, want 1 eviction / 3 entries", s)
	}
}

func TestByteBoundEvicts(t *testing.T) {
	// Each 100-element vector costs 800 bytes + overhead; a ~2-entry
	// byte budget must keep residency at 2.
	c := New(Config{MaxEntries: 100, MaxBytes: 2 * (100*8 + entryOverhead), Shards: 1})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, _, err := c.GetOrCompute(ctx, testKey(1, i), constVec(100, 1)); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Entries != 2 {
		t.Fatalf("entries = %d, want 2 (byte bound)", s.Entries)
	}
	if s.Bytes > 2*(100*8+entryOverhead) {
		t.Fatalf("resident bytes %d exceed the budget", s.Bytes)
	}
	if s.Evictions != 3 {
		t.Fatalf("evictions = %d, want 3", s.Evictions)
	}
}

func TestOversizedEntryIsNotRetained(t *testing.T) {
	c := New(Config{MaxEntries: 10, MaxBytes: 100, Shards: 1})
	ctx := context.Background()
	vec, _, err := c.GetOrCompute(ctx, testKey(1, 0), constVec(1000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 1000 {
		t.Fatal("caller must still receive the computed vector")
	}
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("oversized vector retained: %+v", s)
	}
}

func TestComputeErrorIsNotCached(t *testing.T) {
	c := New(Config{})
	ctx := context.Background()
	k := testKey(1, 0)
	boom := fmt.Errorf("engine exploded")
	if _, _, err := c.GetOrCompute(ctx, k, func(context.Context) (ppr.Vector, error) {
		return nil, boom
	}); err != boom {
		t.Fatalf("err = %v, want the compute error", err)
	}
	computed := false
	if _, _, err := c.GetOrCompute(ctx, k, func(context.Context) (ppr.Vector, error) {
		computed = true
		return make(ppr.Vector, 1), nil
	}); err != nil {
		t.Fatal(err)
	}
	if !computed {
		t.Fatal("failed computation was negatively cached")
	}
	if s := c.Stats(); s.Misses != 2 {
		t.Fatalf("misses = %d, want 2", s.Misses)
	}
}

func TestPurge(t *testing.T) {
	c := New(Config{})
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, _, err := c.GetOrCompute(ctx, testKey(1, i), constVec(8, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d, want 4", c.Len())
	}
	c.Purge()
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("purge left residency: %+v", s)
	}
}

func TestRequestStatsTally(t *testing.T) {
	c := New(Config{})
	rs := &RequestStats{}
	ctx := WithRequestStats(context.Background(), rs)
	k := testKey(1, 0)
	if _, _, err := c.GetOrCompute(ctx, k, constVec(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.GetOrCompute(ctx, k, constVec(1, 1)); err != nil {
		t.Fatal(err)
	}
	if rs.Hits() != 1 || rs.Misses() != 1 {
		t.Fatalf("request tally = %d hits / %d misses, want 1/1", rs.Hits(), rs.Misses())
	}
	// A second request context over the same cache starts at zero.
	rs2 := &RequestStats{}
	if _, _, err := c.GetOrCompute(WithRequestStats(context.Background(), rs2), k, constVec(1, 1)); err != nil {
		t.Fatal(err)
	}
	if rs2.Hits() != 1 || rs2.Misses() != 0 {
		t.Fatalf("second request tally = %d/%d, want 1/0", rs2.Hits(), rs2.Misses())
	}
}

func TestKeyHelpersRequireVersionedViews(t *testing.T) {
	g := hin.NewGraph()
	user := g.Types().NodeType("user")
	g.AddNode(user, "")
	eng := ppr.NewForwardPush(ppr.DefaultParams())

	if _, ok := ForwardKey(g, eng, 0); !ok {
		t.Fatal("graphs are versioned; ForwardKey must succeed")
	}
	k1, _ := ForwardKey(g, eng, 0)
	k2, _ := ReverseKey(g, ppr.NewReversePush(ppr.DefaultParams()), 0)
	if k1 == k2 {
		t.Fatal("forward and reverse keys must differ")
	}
	unversioned := struct{ hin.View }{g}
	if _, ok := ForwardKey(unversioned, eng, 0); ok {
		t.Fatal("unversioned views must not produce keys")
	}
}
