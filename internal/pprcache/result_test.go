package pprcache

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/why-not-xai/emigre/internal/ppr"
)

func constResult(n int, val float64) func(context.Context) (*ppr.PushResult, error) {
	return func(context.Context) (*ppr.PushResult, error) {
		res := &ppr.PushResult{Estimates: make(ppr.Vector, n), Residuals: make(ppr.Vector, n)}
		for i := range res.Estimates {
			res.Estimates[i] = val
			res.Residuals[i] = val / 10
		}
		return res, nil
	}
}

func TestGetOrComputeResultHitAndMiss(t *testing.T) {
	c := New(Config{})
	ctx := context.Background()
	k := testKey(1, 7)

	r1, hit, err := c.GetOrComputeResult(ctx, k, constResult(4, 0.5))
	if err != nil || hit {
		t.Fatalf("first lookup: hit=%v err=%v", hit, err)
	}
	if r1.Residuals == nil {
		t.Fatal("full fill lost its residuals")
	}
	r2, hit, err := c.GetOrComputeResult(ctx, k, func(context.Context) (*ppr.PushResult, error) {
		t.Fatal("compute ran on a warm key")
		return nil, nil
	})
	if err != nil || !hit {
		t.Fatalf("second lookup: hit=%v err=%v", hit, err)
	}
	if r1 != r2 {
		t.Fatal("warm hit did not return the shared resident result")
	}
	// The vector-level API shares the same entry.
	vec, hit, err := c.GetOrCompute(ctx, k, func(context.Context) (ppr.Vector, error) {
		t.Fatal("vector compute ran despite a resident full entry")
		return nil, nil
	})
	if err != nil || !hit {
		t.Fatalf("vector lookup on full entry: hit=%v err=%v", hit, err)
	}
	if &vec[0] != &r1.Estimates[0] {
		t.Fatal("vector hit did not alias the resident result's estimates")
	}
	if s := c.Stats(); s.Hits != 2 || s.Misses != 1 || s.Entries != 1 || s.Upgrades != 0 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss / 1 entry / 0 upgrades", s)
	}
}

func TestGetResultIgnoresVectorOnlyEntries(t *testing.T) {
	c := New(Config{})
	ctx := context.Background()
	k := testKey(3, 1)
	if _, _, err := c.GetOrCompute(ctx, k, constVec(4, 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetResult(ctx, k); ok {
		t.Fatal("GetResult answered from a vector-only entry")
	}
	if _, ok := c.Get(ctx, k); !ok {
		t.Fatal("Get stopped answering from a vector-only entry")
	}
	if _, _, err := c.GetOrComputeResult(ctx, k, constResult(4, 1)); err != nil {
		t.Fatal(err)
	}
	res, ok := c.GetResult(ctx, k)
	if !ok || res.Residuals == nil {
		t.Fatalf("GetResult after upgrade: ok=%v res=%+v", ok, res)
	}
}

func TestResultUpgradesVectorOnlyEntry(t *testing.T) {
	c := New(Config{})
	ctx := context.Background()
	k := testKey(2, 9)

	vec, _, err := c.GetOrCompute(ctx, k, constVec(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	if before.Entries != 1 {
		t.Fatalf("entries = %d, want 1", before.Entries)
	}

	res, hit, err := c.GetOrComputeResult(ctx, k, constResult(8, 2))
	if err != nil || hit {
		t.Fatalf("upgrade lookup: hit=%v err=%v", hit, err)
	}
	if res.Residuals == nil {
		t.Fatal("upgraded entry has no residuals")
	}
	after := c.Stats()
	if after.Upgrades != 1 {
		t.Fatalf("upgrades = %d, want 1", after.Upgrades)
	}
	if after.Misses != before.Misses {
		t.Fatalf("upgrade was charged as a miss (%d -> %d)", before.Misses, after.Misses)
	}
	if after.Entries != 1 {
		t.Fatalf("upgrade duplicated the entry: %d resident", after.Entries)
	}
	if after.Bytes != before.Bytes+8*8 {
		t.Fatalf("bytes %d -> %d, want +%d for the resident residuals", before.Bytes, after.Bytes, 8*8)
	}
	// Vector-level callers now see the upgraded estimates.
	vec2, hit, err := c.GetOrCompute(ctx, k, constVec(8, 9))
	if err != nil || !hit {
		t.Fatalf("vector lookup after upgrade: hit=%v err=%v", hit, err)
	}
	if &vec2[0] == &vec[0] {
		t.Fatal("upgrade kept the old vector payload resident")
	}
	if &vec2[0] != &res.Estimates[0] {
		t.Fatal("vector lookup does not alias the upgraded result")
	}
}

func TestResultHitOnlyDeniesVectorOnlyEntry(t *testing.T) {
	c := New(Config{})
	ctx := context.Background()
	k := testKey(4, 2)
	if _, _, err := c.GetOrCompute(ctx, k, constVec(4, 1)); err != nil {
		t.Fatal(err)
	}
	_, _, err := c.GetOrComputeResult(WithHitOnly(ctx), k, func(context.Context) (*ppr.PushResult, error) {
		t.Fatal("compute ran in hit-only mode")
		return nil, nil
	})
	if !errors.Is(err, ErrCacheOnlyMiss) {
		t.Fatalf("err = %v, want ErrCacheOnlyMiss", err)
	}
	if s := c.Stats(); s.Denied != 1 {
		t.Fatalf("denied = %d, want 1", s.Denied)
	}
	// A resident full entry answers hit-only result lookups normally.
	if _, _, err := c.GetOrComputeResult(ctx, k, constResult(4, 1)); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := c.GetOrComputeResult(WithHitOnly(ctx), k, nil); err != nil || !hit {
		t.Fatalf("hit-only on full entry: hit=%v err=%v", hit, err)
	}
}

func TestResultSingleflightCollapse(t *testing.T) {
	c := New(Config{})
	ctx := context.Background()
	k := testKey(5, 5)
	started := make(chan struct{})
	release := make(chan struct{})
	fills := 0
	var mu sync.Mutex

	const callers = 8
	var wg sync.WaitGroup
	results := make([]*ppr.PushResult, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := c.GetOrComputeResult(ctx, k, func(context.Context) (*ppr.PushResult, error) {
				mu.Lock()
				fills++
				if fills == 1 {
					close(started)
				}
				mu.Unlock()
				<-release
				return &ppr.PushResult{Estimates: make(ppr.Vector, 2), Residuals: make(ppr.Vector, 2)}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	<-started
	close(release)
	wg.Wait()
	if fills != 1 {
		t.Fatalf("fills = %d, want 1 (singleflight)", fills)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatal("collapsed callers received distinct results")
		}
	}
}

// TestResultCallerJoinsVectorFlightThenUpgrades pins the mixed-level
// flight interaction: a result-level caller arriving while a
// vector-only fill is in flight waits it out, then leads an upgrade
// fill instead of returning a residual-less result.
func TestResultCallerJoinsVectorFlightThenUpgrades(t *testing.T) {
	c := New(Config{})
	ctx := context.Background()
	k := testKey(6, 3)
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.GetOrCompute(ctx, k, func(context.Context) (ppr.Vector, error) {
			close(started)
			<-release
			return make(ppr.Vector, 4), nil
		})
		if err != nil {
			t.Error(err)
		}
	}()
	<-started

	wg.Add(1)
	var res *ppr.PushResult
	go func() {
		defer wg.Done()
		var err error
		res, _, err = c.GetOrComputeResult(ctx, k, constResult(4, 1))
		if err != nil {
			t.Error(err)
		}
	}()
	close(release)
	wg.Wait()
	if res == nil || res.Residuals == nil {
		t.Fatalf("result-level caller got %+v, want a full result", res)
	}
	if s := c.Stats(); s.Upgrades != 1 {
		t.Fatalf("upgrades = %d, want 1", s.Upgrades)
	}
}

// TestWarmGetOrComputeResultZeroAlloc pins the warm result path at zero
// allocations, matching the vector-level guarantee.
func TestWarmGetOrComputeResultZeroAlloc(t *testing.T) {
	c := New(Config{})
	ctx := context.Background()
	k := testKey(7, 11)
	if _, _, err := c.GetOrComputeResult(ctx, k, constResult(16, 1)); err != nil {
		t.Fatal(err)
	}
	fill := constResult(16, 2)
	allocs := testing.AllocsPerRun(100, func() {
		if _, hit, err := c.GetOrComputeResult(ctx, k, fill); err != nil || !hit {
			t.Fatalf("hit=%v err=%v", hit, err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm GetOrComputeResult allocates %.1f objects per call, want 0", allocs)
	}
}
