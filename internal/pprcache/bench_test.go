package pprcache

import (
	"context"
	"sync"
	"testing"

	"github.com/why-not-xai/emigre/internal/dataset"
	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/ppr"
)

// benchGraph lazily builds the paper's Amazon Lite evaluation graph
// (DefaultConfig → Lite with the §6.1 sampling parameters) exactly once
// across all benchmarks, flattened to a CSR snapshot for engine speed.
var benchGraph struct {
	once  sync.Once
	csr   *hin.CSR
	users []hin.NodeID
	items []hin.NodeID
	err   error
}

func liteCSR(tb testing.TB) (*hin.CSR, []hin.NodeID, []hin.NodeID) {
	benchGraph.once.Do(func() {
		amazon, err := dataset.Generate(dataset.DefaultConfig())
		if err != nil {
			benchGraph.err = err
			return
		}
		lite, sampled, err := amazon.Lite(dataset.DefaultLiteConfig())
		if err != nil {
			benchGraph.err = err
			return
		}
		benchGraph.csr = hin.NewCSR(lite.Graph)
		benchGraph.users = sampled
		benchGraph.items = lite.Items
	})
	if benchGraph.err != nil {
		tb.Fatalf("building Amazon Lite: %v", benchGraph.err)
	}
	return benchGraph.csr, benchGraph.users, benchGraph.items
}

// BenchmarkCacheColdWarmForward measures a forward-vector lookup on a
// cold key (miss → full ForwardPush computation) against the same
// lookup on a warm key (resident hit). The cold/warm ratio is the
// cache's value proposition; the acceptance bar is ≥10x.
func BenchmarkCacheColdWarmForward(b *testing.B) {
	csr, users, _ := liteCSR(b)
	engine := ppr.NewForwardPush(ppr.DefaultParams())
	ctx := context.Background()
	compute := func(u hin.NodeID) func(context.Context) (ppr.Vector, error) {
		return func(cctx context.Context) (ppr.Vector, error) {
			return engine.FromSourceContext(cctx, csr, u)
		}
	}
	u := users[0]
	k, ok := ForwardKey(csr, engine, u)
	if !ok {
		b.Fatal("CSR snapshot is not versioned")
	}

	b.Run("cold", func(b *testing.B) {
		c := New(Config{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Purge()
			if _, hit, err := c.GetOrCompute(ctx, k, compute(u)); err != nil || hit {
				b.Fatalf("hit=%v err=%v", hit, err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		c := New(Config{})
		if _, _, err := c.GetOrCompute(ctx, k, compute(u)); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, hit, err := c.GetOrCompute(ctx, k, compute(u)); err != nil || !hit {
				b.Fatalf("hit=%v err=%v", hit, err)
			}
		}
	})
}

// BenchmarkCacheColdWarmReverse is the reverse-column counterpart:
// ReversePush to an item target, cold (miss) vs warm (hit).
func BenchmarkCacheColdWarmReverse(b *testing.B) {
	csr, _, items := liteCSR(b)
	if len(items) == 0 {
		b.Fatal("Amazon Lite graph has no items")
	}
	engine := ppr.NewReversePush(ppr.DefaultParams())
	ctx := context.Background()
	t := items[0]
	compute := func(cctx context.Context) (ppr.Vector, error) {
		return engine.ToTargetContext(cctx, csr, t)
	}
	k, ok := ReverseKey(csr, engine, t)
	if !ok {
		b.Fatal("CSR snapshot is not versioned")
	}

	b.Run("cold", func(b *testing.B) {
		c := New(Config{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Purge()
			if _, hit, err := c.GetOrCompute(ctx, k, compute); err != nil || hit {
				b.Fatalf("hit=%v err=%v", hit, err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		c := New(Config{})
		if _, _, err := c.GetOrCompute(ctx, k, compute); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, hit, err := c.GetOrCompute(ctx, k, compute); err != nil || !hit {
				b.Fatalf("hit=%v err=%v", hit, err)
			}
		}
	})
}
