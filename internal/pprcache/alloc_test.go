package pprcache

import (
	"context"
	"testing"
)

// TestWarmGetZeroAlloc pins the allocation budget of the hot cache
// path: a warm hit is a shard hash, a map probe, an LRU bump and an
// atomic counter — nothing may reach the heap. This is the runtime
// complement to the ESCAPES.json gate (cmd/emigre-escapes), which
// pins the same path's escape sites at compile time.
func TestWarmGetZeroAlloc(t *testing.T) {
	c := New(Config{})
	ctx := context.Background()
	k := testKey(1, 7)
	if _, _, err := c.GetOrCompute(ctx, k, constVec(64, 0.25)); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := c.Get(ctx, k); !ok {
			t.Fatal("warm key missed")
		}
	})
	if allocs != 0 {
		t.Errorf("warm Get allocates %.1f objects per call, want 0", allocs)
	}
}

// TestWarmGetOrComputeZeroAlloc: the compute closure must not be
// invoked — or charged — on a warm key.
func TestWarmGetOrComputeZeroAlloc(t *testing.T) {
	c := New(Config{})
	ctx := context.Background()
	k := testKey(2, 9)
	if _, _, err := c.GetOrCompute(ctx, k, constVec(64, 0.25)); err != nil {
		t.Fatal(err)
	}

	// Built once outside the measured loop: constructing a capturing
	// closure per call would be the caller's allocation, not the
	// cache's.
	compute := constVec(64, 0.25)
	allocs := testing.AllocsPerRun(1000, func() {
		_, hit, err := c.GetOrCompute(ctx, k, compute)
		if err != nil || !hit {
			t.Fatalf("warm lookup: hit=%v err=%v", hit, err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm GetOrCompute allocates %.1f objects per call, want 0", allocs)
	}
}
