package pprcache

import (
	"strconv"

	"github.com/why-not-xai/emigre/internal/obs"
)

// RegisterMetrics exports the cache's counters and per-shard residency
// gauges on reg. The counters piggyback on the cache's existing atomic
// tallies via callbacks, so registration adds zero cost to the lookup
// hot path; the per-shard gauges read under the shard mutex only when
// /metrics is scraped. Re-registering (a rebuilt server with a fresh
// cache on the same registry) repoints the series at the new cache.
func (c *Cache) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("emigre_pprcache_hits_total",
		"Lookups answered from a resident vector.", c.hits.Load)
	reg.CounterFunc("emigre_pprcache_misses_total",
		"Lookups that led a new computation.", c.misses.Load)
	reg.CounterFunc("emigre_pprcache_collapsed_total",
		"Lookups collapsed onto an in-progress computation.", c.collapsed.Load)
	reg.CounterFunc("emigre_pprcache_evictions_total",
		"Resident vectors evicted by the LRU budgets.", c.evictions.Load)
	reg.GaugeFunc("emigre_pprcache_inflight_computations",
		"Vector computations running right now.", c.inflight.Load)
	reg.CounterFunc("emigre_pprcache_denied_fills_total",
		"Cold misses refused under a hit-only context (degraded serving).", c.denied.Load)
	reg.CounterFunc("emigre_pprcache_upgrades_total",
		"Vector-only entries promoted to full push results for warm starts.", c.upgrades.Load)
	for i := range c.shards {
		sh := &c.shards[i]
		label := obs.L("shard", strconv.Itoa(i))
		reg.GaugeFunc("emigre_pprcache_resident_bytes",
			"Resident vector payload bytes per shard.", func() int64 {
				sh.mu.Lock()
				defer sh.mu.Unlock()
				return sh.bytes
			}, label)
		reg.GaugeFunc("emigre_pprcache_resident_entries",
			"Resident vectors per shard.", func() int64 {
				sh.mu.Lock()
				defer sh.mu.Unlock()
				return int64(sh.lru.Len())
			}, label)
	}
}
