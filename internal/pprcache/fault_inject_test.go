package pprcache

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/why-not-xai/emigre/internal/fault"
	"github.com/why-not-xai/emigre/internal/ppr"
)

// armFill arms the pprcache.fill failpoint with the given schedule and
// disarms it when the test ends.
func armFill(t *testing.T, spec string) {
	t.Helper()
	if err := fault.Apply("pprcache.fill=" + spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.DisarmAll)
}

// TestInjectedFillErrorThenRetry: the pprcache.fill failpoint fails a
// fill before its compute runs; the error carries the injection and
// leaves no residue, and the next caller — the one-shot rule having
// disarmed itself — computes fresh and populates the cache.
func TestInjectedFillErrorThenRetry(t *testing.T) {
	armFill(t, "error(disk on fire)*1")
	c := New(Config{})
	k := testKey(1, 0)

	var computes atomic.Int64
	_, _, err := c.GetOrCompute(context.Background(), k,
		func(context.Context) (ppr.Vector, error) {
			computes.Add(1)
			return ppr.Vector{1}, nil
		})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want the injected error", err)
	}
	if !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("err = %v, want the injected message", err)
	}
	if n := computes.Load(); n != 0 {
		t.Fatalf("%d computes ran, want 0 (injection precedes compute)", n)
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("entries = %d after failed fill, want 0", s.Entries)
	}

	// The failed flight must be gone: a retrying caller leads a fresh
	// fill and succeeds.
	v, hit, err := c.GetOrCompute(context.Background(), k,
		func(context.Context) (ppr.Vector, error) { return ppr.Vector{4, 2}, nil })
	if err != nil || hit {
		t.Fatalf("retry after failed fill: v=%v hit=%v err=%v, want fresh compute", v, hit, err)
	}
	if len(v) != 2 {
		t.Fatalf("retry vector = %v", v)
	}
	if _, hit, _ := c.GetOrCompute(context.Background(), k,
		func(context.Context) (ppr.Vector, error) { t.Fatal("must not recompute"); return nil, nil }); !hit {
		t.Fatal("successful retry was not cached")
	}
}

// TestFailedFillDoesNotPoisonCollapsedWaiters: every waiter collapsed
// onto a flight whose fill fails must see the error — and the flight
// must vanish, so a retrying caller recomputes instead of inheriting
// the failure. Run under -race.
func TestFailedFillDoesNotPoisonCollapsedWaiters(t *testing.T) {
	c := New(Config{})
	k := testKey(1, 0)
	fillErr := errors.New("solver exploded")

	const waiters = 8
	release := make(chan struct{})
	var computes atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.GetOrCompute(context.Background(), k,
				func(context.Context) (ppr.Vector, error) {
					computes.Add(1)
					<-release // hold the flight open until all waiters collapse
					return nil, fillErr
				})
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.collapsed.Load() != waiters-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d goroutines collapsed onto the flight", c.collapsed.Load(), waiters-1)
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()

	for i, err := range errs {
		if !errors.Is(err, fillErr) {
			t.Fatalf("waiter %d: err = %v, want the fill error", i, err)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("%d computes ran, want 1", n)
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("entries = %d after failed fill, want 0", s.Entries)
	}
	v, hit, err := c.GetOrCompute(context.Background(), k,
		func(context.Context) (ppr.Vector, error) { return ppr.Vector{4, 2}, nil })
	if err != nil || hit || len(v) != 2 {
		t.Fatalf("retry after failed fill: v=%v hit=%v err=%v, want fresh compute", v, hit, err)
	}
}

// TestPanickingFillBecomesError: a compute that panics must not kill
// the process (the fill goroutine is outside any HTTP middleware
// recovery) — it surfaces as an error to every waiter, poisoning
// nothing.
func TestPanickingFillBecomesError(t *testing.T) {
	c := New(Config{})
	k := testKey(2, 0)
	_, _, err := c.GetOrCompute(context.Background(), k,
		func(context.Context) (ppr.Vector, error) { panic("solver bug") })
	if err == nil || !strings.Contains(err.Error(), "fill panicked") {
		t.Fatalf("err = %v, want a fill-panicked error", err)
	}
	// Not cached, next caller recomputes cleanly.
	v, hit, err := c.GetOrCompute(context.Background(), k,
		func(context.Context) (ppr.Vector, error) { return ppr.Vector{7}, nil })
	if err != nil || hit || len(v) != 1 {
		t.Fatalf("recovery compute: v=%v hit=%v err=%v", v, hit, err)
	}
}

// TestHitOnlyMode pins the cache-only rung's contract: warm keys are
// served, flights may be joined, but a cold miss fails fast with
// ErrCacheOnlyMiss instead of leading a fill.
func TestHitOnlyMode(t *testing.T) {
	c := New(Config{})
	warm := testKey(3, 0)
	cold := testKey(3, 1)
	if _, _, err := c.GetOrCompute(context.Background(), warm,
		func(context.Context) (ppr.Vector, error) { return ppr.Vector{1}, nil }); err != nil {
		t.Fatal(err)
	}

	hctx := WithHitOnly(context.Background())
	v, hit, err := c.GetOrCompute(hctx, warm,
		func(context.Context) (ppr.Vector, error) { t.Fatal("warm key must not compute"); return nil, nil })
	if err != nil || !hit || len(v) != 1 {
		t.Fatalf("warm hit-only: v=%v hit=%v err=%v", v, hit, err)
	}

	_, _, err = c.GetOrCompute(hctx, cold,
		func(context.Context) (ppr.Vector, error) { t.Fatal("cold key must not compute"); return nil, nil })
	if !errors.Is(err, ErrCacheOnlyMiss) {
		t.Fatalf("cold hit-only: err = %v, want ErrCacheOnlyMiss", err)
	}
	if s := c.Stats(); s.Denied != 1 {
		t.Fatalf("denied = %d, want 1", s.Denied)
	}

	// An open flight led by a normal caller is joinable in hit-only mode:
	// the work is already paid for.
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.GetOrCompute(context.Background(), cold,
			func(context.Context) (ppr.Vector, error) {
				close(started)
				<-release
				return ppr.Vector{9, 9}, nil
			})
	}()
	<-started // the flight is now open
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	v, hit, err = c.GetOrCompute(hctx, cold,
		func(context.Context) (ppr.Vector, error) {
			t.Error("hit-only joiner must not compute")
			return nil, nil
		})
	wg.Wait()
	if err != nil || len(v) != 2 {
		t.Fatalf("flight join: v=%v hit=%v err=%v", v, hit, err)
	}
}
