package pprcache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/why-not-xai/emigre/internal/ppr"
)

// TestSingleflightCollapsesColdKey is the dedup stress test: N
// goroutines racing on one cold key must trigger exactly one compute,
// and every goroutine must observe the same result. Run under -race.
func TestSingleflightCollapsesColdKey(t *testing.T) {
	const goroutines = 64
	c := New(Config{})
	k := testKey(1, 0)

	var computes atomic.Int64
	release := make(chan struct{})
	var done sync.WaitGroup
	done.Add(goroutines)
	results := make([]ppr.Vector, goroutines)
	errs := make([]error, goroutines)

	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer done.Done()
			results[i], _, errs[i] = c.GetOrCompute(context.Background(), k,
				func(context.Context) (ppr.Vector, error) {
					computes.Add(1)
					<-release // hold the flight open until all callers pile up
					return ppr.Vector{1, 2, 3}, nil
				})
		}(i)
	}
	// The flight stays open until release is closed, so every non-leader
	// must end up collapsed onto it. Wait until they all have.
	deadline := time.Now().Add(5 * time.Second)
	for c.collapsed.Load() != goroutines-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d goroutines collapsed onto the flight", c.collapsed.Load(), goroutines-1)
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	done.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("%d computations ran for one cold key, want exactly 1", n)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if len(results[i]) != 3 {
			t.Fatalf("goroutine %d got a wrong vector: %v", i, results[i])
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want 1", s.Misses)
	}
	if s.Collapsed != goroutines-1 {
		t.Fatalf("collapsed = %d, want %d", s.Collapsed, goroutines-1)
	}
	if s.Entries != 1 {
		t.Fatalf("entries = %d, want 1", s.Entries)
	}
}

// TestCanceledWaiterGetsCauseComputationSurvives pins the cancellation
// contract: a waiter whose context ends mid-flight returns the context
// cause immediately, while the computation — still wanted by another
// caller — finishes and populates the cache.
func TestCanceledWaiterGetsCauseComputationSurvives(t *testing.T) {
	c := New(Config{})
	k := testKey(1, 0)

	computing := make(chan struct{})
	release := make(chan struct{})
	var leaderVec ppr.Vector
	var leaderErr error
	var leaderDone sync.WaitGroup
	leaderDone.Add(1)
	go func() {
		defer leaderDone.Done()
		leaderVec, _, leaderErr = c.GetOrCompute(context.Background(), k,
			func(ctx context.Context) (ppr.Vector, error) {
				close(computing)
				select {
				case <-release:
					return ppr.Vector{42}, nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			})
	}()
	<-computing

	cause := errors.New("client walked away")
	ctx, cancel := context.WithCancelCause(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(ctx, k, func(context.Context) (ppr.Vector, error) {
			t.Error("a second compute ran while the flight was open")
			return nil, nil
		})
		waiterErr <- err
	}()
	// Give the waiter time to join the flight, then cancel it.
	time.Sleep(10 * time.Millisecond)
	cancel(cause)
	select {
	case err := <-waiterErr:
		if !errors.Is(err, cause) {
			t.Fatalf("canceled waiter returned %v, want the context cause %v", err, cause)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled waiter did not unblock")
	}

	// The leader is still interested: the computation must complete and
	// populate the cache.
	close(release)
	leaderDone.Wait()
	if leaderErr != nil {
		t.Fatalf("surviving leader failed: %v", leaderErr)
	}
	if len(leaderVec) != 1 || leaderVec[0] != 42 {
		t.Fatalf("leader vector = %v, want [42]", leaderVec)
	}
	if vec, ok := c.Get(context.Background(), k); !ok || vec[0] != 42 {
		t.Fatalf("surviving computation did not populate the cache (ok=%v vec=%v)", ok, vec)
	}
}

// TestLastWaiterCancelsCompute checks the abandonment path: when every
// caller has gone away the compute context is canceled so the engine
// stops burning CPU on a result nobody will read.
func TestLastWaiterCancelsCompute(t *testing.T) {
	c := New(Config{})
	k := testKey(1, 0)

	computeCanceled := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(ctx, k, func(fctx context.Context) (ppr.Vector, error) {
			<-fctx.Done()
			close(computeCanceled)
			return nil, fctx.Err()
		})
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()

	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("sole waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sole canceled waiter did not unblock")
	}
	select {
	case <-computeCanceled:
	case <-time.After(2 * time.Second):
		t.Fatal("compute context was not canceled after the last waiter left")
	}
	// The failed flight must not leave residue: a fresh call recomputes.
	computed := false
	if _, _, err := c.GetOrCompute(context.Background(), k, func(context.Context) (ppr.Vector, error) {
		computed = true
		return ppr.Vector{1}, nil
	}); err != nil || !computed {
		t.Fatalf("post-abandonment lookup: computed=%v err=%v", computed, err)
	}
}

// TestAbandonedFlightDoesNotPoisonLateJoiner pins the retry contract:
// an abandoned flight stays registered until its compute call winds
// down, and a live caller joining in that window must not inherit the
// departed waiters' context.Canceled — it retries and computes fresh.
// The parallel CHECK pipeline abandons speculative lookups routinely,
// so without the retry a decided explanation could poison the next
// one's checks on a shared key.
func TestAbandonedFlightDoesNotPoisonLateJoiner(t *testing.T) {
	c := New(Config{})
	k := testKey(1, 0)

	// Leader with a cancelable ctx; its compute blocks after observing
	// the abandonment cancel, holding the dead flight registered.
	abandoned := make(chan struct{})
	release := make(chan struct{})
	ctx1, cancel1 := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(ctx1, k, func(fctx context.Context) (ppr.Vector, error) {
			<-fctx.Done()
			close(abandoned)
			<-release // keep the canceled flight registered
			return nil, fctx.Err()
		})
		leaderErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel1()
	<-abandoned
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning leader returned %v, want context.Canceled", err)
	}

	// A live caller joins the still-registered dead flight. It must end
	// up with a real vector, not the abandonment's cancellation.
	base := c.Stats().Collapsed
	joinerVec := make(chan ppr.Vector, 1)
	joinerErr := make(chan error, 1)
	go func() {
		vec, _, err := c.GetOrCompute(context.Background(), k,
			func(context.Context) (ppr.Vector, error) {
				return ppr.Vector{7}, nil
			})
		joinerVec <- vec
		joinerErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Collapsed == base { // joiner is on the dead flight
		if time.Now().After(deadline) {
			t.Fatal("joiner never collapsed onto the abandoned flight")
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release) // dead flight resolves with context.Canceled

	select {
	case err := <-joinerErr:
		if err != nil {
			t.Fatalf("live joiner inherited the abandoned flight's error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("joiner did not unblock")
	}
	if vec := <-joinerVec; len(vec) != 1 || vec[0] != 7 {
		t.Fatalf("joiner vector = %v, want [7]", vec)
	}
	if vec, ok := c.Get(context.Background(), k); !ok || vec[0] != 7 {
		t.Fatalf("retry did not populate the cache (ok=%v vec=%v)", ok, vec)
	}
}

// TestConcurrentMixedWorkload hammers the cache with hits, misses and
// collapses across many keys; correctness here is "no race detected and
// every caller sees a well-formed vector".
func TestConcurrentMixedWorkload(t *testing.T) {
	c := New(Config{MaxEntries: 32, MaxBytes: 1 << 20, Shards: 4})
	const goroutines = 32
	const iters = 200
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				node := (g + i) % 48 // overlap keys across goroutines
				k := testKey(1, node)
				vec, _, err := c.GetOrCompute(context.Background(), k,
					func(context.Context) (ppr.Vector, error) {
						return ppr.Vector{float64(node)}, nil
					})
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
				if len(vec) != 1 || vec[0] != float64(node) {
					t.Errorf("goroutine %d iter %d: wrong vector %v for node %d", g, i, vec, node)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Entries > 32 {
		t.Fatalf("entry bound violated: %d resident", s.Entries)
	}
	if s.Hits+s.Misses+s.Collapsed != goroutines*iters {
		t.Fatalf("counter total %d != %d lookups", s.Hits+s.Misses+s.Collapsed, goroutines*iters)
	}
}
