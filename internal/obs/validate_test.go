package obs

import (
	"strings"
	"testing"
)

func TestValidateAcceptsOwnOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Requests.", L("route", "/a"), L("code", "2xx")).Add(3)
	r.Gauge("test_inflight", "In flight.").Set(2)
	r.CounterFunc("test_fn_total", "Fn.", func() int64 { return 9 })
	h := r.Histogram("test_seconds", "Latency.", DefBuckets(), L("route", "/a"))
	h.Observe(0.002)
	h.Observe(3)
	out := render(r)
	if err := ValidateExposition([]byte(out)); err != nil {
		t.Fatalf("ValidateExposition(own output): %v\n%s", err, out)
	}
}

func TestValidateAcceptsEmpty(t *testing.T) {
	if err := ValidateExposition(nil); err != nil {
		t.Fatalf("empty exposition must validate: %v", err)
	}
	if err := ValidateExposition([]byte(render(NewRegistry()))); err != nil {
		t.Fatalf("empty registry output must validate: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"missing trailing newline", "a_total 1", "end with a newline"},
		{"bad metric name", "2bad_total 1\n", "invalid metric name"},
		{"missing value", "a_total\n", "missing value"},
		{"bad value", "a_total pizza\n", "bad value"},
		{"duplicate TYPE", "# TYPE a_total counter\n# TYPE a_total counter\na_total 1\n", "duplicate TYPE"},
		{"TYPE after sample", "a_total 1\n# TYPE a_total counter\n", "after its first sample"},
		{"unknown TYPE", "# TYPE a_total widget\n", "unknown TYPE"},
		{"negative counter", "# TYPE a_total counter\na_total -1\n", "negative value"},
		{"duplicate series", "a_total 1\na_total 2\n", "duplicate series"},
		{"unquoted label value", "a_total{x=1} 1\n", "must be quoted"},
		{"bad escape", `a_total{x="\q"} 1` + "\n", "bad escape"},
		{"unterminated label", `a_total{x="y` + "\n", "unterminated"},
		{"duplicate label", `a_total{x="1",x="2"} 1` + "\n", "duplicate label"},
		{"bucket without le", "# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n", "without le"},
		{
			"missing +Inf bucket",
			"# TYPE h histogram\n" + `h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
			"missing le=\"+Inf\"",
		},
		{
			"count mismatch",
			"# TYPE h histogram\n" + `h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 2\n",
			"_count 2 != +Inf bucket 3",
		},
		{
			"missing sum",
			"# TYPE h histogram\n" + `h_bucket{le="+Inf"} 1` + "\nh_count 1\n",
			"missing _sum",
		},
		{
			"non-cumulative buckets",
			"# TYPE h histogram\n" +
				`h_bucket{le="1"} 5` + "\n" +
				`h_bucket{le="2"} 3` + "\n" +
				`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
			"not cumulative",
		},
	}
	for _, tc := range cases {
		err := ValidateExposition([]byte(tc.in))
		if err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateAcceptsForeignIdioms(t *testing.T) {
	// Idioms other exporters produce that our renderer does not:
	// timestamps, untyped comments, blank lines, +Inf/NaN gauge values.
	in := strings.Join([]string{
		"# an arbitrary comment",
		"",
		"# TYPE a_total counter",
		`a_total{x="1"} 7 1700000000000`,
		"# TYPE b_gauge gauge",
		"b_gauge +Inf",
		"b_gauge_other NaN",
		"",
	}, "\n")
	if err := ValidateExposition([]byte(in)); err != nil {
		t.Fatalf("foreign exposition must validate: %v", err)
	}
}
