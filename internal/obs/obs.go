// Package obs is the repo's stdlib-only metrics subsystem: a typed
// registry of counters, gauges and fixed-bucket histograms with an
// atomic hot path (no locks on increment), rendered in the Prometheus
// text exposition format (version 0.0.4).
//
// Design points:
//
//   - Registration (Registry.Counter, .Histogram, ...) takes the
//     registry lock and is get-or-create: the same (name, labels) pair
//     always returns the same metric, so package-level instrumentation
//     and tests can re-register freely. Increments and observations
//     never lock — they are single atomic operations on the returned
//     metric value.
//   - Metric methods are nil-safe: a nil *Counter ignores Inc/Add, so
//     optional instrumentation (an admission controller built without a
//     registry) needs no branching at the call sites.
//   - A process-global enabled gate (SetEnabled) turns every mutation
//     into a single atomic load + branch, letting the overhead A/B
//     benchmark measure instrumented-but-disabled cost and letting
//     byte-identity tests pin that metrics never affect results.
//   - Callback metrics (CounterFunc, GaugeFunc) re-register by
//     replacement, so components that are rebuilt per test (servers,
//     caches) can safely point the same series at their newest
//     instance. Callbacks run during rendering while the registry lock
//     is held and must not call back into the registry.
//
// The package deliberately implements the minimal contract the
// Prometheus text format requires — HELP/TYPE headers, label escaping,
// cumulative histogram buckets with a +Inf bound, _sum and _count
// series — and ValidateExposition checks exactly that contract, so CI
// can smoke-test a live /metrics endpoint without third-party
// dependencies.
package obs

import (
	"bytes"
	"net/http"
	"sync/atomic"
)

// ContentType is the value of the Content-Type header for the text
// exposition format served by Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" dimension of a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// disabled is the process-global recording gate, stored inverted so the
// zero value means "enabled".
var disabled atomic.Bool

// SetEnabled turns metric recording on or off process-wide. Recording
// is on by default; turning it off makes every Inc/Add/Set/Observe a
// single atomic load + branch (used by the overhead benchmarks and the
// byte-identity A/B tests). Rendering is unaffected.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether metric recording is on. Instrumentation that
// must do extra work to produce a sample (e.g. an O(n) residual-mass
// sum) should gate that work on Enabled.
func Enabled() bool { return !disabled.Load() }

// std is the process-global registry used by package-deep
// instrumentation (PPR engines, the eval harness) that has no
// convenient registry to thread through.
var std = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return std }

// Handler serves the given registries' metrics in the Prometheus text
// exposition format. Duplicate registry pointers are rendered once
// (the server passes both its own registry and Default; when they are
// the same registry the output must not repeat), and a family name
// present in more than one registry is rendered only from the first —
// the format forbids duplicate TYPE lines, and earlier registries are
// the more specific ones.
func Handler(regs ...*Registry) http.Handler {
	uniq := make([]*Registry, 0, len(regs))
	seen := make(map[*Registry]bool, len(regs))
	for _, r := range regs {
		if r != nil && !seen[r] {
			seen[r] = true
			uniq = append(uniq, r)
		}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var buf bytes.Buffer
		rendered := make(map[string]bool)
		for _, r := range uniq {
			r.writePrometheus(&buf, rendered)
		}
		w.Header().Set("Content-Type", ContentType)
		_, _ = w.Write(buf.Bytes())
	})
}
