package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParsedSample is one sample line of an exposition: the full sample
// name (histogram _bucket/_sum/_count suffixes included), its labels in
// input order, the parsed value, and the optional trailing timestamp
// kept verbatim so a re-emit reproduces foreign expositions faithfully.
type ParsedSample struct {
	Name      string
	Labels    []Label
	Value     float64
	Timestamp string
}

// LabelValue returns the value of the named label, or "" when absent.
func (s *ParsedSample) LabelValue(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// ParsedFamily groups the samples of one metric family (histogram
// derived series attach to their base family, matching how the
// validator and the renderer treat them).
type ParsedFamily struct {
	// Name is the family (base) name.
	Name string
	// Help and Type carry the # HELP / # TYPE metadata; the Has flags
	// distinguish "absent" from "empty" so re-emitting an exposition
	// that declared no metadata stays faithful.
	Help    string
	HasHelp bool
	Type    string
	HasType bool
	// Samples holds the family's sample lines in input order.
	Samples []ParsedSample
}

// Value returns the value of the sample matching the full sample name
// and exactly the given labels (order-insensitive). The second return
// is false when no such series exists.
func (f *ParsedFamily) Value(sampleName string, labels ...Label) (float64, bool) {
	want := labelKey(labels)
	for i := range f.Samples {
		s := &f.Samples[i]
		if s.Name == sampleName && labelKey(s.Labels) == want {
			return s.Value, true
		}
	}
	return 0, false
}

// Total sums every plain sample of the family (samples named exactly
// like the family — for histograms that excludes the derived _bucket/
// _sum/_count series). For a counter family with one series per label
// set this is the family-wide total, the quantity scrape-delta reports
// care about.
func (f *ParsedFamily) Total() float64 {
	var sum float64
	for i := range f.Samples {
		if f.Samples[i].Name == f.Name {
			sum += f.Samples[i].Value
		}
	}
	return sum
}

// Exposition is a parsed Prometheus text exposition: families in first-
// appearance order, each holding its samples in input order. Parsing
// then re-emitting an exposition rendered by this package is
// byte-identical; foreign expositions (comments, blank lines,
// non-canonical float spellings) reach a fixed point after one
// parse→emit cycle.
type Exposition struct {
	Families []*ParsedFamily

	byName map[string]*ParsedFamily
}

// Family returns the named family, or nil when absent.
func (e *Exposition) Family(name string) *ParsedFamily {
	return e.byName[name]
}

// FamilyNames returns every family name in first-appearance order.
func (e *Exposition) FamilyNames() []string {
	names := make([]string, len(e.Families))
	for i, f := range e.Families {
		names[i] = f.Name
	}
	return names
}

// CounterDeltas returns after.Total() - before.Total() for every
// counter-typed family present in after, keyed by family name and
// skipping zero deltas. Families absent from before count from zero, so
// a scrape taken mid-run diffs cleanly against one taken at start.
func CounterDeltas(before, after *Exposition) map[string]float64 {
	out := map[string]float64{}
	for _, f := range after.Families {
		if f.Type != "counter" {
			continue
		}
		var base float64
		if before != nil {
			if bf := before.Family(f.Name); bf != nil {
				base = bf.Total()
			}
		}
		//lint:allow floateq exact-zero delta filter: counters that did not move
		if d := f.Total() - base; d != 0 {
			out[f.Name] = d
		}
	}
	return out
}

// ParseExposition parses a Prometheus text exposition (format version
// 0.0.4) into its families and samples. It accepts exactly the syntax
// ValidateExposition accepts at the line level — metric/label name
// charsets, label escaping, parseable values, optional timestamps,
// duplicate-TYPE rejection — but does not enforce the cross-line
// histogram contract (that is the validator's job; run both when
// checking a scrape). Plain comments and blank lines are dropped.
func ParseExposition(b []byte) (*Exposition, error) {
	e := &Exposition{byName: map[string]*ParsedFamily{}}
	types := map[string]string{}
	text := string(b)
	if text != "" && !strings.HasSuffix(text, "\n") {
		return nil, fmt.Errorf("obs: exposition must end with a newline")
	}
	for i, line := range strings.Split(text, "\n") {
		if err := e.parseLine(line, types); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", i+1, err)
		}
	}
	return e, nil
}

// family returns (creating if needed) the family record for name.
func (e *Exposition) family(name string) *ParsedFamily {
	if f := e.byName[name]; f != nil {
		return f
	}
	f := &ParsedFamily{Name: name}
	e.byName[name] = f
	e.Families = append(e.Families, f)
	return f
}

func (e *Exposition) parseLine(line string, types map[string]string) error {
	if line == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return e.parseComment(line, types)
	}
	return e.parseSample(line, types)
}

func (e *Exposition) parseComment(line string, types map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || fields[0] != "#" {
		return nil // plain comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("TYPE needs a metric name and a type")
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q in TYPE", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q for %s", typ, name)
		}
		f := e.family(name)
		if f.HasType {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if len(f.Samples) > 0 {
			return fmt.Errorf("TYPE for %s after its first sample", name)
		}
		f.Type, f.HasType = typ, true
		types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("HELP needs a metric name")
		}
		name := fields[2]
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q in HELP", name)
		}
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		f := e.family(name)
		f.Help, f.HasHelp = unescapeHelp(help), true
	}
	return nil
}

func (e *Exposition) parseSample(line string, types map[string]string) error {
	name, rest, err := splitName(line)
	if err != nil {
		return err
	}
	rawLabels, rest, err := parseOrderedLabels(rest)
	if err != nil {
		return fmt.Errorf("metric %s: %w", name, err)
	}
	valueText, timestamp, _ := strings.Cut(strings.TrimSpace(rest), " ")
	if valueText == "" {
		return fmt.Errorf("metric %s: missing value", name)
	}
	value, err := strconv.ParseFloat(valueText, 64)
	if err != nil {
		return fmt.Errorf("metric %s: bad value %q", name, valueText)
	}
	familyName, _ := histogramFamily(types, name)
	f := e.family(familyName)
	f.Samples = append(f.Samples, ParsedSample{
		Name:      name,
		Labels:    rawLabels,
		Value:     value,
		Timestamp: strings.TrimSpace(timestamp),
	})
	return nil
}

// parseOrderedLabels parses an optional {name="value",...} block like
// parseLabels but preserves label order and rejects duplicates.
func parseOrderedLabels(s string) ([]Label, string, error) {
	asMap, rest, err := parseLabels(s)
	if err != nil {
		return nil, "", err
	}
	if len(asMap) == 0 {
		return nil, rest, nil
	}
	// Re-scan the block in order; parseLabels already guaranteed it is
	// well-formed and duplicate-free, so a light second pass suffices.
	ordered := make([]Label, 0, len(asMap))
	block := s[:len(s)-len(rest)]
	i := 1 // past '{'
	for len(ordered) < len(asMap) {
		for i < len(block) && (block[i] == ' ' || block[i] == ',') {
			i++
		}
		start := i
		for i < len(block) && block[i] != '=' {
			i++
		}
		lname := strings.TrimSpace(block[start:i])
		ordered = append(ordered, Label{Name: lname, Value: asMap[lname]})
		// Skip ="value" (escapes included).
		i += 2 // '=' and opening quote
		for i < len(block) && block[i] != '"' {
			if block[i] == '\\' {
				i++
			}
			i++
		}
		i++ // closing quote
	}
	return ordered, rest, nil
}

// unescapeHelp reverses escapeHelp.
func unescapeHelp(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// WritePrometheus re-emits the exposition in the text format: families
// in parse order, HELP then TYPE (when present) then samples in parse
// order. Emitting output of this package's renderer reproduces it
// byte for byte.
func (e *Exposition) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range e.Families {
		if f.HasHelp {
			b.WriteString("# HELP ")
			b.WriteString(f.Name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(f.Help))
			b.WriteByte('\n')
		}
		if f.HasType {
			b.WriteString("# TYPE ")
			b.WriteString(f.Name)
			b.WriteByte(' ')
			b.WriteString(f.Type)
			b.WriteByte('\n')
		}
		for i := range f.Samples {
			s := &f.Samples[i]
			b.WriteString(s.Name)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for j, l := range s.Labels {
					if j > 0 {
						b.WriteByte(',')
					}
					b.WriteString(l.Name)
					b.WriteString(`="`)
					b.WriteString(escapeLabelValue(l.Value))
					b.WriteByte('"')
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatValue(s.Value))
			if s.Timestamp != "" {
				b.WriteByte(' ')
				b.WriteString(s.Timestamp)
			}
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// SortedCounterFamilies returns the names of every counter family in
// lexical order — a stable iteration aid for report rendering.
func (e *Exposition) SortedCounterFamilies() []string {
	var names []string
	for _, f := range e.Families {
		if f.Type == "counter" {
			names = append(names, f.Name)
		}
	}
	sort.Strings(names)
	return names
}
