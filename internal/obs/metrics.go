package obs

import (
	"math"
	"sort"
	"sync/atomic"

	"github.com/why-not-xai/emigre/internal/fmath"
)

// Counter is a monotonically non-decreasing metric. The zero value is
// usable; nil receivers ignore mutations so optional instrumentation
// needs no branching at call sites.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Negative and zero deltas are ignored — counters only go
// up.
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 || disabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is usable;
// nil receivers ignore mutations.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil || disabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil || disabled.Load() {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds (Prometheus "le" semantics); an implicit +Inf bucket catches
// everything above the last bound. Observations are lock-free: a
// single atomic add on the bucket plus a CAS loop on the float sum.
type Histogram struct {
	upper  []float64 // ascending, +Inf excluded
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(buckets []float64) *Histogram {
	upper := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		if math.IsNaN(b) {
			panic("obs: histogram bucket bound is NaN")
		}
		if math.IsInf(b, 1) {
			continue // +Inf is implicit
		}
		upper = append(upper, b)
	}
	sort.Float64s(upper)
	// Drop duplicate bounds so each rendered le value is unique.
	dedup := upper[:0]
	for i, b := range upper {
		if i == 0 || !fmath.Eq(b, upper[i-1]) {
			dedup = append(dedup, b)
		}
	}
	upper = dedup
	return &Histogram{
		upper:  upper,
		counts: make([]atomic.Int64, len(upper)+1), // +1: the +Inf bucket
	}
}

// Observe records one sample. NaN samples are dropped (they would
// poison the sum and fit no bucket).
func (h *Histogram) Observe(v float64) {
	if h == nil || disabled.Load() || math.IsNaN(v) {
		return
	}
	// SearchFloat64s returns the first i with upper[i] >= v — exactly
	// the le contract; i == len(upper) lands in the +Inf bucket.
	h.counts[sort.SearchFloat64s(h.upper, v)].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot returns cumulative bucket counts (one per upper bound plus
// the +Inf bucket), the total count and the sum. Counts and sum are
// loaded independently, so a snapshot taken under concurrent writes
// may be torn by a few in-flight observations — the standard contract
// for atomics-based collectors.
func (h *Histogram) snapshot() (cum []int64, count int64, sum float64) {
	cum = make([]int64, len(h.counts))
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, running, h.Sum()
}

// DefBuckets is the default latency bucket layout in seconds, spanning
// 0.5ms to 10s — the range an explanation request realistically covers.
func DefBuckets() []float64 {
	return []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start, each factor times the previous. It panics on a non-positive
// start, a factor not greater than one, or n < 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets requires start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}
