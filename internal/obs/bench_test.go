package obs

import (
	"strings"
	"testing"
)

// The registry hot path must stay cheap enough to sit inside PPR push
// loops' epilogues and the HTTP middleware: a counter add is one atomic
// RMW, a disabled add is one atomic load + branch.

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddDisabled(b *testing.B) {
	defer SetEnabled(true)
	c := NewRegistry().Counter("bench_total", "h")
	SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "h")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "h", DefBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for _, route := range []string{"/a", "/b", "/c", "/d"} {
		r.Counter("bench_requests_total", "h", L("route", route), L("code", "2xx")).Add(7)
		r.Histogram("bench_seconds", "h", DefBuckets(), L("route", route)).Observe(0.1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		r.WritePrometheus(&sb)
	}
}
