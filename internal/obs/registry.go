package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// kind is the metric family type.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families. Create with NewRegistry (or use
// Default). Registration methods are safe for concurrent use and
// get-or-create; mutating the returned metrics never touches the
// registry again.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family groups every series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	series map[string]*series
}

// series is one labeled instance within a family. Exactly one of the
// value fields is set, matching the family kind (fn serves both
// counter- and gauge-kinded callback series).
type series struct {
	key  string // serialized labels, e.g. `engine="forward_push"`
	c    *Counter
	g    *Gauge
	fn   func() int64
	hist *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter for (name, labels), creating the family
// and series on first use. It panics if the name is already registered
// with a different kind, or the series is callback-backed.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesLocked(name, help, kindCounter, labels)
	if s.fn != nil {
		panic("obs: " + name + ": series is callback-backed (CounterFunc)")
	}
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesLocked(name, help, kindGauge, labels)
	if s.fn != nil {
		panic("obs: " + name + ": series is callback-backed (GaugeFunc)")
	}
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// CounterFunc registers a callback-backed counter series: fn is called
// at render time and must be monotonically non-decreasing (components
// that already keep atomic tallies export them this way without double
// counting). Re-registering the same (name, labels) replaces the
// callback — rebuilt components repoint the series at their newest
// instance. fn runs with the registry lock held and must not call back
// into the registry.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	if fn == nil {
		panic("obs: CounterFunc " + name + ": nil callback")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesLocked(name, help, kindCounter, labels)
	if s.c != nil {
		panic("obs: " + name + ": series is value-backed (Counter)")
	}
	s.fn = fn
}

// GaugeFunc registers a callback-backed gauge series, with the same
// replacement and locking contract as CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	if fn == nil {
		panic("obs: GaugeFunc " + name + ": nil callback")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesLocked(name, help, kindGauge, labels)
	if s.g != nil {
		panic("obs: " + name + ": series is value-backed (Gauge)")
	}
	s.fn = fn
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bucket upper bounds on first use (a +Inf bucket is always
// implicit). On a get of an existing series the buckets argument is
// ignored — the first registration wins.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesLocked(name, help, kindHistogram, labels)
	if s.hist == nil {
		s.hist = newHistogram(buckets)
	}
	return s.hist
}

// seriesLocked resolves (name, labels) to its series, creating family
// and series as needed. The caller holds r.mu.
func (r *Registry) seriesLocked(name, help string, k kind, labels []Label) *series {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !validLabelName(l.Name) {
			panic("obs: metric " + name + ": invalid label name " + strconv.Quote(l.Name))
		}
		if k == kindHistogram && l.Name == "le" {
			panic("obs: metric " + name + `: label "le" is reserved for histogram buckets`)
		}
	}
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != k {
		panic(fmt.Sprintf("obs: metric %s already registered as %s, requested %s", name, f.kind, k))
	}
	key := labelKey(labels)
	s := f.series[key]
	if s == nil {
		s = &series{key: key}
		f.series[key] = s
	}
	return s
}

// labelKey serializes labels sorted by name into the exact form they
// are rendered in, so the key doubles as the render fragment.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value: integers without an exponent,
// other floats in shortest round-trip form, infinities in the spelling
// the format requires.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the text exposition format,
// families and series in lexical order. Callback series invoke their
// callbacks; value series load their atomics. The registry lock is
// held for the duration, so registrations block until the render ends
// (rendering is /metrics-scrape-rate cold path).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.writePrometheus(w, nil)
}

// writePrometheus renders like WritePrometheus but skips (and records)
// family names in rendered, letting Handler merge several registries
// without repeating a family that exists in more than one — the format
// forbids duplicate TYPE lines, and the first registry wins.
func (r *Registry) writePrometheus(w io.Writer, rendered map[string]bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		if rendered[name] {
			continue
		}
		if rendered != nil {
			rendered[name] = true
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		keys := make([]string, 0, len(f.series))
		for key := range f.series {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			renderSeries(&b, f, f.series[key])
		}
	}
	_, _ = io.WriteString(w, b.String())
}

func renderSeries(b *strings.Builder, f *family, s *series) {
	switch {
	case s.hist != nil:
		renderHistogram(b, f.name, s)
	case s.fn != nil:
		writeSample(b, f.name, s.key, float64(s.fn()))
	case s.c != nil:
		writeSample(b, f.name, s.key, float64(s.c.Value()))
	case s.g != nil:
		writeSample(b, f.name, s.key, float64(s.g.Value()))
	}
}

func renderHistogram(b *strings.Builder, name string, s *series) {
	h := s.hist
	cum, count, sum := h.snapshot()
	for i, bound := range h.upper {
		writeSample(b, name+"_bucket", joinKeys(s.key, `le="`+formatValue(bound)+`"`), float64(cum[i]))
	}
	writeSample(b, name+"_bucket", joinKeys(s.key, `le="+Inf"`), float64(count))
	writeSample(b, name+"_sum", s.key, sum)
	writeSample(b, name+"_count", s.key, float64(count))
}

func joinKeys(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func writeSample(b *strings.Builder, name, key string, v float64) {
	b.WriteString(name)
	if key != "" {
		b.WriteByte('{')
		b.WriteString(key)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}
