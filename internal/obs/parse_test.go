package obs

import (
	"strings"
	"testing"
)

// corpusRegistry builds a registry exercising every series kind the
// renderer can emit: counters (plain and labelled), gauges, callback
// metrics, and histograms with custom buckets.
func corpusRegistry() *Registry {
	r := NewRegistry()
	r.Counter("corpus_requests_total", "Requests.").Add(41)
	r.Counter("corpus_requests_by_op_total", "Requests by op.", L("op", "explain")).Add(7)
	r.Counter("corpus_requests_by_op_total", "Requests by op.", L("op", "recommend")).Add(3)
	r.Gauge("corpus_temperature", "A gauge.").Set(-3)
	r.GaugeFunc("corpus_callback", "Callback gauge.", func() int64 { return 2 })
	h := r.Histogram("corpus_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.25)
	h.Observe(42)
	r.Counter("corpus_weird_total", "Label escapes.", L("path", "a\\b\"c\nd")).Add(1)
	return r
}

func TestParseRoundTripsRegistryOutput(t *testing.T) {
	var rendered strings.Builder
	corpusRegistry().WritePrometheus(&rendered)
	in := rendered.String()
	if err := ValidateExposition([]byte(in)); err != nil {
		t.Fatalf("corpus invalid: %v", err)
	}
	e, err := ParseExposition([]byte(in))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	var out strings.Builder
	if err := e.WritePrometheus(&out); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if out.String() != in {
		t.Errorf("parse→emit not byte-identical:\n--- in ---\n%s\n--- out ---\n%s", in, out.String())
	}
}

// TestParseFixedPointOnForeignIdioms feeds the parser the same foreign
// expositions the validator accepts (timestamps, plain comments, blank
// lines, special float spellings) and checks one parse→emit cycle
// reaches a fixed point that still validates.
func TestParseFixedPointOnForeignIdioms(t *testing.T) {
	inputs := []string{
		"# TYPE a_total counter\na_total{x=\"1\"} 7 1700000000000\n",
		"# a plain comment, anything goes\n#another\n\nfoo 1\n",
		"# TYPE g gauge\ng +Inf\ng2 NaN\ng3 -Inf\n",
		"no_metadata_at_all 3.5\n",
		"# HELP h has help but no type\nh 1\n",
		"# TYPE m counter\n# HELP m help after type\nm 2\n",
		"withlabels{a=\"x\",b=\"y\"} 1\nwithlabels{b=\"y\",a=\"z\"} 2\n",
	}
	for _, in := range inputs {
		e, err := ParseExposition([]byte(in))
		if err != nil {
			t.Errorf("ParseExposition(%q): %v", in, err)
			continue
		}
		var first strings.Builder
		if err := e.WritePrometheus(&first); err != nil {
			t.Fatalf("emit: %v", err)
		}
		e2, err := ParseExposition([]byte(first.String()))
		if err != nil {
			t.Errorf("re-parse of emitted %q: %v", first.String(), err)
			continue
		}
		var second strings.Builder
		if err := e2.WritePrometheus(&second); err != nil {
			t.Fatalf("emit: %v", err)
		}
		if first.String() != second.String() {
			t.Errorf("no fixed point for %q:\nfirst:  %q\nsecond: %q", in, first.String(), second.String())
		}
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"no_newline 1",
		"0bad_name 1\n",
		"a{__reserved=\"x\"} 1\n",
		"a{l=\"unterminated} 1\n",
		"a{l=\"bad\\q\"} 1\n",
		"a{l=\"dup\",l=\"dup\"} 1\n",
		"a notanumber\n",
		"a\n",
		"# TYPE a wat\na 1\n",
		"# TYPE a counter\n# TYPE a counter\na 1\n",
		"# TYPE\n",
		"a 1\n# TYPE a counter\n",
	}
	for _, in := range bad {
		if _, err := ParseExposition([]byte(in)); err == nil {
			t.Errorf("ParseExposition(%q): expected error, got nil", in)
		}
	}
}

func TestParsedAccessors(t *testing.T) {
	in := "# HELP req_total Requests.\n# TYPE req_total counter\n" +
		"req_total{op=\"explain\"} 5\nreq_total{op=\"rec\"} 2\n" +
		"# TYPE lat histogram\n" +
		"lat_bucket{le=\"1\"} 3\nlat_bucket{le=\"+Inf\"} 4\nlat_sum 2.5\nlat_count 4\n"
	e, err := ParseExposition([]byte(in))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	f := e.Family("req_total")
	if f == nil {
		t.Fatal("family req_total missing")
	}
	if f.Help != "Requests." || !f.HasHelp || f.Type != "counter" {
		t.Errorf("metadata wrong: %+v", f)
	}
	if got := f.Total(); got != 7 {
		t.Errorf("Total = %v, want 7", got)
	}
	if v, ok := f.Value("req_total", L("op", "rec")); !ok || v != 2 {
		t.Errorf("Value(op=rec) = %v,%v want 2,true", v, ok)
	}
	if _, ok := f.Value("req_total", L("op", "absent")); ok {
		t.Error("Value matched an absent series")
	}
	lat := e.Family("lat")
	if lat == nil || len(lat.Samples) != 4 {
		t.Fatalf("histogram samples not grouped under base family: %+v", lat)
	}
	// Plain-sample Total excludes derived histogram series.
	if got := lat.Total(); got != 0 {
		t.Errorf("histogram Total = %v, want 0", got)
	}
	if v, ok := lat.Value("lat_bucket", L("le", "1")); !ok || v != 3 {
		t.Errorf("bucket lookup = %v,%v want 3,true", v, ok)
	}
	if got := e.FamilyNames(); len(got) != 2 || got[0] != "req_total" || got[1] != "lat" {
		t.Errorf("FamilyNames = %v", got)
	}
}

func TestCounterDeltas(t *testing.T) {
	before, err := ParseExposition([]byte(
		"# TYPE a_total counter\na_total 5\n# TYPE g gauge\ng 100\n"))
	if err != nil {
		t.Fatal(err)
	}
	after, err := ParseExposition([]byte(
		"# TYPE a_total counter\na_total 9\n# TYPE g gauge\ng 1\n" +
			"# TYPE b_total counter\nb_total{k=\"x\"} 2\nb_total{k=\"y\"} 3\n" +
			"# TYPE c_total counter\nc_total 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	// Drift c_total to zero delta by matching before.
	pre, err := ParseExposition([]byte(
		"# TYPE a_total counter\na_total 5\n# TYPE c_total counter\nc_total 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	d := CounterDeltas(pre, after)
	if len(d) != 2 || d["a_total"] != 4 || d["b_total"] != 5 {
		t.Errorf("CounterDeltas = %v, want a_total:4 b_total:5", d)
	}
	_ = before
	d = CounterDeltas(nil, after)
	if d["a_total"] != 9 {
		t.Errorf("nil-before delta = %v, want full totals", d)
	}
}
