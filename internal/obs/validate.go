package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/why-not-xai/emigre/internal/fmath"
)

// ValidateExposition checks that b is a well-formed Prometheus text
// exposition (format version 0.0.4): comment syntax, at most one TYPE
// per family declared before its first sample, metric/label name
// charsets, label escaping, parseable values, no duplicate series, and
// the histogram contract — every histogram series carries a +Inf
// bucket, cumulative non-decreasing bucket counts, and _count equal to
// the +Inf bucket. It is the plain-text contract smoke test CI runs
// against a live /metrics endpoint.
func ValidateExposition(b []byte) error {
	v := &validator{
		types:     make(map[string]string),
		sampled:   make(map[string]bool),
		seen:      make(map[string]bool),
		histogram: make(map[string]map[string]*histSeries),
	}
	text := string(b)
	if text != "" && !strings.HasSuffix(text, "\n") {
		return fmt.Errorf("obs: exposition must end with a newline")
	}
	for i, line := range strings.Split(text, "\n") {
		if err := v.line(line); err != nil {
			return fmt.Errorf("obs: line %d: %w", i+1, err)
		}
	}
	return v.finish()
}

// histSeries accumulates one histogram series (one base-label set).
type histSeries struct {
	buckets  map[string]float64 // le value -> count
	sum      float64
	hasSum   bool
	count    float64
	hasCount bool
}

type validator struct {
	types     map[string]string                 // family -> declared TYPE
	sampled   map[string]bool                   // family -> sample seen
	seen      map[string]bool                   // full series id -> present
	histogram map[string]map[string]*histSeries // family -> base labels -> series
}

func (v *validator) line(line string) error {
	if line == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return v.comment(line)
	}
	return v.sample(line)
}

func (v *validator) comment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || fields[0] != "#" {
		// "#-prefixed but not '# '": plain comment, anything goes.
		return nil
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("TYPE needs a metric name and a type")
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q in TYPE", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q for %s", typ, name)
		}
		if _, dup := v.types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if v.sampled[name] {
			return fmt.Errorf("TYPE for %s after its first sample", name)
		}
		v.types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("HELP needs a metric name")
		}
		if !validMetricName(fields[2]) {
			return fmt.Errorf("invalid metric name %q in HELP", fields[2])
		}
	}
	return nil
}

func (v *validator) sample(line string) error {
	name, rest, err := splitName(line)
	if err != nil {
		return err
	}
	labels, rest, err := parseLabels(rest)
	if err != nil {
		return fmt.Errorf("metric %s: %w", name, err)
	}
	valueText, _, _ := strings.Cut(strings.TrimSpace(rest), " ") // optional timestamp after the value
	if valueText == "" {
		return fmt.Errorf("metric %s: missing value", name)
	}
	value, err := strconv.ParseFloat(valueText, 64)
	if err != nil {
		return fmt.Errorf("metric %s: bad value %q", name, valueText)
	}

	family, suffix := histogramFamily(v.types, name)
	v.sampled[family] = true
	id := name + "{" + flattenLabels(labels) + "}"
	if v.seen[id] {
		return fmt.Errorf("duplicate series %s", id)
	}
	v.seen[id] = true

	if typ := v.types[family]; typ == "counter" && value < 0 {
		return fmt.Errorf("counter %s has negative value %s", name, valueText)
	}
	if suffix != "" {
		return v.histogramSample(family, suffix, labels, value)
	}
	return nil
}

// histogramFamily maps a sample name to its family: when a declared
// histogram family matches the name minus a _bucket/_sum/_count
// suffix, the sample belongs to that family.
func histogramFamily(types map[string]string, name string) (family, suffix string) {
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, sfx)
		if ok && types[base] == "histogram" {
			return base, sfx
		}
	}
	return name, ""
}

func (v *validator) histogramSample(family, suffix string, labels map[string]string, value float64) error {
	le, hasLe := labels["le"]
	base := make(map[string]string, len(labels))
	for k, val := range labels {
		if k != "le" {
			base[k] = val
		}
	}
	baseKey := flattenLabels(base)
	group := v.histogram[family]
	if group == nil {
		group = make(map[string]*histSeries)
		v.histogram[family] = group
	}
	hs := group[baseKey]
	if hs == nil {
		hs = &histSeries{buckets: make(map[string]float64)}
		group[baseKey] = hs
	}
	switch suffix {
	case "_bucket":
		if !hasLe {
			return fmt.Errorf("histogram %s: _bucket sample without le label", family)
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil || math.IsNaN(bound) {
			return fmt.Errorf("histogram %s: bad le %q", family, le)
		}
		hs.buckets[le] = value
	case "_sum":
		if hasLe {
			return fmt.Errorf("histogram %s: _sum sample with le label", family)
		}
		hs.sum, hs.hasSum = value, true
	case "_count":
		if hasLe {
			return fmt.Errorf("histogram %s: _count sample with le label", family)
		}
		hs.count, hs.hasCount = value, true
	}
	return nil
}

// finish runs the cross-line histogram checks once every sample is in.
func (v *validator) finish() error {
	for family, typ := range v.types {
		if typ != "histogram" {
			continue
		}
		group := v.histogram[family]
		if len(group) == 0 {
			if v.sampled[family] {
				return fmt.Errorf("obs: histogram %s: declared but has non-histogram samples", family)
			}
			continue // declared, never sampled: legal
		}
		for baseKey, hs := range group {
			if err := checkHistSeries(family, hs); err != nil {
				if baseKey != "" {
					return fmt.Errorf("%w (labels {%s})", err, baseKey)
				}
				return err
			}
		}
	}
	return nil
}

func checkHistSeries(family string, hs *histSeries) error {
	inf, ok := hs.buckets["+Inf"]
	if !ok {
		return fmt.Errorf("obs: histogram %s: missing le=\"+Inf\" bucket", family)
	}
	if !hs.hasCount {
		return fmt.Errorf("obs: histogram %s: missing _count", family)
	}
	if !hs.hasSum {
		return fmt.Errorf("obs: histogram %s: missing _sum", family)
	}
	if !fmath.Eq(hs.count, inf) {
		return fmt.Errorf("obs: histogram %s: _count %g != +Inf bucket %g", family, hs.count, inf)
	}
	type bucket struct {
		bound float64
		count float64
	}
	buckets := make([]bucket, 0, len(hs.buckets))
	for le, count := range hs.buckets {
		bound, _ := strconv.ParseFloat(le, 64) // already validated per line
		buckets = append(buckets, bucket{bound: bound, count: count})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].bound < buckets[j].bound })
	for i := 1; i < len(buckets); i++ {
		if buckets[i].count < buckets[i-1].count {
			return fmt.Errorf("obs: histogram %s: bucket counts not cumulative at le=%s",
				family, formatValue(buckets[i].bound))
		}
	}
	return nil
}

// splitName cuts the metric name off the front of a sample line,
// returning the remainder (label block and/or value).
func splitName(line string) (name, rest string, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	return name, line[i:], nil
}

// parseLabels parses an optional {name="value",...} block, handling
// escaped quotes, backslashes and newlines in values.
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	if !strings.HasPrefix(s, "{") {
		return labels, s, nil
	}
	i := 1
	for {
		for i < len(s) && s[i] == ' ' {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, s[i+1:], nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i == len(s) {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		lname := strings.TrimSpace(s[start:i])
		if !validLabelName(lname) && lname != "le" {
			return nil, "", fmt.Errorf("invalid label name %q", lname)
		}
		if _, dup := labels[lname]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", lname)
		}
		i++ // consume '='
		if i >= len(s) || s[i] != '"' {
			return nil, "", fmt.Errorf("label %s: value must be quoted", lname)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return nil, "", fmt.Errorf("label %s: unterminated value", lname)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("label %s: dangling escape", lname)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: bad escape \\%c", lname, s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels[lname] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
			continue
		}
		if i < len(s) && s[i] == '}' {
			return labels, s[i+1:], nil
		}
		return nil, "", fmt.Errorf("label %s: expected ',' or '}'", lname)
	}
}

// flattenLabels renders a parsed label map back into a canonical
// sorted key for duplicate detection and histogram grouping.
func flattenLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	names := make([]string, 0, len(labels))
	for n := range labels {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[n]))
		b.WriteByte('"')
	}
	return b.String()
}
