package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/why-not-xai/emigre/internal/fmath"
)

func TestCounterRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests served.", L("route", "/explain"))
	c.Inc()
	c.Add(2)
	c.Add(0)  // ignored
	c.Add(-5) // ignored: counters only go up
	if got := c.Value(); got != 3 {
		t.Fatalf("Value = %d, want 3", got)
	}
	out := render(r)
	for _, want := range []string{
		"# HELP test_requests_total Requests served.\n",
		"# TYPE test_requests_total counter\n",
		`test_requests_total{route="/explain"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestGetOrCreateReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "h", L("k", "v"))
	b := r.Counter("test_total", "h", L("k", "v"))
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	other := r.Counter("test_total", "h", L("k", "w"))
	if a == other {
		t.Fatal("different label values must be distinct series")
	}
}

func TestLabelOrderIsCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Gauge("test_gauge", "h", L("b", "2"), L("a", "1"))
	b := r.Gauge("test_gauge", "h", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("label order must not distinguish series")
	}
	a.Set(7)
	out := render(r)
	if !strings.Contains(out, `test_gauge{a="1",b="2"} 7`+"\n") {
		t.Fatalf("labels must render sorted by name:\n%s", out)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_inflight", "h")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
	if !strings.Contains(render(r), "test_inflight 7\n") {
		t.Fatal("label-less gauge must render without braces")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name must panic")
		}
	}()
	r.Gauge("test_total", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	for _, name := range []string{"", "2leading", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q must panic", name)
				}
			}()
			NewRegistry().Counter(name, "h")
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("label name __reserved must panic")
			}
		}()
		NewRegistry().Counter("test_total", "h", L("__reserved", "x"))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error(`histogram label "le" must panic`)
			}
		}()
		NewRegistry().Histogram("test_hist", "h", DefBuckets(), L("le", "1"))
	}()
}

func TestFuncMetricsReplaceOnReregister(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("test_fn_total", "h", func() int64 { return 1 })
	r.CounterFunc("test_fn_total", "h", func() int64 { return 42 })
	r.GaugeFunc("test_fn_gauge", "h", func() int64 { return 5 })
	r.GaugeFunc("test_fn_gauge", "h", func() int64 { return 6 })
	out := render(r)
	if !strings.Contains(out, "test_fn_total 42\n") {
		t.Errorf("CounterFunc re-registration must replace the callback:\n%s", out)
	}
	if !strings.Contains(out, "test_fn_gauge 6\n") {
		t.Errorf("GaugeFunc re-registration must replace the callback:\n%s", out)
	}
}

func TestValueAndFuncSeriesConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("CounterFunc over a value-backed series must panic")
		}
	}()
	r.CounterFunc("test_total", "h", func() int64 { return 0 })
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "h", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50, math.NaN()} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5 (NaN dropped)", got)
	}
	if got, want := h.Sum(), 0.05+0.5+0.5+5+50; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Sum = %g, want %g", got, want)
	}
	out := render(r)
	for _, want := range []string{
		"# TYPE test_seconds histogram\n",
		`test_seconds_bucket{le="0.1"} 1` + "\n",
		`test_seconds_bucket{le="1"} 3` + "\n",
		`test_seconds_bucket{le="10"} 4` + "\n",
		`test_seconds_bucket{le="+Inf"} 5` + "\n",
		"test_seconds_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition([]byte(out)); err != nil {
		t.Fatalf("own histogram output must validate: %v", err)
	}
}

func TestHistogramBucketNormalization(t *testing.T) {
	// Unsorted, duplicated and +Inf bounds must normalize to a strictly
	// ascending finite list.
	h := newHistogram([]float64{5, 1, 5, math.Inf(1), 2})
	want := []float64{1, 2, 5}
	if len(h.upper) != len(want) {
		t.Fatalf("upper = %v, want %v", h.upper, want)
	}
	for i := range want {
		if math.Abs(h.upper[i]-want[i]) > 0 {
			t.Fatalf("upper = %v, want %v", h.upper, want)
		}
	}
}

func TestHistogramBoundaryIsInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "h", []float64{1})
	h.Observe(1) // le="1" means <= 1
	out := render(r)
	if !strings.Contains(out, `test_seconds_bucket{le="1"} 1`+"\n") {
		t.Fatalf("observation equal to a bound must land in that bucket:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "line1\nline2 \\ backslash", L("k", "quote\" slash\\ nl\n")).Inc()
	out := render(r)
	if !strings.Contains(out, `# HELP test_total line1\nline2 \\ backslash`+"\n") {
		t.Errorf("HELP escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, `test_total{k="quote\" slash\\ nl\n"} 1`+"\n") {
		t.Errorf("label value escaping wrong:\n%s", out)
	}
	if err := ValidateExposition([]byte(out)); err != nil {
		t.Fatalf("escaped output must validate: %v", err)
	}
}

func TestSetEnabledGatesAllMutation(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	c := r.Counter("test_total", "h")
	g := r.Gauge("test_gauge", "h")
	h := r.Histogram("test_seconds", "h", DefBuckets())
	SetEnabled(false)
	if Enabled() {
		t.Fatal("Enabled must report false after SetEnabled(false)")
	}
	c.Inc()
	g.Set(9)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("disabled metrics must not record")
	}
	SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("re-enabled counter must record again")
	}
}

func TestNilMetricsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || !fmath.Eq(h.Sum(), 0) {
		t.Fatal("nil metrics must read as zero")
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "h")
	h := r.Histogram("test_seconds", "h", DefBuckets())
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestHandlerDedupesRegistries(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "h").Inc()
	rec := httptest.NewRecorder()
	Handler(r, r, nil, r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, ContentType)
	}
	body := rec.Body.String()
	if strings.Count(body, "# TYPE test_total counter") != 1 {
		t.Fatalf("duplicate registry must render once:\n%s", body)
	}
	if err := ValidateExposition(rec.Body.Bytes()); err != nil {
		t.Fatalf("handler output must validate: %v", err)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1e-9, 10, 4)
	want := []float64{1e-9, 1e-8, 1e-7, 1e-6}
	for i := range want {
		if math.Abs(got[i]-want[i]) > want[i]*1e-12 {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExpBuckets with factor <= 1 must panic")
		}
	}()
	ExpBuckets(1, 1, 3)
}

func TestDefaultRegistryIsStable(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default must return the same registry")
	}
}

// render returns r's exposition as a string.
func render(r *Registry) string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}
