package server

import (
	"context"
	"net/http"
	"time"
)

// ReadinessSetter is the part of a serving tier a graceful drain needs:
// a switch that flips the readiness probe to 503. Both *Server and the
// router front implement it.
type ReadinessSetter interface {
	SetDraining()
}

// DefaultDrainGrace is the default readiness grace window: long enough
// for a prober on a 1s interval to observe the 503 at least once (plus
// scheduling slack) before the listener stops accepting connections.
const DefaultDrainGrace = 3 * time.Second

// DrainOrdered shuts a serving tier down in the order load balancers
// require:
//
//  1. flip /readyz to 503 (SetDraining) while the listener keeps
//     accepting connections, so health probers observe "not ready"
//     instead of "connection refused";
//  2. keep serving for the grace window, giving every prober at least
//     one probe interval to pull the backend out of rotation;
//  3. only then stop accepting new connections and wait up to timeout
//     for in-flight requests to finish (http.Server.Shutdown).
//
// The returned error is Shutdown's: non-nil when in-flight work outran
// the timeout. Flipping readiness strictly before the listener closes
// is the contract the router's health prober depends on — without the
// grace window a SIGTERM looks like a crash, and the prober only
// learns about it from refused connections and failed requests.
func DrainOrdered(rs ReadinessSetter, hs *http.Server, grace, timeout time.Duration) error {
	rs.SetDraining()
	if grace > 0 {
		timer := time.NewTimer(grace)
		defer timer.Stop()
		<-timer.C
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return hs.Shutdown(ctx)
}
