package server

import (
	"context"
	"errors"
	"sync"

	"github.com/why-not-xai/emigre/internal/obs"
)

// ErrSaturated is returned by admission.Acquire when both the
// concurrency slots and the wait queue are full. The HTTP layer maps it
// to 503 + Retry-After.
var ErrSaturated = errors.New("server: saturated, try again later")

// admission is a weighted semaphore with a bounded FIFO wait queue —
// the server's overload policy. Capacity units model concurrent search
// work (a group query costs more than a single-item one); at most
// maxQueue requests may wait for units, and any request beyond that is
// rejected immediately with ErrSaturated instead of piling up.
type admission struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	maxQueue int
	waiters  []*admissionWaiter

	// Optional saturation counters (obs metrics are nil-safe, so a
	// controller built without a registry records nothing). rejections
	// counts Acquire calls shed with ErrSaturated; clamped counts
	// Acquire calls whose requested weight exceeded capacity and was
	// silently clamped down — the signal that capacity is undersized
	// for the workload's widest requests.
	rejections *obs.Counter
	clamped    *obs.Counter
}

type admissionWaiter struct {
	n     int64
	ready chan struct{}
}

// newAdmission builds a controller with the given capacity and wait
// queue bound. maxQueue 0 means no queueing: a request either gets its
// units immediately or is rejected.
func newAdmission(capacity int64, maxQueue int) *admission {
	if capacity < 1 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{capacity: capacity, maxQueue: maxQueue}
}

// clamp bounds a request's weight to [1, capacity] so every request is
// satisfiable. Acquire and Release apply the same clamp, so callers can
// pass the raw weight to both.
func (a *admission) clamp(n int64) int64 {
	if n < 1 {
		n = 1
	}
	if n > a.capacity {
		n = a.capacity
	}
	return n
}

// Acquire obtains n units, waiting in FIFO order behind earlier
// requests. It returns ErrSaturated without blocking when the wait
// queue is full, and ctx.Err() when the context is done before units
// become available.
func (a *admission) Acquire(ctx context.Context, n int64) error {
	if n > a.capacity {
		// Counted here and not in clamp: Release re-clamps the same raw
		// weight, which must not double-count the event.
		a.clamped.Inc()
	}
	n = a.clamp(n)
	a.mu.Lock()
	if a.used+n <= a.capacity && len(a.waiters) == 0 {
		a.used += n
		a.mu.Unlock()
		return nil
	}
	if len(a.waiters) >= a.maxQueue {
		a.mu.Unlock()
		a.rejections.Inc()
		return ErrSaturated
	}
	w := &admissionWaiter{n: n, ready: make(chan struct{})}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		found := false
		for i, x := range a.waiters {
			if x == w {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			// The grant raced the cancellation: units are already ours,
			// hand them back.
			a.used -= n
		}
		a.grantLocked()
		a.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns n units and wakes queued waiters that now fit.
func (a *admission) Release(n int64) {
	n = a.clamp(n)
	a.mu.Lock()
	a.used -= n
	if a.used < 0 {
		a.used = 0 // defensive: a double release must not wedge the gate
	}
	a.grantLocked()
	a.mu.Unlock()
}

// Used returns the units currently admitted.
func (a *admission) Used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// QueueLen returns the number of requests waiting for admission.
func (a *admission) QueueLen() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int64(len(a.waiters))
}

// grantLocked grants units to queued waiters in FIFO order, stopping at
// the first one that does not fit (no overtaking, so wide requests
// cannot starve).
func (a *admission) grantLocked() {
	for len(a.waiters) > 0 {
		w := a.waiters[0]
		if a.used+w.n > a.capacity {
			return
		}
		a.used += w.n
		a.waiters = a.waiters[1:]
		close(w.ready)
	}
}
