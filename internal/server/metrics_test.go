package server

import (
	"io"
	"log"
	"net/http"
	"strings"
	"testing"

	emigre "github.com/why-not-xai/emigre"
	"github.com/why-not-xai/emigre/internal/obs"
)

// TestMetricsEndpointCoversAllLayers drives real traffic through the
// server and asserts GET /metrics serves a valid Prometheus exposition
// covering every instrumented layer: HTTP, PPR engines, the vector
// cache, admission and the CHECK pipeline.
func TestMetricsEndpointCoversAllLayers(t *testing.T) {
	srv, _ := newTestServerCfg(t, func(c *Config) {
		c.Metrics = obs.NewRegistry()
		c.Logger = log.New(io.Discard, "", 0)
	})
	h := srv.Handler()

	if rec := do(t, h, "GET", "/recommend?user=Paul&n=3", nil); rec.Code != http.StatusOK {
		t.Fatalf("recommend status = %d: %s", rec.Code, rec.Body.String())
	}
	body := map[string]any{"user": "Paul", "wni": "Harry Potter", "mode": "remove", "method": "powerset"}
	if rec := do(t, h, "POST", "/explain", body); rec.Code != http.StatusOK {
		t.Fatalf("explain status = %d: %s", rec.Code, rec.Body.String())
	}
	// Second identical recommend: a cache hit for the hit counter.
	do(t, h, "GET", "/recommend?user=Paul&n=3", nil)
	// An unrouted path lands in the "other" bucket.
	do(t, h, "GET", "/definitely-not-a-route", nil)

	rec := do(t, h, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	if err := obs.ValidateExposition(rec.Body.Bytes()); err != nil {
		t.Fatalf("exposition does not validate: %v\n%s", err, rec.Body.String())
	}
	out := rec.Body.String()

	// One family per layer, plus the concrete series traffic must have
	// produced.
	for _, want := range []string{
		// HTTP layer.
		"# TYPE emigre_http_requests_total counter",
		"# TYPE emigre_http_request_duration_seconds histogram",
		`emigre_http_requests_total{code="2xx",route="/explain"} 1`,
		`emigre_http_requests_total{code="2xx",route="/recommend"} 2`,
		`emigre_http_requests_total{code="4xx",route="other"} 1`,
		// PPR engines (process-global registry, rendered by the same
		// endpoint).
		"# TYPE emigre_ppr_runs_total counter",
		"# TYPE emigre_ppr_pushes_total counter",
		"# TYPE emigre_ppr_residual_mass histogram",
		// Vector cache.
		"# TYPE emigre_pprcache_hits_total counter",
		"# TYPE emigre_pprcache_resident_bytes gauge",
		// Admission.
		"# TYPE emigre_admission_inflight_units gauge",
		"# TYPE emigre_admission_clamped_weights_total counter",
		"# TYPE emigre_admission_rejections_total counter",
		// CHECK pipeline.
		"# TYPE emigre_pipeline_checks_committed_total counter",
		"# TYPE emigre_pipeline_workers gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", out)
	}

	// The warm /recommend repeat must have registered as a cache hit.
	if !strings.Contains(out, "emigre_pprcache_hits_total") {
		t.Fatal("cache hit counter absent")
	}
	var hits string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "emigre_pprcache_hits_total ") {
			hits = strings.TrimPrefix(line, "emigre_pprcache_hits_total ")
			break
		}
	}
	if hits == "0" || hits == "" {
		t.Fatalf("cache hits = %q, want > 0 after a warm repeat", hits)
	}
}

// TestMetricsDefaultRegistry pins that a nil Config.Metrics falls back
// to the process-global registry and /metrics does not render it twice
// (duplicate TYPE lines are a format violation the validator rejects).
func TestMetricsDefaultRegistry(t *testing.T) {
	srv, _ := newTestServerCfg(t, func(c *Config) { c.Logger = log.New(io.Discard, "", 0) })
	rec := do(t, srv.Handler(), "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if err := obs.ValidateExposition(rec.Body.Bytes()); err != nil {
		t.Fatalf("exposition with defaulted registry does not validate: %v", err)
	}
	if n := strings.Count(rec.Body.String(), "# TYPE emigre_http_requests_total counter"); n != 1 {
		t.Fatalf("emigre_http_requests_total TYPE rendered %d times, want once", n)
	}
}

// TestServerNewDoesNotMutateCallerRecommender pins the WithCache fix
// at the server boundary: New rebinds the recommender to the server's
// private vector cache via a clone, so the caller's instance must come
// back exactly as it went in — no cache silently attached.
func TestServerNewDoesNotMutateCallerRecommender(t *testing.T) {
	books, err := emigre.NewBooks()
	if err != nil {
		t.Fatal(err)
	}
	rcfg := emigre.DefaultRecommenderConfig(books.Types.Item)
	rcfg.Beta = 1
	r, err := emigre.NewRecommender(books.Graph, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Graph:       books.Graph,
		Recommender: r,
		Options: emigre.Options{
			AllowedEdgeTypes: books.ActionEdgeTypes(),
			AddEdgeType:      books.Types.Rated,
		},
		Logger: log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cache() != nil {
		t.Fatal("New attached a cache to the caller's recommender")
	}
	if srv.r == r {
		t.Fatal("server must hold a clone, not the caller's instance")
	}
	if srv.r.Cache() == nil {
		t.Fatal("server's clone must carry the private cache")
	}
}
