package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"io"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	emigre "github.com/why-not-xai/emigre"
	"github.com/why-not-xai/emigre/internal/pprcache"
)

// RequestIDHeader carries the request correlation ID. Clients may send
// one (the resilient client sends the same ID for every retry of a
// logical call, so capture tools can group attempts); the server
// generates one otherwise, and always echoes it on the response.
const RequestIDHeader = "X-Emigre-Request-Id"

// Per-request tally headers: the PPR-cache hit/miss count ("3h/1m") and
// the parallel-CHECK committed/wasted count ("5c/2w") of the work this
// request triggered — the same numbers the access log carries, exposed
// on the wire so load-test session logs can record them per request.
const (
	CacheTallyHeader = "X-Emigre-Cache"
	ParTallyHeader   = "X-Emigre-Par"
)

// maxRequestIDLen bounds accepted client-supplied IDs; longer ones are
// replaced, not truncated, so an ID is either the client's exact string
// or unambiguously server-minted.
const maxRequestIDLen = 64

// requestInfo accumulates per-request details the logging middleware
// cannot see on its own (the number of CHECK invocations a search ran),
// and hands the middleware-created tally accumulators to handlers so
// they can surface them as response headers before the body is written.
type requestInfo struct {
	tests    int
	hasTests bool
	rid      string
	rs       *pprcache.RequestStats
	prs      *emigre.PipelineRequestStats
}

type requestInfoKey struct{}

// infoFrom returns the request's info record, or nil when the request
// did not pass through the middleware (direct handler tests).
func infoFrom(ctx context.Context) *requestInfo {
	info, _ := ctx.Value(requestInfoKey{}).(*requestInfo)
	return info
}

// recordTests notes the CHECK count for the request log line.
func recordTests(ctx context.Context, tests int) {
	if info := infoFrom(ctx); info != nil {
		info.tests = tests
		info.hasTests = true
	}
}

// newRequestID mints a 16-hex-char random correlation ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a static
		// fallback keeps request serving alive and is visibly synthetic.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID accepts a client-supplied ID only when it is short
// and printable-ASCII without spaces or quotes, so IDs embed safely in
// the access log and response headers.
func sanitizeRequestID(s string) string {
	if s == "" || len(s) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c > '~' || c == '"' {
			return ""
		}
	}
	return s
}

// setTallyHeaders exposes the request's cache and pipeline tallies as
// response headers. Handlers call it after their search work completes
// and before the first body write.
func setTallyHeaders(w http.ResponseWriter, ctx context.Context) {
	info := infoFrom(ctx)
	if info == nil {
		return
	}
	if info.rs != nil {
		w.Header().Set(CacheTallyHeader,
			strconv.FormatInt(info.rs.Hits(), 10)+"h/"+strconv.FormatInt(info.rs.Misses(), 10)+"m")
	}
	if info.prs != nil {
		w.Header().Set(ParTallyHeader,
			strconv.FormatInt(info.prs.Committed(), 10)+"c/"+strconv.FormatInt(info.prs.Wasted(), 10)+"w")
	}
}

// statusWriter captures the response status for logging and panic
// recovery, passing interface upgrades (http.Flusher, io.ReaderFrom)
// through to the wrapped writer so streaming handlers and sendfile
// still work behind the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status = status
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the wrapped writer to http.ResponseController, the
// stdlib's interface-upgrade convention for middleware writers.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Flush implements http.Flusher when the wrapped writer does. Flushing
// an unwritten response commits an implicit 200, exactly like Write.
func (w *statusWriter) Flush() {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ReadFrom preserves the wrapped writer's io.ReaderFrom fast path
// (sendfile on *http.response); io.Copy degrades gracefully when the
// wrapped writer does not implement it.
func (w *statusWriter) ReadFrom(src io.Reader) (int64, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	return io.Copy(w.ResponseWriter, src)
}

// withMiddleware wraps the route tree with panic recovery and
// structured request logging: one line per request with method, path,
// status, duration, (for explanation requests) the CHECK count, (when
// the vector cache is enabled) the request's cache hit/miss tally and
// (when parallel CHECK is enabled) the request's committed/wasted
// pipeline check tally.
func (s *Server) withMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		info := &requestInfo{}
		ctx := context.WithValue(r.Context(), requestInfoKey{}, info)
		var rs *pprcache.RequestStats
		if s.cache != nil {
			rs = &pprcache.RequestStats{}
			ctx = pprcache.WithRequestStats(ctx, rs)
		}
		prs := &emigre.PipelineRequestStats{}
		ctx = emigre.WithPipelineRequestStats(ctx, prs)
		info.rs, info.prs = rs, prs
		info.rid = sanitizeRequestID(r.Header.Get(RequestIDHeader))
		if info.rid == "" {
			info.rid = newRequestID()
		}
		w.Header().Set(RequestIDHeader, info.rid)
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.log.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				if !sw.wrote {
					s.writeErr(sw, http.StatusInternalServerError, errors.New("internal server error"))
				}
				// When the handler had already written a status before
				// panicking, that status is what the client observed —
				// the request log must not claim a 500 that never
				// reached the wire. The panic line above carries the
				// fault; sw.status stays the on-wire truth.
			}
			elapsed := time.Since(start)
			s.routeFor(r.URL.Path).observe(sw.status, elapsed)
			line := ""
			if info.hasTests {
				line = " tests=" + strconv.Itoa(info.tests)
			}
			if rs != nil && (rs.Hits() > 0 || rs.Misses() > 0) {
				line += " cache=" + strconv.FormatInt(rs.Hits(), 10) + "h/" + strconv.FormatInt(rs.Misses(), 10) + "m"
			}
			if c, wd := prs.Committed(), prs.Wasted(); c > 0 || wd > 0 {
				line += " par=" + strconv.FormatInt(c, 10) + "c/" + strconv.FormatInt(wd, 10) + "w"
			}
			s.log.Printf("%s %s %d %s rid=%s%s",
				r.Method, r.URL.Path, sw.status, elapsed.Round(time.Microsecond), info.rid, line)
		}()
		next.ServeHTTP(sw, r)
	})
}
