// Package server exposes the EMiGRe explainer as a small JSON-over-HTTP
// service — the deployment shape a platform team would actually run the
// paper's system in. Endpoints:
//
//	GET  /healthz    liveness probe
//	GET  /readyz     readiness probe (503 while draining for shutdown)
//	GET  /stats      graph shape (the Table-4 rows) as JSON
//	GET  /recommend  ?user=<label|id>&n=10 — the user's top-N list
//	POST /explain    one Why-Not question (single item or group)
//	POST /diagnose   §6.4 meta-explanation for an unanswerable question
//
// Nodes are addressed by label or numeric ID, exactly like the CLI.
//
// Explanation requests are expensive (each one runs full PPR passes),
// so the server applies admission control instead of a global lock: a
// weighted semaphore admits up to MaxConcurrent units of search work,
// up to QueueDepth further requests wait in FIFO order, and anything
// beyond that is rejected immediately with 503 + Retry-After. Every
// explanation also runs under a deadline (ExplainTimeout, optionally
// tightened per request with "timeout_ms"); a search that overruns it
// is canceled mid-PPR and answered with 504. Read endpoints serve
// concurrently and are not gated.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	emigre "github.com/why-not-xai/emigre"
	"github.com/why-not-xai/emigre/internal/admit"
	"github.com/why-not-xai/emigre/internal/cli"
	"github.com/why-not-xai/emigre/internal/fault"
	"github.com/why-not-xai/emigre/internal/obs"
)

// ErrSaturated re-exports the admission controller's saturation
// sentinel under its historical home: the gate moved to internal/admit
// when the router grew its own front door, but server-side callers
// still match on server.ErrSaturated.
var ErrSaturated = admit.ErrSaturated

// Tuning defaults used when the corresponding Config field is zero.
const (
	// DefaultExplainTimeout bounds one explanation request end to end,
	// queue wait included.
	DefaultExplainTimeout = 30 * time.Second
	// DefaultMaxConcurrent is the default admission capacity in units
	// of concurrent search work.
	DefaultMaxConcurrent = 2
	// DefaultQueueDepth is the default number of requests allowed to
	// wait for admission before the server starts shedding load.
	DefaultQueueDepth = 8
)

// statusClientClosedRequest is the nginx convention for "the client
// went away before the response was ready"; there is no standard code.
const statusClientClosedRequest = 499

// Config wires a server to its graph and engine settings.
type Config struct {
	Graph *emigre.Graph
	// Recommender must have been built over Graph.
	Recommender *emigre.Recommender
	// Explainer options (T_e, budgets, ...). Mode/Method fields are
	// ignored: every request names its own.
	Options emigre.Options

	// ExplainTimeout is the per-request deadline for /explain and
	// /diagnose, covering queue wait and search. 0 means
	// DefaultExplainTimeout; negative disables the deadline.
	ExplainTimeout time.Duration
	// MaxConcurrent is the admission capacity: how many units of search
	// work may run at once (a single-item question costs 1, group and
	// category questions cost more). 0 means DefaultMaxConcurrent.
	MaxConcurrent int
	// QueueDepth is how many requests may wait for admission before new
	// ones are rejected with 503. 0 means DefaultQueueDepth; negative
	// disables queueing entirely.
	QueueDepth int
	// CacheEntries bounds the shared PPR-vector cache by entry count.
	// 0 means the pprcache default (4096); negative disables caching.
	CacheEntries int
	// CacheBytes bounds the same cache by resident payload bytes.
	// 0 means the pprcache default (256 MiB); negative disables caching.
	CacheBytes int64
	// ExplainWorkers is the per-request CHECK parallelism
	// (emigre.Options.Parallelism): each admitted explanation verifies
	// its candidate sets on that many speculative workers with ordered
	// commit, so responses stay byte-identical to a sequential search.
	// 0 or 1 keeps searches sequential. Note the multiplicative load:
	// up to MaxConcurrent × ExplainWorkers PPR runs can be in flight.
	ExplainWorkers int
	// DisableDegraded turns off the degradation ladder: a deadline-
	// squeezed explanation then fails with 504 instead of stepping down
	// through lean search, cache-only search and partial answers (see
	// degrade.go). The ladder only engages for requests that carry a
	// deadline, and a response produced within the full-fidelity time
	// slice is byte-identical either way.
	DisableDegraded bool
	// Logger receives the per-request log lines and server warnings.
	// Nil means log.Default().
	Logger *log.Logger
	// Metrics is the registry GET /metrics serves and the server's own
	// instrumentation (HTTP, cache, admission, pipeline) registers
	// into. Nil means obs.Default(). The endpoint additionally renders
	// obs.Default() so package-deep metrics (PPR engines) are always
	// covered.
	Metrics *obs.Registry
}

// Server handles the HTTP API. Create with New, mount via Handler.
type Server struct {
	g  *emigre.Graph
	r  *emigre.Recommender
	ex *emigre.Explainer
	// exLean is the degradation ladder's cheaper explainer: CHECK budget
	// divided by leanBudgetDivisor, sequential evaluation, same shared
	// cache. Nil when the ladder is disabled.
	exLean  *emigre.Explainer
	mux     *http.ServeMux
	handler http.Handler
	// adm gates the expensive counterfactual searches.
	adm      *admit.Controller
	capacity int64
	timeout  time.Duration
	log      *log.Logger
	draining atomic.Bool
	// cache is the shared PPR-vector cache behind /recommend's forward
	// vectors and /explain's searches; nil when disabled by Config.
	cache *emigre.PPRCache
	// metrics is the registry everything below registers into; routes
	// maps known paths to their pre-created HTTP series so the
	// middleware's hot path never touches the registry lock.
	metrics *obs.Registry
	routes  map[string]*routeMetrics
	// ladderEngaged counts full-fidelity attempts squeezed out by their
	// time slice; degraded counts responses served per ladder level.
	ladderEngaged *obs.Counter
	degraded      map[degradeLevel]*obs.Counter
}

// New builds a server and eagerly warms the recommender's flat
// snapshot so later reads are safe to serve concurrently.
func New(cfg Config) (*Server, error) {
	if cfg.Graph == nil || cfg.Recommender == nil {
		return nil, errors.New("server: graph and recommender are required")
	}
	timeout := cfg.ExplainTimeout
	switch {
	case timeout == 0:
		timeout = DefaultExplainTimeout
	case timeout < 0:
		timeout = 0 // no deadline
	}
	capacity := cfg.MaxConcurrent
	if capacity <= 0 {
		capacity = DefaultMaxConcurrent
	}
	queue := cfg.QueueDepth
	switch {
	case queue == 0:
		queue = DefaultQueueDepth
	case queue < 0:
		queue = 0 // no queueing
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.Default()
	}
	// The vector cache is shared by the recommender (forward vectors
	// behind /recommend) and the explainer (reverse columns and CHECK
	// scores behind /explain). The recommender is rebound via the
	// WithCache clone constructor so the caller's instance is not
	// mutated (and no struct copy here silently aliases state the
	// Recommender may grow later).
	var cache *emigre.PPRCache
	r := cfg.Recommender
	if cfg.CacheEntries >= 0 && cfg.CacheBytes >= 0 {
		cache = emigre.NewPPRCache(emigre.PPRCacheConfig{
			MaxEntries: cfg.CacheEntries,
			MaxBytes:   cfg.CacheBytes,
		})
		r = r.WithCache(cache)
		cfg.Options.Cache = cache
	} else {
		cfg.Options.DisableCache = true
	}
	if cfg.ExplainWorkers > 0 {
		cfg.Options.Parallelism = cfg.ExplainWorkers
	}
	metrics := cfg.Metrics
	if metrics == nil {
		metrics = obs.Default()
	}
	s := &Server{
		g:        cfg.Graph,
		r:        r,
		ex:       emigre.NewExplainer(cfg.Graph, r, cfg.Options),
		adm:      admit.New(int64(capacity), queue),
		capacity: int64(capacity),
		timeout:  timeout,
		log:      logger,
		cache:    cache,
		metrics:  metrics,
	}
	if !cfg.DisableDegraded {
		// The lean explainer shares the graph, recommender and cache with
		// the full one; only the search budget and parallelism shrink, so
		// a lean hit is still a verified explanation.
		leanOpts := s.ex.Options()
		leanOpts.MaxTests = max(8, leanOpts.MaxTests/leanBudgetDivisor)
		leanOpts.Parallelism = 1
		s.exLean = emigre.NewExplainer(cfg.Graph, r, leanOpts)
	}
	s.registerMetrics()
	s.r.Flat() // warm the shared snapshot before concurrency starts
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.Handle("GET /metrics", obs.Handler(s.metrics, obs.Default()))
	s.mux.HandleFunc("GET /recommend", s.handleRecommend)
	s.mux.HandleFunc("POST /explain", s.handleExplain)
	s.mux.HandleFunc("POST /diagnose", s.handleDiagnose)
	s.handler = s.withMiddleware(s.mux)
	return s, nil
}

// routeMetrics is one route's pre-created HTTP series: a latency
// histogram and one counter per status class.
type routeMetrics struct {
	duration *obs.Histogram
	// codes is indexed by status/100 - 1 ("1xx" .. "5xx").
	codes [5]*obs.Counter
}

// observe records one served request.
func (m *routeMetrics) observe(status int, elapsed time.Duration) {
	if m == nil {
		return
	}
	m.duration.Observe(elapsed.Seconds())
	class := status/100 - 1
	if class < 0 || class >= len(m.codes) {
		class = 4 // defensive: treat out-of-range statuses as 5xx
	}
	m.codes[class].Inc()
}

// metricRoutes are the route label values of the HTTP series; requests
// outside the route tree are tallied under "other" so unmatched paths
// cannot mint unbounded label values.
var metricRoutes = []string{
	"/healthz", "/readyz", "/stats", "/metrics",
	"/recommend", "/explain", "/diagnose", "other",
}

// registerMetrics creates the server-level series on s.metrics: the
// per-route HTTP layer, and callback exports over the tallies the
// cache, the admission controller and the CHECK pipeline already keep.
// Counters and histograms are get-or-create, so servers sharing one
// registry (tests, obs.Default) share series; callbacks re-register by
// replacement, so the newest server owns them.
func (s *Server) registerMetrics() {
	reg := s.metrics
	s.routes = make(map[string]*routeMetrics, len(metricRoutes))
	classes := [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}
	for _, route := range metricRoutes {
		m := &routeMetrics{
			duration: reg.Histogram("emigre_http_request_duration_seconds",
				"Wall time to serve a request by route.", obs.DefBuckets(),
				obs.L("route", route)),
		}
		for i, class := range classes {
			m.codes[i] = reg.Counter("emigre_http_requests_total",
				"Requests served by route and status class.",
				obs.L("route", route), obs.L("code", class))
		}
		s.routes[route] = m
	}

	if s.cache != nil {
		s.cache.RegisterMetrics(reg)
	}

	s.adm.Rejections = reg.Counter("emigre_admission_rejections_total",
		"Requests shed with 503: queue full on arrival.")
	s.adm.Clamped = reg.Counter("emigre_admission_clamped_weights_total",
		"Admission weights clamped down to capacity (requests wider than the whole gate).")
	reg.GaugeFunc("emigre_admission_inflight_units",
		"Units of search work currently admitted.", s.adm.Used)
	reg.GaugeFunc("emigre_admission_queue_depth",
		"Requests waiting for admission.", s.adm.QueueLen)
	reg.GaugeFunc("emigre_admission_capacity_units",
		"Configured admission capacity.", func() int64 { return s.capacity })

	reg.CounterFunc("emigre_pipeline_parallel_runs_total",
		"Searches evaluated by the parallel CHECK pipeline.",
		func() int64 { return s.ex.PipelineStats().ParallelRuns })
	reg.CounterFunc("emigre_pipeline_checks_committed_total",
		"CHECK verdicts applied in stream order.",
		func() int64 { return s.ex.PipelineStats().ChecksCommitted })
	reg.CounterFunc("emigre_pipeline_speculative_waste_total",
		"Completed checks discarded by ordered commit.",
		func() int64 { return s.ex.PipelineStats().SpeculativeWaste })
	reg.GaugeFunc("emigre_pipeline_inflight_checks",
		"Speculative checks running right now.",
		func() int64 { return s.ex.PipelineStats().InflightChecks })
	reg.GaugeFunc("emigre_pipeline_workers",
		"Configured per-request CHECK parallelism.",
		func() int64 { return int64(s.ex.PipelineStats().Workers) })

	s.ladderEngaged = reg.Counter("emigre_ladder_engaged_total",
		"Explanations whose full-fidelity attempt was squeezed out by its time slice.")
	s.degraded = make(map[degradeLevel]*obs.Counter, len(degradeLevels))
	for _, level := range degradeLevels {
		s.degraded[level] = reg.Counter("emigre_degraded_responses_total",
			"Responses served below full fidelity, by ladder level.",
			obs.L("level", level.String()))
	}
	fault.RegisterMetrics(reg)
}

// routeFor maps a request path to its metrics entry ("other" for paths
// outside the route tree).
func (s *Server) routeFor(path string) *routeMetrics {
	if m, ok := s.routes[path]; ok {
		return m
	}
	return s.routes["other"]
}

// Handler returns the HTTP handler tree (middleware included).
func (s *Server) Handler() http.Handler { return s.handler }

// SetDraining marks the server as shutting down: /readyz starts
// answering 503 so load balancers stop routing new traffic, while
// in-flight requests keep running until the http.Server drains them.
func (s *Server) SetDraining() { s.draining.Store(true) }

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := writeSite.Hit(nil); err != nil {
		// Simulated response-write failure. Rendered by hand — not
		// through this function — so an armed site cannot recurse.
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
		return
	}
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already on the wire; all we can do is make
		// the truncated response observable.
		s.log.Printf("writeJSON: encoding %T response: %v", v, err)
	}
}

func (s *Server) writeErr(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorBody{Error: err.Error()})
}

// statusFor maps library errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, emigre.ErrNotWhyNotItem),
		errors.Is(err, emigre.ErrAlreadyTop),
		errors.Is(err, emigre.ErrEmptyGroup):
		return http.StatusUnprocessableEntity
	case errors.Is(err, emigre.ErrNoExplanation):
		return http.StatusNotFound
	// Deadline first: a deadline-canceled search wraps both the
	// sentinel and context.DeadlineExceeded.
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, emigre.ErrCanceled), errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	// A failpoint marking a core component unhealthy makes the probe
	// fail, so orchestrators stop routing before request errors surface.
	for _, c := range []struct {
		site *fault.Site
		name string
	}{{healthCacheSite, "cache"}, {healthGraphSite, "graph"}} {
		if c.site.Armed() {
			s.writeJSON(w, http.StatusServiceUnavailable,
				map[string]string{"status": "unhealthy", "component": c.name})
			return
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

type statsRow struct {
	NodeType  string  `json:"node_type"`
	Nodes     int     `json:"nodes"`
	AvgDegree float64 `json:"avg_degree"`
	DegreeStd float64 `json:"degree_std"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	var rows []statsRow
	for _, r := range emigre.DegreeStats(s.g) {
		rows = append(rows, statsRow{
			NodeType:  r.TypeName,
			Nodes:     r.NumNodes,
			AvgDegree: r.AvgDegree,
			DegreeStd: r.DegreeStd,
		})
	}
	body := map[string]any{
		"nodes": s.g.NumNodes(),
		"edges": s.g.NumEdges(),
		"types": rows,
	}
	if s.cache != nil {
		body["cache"] = s.cache.Stats()
	}
	body["explain_pool"] = s.ex.PipelineStats()
	s.writeJSON(w, http.StatusOK, body)
}

type scoredItem struct {
	Node  emigre.NodeID `json:"node"`
	Label string        `json:"label,omitempty"`
	Score float64       `json:"score"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	user, err := cli.ResolveNode(s.g, r.URL.Query().Get("user"))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	n := 10
	if raw := r.URL.Query().Get("n"); raw != "" {
		n, err = strconv.Atoi(raw)
		if err != nil || n < 1 {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad n %q", raw))
			return
		}
	}
	top, err := s.r.TopNContext(r.Context(), user, n)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	items := make([]scoredItem, len(top))
	for i, sc := range top {
		items[i] = scoredItem{Node: sc.Node, Label: s.g.Label(sc.Node), Score: sc.Score}
	}
	setTallyHeaders(w, r.Context())
	s.writeJSON(w, http.StatusOK, map[string]any{
		"user":  user,
		"items": items,
	})
}

// explainRequest is the /explain body. WNI or Items (group form) must
// be set; Category asks the category granularity. TimeoutMS optionally
// tightens (never widens) the server's ExplainTimeout for this request.
type explainRequest struct {
	User      string   `json:"user"`
	WNI       string   `json:"wni,omitempty"`
	Items     []string `json:"items,omitempty"`
	Category  string   `json:"category,omitempty"`
	Mode      string   `json:"mode"`
	Method    string   `json:"method"`
	TimeoutMS int      `json:"timeout_ms,omitempty"`
}

type edgeBody struct {
	From      emigre.NodeID `json:"from"`
	To        emigre.NodeID `json:"to"`
	ToLabel   string        `json:"to_label,omitempty"`
	EdgeType  string        `json:"edge_type"`
	Weight    float64       `json:"weight"`
	Operation string        `json:"operation"`
}

type explainResponse struct {
	Mode        string        `json:"mode"`
	Method      string        `json:"method"`
	Edges       []edgeBody    `json:"edges"`
	Description string        `json:"description"`
	OldTop      emigre.NodeID `json:"old_top"`
	NewTop      emigre.NodeID `json:"new_top"`
	Verified    bool          `json:"verified"`
	Checks      int           `json:"checks"`
	DurationUS  int64         `json:"duration_us"`
	// Degraded marks a response served below full fidelity by the
	// degradation ladder; DegradedLevel names the rung ("lean",
	// "cache_only", "partial") and Partial flags an unverified
	// best-effort answer from an interrupted search.
	Degraded      bool   `json:"degraded"`
	DegradedLevel string `json:"degraded_level,omitempty"`
	Partial       bool   `json:"partial,omitempty"`
}

// searchContext applies the effective deadline for one explanation
// request: the server's ExplainTimeout, tightened by the request's
// timeout_ms when that is stricter.
func (s *Server) searchContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.timeout
	if timeoutMS > 0 {
		if req := time.Duration(timeoutMS) * time.Millisecond; d <= 0 || req < d {
			d = req
		}
	}
	if d <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d)
}

// saturatedBody is the 503 payload for shed requests: the retry hint
// in the header is mirrored in the body so JSON-only clients see it.
type saturatedBody struct {
	Error             string `json:"error"`
	RetryAfterSeconds int    `json:"retry_after_seconds"`
}

// admit acquires cost units of search capacity, writing the 503 or
// timeout response itself when admission fails. On success the caller
// must invoke the returned release func when the work is done; it
// returns the units and feeds the observed hold time into the
// controller's load estimate (the basis of Retry-After).
func (s *Server) admit(ctx context.Context, w http.ResponseWriter, cost int64) (func(), bool) {
	err := s.adm.Acquire(ctx, cost)
	if err == nil {
		acquired := time.Now()
		return func() { s.adm.ReleaseObserved(cost, time.Since(acquired)) }, true
	}
	if errors.Is(err, ErrSaturated) {
		secs := s.adm.RetryAfterSeconds()
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		s.writeJSON(w, http.StatusServiceUnavailable, saturatedBody{
			Error:             "server saturated: too many concurrent explanations; retry later",
			RetryAfterSeconds: secs,
		})
		return nil, false
	}
	// Context expired while queued.
	s.writeErr(w, statusFor(err), fmt.Errorf("timed out waiting for an explanation slot: %w", err))
	return nil, false
}

// explainCost estimates a request's admission weight: group and
// category questions run one search attempt per member, so they occupy
// more of the capacity (clamped to it).
func (s *Server) explainCost(req explainRequest) int64 {
	switch {
	case req.Category != "":
		return 2
	case len(req.Items) > 0:
		return int64(len(req.Items))
	default:
		return 1
	}
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	// Simulated server-side I/O failure reading the request: a 500, so
	// resilient clients know the request itself was fine and retry.
	if err := decodeSite.Hit(r.Context()); err != nil {
		s.writeErr(w, http.StatusInternalServerError, fmt.Errorf("reading request: %w", err))
		return
	}
	var req explainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	user, err := cli.ResolveNode(s.g, req.User)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	mode, err := cli.ParseMode(orDefault(req.Mode, "remove"))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	method, err := cli.ParseMethod(orDefault(req.Method, "powerset"))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}

	// Resolve the question's nodes up front so node errors stay 400s and
	// the ladder never retries a malformed question.
	var run explainFn
	switch {
	case req.Category != "":
		cat, rerr := cli.ResolveNode(s.g, req.Category)
		if rerr != nil {
			s.writeErr(w, http.StatusBadRequest, rerr)
			return
		}
		run = func(ctx context.Context, ex *emigre.Explainer) (*emigre.Explanation, error) {
			return ex.ExplainCategoryContext(ctx, user, cat, 0, mode, method)
		}
	case len(req.Items) > 0:
		var items []emigre.NodeID
		for _, raw := range req.Items {
			id, rerr := cli.ResolveNode(s.g, raw)
			if rerr != nil {
				s.writeErr(w, http.StatusBadRequest, rerr)
				return
			}
			items = append(items, id)
		}
		run = func(ctx context.Context, ex *emigre.Explainer) (*emigre.Explanation, error) {
			return ex.ExplainGroupContext(ctx, emigre.GroupQuery{User: user, Items: items}, mode, method)
		}
	case req.WNI != "":
		wni, rerr := cli.ResolveNode(s.g, req.WNI)
		if rerr != nil {
			s.writeErr(w, http.StatusBadRequest, rerr)
			return
		}
		run = func(ctx context.Context, ex *emigre.Explainer) (*emigre.Explanation, error) {
			return ex.ExplainWithContext(ctx, emigre.Query{User: user, WNI: wni}, mode, method)
		}
	default:
		s.writeErr(w, http.StatusBadRequest, errors.New("one of wni, items or category is required"))
		return
	}

	ctx, cancel := s.searchContext(r, req.TimeoutMS)
	defer cancel()
	release, ok := s.admit(ctx, w, s.explainCost(req))
	if !ok {
		return
	}
	defer release()

	expl, level, err := s.runExplain(ctx, run)
	if err != nil {
		status := statusFor(err)
		if errors.Is(err, cli.ErrNoSuchNode) {
			status = http.StatusBadRequest
		}
		// Surface the partial work tally of a canceled search in the
		// request log (observability for 504s).
		var ce *emigre.CanceledError
		if errors.As(err, &ce) {
			recordTests(r.Context(), ce.Stats.Tests)
		}
		s.writeErr(w, status, err)
		return
	}
	recordTests(r.Context(), expl.Stats.Tests)
	setTallyHeaders(w, r.Context())

	desc := expl.Describe(s.g)
	if expl.Partial {
		desc += " (unverified partial explanation: the search was interrupted before CHECK confirmed it)"
	}
	resp := explainResponse{
		Mode:        expl.Mode.String(),
		Method:      expl.Method.String(),
		Description: desc,
		OldTop:      expl.OldTop,
		NewTop:      expl.NewTop,
		Verified:    expl.Verified,
		Checks:      expl.Stats.Tests,
		DurationUS:  expl.Stats.Duration.Microseconds(),
	}
	if level > degradeNone {
		resp.Degraded = true
		resp.DegradedLevel = level.String()
		resp.Partial = expl.Partial
		w.Header().Set("X-Emigre-Degraded", level.String())
		s.degraded[level].Inc()
	}
	appendEdges := func(edges []emigre.Edge, op string) {
		for _, e := range edges {
			resp.Edges = append(resp.Edges, edgeBody{
				From:      e.From,
				To:        e.To,
				ToLabel:   s.g.Label(e.To),
				EdgeType:  s.g.Types().EdgeTypeName(e.Type),
				Weight:    e.Weight,
				Operation: op,
			})
		}
	}
	appendEdges(expl.Removals, "remove")
	appendEdges(expl.Additions, "add")
	appendEdges(expl.Reweights, "reweight")
	s.writeJSON(w, http.StatusOK, resp)
}

type diagnoseRequest struct {
	User      string `json:"user"`
	WNI       string `json:"wni"`
	Mode      string `json:"mode"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	var req diagnoseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	user, err := cli.ResolveNode(s.g, req.User)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	wni, err := cli.ResolveNode(s.g, req.WNI)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	mode, err := cli.ParseMode(orDefault(req.Mode, "remove"))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.searchContext(r, req.TimeoutMS)
	defer cancel()
	// A diagnosis probes every mode with Exhaustive, comparable to a
	// small group query.
	const diagnoseCost = 2
	release, ok := s.admit(ctx, w, diagnoseCost)
	if !ok {
		return
	}
	defer release()
	d, err := s.ex.DiagnoseContext(ctx, emigre.Query{User: user, WNI: wni}, mode)
	if err != nil {
		var ce *emigre.CanceledError
		if errors.As(err, &ce) {
			recordTests(r.Context(), ce.Stats.Tests)
		}
		s.writeErr(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"kind":         d.Kind.String(),
		"detail":       d.Detail,
		"actions":      d.Actions,
		"working_mode": d.WorkingMode.String(),
	})
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
