// Package server exposes the EMiGRe explainer as a small JSON-over-HTTP
// service — the deployment shape a platform team would actually run the
// paper's system in. Endpoints:
//
//	GET  /healthz    liveness probe
//	GET  /stats      graph shape (the Table-4 rows) as JSON
//	GET  /recommend  ?user=<label|id>&n=10 — the user's top-N list
//	POST /explain    one Why-Not question (single item or group)
//	POST /diagnose   §6.4 meta-explanation for an unanswerable question
//
// Nodes are addressed by label or numeric ID, exactly like the CLI.
// Explanation requests are serialized through a mutex (each one runs
// full PPR passes); read endpoints serve concurrently.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	emigre "github.com/why-not-xai/emigre"
	"github.com/why-not-xai/emigre/internal/cli"
)

// Config wires a server to its graph and engine settings.
type Config struct {
	Graph *emigre.Graph
	// Recommender must have been built over Graph.
	Recommender *emigre.Recommender
	// Explainer options (T_e, budgets, ...). Mode/Method fields are
	// ignored: every request names its own.
	Options emigre.Options
}

// Server handles the HTTP API. Create with New, mount via Handler.
type Server struct {
	g   *emigre.Graph
	r   *emigre.Recommender
	ex  *emigre.Explainer
	mux *http.ServeMux
	// explainMu serializes the expensive counterfactual searches.
	explainMu sync.Mutex
}

// New builds a server and eagerly warms the recommender's flat
// snapshot so later reads are safe to serve concurrently.
func New(cfg Config) (*Server, error) {
	if cfg.Graph == nil || cfg.Recommender == nil {
		return nil, errors.New("server: graph and recommender are required")
	}
	s := &Server{
		g:  cfg.Graph,
		r:  cfg.Recommender,
		ex: emigre.NewExplainer(cfg.Graph, cfg.Recommender, cfg.Options),
	}
	s.r.Flat() // warm the shared snapshot before concurrency starts
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /recommend", s.handleRecommend)
	s.mux.HandleFunc("POST /explain", s.handleExplain)
	s.mux.HandleFunc("POST /diagnose", s.handleDiagnose)
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) writeErr(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorBody{Error: err.Error()})
}

// statusFor maps library errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, emigre.ErrNotWhyNotItem),
		errors.Is(err, emigre.ErrAlreadyTop),
		errors.Is(err, emigre.ErrEmptyGroup):
		return http.StatusUnprocessableEntity
	case errors.Is(err, emigre.ErrNoExplanation):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type statsRow struct {
	NodeType  string  `json:"node_type"`
	Nodes     int     `json:"nodes"`
	AvgDegree float64 `json:"avg_degree"`
	DegreeStd float64 `json:"degree_std"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	var rows []statsRow
	for _, r := range emigre.DegreeStats(s.g) {
		rows = append(rows, statsRow{
			NodeType:  r.TypeName,
			Nodes:     r.NumNodes,
			AvgDegree: r.AvgDegree,
			DegreeStd: r.DegreeStd,
		})
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"nodes": s.g.NumNodes(),
		"edges": s.g.NumEdges(),
		"types": rows,
	})
}

type scoredItem struct {
	Node  emigre.NodeID `json:"node"`
	Label string        `json:"label,omitempty"`
	Score float64       `json:"score"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	user, err := cli.ResolveNode(s.g, r.URL.Query().Get("user"))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	n := 10
	if raw := r.URL.Query().Get("n"); raw != "" {
		if _, err := fmt.Sscanf(raw, "%d", &n); err != nil || n < 1 {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad n %q", raw))
			return
		}
	}
	top, err := s.r.TopN(user, n)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	items := make([]scoredItem, len(top))
	for i, sc := range top {
		items[i] = scoredItem{Node: sc.Node, Label: s.g.Label(sc.Node), Score: sc.Score}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"user":  user,
		"items": items,
	})
}

// explainRequest is the /explain body. WNI or Items (group form) must
// be set; Category asks the category granularity.
type explainRequest struct {
	User     string   `json:"user"`
	WNI      string   `json:"wni,omitempty"`
	Items    []string `json:"items,omitempty"`
	Category string   `json:"category,omitempty"`
	Mode     string   `json:"mode"`
	Method   string   `json:"method"`
}

type edgeBody struct {
	From      emigre.NodeID `json:"from"`
	To        emigre.NodeID `json:"to"`
	ToLabel   string        `json:"to_label,omitempty"`
	EdgeType  string        `json:"edge_type"`
	Weight    float64       `json:"weight"`
	Operation string        `json:"operation"`
}

type explainResponse struct {
	Mode        string        `json:"mode"`
	Method      string        `json:"method"`
	Edges       []edgeBody    `json:"edges"`
	Description string        `json:"description"`
	OldTop      emigre.NodeID `json:"old_top"`
	NewTop      emigre.NodeID `json:"new_top"`
	Verified    bool          `json:"verified"`
	Checks      int           `json:"checks"`
	DurationUS  int64         `json:"duration_us"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	user, err := cli.ResolveNode(s.g, req.User)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	mode, err := cli.ParseMode(orDefault(req.Mode, "remove"))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	method, err := cli.ParseMethod(orDefault(req.Method, "powerset"))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}

	var expl *emigre.Explanation
	s.explainMu.Lock()
	switch {
	case req.Category != "":
		var cat emigre.NodeID
		cat, err = cli.ResolveNode(s.g, req.Category)
		if err == nil {
			expl, err = s.ex.ExplainCategory(user, cat, 0, mode, method)
		}
	case len(req.Items) > 0:
		var items []emigre.NodeID
		for _, raw := range req.Items {
			var id emigre.NodeID
			id, err = cli.ResolveNode(s.g, raw)
			if err != nil {
				break
			}
			items = append(items, id)
		}
		if err == nil {
			expl, err = s.ex.ExplainGroup(emigre.GroupQuery{User: user, Items: items}, mode, method)
		}
	case req.WNI != "":
		var wni emigre.NodeID
		wni, err = cli.ResolveNode(s.g, req.WNI)
		if err == nil {
			expl, err = s.ex.ExplainWith(emigre.Query{User: user, WNI: wni}, mode, method)
		}
	default:
		err = errors.New("one of wni, items or category is required")
		s.explainMu.Unlock()
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.explainMu.Unlock()
	if err != nil {
		status := statusFor(err)
		if errors.Is(err, cli.ErrNoSuchNode) {
			status = http.StatusBadRequest
		}
		s.writeErr(w, status, err)
		return
	}

	resp := explainResponse{
		Mode:        expl.Mode.String(),
		Method:      expl.Method.String(),
		Description: expl.Describe(s.g),
		OldTop:      expl.OldTop,
		NewTop:      expl.NewTop,
		Verified:    expl.Verified,
		Checks:      expl.Stats.Tests,
		DurationUS:  expl.Stats.Duration.Microseconds(),
	}
	appendEdges := func(edges []emigre.Edge, op string) {
		for _, e := range edges {
			resp.Edges = append(resp.Edges, edgeBody{
				From:      e.From,
				To:        e.To,
				ToLabel:   s.g.Label(e.To),
				EdgeType:  s.g.Types().EdgeTypeName(e.Type),
				Weight:    e.Weight,
				Operation: op,
			})
		}
	}
	appendEdges(expl.Removals, "remove")
	appendEdges(expl.Additions, "add")
	appendEdges(expl.Reweights, "reweight")
	s.writeJSON(w, http.StatusOK, resp)
}

type diagnoseRequest struct {
	User string `json:"user"`
	WNI  string `json:"wni"`
	Mode string `json:"mode"`
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	var req diagnoseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	user, err := cli.ResolveNode(s.g, req.User)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	wni, err := cli.ResolveNode(s.g, req.WNI)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	mode, err := cli.ParseMode(orDefault(req.Mode, "remove"))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.explainMu.Lock()
	d, err := s.ex.Diagnose(emigre.Query{User: user, WNI: wni}, mode)
	s.explainMu.Unlock()
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"kind":         d.Kind.String(),
		"detail":       d.Detail,
		"actions":      d.Actions,
		"working_mode": d.WorkingMode.String(),
	})
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
