package server

import (
	"context"
	"errors"
	"time"

	emigre "github.com/why-not-xai/emigre"
	"github.com/why-not-xai/emigre/internal/fault"
	"github.com/why-not-xai/emigre/internal/pprcache"
)

// Failpoint sites on the server's own seams. decode and write simulate
// handler I/O failures; the health markers are never Hit — /readyz
// consults their armed state so an orchestrator can be told "stop
// routing here" before errors surface (arming server.health.cache
// models a cache declared unhealthy by an external check, and likewise
// for the graph).
var (
	decodeSite      = fault.Register("server.explain.decode")
	writeSite       = fault.Register("server.response.write")
	healthCacheSite = fault.Register("server.health.cache")
	healthGraphSite = fault.Register("server.health.graph")
)

// degradeLevel identifies the rung of the degradation ladder that
// produced a response. Levels above degradeNone are reported to the
// client via the "degraded" JSON fields and the X-Emigre-Degraded
// header.
type degradeLevel int

const (
	// degradeNone: the full-fidelity search answered in time.
	degradeNone degradeLevel = iota
	// degradeLean: the shrunk search (CHECK budget divided, sequential)
	// answered after the full search ran out of its time slice.
	degradeLean
	// degradeCacheOnly: the lean search answered without leading any
	// cold cache fill (pprcache hit-only mode).
	degradeCacheOnly
	// degradePartial: no search finished; the response carries the best
	// unverified partial explanation from a *CanceledError.
	degradePartial
)

// String returns the wire name of the level ("lean", "cache_only",
// "partial"; "none" never reaches the wire).
func (l degradeLevel) String() string {
	switch l {
	case degradeLean:
		return "lean"
	case degradeCacheOnly:
		return "cache_only"
	case degradePartial:
		return "partial"
	default:
		return "none"
	}
}

// degradeLevels lists the reportable levels for metric pre-creation.
var degradeLevels = []degradeLevel{degradeLean, degradeCacheOnly, degradePartial}

// Ladder time slices, as fractions of the request's total deadline
// budget. The full-fidelity attempt gets the lion's share; each rung
// down gets a slice of what remains, and the last few percent are
// reserved for rendering the partial answer. Chosen so that every rung
// still has a usable slice even for sub-second budgets.
const (
	fullFraction      = 0.60
	leanFraction      = 0.85
	cacheOnlyFraction = 0.96
)

// leanBudgetDivisor shrinks the CHECK budget for the lean explainer.
const leanBudgetDivisor = 8

// explainFn is one explanation request bound to everything but the
// context and the explainer — the ladder re-runs it per rung with
// tighter sub-deadlines and cheaper explainers.
type explainFn func(ctx context.Context, ex *emigre.Explainer) (*emigre.Explanation, error)

// deadlineSqueezed reports whether err means "the search ran out of
// time" (as opposed to a definitive verdict like ErrNoExplanation, a
// client disconnect, or a hard failure) while the request as a whole is
// still live enough to try a cheaper rung.
func deadlineSqueezed(err error) bool {
	return errors.Is(err, context.DeadlineExceeded)
}

// partialOf extracts the unverified partial explanation carried by a
// *CanceledError, nil when there is none (or none with edges).
func partialOf(err error) *emigre.Explanation {
	var ce *emigre.CanceledError
	if errors.As(err, &ce) && ce.Partial != nil && len(ce.Partial.Edges) > 0 {
		return ce.Partial
	}
	return nil
}

// runExplain runs one explanation through the degradation ladder.
//
// Without a deadline — or with the ladder disabled — it is exactly one
// full-fidelity attempt. With a deadline, the request's budget is
// carved into sub-deadlines: the full search gets the first ~60%, and
// if it is squeezed out the server steps down instead of failing —
// first a lean search (CHECK budget divided by leanBudgetDivisor,
// sequential), then the same lean search in cache-hit-only mode (no
// cold PPR fills), and finally the best partial explanation carried by
// the interrupted searches' *CanceledError. When the budget suffices
// the full attempt answers and the response is byte-identical to a
// ladder-free server's.
//
// Definitive errors (bad query, no explanation, client disconnect)
// surface immediately from the full attempt: retrying a search that
// answered "no" on a cheaper rung could only lie.
func (s *Server) runExplain(ctx context.Context, run explainFn) (*emigre.Explanation, degradeLevel, error) {
	deadline, hasDeadline := ctx.Deadline()
	if !hasDeadline || s.exLean == nil {
		expl, err := run(ctx, s.ex)
		return expl, degradeNone, err
	}
	start := time.Now()
	budget := deadline.Sub(start)
	phaseCtx := func(frac float64) (context.Context, context.CancelFunc) {
		return context.WithDeadline(ctx, start.Add(time.Duration(frac*float64(budget))))
	}

	fctx, cancel := phaseCtx(fullFraction)
	expl, err := run(fctx, s.ex)
	cancel()
	if err == nil {
		return expl, degradeNone, nil
	}
	if !deadlineSqueezed(err) {
		return nil, degradeNone, err
	}
	s.ladderEngaged.Inc()
	fullErr := err
	partial := partialOf(err)

	// Rung 1 — lean: same question, CHECK budget divided, sequential
	// evaluation. A hit here is a genuinely verified explanation; the
	// ordered-stream contract means it is a result the full search would
	// also have produced, just found within a smaller budget.
	if ctx.Err() == nil {
		lctx, cancel := phaseCtx(leanFraction)
		lexpl, lerr := run(lctx, s.exLean)
		cancel()
		if lerr == nil {
			return lexpl, degradeLean, nil
		}
		if p := partialOf(lerr); p != nil {
			partial = p
		}
	}

	// Rung 2 — cache-only: the lean search again, but no cold PPR fills;
	// it succeeds iff the answer is derivable from warm cache state and
	// fails fast (ErrCacheOnlyMiss) otherwise. Lean errors other than a
	// squeeze (e.g. its smaller budget exhausting) do not surface: the
	// lean verdict is not the question's verdict.
	if ctx.Err() == nil {
		cctx, cancel := phaseCtx(cacheOnlyFraction)
		cexpl, cerr := run(pprcache.WithHitOnly(cctx), s.exLean)
		cancel()
		if cerr == nil {
			return cexpl, degradeCacheOnly, nil
		}
		if p := partialOf(cerr); p != nil {
			partial = p
		}
	}

	// Rung 3 — partial: the best unverified candidate set an interrupted
	// search was evaluating. Served with HTTP 200 + degraded marks; the
	// caller is told explicitly it is unverified.
	if partial != nil {
		return partial, degradePartial, nil
	}
	return nil, degradeNone, fullErr
}
