package server

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"strings"
	"testing"

	emigre "github.com/why-not-xai/emigre"
)

// TestExplainPoolStatsSurfaced checks the observability contract of the
// parallel CHECK pipeline: with -explain-workers > 1, GET /stats grows
// an explain_pool block whose committed-check gauge matches the
// explanation's own check count.
func TestExplainPoolStatsSurfaced(t *testing.T) {
	srv, _ := newTestServerCfg(t, func(c *Config) { c.ExplainWorkers = 4 })
	h := srv.Handler()

	body := map[string]any{"user": "Paul", "wni": "Harry Potter", "mode": "remove", "method": "powerset"}
	rec := do(t, h, "POST", "/explain", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("explain: %d: %s", rec.Code, rec.Body.String())
	}
	var expl struct {
		Checks int `json:"checks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &expl); err != nil {
		t.Fatal(err)
	}

	stats := do(t, h, "GET", "/stats", nil)
	if stats.Code != http.StatusOK {
		t.Fatalf("stats: %d: %s", stats.Code, stats.Body.String())
	}
	var sb struct {
		Pool *emigre.PipelineStats `json:"explain_pool"`
	}
	if err := json.Unmarshal(stats.Body.Bytes(), &sb); err != nil {
		t.Fatal(err)
	}
	if sb.Pool == nil {
		t.Fatalf("GET /stats has no explain_pool section: %s", stats.Body.String())
	}
	if sb.Pool.Workers != 4 {
		t.Fatalf("explain_pool.workers = %d, want 4", sb.Pool.Workers)
	}
	if sb.Pool.ParallelRuns < 1 {
		t.Fatalf("explain_pool.parallel_runs = %d, want >= 1", sb.Pool.ParallelRuns)
	}
	if sb.Pool.ChecksCommitted != int64(expl.Checks) {
		t.Fatalf("explain_pool.checks_committed = %d, want the response's checks = %d",
			sb.Pool.ChecksCommitted, expl.Checks)
	}
	if sb.Pool.InflightChecks != 0 {
		t.Fatalf("explain_pool.inflight_checks = %d at rest, want 0", sb.Pool.InflightChecks)
	}
}

// TestExplainWorkersIdenticalResponse is the serving-level A/B: the same
// question answered by a sequential server and a 4-worker server must
// produce identical response bodies (modulo the duration field).
func TestExplainWorkersIdenticalResponse(t *testing.T) {
	seq, _ := newTestServer(t)
	par, _ := newTestServerCfg(t, func(c *Config) { c.ExplainWorkers = 4 })
	body := map[string]any{"user": "Paul", "wni": "Harry Potter", "mode": "remove", "method": "powerset"}

	strip := func(raw []byte) map[string]any {
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "duration_us")
		return m
	}
	a := do(t, seq.Handler(), "POST", "/explain", body)
	b := do(t, par.Handler(), "POST", "/explain", body)
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("explain codes: seq=%d par=%d", a.Code, b.Code)
	}
	am, bm := strip(a.Body.Bytes()), strip(b.Body.Bytes())
	aj, _ := json.Marshal(am)
	bj, _ := json.Marshal(bm)
	if string(aj) != string(bj) {
		t.Fatalf("responses diverge:\nseq: %s\npar: %s", aj, bj)
	}
}

// TestRequestLogCarriesPipelineTally checks that the request log line of
// a parallel explanation reports its committed/wasted check split.
func TestRequestLogCarriesPipelineTally(t *testing.T) {
	var buf bytes.Buffer
	srv, _ := newTestServerCfg(t, func(c *Config) {
		c.ExplainWorkers = 4
		c.Logger = log.New(&buf, "", 0)
	})
	h := srv.Handler()
	body := map[string]any{"user": "Paul", "wni": "Harry Potter", "mode": "remove", "method": "powerset"}
	if rec := do(t, h, "POST", "/explain", body); rec.Code != http.StatusOK {
		t.Fatalf("explain: %d: %s", rec.Code, rec.Body.String())
	}
	line := strings.TrimSpace(buf.String())
	if !strings.Contains(line, " par=") {
		t.Fatalf("request log %q carries no pipeline tally", line)
	}
	// Sequential servers must not emit the field.
	buf.Reset()
	seq, _ := newTestServerCfg(t, func(c *Config) { c.Logger = log.New(&buf, "", 0) })
	if rec := do(t, seq.Handler(), "POST", "/explain", body); rec.Code != http.StatusOK {
		t.Fatalf("sequential explain: %d: %s", rec.Code, rec.Body.String())
	}
	if strings.Contains(buf.String(), " par=") {
		t.Fatalf("sequential request log %q reports a pipeline tally", strings.TrimSpace(buf.String()))
	}
}
