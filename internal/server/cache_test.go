package server

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"strings"
	"testing"

	emigre "github.com/why-not-xai/emigre"
)

type cacheStatsBody struct {
	Cache *emigre.PPRCacheStats `json:"cache"`
}

func getCacheStats(t *testing.T, h http.Handler) *emigre.PPRCacheStats {
	t.Helper()
	rec := do(t, h, "GET", "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /stats = %d: %s", rec.Code, rec.Body.String())
	}
	var body cacheStatsBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	return body.Cache
}

// TestRepeatedRecommendHitsCache is the serving acceptance check:
// the second identical /recommend must be answered from the vector
// cache, visible as hits in GET /stats.
func TestRepeatedRecommendHitsCache(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()

	for i := 0; i < 3; i++ {
		if rec := do(t, h, "GET", "/recommend?user=Paul&n=3", nil); rec.Code != http.StatusOK {
			t.Fatalf("request %d: %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	s := getCacheStats(t, h)
	if s == nil {
		t.Fatal("GET /stats has no cache section with caching enabled")
	}
	if s.Misses < 1 {
		t.Fatalf("no miss recorded on the cold request: %+v", s)
	}
	if s.Hits < 2 {
		t.Fatalf("repeated requests were not served from the cache: %+v", s)
	}
	if s.Entries < 1 {
		t.Fatalf("no resident entries after traffic: %+v", s)
	}
}

// TestExplainPopulatesAndReusesCache drives the expensive path twice:
// the second identical /explain reuses the first one's baseline
// vectors and reverse columns.
func TestExplainPopulatesAndReusesCache(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	body := map[string]any{"user": "Paul", "wni": "Harry Potter", "mode": "remove", "method": "powerset"}

	if rec := do(t, h, "POST", "/explain", body); rec.Code != http.StatusOK {
		t.Fatalf("first explain: %d: %s", rec.Code, rec.Body.String())
	}
	first := getCacheStats(t, h)
	if rec := do(t, h, "POST", "/explain", body); rec.Code != http.StatusOK {
		t.Fatalf("second explain: %d: %s", rec.Code, rec.Body.String())
	}
	second := getCacheStats(t, h)
	if second.Hits <= first.Hits {
		t.Fatalf("second explanation hit nothing: %+v -> %+v", first, second)
	}
}

// TestCacheDisabledByConfig pins the negative convention: a negative
// bound disables caching, /stats drops the section, and requests still
// serve correctly.
func TestCacheDisabledByConfig(t *testing.T) {
	srv, _ := newTestServerCfg(t, func(c *Config) { c.CacheEntries = -1 })
	h := srv.Handler()
	if rec := do(t, h, "GET", "/recommend?user=Paul&n=3", nil); rec.Code != http.StatusOK {
		t.Fatalf("recommend without cache: %d: %s", rec.Code, rec.Body.String())
	}
	if s := getCacheStats(t, h); s != nil {
		t.Fatalf("cache section present with caching disabled: %+v", s)
	}
}

// TestRequestLogCarriesCacheTally checks the per-request observability:
// the middleware log line reports the request's own hit/miss counts.
func TestRequestLogCarriesCacheTally(t *testing.T) {
	var buf bytes.Buffer
	srv, _ := newTestServerCfg(t, func(c *Config) {
		c.Logger = log.New(&buf, "", 0)
	})
	h := srv.Handler()
	do(t, h, "GET", "/recommend?user=Paul&n=3", nil) // cold: misses
	do(t, h, "GET", "/recommend?user=Paul&n=3", nil) // warm: hits
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 log lines, got %d:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "cache=0h/1m") {
		t.Errorf("cold request log %q does not report its miss", lines[0])
	}
	if !strings.Contains(lines[1], "cache=1h/0m") {
		t.Errorf("warm request log %q does not report its hit", lines[1])
	}
}

// TestCacheSharedBetweenRecommendAndExplain checks the topology: one
// cache spans both endpoints, so a /recommend warms the forward vector
// a subsequent /explain needs for its baseline.
func TestCacheSharedBetweenRecommendAndExplain(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	if rec := do(t, h, "GET", "/recommend?user=Paul&n=3", nil); rec.Code != http.StatusOK {
		t.Fatal(rec.Body.String())
	}
	before := getCacheStats(t, h)
	body := map[string]any{"user": "Paul", "wni": "Harry Potter", "mode": "remove", "method": "powerset"}
	if rec := do(t, h, "POST", "/explain", body); rec.Code != http.StatusOK {
		t.Fatalf("explain: %d: %s", rec.Code, rec.Body.String())
	}
	after := getCacheStats(t, h)
	if after.Hits <= before.Hits {
		t.Fatalf("explain did not reuse recommend's vectors: %+v -> %+v", before, after)
	}
}
