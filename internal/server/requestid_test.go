package server

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

// doWithHeaders is do() plus request headers.
func doWithHeaders(t *testing.T, h http.Handler, method, path string, body any, headers map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestRequestIDGeneratedAndLogged: a request without an ID gets a
// server-minted one, echoed on the response and recorded in the access
// log as rid=.
func TestRequestIDGeneratedAndLogged(t *testing.T) {
	var buf syncBuffer
	srv, _ := newTestServerCfg(t, func(c *Config) { c.Logger = log.New(&buf, "", 0) })
	rec := do(t, srv.Handler(), "GET", "/healthz", nil)
	rid := rec.Header().Get(RequestIDHeader)
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(rid) {
		t.Fatalf("generated ID %q, want 16 hex chars", rid)
	}
	if !strings.Contains(buf.String(), "rid="+rid) {
		t.Fatalf("access log missing rid=%s:\n%s", rid, buf.String())
	}
}

// TestRequestIDEchoed: a well-formed client ID is echoed verbatim; a
// malformed one is replaced with a server-minted ID.
func TestRequestIDEchoed(t *testing.T) {
	var buf syncBuffer
	srv, _ := newTestServerCfg(t, func(c *Config) { c.Logger = log.New(&buf, "", 0) })

	rec := doWithHeaders(t, srv.Handler(), "GET", "/healthz", nil,
		map[string]string{RequestIDHeader: "loadgen-0042-a"})
	if got := rec.Header().Get(RequestIDHeader); got != "loadgen-0042-a" {
		t.Fatalf("echoed ID = %q, want loadgen-0042-a", got)
	}
	if !strings.Contains(buf.String(), "rid=loadgen-0042-a") {
		t.Fatalf("access log missing client rid:\n%s", buf.String())
	}

	for _, bad := range []string{
		"has space", "quote\"inside", "ctrl\x01char",
		strings.Repeat("x", maxRequestIDLen+1),
	} {
		rec := doWithHeaders(t, srv.Handler(), "GET", "/healthz", nil,
			map[string]string{RequestIDHeader: bad})
		got := rec.Header().Get(RequestIDHeader)
		if got == bad || got == "" {
			t.Errorf("malformed ID %q must be replaced, got %q", bad, got)
		}
	}
}

// TestExplainTallyHeaders: /explain exposes the request's cache and
// pipeline tallies as parseable response headers.
func TestExplainTallyHeaders(t *testing.T) {
	srv, _ := newTestServer(t)
	body := map[string]any{"user": "Paul", "wni": "Harry Potter", "mode": "remove"}
	rec := do(t, srv.Handler(), "POST", "/explain", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	cache := rec.Header().Get(CacheTallyHeader)
	if !regexp.MustCompile(`^\d+h/\d+m$`).MatchString(cache) {
		t.Errorf("%s = %q, want <n>h/<m>m", CacheTallyHeader, cache)
	}
	if cache == "0h/0m" {
		t.Errorf("an explain with caching enabled must touch the cache, got %q", cache)
	}
	par := rec.Header().Get(ParTallyHeader)
	if !regexp.MustCompile(`^\d+c/\d+w$`).MatchString(par) {
		t.Errorf("%s = %q, want <n>c/<m>w", ParTallyHeader, par)
	}
}

// TestRecommendTallyHeader: /recommend exposes the forward-vector cache
// tally too.
func TestRecommendTallyHeader(t *testing.T) {
	srv, _ := newTestServer(t)
	rec := do(t, srv.Handler(), "GET", "/recommend?user=Paul&n=3", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if cache := rec.Header().Get(CacheTallyHeader); !regexp.MustCompile(`^\d+h/\d+m$`).MatchString(cache) {
		t.Errorf("%s = %q, want <n>h/<m>m", CacheTallyHeader, cache)
	}
}
