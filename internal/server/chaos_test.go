package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/why-not-xai/emigre/client"
	"github.com/why-not-xai/emigre/internal/fault"
)

// The chaos suite drives the whole stack — resilient client → HTTP →
// admission → degradation ladder → search → PPR engines → cache —
// through failpoint schedules under -race, asserting the system's
// robustness contracts: no deadlock, no cache poisoning, well-formed
// degraded responses, and client convergence once transient faults
// clear. Sites exercised (≥8): server.explain.decode,
// server.response.write, pprcache.fill, ppr.forward.loop,
// ppr.reverse.loop, hin.overlay.snapshot, emigre.check,
// emigre.pipeline.worker, plus the armed-only server.health.cache and
// server.health.graph.

// newChaosStack boots a books-graph server over real HTTP with the
// parallel CHECK pipeline on (so the worker failpoint is reachable) and
// returns a resilient client pointed at it.
func newChaosStack(t *testing.T, mutate func(*Config)) (*Server, *client.Client) {
	t.Helper()
	srv, _ := newTestServerCfg(t, func(c *Config) {
		c.ExplainWorkers = 2
		c.MaxConcurrent = 4
		if mutate != nil {
			mutate(c)
		}
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	cl, err := client.New(client.Config{
		BaseURL:     ts.URL,
		MaxAttempts: 8,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv, cl
}

// chaosQueries are the Why-Not questions each phase replays — all
// known-answerable on the books graph, across modes, methods and
// granularities (single, group, category) to widen the exercised
// surface.
var chaosQueries = []client.ExplainRequest{
	{User: "Paul", WNI: "Harry Potter", Mode: "remove", Method: "powerset"},
	{User: "Paul", WNI: "Harry Potter", Mode: "add", Method: "powerset"},
	{User: "Paul", Items: []string{"Harry Potter", "The Hobbit"}, Mode: "add"},
	{User: "Paul", Category: "Fantasy", Mode: "add"},
}

// normalize strips the per-run timing field so responses can be
// compared across runs.
func normalize(r *client.ExplainResponse) *client.ExplainResponse {
	if r == nil {
		return nil
	}
	c := *r
	c.DurationUS = 0
	// Wire metadata varies run to run (random correlation IDs, cache
	// warmth, attempt counts) without affecting explanation content.
	c.Meta = client.Meta{}
	return &c
}

// runQueries executes every chaos query once, returning responses by
// index; nil entries are calls that errored (err recorded instead).
func runQueries(t *testing.T, cl *client.Client, timeout time.Duration) ([]*client.ExplainResponse, []error) {
	t.Helper()
	out := make([]*client.ExplainResponse, len(chaosQueries))
	errs := make([]error, len(chaosQueries))
	var wg sync.WaitGroup
	for i, q := range chaosQueries {
		wg.Add(1)
		go func(i int, q client.ExplainRequest) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			out[i], errs[i] = cl.Explain(ctx, q)
		}(i, q)
	}
	wg.Wait()
	return out, errs
}

// TestChaosScheduleConvergesAndRecovers is the main chaos run:
//
//  1. a fault-free baseline is recorded;
//  2. a schedule arms 8 sites — one-shot error bursts on the handler,
//     cache, engine loops, overlay builds and pipeline workers, plus a
//     probabilistic sleep on the CHECK seam — and the same queries are
//     replayed through the retrying client, which must converge on
//     every one;
//  3. after DisarmAll, the queries are replayed once more and must be
//     deep-equal to the baseline: no poisoned cache entry, no stuck
//     state, no answer drift.
func TestChaosScheduleConvergesAndRecovers(t *testing.T) {
	srv, cl := newChaosStack(t, nil)
	t.Cleanup(fault.DisarmAll)

	baseline, errs := runQueries(t, cl, 30*time.Second)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("baseline query %d: %v", i, err)
		}
		if baseline[i].Degraded {
			t.Fatalf("baseline query %d degraded without any fault armed: %+v", i, baseline[i])
		}
	}

	// Cold state for the chaos phase so pprcache.fill is reachable again.
	srv.cache.Purge()

	fault.SetSeed(7)
	schedule := "server.explain.decode=error(chaos decode)*1;" +
		"server.response.write=error(chaos write)*1;" +
		"pprcache.fill=error(chaos fill)*2;" +
		"ppr.forward.loop=error(chaos fwd)*2;" +
		"ppr.reverse.loop=error(chaos rev)*2;" +
		"hin.overlay.snapshot=error(chaos overlay)*2;" +
		"emigre.pipeline.worker=error(chaos worker)*2;" +
		"emigre.check=sleep(200us)%0.5"
	if err := fault.Apply(schedule); err != nil {
		t.Fatal(err)
	}

	// Every one-shot burst exhausts itself against retries, so the
	// client must converge on all queries despite the faults.
	chaos, errs := runQueries(t, cl, 60*time.Second)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("chaos query %d did not converge: %v", i, err)
		}
		if chaos[i] == nil || len(chaos[i].Edges) == 0 {
			t.Fatalf("chaos query %d: empty response %+v", i, chaos[i])
		}
	}
	if st := cl.Stats(); st.Retries == 0 {
		t.Fatal("chaos phase caused no client retries; schedule did not bite")
	}
	// Every error-action site must have actually fired.
	for _, name := range []string{
		"server.explain.decode", "server.response.write", "pprcache.fill",
		"ppr.forward.loop", "ppr.reverse.loop", "hin.overlay.snapshot",
		"emigre.pipeline.worker",
	} {
		site := fault.Lookup(name)
		if site == nil {
			t.Fatalf("site %q not registered", name)
		}
		if site.Injections() == 0 {
			t.Errorf("site %q never injected; chaos schedule left it cold", name)
		}
	}
	if fault.Lookup("emigre.check").Hits() == 0 {
		t.Error("emigre.check was never evaluated under the sleep schedule")
	}

	fault.DisarmAll()
	after, errs := runQueries(t, cl, 30*time.Second)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("post-disarm query %d: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(after[i]), normalize(baseline[i])) {
			t.Errorf("post-disarm query %d drifted from baseline:\nbaseline: %+v\nafter:    %+v",
				i, baseline[i], after[i])
		}
	}
}

// TestChaosDeadlineSqueeze pins the ladder's acceptance contract: with
// every CHECK slowed by a failpoint and a tight budget, the ladder
// server answers HTTP 200 with degraded=true and a non-empty partial
// explanation, while a DisableDegraded server can only 504.
func TestChaosDeadlineSqueeze(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	_, ladder := newChaosStack(t, nil)
	_, plain := newChaosStack(t, func(c *Config) { c.DisableDegraded = true })

	// 600ms per CHECK against a 500ms budget: even one check (and the
	// workers run them in parallel) overruns the whole budget, so the
	// ladder must fall through to the partial rung while the plain
	// server can only time out.
	if err := fault.Apply("emigre.check=sleep(600ms)"); err != nil {
		t.Fatal(err)
	}
	req := client.ExplainRequest{
		User: "Paul", WNI: "Harry Potter", Mode: "remove",
		Method: "exhaustive", TimeoutMS: 500,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	out, err := ladder.Explain(ctx, req)
	if err != nil {
		t.Fatalf("ladder server: %v, want a degraded 200", err)
	}
	if !out.Degraded || len(out.Edges) == 0 {
		t.Fatalf("ladder server response not a usable degraded answer: %+v", out)
	}
	if !out.Partial || out.DegradedLevel != "partial" {
		t.Fatalf("squeezed response should be the partial rung: %+v", out)
	}

	_, err = plain.Explain(ctx, req)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("DisableDegraded server: err = %v, want 504", err)
	}
}

// TestChaosByteIdentityWhenBudgetSuffices: with no faults armed and a
// generous budget, the ladder-on and ladder-off servers return
// identical answers (modulo the wall-clock duration field) —
// degradation must never alter a full-fidelity response.
func TestChaosByteIdentityWhenBudgetSuffices(t *testing.T) {
	fault.DisarmAll()
	srvLadder, _ := newTestServerCfg(t, nil)
	srvPlain, _ := newTestServerCfg(t, func(c *Config) { c.DisableDegraded = true })

	for _, q := range chaosQueries {
		body := map[string]any{
			"user": q.User, "mode": q.Mode, "timeout_ms": 30000,
		}
		switch {
		case len(q.Items) > 0:
			body["items"] = q.Items
		case q.Category != "":
			body["category"] = q.Category
		default:
			body["wni"] = q.WNI
			body["method"] = q.Method
		}
		a := do(t, srvLadder.Handler(), "POST", "/explain", body)
		b := do(t, srvPlain.Handler(), "POST", "/explain", body)
		if a.Code != http.StatusOK || b.Code != http.StatusOK {
			t.Fatalf("query %+v: codes %d / %d: %s / %s", q, a.Code, b.Code, a.Body.String(), b.Body.String())
		}
		var ra, rb client.ExplainResponse
		if err := json.Unmarshal(a.Body.Bytes(), &ra); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(b.Body.Bytes(), &rb); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalize(&ra), normalize(&rb)) {
			t.Errorf("ladder on/off drift for %+v:\n  on : %s\n  off: %s",
				q, a.Body.String(), b.Body.String())
		}
	}
}

// TestChaosHealthFailpoints: arming a health site flips /readyz to 503
// (unhealthy component named), disarming restores readiness — the
// orchestrator-facing side of fault injection.
func TestChaosHealthFailpoints(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	srv, cl := newChaosStack(t, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.Ready(ctx); err != nil {
		t.Fatalf("ready before faults: %v", err)
	}
	for _, tc := range []struct{ site, component string }{
		{"server.health.cache", "cache"},
		{"server.health.graph", "graph"},
	} {
		if err := fault.Apply(tc.site + "=error(unhealthy)"); err != nil {
			t.Fatal(err)
		}
		rec := do(t, srv.Handler(), "GET", "/readyz", nil)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s armed: /readyz = %d, want 503", tc.site, rec.Code)
		}
		var body map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		if body["component"] != tc.component {
			t.Fatalf("%s armed: component = %q, want %q", tc.site, body["component"], tc.component)
		}
		fault.DisarmAll()
	}
	if err := cl.Ready(ctx); err != nil {
		t.Fatalf("ready after disarm: %v", err)
	}
}
