package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	emigre "github.com/why-not-xai/emigre"
)

func newTestServer(t *testing.T) (*Server, *emigre.Books) {
	return newTestServerCfg(t, nil)
}

// newTestServerCfg builds a books-graph server, letting the test tweak
// the Config (timeouts, admission) before construction.
func newTestServerCfg(t *testing.T, mutate func(*Config)) (*Server, *emigre.Books) {
	t.Helper()
	books, err := emigre.NewBooks()
	if err != nil {
		t.Fatal(err)
	}
	cfg := emigre.DefaultRecommenderConfig(books.Types.Item)
	cfg.Beta = 1
	r, err := emigre.NewRecommender(books.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := Config{
		Graph:       books.Graph,
		Recommender: r,
		Options: emigre.Options{
			AllowedEdgeTypes: books.ActionEdgeTypes(),
			AddEdgeType:      books.Types.Rated,
		},
		Logger: log.New(io.Discard, "", 0),
	}
	if mutate != nil {
		mutate(&sc)
	}
	srv, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	return srv, books
}

func do(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	srv, _ := newTestServer(t)
	rec := do(t, srv.Handler(), "GET", "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Fatalf("body = %s", rec.Body.String())
	}
}

func TestStats(t *testing.T) {
	srv, books := newTestServer(t)
	rec := do(t, srv.Handler(), "GET", "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Nodes int `json:"nodes"`
		Edges int `json:"edges"`
		Types []struct {
			NodeType string `json:"node_type"`
			Nodes    int    `json:"nodes"`
		} `json:"types"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Nodes != books.Graph.NumNodes() || body.Edges != books.Graph.NumEdges() {
		t.Fatalf("stats wrong: %+v", body)
	}
	if len(body.Types) != 3 {
		t.Fatalf("type rows = %d, want 3", len(body.Types))
	}
}

func TestRecommend(t *testing.T) {
	srv, books := newTestServer(t)
	rec := do(t, srv.Handler(), "GET", "/recommend?user=Paul&n=3", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Items []struct {
			Label string  `json:"label"`
			Score float64 `json:"score"`
		} `json:"items"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Items) != 3 || body.Items[0].Label != "Python" {
		t.Fatalf("recommendations wrong: %+v", body)
	}
	_ = books
	// Bad inputs.
	if rec := do(t, srv.Handler(), "GET", "/recommend?user=Nobody", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown user status = %d", rec.Code)
	}
	if rec := do(t, srv.Handler(), "GET", "/recommend?user=Paul&n=-2", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad n status = %d", rec.Code)
	}
	// Trailing garbage must be rejected, not silently truncated the way
	// Sscanf-style parsing would.
	if rec := do(t, srv.Handler(), "GET", "/recommend?user=Paul&n=10abc", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("n=10abc status = %d, want 400", rec.Code)
	}
}

func TestExplainSingle(t *testing.T) {
	srv, _ := newTestServer(t)
	rec := do(t, srv.Handler(), "POST", "/explain", map[string]any{
		"user": "Paul", "wni": "Harry Potter", "mode": "remove", "method": "powerset",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var body explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Edges) != 2 || !body.Verified {
		t.Fatalf("explanation wrong: %+v", body)
	}
	for _, e := range body.Edges {
		if e.Operation != "remove" {
			t.Fatalf("operation = %q, want remove", e.Operation)
		}
		if e.ToLabel != "Candide" && e.ToLabel != "C" {
			t.Fatalf("unexpected edge target %q", e.ToLabel)
		}
	}
	if !strings.Contains(body.Description, "Harry Potter") {
		t.Fatalf("description = %q", body.Description)
	}
}

func TestExplainGroupAndCategory(t *testing.T) {
	srv, _ := newTestServer(t)
	rec := do(t, srv.Handler(), "POST", "/explain", map[string]any{
		"user": "Paul", "items": []string{"Harry Potter", "The Hobbit"}, "mode": "add",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("group status = %d: %s", rec.Code, rec.Body.String())
	}
	rec = do(t, srv.Handler(), "POST", "/explain", map[string]any{
		"user": "Paul", "category": "Fantasy", "mode": "add",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("category status = %d: %s", rec.Code, rec.Body.String())
	}
}

func TestExplainErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		name string
		body any
		want int
	}{
		{"no target", map[string]any{"user": "Paul"}, http.StatusBadRequest},
		{"bad json", nil, http.StatusBadRequest},
		{"unknown user", map[string]any{"user": "Nobody", "wni": "C"}, http.StatusBadRequest},
		{"unknown wni", map[string]any{"user": "Paul", "wni": "Nothing"}, http.StatusBadRequest},
		{"bad mode", map[string]any{"user": "Paul", "wni": "Harry Potter", "mode": "sideways"}, http.StatusBadRequest},
		{"bad method", map[string]any{"user": "Paul", "wni": "Harry Potter", "method": "magic"}, http.StatusBadRequest},
		{"already top", map[string]any{"user": "Paul", "wni": "Python"}, http.StatusUnprocessableEntity},
		{"interacted item", map[string]any{"user": "Paul", "wni": "Candide"}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rec *httptest.ResponseRecorder
			if tc.body == nil {
				req := httptest.NewRequest("POST", "/explain", strings.NewReader("{nope"))
				rec = httptest.NewRecorder()
				srv.Handler().ServeHTTP(rec, req)
			} else {
				rec = do(t, srv.Handler(), "POST", "/explain", tc.body)
			}
			if rec.Code != tc.want {
				t.Fatalf("status = %d, want %d: %s", rec.Code, tc.want, rec.Body.String())
			}
		})
	}
}

func TestExplainNoExplanationIs404(t *testing.T) {
	srv, _ := newTestServer(t)
	// "Why not The Hobbit" in remove mode has no answer on the books
	// graph (Harry Potter and others intercept).
	rec := do(t, srv.Handler(), "POST", "/explain", map[string]any{
		"user": "Paul", "wni": "The Hobbit", "mode": "remove", "method": "exhaustive",
	})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404: %s", rec.Code, rec.Body.String())
	}
}

func TestDiagnoseEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	rec := do(t, srv.Handler(), "POST", "/diagnose", map[string]any{
		"user": "Paul", "wni": "The Hobbit", "mode": "remove",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Kind        string `json:"kind"`
		WorkingMode string `json:"working_mode"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Kind != "out-of-scope" {
		t.Fatalf("kind = %q, want out-of-scope", body.Kind)
	}
	if rec := do(t, srv.Handler(), "POST", "/diagnose", map[string]any{"user": "Nobody", "wni": "C"}); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown user status = %d", rec.Code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv, _ := newTestServer(t)
	if rec := do(t, srv.Handler(), "GET", "/explain", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /explain status = %d, want 405", rec.Code)
	}
	if rec := do(t, srv.Handler(), "POST", "/stats", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats status = %d, want 405", rec.Code)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing graph should error")
	}
}
