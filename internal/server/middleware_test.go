package server

import (
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// readFromRecorder is a ResponseRecorder that additionally implements
// io.ReaderFrom, so tests can observe whether a middleware writer
// preserves the fast path.
type readFromRecorder struct {
	*httptest.ResponseRecorder
	readFromCalled bool
}

func (r *readFromRecorder) ReadFrom(src io.Reader) (int64, error) {
	r.readFromCalled = true
	return io.Copy(r.ResponseRecorder, src)
}

// TestStatusWriterFlushReachesRecorder pins the interface-upgrade fix:
// before statusWriter grew Flush/Unwrap, wrapping the writer silently
// dropped http.Flusher, so streaming handlers behind the middleware
// could never flush (the type assertion below failed and
// recorder.Flushed stayed false).
func TestStatusWriterFlushReachesRecorder(t *testing.T) {
	srv, _ := newTestServerCfg(t, func(c *Config) { c.Logger = log.New(io.Discard, "", 0) })
	sawFlusher := false
	srv.mux.HandleFunc("GET /stream", func(w http.ResponseWriter, _ *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			return // sawFlusher stays false; asserted below
		}
		sawFlusher = true
		if _, err := w.Write([]byte("chunk")); err != nil {
			t.Errorf("write: %v", err)
		}
		f.Flush()
	})
	rec := do(t, srv.Handler(), "GET", "/stream", nil)
	if !sawFlusher {
		t.Fatal("middleware writer must implement http.Flusher")
	}
	if !rec.Flushed {
		t.Fatal("Flush did not reach the underlying recorder")
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (flush commits an implicit 200)", rec.Code)
	}
}

// TestStatusWriterResponseController covers the stdlib Unwrap
// convention: http.ResponseController must find its way through the
// middleware writer to the recorder's Flush.
func TestStatusWriterResponseController(t *testing.T) {
	srv, _ := newTestServerCfg(t, func(c *Config) { c.Logger = log.New(io.Discard, "", 0) })
	var rcErr error
	srv.mux.HandleFunc("GET /rc", func(w http.ResponseWriter, _ *http.Request) {
		rcErr = http.NewResponseController(w).Flush()
	})
	rec := do(t, srv.Handler(), "GET", "/rc", nil)
	if rcErr != nil {
		t.Fatalf("ResponseController.Flush through the middleware: %v", rcErr)
	}
	if !rec.Flushed {
		t.Fatal("controller flush did not reach the recorder")
	}
}

// TestStatusWriterReadFromPassthrough pins that io.Copy onto the
// middleware writer reaches the underlying writer's io.ReaderFrom
// (sendfile on a real connection) and still records the implicit 200.
func TestStatusWriterReadFromPassthrough(t *testing.T) {
	under := &readFromRecorder{ResponseRecorder: httptest.NewRecorder()}
	sw := &statusWriter{ResponseWriter: under, status: http.StatusOK}
	var w http.ResponseWriter = sw
	if _, ok := w.(io.ReaderFrom); !ok {
		t.Fatal("middleware writer must implement io.ReaderFrom")
	}
	// Hide strings.Reader's WriterTo: io.Copy prefers src.WriteTo over
	// dst.ReadFrom, and this test is about the dst side.
	src := struct{ io.Reader }{strings.NewReader("payload")}
	n, err := io.Copy(w, src)
	if err != nil || n != int64(len("payload")) {
		t.Fatalf("copy = %d, %v", n, err)
	}
	if !under.readFromCalled {
		t.Fatal("ReadFrom did not reach the underlying writer")
	}
	if !sw.wrote || sw.status != http.StatusOK {
		t.Fatalf("ReadFrom must commit an implicit 200, got wrote=%v status=%d", sw.wrote, sw.status)
	}
	if got := under.Body.String(); got != "payload" {
		t.Fatalf("body = %q", got)
	}
}

// TestPanicAfterWriteHeaderLogsOnWireStatus pins the panic-recovery
// fix: when a handler panics after writing a status, the request log
// must report the status the client actually observed — previously it
// rewrote the tally to 500 even though no 500 ever reached the wire.
func TestPanicAfterWriteHeaderLogsOnWireStatus(t *testing.T) {
	var buf syncBuffer
	srv, _ := newTestServerCfg(t, func(c *Config) { c.Logger = log.New(&buf, "", 0) })
	srv.mux.HandleFunc("GET /lateboom", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusNoContent)
		panic("late kaboom")
	})
	rec := do(t, srv.Handler(), "GET", "/lateboom", nil)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("on-wire status = %d, want 204", rec.Code)
	}
	out := buf.String()
	if !strings.Contains(out, "late kaboom") {
		t.Fatalf("log missing the panic line:\n%s", out)
	}
	var reqLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "GET /lateboom") {
			reqLine = line
			break
		}
	}
	if reqLine == "" {
		t.Fatalf("no request log line for /lateboom:\n%s", out)
	}
	if !strings.Contains(reqLine, " 204 ") {
		t.Fatalf("request line must carry the on-wire 204: %q", reqLine)
	}
	if strings.Contains(reqLine, " 500 ") {
		t.Fatalf("request line claims a 500 that never reached the wire: %q", reqLine)
	}
}

// TestPanicBeforeWriteStillAnswers500 keeps the original recovery
// contract intact next to the fix: an unwritten response still turns
// into a logged 500.
func TestPanicBeforeWriteStillAnswers500(t *testing.T) {
	var buf syncBuffer
	srv, _ := newTestServerCfg(t, func(c *Config) { c.Logger = log.New(&buf, "", 0) })
	srv.mux.HandleFunc("GET /earlyboom", func(http.ResponseWriter, *http.Request) {
		panic("early kaboom")
	})
	rec := do(t, srv.Handler(), "GET", "/earlyboom", nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if out := buf.String(); !strings.Contains(out, " 500 ") {
		t.Fatalf("request line must log the 500:\n%s", out)
	}
}
