package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/why-not-xai/emigre/internal/testleak"
)

// TestExplainDeadline504 maps an expired search deadline to 504: with a
// nanosecond budget the first cancellation poll inside the search trips,
// well before any PPR work completes.
func TestExplainDeadline504(t *testing.T) {
	srv, _ := newTestServerCfg(t, func(c *Config) { c.ExplainTimeout = time.Nanosecond })
	start := time.Now()
	rec := do(t, srv.Handler(), "POST", "/explain", map[string]any{
		"user": "Paul", "wni": "The Hobbit", "mode": "remove", "method": "exhaustive",
	})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", rec.Code, rec.Body.String())
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("504 took %v, want well under 1s", elapsed)
	}
	var body errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("504 body is not JSON: %s", rec.Body.String())
	}
	if body.Error == "" {
		t.Fatal("504 body has no error message")
	}
}

// TestExplainRequestTimeoutMS: a per-request timeout_ms tightens the
// server deadline without any server reconfiguration.
func TestExplainRequestTimeoutMS(t *testing.T) {
	srv, _ := newTestServer(t) // default 30s server deadline
	req := map[string]any{
		"user": "Paul", "wni": "The Hobbit", "mode": "remove",
		"method": "exhaustive", "timeout_ms": 1,
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		rec := do(t, srv.Handler(), "POST", "/explain", req)
		switch rec.Code {
		case http.StatusGatewayTimeout:
			return // the 1ms budget expired mid-search, as intended
		case http.StatusNotFound:
			// The search outran the 1ms clock this time (The Hobbit has
			// no remove-mode answer); retry — it cannot always win.
			continue
		case http.StatusOK:
			// The degradation ladder rescued the squeezed request with a
			// partial answer — equally proof the 1ms deadline applied, as
			// long as the response says so.
			var body explainResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				t.Fatalf("200 body is not JSON: %s", rec.Body.String())
			}
			if !body.Degraded {
				t.Fatalf("200 within 1ms budget but degraded=false: %s", rec.Body.String())
			}
			if rec.Header().Get("X-Emigre-Degraded") == "" {
				t.Fatal("degraded response missing X-Emigre-Degraded header")
			}
			return
		default:
			t.Fatalf("status = %d, want 504, 404 or degraded 200: %s", rec.Code, rec.Body.String())
		}
	}
	t.Skip("search consistently finished within 1ms; timeout path not exercised on this machine")
}

// TestSaturation503 fills the admission gate and verifies the next
// request is shed immediately with 503 + Retry-After instead of queueing.
func TestSaturation503(t *testing.T) {
	srv, _ := newTestServerCfg(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.QueueDepth = -1 // no queue: reject as soon as the slot is taken
	})
	// Occupy the only slot as a stand-in for an in-flight explanation.
	if err := srv.adm.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	defer srv.adm.Release(1)

	rec := do(t, srv.Handler(), "POST", "/explain", map[string]any{
		"user": "Paul", "wni": "Harry Potter",
	})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 response missing Retry-After header")
	}
	var body errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Fatalf("503 body = %s", rec.Body.String())
	}

	// Diagnose goes through the same gate.
	rec = do(t, srv.Handler(), "POST", "/diagnose", map[string]any{
		"user": "Paul", "wni": "The Hobbit",
	})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("diagnose status = %d, want 503", rec.Code)
	}
}

// TestQueuedRequestTimesOut: with a queue, a request that cannot get a
// slot before its deadline leaves with 504 instead of waiting forever.
func TestQueuedRequestTimesOut(t *testing.T) {
	srv, _ := newTestServerCfg(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.QueueDepth = 4
		c.ExplainTimeout = 20 * time.Millisecond
	})
	if err := srv.adm.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	defer srv.adm.Release(1)

	start := time.Now()
	rec := do(t, srv.Handler(), "POST", "/explain", map[string]any{
		"user": "Paul", "wni": "Harry Potter",
	})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", rec.Code, rec.Body.String())
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("queued timeout took %v", elapsed)
	}
}

// TestPanicRecovery: a handler panic becomes a 500 JSON response and a
// log line, never a crashed process or an empty reply.
func TestPanicRecovery(t *testing.T) {
	var buf syncBuffer
	srv, _ := newTestServerCfg(t, func(c *Config) { c.Logger = log.New(&buf, "", 0) })
	srv.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	rec := do(t, srv.Handler(), "GET", "/boom", nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var body errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Fatalf("500 body = %s", rec.Body.String())
	}
	if out := buf.String(); !strings.Contains(out, "kaboom") || !strings.Contains(out, "500") {
		t.Fatalf("log output missing panic details:\n%s", out)
	}
}

// TestRequestLogging: every request produces a line with method, path,
// status; explanation requests also log the CHECK count.
func TestRequestLogging(t *testing.T) {
	var buf syncBuffer
	srv, _ := newTestServerCfg(t, func(c *Config) { c.Logger = log.New(&buf, "", 0) })
	do(t, srv.Handler(), "GET", "/healthz", nil)
	rec := do(t, srv.Handler(), "POST", "/explain", map[string]any{
		"user": "Paul", "wni": "Harry Potter", "mode": "remove", "method": "powerset",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("explain status = %d: %s", rec.Code, rec.Body.String())
	}
	out := buf.String()
	if !strings.Contains(out, "GET /healthz 200") {
		t.Fatalf("missing healthz log line:\n%s", out)
	}
	if !strings.Contains(out, "POST /explain 200") || !strings.Contains(out, "tests=") {
		t.Fatalf("missing explain log line with tests count:\n%s", out)
	}
}

// TestReadyzDraining: /readyz flips to 503 after SetDraining while
// /healthz stays 200 (the process is alive, just not accepting work).
func TestReadyzDraining(t *testing.T) {
	srv, _ := newTestServer(t)
	if rec := do(t, srv.Handler(), "GET", "/readyz", nil); rec.Code != http.StatusOK {
		t.Fatalf("readyz status = %d, want 200", rec.Code)
	}
	srv.SetDraining()
	rec := do(t, srv.Handler(), "GET", "/readyz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz status = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("readyz body = %s", rec.Body.String())
	}
	if rec := do(t, srv.Handler(), "GET", "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("healthz status while draining = %d, want 200", rec.Code)
	}
}

// TestGracefulDrain exercises the shutdown path end to end with a real
// listener: a request in flight when Shutdown starts still gets its
// response, and Shutdown returns cleanly once it is delivered.
func TestGracefulDrain(t *testing.T) {
	testleak.Check(t)
	srv, _ := newTestServer(t)
	inHandler := make(chan struct{})
	srv.mux.HandleFunc("GET /slow", func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		time.Sleep(150 * time.Millisecond)
		fmt.Fprint(w, `{"slow":"done"}`)
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	type result struct {
		status int
		body   string
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		resc <- result{status: resp.StatusCode, body: string(b)}
	}()

	<-inHandler // the request is now in flight
	srv.SetDraining()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", res.err)
	}
	if res.status != http.StatusOK || !strings.Contains(res.body, "done") {
		t.Fatalf("in-flight response = %d %q", res.status, res.body)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v, want ErrServerClosed", err)
	}
}

// TestConcurrentExplains: several simultaneous explanations on the
// shared server must all succeed (run with -race to check the engines).
func TestConcurrentExplains(t *testing.T) {
	testleak.Check(t)
	srv, _ := newTestServerCfg(t, func(c *Config) {
		c.MaxConcurrent = 4
		c.QueueDepth = 16
	})
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := do(t, srv.Handler(), "POST", "/explain", map[string]any{
				"user": "Paul", "wni": "Harry Potter", "mode": "remove", "method": "powerset",
			})
			if rec.Code != http.StatusOK {
				errs <- fmt.Sprintf("status %d: %s", rec.Code, rec.Body.String())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
