package server

import (
	"errors"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"github.com/why-not-xai/emigre/internal/testleak"
)

// closeStampListener records the instant the listener stops accepting
// connections, so the drain-ordering test can compare it against the
// instant a prober first observed /readyz as 503.
type closeStampListener struct {
	net.Listener
	closedAt *atomic.Int64
}

func (l *closeStampListener) Close() error {
	l.closedAt.CompareAndSwap(0, time.Now().UnixNano())
	return l.Listener.Close()
}

// TestDrainOrderingReadyzBeforeListenerClose pins the drain contract
// the router's health prober depends on: after a shutdown signal,
// /readyz must be observable as 503 over a *fresh* connection strictly
// before the listener closes. The pre-fix sequence — SetDraining
// followed immediately by Shutdown — fails this: the listener closes
// before any prober can connect, so the first signal a prober sees is
// a refused connection.
func TestDrainOrderingReadyzBeforeListenerClose(t *testing.T) {
	testleak.Check(t)
	srv, _ := newTestServer(t)

	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var closedAt atomic.Int64
	ln := &closeStampListener{Listener: inner, closedAt: &closedAt}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// Every probe rides its own connection: keep-alive reuse would let a
	// pre-drain connection survive the listener close and mask the race.
	probe := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   2 * time.Second,
	}
	base := "http://" + ln.Addr().String()
	get := func() (int, error) {
		resp, err := probe.Get(base + "/readyz")
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	// Wait for the listener to come up.
	up := time.Now().Add(5 * time.Second)
	for {
		if code, err := get(); err == nil && code == http.StatusOK {
			break
		}
		if time.Now().After(up) {
			t.Fatal("server never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}

	done := make(chan error, 1)
	go func() { done <- DrainOrdered(srv, hs, 500*time.Millisecond, 5*time.Second) }()

	// From the moment the drain starts, the first state change a fresh
	// connection observes must be 503 — never a refused connection.
	var saw503At time.Time
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		code, err := get()
		if err != nil {
			break // listener closed
		}
		if code == http.StatusServiceUnavailable {
			saw503At = time.Now()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if saw503At.IsZero() {
		t.Fatal("listener closed before /readyz was ever observed as 503: drain ordering is broken")
	}

	if err := <-done; err != nil {
		t.Fatalf("DrainOrdered: %v", err)
	}
	closed := closedAt.Load()
	if closed == 0 {
		t.Fatal("listener never closed")
	}
	if got := time.Unix(0, closed); !saw503At.Before(got) {
		t.Fatalf("first 503 observed at %v, listener closed at %v: want 503 strictly first", saw503At, got)
	}

	// After the drain completes, new connections must be refused.
	if conn, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		conn.Close()
		t.Fatal("listener still accepting after DrainOrdered returned")
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	probe.CloseIdleConnections()
}
