package fault

import "github.com/why-not-xai/emigre/internal/obs"

// RegisterMetrics exports the failpoint counters to reg:
//
//	emigre_fault_armed_sites              — sites currently armed
//	emigre_fault_hits_total{site=...}     — Hit calls observed while armed
//	emigre_fault_injections_total{site=...} — actions actually fired
//
// One series pair is created per site registered at call time; sites
// register at package init of their host packages, so a server calling
// this during startup sees the full catalog. The series exist from the
// start (value 0), so a metrics scrape can assert their presence before
// any fault fires.
func RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("emigre_fault_armed_sites",
		"Number of failpoint sites currently armed.", ArmedCount)
	for _, s := range Sites() {
		site := s
		reg.CounterFunc("emigre_fault_hits_total",
			"Failpoint Hit calls observed while the site was armed.",
			site.Hits, obs.L("site", site.Name()))
		reg.CounterFunc("emigre_fault_injections_total",
			"Failpoint actions fired (errors, sleeps, panics injected).",
			site.Injections, obs.L("site", site.Name()))
	}
}
