// Package fault is a stdlib-only failpoint substrate: named injection
// sites planted at the critical seams of the serving stack (cache
// fills, PPR iteration loops, pipeline workers, handler I/O) that cost
// a single atomic load when disarmed and can be armed — by env var,
// flag, or a debug-listener HTTP API — to inject errors, added latency,
// or panics, either every time, probabilistically, or for a bounded
// number of firings.
//
// The package exists so resilience is a testable property instead of a
// hope: the chaos suite arms schedules of sites and asserts the stack's
// invariants (no deadlock, no cache poisoning, well-formed degraded
// answers, client convergence) under -race, and CI boots the real
// server with a failpoint schedule and drives the real client through
// it.
//
// # Sites
//
// A site is registered once, at package init of the code that hosts it:
//
//	var fillSite = fault.Register("pprcache.fill")
//
// and consulted on the hot path:
//
//	if err := fillSite.Hit(ctx); err != nil { return err }
//
// While no site in the process is armed, Hit is one atomic load of a
// package-global counter — the same cost for every site, regardless of
// how many are registered. Site names must be unique string literals;
// the emigre-vet faultsite analyzer enforces both properties.
//
// # Schedules
//
// A schedule is a semicolon-separated list of site=action entries:
//
//	pprcache.fill=error(injected fill)%0.3;ppr.forward.loop=sleep(2ms);server.response.write=error(io)*2
//
// Actions are error(msg), sleep(duration), and panic(msg); the msg and
// duration arguments are optional. The *N suffix fires the action N
// times and then disarms the site; %p (0 < p ≤ 1) fires it with
// probability p on each hit. "off" disarms a site. Apply installs a
// schedule, DisarmAll clears every site.
package fault

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel wrapped by every error a failpoint
// injects, so tests and callers can tell injected failures from real
// ones with errors.Is(err, fault.ErrInjected).
var ErrInjected = errors.New("fault: injected failure")

// InjectedError is the concrete error returned by an armed error-action
// site.
type InjectedError struct {
	// Site is the name of the failpoint that fired.
	Site string
	// Msg is the operator-supplied message from the schedule entry.
	Msg string
}

// Error implements error.
func (e *InjectedError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("fault: injected failure at site %q", e.Site)
	}
	return fmt.Sprintf("fault: injected failure at site %q: %s", e.Site, e.Msg)
}

// Unwrap exposes ErrInjected to errors.Is.
func (e *InjectedError) Unwrap() error { return ErrInjected }

// kind is the action a rule performs when it fires.
type kind uint8

const (
	kindError kind = iota
	kindSleep
	kindPanic
)

// rule is one armed action. Immutable after installation except for the
// remaining counter; a site swaps whole rules atomically.
type rule struct {
	kind  kind
	msg   string
	delay time.Duration
	// prob is the per-hit firing probability; 1 fires on every hit.
	prob float64
	// remaining, when non-nil, bounds the number of firings: it counts
	// down on each firing and the site disarms when it reaches zero.
	remaining *atomic.Int64
	// total is the initial remaining value, kept for Status rendering.
	total int64
}

// String reconstructs the schedule syntax of the rule.
func (r *rule) String() string {
	var b strings.Builder
	switch r.kind {
	case kindSleep:
		b.WriteString("sleep(")
		b.WriteString(r.delay.String())
		b.WriteString(")")
	case kindPanic:
		b.WriteString("panic")
		if r.msg != "" {
			b.WriteString("(" + r.msg + ")")
		}
	default:
		b.WriteString("error")
		if r.msg != "" {
			b.WriteString("(" + r.msg + ")")
		}
	}
	if r.remaining != nil {
		left := r.remaining.Load()
		if left < 0 {
			left = 0
		}
		fmt.Fprintf(&b, "*%d", left)
	}
	if r.prob < 1 {
		fmt.Fprintf(&b, "%%%g", r.prob)
	}
	return b.String()
}

// Site is one named failpoint. Obtain sites with Register at package
// init; the zero value is not usable.
type Site struct {
	name string
	rule atomic.Pointer[rule]
	// hits counts Hit calls observed while the site was armed (disarmed
	// hits are not counted — the disabled path must stay load-only).
	hits atomic.Int64
	// injections counts hits on which the action actually fired (after
	// the probability and one-shot filters).
	injections atomic.Int64
}

// armedSites counts armed sites process-wide. It is the fast gate: Hit
// on any site returns immediately while it is zero, so a production
// process with no schedule applied pays one shared atomic load per
// planted site visit.
var armedSites atomic.Int64

// registry holds every registered site by name.
var registry = struct {
	mu    sync.Mutex
	sites map[string]*Site
}{sites: map[string]*Site{}}

// rng drives probabilistic rules. Seeded deterministically so chaos
// schedules replay; SetSeed reseeds for independent runs.
var rng = struct {
	mu sync.Mutex
	r  *rand.Rand
}{r: rand.New(rand.NewSource(1))}

// SetSeed reseeds the probabilistic-rule RNG. Schedules with %p rules
// replay deterministically for a fixed seed and hit order.
func SetSeed(seed int64) {
	rng.mu.Lock()
	rng.r = rand.New(rand.NewSource(seed))
	rng.mu.Unlock()
}

func rngFloat() float64 {
	rng.mu.Lock()
	f := rng.r.Float64()
	rng.mu.Unlock()
	return f
}

// Register creates and registers a failpoint site. It must be called
// once per name, from a package-level var initializer, with a string
// literal name (the emigre-vet faultsite analyzer enforces this); a
// duplicate or empty name panics.
func Register(name string) *Site {
	if name == "" {
		panic("fault: Register with empty site name")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.sites[name]; dup {
		panic(fmt.Sprintf("fault: duplicate site name %q", name))
	}
	s := &Site{name: name}
	registry.sites[name] = s
	return s
}

// Lookup returns the site registered under name, or nil.
func Lookup(name string) *Site {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return registry.sites[name]
}

// Sites returns every registered site, sorted by name.
func Sites() []*Site {
	registry.mu.Lock()
	out := make([]*Site, 0, len(registry.sites))
	for _, s := range registry.sites {
		out = append(out, s)
	}
	registry.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

// Armed reports whether the site currently has a rule installed. Health
// marker sites (server.health.*) are never Hit; /readyz consults Armed
// instead.
func (s *Site) Armed() bool { return s.rule.Load() != nil }

// Hits returns the number of Hit calls observed while armed.
func (s *Site) Hits() int64 { return s.hits.Load() }

// Injections returns the number of times the site's action fired.
func (s *Site) Injections() int64 { return s.injections.Load() }

// Hit consults the failpoint. Disarmed — the production state — it is
// one atomic load of the process-wide armed counter. Armed, it applies
// the rule: an error action returns an *InjectedError; a sleep action
// blocks for the configured delay (or until ctx is done, returning
// ctx.Err()); a panic action panics. ctx may be nil for sites without
// a request context (sleep then blocks unconditionally).
func (s *Site) Hit(ctx context.Context) error {
	if armedSites.Load() == 0 {
		return nil
	}
	return s.hitSlow(ctx)
}

func (s *Site) hitSlow(ctx context.Context) error {
	r := s.rule.Load()
	if r == nil {
		return nil
	}
	s.hits.Add(1)
	if r.prob < 1 && rngFloat() >= r.prob {
		return nil
	}
	if r.remaining != nil {
		left := r.remaining.Add(-1)
		if left < 0 {
			// Raced past exhaustion: another hit consumed the last shot.
			return nil
		}
		if left == 0 {
			s.disarmRule(r)
		}
	}
	s.injections.Add(1)
	switch r.kind {
	case kindSleep:
		if ctx == nil {
			time.Sleep(r.delay)
			return nil
		}
		t := time.NewTimer(r.delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case kindPanic:
		panic(fmt.Sprintf("fault: injected panic at site %q: %s", s.name, r.msg))
	default:
		return &InjectedError{Site: s.name, Msg: r.msg}
	}
}

// arm installs a rule, replacing any previous one.
func (s *Site) arm(r *rule) {
	if s.rule.Swap(r) == nil {
		armedSites.Add(1)
	}
}

// Disarm removes the site's rule, if any.
func (s *Site) Disarm() {
	if s.rule.Swap(nil) != nil {
		armedSites.Add(-1)
	}
}

// disarmRule removes exactly the given rule (one-shot exhaustion); a
// concurrently installed replacement rule is left alone.
func (s *Site) disarmRule(r *rule) {
	if s.rule.CompareAndSwap(r, nil) {
		armedSites.Add(-1)
	}
}

// DisarmAll clears every site's rule. Chaos tests defer it so schedules
// never leak across tests.
func DisarmAll() {
	for _, s := range Sites() {
		s.Disarm()
	}
}

// ArmedCount returns the number of currently armed sites.
func ArmedCount() int64 { return armedSites.Load() }

// Status is one site's externally visible state, rendered by the HTTP
// handler and List.
type Status struct {
	Site       string `json:"site"`
	Armed      bool   `json:"armed"`
	Action     string `json:"action,omitempty"`
	Hits       int64  `json:"hits"`
	Injections int64  `json:"injections"`
}

// List returns the status of every registered site, sorted by name.
func List() []Status {
	sites := Sites()
	out := make([]Status, 0, len(sites))
	for _, s := range sites {
		st := Status{Site: s.name, Hits: s.hits.Load(), Injections: s.injections.Load()}
		if r := s.rule.Load(); r != nil {
			st.Armed = true
			st.Action = r.String()
		}
		out = append(out, st)
	}
	return out
}

// Apply installs a failpoint schedule: a semicolon-separated list of
// site=action entries (see the package comment for the grammar). It is
// all-or-nothing: on any parse or unknown-site error, no site is
// changed.
func Apply(spec string) error {
	type armEntry struct {
		site *Site
		r    *rule // nil = disarm
	}
	var entries []armEntry
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, action, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("fault: entry %q: want site=action", part)
		}
		name = strings.TrimSpace(name)
		site := Lookup(name)
		if site == nil {
			return fmt.Errorf("fault: unknown site %q (known: %s)", name, strings.Join(knownNames(), ", "))
		}
		action = strings.TrimSpace(action)
		if action == "off" {
			entries = append(entries, armEntry{site: site})
			continue
		}
		r, err := parseRule(action)
		if err != nil {
			return fmt.Errorf("fault: site %q: %w", name, err)
		}
		entries = append(entries, armEntry{site: site, r: r})
	}
	for _, e := range entries {
		if e.r == nil {
			e.site.Disarm()
		} else {
			e.site.arm(e.r)
		}
	}
	return nil
}

func knownNames() []string {
	sites := Sites()
	names := make([]string, len(sites))
	for i, s := range sites {
		names[i] = s.name
	}
	return names
}

// parseRule parses one action: verb[(arg)] with optional *N and %p
// suffixes in either order.
func parseRule(s string) (*rule, error) {
	r := &rule{prob: 1}

	// Suffix modifiers bind after the optional (arg), so scan them off
	// the tail. The arg itself may contain neither '*' nor '%' outside
	// parentheses; inside parentheses they are part of the message.
	body := s
	if i := strings.LastIndexByte(body, ')'); i >= 0 {
		suffix := body[i+1:]
		body = body[:i+1]
		if err := parseModifiers(r, suffix); err != nil {
			return nil, err
		}
	} else {
		// No parenthesized arg: modifiers start at the first '*' or '%'.
		if i := strings.IndexAny(body, "*%"); i >= 0 {
			if err := parseModifiers(r, body[i:]); err != nil {
				return nil, err
			}
			body = body[:i]
		}
	}

	verb, arg := body, ""
	if i := strings.IndexByte(body, '('); i >= 0 {
		if !strings.HasSuffix(body, ")") {
			return nil, fmt.Errorf("unbalanced parentheses in action %q", s)
		}
		verb, arg = body[:i], body[i+1:len(body)-1]
	}
	switch strings.TrimSpace(verb) {
	case "error":
		r.kind = kindError
		r.msg = arg
	case "panic":
		r.kind = kindPanic
		r.msg = arg
	case "sleep":
		d, err := time.ParseDuration(strings.TrimSpace(arg))
		if err != nil {
			return nil, fmt.Errorf("sleep action needs a duration: %w", err)
		}
		if d < 0 {
			return nil, fmt.Errorf("sleep action needs a non-negative duration, got %v", d)
		}
		r.kind = kindSleep
		r.delay = d
	default:
		return nil, fmt.Errorf("unknown action %q (want error, sleep, panic, or off)", verb)
	}
	return r, nil
}

// parseModifiers applies a "*N" and/or "%p" suffix string to r.
func parseModifiers(r *rule, s string) error {
	for s != "" {
		rest := s[1:]
		end := strings.IndexAny(rest, "*%")
		if end < 0 {
			end = len(rest)
		}
		val := strings.TrimSpace(rest[:end])
		switch s[0] {
		case '*':
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return fmt.Errorf("one-shot count %q: want a positive integer", val)
			}
			var c atomic.Int64
			c.Store(n)
			r.remaining = &c
			r.total = n
		case '%':
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p <= 0 || p > 1 {
				return fmt.Errorf("probability %q: want 0 < p <= 1", val)
			}
			r.prob = p
		default:
			return fmt.Errorf("unexpected modifier %q", s)
		}
		s = rest[end:]
	}
	return nil
}
