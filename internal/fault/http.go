package fault

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
)

// Handler returns the failpoint control endpoint, meant to be mounted
// on the server's private debug listener (never the public API):
//
//	GET    — JSON list of every site with armed state and counters
//	POST   — body is a schedule (site=action;...) applied via Apply;
//	         400 with the parse error on a malformed schedule
//	DELETE — disarm every site
//
// The handler mutates process-global state by design: it is the
// test-and-operations lever for chaos experiments against a running
// server.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, List())
		case http.MethodPost:
			body, err := io.ReadAll(io.LimitReader(r.Body, 64<<10))
			if err != nil {
				http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
				return
			}
			spec := strings.TrimSpace(string(body))
			if err := Apply(spec); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			writeJSON(w, http.StatusOK, List())
		case http.MethodDelete:
			DisarmAll()
			writeJSON(w, http.StatusOK, List())
		default:
			w.Header().Set("Allow", "GET, POST, DELETE")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
