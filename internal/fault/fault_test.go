package fault

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// Test sites are registered once at package init — Register panics on
// duplicates, so tests share this fixed catalog and arm/disarm per test.
var (
	siteErr   = Register("test.err")
	siteSleep = Register("test.sleep")
	sitePanic = Register("test.panic")
	siteShots = Register("test.shots")
	siteProb  = Register("test.prob")
	siteRace  = Register("test.race")
)

func TestDisarmedHitIsNil(t *testing.T) {
	DisarmAll()
	if err := siteErr.Hit(context.Background()); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
	if err := siteErr.Hit(nil); err != nil {
		t.Fatalf("disarmed Hit with nil ctx returned %v", err)
	}
	if siteErr.Hits() != 0 {
		t.Fatalf("disarmed hits were counted: %d", siteErr.Hits())
	}
}

func TestErrorAction(t *testing.T) {
	defer DisarmAll()
	if err := Apply("test.err=error(boom)"); err != nil {
		t.Fatal(err)
	}
	err := siteErr.Hit(context.Background())
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("armed Hit returned %v, want ErrInjected", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Site != "test.err" || ie.Msg != "boom" {
		t.Fatalf("injected error = %#v", err)
	}
	if !strings.Contains(err.Error(), "test.err") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error text %q lacks site or message", err)
	}
	if siteErr.Injections() == 0 {
		t.Fatal("injection was not counted")
	}
}

func TestSleepActionHonorsContext(t *testing.T) {
	defer DisarmAll()
	if err := Apply("test.sleep=sleep(10s)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := siteSleep.Hit(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("interrupted sleep returned %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("sleep ignored the context")
	}

	// A short sleep completes and injects no error.
	if err := Apply("test.sleep=sleep(1ms)"); err != nil {
		t.Fatal(err)
	}
	if err := siteSleep.Hit(context.Background()); err != nil {
		t.Fatalf("completed sleep returned %v", err)
	}
}

func TestPanicAction(t *testing.T) {
	defer DisarmAll()
	if err := Apply("test.panic=panic(kaboom)"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("armed panic site did not panic")
		}
		if s, _ := p.(string); !strings.Contains(s, "test.panic") || !strings.Contains(s, "kaboom") {
			t.Fatalf("panic value %v lacks site or message", p)
		}
	}()
	_ = sitePanic.Hit(context.Background())
}

func TestOneShotDisarmsAfterN(t *testing.T) {
	defer DisarmAll()
	if err := Apply("test.shots=error(once)*2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := siteShots.Hit(context.Background()); !errors.Is(err, ErrInjected) {
			t.Fatalf("shot %d: got %v, want injection", i, err)
		}
	}
	if siteShots.Armed() {
		t.Fatal("site still armed after shots exhausted")
	}
	if err := siteShots.Hit(context.Background()); err != nil {
		t.Fatalf("exhausted site injected: %v", err)
	}
	if n := siteShots.Injections(); n != 2 {
		t.Fatalf("injections = %d, want 2", n)
	}
}

func TestProbabilisticFiresApproximately(t *testing.T) {
	defer DisarmAll()
	SetSeed(42)
	base := siteProb.Injections()
	if err := Apply("test.prob=error(maybe)%0.3"); err != nil {
		t.Fatal(err)
	}
	const hits = 2000
	injected := 0
	for i := 0; i < hits; i++ {
		if err := siteProb.Hit(context.Background()); err != nil {
			injected++
		}
	}
	if injected == 0 || injected == hits {
		t.Fatalf("p=0.3 fired %d/%d times", injected, hits)
	}
	if got := siteProb.Injections() - base; got != int64(injected) {
		t.Fatalf("injection counter %d != observed %d", got, injected)
	}
	// Loose bound: binomial(2000, 0.3) is within ±150 of 600 with
	// overwhelming probability, and the RNG is seeded.
	if injected < 450 || injected > 750 {
		t.Fatalf("p=0.3 fired %d/%d times, far from expectation", injected, hits)
	}
}

func TestApplyIsAtomic(t *testing.T) {
	defer DisarmAll()
	err := Apply("test.err=error(ok);test.sleep=slep(1ms)")
	if err == nil {
		t.Fatal("malformed schedule applied")
	}
	if siteErr.Armed() {
		t.Fatal("partial schedule armed a site before the parse error")
	}
	if err := Apply("no.such.site=error"); err == nil || !strings.Contains(err.Error(), "unknown site") {
		t.Fatalf("unknown site error = %v", err)
	}
}

func TestApplyOffAndDisarmAll(t *testing.T) {
	if err := Apply("test.err=error;test.sleep=sleep(1ms)"); err != nil {
		t.Fatal(err)
	}
	if ArmedCount() < 2 {
		t.Fatalf("armed count = %d, want >= 2", ArmedCount())
	}
	if err := Apply("test.err=off"); err != nil {
		t.Fatal(err)
	}
	if siteErr.Armed() {
		t.Fatal("off entry did not disarm")
	}
	DisarmAll()
	if ArmedCount() != 0 {
		t.Fatalf("armed count after DisarmAll = %d", ArmedCount())
	}
}

func TestParseRuleRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"explode", "sleep", "sleep(xyz)", "sleep(-1s)",
		"error*0", "error*-1", "error%0", "error%1.5", "error%x",
		"error(unbalanced",
	} {
		if _, err := parseRule(bad); err == nil {
			t.Errorf("parseRule(%q) accepted", bad)
		}
	}
	r, err := parseRule("error(a*b%c)*3%0.5")
	if err != nil {
		t.Fatalf("modifiers after parenthesized message: %v", err)
	}
	if r.msg != "a*b%c" || r.total != 3 || r.prob != 0.5 {
		t.Fatalf("parsed rule = %+v", r)
	}
}

func TestConcurrentHitsRaceFree(t *testing.T) {
	defer DisarmAll()
	if err := Apply("test.race=error(race)*64%0.5"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = siteRace.Hit(context.Background())
			}
		}()
	}
	wg.Wait()
	if n := siteRace.Injections(); n > 64 {
		t.Fatalf("one-shot bound exceeded: %d injections", n)
	}
}

func TestHTTPHandler(t *testing.T) {
	defer DisarmAll()
	h := Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/", strings.NewReader("test.err=error(via http)")))
	if rec.Code != 200 {
		t.Fatalf("POST schedule: %d %s", rec.Code, rec.Body)
	}
	if !siteErr.Armed() {
		t.Fatal("POST did not arm the site")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	var got []Status
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("GET body: %v", err)
	}
	found := false
	for _, st := range got {
		if st.Site == "test.err" && st.Armed && strings.Contains(st.Action, "error") {
			found = true
		}
	}
	if !found {
		t.Fatalf("GET listing missing armed site: %s", rec.Body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/", strings.NewReader("bogus")))
	if rec.Code != 400 {
		t.Fatalf("malformed schedule: %d, want 400", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("DELETE", "/", nil))
	if rec.Code != 200 || siteErr.Armed() {
		t.Fatalf("DELETE did not disarm (code %d armed %v)", rec.Code, siteErr.Armed())
	}
}

// BenchmarkHitDisarmed measures the disabled-failpoint cost: one atomic
// load of the process-wide armed counter. This is the per-site price the
// explain hot path pays in production.
func BenchmarkHitDisarmed(b *testing.B) {
	DisarmAll()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := siteErr.Hit(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHitGateOpen measures the cost when some *other* site is
// armed: the global gate is open, so every site additionally loads its
// own rule pointer and finds it nil.
func BenchmarkHitGateOpen(b *testing.B) {
	DisarmAll()
	if err := Apply("test.sleep=sleep(1ms)"); err != nil {
		b.Fatal(err)
	}
	defer DisarmAll()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := siteErr.Hit(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
