package lint

import (
	"go/ast"
	"go/types"
)

// parentMap records the parent of every AST node of a file, letting
// analyzers climb from a flagged node to its enclosing loops and
// function declarations without a full CFG.
type parentMap map[ast.Node]ast.Node

func buildParents(file *ast.File) parentMap {
	parents := parentMap{}
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// enclosingFuncName returns the name of the innermost *declared*
// function containing n ("" inside a function literal or at top
// level). Analyzers that approve specific routing helpers climb
// through closures: a closure inside an approved helper is part of the
// helper.
func enclosingFuncName(parents parentMap, n ast.Node) string {
	for p := parents[n]; p != nil; p = parents[p] {
		if fd, ok := p.(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// typeOf is Info.TypeOf, tolerating missing entries (nil on a tree
// with type errors).
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if info == nil {
		return nil
	}
	return info.TypeOf(e)
}

// rootIdent strips selectors, indexing, stars and parens off an
// expression and returns the base identifier ("g" for g.out[v]),
// nil when the base is not a plain identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// firstField returns the name of the field selected directly on the
// root identifier ("out" for g.out[v], "version" for g.version), ""
// when the expression is the bare identifier.
func firstField(e ast.Expr) string {
	field := ""
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return field
		case *ast.SelectorExpr:
			field = x.Sel.Name
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return ""
		}
	}
}

// namedOf unwraps pointers and returns the named type of t, nil when
// t is not (a pointer to) a named type.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// typePkgName returns the name of the package the (possibly pointer)
// named type t was declared in, "" for unnamed or universe types.
func typePkgName(t types.Type) string {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Name()
}
