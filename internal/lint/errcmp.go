package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrCmp flags `==`/`!=` between error values: sentinel errors in this
// codebase are routinely wrapped (fmt.Errorf("%w", ...), CanceledError,
// errors.Join), so identity comparison silently stops matching the
// moment a call site adds context. errors.Is is the only comparison
// that survives wrapping; nil checks are exempt.
func ErrCmp() *Analyzer {
	a := &Analyzer{
		Name: "errcmp",
		Doc:  "errors must be compared with errors.Is, not == / !=",
	}
	errType := types.Universe.Lookup("error").Type()
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				cmp, ok := n.(*ast.BinaryExpr)
				if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
					return true
				}
				x := info.Types[cmp.X]
				y := info.Types[cmp.Y]
				if x.IsNil() || y.IsNil() {
					return true
				}
				if (x.Type != nil && types.Identical(x.Type, errType)) ||
					(y.Type != nil && types.Identical(y.Type, errType)) {
					pass.Reportf(cmp.OpPos, "error compared with %s; use errors.Is so wrapped sentinels still match", cmp.Op)
				}
				return true
			})
		}
	}
	return a
}
