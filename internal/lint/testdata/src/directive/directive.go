// Fixture for the //lint:allow directive machinery. Expectations for
// this file are hard-coded in analyzers_test.go (a trailing comment on
// a directive line would be parsed as part of the directive's reason,
// so `// want` markers cannot be used here).
package directive

// bad: an unknown analyzer name is reported, not silently ignored.
func unknown(x, y float64) bool {
	//lint:allow nosuchcheck because typos happen
	return x == y
}

// bad: a reasonless suppression is itself a violation and suppresses
// nothing.
func reasonless(x, y float64) bool {
	//lint:allow floateq
	return x == y
}

// good: a well-formed directive suppresses its own and the next line.
func allowed(x, y float64) bool {
	//lint:allow floateq exact sentinel documented
	return x == y
}

// good: a directive in the doc comment approves the whole function.
//
//lint:allow floateq helper spells out exact comparisons
func helper(x, y, z float64) bool {
	if x == y {
		return true
	}
	return y == z
}
