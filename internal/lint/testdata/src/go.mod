module fixture.example/m

go 1.24.0
