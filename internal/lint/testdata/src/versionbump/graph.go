// Fixture for the versionbump analyzer: Graph and Overlay are stamped
// types (they declare version / digest fields), so their exported
// mutating methods must touch the stamp on every return path.
package hin

// Graph is a stamped type: it carries a version field.
type Graph struct {
	version int
	nodes   int
	edges   map[int]int
}

func (g *Graph) bumpVersion() { g.version++ }

// good: mutation followed by a bump.
func (g *Graph) AddNode() int {
	g.nodes++
	g.bumpVersion()
	return g.nodes
}

// bad: mutates and falls off the end without bumping.
func (g *Graph) SetNodes(n int) {
	g.nodes = n
} // want "version stamp"

// bad: the early-return path escapes the mutation unbumped.
func (g *Graph) Trim(n int) bool {
	g.nodes = n
	if n == 0 {
		return false // want "without touching"
	}
	g.bumpVersion()
	return true
}

// good: bumps transitively via AddNode.
func (g *Graph) AddTwo() {
	g.AddNode()
	g.AddNode()
}

// good: a deferred bump covers every return.
func (g *Graph) Clear() {
	defer g.bumpVersion()
	g.edges = nil
}

// good: read-only methods carry no obligation.
func (g *Graph) NumNodes() int { return g.nodes }

// good: unexported mutators are their exported callers' problem.
func (g *Graph) reset() { g.nodes = 0 }

// bad: delete() on a receiver map is a mutation.
func (g *Graph) RemoveEdge(k int) {
	delete(g.edges, k)
} // want "version stamp"

// Overlay is stamped through its digest field.
type Overlay struct {
	digest uint64
	adds   []int
}

func (o *Overlay) bumpDigest() { o.digest ^= 1 }

// bad: one branch bumps, the other escapes — the stamp counts as
// touched only when every surviving path touched it.
func (o *Overlay) Push(v int) {
	o.adds = append(o.adds, v)
	if v > 0 {
		o.bumpDigest()
	}
} // want "version stamp"

// good: both branches end bumped.
func (o *Overlay) PushBoth(v int) {
	o.adds = append(o.adds, v)
	if v > 0 {
		o.bumpDigest()
	} else {
		o.digest++
	}
}
