// Fixture for the lockorder analyzer: acquisition-order cycles over
// struct-owned mutexes, RWMutex read/write aliasing onto one lock
// node, and held reacquisition through the call graph.
package lockorder

import "sync"

// Pair owns the two mutexes of the classic AB/BA cycle.
type Pair struct {
	a  sync.Mutex
	b  sync.Mutex
	ok sync.Mutex
}

// AThenB establishes a→b.
func (p *Pair) AThenB() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock() // want "lock ordering cycle"
	defer p.b.Unlock()
}

// BThenA establishes b→a: together with AThenB, a cycle.
func (p *Pair) BThenA() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock() // want "lock ordering cycle"
	defer p.a.Unlock()
}

// good: sequential critical sections impose no order.
func (p *Pair) Sequential() {
	p.a.Lock()
	p.a.Unlock()
	p.b.Lock()
	p.b.Unlock()
}

// good: a consistent one-way order (ok→a here, and nothing ever
// acquires ok while holding a).
func (p *Pair) Consistent() {
	p.ok.Lock()
	defer p.ok.Unlock()
	p.a.Lock()
	p.a.Unlock()
}

// Tree aliases an RWMutex's read and write sides onto one lock node.
type Tree struct {
	rw   sync.RWMutex
	meta sync.Mutex
}

// ReadThenMeta takes the read side of rw, then meta: rw→meta.
func (t *Tree) ReadThenMeta() {
	t.rw.RLock()
	defer t.rw.RUnlock()
	t.meta.Lock() // want "lock ordering cycle"
	t.meta.Unlock()
}

// MetaThenWrite takes meta, then the *write* side of rw — the RLock in
// ReadThenMeta aliases to the same node, closing the cycle.
func (t *Tree) MetaThenWrite() {
	t.meta.Lock()
	defer t.meta.Unlock()
	t.rw.Lock() // want "lock ordering cycle"
	t.rw.Unlock()
}

// Counter reacquires its own lock through a call chain.
type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// bad: bump relocks c.mu while Incr still holds it.
func (c *Counter) Incr() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump() // want "self-deadlock"
}

// bad: direct double acquisition.
func (c *Counter) Twice() {
	c.mu.Lock()
	c.mu.Lock() // want "acquired while already held"
	c.mu.Unlock()
	c.mu.Unlock()
}

// good: the helper runs after the critical section.
func (c *Counter) SafeIncr() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.bump()
}

// good: a goroutine body does not inherit the spawner's held set; its
// own acquisition is a fresh critical section, and the WaitGroup
// bounds its lifetime for goroleak.
func (c *Counter) Spawn() {
	var wg sync.WaitGroup
	c.mu.Lock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.bump()
	}()
	c.mu.Unlock()
	wg.Wait()
}

// Embedded promotes its mutex: s.Lock() resolves to the embedded
// sync.Mutex field.
type Embedded struct {
	sync.Mutex
	n int
}

func (e *Embedded) reset() {
	e.Lock()
	defer e.Unlock()
	e.n = 0
}

// bad: the promoted lock is reacquired through reset.
func (e *Embedded) Clear() {
	e.Lock()
	defer e.Unlock()
	e.reset() // want "self-deadlock"
}

// good: a reasoned allow for a reviewed ordering.
func (p *Pair) Reviewed() {
	p.b.Lock()
	defer p.b.Unlock()
	//lint:allow lockorder AThenB is never called concurrently with this teardown path
	p.a.Lock()
	p.a.Unlock()
}
