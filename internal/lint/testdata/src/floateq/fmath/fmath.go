// Package fmath shares its name with the approved helper package:
// floateq skips any package of that name wholesale, so the inline
// comparisons below must produce no diagnostics.
package fmath

func Eq(a, b float64) bool { return a == b }

func Ne(a, b float64) bool { return a != b }
