// Fixture for the floateq analyzer.
package floateq

// bad: raw float64 equality.
func eq(a, b float64) bool { return a == b } // want "fmath"

// bad: float32 inequality.
func ne(a, b float32) bool { return a != b } // want "fmath"

// bad: comparison against an untyped constant is still a float
// comparison.
func zero(x float64) bool { return x == 0 } // want "fmath"

// good: ordering comparisons carry no equality hazard.
func less(a, b float64) bool { return a < b }

// good: integer equality.
func ieq(a, b int) bool { return a == b }

// good: a doc-comment directive approves the whole function.
//
//lint:allow floateq exact sentinel comparison documented here
func sentinel(x float64) bool { return x == -1 }
