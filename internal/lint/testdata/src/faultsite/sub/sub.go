// Package sub collides with a site registered in the parent fixture
// package: the duplicate check spans packages.
package sub

import "fixture.example/m/faultsite/fault"

var crossDup = fault.Register("engine.loop") // want "already registered"
