// Package faultsite exercises the faultsite analyzer: Register calls
// need unique string-literal names.
package faultsite

import "fixture.example/m/faultsite/fault"

// Good: unique string literals.
var okA = fault.Register("cache.fill")
var okB = fault.Register("engine.loop")

// Duplicate of okA's name.
var dupA = fault.Register("cache.fill") // want "already registered"

const derived = "engine." + "loop"

// Non-literal arguments defeat grepping for the site catalog.
var nonLit = fault.Register(derived) // want "must be a string literal"

func buildName(s string) string { return s }

var computed = fault.Register(buildName("x")) // want "must be a string literal"

var empty = fault.Register("") // want "must not be empty"
