// Package fault is a stub of the real failpoint registry: the analyzer
// matches calls by package name and selector, so only the signature
// matters.
package fault

// Site is a stub failpoint.
type Site struct{ name string }

// Register is the call the faultsite analyzer inspects.
func Register(name string) *Site { return &Site{name: name} }
