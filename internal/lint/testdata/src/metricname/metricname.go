// Package metricname exercises the metricname analyzer: obs registry
// constructors need unique string-literal family names.
package metricname

import "fixture.example/m/metricname/obs"

// Good: unique literals, one per family.
var okRuns = obs.Default().Counter("emigre_runs_total", "Runs.")
var okDepth = obs.Default().Gauge("emigre_queue_depth", "Depth.")

func init() {
	obs.Default().GaugeFunc("emigre_workers", "Workers.", func() int64 { return 1 })
}

// Good: per-label variants of one family through ONE call site.
func runsCounter(engine string) *obs.Counter {
	return obs.Default().Counter("emigre_engine_runs_total", "Runs by engine.",
		obs.L("engine", engine))
}

var byEngine = []*obs.Counter{
	runsCounter("forward"),
	runsCounter("reverse"),
}

// One literal inside a loop is still one call site.
var codes = func() map[int]*obs.Counter {
	m := map[int]*obs.Counter{}
	for _, c := range []int{200, 500, 503} {
		m[c] = obs.Default().Counter("emigre_codes_total", "By code.", obs.L("code", "x"))
	}
	return m
}()

// Duplicate of okRuns's family at a second call site.
var dupRuns = obs.Default().Counter("emigre_runs_total", "Runs.") // want "already minted"

const derived = "emigre_" + "derived_total"

// Non-literal names defeat grepping for the catalog.
var nonLit = obs.Default().Counter(derived, "Derived.") // want "must be a string literal"

func buildName(s string) string { return s }

var computed = obs.Default().Gauge(buildName("x"), "Computed.") // want "must be a string literal"

var empty = obs.Default().Counter("", "Empty.") // want "must not be empty"

// notObs has look-alike methods on a non-obs type: not flagged.
type notObs struct{}

func (notObs) Counter(name, help string) int { return 0 }

var unrelatedA = notObs{}.Counter("emigre_runs_total", "shadow")
var unrelatedB = notObs{}.Counter("emigre_runs_total", "shadow again")
