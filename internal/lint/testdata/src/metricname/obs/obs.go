// Package obs is a stub of the real metrics registry: the analyzer
// matches constructor calls by receiver type (obs.Registry) and
// selector, so only the signatures matter.
package obs

// Label is one metric label pair.
type Label struct{ K, V string }

// L builds a Label.
func L(k, v string) Label { return Label{k, v} }

// Counter, Gauge and Histogram are stub instruments.
type Counter struct{}
type Gauge struct{}
type Histogram struct{}

// Registry is the type the metricname analyzer keys on.
type Registry struct{}

// Default returns the process-global registry.
func Default() *Registry { return &Registry{} }

func (r *Registry) Counter(name, help string, labels ...Label) *Counter { return &Counter{} }
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge     { return &Gauge{} }
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return &Histogram{}
}
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {}
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label)   {}
