// Package sub collides with a family minted in the parent fixture
// package: the duplicate check spans packages.
package sub

import "fixture.example/m/metricname/obs"

var crossDup = obs.Default().Gauge("emigre_queue_depth", "Depth.") // want "already minted"
