// Fixture for the ctxpoll analyzer over the CHECK-pipeline shapes: the
// package is named emigre so the name-scoped analyzer applies to it,
// covering the worker/committer loops of the parallel evaluator.
package emigre

import "context"

type job struct{ ord int }

type done struct{ ord int }

// good: worker loops range over the jobs channel — they terminate with
// channel close, not via an unbounded `for`.
func worker(jobs <-chan job, results chan<- done) {
	for j := range jobs {
		results <- done{ord: j.ord}
	}
}

// good: the committer's drain loop carries a loop condition, so it is
// bounded by the channels it still owes a read to.
func commit(ctx context.Context, results chan done) int {
	n := 0
	for results != nil {
		select {
		case _, open := <-results:
			if !open {
				results = nil
				continue
			}
			n++
		case <-ctx.Done():
			return n
		}
	}
	return n
}

// good: an unbounded drain that polls the pipeline context each turn.
func drainPolled(ctx context.Context, results chan done) {
	for {
		if ctx.Err() != nil {
			return
		}
		select {
		case <-results:
		default:
			return
		}
	}
}

// good: a generator that stops through a ctx-aware select — the Done
// receive inside the select counts as the cancellation check.
func generate(ctx context.Context, jobs chan<- job) {
	ord := 0
	for {
		select {
		case jobs <- job{ord: ord}:
			ord++
		case <-ctx.Done():
			return
		}
	}
}

// bad: an unbounded result drain with no cancellation check hangs
// forever once the producers are gone.
func drainForever(results chan done) {
	for { // want "cancellation"
		<-results
	}
}
