// Fixture for the ctxpoll analyzer: the package is named ppr so the
// name-scoped analyzer applies. Trailing want-marker comments flag the
// lines expected to produce a diagnostic with the quoted substring.
package ppr

import "context"

func ctxErr(ctx context.Context) error { return ctx.Err() }

// bad: no cancellation check anywhere in the function.
func spin() int {
	n := 0
	for { // want "cancellation"
		n++
		if n > 1000000 {
			return n
		}
	}
}

// bad: a loop inside a function literal cannot rely on the enclosing
// function's polls.
func spinLit(ctx context.Context) func() {
	_ = ctx.Err()
	return func() {
		for { // want "cancellation"
		}
	}
}

// good: polls ctx.Err directly.
func pollDirect(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
}

// good: hands ctx to a helper, which polls on the loop's behalf.
func pollHelper(ctx context.Context) error {
	for {
		if err := ctxErr(ctx); err != nil {
			return err
		}
	}
}

// good: the inner unbounded loop is covered by the poll in the
// enclosing bounded loop (the Monte Carlo walk pattern).
func pollOuter(ctx context.Context, steps int) error {
	for i := 0; i < steps; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		for {
			if i%2 == 0 {
				break
			}
		}
	}
	return nil
}

type session struct{ ctx context.Context }

func (s *session) canceled() error { return s.ctx.Err() }

// good: a call to a `canceled` method counts as a poll.
func pollSession(s *session) {
	for {
		if s.canceled() != nil {
			return
		}
	}
}

// good: suppressed with a reasoned directive.
func enumerate(visit func() bool) {
	//lint:allow ctxpoll callers poll ctx in the visit callback
	for {
		if !visit() {
			return
		}
	}
}
