// Fixture caller package for the rawengine analyzer: named rec, one of
// the cache-routed packages.
package rec

import "fixture.example/m/rawengine/ppr"

type Recommender struct {
	engine ppr.Engine
}

// bad: computes a column bypassing the cache.
func (r *Recommender) Contributions(t int) ppr.Vector {
	return ppr.NewReversePush().ToTarget(t) // want "cache"
}

// bad: interface dispatch is still a raw engine call.
func (r *Recommender) Scores(u int) ppr.Vector {
	return r.engine.FromSource(u) // want "cache"
}

// good: the designated routing helper is the cache-miss compute path.
func (r *Recommender) reverseColumn(t int) ppr.Vector {
	return ppr.NewReversePush().ToTarget(t)
}

// good: callers route through the helper.
func (r *Recommender) Shares(t int) ppr.Vector {
	return r.reverseColumn(t)
}

// bad: fetching a base push state raw bypasses the result cache (and
// its vector-only upgrade path).
func (r *Recommender) BasePair(u int) *ppr.PushResult {
	return ppr.NewForwardPush().RunContext(u) // want "cache"
}

// bad: warm-starting outside the routing helper pairs the resume with
// whatever base happens to be at hand instead of the cached one.
func (r *Recommender) WarmScores(base *ppr.PushResult, rows []int) *ppr.PushResult {
	return ppr.NewForwardPush().UpdateForEdit(base, rows) // want "cache"
}

// good: the result-level routing helper leads the cache fill.
func (r *Recommender) ForwardResultContext(u int) *ppr.PushResult {
	return ppr.NewForwardPush().RunContext(u)
}

// good: the warm-start helper resumes from a cache-fetched base.
func (r *Recommender) WarmScoresContext(base *ppr.PushResult, rows []int) *ppr.PushResult {
	return ppr.NewForwardPush().UpdateForEdit(base, rows)
}
