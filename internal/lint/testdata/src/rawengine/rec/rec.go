// Fixture caller package for the rawengine analyzer: named rec, one of
// the cache-routed packages.
package rec

import "fixture.example/m/rawengine/ppr"

type Recommender struct {
	engine ppr.Engine
}

// bad: computes a column bypassing the cache.
func (r *Recommender) Contributions(t int) ppr.Vector {
	return ppr.NewReversePush().ToTarget(t) // want "cache"
}

// bad: interface dispatch is still a raw engine call.
func (r *Recommender) Scores(u int) ppr.Vector {
	return r.engine.FromSource(u) // want "cache"
}

// good: the designated routing helper is the cache-miss compute path.
func (r *Recommender) reverseColumn(t int) ppr.Vector {
	return ppr.NewReversePush().ToTarget(t)
}

// good: callers route through the helper.
func (r *Recommender) Shares(t int) ppr.Vector {
	return r.reverseColumn(t)
}
