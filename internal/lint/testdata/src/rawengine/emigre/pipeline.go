// Fixture caller package for the rawengine analyzer mirroring the CHECK
// pipeline: the package is named emigre — one of the cache-routed
// packages — so its speculative workers must not invoke engines raw.
package emigre

import "fixture.example/m/rawengine/ppr"

type session struct {
	rev *ppr.ReversePush
}

// bad: a pipeline worker computing its verdict straight off the engine
// bypasses cache identity (and the singleflight dedup under concurrent
// workers).
func (s *session) checkOnce(t int) ppr.Vector {
	return s.rev.ToTarget(t) // want "cache"
}

// good: the designated helper is the cache-miss compute path.
func (s *session) reverseColumn(t int) ppr.Vector {
	return s.rev.ToTarget(t)
}

// good: workers route every column through the helper.
func (s *session) worker(ts []int) []ppr.Vector {
	out := make([]ppr.Vector, 0, len(ts))
	for _, t := range ts {
		out = append(out, s.reverseColumn(t))
	}
	return out
}

// bad: a speculative worker warm-starting its own delta check straight
// off the engine sidesteps the cached base pair the session fetched.
func (s *session) deltaCheck(base *ppr.PushResult, rows []int) *ppr.PushResult {
	return ppr.NewForwardPush().UpdateForEdit(base, rows) // want "cache"
}
