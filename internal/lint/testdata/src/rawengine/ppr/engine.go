// Fixture engine package for the rawengine analyzer: the package is
// named ppr so methods on its types count as engine entry points.
package ppr

type Vector []float64

type ReversePush struct{}

func NewReversePush() *ReversePush { return &ReversePush{} }

func (*ReversePush) ToTarget(t int) Vector { return nil }

type Engine interface {
	FromSource(s int) Vector
}

type PushResult struct {
	Estimates Vector
	Residuals Vector
}

type ForwardPush struct{}

func NewForwardPush() *ForwardPush { return &ForwardPush{} }

func (*ForwardPush) RunContext(s int) *PushResult { return nil }

func (*ForwardPush) UpdateForEdit(base *PushResult, rows []int) *PushResult { return nil }
