// Package sub proves atomicmix is whole-program: the atomic field is
// declared in the parent package, the plain access happens here.
package sub

import "fixture.example/m/atomicmix"

// bad: plain write to a wrapper-typed field of another package.
func Reset(e *atomicmix.Exported) {
	e.Total.Store(0) // good: method call
	v := e.Total     // want "atomic type"
	_ = v
}
