// Fixture for the atomicmix analyzer: a field accessed atomically
// anywhere must be accessed atomically everywhere (outside its
// constructor).
package atomicmix

import (
	"sync/atomic"
)

// Stats mixes the two atomic styles the analyzer tracks: hits is a
// wrapper type, plain is an int64 driven through sync/atomic calls.
type Stats struct {
	hits  atomic.Int64
	plain int64
	cold  int64 // never touched atomically: free to access plainly
}

// Exported is a wrapper-typed field visible to other packages — the
// cross-package plain access lives in ./sub.
type Exported struct {
	Total atomic.Int64
}

// NewStats is a constructor: plain initialization is allowed here.
func NewStats() *Stats {
	s := &Stats{}
	s.plain = 0
	return s
}

// good: wrapper methods and method values.
func (s *Stats) Record() {
	s.hits.Add(1)
	s.plain = 7 // want "plain access to plain"
}

// good: handing the wrapper around by pointer keeps accesses atomic.
func (s *Stats) HitCounter() *atomic.Int64 { return &s.hits }

// good: a method value as a metrics callback.
func (s *Stats) LoadFunc() func() int64 { return s.hits.Load }

// bad: copying the wrapper value smuggles out a non-atomic snapshot.
func (s *Stats) Snapshot() atomic.Int64 {
	return s.hits // want "atomic type"
}

// good: the sync/atomic call sites that make plain an atomic field.
func (s *Stats) Bump() {
	atomic.AddInt64(&s.plain, 1)
}

// good: atomic read.
func (s *Stats) Plain() int64 { return atomic.LoadInt64(&s.plain) }

// bad: plain read of an atomically-written field.
func (s *Stats) Racy() int64 {
	return s.plain // want "mixing atomic and plain"
}

// bad: taking the address for a non-atomic callee launders the field
// into plain access.
func (s *Stats) Alias() *int64 {
	return &s.plain // want "mixing atomic and plain"
}

// good: cold was never accessed atomically, so plain access is fine.
func (s *Stats) Cold() int64 {
	s.cold++
	return s.cold
}

// counter is a package-level variable driven through sync/atomic.
var counter int64

func BumpCounter() { atomic.AddInt64(&counter, 1) }

// bad: package-level mixing.
func ReadCounter() int64 {
	return counter // want "mixing atomic and plain"
}

// good: an allow directive with a reason suppresses a justified site.
func (s *Stats) Audited() int64 {
	//lint:allow atomicmix single-threaded teardown path, workers joined above
	return s.plain
}
