// Fixture for the goroleak analyzer: goroutines must carry static
// bounded-lifetime evidence (a WaitGroup signal, a context poll, or a
// reasoned allow directive).
package goroleak

import (
	"context"
	"sync"
)

func work(ctx context.Context) error { return ctx.Err() }

func fire() {}

// bad: nothing bounds the loop's lifetime.
func Leaked() {
	go func() { // want "without bounded-lifetime evidence"
		for {
			fire()
		}
	}()
}

// bad: a named call receiving no context is just as opaque.
func LeakedNamed() {
	go fire() // want "without bounded-lifetime evidence"
}

// good: the worker signals a WaitGroup some joiner waits on.
func BoundedByWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fire()
	}()
	wg.Wait()
}

// good: the closer's lifetime is the workers' lifetimes.
func BoundedByWait(wg *sync.WaitGroup, done chan struct{}) {
	go func() {
		wg.Wait()
		close(done)
	}()
}

// good: a select on ctx.Done bounds the loop.
func BoundedBySelect(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case <-jobs:
				fire()
			case <-ctx.Done():
				return
			}
		}
	}()
}

// good: delegating to a context-taking callee inherits its poll.
func BoundedByCtxCall(ctx context.Context) {
	go func() {
		_ = work(ctx)
	}()
}

// good: a named call handed the context is bounded by the callee.
func BoundedNamed(ctx context.Context) {
	go work(ctx)
}

// good: explicitly allowed with a reason.
func Allowed() {
	//lint:allow goroleak process-lifetime pump, exits with the program
	go func() {
		for {
			fire()
		}
	}()
}

// bad: an allow for a different analyzer does not cover goroleak.
func WrongAllow() {
	//lint:allow floateq not the analyzer that fires here
	go func() { // want "without bounded-lifetime evidence"
		for {
			fire()
		}
	}()
}
