// Fixture for the errcmp analyzer.
package errcmp

import (
	"errors"
	"fmt"
)

var ErrNotFound = errors.New("not found")

func lookup(id int) error {
	if id == 0 {
		return fmt.Errorf("lookup: %w", ErrNotFound)
	}
	return nil
}

// bad: identity comparison misses wrapped sentinels.
func bad(id int) bool {
	err := lookup(id)
	return err == ErrNotFound // want "errors.Is"
}

// bad: != has the same wrapping blind spot.
func alsoBad(id int) bool {
	if err := lookup(id); err != ErrNotFound { // want "errors.Is"
		return false
	}
	return true
}

// good: nil checks are exempt.
func nilCheck(id int) bool { return lookup(id) == nil }

// good: errors.Is survives wrapping.
func good(id int) bool { return errors.Is(lookup(id), ErrNotFound) }
