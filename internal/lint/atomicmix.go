package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix enforces a single memory model per field: once a field is
// accessed atomically anywhere in the module — either by having one of
// the sync/atomic wrapper types (atomic.Int64, atomic.Bool,
// atomic.Pointer[T], ...) or by being passed to a sync/atomic function
// (atomic.AddInt64(&s.n, 1)) — every other access must be atomic too.
// A plain read racing an atomic write is exactly the kind of bug the
// race detector only catches when the interleaving happens in a test;
// this analyzer catches it at vet time, module-wide, because the
// atomic site and the plain site are routinely in different packages.
//
// Concretely, for a wrapper-typed field the only allowed uses are
// method calls (s.n.Load(), s.n.Add(1)), method values (s.n.Load as a
// metrics callback) and address-of (&s.n, handing the atomic around by
// pointer); copying or overwriting the wrapper value is reported. For
// a plain-typed field with at least one sync/atomic call site, the
// only allowed uses are address-of arguments to sync/atomic functions.
// Both rules are waived inside constructors (functions named New* /
// new*, and init): before the value escapes its builder there is no
// concurrency to order.
//
// Tracked fields are struct fields and package-level variables; locals
// cannot be shared across functions without being captured, and a
// captured local shows up here the moment it is hoisted to a field.
func AtomicMix() *Analyzer {
	a := &Analyzer{
		Name: "atomicmix",
		Doc:  "fields accessed via sync/atomic must never be read or written plainly outside their constructor",
	}
	a.RunModule = func(pass *ModulePass) {
		// Pass 1: find the atomic fields — wrapper-typed ones by
		// declaration, plain ones by their sync/atomic call sites.
		wrapper := map[*types.Var]bool{}
		legacy := map[*types.Var]token.Position{}
		for _, pkg := range pass.Pkgs {
			if pkg.Info == nil {
				continue
			}
			for _, obj := range pkg.Info.Defs {
				v, ok := obj.(*types.Var)
				if !ok || !trackableVar(v) {
					continue
				}
				if isAtomicWrapperType(v.Type()) {
					wrapper[v] = true
				}
			}
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || !isSyncAtomicCall(pkg.Info, call) {
						return true
					}
					for _, arg := range call.Args {
						un, ok := arg.(*ast.UnaryExpr)
						if !ok || un.Op != token.AND {
							continue
						}
						if v := varOfExpr(pkg.Info, un.X); v != nil && trackableVar(v) {
							if _, seen := legacy[v]; !seen {
								legacy[v] = pass.Fset.Position(un.Pos())
							}
						}
					}
					return true
				})
			}
		}
		if len(wrapper) == 0 && len(legacy) == 0 {
			return
		}
		// Pass 2: audit every use of a tracked field.
		for _, pkg := range pass.Pkgs {
			if pkg.Info == nil {
				continue
			}
			for _, file := range pkg.Files {
				parents := buildParents(file)
				ast.Inspect(file, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					v, ok := pkg.Info.Uses[id].(*types.Var)
					if !ok {
						return true
					}
					if wrapper[v] {
						if !wrapperUseOK(pkg.Info, parents, id) {
							pass.Reportf(id.Pos(), "field %s has atomic type %s; use its methods (Load/Store/Add/...) instead of plain access", id.Name, v.Type())
						}
						return true
					}
					if at, ok := legacy[v]; ok {
						if !legacyUseOK(pkg.Info, parents, id) {
							pass.Reportf(id.Pos(), "plain access to %s, which is accessed with sync/atomic at %s:%d; mixing atomic and plain operations races", id.Name, at.Filename, at.Line)
						}
					}
					return true
				})
			}
		}
	}
	return a
}

// trackableVar reports whether v is a field or a package-level
// variable — the shareable storage the mixed-access rule applies to.
func trackableVar(v *types.Var) bool {
	if v.IsField() {
		return true
	}
	pkg := v.Pkg()
	return pkg != nil && v.Parent() == pkg.Scope()
}

// isAtomicWrapperType reports whether t is one of sync/atomic's value
// types (atomic.Int64, atomic.Bool, atomic.Pointer[T], atomic.Value,
// ...). Pointers to them are excluded: copying a *atomic.Int64 is safe.
func isAtomicWrapperType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isSyncAtomicCall reports whether call invokes a function of the
// sync/atomic package (atomic.AddInt64, atomic.LoadUint32, ...).
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// varOfExpr resolves expr to the variable it denotes: the field of a
// selector chain's last hop (s.n, c.stats.n) or a bare identifier.
func varOfExpr(info *types.Info, expr ast.Expr) *types.Var {
	switch x := expr.(type) {
	case *ast.Ident:
		v, _ := info.Uses[x].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[x.Sel].(*types.Var)
		return v
	case *ast.ParenExpr:
		return varOfExpr(info, x.X)
	case *ast.IndexExpr:
		return varOfExpr(info, x.X)
	}
	return nil
}

// useExprOf returns the largest expression denoting the field use
// rooted at id: the enclosing selector when id is its field (s.n for
// id n), id itself otherwise.
func useExprOf(parents parentMap, id *ast.Ident) ast.Expr {
	if sel, ok := parents[id].(*ast.SelectorExpr); ok && sel.Sel == id {
		return sel
	}
	return id
}

// inConstructor reports whether the use sits inside a constructor-like
// function: New*/new* (builders) or init, where the value has not
// escaped to other goroutines yet.
func inConstructor(parents parentMap, n ast.Node) bool {
	name := enclosingFuncName(parents, n)
	if name == "init" {
		return true
	}
	return len(name) >= 3 && (name[:3] == "New" || name[:3] == "new")
}

// wrapperUseOK classifies one use of a wrapper-typed atomic field.
func wrapperUseOK(info *types.Info, parents parentMap, id *ast.Ident) bool {
	expr := useExprOf(parents, id)
	switch p := parents[expr].(type) {
	case *ast.SelectorExpr:
		// s.n.Load() or the method value s.n.Load — any further
		// selection on an atomic wrapper is a method.
		if p.X == expr {
			return true
		}
	case *ast.UnaryExpr:
		// &s.n: the atomic travels by pointer, accesses stay atomic.
		if p.Op == token.AND && p.X == expr {
			return true
		}
	case *ast.KeyValueExpr:
		// Cache{n: ...} can only zero-init a wrapper; builders do this.
		if p.Key == expr {
			return inConstructor(parents, id)
		}
	}
	return inConstructor(parents, id)
}

// legacyUseOK classifies one use of a plain-typed field that has
// sync/atomic call sites elsewhere.
func legacyUseOK(info *types.Info, parents parentMap, id *ast.Ident) bool {
	expr := useExprOf(parents, id)
	if un, ok := parents[expr].(*ast.UnaryExpr); ok && un.Op == token.AND && un.X == expr {
		if call, ok := parents[un].(*ast.CallExpr); ok && isSyncAtomicCall(info, call) {
			return true
		}
	}
	return inConstructor(parents, id)
}
