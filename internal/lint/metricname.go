package lint

import (
	"go/ast"
	"go/token"
	"strconv"
)

// registryMethods are the obs.Registry constructors that mint metric
// families. Each takes the family name as its first argument.
var registryMethods = map[string]bool{
	"Counter":     true,
	"Gauge":       true,
	"Histogram":   true,
	"CounterFunc": true,
	"GaugeFunc":   true,
}

// MetricName enforces the metric-catalog conventions of the obs
// package: every Registry constructor call (Counter, Gauge, Histogram,
// CounterFunc, GaugeFunc) must pass an untyped string literal as the
// family name — so `grep emigre_` finds the whole catalog — and no two
// call sites anywhere in the analyzed tree may spell the same name.
// Per-label variants of one family belong behind a single helper with
// one literal (a loop or repeated calls through one site are fine);
// scattering the same literal across sites is how help strings and
// bucket layouts silently drift apart until the registry panics on the
// first run that links both sites.
//
// Like FaultSite, the duplicate check spans packages: the returned
// analyzer carries its seen-name set across per-package runs, so Suite
// must construct a fresh instance per Analyze call.
func MetricName() *Analyzer {
	a := &Analyzer{
		Name: "metricname",
		Doc:  "obs registry metrics need a unique string-literal family name",
	}
	seen := map[string]token.Position{}
	a.Run = func(pass *Pass) {
		if pass.Pkg.Types == nil {
			return
		}
		// The obs package itself wraps the constructors (register,
		// validation, test corpora) and is exempt — the invariant is
		// about the catalog its callers build.
		if pass.Pkg.Types.Name() == "obs" {
			return
		}
		info := pass.Pkg.Info
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !registryMethods[sel.Sel.Name] || len(call.Args) < 1 {
					return true
				}
				recv := typeOf(info, sel.X)
				named := namedOf(recv)
				if named == nil || named.Obj().Name() != "Registry" || typePkgName(recv) != "obs" {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					pass.Reportf(call.Args[0].Pos(), "obs %s name must be a string literal so the metric catalog stays greppable", sel.Sel.Name)
					return true
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				if name == "" {
					pass.Reportf(lit.Pos(), "obs %s name must not be empty", sel.Sel.Name)
					return true
				}
				if prev, dup := seen[name]; dup {
					pass.Reportf(lit.Pos(), "metric family %q already minted at %s:%d — route per-label variants through one helper", name, prev.Filename, prev.Line)
					return true
				}
				seen[name] = pass.Fset.Position(lit.Pos())
				return true
			})
		}
	}
	return a
}
