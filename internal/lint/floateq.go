package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatEqHelperPkg is the one package allowed to spell out
// floating-point equality inline: internal/fmath, the audited
// epsilon/tie-break helpers everything else must route through.
const floatEqHelperPkg = "fmath"

// FloatEq flags `==`/`!=` between floating-point expressions. PPR
// scores are sums of thousands of float64 terms whose low bits depend
// on summation order, so inline equality is either a
// tolerance bug or an undocumented exact-tie contract. Both belong in
// internal/fmath: ApproxEq for tolerances, Eq/Before for the
// deliberate exact comparisons the ranking tie-break contract and
// zero-value option sentinels rely on. One-off intentional sites
// (e.g. verifying that two adjacency lists carry bit-identical copies)
// use //lint:allow floateq with a reason.
func FloatEq() *Analyzer {
	a := &Analyzer{
		Name: "floateq",
		Doc:  "floating-point ==/!= must go through the fmath helpers",
	}
	a.Run = func(pass *Pass) {
		if pass.Pkg.Types != nil && pass.Pkg.Types.Name() == floatEqHelperPkg {
			return
		}
		info := pass.Pkg.Info
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				cmp, ok := n.(*ast.BinaryExpr)
				if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
					return true
				}
				if isFloat(typeOf(info, cmp.X)) || isFloat(typeOf(info, cmp.Y)) {
					pass.Reportf(cmp.OpPos, "floating-point %s; use fmath.Eq/ApproxEq/Before (or //lint:allow floateq <reason>)", cmp.Op)
				}
				return true
			})
		}
	}
	return a
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
