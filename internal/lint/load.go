package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the package's import path (module path + directory).
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Fset is the file set shared by every package of the load.
	Fset *token.FileSet
	// Files holds the parsed non-test source files, in file-name order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
	// TypeErrors collects type-checking problems. A package that builds
	// with the go tool has none; entries here indicate either broken
	// code or a loader limitation, and Run surfaces them to the caller
	// instead of silently analyzing half-typed syntax.
	TypeErrors []error
}

// LoadConfig describes the module to analyze.
type LoadConfig struct {
	// Dir is the module root (the directory holding go.mod).
	Dir string
	// ModulePath overrides the module path; when empty it is read from
	// Dir/go.mod.
	ModulePath string
}

// Loader parses and type-checks the packages of one module using only
// the standard library: module-internal imports are resolved to
// directories of the module and type-checked recursively, every other
// import (the standard library) is compiled from $GOROOT/src by the
// go/importer "source" importer. Test files are not loaded: the
// invariants the analyzers enforce are production-code invariants.
type Loader struct {
	fset    *token.FileSet
	dir     string
	modPath string

	std      types.ImporterFrom
	loaded   map[string]*Package // import path -> loaded module package
	checking map[string]bool     // cycle guard
}

// NewLoader builds a loader for the module described by cfg.
func NewLoader(cfg LoadConfig) (*Loader, error) {
	dir, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, err
	}
	modPath := cfg.ModulePath
	if modPath == "" {
		modPath, err = readModulePath(filepath.Join(dir, "go.mod"))
		if err != nil {
			return nil, err
		}
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		fset:     fset,
		dir:      dir,
		modPath:  modPath,
		std:      std,
		loaded:   map[string]*Package{},
		checking: map[string]bool{},
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading module file: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load resolves the given patterns to module packages and type-checks
// them. Supported patterns: "./..." (every package under the module
// root), "./dir/..." (every package under dir), and "./dir" or an
// import path (a single package). Returned packages are sorted by
// import path.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walk(l.dir, dirs); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			root := l.resolveDir(strings.TrimSuffix(pat, "/..."))
			if err := l.walk(root, dirs); err != nil {
				return nil, err
			}
		default:
			d := l.resolveDir(pat)
			ok, err := hasGoFiles(d)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("lint: no Go files in %s", d)
			}
			dirs[d] = true
		}
	}
	var pkgs []*Package
	for dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// resolveDir maps a pattern element to an absolute directory: "./x"
// and "x" are module-root relative, an import path under the module
// path maps to its directory.
func (l *Loader) resolveDir(pat string) string {
	if rest, ok := strings.CutPrefix(pat, l.modPath); ok {
		return filepath.Join(l.dir, filepath.FromSlash(strings.TrimPrefix(rest, "/")))
	}
	return filepath.Join(l.dir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
}

// walk collects every directory under root that contains non-test Go
// files, skipping testdata, hidden and underscore-prefixed directories,
// and nested modules.
func (l *Loader) walk(root string, dirs map[string]bool) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			// A nested go.mod starts a different module.
			if _, statErr := os.Stat(filepath.Join(path, "go.mod")); statErr == nil {
				return filepath.SkipDir
			}
		}
		ok, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if ok {
			dirs[path] = true
		}
		return nil
	})
}

func hasGoFiles(dir string) (bool, error) {
	names, err := goFileNames(dir)
	return len(names) > 0, err
}

// goFileNames lists the non-test .go files of dir in sorted order.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// importPathFor maps a module directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.dir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.dir)
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir (memoized).
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, nil
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check never returns a usable error when conf.Error is set; the
	// collected TypeErrors carry the full story.
	pkg.Types, _ = conf.Check(path, l.fset, files, pkg.Info)
	l.loaded[path] = pkg
	return pkg, nil
}

// loaderImporter adapts the Loader to types.ImporterFrom: module
// imports load recursively, everything else goes to the stdlib source
// importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, li.dir, 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.loadDir(filepath.Join(l.dir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files for import %q", path)
		}
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("lint: dependency %s has type errors: %v", path, pkg.TypeErrors[0])
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
