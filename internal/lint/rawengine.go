package lint

import (
	"go/ast"
	"go/types"
)

// rawEnginePackages names the packages that must not call PPR engines
// directly: the explainer and the recommender, whose byte-identical
// cache-on/cache-off guarantee holds only while every vector is served
// through the cache-identity helpers.
var rawEnginePackages = map[string]bool{"emigre": true, "rec": true}

// rawEngineMethods are the engine entry points that compute a vector
// or a full push state, including the warm-start ("delta") entry
// points: UpdateForEdit must be reached through the routing helpers so
// its base pair always comes from the cache, never from an ad-hoc raw
// run alongside it.
var rawEngineMethods = map[string]bool{
	"FromSource":        true,
	"FromSourceContext": true,
	"ToTarget":          true,
	"ToTargetContext":   true,
	"Run":               true,
	"RunContext":        true,
	"UpdateForEdit":     true,
}

// rawEngineAllowedFuncs are the designated routing helpers — the only
// declared functions allowed to invoke an engine raw (they do so as the
// cache-miss compute path, or as the warm-start resume over a
// cache-fetched base). Closures inside them inherit the approval.
var rawEngineAllowedFuncs = map[string]bool{
	"reverseColumn":        true, // internal/emigre: cached PPR(·,t) columns
	"ScoresContext":        true, // internal/rec: cached PPR(u,·) rows
	"ForwardResultContext": true, // internal/rec: cached full push states
	"WarmScoresContext":    true, // internal/rec: warm-start resume from a cached base
}

// RawEngine enforces the cache-routing invariant of the pprcache PR:
// inside the explainer and recommender, PPR engine Forward/Reverse
// calls (FromSource*/ToTarget*) on engine types from the ppr package
// are forbidden outside the designated routing helpers. A raw call
// computes a correct vector but bypasses cache identity, breaking the
// guarantee that explanations are byte-identical with the cache on and
// off — and silently forfeiting the warm-hit speedup.
func RawEngine() *Analyzer {
	a := &Analyzer{
		Name: "rawengine",
		Doc:  "explainer/recommender code must route PPR vectors through the cache helpers",
	}
	a.Run = func(pass *Pass) {
		if pass.Pkg.Types == nil || !rawEnginePackages[pass.Pkg.Types.Name()] {
			return
		}
		info := pass.Pkg.Info
		for _, file := range pass.Pkg.Files {
			parents := buildParents(file)
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !rawEngineMethods[sel.Sel.Name] {
					return true
				}
				if !isPPREngineCall(info, sel) {
					return true
				}
				if rawEngineAllowedFuncs[enclosingFuncName(parents, call)] {
					return true
				}
				pass.Reportf(call.Pos(), "raw engine call %s bypasses the PPR-vector cache; route it through reverseColumn / ScoresContext", sel.Sel.Name)
				return true
			})
		}
	}
	return a
}

// isPPREngineCall reports whether sel selects a method or function of
// a package named "ppr": a method on an engine value (including
// interface dispatch through ppr.Engine / ppr.ReverseEngine), or a
// package-level function selected off the ppr import.
func isPPREngineCall(info *types.Info, sel *ast.SelectorExpr) bool {
	if s, ok := info.Selections[sel]; ok {
		return typePkgName(s.Recv()) == "ppr"
	}
	// Package-qualified call: ppr.SomeFunc(...).
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[id].(*types.PkgName); ok {
			return pn.Imported().Name() == "ppr"
		}
	}
	return false
}
