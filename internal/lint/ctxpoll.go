package lint

import (
	"go/ast"
)

// ctxPollPackages names the packages whose unbounded loops must poll
// for cancellation: the PPR engines and the EMiGRe search strategies,
// where one forgotten poll turns a canceled request into a hung one.
// Matching is by package name so the analyzer applies to any package
// of that name (including test fixtures).
var ctxPollPackages = map[string]bool{"ppr": true, "emigre": true}

// CtxPoll enforces the cancellation invariant of the context plumbing
// PR: every unbounded `for` loop (no loop condition) in a PPR or
// search-strategy package must contain a cancellation check — a call
// to ctx.Err/ctx.Done, a call that receives a context.Context (the
// callee polls), or a call to a `canceled` method — either in its own
// body or in the body of an enclosing loop of the same function (the
// outer loop then polls between runs of the inner one, the Monte Carlo
// walk pattern).
func CtxPoll() *Analyzer {
	a := &Analyzer{
		Name: "ctxpoll",
		Doc:  "unbounded for loops in PPR/search packages must poll for cancellation",
	}
	a.Run = func(pass *Pass) {
		if pass.Pkg.Types == nil || !ctxPollPackages[pass.Pkg.Types.Name()] {
			return
		}
		for _, file := range pass.Pkg.Files {
			parents := buildParents(file)
			ast.Inspect(file, func(n ast.Node) bool {
				loop, ok := n.(*ast.ForStmt)
				if !ok || loop.Cond != nil {
					return true
				}
				if pollsCtx(pass, loop.Body) {
					return true
				}
				// Climb to enclosing loops within the same function: a
				// poll per outer iteration bounds the hang to one inner
				// run.
				for p := parents[loop]; p != nil; p = parents[p] {
					switch outer := p.(type) {
					case *ast.FuncDecl, *ast.FuncLit:
						p = nil
					case *ast.ForStmt:
						if pollsCtx(pass, outer.Body) {
							return true
						}
					case *ast.RangeStmt:
						if pollsCtx(pass, outer.Body) {
							return true
						}
					}
					if p == nil {
						break
					}
				}
				pass.Reportf(loop.For, "unbounded for loop without a cancellation check (call ctx.Err, a ctx-taking helper, or break it via an enclosing polled loop)")
				return true
			})
		}
	}
	return a
}

// pollsCtx reports whether the subtree contains a cancellation check.
func pollsCtx(pass *Pass, body ast.Node) bool {
	info := pass.Pkg.Info
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Any call handed a context.Context delegates polling to the
		// callee (ctxErr(ctx), helper(ctx, ...), r.TopNContext(ctx, ...)).
		for _, arg := range call.Args {
			if isContextType(typeOf(info, arg)) {
				found = true
				return false
			}
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			if (name == "Err" || name == "Done") && isContextType(typeOf(info, fun.X)) {
				found = true
				return false
			}
			if name == "canceled" {
				found = true
				return false
			}
		case *ast.Ident:
			if fun.Name == "canceled" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
