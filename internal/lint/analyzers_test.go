package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture type-checks packages of the fixture module under
// testdata/src.
func loadFixture(t *testing.T, patterns ...string) []*Package {
	t.Helper()
	loader, err := NewLoader(LoadConfig{Dir: filepath.Join("testdata", "src")})
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		t.Fatalf("Load(%v): %v", patterns, err)
	}
	for _, pkg := range pkgs {
		for _, te := range pkg.TypeErrors {
			t.Fatalf("fixture %s has type errors: %v", pkg.Path, te)
		}
	}
	return pkgs
}

// expectation is one diagnostic a fixture promises: a message substring
// on a (file, line).
type expectation struct {
	file string // base name
	line int
	sub  string
}

var wantRx = regexp.MustCompile(`// want "([^"]*)"`)

// fixtureWants extracts `// want "substr"` markers from the source
// files of the loaded packages.
func fixtureWants(t *testing.T, pkgs []*Package) []expectation {
	t.Helper()
	var out []expectation
	for _, pkg := range pkgs {
		names, err := goFileNames(pkg.Dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			data, err := os.ReadFile(filepath.Join(pkg.Dir, name))
			if err != nil {
				t.Fatal(err)
			}
			line := 1
			start := 0
			for i := 0; i <= len(data); i++ {
				if i == len(data) || data[i] == '\n' {
					for _, m := range wantRx.FindAllStringSubmatch(string(data[start:i]), -1) {
						out = append(out, expectation{file: name, line: line, sub: m[1]})
					}
					line++
					start = i + 1
				}
			}
		}
	}
	return out
}

// checkDiagnostics matches diagnostics against expectations 1:1.
func checkDiagnostics(t *testing.T, diags []Diagnostic, wants []expectation) {
	t.Helper()
	used := make([]bool, len(wants))
outer:
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		for i, w := range wants {
			if used[i] || w.file != base || w.line != d.Pos.Line {
				continue
			}
			if !strings.Contains(d.Message, w.sub) {
				continue
			}
			used[i] = true
			continue outer
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for i, w := range wants {
		if !used[i] {
			t.Errorf("missing diagnostic at %s:%d containing %q", w.file, w.line, w.sub)
		}
	}
}

// TestAnalyzers runs each analyzer over its fixture package and checks
// the diagnostics against the fixture's `// want` markers.
func TestAnalyzers(t *testing.T) {
	tests := []struct {
		name     string
		analyzer *Analyzer
		patterns []string
	}{
		{"atomicmix", AtomicMix(), []string{"./atomicmix", "./atomicmix/sub"}},
		{"ctxpoll", CtxPoll(), []string{"./ctxpoll", "./ctxpoll/emigre"}},
		{"errcmp", ErrCmp(), []string{"./errcmp"}},
		{"goroleak", GoroLeak(), []string{"./goroleak"}},
		{"lockorder", LockOrder(), []string{"./lockorder"}},
		{"faultsite", FaultSite(), []string{"./faultsite", "./faultsite/sub"}},
		{"floateq", FloatEq(), []string{"./floateq"}},
		{"metricname", MetricName(), []string{"./metricname", "./metricname/sub"}},
		{"rawengine", RawEngine(), []string{"./rawengine/rec", "./rawengine/emigre"}},
		{"versionbump", VersionBump(), []string{"./versionbump"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pkgs := loadFixture(t, tt.patterns...)
			res := Analyze(pkgs, []*Analyzer{tt.analyzer})
			checkDiagnostics(t, res.Diagnostics, fixtureWants(t, pkgs))
		})
	}
}

// TestFloatEqSkipsHelperPackage checks the fmath-named escape hatch:
// the helper package may spell out exact comparisons inline.
func TestFloatEqSkipsHelperPackage(t *testing.T) {
	pkgs := loadFixture(t, "./floateq/fmath")
	res := Analyze(pkgs, []*Analyzer{FloatEq()})
	for _, d := range res.Diagnostics {
		t.Errorf("unexpected diagnostic in fmath-named package: %s", d)
	}
}

// TestDirectives covers the //lint:allow machinery: unknown analyzers
// and missing reasons are themselves reported (and suppress nothing),
// well-formed directives suppress their line, the next line, or the
// whole function when placed in a doc comment. Expectations are
// hard-coded because a trailing marker comment on a directive line
// would be parsed as the directive's reason.
func TestDirectives(t *testing.T) {
	pkgs := loadFixture(t, "./directive")
	res := Analyze(pkgs, []*Analyzer{FloatEq()})
	wants := []expectation{
		{file: "directive.go", line: 9, sub: `unknown analyzer "nosuchcheck"`},
		{file: "directive.go", line: 10, sub: "fmath"},
		{file: "directive.go", line: 16, sub: "needs a reason"},
		{file: "directive.go", line: 17, sub: "fmath"},
	}
	checkDiagnostics(t, res.Diagnostics, wants)
}

// TestSuiteOverWholeFixtureModule runs the full suite over every
// fixture package at once: analyzers must stay inside their scoped
// package names and diagnostics must come out sorted.
func TestSuiteOverWholeFixtureModule(t *testing.T) {
	pkgs := loadFixture(t, "./ctxpoll", "./ctxpoll/emigre", "./rawengine/ppr", "./rawengine/rec", "./rawengine/emigre", "./versionbump",
		"./atomicmix", "./atomicmix/sub", "./goroleak", "./lockorder")
	res := Analyze(pkgs, Suite())
	// The ctxpoll fixture is a package named ppr with no float or error
	// comparisons; the rawengine ppr fixture must not be flagged (only
	// callers in emigre/rec are); versionbump diagnostics are
	// name-independent.
	wants := fixtureWants(t, pkgs)
	checkDiagnostics(t, res.Diagnostics, wants)
	for i := 1; i < len(res.Diagnostics); i++ {
		a, b := res.Diagnostics[i-1].Pos, res.Diagnostics[i].Pos
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Errorf("diagnostics out of order: %s before %s", res.Diagnostics[i-1], res.Diagnostics[i])
		}
	}
}
