package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// FaultSite enforces the failpoint-registry conventions of the fault
// package: every fault.Register call must pass an untyped string
// literal (so the site catalog is greppable and the registry's
// duplicate panic cannot hide behind runtime-built names), and no two
// Register calls anywhere in the analyzed tree may use the same name
// (the registry panics on collision at init time, but only on the code
// path that actually links both sites — the analyzer catches the
// collision statically, in unlinked combinations too).
//
// The duplicate check spans packages: the returned analyzer carries the
// seen-name set across its per-package runs, so a fresh instance (as
// Suite constructs) must be used per Analyze call.
func FaultSite() *Analyzer {
	a := &Analyzer{
		Name: "faultsite",
		Doc:  "fault.Register needs a unique string-literal site name",
	}
	seen := map[string]token.Position{}
	a.Run = func(pass *Pass) {
		if pass.Pkg.Types == nil {
			return
		}
		info := pass.Pkg.Info
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isFaultRegister(info, call) || len(call.Args) != 1 {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					pass.Reportf(call.Args[0].Pos(), "fault.Register argument must be a string literal so the site catalog stays greppable")
					return true
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				if name == "" {
					pass.Reportf(lit.Pos(), "fault.Register name must not be empty")
					return true
				}
				if prev, dup := seen[name]; dup {
					pass.Reportf(lit.Pos(), "fault site %q already registered at %s:%d", name, prev.Filename, prev.Line)
					return true
				}
				seen[name] = pass.Fset.Position(lit.Pos())
				return true
			})
		}
	}
	return a
}

// isFaultRegister reports whether call is fault.Register(...) — a
// Register selected off an import of a package named "fault".
func isFaultRegister(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Register" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Name() == "fault"
}
