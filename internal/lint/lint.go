// Package lint is a stdlib-only static-analysis suite enforcing the
// codebase's correctness invariants: the conventions PRs establish
// (context polling in unbounded search loops, version bumps on graph
// mutation, cache-routed engine calls, epsilon-helper float
// comparisons, errors.Is for sentinels) are machine-checked here
// instead of re-audited by hand. The suite is built purely on go/ast,
// go/parser and go/types — no golang.org/x/tools dependency — and is
// driven by cmd/emigre-vet as well as the package's own repo-wide
// self test.
//
// A diagnostic can be suppressed with a directive comment
//
//	//lint:allow <analyzer> <reason>
//
// placed on the flagged line, on the line directly above it, or in the
// doc comment of the enclosing function declaration (which approves
// the whole function — how the epsilon/tie-break helpers in
// internal/fmath are allowed to spell out the comparisons everyone
// else must route through them). The reason is mandatory: an
// unexplained suppression is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer checks one invariant. Most analyzers inspect one package
// at a time via Run; whole-program analyzers (lock ordering needs the
// cross-package call graph) set RunModule instead and receive every
// loaded package in one pass. Exactly one of the two must be set.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run inspects one package and reports violations via pass.Reportf.
	Run func(pass *Pass)
	// RunModule inspects every loaded package at once — the hook for
	// analyses that need the whole-module call graph.
	RunModule func(pass *ModulePass)
}

// Suite returns the full analyzer suite in stable order.
func Suite() []*Analyzer {
	return []*Analyzer{
		AtomicMix(),
		CtxPoll(),
		ErrCmp(),
		FaultSite(),
		FloatEq(),
		GoroLeak(),
		LockOrder(),
		MetricName(),
		RawEngine(),
		VersionBump(),
	}
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	// Analyzer names the analyzer that fired.
	Analyzer string
	// Pos locates the violation.
	Pos token.Position
	// Message describes the violation.
	Message string
}

// String renders the diagnostic in the canonical
// "file:line:col: [analyzer] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package
	// Fset translates token positions.
	Fset *token.FileSet

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries one (analyzer, whole module) unit of work: every
// package of the load at once, for analyses whose facts cross package
// boundaries (the lock-acquisition graph, cross-package call chains).
type ModulePass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Pkgs holds every loaded package, sorted by import path.
	Pkgs []*Package
	// Fset translates token positions (shared across the load).
	Fset *token.FileSet

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Result is the outcome of running a suite over a set of packages.
type Result struct {
	// Diagnostics holds every surviving (non-suppressed) violation,
	// sorted by file, line, column, analyzer.
	Diagnostics []Diagnostic
	// Packages counts the packages analyzed.
	Packages int
	// TypeErrors aggregates type-checking problems across packages. A
	// tree that builds cleanly has none; anything here means the
	// analyzers ran over incomplete type information.
	TypeErrors []error
}

// Run loads the packages matched by patterns from the module described
// by cfg and applies every analyzer, honoring //lint:allow directives.
func Run(cfg LoadConfig, analyzers []*Analyzer, patterns []string) (*Result, error) {
	loader, err := NewLoader(cfg)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		return nil, err
	}
	return Analyze(pkgs, analyzers), nil
}

// Analyze applies the analyzers to already-loaded packages:
// per-package analyzers to each package in turn, module analyzers to
// the whole set at once. Directive suppression keys on (file, line), so
// collecting every package's directives up front before filtering is
// equivalent to the per-package view while also covering module-wide
// diagnostics.
func Analyze(pkgs []*Package, analyzers []*Analyzer) *Result {
	res := &Result{Packages: len(pkgs)}
	// Directive names validate against the whole suite, not just the
	// analyzers selected for this run: `-run goroleak` must not flag
	// every //lint:allow floateq in the tree as unknown.
	known := map[string]bool{}
	for _, a := range Suite() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var raw []Diagnostic
	dirs := &directives{allow: map[allowKey]bool{}}
	for _, pkg := range pkgs {
		res.TypeErrors = append(res.TypeErrors, pkg.TypeErrors...)
		collectDirectives(pkg, known, &raw, dirs)
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, Fset: pkg.Fset, diags: &raw}
			a.Run(pass)
		}
	}
	if len(pkgs) > 0 {
		for _, a := range analyzers {
			if a.RunModule == nil {
				continue
			}
			pass := &ModulePass{Analyzer: a, Pkgs: pkgs, Fset: pkgs[0].Fset, diags: &raw}
			a.RunModule(pass)
		}
	}
	for _, d := range raw {
		if !dirs.suppressed(d) {
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return res
}

// allowKey identifies the scope one directive suppresses: an analyzer
// on one line of one file.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

type directives struct {
	allow map[allowKey]bool
}

const allowPrefix = "//lint:allow "

// collectDirectives parses every //lint:allow comment of the package
// into d. A line directive suppresses its own line and the next line; a
// directive in a function declaration's doc comment suppresses the
// whole function body. Malformed directives (unknown analyzer, missing
// reason) are appended to raw as diagnostics so they cannot silently
// mask anything.
func collectDirectives(pkg *Package, known map[string]bool, raw *[]Diagnostic, d *directives) {
	fset := pkg.Fset
	for _, file := range pkg.Files {
		funcDoc := map[*ast.CommentGroup]*ast.FuncDecl{}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDoc[fd.Doc] = fd
			}
		}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				pos := fset.Position(c.Pos())
				if !known[name] {
					*raw = append(*raw, Diagnostic{
						Analyzer: "directive",
						Pos:      pos,
						Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q", name),
					})
					continue
				}
				if strings.TrimSpace(reason) == "" {
					*raw = append(*raw, Diagnostic{
						Analyzer: "directive",
						Pos:      pos,
						Message:  fmt.Sprintf("//lint:allow %s needs a reason", name),
					})
					continue
				}
				if fd, isDoc := funcDoc[cg]; isDoc {
					start := fset.Position(fd.Pos()).Line
					end := fset.Position(fd.End()).Line
					for line := start; line <= end; line++ {
						d.allow[allowKey{pos.Filename, line, name}] = true
					}
					continue
				}
				d.allow[allowKey{pos.Filename, pos.Line, name}] = true
				d.allow[allowKey{pos.Filename, pos.Line + 1, name}] = true
			}
		}
	}
}

func (d *directives) suppressed(diag Diagnostic) bool {
	return d.allow[allowKey{diag.Pos.Filename, diag.Pos.Line, diag.Analyzer}]
}
