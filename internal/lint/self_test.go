package lint

import "testing"

// TestRepoIsClean is the meta-test the suite exists for: it runs every
// analyzer over the actual repository, so `go test ./...` fails the
// moment a change violates an enforced invariant. Suppressions require
// a reasoned //lint:allow directive, which this test also validates.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	res, err := Run(LoadConfig{Dir: "../.."}, Suite(), []string{"./..."})
	if err != nil {
		t.Fatalf("running suite over repo: %v", err)
	}
	for _, te := range res.TypeErrors {
		t.Errorf("type error (analyzers ran over incomplete types): %v", te)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("%s", d)
	}
	// Sanity-check the load actually covered the tree: a walk bug that
	// silently loaded nothing would make this test pass vacuously.
	if res.Packages < 15 {
		t.Errorf("suite analyzed only %d packages; expected the whole module (>= 15)", res.Packages)
	}
}
