package lint

import (
	"go/ast"
	"go/types"
)

// stampFields are the struct fields that carry cache identity: writing
// one of them counts as "touching the version stamp". A struct that
// declares either field is a stamped type, and its exported mutating
// methods fall under the analyzer.
var stampFields = map[string]bool{"version": true, "digest": true}

// bumpMethods are method names that touch the stamp by convention even
// when their body is not visible to the classification (they always
// are in practice; the name check just keeps fixtures and future
// helpers honest).
var bumpMethods = map[string]bool{"bumpVersion": true, "bumpDigest": true}

// VersionBump enforces the cache-correctness invariant of the
// versioning PR: every exported method that mutates a stamped struct
// (one with a `version` or `digest` field — hin.Graph, hin.Overlay)
// must touch the stamp on every path from the first mutation to a
// return. A mutation that escapes without a bump leaves old cache
// entries describing the new state, which silently serves stale
// counterfactuals.
//
// Mutation and bumping are tracked through same-type method calls
// (AddBidirectional mutates and bumps via AddEdge), and the per-path
// analysis is deliberately lenient where Go's control flow gets
// complicated: states merging after a branch consider the stamp
// touched only if every surviving path touched it, and paths ending in
// return/panic/break are taken out of the merge.
func VersionBump() *Analyzer {
	a := &Analyzer{
		Name: "versionbump",
		Doc:  "exported mutating methods on stamped structs must bump the version stamp on every return path",
	}
	a.Run = func(pass *Pass) {
		if pass.Pkg.Types == nil {
			return
		}
		stamped := stampedTypes(pass.Pkg.Types)
		if len(stamped) == 0 {
			return
		}
		cls := classify(pass, stamped)
		for _, m := range cls.methods {
			if !m.decl.Name.IsExported() || !cls.effects[m.key()].mutates {
				continue
			}
			w := &bumpWalker{pass: pass, cls: cls, m: m}
			end := w.stmts(m.decl.Body.List, bumpState{})
			if !end.terminated && end.mutated && !end.bumped {
				pass.Reportf(m.decl.Body.Rbrace, "%s.%s mutates the struct but falls off the end without touching the version stamp", m.typeName, m.decl.Name.Name)
			}
		}
	}
	return a
}

// stampedTypes returns the names of package-level struct types that
// declare a stamp field.
func stampedTypes(pkg *types.Package) map[string]bool {
	out := map[string]bool{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if stampFields[st.Field(i).Name()] {
				out[name] = true
				break
			}
		}
	}
	return out
}

// method is one method declaration on a stamped type.
type method struct {
	typeName string
	decl     *ast.FuncDecl
	recvObj  types.Object // the receiver variable, nil when unnamed
}

func (m *method) key() string { return m.typeName + "." + m.decl.Name.Name }

// effect summarizes what calling a method does to its receiver.
type effect struct {
	mutates bool // writes a non-stamp receiver field (directly or transitively)
	bumps   bool // writes a stamp field (directly or transitively)
}

type classification struct {
	pass    *Pass
	methods []*method
	effects map[string]effect
}

// classify gathers every method of the stamped types and computes each
// one's receiver effects, propagating through same-type method calls
// to a fixed point.
func classify(pass *Pass, stamped map[string]bool) *classification {
	cls := &classification{pass: pass, effects: map[string]effect{}}
	calls := map[string][]string{} // method key -> same-type callee keys
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
				continue
			}
			tname := recvTypeName(fd)
			if !stamped[tname] {
				continue
			}
			m := &method{typeName: tname, decl: fd}
			if names := fd.Recv.List[0].Names; len(names) > 0 {
				m.recvObj = pass.Pkg.Info.Defs[names[0]]
			}
			cls.methods = append(cls.methods, m)
			eff, callees := directEffects(pass, m)
			if bumpMethods[fd.Name.Name] {
				eff.bumps = true
			}
			cls.effects[m.key()] = eff
			calls[m.key()] = callees
		}
	}
	for changed := true; changed; {
		changed = false
		for key, callees := range calls {
			eff := cls.effects[key]
			for _, callee := range callees {
				ce := cls.effects[callee]
				if (ce.mutates && !eff.mutates) || (ce.bumps && !eff.bumps) {
					eff.mutates = eff.mutates || ce.mutates
					eff.bumps = eff.bumps || ce.bumps
					changed = true
				}
			}
			cls.effects[key] = eff
		}
	}
	return cls
}

// recvTypeName returns the name of the receiver's base type.
func recvTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// directEffects scans a method body for direct receiver writes and
// same-type receiver-method calls (returned as callee keys), skipping
// function literals (a closure's effects happen when it runs, which
// this lenient analysis does not model).
func directEffects(pass *Pass, m *method) (effect, []string) {
	var eff effect
	var callees []string
	scan := func(n ast.Node) {
		e, c := scanEffects(pass, m, n)
		eff.mutates = eff.mutates || e.mutates
		eff.bumps = eff.bumps || e.bumps
		callees = append(callees, c...)
	}
	scan(m.decl.Body)
	return eff, callees
}

// scanEffects inspects a subtree (without crossing into function
// literals) for receiver writes, delete() on receiver maps, and
// receiver-method calls.
func scanEffects(pass *Pass, m *method, root ast.Node) (effect, []string) {
	var eff effect
	var callees []string
	if root == nil {
		return eff, nil
	}
	info := pass.Pkg.Info
	isRecv := func(e ast.Expr) bool {
		id := rootIdent(e)
		return id != nil && m.recvObj != nil && info.Uses[id] == m.recvObj
	}
	write := func(lhs ast.Expr) {
		if !isRecv(lhs) {
			return
		}
		if stampFields[firstField(lhs)] {
			eff.bumps = true
		} else {
			eff.mutates = true
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				write(lhs)
			}
		case *ast.IncDecStmt:
			write(x.X)
		case *ast.UnaryExpr:
			// &g.field escaping may be mutated elsewhere; lenient: ignore.
		case *ast.CallExpr:
			switch fun := x.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "delete" && len(x.Args) > 0 && isRecv(x.Args[0]) {
					eff.mutates = true
				}
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok && m.recvObj != nil && info.Uses[id] == m.recvObj {
					callees = append(callees, m.typeName+"."+fun.Sel.Name)
					if bumpMethods[fun.Sel.Name] {
						eff.bumps = true
					}
				}
			}
		}
		return true
	})
	return eff, callees
}

// bumpState is the per-path analysis state.
type bumpState struct {
	mutated    bool // a non-stamp receiver write happened on this path
	bumped     bool // the stamp was touched on this path
	terminated bool // the path ended (return, panic, break/continue/goto)
}

// bumpWalker walks a method body in source order, reporting returns
// that escape a mutation without a bump.
type bumpWalker struct {
	pass *Pass
	cls  *classification
	m    *method
}

// apply folds the receiver effects of an expression-bearing node into
// the state (method-call effects resolved through the classification).
func (w *bumpWalker) apply(st bumpState, n ast.Node) bumpState {
	if n == nil {
		return st
	}
	eff, callees := scanEffects(w.pass, w.m, n)
	st.mutated = st.mutated || eff.mutates
	st.bumped = st.bumped || eff.bumps
	for _, callee := range callees {
		ce := w.cls.effects[callee]
		st.mutated = st.mutated || ce.mutates
		st.bumped = st.bumped || ce.bumps
	}
	return st
}

// merge combines the states of alternative paths: only surviving
// (non-terminated) paths matter; the stamp counts as touched only when
// every surviving path touched it.
func merge(states ...bumpState) bumpState {
	var out bumpState
	first := true
	for _, st := range states {
		if st.terminated {
			continue
		}
		if first {
			out, first = st, false
			continue
		}
		out.mutated = out.mutated || st.mutated
		out.bumped = out.bumped && st.bumped
	}
	if first {
		out.terminated = true
	}
	return out
}

func (w *bumpWalker) stmts(list []ast.Stmt, st bumpState) bumpState {
	for _, s := range list {
		if st.terminated {
			return st
		}
		st = w.stmt(s, st)
	}
	return st
}

func (w *bumpWalker) stmt(s ast.Stmt, st bumpState) bumpState {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		st = w.apply(st, x)
		if st.mutated && !st.bumped {
			w.pass.Reportf(x.Pos(), "%s.%s returns after mutating the struct without touching the version stamp", w.m.typeName, w.m.decl.Name.Name)
		}
		st.terminated = true
		return st
	case *ast.BlockStmt:
		return w.stmts(x.List, st)
	case *ast.IfStmt:
		st = w.apply(st, x.Init)
		st = w.apply(st, x.Cond)
		thenSt := w.stmts(x.Body.List, st)
		elseSt := st
		if x.Else != nil {
			elseSt = w.stmt(x.Else, st)
		}
		return merge(thenSt, elseSt)
	case *ast.ForStmt:
		st = w.apply(st, x.Init)
		st = w.apply(st, x.Cond)
		st = w.apply(st, x.Post)
		body := w.stmts(x.Body.List, st)
		return merge(st, body)
	case *ast.RangeStmt:
		st = w.apply(st, x.X)
		body := w.stmts(x.Body.List, st)
		return merge(st, body)
	case *ast.SwitchStmt:
		st = w.apply(st, x.Init)
		st = w.apply(st, x.Tag)
		return w.cases(caseBodies(x.Body), hasDefault(x.Body), st)
	case *ast.TypeSwitchStmt:
		st = w.apply(st, x.Init)
		st = w.apply(st, x.Assign)
		return w.cases(caseBodies(x.Body), hasDefault(x.Body), st)
	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				bodies = append(bodies, cc.Body)
			}
		}
		// A select blocks until some clause runs: no implicit skip path.
		return w.cases(bodies, true, st)
	case *ast.DeferStmt:
		// A deferred bump covers every return from here on.
		return w.apply(st, x.Call)
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, st)
	case *ast.BranchStmt:
		st.terminated = true
		return st
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				st = w.apply(st, x)
				st.terminated = true
				return st
			}
		}
		return w.apply(st, x)
	default:
		return w.apply(st, s)
	}
}

func (w *bumpWalker) cases(bodies [][]ast.Stmt, exhaustive bool, st bumpState) bumpState {
	states := []bumpState{}
	if !exhaustive {
		states = append(states, st)
	}
	for _, body := range bodies {
		states = append(states, w.stmts(body, st))
	}
	return merge(states...)
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}
