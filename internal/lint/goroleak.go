package lint

import (
	"go/ast"
	"go/types"
)

// GoroLeak enforces bounded goroutine lifetimes: every `go` statement
// must carry static evidence that the spawned goroutine terminates —
// otherwise a forgotten worker outlives its request, pins its captures,
// and accumulates under serving traffic until the process dies. The
// accepted proofs, in the order real sites use them:
//
//   - the goroutine signals a sync.WaitGroup (a Done call, almost
//     always deferred) — some joiner blocks on it, so a leak is a hang
//     the tests catch;
//   - the goroutine joins on a sync.WaitGroup itself (Wait) — its
//     lifetime is the workers' lifetimes, which are checked at their
//     own go statements;
//   - the goroutine polls a context.Context: a select with a
//     ctx.Done() case, a direct ctx.Err()/ctx.Done() call, or any call
//     that receives a context (the callee inherits the poll obligation,
//     enforced by ctxpoll in the engine packages);
//   - a //lint:allow goroleak <reason> directive for the genuinely
//     unbounded cases (a process-lifetime listener, a fire-and-forget
//     whose bound lives in a runtime invariant the analyzer cannot
//     see). The reason is mandatory and reviewed, and the dynamic
//     internal/testleak check backs the claim under -race.
//
// Evidence is searched in the goroutine's body (for `go func(){...}()`)
// including nested literals — a worker that delegates its loop to a
// closure still counts — and in the call's arguments (for `go name(x)`:
// handing the callee a context is the proof).
func GoroLeak() *Analyzer {
	a := &Analyzer{
		Name: "goroleak",
		Doc:  "go statements need bounded-lifetime evidence (WaitGroup Done/Wait, a ctx poll, or an allow directive)",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
					if boundedLifetime(info, lit.Body) {
						return true
					}
				} else {
					// go name(args...): passing a context to the callee is
					// the only local evidence available.
					for _, arg := range g.Call.Args {
						if isContextType(typeOf(info, arg)) {
							return true
						}
					}
				}
				pass.Reportf(g.Pos(), "goroutine without bounded-lifetime evidence: signal a WaitGroup, poll a context, or justify with //lint:allow goroleak <reason>")
				return true
			})
		}
	}
	return a
}

// boundedLifetime reports whether the goroutine body carries one of the
// accepted termination proofs.
func boundedLifetime(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// A call handed a context delegates the poll to the callee.
		for _, arg := range call.Args {
			if isContextType(typeOf(info, arg)) {
				found = true
				return false
			}
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Done", "Err":
			// ctx.Done() / ctx.Err(): a cancellation poll (the Done case
			// covers `select { case <-ctx.Done(): }` too — the channel
			// expression is this call).
			if isContextType(typeOf(info, sel.X)) {
				found = true
				return false
			}
			if sel.Sel.Name == "Done" && isWaitGroupType(typeOf(info, sel.X)) {
				found = true
				return false
			}
		case "Wait":
			if isWaitGroupType(typeOf(info, sel.X)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isWaitGroupType reports whether t is (a pointer to) sync.WaitGroup.
func isWaitGroupType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
