package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder derives the module's lock-acquisition graph and reports the
// two static deadlock shapes it exposes:
//
//   - acquisition-order cycles: somewhere lock A is acquired while B is
//     held and somewhere else B is acquired while A is held — two
//     goroutines interleaving those paths deadlock;
//   - same-lock reacquisition: while holding A, a call chain reaches a
//     function that acquires A again — an immediate self-deadlock for
//     sync.Mutex, and for RWMutex a deadlock the moment a writer
//     arrives between the two read acquisitions.
//
// Lock identity is the declared mutex storage: a struct-owned
// sync.Mutex/RWMutex field (every instance of pprcache's shard.mu is
// one lock node — conservative, and exactly right for the ordering
// discipline) or a package-level mutex variable. RLock and Lock map to
// the same node. Locals are out of scope: they cannot participate in a
// cross-function cycle.
//
// The analysis is whole-program on the module loader: each function
// body (and each function literal, with a fresh held-set — goroutine
// and deferred bodies do not inherit the spawner's locks textually) is
// scanned in source order tracking the held set — Lock/RLock pushes,
// Unlock/RUnlock pops the most recent non-deferred match, defer
// Unlock pins the lock to function exit. Calls resolved through
// identifiers and selectors feed a call graph over which each
// function's transitively-acquired lock set is computed, so an edge
// A→B is found whether B is locked inline or three calls deep in
// another package. Calls through function values (callbacks, struct
// fields) are not resolvable statically; invariants there stay
// documented at the callback's contract (obs.Registry's "fn runs with
// the registry lock held" note is the canonical example).
func LockOrder() *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc:  "struct-owned mutexes must have an acyclic acquisition order and no held reacquisition",
	}
	a.RunModule = func(pass *ModulePass) {
		lo := &lockOrder{
			pass:     pass,
			index:    map[types.Object]*lockSummary{},
			acquires: map[*lockSummary]map[*types.Var]bool{},
			names:    map[*types.Var]string{},
		}
		// Summarize every declared function, then every function
		// literal (each with its own held state).
		for _, pkg := range pass.Pkgs {
			if pkg.Info == nil {
				continue
			}
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					sum := lo.summarize(pkg, fd.Body)
					if obj := pkg.Info.Defs[fd.Name]; obj != nil {
						lo.index[obj] = sum
					}
					lo.all = append(lo.all, sum)
				}
			}
		}
		lo.report()
	}
	return a
}

// lockSummary is one function's (or function literal's) lock facts.
type lockSummary struct {
	pkg *Package
	// direct is the set of locks acquired in this body.
	direct map[*types.Var]bool
	// edges records B acquired at pos while A was held, in this body.
	edges []lockEdge
	// heldCalls records resolved calls made while holding locks.
	heldCalls []lockHeldCall
	// callees is every statically-resolved callee (held or not).
	callees []types.Object
	// reacquired records same-lock double acquisitions in this body.
	reacquired []lockEdge
	// lits are nested function literals, summarized independently.
	lits []*lockSummary
}

// lockEdge is one ordered acquisition: to acquired at pos with from held.
type lockEdge struct {
	from, to *types.Var
	pos      token.Pos
}

// lockHeldCall is one call made with locks held.
type lockHeldCall struct {
	held   []*types.Var
	callee types.Object
	pos    token.Pos
}

type lockOrder struct {
	pass     *ModulePass
	index    map[types.Object]*lockSummary
	all      []*lockSummary
	acquires map[*lockSummary]map[*types.Var]bool
	names    map[*types.Var]string
}

// heldLock is one entry of the scan-time held stack.
type heldLock struct {
	obj      *types.Var
	deferred bool // released by a defer: held to function exit
}

// summarize scans body in source order, maintaining the held-lock
// stack. Nested function literals are cut out and summarized with a
// fresh stack (their bodies run at an unknowable time relative to the
// enclosing critical section); everything else is processed at its
// textual position, which matches execution order for straight-line
// locking code and errs conservative in branches.
func (lo *lockOrder) summarize(pkg *Package, body ast.Node) *lockSummary {
	sum := &lockSummary{pkg: pkg, direct: map[*types.Var]bool{}}
	var held []heldLock
	skip := map[*ast.CallExpr]bool{}
	info := pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			sub := lo.summarize(pkg, x.Body)
			sum.lits = append(sum.lits, sub)
			return false
		case *ast.DeferStmt:
			if v, method, ok := lo.lockTarget(pkg, x.Call); ok && isUnlockMethod(method) {
				// defer mu.Unlock(): pin the most recent matching
				// acquisition to function exit.
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].obj == v && !held[i].deferred {
						held[i].deferred = true
						break
					}
				}
				skip[x.Call] = true
			}
			return true
		case *ast.CallExpr:
			if skip[x] {
				return true
			}
			if v, method, ok := lo.lockTarget(pkg, x); ok {
				if isUnlockMethod(method) {
					for i := len(held) - 1; i >= 0; i-- {
						if held[i].obj == v && !held[i].deferred {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
					return true
				}
				// Lock/RLock: record ordering against everything held.
				for _, h := range held {
					if h.obj == v {
						sum.reacquired = append(sum.reacquired, lockEdge{from: v, to: v, pos: x.Pos()})
					} else {
						sum.edges = append(sum.edges, lockEdge{from: h.obj, to: v, pos: x.Pos()})
					}
				}
				sum.direct[v] = true
				held = append(held, heldLock{obj: v})
				return true
			}
			if callee := calleeObject(info, x); callee != nil {
				sum.callees = append(sum.callees, callee)
				if len(held) > 0 {
					hc := lockHeldCall{callee: callee, pos: x.Pos()}
					for _, h := range held {
						hc.held = append(hc.held, h.obj)
					}
					sum.heldCalls = append(sum.heldCalls, hc)
				}
			}
		}
		return true
	})
	return sum
}

// lockTarget resolves call to the mutex storage it locks or unlocks:
// the *types.Var of a struct-owned field or package-level variable of
// type sync.Mutex/sync.RWMutex, whether named explicitly (s.mu.Lock())
// or promoted from an embedded mutex (s.Lock()).
func (lo *lockOrder) lockTarget(pkg *Package, call *ast.CallExpr) (*types.Var, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !isMutexMethodName(sel.Sel.Name) {
		return nil, "", false
	}
	info := pkg.Info
	// The method must really be sync's: its Func object lives in
	// package sync with a Mutex/RWMutex receiver.
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	var v *types.Var
	if s := info.Selections[sel]; s != nil && len(s.Index()) > 1 {
		// Promoted through embedded fields: walk the index path to the
		// mutex field itself.
		cur := typeOf(info, sel.X)
		ix := s.Index()
		for _, i := range ix[:len(ix)-1] {
			named := namedOf(cur)
			if named == nil {
				return nil, "", false
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok || i >= st.NumFields() {
				return nil, "", false
			}
			v = st.Field(i)
			cur = v.Type()
		}
	} else {
		v = varOfExpr(info, sel.X)
	}
	if v == nil || !isMutexType(v.Type()) || !trackableVar(v) {
		return nil, "", false
	}
	if _, ok := lo.names[v]; !ok {
		lo.names[v] = lockDisplayName(pkg, info, sel.X, v)
	}
	return v, sel.Sel.Name, true
}

func isMutexMethodName(name string) bool {
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return true
	}
	return false
}

func isUnlockMethod(name string) bool {
	return name == "Unlock" || name == "RUnlock"
}

// isMutexType reports whether t is (a pointer to) sync.Mutex or
// sync.RWMutex.
func isMutexType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockDisplayName renders a lock identity for diagnostics:
// "pkg.Type.field" for struct-owned fields, "pkg.var" for package
// variables, with a best-effort owner for anonymous-struct fields.
func lockDisplayName(pkg *Package, info *types.Info, recv ast.Expr, v *types.Var) string {
	pkgName := ""
	if v.Pkg() != nil {
		pkgName = v.Pkg().Name()
	}
	if !v.IsField() {
		return pkgName + "." + v.Name()
	}
	// recv is the expression the mutex was selected from: x.mu has the
	// owner's type on x; a promoted s.Lock() has it on recv itself.
	owner := recv
	if sel, ok := recv.(*ast.SelectorExpr); ok && sel.Sel != nil {
		if fv, _ := info.Uses[sel.Sel].(*types.Var); fv == v {
			owner = sel.X
		}
	}
	if named := namedOf(typeOf(info, owner)); named != nil {
		return pkgName + "." + named.Obj().Name() + "." + v.Name()
	}
	if id, ok := owner.(*ast.Ident); ok && id != nil {
		return pkgName + "." + id.Name + "." + v.Name()
	}
	return pkgName + "." + v.Name()
}

// calleeObject resolves the called function to its object: package
// functions, methods, and imported functions. Function values resolve
// to their variable, which the index will not contain — they simply
// contribute nothing to the call graph.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// acquiresOf computes the transitive lock-acquisition set of one
// summary: its direct locks plus everything reachable through resolved
// calls (memoized; recursion through the call graph terminates via the
// in-progress marker).
func (lo *lockOrder) acquiresOf(sum *lockSummary, visiting map[*lockSummary]bool) map[*types.Var]bool {
	if got, ok := lo.acquires[sum]; ok {
		return got
	}
	if visiting[sum] {
		return nil
	}
	visiting[sum] = true
	out := map[*types.Var]bool{}
	for v := range sum.direct {
		out[v] = true
	}
	for _, callee := range sum.callees {
		if sub, ok := lo.index[callee]; ok {
			for v := range lo.acquiresOf(sub, visiting) {
				out[v] = true
			}
		}
	}
	delete(visiting, sum)
	lo.acquires[sum] = out
	return out
}

// report folds every summary into the module lock graph and emits the
// diagnostics. Interprocedural edges come from held calls: a call with
// A held into a function that transitively acquires B adds A→B (and
// A==B is the reacquisition case).
func (lo *lockOrder) report() {
	type edgeKey struct{ from, to *types.Var }
	firstEdge := map[edgeKey]token.Pos{}
	adj := map[*types.Var]map[*types.Var]bool{}
	addEdge := func(e lockEdge) {
		k := edgeKey{e.from, e.to}
		if p, ok := firstEdge[k]; !ok || e.pos < p {
			firstEdge[k] = e.pos
		}
		if adj[e.from] == nil {
			adj[e.from] = map[*types.Var]bool{}
		}
		adj[e.from][e.to] = true
	}

	var flat []*lockSummary
	var flatten func(s *lockSummary)
	flatten = func(s *lockSummary) {
		flat = append(flat, s)
		for _, l := range s.lits {
			flatten(l)
		}
	}
	for _, s := range lo.all {
		flatten(s)
	}

	for _, s := range flat {
		for _, e := range s.edges {
			addEdge(e)
		}
		for _, e := range s.reacquired {
			lo.pass.Reportf(e.pos, "%s acquired while already held — self-deadlock (RWMutex read re-entry deadlocks once a writer queues between the two)", lo.name(e.from))
		}
		for _, hc := range s.heldCalls {
			callee, ok := lo.index[hc.callee]
			if !ok {
				continue
			}
			acq := lo.acquiresOf(callee, map[*lockSummary]bool{})
			for _, heldObj := range hc.held {
				for v := range acq {
					if v == heldObj {
						lo.pass.Reportf(hc.pos, "call to %s while holding %s, which it acquires again — self-deadlock", hc.callee.Name(), lo.name(heldObj))
						continue
					}
					addEdge(lockEdge{from: heldObj, to: v, pos: hc.pos})
				}
			}
		}
	}

	// Cycle detection: an edge is in a cycle iff its head can reach its
	// tail. Report every such edge at its first acquisition site, in
	// deterministic order.
	keys := make([]edgeKey, 0, len(firstEdge))
	for k := range firstEdge {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return firstEdge[keys[i]] < firstEdge[keys[j]]
	})
	for _, k := range keys {
		if lo.reaches(adj, k.to, k.from) {
			lo.pass.Reportf(firstEdge[k], "lock ordering cycle: %s acquired while %s is held, but elsewhere %s is acquired while %s is held", lo.name(k.to), lo.name(k.from), lo.name(k.from), lo.name(k.to))
		}
	}
}

// reaches reports whether to is reachable from from in the lock graph.
func (lo *lockOrder) reaches(adj map[*types.Var]map[*types.Var]bool, from, to *types.Var) bool {
	seen := map[*types.Var]bool{}
	var dfs func(v *types.Var) bool
	dfs = func(v *types.Var) bool {
		if v == to {
			return true
		}
		if seen[v] {
			return false
		}
		seen[v] = true
		for next := range adj[v] {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

// name renders a lock's display name (resolution always recorded one
// at the first acquisition site).
func (lo *lockOrder) name(v *types.Var) string {
	if n, ok := lo.names[v]; ok {
		return n
	}
	return v.Name()
}
