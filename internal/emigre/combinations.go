package emigre

// combinations enumerates all index combinations of size c from
// {0..n-1} in lexicographic order, invoking visit with a reused buffer.
// Enumeration stops early when visit returns false.
func combinations(n, c int, visit func(idx []int) bool) {
	if c <= 0 || c > n {
		return
	}
	idx := make([]int, c)
	for i := range idx {
		idx[i] = i
	}
	// The enumeration itself has no context; every caller polls for
	// cancellation inside visit and stops the loop by returning false.
	//lint:allow ctxpoll callers poll ctx in the visit callback
	for {
		if !visit(idx) {
			return
		}
		// Advance to the next combination.
		i := c - 1
		for i >= 0 && idx[i] == n-c+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < c; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// binomialSaturation is the sentinel C(n,k) saturates at: large enough
// that any budgeting comparison treats it as "effectively unbounded"
// without overflowing intermediate products.
const binomialSaturation = 1 << 40

// binomial returns C(n, k), saturating at binomialSaturation to avoid
// overflow; it is only used for budgeting decisions.
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1
	for i := 0; i < k; i++ {
		res = res * (n - i) / (i + 1)
		if res > binomialSaturation {
			return binomialSaturation
		}
	}
	return res
}

// maxComboPrealloc clamps combination-slice capacity hints. C(n,k)
// saturates at ~10^12, and even honest counts grow combinatorially, so
// passing binomial() straight to make() can attempt a multi-terabyte
// allocation for a large MaxSearchSpace. Beyond the clamp append grows
// the slice the usual way.
const maxComboPrealloc = 1 << 16

// comboCapHint returns a safe capacity hint for collecting the C(n,k)
// combinations: exact when small, clamped to maxComboPrealloc when the
// count is large or saturated.
func comboCapHint(n, k int) int {
	c := binomial(n, k)
	if c > maxComboPrealloc {
		return maxComboPrealloc
	}
	return c
}
