package emigre

import (
	"context"
	"errors"
	"testing"

	"github.com/why-not-xai/emigre/internal/hin"
)

func TestExplainGroupPromotesAMember(t *testing.T) {
	for _, mode := range []Mode{Remove, Add} {
		t.Run(mode.String(), func(t *testing.T) {
			f := newFixture(t, Options{})
			group := GroupQuery{User: f.ids["u"], Items: []hin.NodeID{f.ids["f2"], f.ids["f3"]}}
			expl, err := f.ex.ExplainGroup(group, mode, Powerset)
			if err != nil {
				t.Fatal(err)
			}
			if len(expl.Group) != 2 {
				t.Fatalf("Group = %v, want both members", expl.Group)
			}
			if expl.NewTop != f.ids["f2"] && expl.NewTop != f.ids["f3"] {
				t.Fatalf("NewTop = %v, not a group member", expl.NewTop)
			}
			// Replay: the new top-1 must be in the group.
			var o *hin.Overlay
			if mode == Remove {
				var err error
				o, err = hin.NewOverlay(f.g, expl.Edges, nil)
				if err != nil {
					t.Fatal(err)
				}
			} else {
				var err error
				o, err = hin.NewOverlay(f.g, nil, expl.Edges)
				if err != nil {
					t.Fatal(err)
				}
			}
			top, err := f.r.WithView(o).Recommend(f.ids["u"])
			if err != nil {
				t.Fatal(err)
			}
			if top != f.ids["f2"] && top != f.ids["f3"] {
				t.Fatalf("replayed top %v not in group", top)
			}
		})
	}
}

func TestExplainGroupEasierThanWeakestMember(t *testing.T) {
	// The f3 single question is not answerable in Remove mode (f2
	// intercepts); as a group question {f2, f3} it is — because f2
	// counts as success.
	f := newFixture(t, Options{})
	if _, err := f.ex.ExplainWith(Query{User: f.ids["u"], WNI: f.ids["f3"]}, Remove, Exhaustive); err == nil {
		t.Skip("fixture assumption broken")
	}
	expl, err := f.ex.ExplainGroup(
		GroupQuery{User: f.ids["u"], Items: []hin.NodeID{f.ids["f3"], f.ids["f2"]}},
		Remove, Exhaustive)
	if err != nil {
		t.Fatalf("group query should succeed via f2: %v", err)
	}
	if expl.NewTop != f.ids["f2"] {
		t.Fatalf("NewTop = %v, want f2", expl.NewTop)
	}
}

func TestExplainGroupValidation(t *testing.T) {
	f := newFixture(t, Options{})
	u := f.ids["u"]
	cases := []struct {
		name    string
		items   []hin.NodeID
		wantErr error
	}{
		{"empty group", nil, ErrEmptyGroup},
		{"contains current rec", []hin.NodeID{f.ids["p3"]}, ErrAlreadyTop},
		{"all interacted", []hin.NodeID{f.ids["p1"], f.ids["p2"]}, ErrEmptyGroup},
		{"non items", []hin.NodeID{f.ids["v"], f.ids["cF"]}, ErrEmptyGroup},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := f.ex.ExplainGroup(GroupQuery{User: u, Items: tc.items}, Remove, Powerset)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestExplainGroupDeduplicates(t *testing.T) {
	f := newFixture(t, Options{})
	expl, err := f.ex.ExplainGroup(GroupQuery{
		User:  f.ids["u"],
		Items: []hin.NodeID{f.ids["f2"], f.ids["f2"], f.ids["f2"]},
	}, Add, Powerset)
	if err != nil {
		t.Fatal(err)
	}
	if len(expl.Group) != 1 {
		t.Fatalf("Group = %v, want deduplicated singleton", expl.Group)
	}
}

func TestExplainCategory(t *testing.T) {
	f := newFixture(t, Options{})
	// Category cF: members f1 (interacted, filtered), f2, f3.
	expl, err := f.ex.ExplainCategory(f.ids["u"], f.ids["cF"], 0, Add, Powerset)
	if err != nil {
		t.Fatal(err)
	}
	if len(expl.Group) != 2 {
		t.Fatalf("category group = %v, want {f2, f3}", expl.Group)
	}
	if expl.NewTop != f.ids["f2"] && expl.NewTop != f.ids["f3"] {
		t.Fatalf("NewTop = %v, not in category", expl.NewTop)
	}
}

func TestExplainCategoryMaxItems(t *testing.T) {
	f := newFixture(t, Options{})
	expl, err := f.ex.ExplainCategory(f.ids["u"], f.ids["cF"], 1, Add, Powerset)
	if err != nil {
		t.Fatal(err)
	}
	if len(expl.Group) != 1 {
		t.Fatalf("group = %v, want capped to 1", expl.Group)
	}
	// The cap keeps the best-scoring member (f2).
	if expl.Group[0] != f.ids["f2"] {
		t.Fatalf("cap kept %v, want the best-scoring member f2", expl.Group[0])
	}
}

func TestExplainCategoryErrors(t *testing.T) {
	f := newFixture(t, Options{})
	if _, err := f.ex.ExplainCategory(f.ids["u"], 999, 0, Add, Powerset); !errors.Is(err, ErrNotWhyNotItem) {
		t.Fatalf("err = %v, want ErrNotWhyNotItem", err)
	}
	// A user node has item neighbors (the things they rated), all of
	// which the target user may have interacted with — use a node with
	// no item neighbors instead: another category-free user is hard to
	// build here, so check the "no item neighbors" branch with a fresh
	// isolated node.
	iso := f.g.AddNode(f.g.Types().NodeType("category"), "empty-cat")
	if _, err := f.ex.ExplainCategory(f.ids["u"], iso, 0, Add, Powerset); !errors.Is(err, ErrEmptyGroup) {
		t.Fatalf("err = %v, want ErrEmptyGroup", err)
	}
}

func TestGroupCheckAcceptsAnyMemberMidSearch(t *testing.T) {
	// Directly exercise the widened CHECK: a session seeded on f3 with
	// accept={f2,f3} must report success for an edit that promotes f2.
	f := newFixture(t, Options{})
	s, err := f.ex.newSession(context.Background(), Query{User: f.ids["u"], WNI: f.ids["f3"]}, Remove)
	if err != nil {
		t.Fatal(err)
	}
	s.accept = map[hin.NodeID]bool{f.ids["f2"]: true, f.ids["f3"]: true}
	cands := []candidate{
		{edge: hin.Edge{From: f.ids["u"], To: f.ids["p1"], Type: f.rated, Weight: 1}, op: Remove},
		{edge: hin.Edge{From: f.ids["u"], To: f.ids["p2"], Type: f.rated, Weight: 1}, op: Remove},
	}
	ok, top, err := s.check(cands)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("group check rejected a member promotion (top = %v)", top)
	}
	if top != f.ids["f2"] {
		t.Fatalf("top = %v, want f2", top)
	}
}
