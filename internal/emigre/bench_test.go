package emigre

import (
	"context"
	"errors"
	"testing"
)

// newBenchFixture builds the shared two-cluster fixture for benchmarks.
func newBenchFixture(b *testing.B, opts Options) *fixture {
	b.Helper()
	return newFixture(b, opts)
}

func BenchmarkExplainByMethod(b *testing.B) {
	for _, mode := range []Mode{Remove, Add, Combined} {
		for _, method := range []Method{Incremental, Powerset, Exhaustive} {
			b.Run(mode.String()+"/"+method.String(), func(b *testing.B) {
				f := newBenchFixture(b, Options{})
				q := f.query()
				for i := 0; i < b.N; i++ {
					if _, err := f.ex.ExplainWith(q, mode, method); err != nil &&
						!errors.Is(err, ErrNoExplanation) {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkSearchSpaceDefinition(b *testing.B) {
	for _, mode := range []Mode{Remove, Add, Combined, Reweight} {
		b.Run(mode.String(), func(b *testing.B) {
			f := newBenchFixture(b, Options{})
			q := f.query()
			for i := 0; i < b.N; i++ {
				if _, err := f.ex.newSession(context.Background(), q, mode); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCheckEngines compares the static and dynamic CHECK
// paths over an identical query stream.
func BenchmarkAblationCheckEngines(b *testing.B) {
	b.Run("static", func(b *testing.B) {
		f := newBenchFixture(b, Options{})
		q := f.query()
		for i := 0; i < b.N; i++ {
			if _, err := f.ex.ExplainWith(q, Remove, Powerset); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dynamic", func(b *testing.B) {
		f := newBenchFixture(b, Options{DynamicCheck: true})
		q := f.query()
		for i := 0; i < b.N; i++ {
			if _, err := f.ex.ExplainWith(q, Remove, Powerset); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDiagnose(b *testing.B) {
	f := newBenchFixture(b, Options{})
	q := Query{User: f.ids["u"], WNI: f.ids["f3"]}
	for i := 0; i < b.N; i++ {
		if _, err := f.ex.Diagnose(q, Remove); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombinations(b *testing.B) {
	for _, c := range []int{2, 4} {
		b.Run(string(rune('0'+c)), func(b *testing.B) {
			count := 0
			for i := 0; i < b.N; i++ {
				combinations(16, c, func([]int) bool { count++; return true })
			}
			_ = count
		})
	}
}
