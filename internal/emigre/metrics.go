package emigre

import "github.com/why-not-xai/emigre/internal/obs"

// Delta-vs-full CHECK counters on the process-global obs registry.
// They are tallied at execution time (each screen or fallback as it
// happens, on whichever goroutine ran it), so under the parallel
// pipeline they include speculative work — unlike the Stats fields,
// which the committer folds in stream order and which therefore stay
// identical across worker counts.
var (
	deltaScreens = obs.Default().Counter("emigre_check_delta_screened_total",
		"CHECK evaluations decided or pre-screened on warm-start delta estimates.")
	deltaFallbacksC = obs.Default().Counter("emigre_check_delta_fallbacks_total",
		"CHECK evaluations that exceeded DeltaMaxEdits and ran a full recompute.")
)

func recordDeltaScreen() {
	if !obs.Enabled() {
		return
	}
	deltaScreens.Inc()
}

func recordDeltaFallback() {
	if !obs.Enabled() {
		return
	}
	deltaFallbacksC.Inc()
}
