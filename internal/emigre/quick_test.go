package emigre

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/rec"
)

// TestQuickSortCandidatesIsTotalOrder: sortCandidates must be a
// deterministic total order — sorting any permutation of the same
// candidate set yields the same sequence.
func TestQuickSortCandidatesIsTotalOrder(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%12) + 2
		cands := make([]candidate, size)
		for i := range cands {
			cands[i] = candidate{
				edge:         hin.Edge{From: 0, To: hin.NodeID(rng.Intn(6)), Type: hin.EdgeTypeID(rng.Intn(2))},
				op:           Mode(rng.Intn(2)),
				contribution: math.Round(rng.NormFloat64()*4) / 4, // force ties
			}
		}
		a := append([]candidate(nil), cands...)
		b := append([]candidate(nil), cands...)
		rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		sortCandidates(a)
		sortCandidates(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		// Contributions never increase along the order.
		for i := 1; i < len(a); i++ {
			if a[i-1].contribution < a[i].contribution {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCombinationsCountMatchesBinomial: the enumerator visits
// exactly C(n, k) combinations, each strictly increasing.
func TestQuickCombinationsCountMatchesBinomial(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%10) + 1
		k := int(kRaw%10) + 1
		count := 0
		valid := true
		combinations(n, k, func(idx []int) bool {
			count++
			for i := 1; i < len(idx); i++ {
				if idx[i] <= idx[i-1] {
					valid = false
				}
			}
			return true
		})
		return valid && count == binomial(n, k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTauEqualsContributionSum: on arbitrary user-item graphs,
// the search-space τ always equals the sum of the remove-candidate
// contributions (Algorithm 1's accumulation invariant).
func TestQuickTauEqualsContributionSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := hin.NewGraph()
		user := g.Types().NodeType("user")
		item := g.Types().NodeType("item")
		rated := g.Types().EdgeType("rated")
		nUsers, nItems := 3+rng.Intn(3), 6+rng.Intn(6)
		for i := 0; i < nUsers; i++ {
			g.AddNode(user, "")
		}
		for i := 0; i < nItems; i++ {
			g.AddNode(item, "")
		}
		for i := 0; i < nUsers*4; i++ {
			u := hin.NodeID(rng.Intn(nUsers))
			it := hin.NodeID(nUsers + rng.Intn(nItems))
			if !g.HasEdge(u, it) {
				_ = g.AddBidirectional(u, it, rated, 0.5+rng.Float64())
			}
		}
		cfg := rec.DefaultConfig(item)
		cfg.Beta = 1
		r, err := rec.New(g, cfg)
		if err != nil {
			return false
		}
		ex := New(g, r, Options{AllowedEdgeTypes: hin.NewEdgeTypeSet(rated), AddEdgeType: rated})
		u := hin.NodeID(rng.Intn(nUsers))
		top, err := r.TopN(u, 3)
		if err != nil || len(top) < 2 {
			return true // no scenario, vacuously fine
		}
		s, err := ex.newSession(context.Background(), Query{User: u, WNI: top[len(top)-1].Node}, Remove)
		if err != nil {
			return true
		}
		var sum float64
		for _, c := range s.cands {
			sum += c.contribution
		}
		return math.Abs(sum-s.tau) <= 1e-9*(1+math.Abs(s.tau))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVerifyAgreesWithReplay: for random hand-built counterfactual
// edge sets (valid removals of user actions), Verify must agree with an
// independent overlay replay.
func TestQuickVerifyAgreesWithReplay(t *testing.T) {
	f := func(seed int64, mask uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		fx := buildQuickFixture(rng)
		if fx == nil {
			return true
		}
		u := fx.user
		actions := fx.g.OutEdgesOfType(u, hin.NewEdgeTypeSet(fx.rated))
		if len(actions) == 0 {
			return true
		}
		var removals []hin.Edge
		for i, e := range actions {
			if mask&(1<<uint(i%8)) != 0 && len(removals) < len(actions)-1 {
				removals = append(removals, e)
			}
		}
		if len(removals) == 0 {
			return true
		}
		expl := &Explanation{Query: Query{User: u, WNI: fx.wni}, Mode: Remove, Removals: removals}
		ok, err := fx.ex.Verify(expl)
		if err != nil {
			return true // e.g. WNI became invalid; not this property's concern
		}
		o, err := hin.NewOverlay(fx.g, removals, nil)
		if err != nil {
			return false
		}
		topAfter, err := fx.r.WithView(o).Recommend(u)
		if err != nil {
			return !ok
		}
		return ok == (topAfter == fx.wni)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

type quickFixture struct {
	g     *hin.Graph
	r     *rec.Recommender
	ex    *Explainer
	rated hin.EdgeTypeID
	user  hin.NodeID
	wni   hin.NodeID
}

func buildQuickFixture(rng *rand.Rand) *quickFixture {
	g := hin.NewGraph()
	user := g.Types().NodeType("user")
	item := g.Types().NodeType("item")
	rated := g.Types().EdgeType("rated")
	nUsers, nItems := 3+rng.Intn(3), 6+rng.Intn(6)
	for i := 0; i < nUsers; i++ {
		g.AddNode(user, "")
	}
	for i := 0; i < nItems; i++ {
		g.AddNode(item, "")
	}
	for i := 0; i < nUsers*4; i++ {
		u := hin.NodeID(rng.Intn(nUsers))
		it := hin.NodeID(nUsers + rng.Intn(nItems))
		if !g.HasEdge(u, it) {
			_ = g.AddBidirectional(u, it, rated, 0.5+rng.Float64())
		}
	}
	cfg := rec.DefaultConfig(item)
	cfg.Beta = 1
	r, err := rec.New(g, cfg)
	if err != nil {
		return nil
	}
	u := hin.NodeID(rng.Intn(nUsers))
	top, err := r.TopN(u, 3)
	if err != nil || len(top) < 2 {
		return nil
	}
	return &quickFixture{
		g:     g,
		r:     r,
		ex:    New(g, r, Options{AllowedEdgeTypes: hin.NewEdgeTypeSet(rated), AddEdgeType: rated}),
		rated: rated,
		user:  u,
		wni:   top[1].Node,
	}
}
