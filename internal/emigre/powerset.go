package emigre

import (
	"errors"
	"fmt"
	"sort"

	"github.com/why-not-xai/emigre/internal/fmath"
)

// powerset implements Algorithm 4: restrict H to positive-contribution
// candidates, then examine candidate combinations in ascending size
// order (favoring minimal explanations) and, within a size, in
// descending total-contribution order (favoring promising ones). A
// combination whose total contribution flips the gap estimate is
// verified with CHECK; the first verified combination is returned.
//
// |H| is capped at Options.MaxSearchSpace (keeping the strongest
// candidates) and combination sizes at Options.MaxCombinationSize, so
// the powerset never degenerates into the full 2^|H| sweep the paper's
// complexity analysis warns about (§5.3).
//
// The strategy is a pure generator: it emits gap-flipping combinations
// in examination order and the shared CHECK pipeline (runChecks)
// verifies them — sequentially or speculatively in parallel, with
// identical results.
func (s *session) powerset() (*Explanation, error) {
	h := s.positiveCandidates(s.ex.opts.MaxSearchSpace)
	if len(h) == 0 {
		return nil, fmt.Errorf("%w (powerset, %s mode: no positive-contribution candidates)",
			ErrNoExplanation, s.mode)
	}
	maxSize := s.ex.opts.MaxCombinationSize
	if maxSize > len(h) {
		maxSize = len(h)
	}
	type combo struct {
		idx   []int
		total float64
	}
	gen := func(yield func(cands []candidate) bool) error {
		for size := 1; size <= maxSize; size++ {
			if err := s.canceled(); err != nil {
				return err
			}
			combos := make([]combo, 0, comboCapHint(len(h), size))
			combinations(len(h), size, func(idx []int) bool {
				var total float64
				for _, i := range idx {
					total += h[i].contribution
				}
				combos = append(combos, combo{idx: append([]int(nil), idx...), total: total})
				return true
			})
			sort.Slice(combos, func(i, j int) bool {
				if !fmath.Eq(combos[i].total, combos[j].total) {
					return combos[i].total > combos[j].total
				}
				return lexLess(combos[i].idx, combos[j].idx)
			})
			for _, cb := range combos {
				s.stats.CombosExamined++
				if !s.gapFlipped(s.tau - cb.total) {
					// This and all later combos of this size cannot flip the
					// estimated gap; move on to the next size.
					break
				}
				selected := make([]candidate, len(cb.idx))
				for i, j := range cb.idx {
					selected[i] = h[j]
				}
				if !yield(selected) {
					return nil
				}
			}
		}
		return nil
	}
	out, err := s.runChecks(gen)
	if err != nil {
		return nil, err
	}
	if out.expl != nil {
		return out.expl, nil
	}
	err = fmt.Errorf("%w (powerset, %s mode: |H|=%d, %d combos, %d checks)",
		ErrNoExplanation, s.mode, len(h), s.stats.CombosExamined, s.stats.Tests)
	if out.budgetHit {
		err = errors.Join(err, ErrBudgetExhausted)
	}
	return nil, err
}

func lexLess(a, b []int) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
