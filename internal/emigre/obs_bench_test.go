package emigre

import (
	"testing"

	"github.com/why-not-xai/emigre/internal/obs"
)

// BenchmarkExplainObsOverhead measures the explain hot path with metric
// recording on (the shipped default) and off, on the same fixture and
// query. The acceptance gate for the observability layer is <2%
// overhead between the two — instrumentation is batched at engine
// success returns, so the delta should be noise. Results are committed
// as BENCH_obs.json.
func BenchmarkExplainObsOverhead(b *testing.B) {
	defer obs.SetEnabled(true)
	run := func(b *testing.B, enabled bool) {
		obs.SetEnabled(enabled)
		f := newBenchFixture(b, Options{})
		q := f.query()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.ex.ExplainWith(q, Remove, Powerset); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("enabled", func(b *testing.B) { run(b, true) })
	b.Run("disabled", func(b *testing.B) { run(b, false) })
}
