package emigre

import (
	"errors"
	"testing"

	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/rec"
)

func TestDiagnoseAnswerable(t *testing.T) {
	f := newFixture(t, Options{})
	d, err := f.ex.Diagnose(f.query(), Remove)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != FailureNone {
		t.Fatalf("Kind = %v, want FailureNone", d.Kind)
	}
}

func TestDiagnoseValidationErrorsPassThrough(t *testing.T) {
	f := newFixture(t, Options{})
	if _, err := f.ex.Diagnose(Query{User: f.ids["u"], WNI: f.ids["p3"]}, Remove); !errors.Is(err, ErrAlreadyTop) {
		t.Fatalf("err = %v, want ErrAlreadyTop", err)
	}
	if _, err := f.ex.Diagnose(Query{User: f.ids["u"], WNI: f.ids["cF"]}, Remove); !errors.Is(err, ErrNotWhyNotItem) {
		t.Fatalf("err = %v, want ErrNotWhyNotItem", err)
	}
}

// coldStartGraph: one user with a single action, a popular item powered
// by other users — the Figure-7 setting.
func coldStartGraph(t *testing.T) (*Explainer, Query, map[string]hin.NodeID) {
	t.Helper()
	g := hin.NewGraph()
	user := g.Types().NodeType("user")
	item := g.Types().NodeType("item")
	rated := g.Types().EdgeType("rated")
	ids := map[string]hin.NodeID{
		"u":       g.AddNode(user, "u"),
		"v":       g.AddNode(user, "v"),
		"w":       g.AddNode(user, "w"),
		"seed":    g.AddNode(item, "seed"),
		"popular": g.AddNode(item, "popular"),
		"niche":   g.AddNode(item, "niche"),
	}
	pairs := [][2]string{
		{"u", "seed"}, {"v", "seed"}, {"v", "popular"}, {"w", "seed"},
		{"w", "popular"}, {"v", "niche"},
	}
	for _, p := range pairs {
		if err := g.AddBidirectional(ids[p[0]], ids[p[1]], rated, 1); err != nil {
			t.Fatal(err)
		}
	}
	cfg := rec.DefaultConfig(item)
	cfg.Beta = 1
	r, err := rec.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Restrict additions to a non-recommendable type so the Add and
	// Combined probes cannot mask the inactivity diagnosis.
	ex := New(g, r, Options{
		AllowedEdgeTypes: hin.NewEdgeTypeSet(rated),
		AddEdgeType:      rated,
		AddTargetTypes:   []hin.NodeTypeID{user},
	})
	return ex, Query{User: ids["u"], WNI: ids["niche"]}, ids
}

func TestDiagnoseColdStart(t *testing.T) {
	ex, q, _ := coldStartGraph(t)
	if _, err := ex.ExplainWith(q, Remove, Exhaustive); err == nil {
		t.Skip("fixture assumption broken: remove mode answers the question")
	}
	d, err := ex.Diagnose(q, Remove)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != FailureColdStart {
		t.Fatalf("Kind = %v, want FailureColdStart (%s)", d.Kind, d.Detail)
	}
	if d.Actions != 1 {
		t.Fatalf("Actions = %d, want 1", d.Actions)
	}
}

func TestDiagnoseOutOfScope(t *testing.T) {
	// The fixture's f3 question: Remove mode fails (f2 intercepts), Add
	// mode succeeds — the §6.4 out-of-scope case.
	f := newFixture(t, Options{})
	q := Query{User: f.ids["u"], WNI: f.ids["f3"]}
	if _, err := f.ex.ExplainWith(q, Remove, Exhaustive); err == nil {
		t.Skip("fixture assumption broken: remove answers the f3 question")
	}
	d, err := f.ex.Diagnose(q, Remove)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != FailureOutOfScope {
		t.Fatalf("Kind = %v (%s), want FailureOutOfScope", d.Kind, d.Detail)
	}
	if d.WorkingMode != Add && d.WorkingMode != Combined {
		t.Fatalf("WorkingMode = %v, want Add or Combined", d.WorkingMode)
	}
	if d.Actions != 3 {
		t.Fatalf("Actions = %d, want 3", d.Actions)
	}
}

func TestDiagnosePopularItem(t *testing.T) {
	// Restrict the Add search space to a type with no valid targets so
	// every mode fails, and raise the user's action count above the
	// cold-start threshold.
	g := hin.NewGraph()
	user := g.Types().NodeType("user")
	item := g.Types().NodeType("item")
	rated := g.Types().EdgeType("rated")
	u := g.AddNode(user, "u")
	v := g.AddNode(user, "v")
	var seeds []hin.NodeID
	for i := 0; i < 8; i++ {
		it := g.AddNode(item, "")
		seeds = append(seeds, it)
		if err := g.AddBidirectional(u, it, rated, 1); err != nil {
			t.Fatal(err)
		}
		if err := g.AddBidirectional(v, it, rated, 1); err != nil {
			t.Fatal(err)
		}
	}
	popular := g.AddNode(item, "popular")
	niche := g.AddNode(item, "niche")
	// Several users prop up the popular item.
	for i := 0; i < 5; i++ {
		w := g.AddNode(user, "")
		if err := g.AddBidirectional(w, popular, rated, 1); err != nil {
			t.Fatal(err)
		}
		if err := g.AddBidirectional(w, seeds[0], rated, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddBidirectional(v, popular, rated, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddBidirectional(v, niche, rated, 0.1); err != nil {
		t.Fatal(err)
	}
	cfg := rec.DefaultConfig(item)
	cfg.Beta = 1
	r, err := rec.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex := New(g, r, Options{
		AllowedEdgeTypes: hin.NewEdgeTypeSet(rated),
		AddEdgeType:      rated,
		// Additions may only target users — i.e., nothing recommendable,
		// so the Add and Combined probes cannot help.
		AddTargetTypes: []hin.NodeTypeID{user},
	})
	q := Query{User: u, WNI: niche}
	if _, err := ex.ExplainWith(q, Remove, Exhaustive); err == nil {
		t.Skip("fixture assumption broken: remove answers the question")
	}
	d, err := ex.Diagnose(q, Remove)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != FailurePopularItem {
		t.Fatalf("Kind = %v (%s), want FailurePopularItem", d.Kind, d.Detail)
	}
	if d.PopularInDegree == 0 {
		t.Fatal("popular in-degree not reported")
	}
}

func TestFailureKindStrings(t *testing.T) {
	want := map[FailureKind]string{
		FailureNone:        "none",
		FailureColdStart:   "cold-start",
		FailureOutOfScope:  "out-of-scope",
		FailurePopularItem: "popular-item",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if FailureKind(9).String() == "" {
		t.Fatal("unknown kind should render")
	}
}
