package emigre

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/ppr"
	"github.com/why-not-xai/emigre/internal/rec"
)

// fixture is a two-cluster book-shop graph:
//
//	programming cluster: items p1,p2,p3 + category cP, fan v
//	fantasy cluster:     items f1,f2,f3 + category cF, fans w and x
//
// The target user u rated p1, p2 and f1, so the recommendation is p3;
// the natural Why-Not item is f2, which is explainable in both modes.
type fixture struct {
	g     *hin.Graph
	r     *rec.Recommender
	ex    *Explainer
	rated hin.EdgeTypeID
	ids   map[string]hin.NodeID
}

func newFixture(t testing.TB, opts Options) *fixture {
	t.Helper()
	g := hin.NewGraph()
	user := g.Types().NodeType("user")
	item := g.Types().NodeType("item")
	cat := g.Types().NodeType("category")
	rated := g.Types().EdgeType("rated")
	belongs := g.Types().EdgeType("belongs-to")

	ids := make(map[string]hin.NodeID)
	node := func(typ hin.NodeTypeID, name string) hin.NodeID {
		id := g.AddNode(typ, name)
		ids[name] = id
		return id
	}
	u := node(user, "u")
	v := node(user, "v")
	w := node(user, "w")
	x := node(user, "x")
	p1 := node(item, "p1")
	p2 := node(item, "p2")
	p3 := node(item, "p3")
	f1 := node(item, "f1")
	f2 := node(item, "f2")
	f3 := node(item, "f3")
	cP := node(cat, "cP")
	cF := node(cat, "cF")

	add := func(a, b hin.NodeID, typ hin.EdgeTypeID) {
		t.Helper()
		if err := g.AddBidirectional(a, b, typ, 1); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []hin.NodeID{p1, p2, p3} {
		add(i, cP, belongs)
	}
	for _, i := range []hin.NodeID{f1, f2, f3} {
		add(i, cF, belongs)
	}
	add(u, p1, rated)
	add(u, p2, rated)
	add(u, f1, rated)
	add(v, p1, rated)
	add(v, p2, rated)
	add(v, p3, rated)
	add(w, f1, rated)
	add(w, f2, rated)
	add(w, f3, rated)
	add(x, f1, rated)
	add(x, f2, rated)

	cfg := rec.DefaultConfig(item)
	cfg.Beta = 1
	r, err := rec.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if opts.AllowedEdgeTypes.IsAll() {
		opts.AllowedEdgeTypes = hin.NewEdgeTypeSet(rated)
	}
	opts.AddEdgeType = rated
	return &fixture{g: g, r: r, ex: New(g, r, opts), rated: rated, ids: ids}
}

func (f *fixture) query() Query {
	return Query{User: f.ids["u"], WNI: f.ids["f2"]}
}

func allMethods(mode Mode) []Method {
	ms := []Method{Incremental, Powerset, Exhaustive, ExhaustiveDirect}
	if mode == Remove {
		ms = append(ms, BruteForce)
	}
	return ms
}

func TestCurrentRecommendationIsP3(t *testing.T) {
	f := newFixture(t, Options{})
	top, err := f.ex.CurrentRecommendation(f.ids["u"])
	if err != nil {
		t.Fatal(err)
	}
	if top != f.ids["p3"] {
		t.Fatalf("rec = %v, want p3 (%v)", top, f.ids["p3"])
	}
}

func TestAllMethodsFindVerifiedExplanations(t *testing.T) {
	for _, mode := range []Mode{Remove, Add} {
		for _, method := range allMethods(mode) {
			t.Run(mode.String()+"/"+method.String(), func(t *testing.T) {
				f := newFixture(t, Options{})
				expl, err := f.ex.ExplainWith(f.query(), mode, method)
				if err != nil {
					t.Fatalf("ExplainWith: %v", err)
				}
				if expl.Size() == 0 {
					t.Fatal("empty explanation")
				}
				if method == ExhaustiveDirect {
					if expl.Verified {
						t.Fatal("direct method must not claim verification")
					}
				} else {
					if !expl.Verified {
						t.Fatal("explanation not verified")
					}
					if expl.NewTop != f.query().WNI {
						t.Fatalf("NewTop = %v, want WNI", expl.NewTop)
					}
				}
				if expl.OldTop != f.ids["p3"] {
					t.Fatalf("OldTop = %v, want p3", expl.OldTop)
				}
				// Independent re-verification through a fresh overlay.
				ok, err := f.ex.Verify(expl)
				if err != nil {
					t.Fatalf("Verify: %v", err)
				}
				if !ok {
					t.Fatalf("explanation %v does not survive independent verification", expl.Edges)
				}
				// Explanations are rooted at the user.
				for _, e := range expl.Edges {
					if e.From != f.query().User {
						t.Fatalf("edge %v not rooted at user", e)
					}
				}
				if expl.Stats.Duration <= 0 {
					t.Fatal("missing duration")
				}
			})
		}
	}
}

func TestRemoveModeUsesExistingEdges(t *testing.T) {
	f := newFixture(t, Options{})
	expl, err := f.ex.ExplainWith(f.query(), Remove, Powerset)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range expl.Edges {
		if _, ok := f.g.EdgeWeight(e.From, e.To, e.Type); !ok {
			t.Fatalf("remove-mode edge %v does not exist in the graph", e)
		}
	}
}

func TestAddModeUsesNonExistingEdges(t *testing.T) {
	f := newFixture(t, Options{})
	expl, err := f.ex.ExplainWith(f.query(), Add, Powerset)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range expl.Edges {
		if f.g.HasEdge(e.From, e.To) {
			t.Fatalf("add-mode edge %v already exists", e)
		}
		if e.To == f.query().WNI {
			t.Fatal("add-mode explanation must not connect the user to the WNI itself")
		}
		if !f.r.IsItem(e.To) {
			t.Fatalf("add-mode edge targets non-item %v", e.To)
		}
	}
}

func TestQueryValidation(t *testing.T) {
	f := newFixture(t, Options{})
	u := f.ids["u"]
	cases := []struct {
		name    string
		q       Query
		wantErr error
	}{
		{"wni already top", Query{User: u, WNI: f.ids["p3"]}, ErrAlreadyTop},
		{"wni interacted", Query{User: u, WNI: f.ids["p1"]}, ErrNotWhyNotItem},
		{"wni is a user", Query{User: u, WNI: f.ids["v"]}, ErrNotWhyNotItem},
		{"wni is a category", Query{User: u, WNI: f.ids["cF"]}, ErrNotWhyNotItem},
		{"wni is the user", Query{User: u, WNI: u}, ErrNotWhyNotItem},
		{"wni out of range", Query{User: u, WNI: 999}, ErrNotWhyNotItem},
		{"user out of range", Query{User: -2, WNI: f.ids["f2"]}, ErrNotWhyNotItem},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := f.ex.Explain(tc.q); !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestBruteForceRejectedInAddMode(t *testing.T) {
	f := newFixture(t, Options{})
	if _, err := f.ex.ExplainWith(f.query(), Add, BruteForce); !errors.Is(err, ErrBruteForceAddMode) {
		t.Fatalf("err = %v, want ErrBruteForceAddMode", err)
	}
}

func TestUnknownMethodRejected(t *testing.T) {
	f := newFixture(t, Options{})
	if _, err := f.ex.ExplainWith(f.query(), Remove, Method(99)); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestTauMatchesPPRGap(t *testing.T) {
	// With T_e = all edge types, tau must equal
	// (PPR(u,rec) − PPR(u,WNI)) / (1−α) by the linearity of Eq. 1 over
	// the user's out-edges (DESIGN.md §3.2).
	f := newFixture(t, Options{AllowedEdgeTypes: hin.NewEdgeTypeSet()})
	// Force the all-types set (newFixture only overrides the zero set).
	f.ex.opts.AllowedEdgeTypes = hin.EdgeTypeSet{}
	s, err := f.ex.newSession(context.Background(), f.query(), Remove)
	if err != nil {
		t.Fatal(err)
	}
	pw := ppr.NewPower(f.r.Config().PPR)
	row, err := pw.FromSource(f.r.View(), f.query().User)
	if err != nil {
		t.Fatal(err)
	}
	alpha := f.r.Config().PPR.Alpha
	want := (row[s.rec] - row[f.query().WNI]) / (1 - alpha)
	if diff := math.Abs(s.tau - want); diff > 1e-6 {
		t.Fatalf("tau = %g, want %g (diff %g)", s.tau, want, diff)
	}
	if s.tau <= 0 {
		t.Fatal("tau must start positive: rec dominates WNI")
	}
}

func TestSearchSpaceRemove(t *testing.T) {
	f := newFixture(t, Options{})
	s, err := f.ex.newSession(context.Background(), f.query(), Remove)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.cands) != 3 { // u's rated edges: p1, p2, f1
		t.Fatalf("|H| = %d, want 3", len(s.cands))
	}
	got := make(map[hin.NodeID]float64)
	for _, c := range s.cands {
		got[c.edge.To] = c.contribution
		if c.edge.From != f.query().User {
			t.Fatalf("candidate edge %v not rooted at user", c.edge)
		}
	}
	// p1 and p2 feed the programming cluster (rec side): positive.
	if got[f.ids["p1"]] <= 0 || got[f.ids["p2"]] <= 0 {
		t.Fatalf("programming edges should favor rec: %v", got)
	}
	// f1 feeds the fantasy cluster (WNI side): negative.
	if got[f.ids["f1"]] >= 0 {
		t.Fatalf("fantasy edge should favor WNI: %v", got)
	}
	// Descending order.
	for i := 1; i < len(s.cands); i++ {
		if s.cands[i-1].contribution < s.cands[i].contribution {
			t.Fatal("candidates not sorted by descending contribution")
		}
	}
}

func TestSearchSpaceAdd(t *testing.T) {
	f := newFixture(t, Options{})
	s, err := f.ex.newSession(context.Background(), f.query(), Add)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range s.cands {
		if c.edge.To == f.query().WNI {
			t.Fatal("WNI must not be an add candidate")
		}
		if c.edge.To == f.query().User {
			t.Fatal("user must not be an add candidate")
		}
		if f.g.HasEdge(f.query().User, c.edge.To) {
			t.Fatalf("existing neighbor %v offered as add candidate", c.edge.To)
		}
		if !f.r.IsItem(c.edge.To) {
			t.Fatalf("non-item add candidate %v", c.edge.To)
		}
		if c.edge.Weight != DefaultAddEdgeWeight {
			t.Fatalf("add edge weight = %g, want default %g", c.edge.Weight, DefaultAddEdgeWeight)
		}
	}
	// f3 (same cluster as WNI) must rank above p3 (rec's cluster).
	if len(s.cands) < 2 || s.cands[0].edge.To != f.ids["f3"] {
		t.Fatalf("top add candidate should be f3, got %+v", s.cands)
	}
}

func TestPowersetNotLargerThanIncremental(t *testing.T) {
	f := newFixture(t, Options{})
	inc, err := f.ex.ExplainWith(f.query(), Remove, Incremental)
	if err != nil {
		t.Fatal(err)
	}
	pow, err := f.ex.ExplainWith(f.query(), Remove, Powerset)
	if err != nil {
		t.Fatal(err)
	}
	if pow.Size() > inc.Size() {
		t.Fatalf("powerset size %d > incremental size %d", pow.Size(), inc.Size())
	}
	brute, err := f.ex.ExplainWith(f.query(), Remove, BruteForce)
	if err != nil {
		t.Fatal(err)
	}
	if brute.Size() > pow.Size() {
		t.Fatalf("brute force size %d > powerset size %d (brute is minimal)", brute.Size(), pow.Size())
	}
}

func TestBruteForceMinimality(t *testing.T) {
	f := newFixture(t, Options{})
	expl, err := f.ex.ExplainWith(f.query(), Remove, BruteForce)
	if err != nil {
		t.Fatal(err)
	}
	// Every strictly smaller subset of the user's actions must fail.
	if expl.Size() != 1 {
		// Size 1 is trivially minimal; for larger sizes check subsets.
		s, err := f.ex.newSession(context.Background(), f.query(), Remove)
		if err != nil {
			t.Fatal(err)
		}
		combinations(len(expl.Edges), expl.Size()-1, func(idx []int) bool {
			sub := make([]candidate, len(idx))
			for i, j := range idx {
				sub[i] = candidate{edge: expl.Edges[j], op: Remove}
			}
			ok, _, err := s.check(sub)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Fatalf("sub-explanation %v works: brute force not minimal", sub)
			}
			return true
		})
	}
}

func TestDescribe(t *testing.T) {
	f := newFixture(t, Options{})
	rm, err := f.ex.ExplainWith(f.query(), Remove, Powerset)
	if err != nil {
		t.Fatal(err)
	}
	text := rm.Describe(f.g)
	if !strings.Contains(text, "Had you not interacted with") || !strings.Contains(text, "f2") {
		t.Fatalf("unexpected remove description: %q", text)
	}
	ad, err := f.ex.ExplainWith(f.query(), Add, Powerset)
	if err != nil {
		t.Fatal(err)
	}
	text = ad.Describe(f.g)
	if !strings.Contains(text, "Had you interacted with") || !strings.Contains(text, "f2") {
		t.Fatalf("unexpected add description: %q", text)
	}
}

func TestImpossibleScenarioReturnsNoExplanation(t *testing.T) {
	// "Popular item" failure case (§6.4, Figure 7): a user with a single
	// action cannot dethrone a popular item by removals — removing the
	// only edge isolates the user entirely.
	g := hin.NewGraph()
	user := g.Types().NodeType("user")
	item := g.Types().NodeType("item")
	rated := g.Types().EdgeType("rated")
	u := g.AddNode(user, "u")
	v := g.AddNode(user, "v")
	popular := g.AddNode(item, "popular")
	niche := g.AddNode(item, "niche")
	seed := g.AddNode(item, "seed")
	mustAdd := func(a, b hin.NodeID) {
		if err := g.AddBidirectional(a, b, rated, 1); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(u, seed)
	mustAdd(v, seed)
	mustAdd(v, popular)
	mustAdd(v, niche)
	cfg := rec.DefaultConfig(item)
	cfg.Beta = 1
	r, err := rec.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex := New(g, r, Options{AllowedEdgeTypes: hin.NewEdgeTypeSet(rated), AddEdgeType: rated})
	top, err := r.Recommend(u)
	if err != nil {
		t.Fatal(err)
	}
	if top == niche {
		t.Skip("fixture assumption broken: niche already top")
	}
	for _, method := range []Method{Incremental, Powerset, Exhaustive, BruteForce} {
		if _, err := ex.ExplainWith(Query{User: u, WNI: niche}, Remove, method); !errors.Is(err, ErrNoExplanation) {
			t.Fatalf("%v: err = %v, want ErrNoExplanation", method, err)
		}
	}
}

func TestBudgetExhaustion(t *testing.T) {
	f := newFixture(t, Options{MaxTests: 1})
	// Query f3 in remove mode: the first check promotes f2 (the stronger
	// fantasy item), so more than one check is needed and the budget of
	// one must trip.
	q := Query{User: f.ids["u"], WNI: f.ids["f3"]}
	_, err := f.ex.ExplainWith(q, Remove, BruteForce)
	if err == nil {
		t.Skip("fixture found an explanation within one test")
	}
	if !errors.Is(err, ErrNoExplanation) {
		t.Fatalf("err = %v, want ErrNoExplanation", err)
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted in the chain", err)
	}
}

func TestStatsPopulated(t *testing.T) {
	f := newFixture(t, Options{})
	expl, err := f.ex.ExplainWith(f.query(), Remove, Powerset)
	if err != nil {
		t.Fatal(err)
	}
	st := expl.Stats
	if st.SearchSpace != 3 {
		t.Fatalf("SearchSpace = %d, want 3", st.SearchSpace)
	}
	if st.Tests == 0 || st.CombosExamined == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestModeMethodStrings(t *testing.T) {
	if Remove.String() != "remove" || Add.String() != "add" {
		t.Fatal("mode strings wrong")
	}
	names := map[Method]string{
		Incremental:      "incremental",
		Powerset:         "powerset",
		Exhaustive:       "exhaustive",
		ExhaustiveDirect: "exhaustive-direct",
		BruteForce:       "brute-force",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	if !strings.Contains(Mode(9).String(), "9") || !strings.Contains(Method(9).String(), "9") {
		t.Fatal("unknown enum strings should embed the value")
	}
}

func TestCombinations(t *testing.T) {
	var got [][]int
	combinations(5, 2, func(idx []int) bool {
		got = append(got, append([]int(nil), idx...))
		return true
	})
	if len(got) != 10 {
		t.Fatalf("C(5,2) enumerated %d combos, want 10", len(got))
	}
	if got[0][0] != 0 || got[0][1] != 1 {
		t.Fatalf("first combo = %v, want [0 1]", got[0])
	}
	if got[9][0] != 3 || got[9][1] != 4 {
		t.Fatalf("last combo = %v, want [3 4]", got[9])
	}
	// Early stop.
	n := 0
	combinations(5, 2, func([]int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d, want 3", n)
	}
	// Degenerate sizes.
	combinations(3, 0, func([]int) bool { t.Fatal("c=0 must not visit"); return true })
	combinations(3, 4, func([]int) bool { t.Fatal("c>n must not visit"); return true })
}

func TestBinomial(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {10, 3, 120}, {0, 0, 1}, {3, 5, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Fatalf("binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

// TestRandomGraphExplanationsAlwaysVerify is the core soundness
// property: whatever a (non-direct) method returns, applying it to the
// graph makes WNI the top-1 recommendation.
func TestRandomGraphExplanationsAlwaysVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	for trial := 0; trial < 15; trial++ {
		g := hin.NewGraph()
		user := g.Types().NodeType("user")
		item := g.Types().NodeType("item")
		rated := g.Types().EdgeType("rated")
		nUsers, nItems := 4+rng.Intn(4), 8+rng.Intn(8)
		for i := 0; i < nUsers; i++ {
			g.AddNode(user, "")
		}
		for i := 0; i < nItems; i++ {
			g.AddNode(item, "")
		}
		for i := 0; i < nUsers*4; i++ {
			u := hin.NodeID(rng.Intn(nUsers))
			it := hin.NodeID(nUsers + rng.Intn(nItems))
			if g.HasEdge(u, it) {
				continue
			}
			_ = g.AddBidirectional(u, it, rated, 1+rng.Float64()*4)
		}
		cfg := rec.DefaultConfig(item)
		cfg.Beta = 1
		r, err := rec.New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ex := New(g, r, Options{AllowedEdgeTypes: hin.NewEdgeTypeSet(rated), AddEdgeType: rated})
		u := hin.NodeID(rng.Intn(nUsers))
		top, err := r.TopN(u, 5)
		if err != nil || len(top) < 2 {
			continue
		}
		wni := top[1+rng.Intn(len(top)-1)].Node
		q := Query{User: u, WNI: wni}
		for _, mode := range []Mode{Remove, Add} {
			for _, method := range []Method{Incremental, Powerset, Exhaustive} {
				expl, err := ex.ExplainWith(q, mode, method)
				if errors.Is(err, ErrNoExplanation) {
					continue
				}
				if err != nil {
					t.Fatalf("trial %d %v/%v: %v", trial, mode, method, err)
				}
				ok, err := ex.Verify(expl)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("trial %d %v/%v: unsound explanation %v", trial, mode, method, expl.Edges)
				}
			}
		}
	}
}
