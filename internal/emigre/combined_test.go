package emigre

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/rec"
)

func TestCombinedModeAllMethods(t *testing.T) {
	for _, method := range []Method{Incremental, Powerset, Exhaustive, ExhaustiveDirect} {
		t.Run(method.String(), func(t *testing.T) {
			f := newFixture(t, Options{})
			expl, err := f.ex.ExplainWith(f.query(), Combined, method)
			if err != nil {
				t.Fatalf("ExplainWith: %v", err)
			}
			if len(expl.Removals)+len(expl.Additions) != expl.Size() {
				t.Fatalf("removals(%d)+additions(%d) != size(%d)",
					len(expl.Removals), len(expl.Additions), expl.Size())
			}
			// Removals must exist in the graph; additions must not.
			for _, e := range expl.Removals {
				if _, ok := f.g.EdgeWeight(e.From, e.To, e.Type); !ok {
					t.Fatalf("removal %v does not exist", e)
				}
			}
			for _, e := range expl.Additions {
				if f.g.HasEdge(e.From, e.To) {
					t.Fatalf("addition %v already exists", e)
				}
			}
			ok, err := f.ex.Verify(expl)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("combined explanation %v/%v does not verify", expl.Removals, expl.Additions)
			}
		})
	}
}

func TestCombinedBruteForceRejected(t *testing.T) {
	f := newFixture(t, Options{})
	if _, err := f.ex.ExplainWith(f.query(), Combined, BruteForce); !errors.Is(err, ErrBruteForceAddMode) {
		t.Fatalf("err = %v, want ErrBruteForceAddMode", err)
	}
}

func TestCombinedSearchSpaceIsUnion(t *testing.T) {
	f := newFixture(t, Options{})
	sr, err := f.ex.newSession(context.Background(), f.query(), Remove)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := f.ex.newSession(context.Background(), f.query(), Add)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := f.ex.newSession(context.Background(), f.query(), Combined)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.cands) != len(sr.cands)+len(sa.cands) {
		t.Fatalf("combined |H| = %d, want %d + %d", len(sc.cands), len(sr.cands), len(sa.cands))
	}
	removeOps, addOps := 0, 0
	for _, c := range sc.cands {
		switch c.op {
		case Remove:
			removeOps++
		case Add:
			addOps++
		default:
			t.Fatalf("candidate with op %v", c.op)
		}
	}
	if removeOps != len(sr.cands) || addOps != len(sa.cands) {
		t.Fatalf("op split %d/%d, want %d/%d", removeOps, addOps, len(sr.cands), len(sa.cands))
	}
	// Same tau in all three modes (it is always the remove-style gap).
	if sc.tau != sr.tau || sc.tau != sa.tau {
		t.Fatalf("tau differs across modes: %g / %g / %g", sr.tau, sa.tau, sc.tau)
	}
}

func TestCombinedDescribeMixed(t *testing.T) {
	f := newFixture(t, Options{})
	rated := f.rated
	expl := &Explanation{
		Query:     f.query(),
		Mode:      Combined,
		Removals:  []hin.Edge{{From: f.ids["u"], To: f.ids["p1"], Type: rated, Weight: 1}},
		Additions: []hin.Edge{{From: f.ids["u"], To: f.ids["f3"], Type: rated, Weight: 1}},
	}
	text := expl.Describe(f.g)
	if !strings.Contains(text, "Had you not interacted with p1 but interacted with f3") {
		t.Fatalf("mixed description wrong: %q", text)
	}
}

func TestVerifyMixedExplanation(t *testing.T) {
	// Hand-build a mixed counterfactual and push it through Verify: the
	// mechanics must apply removals and additions in one overlay.
	f := newFixture(t, Options{})
	rated := f.rated
	expl := &Explanation{
		Query: f.query(),
		Mode:  Combined,
		Removals: []hin.Edge{
			{From: f.ids["u"], To: f.ids["p1"], Type: rated, Weight: 1},
			{From: f.ids["u"], To: f.ids["p2"], Type: rated, Weight: 1},
		},
		Additions: []hin.Edge{
			{From: f.ids["u"], To: f.ids["f3"], Type: rated, Weight: 1},
		},
	}
	ok, err := f.ex.Verify(expl)
	if err != nil {
		t.Fatal(err)
	}
	// Independently compute the outcome.
	o, err := hin.NewOverlay(f.g, expl.Removals, expl.Additions)
	if err != nil {
		t.Fatal(err)
	}
	top, err := f.r.WithView(o).Recommend(f.ids["u"])
	if err != nil {
		t.Fatal(err)
	}
	if ok != (top == f.query().WNI) {
		t.Fatalf("Verify = %v but replay top = %v", ok, f.g.Label(top))
	}
}

// TestCombinedSolvesOutOfScopeScenario builds the §6.4 "out of scope"
// case: neither pure mode can promote the Why-Not item within a
// 1-candidate budget, but mixing one removal with one addition can.
func TestCombinedSolvesRandomScenariosAtLeastAsOftenAsPureModes(t *testing.T) {
	rng := rand.New(rand.NewSource(515))
	combinedWins, pureWins := 0, 0
	for trial := 0; trial < 20; trial++ {
		g := hin.NewGraph()
		user := g.Types().NodeType("user")
		item := g.Types().NodeType("item")
		rated := g.Types().EdgeType("rated")
		nUsers, nItems := 4+rng.Intn(3), 8+rng.Intn(6)
		for i := 0; i < nUsers; i++ {
			g.AddNode(user, "")
		}
		for i := 0; i < nItems; i++ {
			g.AddNode(item, "")
		}
		for i := 0; i < nUsers*4; i++ {
			u := hin.NodeID(rng.Intn(nUsers))
			it := hin.NodeID(nUsers + rng.Intn(nItems))
			if !g.HasEdge(u, it) {
				_ = g.AddBidirectional(u, it, rated, 1+rng.Float64()*3)
			}
		}
		cfg := rec.DefaultConfig(item)
		cfg.Beta = 1
		r, err := rec.New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ex := New(g, r, Options{AllowedEdgeTypes: hin.NewEdgeTypeSet(rated), AddEdgeType: rated})
		u := hin.NodeID(rng.Intn(nUsers))
		top, err := r.TopN(u, 4)
		if err != nil || len(top) < 2 {
			continue
		}
		q := Query{User: u, WNI: top[len(top)-1].Node}
		pure := false
		for _, mode := range []Mode{Remove, Add} {
			if _, err := ex.ExplainWith(q, mode, Exhaustive); err == nil {
				pure = true
				break
			}
		}
		combined := false
		if _, err := ex.ExplainWith(q, Combined, Exhaustive); err == nil {
			combined = true
		}
		if pure {
			pureWins++
		}
		if combined {
			combinedWins++
		}
	}
	// Combined subsumes both search spaces; with the exhaustive strategy
	// it should succeed at least as often as the pure modes on this
	// sample (heuristics could in principle diverge, so compare counts,
	// not per-scenario implication).
	if combinedWins < pureWins {
		t.Fatalf("combined solved %d scenarios, pure modes solved %d", combinedWins, pureWins)
	}
}
