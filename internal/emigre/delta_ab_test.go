package emigre

import (
	"reflect"
	"testing"

	"github.com/why-not-xai/emigre/internal/testleak"
)

// stripVariance zeroes the Explanation fields allowed to differ between
// a delta-screened run and a full-recompute run: wall-clock and the
// delta screen's own activity tallies. Everything else — the candidate
// set, the verdicts behind it, Tests, CombosExamined — must match.
func stripVariance(e Explanation) Explanation {
	e.Stats.Duration = 0
	e.Stats.DeltaScreened = 0
	e.Stats.DeltaFallbacks = 0
	return e
}

// TestDeltaABExplanationsIdentical is the acceptance A/B for the
// warm-start CHECK screen: across modes × methods × worker counts,
// DeltaCheck may only change how a rejection is computed, never which
// candidate set is returned, what its stats say, or which error comes
// back. The warm estimates carry a different (but ε-bounded) error than
// a cold push, so this is the test that the screen's verdict rule and
// its static pass confirmation together preserve exact output equality.
func TestDeltaABExplanationsIdentical(t *testing.T) {
	testleak.Check(t)
	for _, mode := range []Mode{Remove, Add, Combined, Reweight} {
		for _, method := range allMethods(mode) {
			cold := newFixture(t, Options{Mode: mode, Method: method})
			want, errW := cold.ex.Explain(cold.query())
			for _, workers := range []int{0, 2, 4} {
				warm := newFixture(t, Options{
					Mode: mode, Method: method, DeltaCheck: true, Parallelism: workers,
				})
				got, errG := warm.ex.Explain(warm.query())
				if (errW == nil) != (errG == nil) {
					t.Fatalf("%v/%v w=%d: cold err=%v delta err=%v", mode, method, workers, errW, errG)
				}
				if errW != nil {
					if errW.Error() != errG.Error() {
						t.Fatalf("%v/%v w=%d: error mismatch:\ncold: %q\ndelta: %q",
							mode, method, workers, errW, errG)
					}
					continue
				}
				w, g := stripVariance(*want), stripVariance(*got)
				if !reflect.DeepEqual(&w, &g) {
					t.Errorf("%v/%v w=%d: explanations diverge:\ncold: %+v\ndelta: %+v",
						mode, method, workers, &w, &g)
				}
				if method != ExhaustiveDirect && got.Stats.Tests > 0 &&
					got.Stats.DeltaScreened+got.Stats.DeltaFallbacks != got.Stats.Tests {
					t.Errorf("%v/%v w=%d: %d checks but screened=%d fallbacks=%d",
						mode, method, workers, got.Stats.Tests,
						got.Stats.DeltaScreened, got.Stats.DeltaFallbacks)
				}
			}
		}
	}
}

// TestDeltaStatsDeterministicAcrossWorkers pins that the delta tallies
// themselves — not just the explanation — are identical for any worker
// count: the committer folds them in stream order for committed checks
// only, exactly like Tests.
func TestDeltaStatsDeterministicAcrossWorkers(t *testing.T) {
	testleak.Check(t)
	for _, method := range []Method{Powerset, BruteForce} {
		seq := newFixture(t, Options{Mode: Remove, Method: method, DeltaCheck: true})
		want, err := seq.ex.Explain(seq.query())
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			par := newFixture(t, Options{
				Mode: Remove, Method: method, DeltaCheck: true, Parallelism: workers,
			})
			got, err := par.ex.Explain(par.query())
			if err != nil {
				t.Fatal(err)
			}
			w, g := *want, *got
			w.Stats.Duration, g.Stats.Duration = 0, 0
			if !reflect.DeepEqual(&w, &g) {
				t.Errorf("%v w=%d: stats diverge from sequential:\nseq: %+v\npar: %+v",
					method, workers, w.Stats, g.Stats)
			}
		}
	}
}

// TestDeltaFallbackOnLargeEditSets forces the DeltaMaxEdits guard: with
// a cap of one weight change, every multi-candidate set the brute-force
// stream reaches (a pair = two changes) must take the full-recompute
// fallback. The u→f3 query has no removal explanation, so the stream
// exhausts all 7 subsets of |A|=3 — three screened singles, four
// fallback multi-sets — and the delta run must report the exact
// exhaustion error of the cold run. Screen/fallback participation is
// read off the process-global obs counters because a no-explanation
// result carries no Stats.
func TestDeltaFallbackOnLargeEditSets(t *testing.T) {
	cold := newFixture(t, Options{})
	q := Query{User: cold.ids["u"], WNI: cold.ids["f3"]}
	_, errW := cold.ex.ExplainWith(q, Remove, BruteForce)
	if errW == nil {
		t.Fatal("fixture unexpectedly found a removal explanation for f3")
	}
	warm := newFixture(t, Options{DeltaCheck: true, DeltaMaxEdits: 1})
	screens0, fallbacks0 := deltaScreens.Value(), deltaFallbacksC.Value()
	_, errG := warm.ex.ExplainWith(q, Remove, BruteForce)
	if errG == nil || errW.Error() != errG.Error() {
		t.Fatalf("error mismatch:\ncold: %v\ndelta: %v", errW, errG)
	}
	screens := deltaScreens.Value() - screens0
	fallbacks := deltaFallbacksC.Value() - fallbacks0
	if screens != 3 || fallbacks != 4 {
		t.Fatalf("screens=%d fallbacks=%d, want 3 screened singles and 4 fallback multi-sets", screens, fallbacks)
	}
}

// TestDeltaDynamicPrecedence pins the documented precedence: with both
// options set, the serial dynamic-push path runs and the delta screen
// stays cold (no base fetch, no screen tallies, sequential evaluator).
func TestDeltaDynamicPrecedence(t *testing.T) {
	f := newFixture(t, Options{
		Mode: Remove, Method: Powerset, DeltaCheck: true, DynamicCheck: true, Parallelism: 4,
	})
	expl, err := f.ex.Explain(f.query())
	if err != nil {
		t.Fatal(err)
	}
	if expl.Stats.DeltaScreened != 0 || expl.Stats.DeltaFallbacks != 0 {
		t.Fatalf("delta tallies %d/%d under DynamicCheck, want 0/0",
			expl.Stats.DeltaScreened, expl.Stats.DeltaFallbacks)
	}
	if ps := f.ex.PipelineStats(); ps.ParallelRuns != 0 {
		t.Fatalf("ParallelRuns = %d, want 0 (DynamicCheck forces sequential)", ps.ParallelRuns)
	}
}

// TestDeltaScreenActuallyScreens guards against the screen silently
// never engaging (which would make every A/B above pass trivially):
// a standard Remove/Powerset search must resolve most of its checks on
// warm estimates.
func TestDeltaScreenActuallyScreens(t *testing.T) {
	f := newFixture(t, Options{Mode: Remove, Method: Powerset, DeltaCheck: true})
	expl, err := f.ex.Explain(f.query())
	if err != nil {
		t.Fatal(err)
	}
	if expl.Stats.Tests == 0 {
		t.Skip("fixture found an explanation without CHECKs")
	}
	if expl.Stats.DeltaScreened == 0 {
		t.Fatalf("stats = %+v: delta screen never engaged", expl.Stats)
	}
	if expl.Stats.DeltaFallbacks != 0 {
		t.Fatalf("stats = %+v: single-candidate removals should never exceed DeltaMaxEdits", expl.Stats)
	}
}

// TestDeltaVerifyAgrees runs the explainer's own Verify over a
// delta-screened explanation: the verification CHECK re-runs cold, so
// agreement here is an end-to-end soundness check on warm verdicts.
func TestDeltaVerifyAgrees(t *testing.T) {
	for _, mode := range []Mode{Remove, Add} {
		f := newFixture(t, Options{Mode: mode, Method: Powerset, DeltaCheck: true, Parallelism: 2})
		expl, err := f.ex.Explain(f.query())
		if err != nil {
			t.Fatal(err)
		}
		ok, err := f.ex.Verify(expl)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("%v: delta-screened explanation failed cold verification: %+v", mode, expl)
		}
	}
}
