package emigre

import (
	"testing"

	"github.com/why-not-xai/emigre/internal/fault"
)

// benchGateSite is a bench-only failpoint that is armed but never Hit:
// arming it opens the process-wide fast gate so every planted hot-path
// site takes its slow path (rule load, nil, return) without injecting
// anything. That is the most expensive non-firing state the substrate
// has, so the disarmed-vs-gate-open delta upper-bounds what failpoints
// can cost a production process.
var benchGateSite = fault.Register("bench.gate.sentinel")

// BenchmarkExplainFaultOverhead measures the explain hot path with the
// failpoint substrate in its two non-injecting states, on the same
// fixture and query:
//
//   - disarmed: the shipped default — no schedule applied, every
//     Site.Hit is one atomic load of the shared armed counter;
//   - gate-open: an unrelated sentinel site is armed, forcing every
//     hot-path Hit through the per-site rule load.
//
// The acceptance gate for the substrate is <1% overhead for the
// disarmed state; since disarmed work is a strict subset of gate-open
// work, gate-open within 1% of disarmed proves it with margin. Results
// are committed as BENCH_fault.json.
func BenchmarkExplainFaultOverhead(b *testing.B) {
	run := func(b *testing.B, spec string) {
		fault.DisarmAll()
		if spec != "" {
			if err := fault.Apply(spec); err != nil {
				b.Fatal(err)
			}
		}
		defer fault.DisarmAll()
		f := newBenchFixture(b, Options{})
		q := f.query()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.ex.ExplainWith(q, Remove, Powerset); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disarmed", func(b *testing.B) { run(b, "") })
	b.Run("gate-open", func(b *testing.B) { run(b, "bench.gate.sentinel=sleep(0s)") })
}
