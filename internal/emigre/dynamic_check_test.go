package emigre

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/rec"
)

func TestDynamicCheckMatchesStaticOnFixture(t *testing.T) {
	for _, mode := range []Mode{Remove, Add, Combined} {
		for _, method := range []Method{Incremental, Powerset, Exhaustive} {
			t.Run(mode.String()+"/"+method.String(), func(t *testing.T) {
				static := newFixture(t, Options{})
				dynamic := newFixture(t, Options{DynamicCheck: true})
				se, serr := static.ex.ExplainWith(static.query(), mode, method)
				de, derr := dynamic.ex.ExplainWith(dynamic.query(), mode, method)
				if (serr == nil) != (derr == nil) {
					t.Fatalf("static err %v, dynamic err %v", serr, derr)
				}
				if serr != nil {
					return
				}
				// Both must be real explanations; the exact edge sets may
				// differ only through tolerance-level tie-breaks.
				ok, err := static.ex.Verify(de)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("dynamic-check explanation %v fails static verification", de.Edges)
				}
				if se.Size() != de.Size() {
					t.Fatalf("sizes differ: static %d vs dynamic %d", se.Size(), de.Size())
				}
			})
		}
	}
}

func TestDynamicCheckRandomGraphsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	for trial := 0; trial < 10; trial++ {
		g := hin.NewGraph()
		user := g.Types().NodeType("user")
		item := g.Types().NodeType("item")
		rated := g.Types().EdgeType("rated")
		nUsers, nItems := 4+rng.Intn(4), 10+rng.Intn(8)
		for i := 0; i < nUsers; i++ {
			g.AddNode(user, "")
		}
		for i := 0; i < nItems; i++ {
			g.AddNode(item, "")
		}
		for i := 0; i < nUsers*5; i++ {
			u := hin.NodeID(rng.Intn(nUsers))
			it := hin.NodeID(nUsers + rng.Intn(nItems))
			if !g.HasEdge(u, it) {
				_ = g.AddBidirectional(u, it, rated, 1+rng.Float64()*2)
			}
		}
		cfg := rec.DefaultConfig(item)
		cfg.Beta = 0.5 // exercise the β-view path under dynamic updates
		r, err := rec.New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		exDyn := New(g, r, Options{
			AllowedEdgeTypes: hin.NewEdgeTypeSet(rated),
			AddEdgeType:      rated,
			DynamicCheck:     true,
		})
		exStatic := New(g, r, Options{
			AllowedEdgeTypes: hin.NewEdgeTypeSet(rated),
			AddEdgeType:      rated,
		})
		u := hin.NodeID(rng.Intn(nUsers))
		top, err := r.TopN(u, 4)
		if err != nil || len(top) < 2 {
			continue
		}
		q := Query{User: u, WNI: top[len(top)-1].Node}
		for _, mode := range []Mode{Remove, Add} {
			expl, err := exDyn.ExplainWith(q, mode, Powerset)
			if errors.Is(err, ErrNoExplanation) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			ok, err := exStatic.Verify(expl)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d %v: dynamic-check explanation unsound: %v", trial, mode, expl.Edges)
			}
		}
	}
}
