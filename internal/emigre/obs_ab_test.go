package emigre

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/why-not-xai/emigre/internal/obs"
)

// TestObsABExplanationsByteIdentical is the observability acceptance
// A/B: every mode × method must produce byte-identical explanations
// with metric recording on (the default) and off. Instrumentation may
// only count work, never steer it — any divergence means a counter
// crept into control flow.
func TestObsABExplanationsByteIdentical(t *testing.T) {
	defer obs.SetEnabled(true)
	for _, mode := range []Mode{Remove, Add} {
		for _, method := range allMethods(mode) {
			obs.SetEnabled(true)
			on := newFixture(t, Options{Mode: mode, Method: method})
			wantExpl, errW := on.ex.Explain(on.query())

			obs.SetEnabled(false)
			off := newFixture(t, Options{Mode: mode, Method: method})
			gotExpl, errG := off.ex.Explain(off.query())

			if (errW == nil) != (errG == nil) {
				t.Fatalf("%v/%v: on err=%v off err=%v", mode, method, errW, errG)
			}
			if errW != nil {
				if errW.Error() != errG.Error() {
					t.Fatalf("%v/%v: error mismatch: %q vs %q", mode, method, errW, errG)
				}
				continue
			}
			// Wall-clock is the only field allowed to differ.
			wantExpl.Stats.Duration, gotExpl.Stats.Duration = 0, 0
			want, err := json.Marshal(wantExpl)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(gotExpl)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Errorf("%v/%v: explanations diverge:\non:  %s\noff: %s", mode, method, want, got)
			}
		}
	}
}

// TestObsDisabledRecordsNothing pins the gate end to end: with
// recording off, a full explanation leaves the engine counters where
// they were.
func TestObsDisabledRecordsNothing(t *testing.T) {
	defer obs.SetEnabled(true)

	// Sum runs across every engine so the probe is agnostic to which
	// engines a particular search configuration exercises.
	engines := []string{"forward_push", "reverse_push", "power", "monte_carlo"}
	runs := func() int64 {
		var total int64
		for _, e := range engines {
			total += obs.Default().Counter("emigre_ppr_runs_total",
				"PPR engine runs by engine.", obs.L("engine", e)).Value()
		}
		return total
	}

	obs.SetEnabled(false)
	f := newFixture(t, Options{Mode: Remove, Method: Powerset})
	before := runs()
	if _, err := f.ex.Explain(f.query()); err != nil {
		t.Fatal(err)
	}
	if got := runs(); got != before {
		t.Fatalf("disabled recording still moved counters: %d -> %d", before, got)
	}

	obs.SetEnabled(true)
	f2 := newFixture(t, Options{Mode: Remove, Method: Powerset})
	before = runs()
	if _, err := f2.ex.Explain(f2.query()); err != nil {
		t.Fatal(err)
	}
	if got := runs(); got <= before {
		t.Fatalf("enabled recording moved nothing: %d -> %d", before, got)
	}
}
