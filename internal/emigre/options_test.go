package emigre

import (
	"context"
	"testing"

	"github.com/why-not-xai/emigre/internal/hin"
)

func TestOptionsAccessorAndDefaults(t *testing.T) {
	f := newFixture(t, Options{})
	opts := f.ex.Options()
	if opts.TopKTargets != DefaultTopKTargets {
		t.Fatalf("TopKTargets = %d, want default %d", opts.TopKTargets, DefaultTopKTargets)
	}
	if opts.MaxSearchSpace != DefaultMaxSearchSpace ||
		opts.MaxCombinationSize != DefaultMaxCombinationSize ||
		opts.MaxTests != DefaultMaxTests ||
		opts.AddEdgeWeight != DefaultAddEdgeWeight ||
		opts.ReweightTo != DefaultReweightTo ||
		opts.TargetRank != 1 {
		t.Fatalf("defaults not applied: %+v", opts)
	}
}

func TestExhaustiveCandidateCap(t *testing.T) {
	// Give the explainer a tiny MaxSearchSpace and an add-mode search
	// space larger than it; the exhaustive candidate list must be capped
	// to the strongest |contribution| entries and stay sorted.
	f := newFixture(t, Options{MaxSearchSpace: 2})
	s, err := f.ex.newSession(context.Background(), f.query(), Add)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.cands) <= 2 {
		t.Skipf("fixture add search space too small (%d)", len(s.cands))
	}
	h := s.exhaustiveCandidates()
	if len(h) != 2 {
		t.Fatalf("capped |H| = %d, want 2", len(h))
	}
	for i := 1; i < len(h); i++ {
		if h[i-1].contribution < h[i].contribution {
			t.Fatal("capped candidates not re-sorted by contribution")
		}
	}
}

func TestComboCapHintClamped(t *testing.T) {
	if got := comboCapHint(5, 2); got != 10 {
		t.Fatalf("comboCapHint(5,2) = %d, want exact C(5,2) = 10", got)
	}
	// C(64, 20) saturates binomial at ~10^12; the capacity hint must be
	// clamped so a powerset sweep never attempts a terabyte allocation.
	if got := comboCapHint(64, 20); got != maxComboPrealloc {
		t.Fatalf("comboCapHint(64,20) = %d, want clamp %d", got, maxComboPrealloc)
	}
	if got := binomial(64, 20); got != binomialSaturation {
		t.Fatalf("binomial(64,20) = %d, want saturation %d", got, binomialSaturation)
	}
}

func TestDescribeUnlabeledNodes(t *testing.T) {
	g := hin.NewGraph()
	item := g.Types().NodeType("item")
	user := g.Types().NodeType("user")
	rated := g.Types().EdgeType("rated")
	u := g.AddNode(user, "")
	a := g.AddNode(item, "")
	b := g.AddNode(item, "")
	expl := &Explanation{
		Query:    Query{User: u, WNI: b},
		Mode:     Remove,
		Removals: []hin.Edge{{From: u, To: a, Type: rated, Weight: 1}},
	}
	text := expl.Describe(g)
	if text == "" {
		t.Fatal("empty description")
	}
	// Unlabeled nodes render as "node N".
	if want := "node 1"; !contains(text, want) {
		t.Fatalf("description %q missing %q", text, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
