package emigre

import (
	"context"
	"testing"
)

// BenchmarkDeltaCheckPhase measures one CHECK evaluation on the Amazon
// Lite graph — counterfactual overlay construction plus verdict — with
// the cold recompute-per-candidate path versus the warm-start delta
// screen. Both sessions share one base query; the delta session's base
// push state is fetched once outside the timer, exactly as the cached
// serving path provides it for free.
//
// The stream cycles over the query's rejecting single-edge candidates:
// rejections dominate every long CHECK stream (the paper's bottleneck
// is precisely the rejected tests between explanations), and they are
// the case the screen fully absorbs — a warm PASS still pays a cold
// confirmation by design. Caching is disabled so the cold rows perform
// their full PPR work instead of replaying residency.
//
// Results land in BENCH_deltappr.json; the acceptance bar is delta
// running at least 3x faster than cold, since a warm screen drains only
// the perturbed residual mass of the edited row instead of a full push
// frontier from zero.
func BenchmarkDeltaCheckPhase(b *testing.B) {
	g, r, q, te := liteScenario(b)
	ctx := context.Background()

	// Decide pass/reject once, on the cold path, so both rows cycle the
	// identical rejection stream (the A/B suite pins that delta verdicts
	// agree).
	cold := New(g, r, Options{AllowedEdgeTypes: te, DisableCache: true, MaxSearchSpace: 12})
	cs, err := cold.newSession(ctx, q, Remove)
	if err != nil {
		b.Fatal(err)
	}
	var rejs []candidate
	for _, c := range cs.cands {
		ok, _, _, err := cs.checkOnce(ctx, []candidate{c}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			rejs = append(rejs, c)
		}
	}
	if len(rejs) == 0 {
		b.Fatal("no rejecting candidates in the lite scenario")
	}

	for _, cfg := range []struct {
		name  string
		delta bool
	}{{"cold", false}, {"delta", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			ex := New(g, r, Options{
				AllowedEdgeTypes: te,
				DisableCache:     true,
				MaxSearchSpace:   12,
				DeltaCheck:       cfg.delta,
			})
			s, err := ex.newSession(ctx, q, Remove)
			if err != nil {
				b.Fatal(err)
			}
			dsc := &deltaScratch{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := rejs[i%len(rejs)]
				ok, _, _, err := s.checkOnce(ctx, []candidate{c}, dsc)
				if err != nil {
					b.Fatal(err)
				}
				if ok {
					b.Fatalf("candidate %v flipped to PASS", c.edge)
				}
			}
		})
	}
}
