package emigre

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/why-not-xai/emigre/internal/fault"
	"github.com/why-not-xai/emigre/internal/hin"
)

// Failpoint sites on the CHECK path. checkSite fires at the head of
// every sequential CHECK (session.check); workerSite fires in each
// parallel pipeline worker before its speculative checkOnce. With a
// sleep action either one deterministically stretches CHECK latency —
// the lever the chaos suite and the CI chaos-smoke job use to force the
// server's degradation ladder.
var (
	checkSite  = fault.Register("emigre.check")
	workerSite = fault.Register("emigre.pipeline.worker")
)

// This file is the shared CHECK pipeline behind every search strategy.
//
// The strategies of Algorithms 3-5 (incremental, powerset, exhaustive,
// brute force) differ only in *which* candidate sets they propose and in
// *what order*; the expensive part — build a counterfactual overlay,
// re-run the recommender, compare ranks — is the same CHECK step for all
// of them, and it dominates the total cost (the paper's Table 7 timing
// splits, and PRINCE before it, both measure counterfactual search as
// repeated PPR re-evaluation). The strategies therefore act as pure
// *generators*: each one emits an ordered stream of candidate sets, and
// session.runChecks consumes the stream and verifies it.
//
// Two evaluators sit behind runChecks:
//
//   - the sequential evaluator (Options.Parallelism <= 1, the default)
//     checks each set inline, exactly like the pre-split code;
//   - the parallel evaluator fans sets out to a bounded worker pool but
//     commits results in stream order ("ordered commit"): a worker may
//     verify set #7 before set #3 has finished, but #7's outcome is not
//     acted on until #3..#6 have committed. The first accepted set in
//     stream order wins — not the first to finish — so the returned
//     explanation, the Stats tallies (Tests, CombosExamined) and every
//     budget-exhaustion error are byte-identical to the sequential
//     search. Checks that completed beyond the committed winner are
//     discarded and accounted as speculative waste.
//
// Determinism contract for generators:
//
//   - yield must be called once per candidate set, in exactly the order
//     the sequential search would CHECK them, and the slice must not be
//     mutated after the call (the pool may still hold it);
//   - generator-side work accounting (s.stats.CombosExamined) must be
//     up to date at each yield: the evaluator snapshots the counter per
//     yield and rolls it back to the winning yield's snapshot, so sets
//     enumerated speculatively past the winner leave no trace;
//   - when yield returns false the stream is over (accepted set, budget,
//     cancellation); the generator must return promptly. Its own error —
//     typically a CanceledError from a loop-boundary poll — is surfaced
//     only when the evaluator itself did not decide first.
//
// Options.DynamicCheck forces the sequential evaluator: the dynamic
// push state is repaired incrementally from one counterfactual to the
// next, which is inherently a serial walk of the stream.

// checkStream is a strategy rendered as a generator: it yields candidate
// sets in sequential CHECK order until yield returns false or the stream
// is exhausted.
type checkStream func(yield func(cands []candidate) bool) error

// pipelineOutcome is what a stream evaluation produced.
type pipelineOutcome struct {
	// expl is the first accepted candidate set in stream order, nil when
	// the stream was exhausted (or stopped) without an accept.
	expl *Explanation
	// budgetHit reports that the stream reached the MaxTests budget;
	// budgetErr is then the exact error the sequential CHECK would have
	// returned (strategies fold it into their own error message).
	budgetHit bool
	budgetErr error
}

// budgetExhausted builds the CHECK-budget error for a given committed
// test count. Sequential and parallel evaluation must agree on it byte
// for byte: strategy error messages embed it.
func budgetExhausted(tests int) error {
	return fmt.Errorf("%w: %d CHECK invocations", ErrBudgetExhausted, tests)
}

// runChecks evaluates the candidate-set stream produced by gen and
// returns the first accepted set in stream order. The evaluator is
// selected by Options.Parallelism; both produce identical outcomes,
// stats and errors.
func (s *session) runChecks(gen checkStream) (pipelineOutcome, error) {
	if w := s.ex.opts.Parallelism; w > 1 && !s.ex.opts.DynamicCheck {
		return s.runChecksParallel(w, gen)
	}
	return s.runChecksSeq(gen)
}

// runChecksSeq is the inline evaluator: the pre-split sequential code
// path, shared by every strategy. Parallelism <= 1 and DynamicCheck
// degrade to it.
func (s *session) runChecksSeq(gen checkStream) (pipelineOutcome, error) {
	var (
		out     pipelineOutcome
		hardErr error
	)
	genErr := gen(func(cands []candidate) bool {
		s.noteAttempt(cands)
		ok, top, err := s.check(cands)
		if err != nil {
			if errors.Is(err, ErrBudgetExhausted) {
				out.budgetHit = true
				out.budgetErr = err
				return false
			}
			hardErr = err
			return false
		}
		if ok {
			out.expl = s.found(cands, true, top)
			return false
		}
		return true
	})
	if hardErr != nil {
		return out, hardErr
	}
	if genErr != nil && out.expl == nil && !out.budgetHit {
		return out, genErr
	}
	return out, nil
}

// checkJob is one candidate set in flight through the parallel pool.
type checkJob struct {
	// ord is the set's position in the stream (0-based). Commit order.
	ord   int
	cands []candidate
	// combos snapshots s.stats.CombosExamined at yield time, so the
	// committed stats reflect exactly the enumeration work the
	// sequential search would have performed up to this set.
	combos int
}

// checkDone is a worker's verdict on one job.
type checkDone struct {
	checkJob
	ok  bool
	top hin.NodeID
	// flags records the delta screen's participation; the committer
	// folds it into Stats only for committed verdicts, so the tallies
	// stay identical across worker counts (like Tests).
	flags deltaFlags
	err   error
}

// genEnd reports the generator's exit: how many sets it yielded and the
// error (if any) from its own loop-boundary cancellation polls.
type genEnd struct {
	total int
	err   error
}

// runChecksParallel is the speculative evaluator: `workers` goroutines
// verify candidate sets concurrently while the committer applies their
// verdicts strictly in stream order. See the file comment for the
// determinism contract.
func (s *session) runChecksParallel(workers int, gen checkStream) (pipelineOutcome, error) {
	maxTests := s.ex.opts.MaxTests
	m := s.ex.metrics
	m.parallelRuns.Add(1)

	// pctx stops the generator and the workers as soon as the committer
	// has decided; s.ctx cancellation propagates through it.
	pctx, cancel := context.WithCancel(s.ctx)
	defer cancel()

	// The jobs buffer bounds speculation depth: the generator can run at
	// most 2*workers sets ahead of the slowest in-flight check.
	jobs := make(chan checkJob, workers)
	results := make(chan checkDone, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker warm-start scratch: the delta screen repairs
			// residuals into it, so it must never be shared across
			// concurrently running checks.
			var dsc *deltaScratch
			if s.ex.deltaActive() {
				dsc = &deltaScratch{}
			}
			for job := range jobs {
				d := checkDone{checkJob: job}
				switch {
				case job.ord >= maxTests:
					// Budget sentinel: the set exists in the stream, so
					// the sequential search would have *attempted* a
					// CHECK here and hit the budget. No work is done.
					d.err = budgetExhausted(maxTests)
				case pctx.Err() != nil:
					d.err = pctx.Err()
				default:
					m.inflight.Add(1)
					d.ok, d.top, d.flags, d.err = runWorkerCheck(s, pctx, job.cands, dsc)
					m.inflight.Add(-1)
				}
				results <- d
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	genc := make(chan genEnd, 1)
	go func() {
		ord := 0
		err := gen(func(cands []candidate) bool {
			s.noteAttempt(cands)
			job := checkJob{ord: ord, cands: cands, combos: s.stats.CombosExamined}
			select {
			case jobs <- job:
				ord++
				// Nothing past the budget sentinel can influence the
				// outcome: stop the stream here.
				return job.ord < maxTests
			case <-pctx.Done():
				return false
			}
		})
		close(jobs)
		genc <- genEnd{total: ord, err: err}
	}()

	var (
		out         pipelineOutcome
		hardErr     error
		decided     bool
		next        int                   // ordinal the committer waits for
		committed   int                   // checks committed == sequential Stats.Tests
		finalCombos = -1                  // CombosExamined to commit (-1: generator's final)
		pending     = map[int]checkDone{} // out-of-order verdicts parked until their turn
		wasted      int64
		genErr      error
		total       = -1
	)

	commit := func(d checkDone) {
		switch {
		case d.err != nil && errors.Is(d.err, ErrBudgetExhausted):
			out.budgetHit = true
			out.budgetErr = d.err
			finalCombos = d.combos
			decided = true
		case d.err != nil:
			// Context or hard error, surfaced at its stream position.
			hardErr = d.err
			finalCombos = d.combos
			decided = true
		case d.ok:
			committed++
			s.tallyDelta(d.flags)
			out.expl = s.found(d.cands, true, d.top)
			finalCombos = d.combos
			decided = true
		default:
			committed++
			s.tallyDelta(d.flags)
		}
	}

	for results != nil || total < 0 {
		select {
		case d, open := <-results:
			if !open {
				results = nil
				continue
			}
			if decided {
				if d.err == nil {
					wasted++
				}
				continue
			}
			if d.ord != next {
				pending[d.ord] = d
				continue
			}
			commit(d)
			next++
			for !decided {
				nd, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				commit(nd)
				next++
			}
			if decided {
				cancel() // stop the generator and abort in-flight checks
			}
		case ge := <-genc:
			total = ge.total
			genErr = ge.err
			genc = nil
		}
	}

	// Workers and generator have exited; the session is single-threaded
	// again. Completed-but-uncommitted verdicts are speculative waste.
	for _, d := range pending {
		if d.err == nil {
			wasted++
		}
	}
	m.checksCommitted.Add(int64(committed))
	m.speculativeWaste.Add(wasted)
	if t := pipelineRequestStatsFrom(s.ctx); t != nil {
		t.add(int64(committed), wasted)
	}

	s.stats.Tests = committed
	if finalCombos >= 0 {
		// Roll the generator's counter back to the committed yield: the
		// sequential search never enumerated past it.
		s.stats.CombosExamined = finalCombos
	}
	if hardErr != nil {
		return out, wrapCtxErr(hardErr, s.stats)
	}
	if genErr != nil && !decided {
		// The generator snapshotted s.stats when it detected the
		// cancellation, before the committed tallies were folded back in;
		// re-stamp so the error reports the committed work.
		var ce *CanceledError
		if errors.As(genErr, &ce) {
			ce.Stats = s.stats
		}
		return out, genErr
	}
	return out, nil
}

// runWorkerCheck is one speculative CHECK executed on a pipeline worker
// goroutine: the worker failpoint, then the stateless checkOnce, with
// panic containment — workers run outside any HTTP middleware recovery,
// so a panicking engine (or an armed panic failpoint) must become an
// ordinary verdict error at the job's stream position instead of
// killing the process.
func runWorkerCheck(s *session, ctx context.Context, cands []candidate, dsc *deltaScratch) (ok bool, top hin.NodeID, flags deltaFlags, err error) {
	defer func() {
		if p := recover(); p != nil {
			ok, top, flags, err = false, hin.InvalidNode, deltaFlags{}, fmt.Errorf("emigre: pipeline worker panicked: %v", p)
		}
	}()
	if err := workerSite.Hit(ctx); err != nil {
		return false, hin.InvalidNode, deltaFlags{}, err
	}
	return s.checkOnce(ctx, cands, dsc)
}

// pipelineMetrics aggregates explainer-lifetime pipeline counters.
// Shared by every session of one Explainer; all fields are atomics.
type pipelineMetrics struct {
	parallelRuns     atomic.Int64
	checksCommitted  atomic.Int64
	speculativeWaste atomic.Int64
	inflight         atomic.Int64
}

// PipelineStats is a point-in-time snapshot of the parallel CHECK
// pipeline's counters, suitable for a /stats gauge block.
type PipelineStats struct {
	// Workers is the configured Options.Parallelism (0/1 = sequential).
	Workers int `json:"workers"`
	// ParallelRuns counts searches evaluated by the parallel pipeline.
	ParallelRuns int64 `json:"parallel_runs"`
	// ChecksCommitted counts CHECK verdicts applied in stream order —
	// exactly the checks a sequential search would have run.
	ChecksCommitted int64 `json:"checks_committed"`
	// SpeculativeWaste counts completed checks that were discarded
	// because an earlier set in stream order won (or erred) first.
	SpeculativeWaste int64 `json:"speculative_waste"`
	// InflightChecks is the number of checks running right now.
	InflightChecks int64 `json:"inflight_checks"`
}

// PipelineStats returns the explainer's cumulative pipeline counters.
func (e *Explainer) PipelineStats() PipelineStats {
	return PipelineStats{
		Workers:          e.opts.Parallelism,
		ParallelRuns:     e.metrics.parallelRuns.Load(),
		ChecksCommitted:  e.metrics.checksCommitted.Load(),
		SpeculativeWaste: e.metrics.speculativeWaste.Load(),
		InflightChecks:   e.metrics.inflight.Load(),
	}
}

// PipelineRequestStats accumulates per-request pipeline activity.
// Attach one to a context with WithPipelineRequestStats and every
// parallel search run under that context tallies its committed and
// wasted checks — the server's request log uses this the same way it
// uses pprcache.RequestStats. Safe for concurrent use.
type PipelineRequestStats struct {
	committed atomic.Int64
	wasted    atomic.Int64
}

// Committed returns the checks committed in stream order.
func (p *PipelineRequestStats) Committed() int64 { return p.committed.Load() }

// Wasted returns the speculative checks discarded by ordered commit.
func (p *PipelineRequestStats) Wasted() int64 { return p.wasted.Load() }

func (p *PipelineRequestStats) add(committed, wasted int64) {
	p.committed.Add(committed)
	p.wasted.Add(wasted)
}

type pipelineRequestStatsKey struct{}

// WithPipelineRequestStats attaches a per-request tally to ctx.
func WithPipelineRequestStats(ctx context.Context, p *PipelineRequestStats) context.Context {
	return context.WithValue(ctx, pipelineRequestStatsKey{}, p)
}

func pipelineRequestStatsFrom(ctx context.Context) *PipelineRequestStats {
	if ctx == nil {
		return nil
	}
	p, _ := ctx.Value(pipelineRequestStatsKey{}).(*PipelineRequestStats)
	return p
}
