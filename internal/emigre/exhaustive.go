package emigre

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/why-not-xai/emigre/internal/fmath"
	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/ppr"
)

// exhaustive implements the Exhaustive Comparison of Algorithm 5: where
// the top-1 strategies only compare WNI against the displaced
// recommendation, this strategy requires WNI to beat *every* item t of
// the current top-k list. It builds
//
//   - the contribution matrix C with one row per candidate and one
//     column per target t (Table 1 of the running example),
//   - the threshold vector Threshold(t) = Σ_{n∈Nout} C_{n,t} (Eq. 7,
//     Table 2) — the current gap of target t over WNI,
//
// and keeps every candidate combination whose summed row strictly
// dominates the threshold vector (Table 3). Surviving combinations are
// examined in ascending size order; with withCheck, each is verified by
// CHECK before being returned (the paper's remove_ex / add_ex); without
// it, the first surviving combination is returned unverified (the
// remove_ex_direct baseline, whose measured ~33% success-rate drop
// motivates the CHECK step).
//
// Unlike Algorithms 3-4, no sign-based pruning is applied to H: a
// candidate that slightly hurts WNI against rec may still be needed to
// pull down a third item (§5.2.2). H is capped at MaxSearchSpace by
// absolute contribution to bound the combination sweep.
func (s *session) exhaustive(withCheck bool) (*Explanation, error) {
	opts := s.ex.opts

	targets, err := s.exhaustiveTargets()
	if err != nil {
		return nil, err
	}
	cols, err := s.targetColumns(targets)
	if err != nil {
		return nil, err
	}

	h := s.exhaustiveCandidates()
	if len(h) == 0 {
		return nil, fmt.Errorf("%w (exhaustive, %s mode: empty search space)", ErrNoExplanation, s.mode)
	}

	// reduction[i][k]: how much committing candidate i closes the gap of
	// target k over WNI. threshold[k]: the current gap of target k.
	trans := transitionsOf(s.view, s.q.User)
	reduction := make([][]float64, len(h))
	for i, cand := range h {
		row := make([]float64, len(targets))
		n := cand.edge.To
		for k := range targets {
			switch cand.op {
			case Remove:
				row[k] = trans[edgeKey{n, cand.edge.Type}] * (cols[k][n] - s.toWNI[n])
			case Reweight:
				row[k] = cand.transDelta * (s.toWNI[n] - cols[k][n])
			default: // Add
				row[k] = s.toWNI[n] - cols[k][n]
			}
		}
		reduction[i] = row
	}
	threshold := make([]float64, len(targets))
	for _, e := range s.ex.g.OutEdgesOfType(s.q.User, opts.AllowedEdgeTypes) {
		w := trans[edgeKey{e.To, e.Type}]
		for k := range targets {
			threshold[k] += w * (cols[k][e.To] - s.toWNI[e.To])
		}
	}

	maxSize := opts.MaxCombinationSize
	if maxSize > len(h) {
		maxSize = len(h)
	}
	type survivor struct {
		idx    []int
		margin float64 // worst-coordinate slack, for ordering
	}
	// With the default TargetRank of 1 a combination must dominate every
	// target; placing WNI at rank k only requires beating all but k−1
	// of them, so up to k−1 negative-slack columns are tolerated.
	allowedMisses := s.ex.opts.TargetRank - 1

	// The strategy as a pure generator: per size, run the domination
	// filter over all combinations, order the survivors by margin, and
	// yield them for verification.
	gen := func(yield func(cands []candidate) bool) error {
		for size := 1; size <= maxSize; size++ {
			if err := s.canceled(); err != nil {
				return err
			}
			var survivors []survivor
			combinations(len(h), size, func(idx []int) bool {
				s.stats.CombosExamined++
				misses := 0
				worst := math.Inf(1)
				for k := range targets {
					// Connecting the user to target t evicts t from the
					// candidate set of Eq. 2 — WNI no longer needs to beat
					// it, so skip its column (paper erratum; Alg. 5 does
					// not handle self-targets).
					if comboContainsAddedEndpoint(h, idx, targets[k]) {
						continue
					}
					var sum float64
					for _, i := range idx {
						sum += reduction[i][k]
					}
					slack := sum - threshold[k]
					// The paper requires strictly positive slack; we accept
					// slack == 0 too (an estimated tie) because the CHECK
					// step resolves it exactly — this covers the degenerate
					// combination that removes every allowed edge, whose
					// slack is identically zero.
					if slack < 0 {
						misses++
						if misses > allowedMisses {
							return true // fails the domination filter
						}
						continue
					}
					if slack < worst {
						worst = slack
					}
				}
				survivors = append(survivors, survivor{idx: append([]int(nil), idx...), margin: worst})
				return true
			})
			sort.Slice(survivors, func(i, j int) bool {
				if !fmath.Eq(survivors[i].margin, survivors[j].margin) {
					return survivors[i].margin > survivors[j].margin
				}
				return lexLess(survivors[i].idx, survivors[j].idx)
			})
			for _, sv := range survivors {
				selected := make([]candidate, len(sv.idx))
				for i, j := range sv.idx {
					selected[i] = h[j]
				}
				if !yield(selected) {
					return nil
				}
			}
		}
		return nil
	}

	if !withCheck {
		// Direct baseline: trust the threshold filter — the first
		// surviving combination is returned unverified, so the stream is
		// consumed inline rather than through the CHECK pipeline.
		var first *Explanation
		if err := gen(func(cands []candidate) bool {
			first = s.found(cands, false, hin.InvalidNode)
			return false
		}); err != nil {
			return nil, err
		}
		if first != nil {
			return first, nil
		}
		return nil, fmt.Errorf("%w (exhaustive, %s mode: |H|=%d, |T|=%d, %d combos, %d checks)",
			ErrNoExplanation, s.mode, len(h), len(targets), s.stats.CombosExamined, s.stats.Tests)
	}

	out, err := s.runChecks(gen)
	if err != nil {
		return nil, err
	}
	if out.expl != nil {
		return out.expl, nil
	}
	err = fmt.Errorf("%w (exhaustive, %s mode: |H|=%d, |T|=%d, %d combos, %d checks)",
		ErrNoExplanation, s.mode, len(h), len(targets), s.stats.CombosExamined, s.stats.Tests)
	if out.budgetHit {
		err = errors.Join(err, ErrBudgetExhausted)
	}
	return nil, err
}

// comboContainsAddedEndpoint reports whether any Add-op candidate in
// the index combination points at node t.
func comboContainsAddedEndpoint(h []candidate, idx []int, t hin.NodeID) bool {
	for _, i := range idx {
		if h[i].op == Add && h[i].edge.To == t {
			return true
		}
	}
	return false
}

// exhaustiveTargets returns T: the current top-K candidate items
// excluding WNI (the paper's recommendation list with the Why-Not item
// removed, as in the running example).
func (s *session) exhaustiveTargets() ([]hin.NodeID, error) {
	top, err := s.ex.r.TopNContext(s.ctx, s.q.User, s.ex.opts.TopKTargets+1)
	if err != nil {
		return nil, s.wrapCtx(err)
	}
	targets := make([]hin.NodeID, 0, s.ex.opts.TopKTargets)
	for _, sc := range top {
		if sc.Node == s.q.WNI {
			continue
		}
		targets = append(targets, sc.Node)
		if len(targets) == s.ex.opts.TopKTargets {
			break
		}
	}
	return targets, nil
}

// targetColumns returns PPR(·, t) for every target. All columns go
// through session.reverseColumn, so the current recommendation's column
// (already computed in newSession) and any column shared with earlier
// queries over the same graph come straight from the vector cache — the
// hand-rolled t == rec reuse this function used to special-case is now
// a plain cache hit.
func (s *session) targetColumns(targets []hin.NodeID) ([]ppr.Vector, error) {
	cols := make([]ppr.Vector, len(targets))
	for k, t := range targets {
		col, err := s.reverseColumn(t)
		if err != nil {
			return nil, s.wrapCtx(err)
		}
		cols[k] = col
	}
	return cols, nil
}

// exhaustiveCandidates returns H without sign pruning, capped at
// MaxSearchSpace by absolute contribution.
func (s *session) exhaustiveCandidates() []candidate {
	h := append([]candidate(nil), s.cands...)
	limit := s.ex.opts.MaxSearchSpace
	if limit > 0 && len(h) > limit {
		sort.Slice(h, func(i, j int) bool {
			ai, aj := math.Abs(h[i].contribution), math.Abs(h[j].contribution)
			if !fmath.Eq(ai, aj) {
				return ai > aj
			}
			return h[i].edge.To < h[j].edge.To
		})
		h = h[:limit]
		sortCandidates(h)
	}
	return h
}
