package emigre

import (
	"errors"
	"fmt"
)

// bruteForce is the paper's Remove-mode baseline (§6.2): enumerate every
// subset of the user's allowed past actions in ascending size order and
// CHECK each one. When it succeeds within its budget, the returned
// explanation is minimal: no smaller subset is an explanation, because
// all smaller subsets were checked first.
//
// Full enumeration is 2^|A|; the paper accepts the cost ("the process is
// expected to consume a lot of processing time"), we bound it with
// Options.MaxCombinationSize and Options.MaxTests instead. With the
// default budget every subset of size ≤ 5 of a 20-action user is
// examined — well past the explanation sizes the paper observes.
func (s *session) bruteForce() (*Explanation, error) {
	h := s.cands // Algorithm 1's A, with T_e applied; no sign pruning
	if len(h) == 0 {
		return nil, fmt.Errorf("%w (brute force: user has no removable actions)", ErrNoExplanation)
	}
	maxSize := s.ex.opts.MaxCombinationSize
	if maxSize > len(h) {
		maxSize = len(h)
	}
	budgetHit := false
	for size := 1; size <= maxSize && !budgetHit; size++ {
		if err := s.canceled(); err != nil {
			return nil, err
		}
		var stop error
		combinations(len(h), size, func(idx []int) bool {
			s.stats.CombosExamined++
			selected := make([]candidate, len(idx))
			for i, j := range idx {
				selected[i] = h[j]
			}
			ok, top, err := s.check(selected)
			if err != nil {
				if errors.Is(err, ErrBudgetExhausted) {
					budgetHit = true
					return false
				}
				stop = err
				return false
			}
			if ok {
				expl := s.found(selected, true, top)
				stop = &foundSignal{expl}
				return false
			}
			return true
		})
		if stop != nil {
			var f *foundSignal
			if errors.As(stop, &f) {
				return f.expl, nil
			}
			return nil, stop
		}
	}
	err := fmt.Errorf("%w (brute force: |A|=%d, %d subsets checked)",
		ErrNoExplanation, len(h), s.stats.Tests)
	if budgetHit {
		err = errors.Join(err, ErrBudgetExhausted)
	}
	return nil, err
}

// foundSignal tunnels a successful explanation out of the combination
// callback.
type foundSignal struct{ expl *Explanation }

func (f *foundSignal) Error() string { return "emigre: explanation found" }
