package emigre

import (
	"errors"
	"fmt"
)

// bruteForce is the paper's Remove-mode baseline (§6.2): enumerate every
// subset of the user's allowed past actions in ascending size order and
// CHECK each one. When it succeeds within its budget, the returned
// explanation is minimal: no smaller subset is an explanation, because
// all smaller subsets were checked first.
//
// Full enumeration is 2^|A|; the paper accepts the cost ("the process is
// expected to consume a lot of processing time"), we bound it with
// Options.MaxCombinationSize and Options.MaxTests instead. With the
// default budget every subset of size ≤ 5 of a 20-action user is
// examined — well past the explanation sizes the paper observes.
//
// The strategy is a pure generator: it emits every subset in
// enumeration order and the shared CHECK pipeline (runChecks) verifies
// them — sequentially or speculatively in parallel, with identical
// results. Brute force benefits the most from parallel CHECK: it has no
// pruning, so its stream is long and every set genuinely needs a CHECK.
func (s *session) bruteForce() (*Explanation, error) {
	h := s.cands // Algorithm 1's A, with T_e applied; no sign pruning
	if len(h) == 0 {
		return nil, fmt.Errorf("%w (brute force: user has no removable actions)", ErrNoExplanation)
	}
	maxSize := s.ex.opts.MaxCombinationSize
	if maxSize > len(h) {
		maxSize = len(h)
	}
	gen := func(yield func(cands []candidate) bool) error {
		for size := 1; size <= maxSize; size++ {
			if err := s.canceled(); err != nil {
				return err
			}
			stopped := false
			combinations(len(h), size, func(idx []int) bool {
				s.stats.CombosExamined++
				selected := make([]candidate, len(idx))
				for i, j := range idx {
					selected[i] = h[j]
				}
				if !yield(selected) {
					stopped = true
					return false
				}
				return true
			})
			if stopped {
				return nil
			}
		}
		return nil
	}
	out, err := s.runChecks(gen)
	if err != nil {
		return nil, err
	}
	if out.expl != nil {
		return out.expl, nil
	}
	err = fmt.Errorf("%w (brute force: |A|=%d, %d subsets checked)",
		ErrNoExplanation, len(h), s.stats.Tests)
	if out.budgetHit {
		err = errors.Join(err, ErrBudgetExhausted)
	}
	return nil, err
}
