package emigre

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/why-not-xai/emigre/internal/dataset"
	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/rec"
)

// benchLite lazily builds the paper's Amazon Lite evaluation graph and
// one Why-Not scenario over it, shared by all pipeline benchmarks.
var benchLite struct {
	once sync.Once
	g    *hin.Graph
	r    *rec.Recommender
	q    Query
	te   hin.EdgeTypeSet
	err  error
}

func liteScenario(tb testing.TB) (*hin.Graph, *rec.Recommender, Query, hin.EdgeTypeSet) {
	benchLite.once.Do(func() {
		amazon, err := dataset.Generate(dataset.DefaultConfig())
		if err != nil {
			benchLite.err = err
			return
		}
		lite, sampled, err := amazon.Lite(dataset.DefaultLiteConfig())
		if err != nil {
			benchLite.err = err
			return
		}
		r, err := rec.New(lite.Graph, rec.DefaultConfig(lite.Types.Item))
		if err != nil {
			benchLite.err = err
			return
		}
		r.Flat() // warm the shared snapshot once, outside any timer
		for _, u := range sampled {
			list, err := r.TopN(u, 3)
			if err != nil || len(list) < 2 {
				continue
			}
			benchLite.g = lite.Graph
			benchLite.r = r
			benchLite.q = Query{User: u, WNI: list[1].Node}
			benchLite.te = lite.UserActionEdgeTypes()
			return
		}
		benchLite.err = errors.New("no sampled user with a rankable top-2 list")
	})
	if benchLite.err != nil {
		tb.Fatalf("building Amazon Lite scenario: %v", benchLite.err)
	}
	return benchLite.g, benchLite.r, benchLite.q, benchLite.te
}

// BenchmarkExplainParallel measures one full Why-Not search on the
// Amazon Lite graph, sequential vs a 4-worker CHECK pipeline, for the
// two combination strategies whose CHECK streams are long enough to
// speculate on. Caching is disabled so every CHECK performs its full
// PPR work (the cache would otherwise serve repeated benchmark
// iterations from residency and measure nothing); MaxTests bounds one
// iteration's work to a fixed number of CHECK invocations, so ns/op is
// directly comparable across worker counts.
//
// Results land in BENCH_explainpar.json. The ordered-commit design
// needs spare cores to win: on a multi-core runner the 4-worker rows
// must show the speedup, on a single-core machine they degrade to
// sequential speed plus scheduling noise.
func BenchmarkExplainParallel(b *testing.B) {
	g, r, q, te := liteScenario(b)
	for _, method := range []Method{Powerset, Exhaustive} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", method, workers), func(b *testing.B) {
				ex := New(g, r, Options{
					AllowedEdgeTypes: te,
					DisableCache:     true,
					MaxTests:         24,
					MaxSearchSpace:   12,
					Parallelism:      workers,
				})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, err := ex.ExplainWith(q, Remove, method)
					if err != nil && !errors.Is(err, ErrNoExplanation) {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
