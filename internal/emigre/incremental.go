package emigre

import (
	"errors"
	"fmt"
)

// incremental implements Algorithm 3: commit candidate edges one at a
// time in descending contribution order, and once the running gap
// estimate tau flips sign, verify after every further commit. The first
// verified edge set is returned. Incremental trades explanation size
// for speed: it never reconsiders a committed edge.
func (s *session) incremental() (*Explanation, error) {
	var selected []candidate
	tau := s.tau
	for _, cand := range s.cands {
		if err := s.canceled(); err != nil {
			return nil, err
		}
		// Negative contributions cannot help WNI (Eq. 5/6 discussion);
		// the list is sorted, so everything after is non-positive too.
		if cand.contribution <= 0 {
			break
		}
		selected = append(selected, cand)
		tau -= cand.contribution
		if !s.gapFlipped(tau) {
			continue // rec still estimated to dominate: keep accumulating
		}
		ok, top, err := s.check(selected)
		if err != nil {
			if errors.Is(err, ErrBudgetExhausted) {
				return nil, fmt.Errorf("%w (incremental)", errors.Join(ErrNoExplanation, err))
			}
			return nil, err
		}
		if ok {
			return s.found(selected, true, top), nil
		}
	}
	return nil, fmt.Errorf("%w (incremental, %s mode: %d candidates, %d checks)",
		ErrNoExplanation, s.mode, len(s.cands), s.stats.Tests)
}
