package emigre

import (
	"errors"
	"fmt"
)

// incremental implements Algorithm 3: commit candidate edges one at a
// time in descending contribution order, and once the running gap
// estimate tau flips sign, verify after every further commit. The first
// verified edge set is returned. Incremental trades explanation size
// for speed: it never reconsiders a committed edge.
//
// The strategy is a pure generator: it emits the prefix sets whose
// estimated gap has flipped, in commit order, and the shared CHECK
// pipeline (runChecks) verifies them — sequentially or speculatively in
// parallel, with identical results.
func (s *session) incremental() (*Explanation, error) {
	gen := func(yield func(cands []candidate) bool) error {
		var selected []candidate
		tau := s.tau
		for _, cand := range s.cands {
			if err := s.canceled(); err != nil {
				return err
			}
			// Negative contributions cannot help WNI (Eq. 5/6 discussion);
			// the list is sorted, so everything after is non-positive too.
			if cand.contribution <= 0 {
				break
			}
			selected = append(selected, cand)
			tau -= cand.contribution
			if !s.gapFlipped(tau) {
				continue // rec still estimated to dominate: keep accumulating
			}
			// Yield a copy: selected keeps growing while the pipeline
			// may still hold earlier prefixes.
			if !yield(append([]candidate(nil), selected...)) {
				return nil
			}
		}
		return nil
	}
	out, err := s.runChecks(gen)
	if err != nil {
		return nil, err
	}
	if out.expl != nil {
		return out.expl, nil
	}
	if out.budgetHit {
		return nil, fmt.Errorf("%w (incremental)", errors.Join(ErrNoExplanation, out.budgetErr))
	}
	return nil, fmt.Errorf("%w (incremental, %s mode: %d candidates, %d checks)",
		ErrNoExplanation, s.mode, len(s.cands), s.stats.Tests)
}
