package emigre

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/why-not-xai/emigre/internal/fmath"
	"github.com/why-not-xai/emigre/internal/hin"
)

// GroupQuery is a Why-Not question at the set granularity of §4:
// "why is none of these items recommended?". The paper defines the
// single-item question and names sets and whole categories as future
// granularities; this implementation covers both (see ExplainCategory).
type GroupQuery struct {
	User hin.NodeID
	// Items is the Why-Not set. Items the user already interacted with
	// and non-item nodes are rejected, mirroring Definition 4.1.
	Items []hin.NodeID
}

// ErrEmptyGroup is returned when a group query has no valid Why-Not
// item left after Definition-4.1 filtering.
var ErrEmptyGroup = errors.New("emigre: group query has no valid Why-Not item")

// ExplainGroup answers a set-granularity Why-Not question: it returns
// an edge set whose application makes *some* member of the group the
// top-1 recommendation. Members are attempted in descending current
// score (the closest one first); each attempt runs the selected mode
// and method with the group as the success criterion — an attempt
// seeded on one member may legitimately end up promoting another, and
// that counts as success.
func (e *Explainer) ExplainGroup(q GroupQuery, mode Mode, method Method) (*Explanation, error) {
	return e.ExplainGroupContext(context.Background(), q, mode, method)
}

// ExplainGroupContext is ExplainGroup with cancellation: the context is
// polled between member attempts and inside each attempt's search, so a
// canceled group query stops mid-member with a *CanceledError.
func (e *Explainer) ExplainGroupContext(ctx context.Context, q GroupQuery, mode Mode, method Method) (*Explanation, error) {
	members, err := e.validGroupMembers(ctx, q)
	if err != nil {
		return nil, err
	}
	set := make(map[hin.NodeID]bool, len(members))
	for _, m := range members {
		set[m] = true
	}
	var firstErr error
	for _, m := range members {
		expl, err := e.explain(ctx, Query{User: q.User, WNI: m}, set, mode, method)
		if err == nil {
			expl.Group = members
			return expl, nil
		}
		if errors.Is(err, ErrAlreadyTop) {
			// Another member already tops the list — by the group
			// semantics the question is void.
			return nil, err
		}
		if !errors.Is(err, ErrNoExplanation) {
			return nil, err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, fmt.Errorf("%w (group of %d items)", errors.Join(ErrNoExplanation, firstErr), len(members))
}

// ExplainCategory answers the category granularity: "why is nothing
// from this category recommended?". The category node's item neighbors
// become the Why-Not group, capped to the maxItems best-scoring ones
// (0 = no cap) to bound the attempts.
func (e *Explainer) ExplainCategory(user, category hin.NodeID, maxItems int, mode Mode, method Method) (*Explanation, error) {
	return e.ExplainCategoryContext(context.Background(), user, category, maxItems, mode, method)
}

// ExplainCategoryContext is ExplainCategory with cancellation (see
// ExplainGroupContext).
func (e *Explainer) ExplainCategoryContext(ctx context.Context, user, category hin.NodeID, maxItems int, mode Mode, method Method) (*Explanation, error) {
	if category < 0 || int(category) >= e.g.NumNodes() {
		return nil, fmt.Errorf("%w: category node %d out of range", ErrNotWhyNotItem, category)
	}
	var items []hin.NodeID
	seen := make(map[hin.NodeID]bool)
	collect := func(h hin.HalfEdge) bool {
		if !seen[h.Node] && e.r.IsItem(h.Node) {
			seen[h.Node] = true
			items = append(items, h.Node)
		}
		return true
	}
	e.g.OutEdges(category, collect)
	e.g.InEdges(category, collect)
	if len(items) == 0 {
		return nil, fmt.Errorf("%w: node %d has no item neighbors (is it a category?)", ErrEmptyGroup, category)
	}
	q := GroupQuery{User: user, Items: items}
	members, err := e.validGroupMembers(ctx, q)
	if err != nil {
		return nil, err
	}
	if maxItems > 0 && len(members) > maxItems {
		members = members[:maxItems] // validGroupMembers sorts by score
	}
	return e.ExplainGroupContext(ctx, GroupQuery{User: user, Items: members}, mode, method)
}

// validGroupMembers filters the group per Definition 4.1 and orders it
// by descending current score. It returns ErrAlreadyTop when a member
// already is the recommendation.
func (e *Explainer) validGroupMembers(ctx context.Context, q GroupQuery) ([]hin.NodeID, error) {
	if len(q.Items) == 0 {
		return nil, ErrEmptyGroup
	}
	current, err := e.r.RecommendContext(ctx, q.User)
	if err != nil {
		return nil, wrapCtxErr(err, Stats{})
	}
	scores, err := e.r.ScoresContext(ctx, q.User)
	if err != nil {
		return nil, wrapCtxErr(err, Stats{})
	}
	seen := make(map[hin.NodeID]bool, len(q.Items))
	var members []hin.NodeID
	for _, m := range q.Items {
		if m == current {
			return nil, fmt.Errorf("%w: group member %d", ErrAlreadyTop, m)
		}
		if seen[m] || !e.r.IsCandidate(q.User, m) {
			continue
		}
		seen[m] = true
		members = append(members, m)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("%w (user %d)", ErrEmptyGroup, q.User)
	}
	sort.Slice(members, func(i, j int) bool {
		return fmath.Before(scores[members[i]], scores[members[j]], int(members[i]), int(members[j]))
	})
	return members, nil
}
