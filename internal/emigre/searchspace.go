package emigre

import (
	"fmt"
	"sort"

	"github.com/why-not-xai/emigre/internal/fmath"
	"github.com/why-not-xai/emigre/internal/hin"
)

// transitionTable maps each of u's outgoing typed edges to its
// transition probability under the recommender's (β-mixed) view.
type transitionTable map[edgeKey]float64

type edgeKey struct {
	to  hin.NodeID
	typ hin.EdgeTypeID
}

func transitionsOf(view hin.View, u hin.NodeID) transitionTable {
	total := view.OutWeightSum(u)
	t := make(transitionTable)
	if total <= 0 {
		return t
	}
	view.OutEdges(u, func(h hin.HalfEdge) bool {
		t[edgeKey{h.Node, h.Type}] += h.Weight / total
		return true
	})
	return t
}

// defineSearchSpace runs Algorithm 1 (Remove mode) or Algorithm 2 (Add
// mode): it fills s.cands — the paper's contribution-ordered list H —
// and s.tau, the gap estimate between rec and WNI.
//
// Sign convention (see DESIGN.md §3.2): tau is the sum of
// contribution_rmv over the user's allowed existing edges, positive
// while rec dominates WNI; committing a candidate subtracts its
// contribution, and the CHECK step fires once the running tau is ≤ 0.
func (s *session) defineSearchSpace() error {
	u := s.q.User
	allowed := s.ex.opts.AllowedEdgeTypes
	trans := transitionsOf(s.view, u)

	// tau: Σ contribution_rmv over the allowed existing edges (Eq. 5).
	// Both modes start from the same gap estimate (Algorithm 2 lines
	// 4-7 repeat the Algorithm 1 loop).
	s.tau = 0
	var removeCands []candidate
	for _, e := range s.ex.g.OutEdgesOfType(u, allowed) {
		w := trans[edgeKey{e.To, e.Type}]
		c := w * (s.toRec[e.To] - s.toWNI[e.To])
		s.tau += c
		removeCands = append(removeCands, candidate{edge: e, op: Remove, contribution: c})
	}

	switch s.mode {
	case Remove:
		s.cands = removeCands
	case Add:
		s.cands = s.addCandidates()
	case Combined:
		// The future-work extension of §6.4: both search spaces merged.
		// Contributions of the two kinds live on slightly different
		// scales (Eq. 5 carries the transition weight, Eq. 6 does not);
		// the CHECK step corrects any resulting mis-ordering exactly as
		// it does within a single mode.
		s.cands = append(removeCands, s.addCandidates()...)
	case Reweight:
		s.cands = s.reweightCandidates()
	default:
		return fmt.Errorf("emigre: unknown mode %v", s.mode)
	}
	sortCandidates(s.cands)
	s.stats.SearchSpace = len(s.cands)
	return nil
}

// addCandidates implements the candidate discovery of Algorithm 2: the
// Reverse Local Push run from WNI (already available as s.toWNI)
// surfaces every node x with non-negligible PPR(x, WNI); each such node
// of an allowed target type that the user is not yet connected to
// becomes a hypothetical edge (u, x) with contribution Eq. 6:
//
//	contribution_add(x) = PPR(x, WNI) − PPR(x, rec)
//
// (no W factor: the edge does not exist yet, so it has no weight).
func (s *session) addCandidates() []candidate {
	u := s.q.User
	opts := s.ex.opts
	targetOK := s.targetTypeMask()
	var cands []candidate
	for x := range s.toWNI {
		id := hin.NodeID(x)
		if s.toWNI[x] <= 0 || id == u || id == s.q.WNI {
			continue
		}
		if !targetOK[s.ex.g.NodeType(id)] {
			continue
		}
		if s.ex.g.HasEdge(u, id) {
			continue
		}
		cands = append(cands, candidate{
			edge:         hin.Edge{From: u, To: id, Type: opts.AddEdgeType, Weight: opts.AddEdgeWeight},
			op:           Add,
			contribution: s.toWNI[x] - s.toRec[x],
		})
	}
	return cands
}

// reweightCandidates builds the Reweight search space (the "You should
// have rated book A with 5 stars" extension of §7): every allowed
// existing edge whose weight lies below Options.ReweightTo becomes a
// candidate carrying the counterfactual weight. Raising the weight of
// the edge to n shifts roughly ΔW = (w′−w)/Σw of the user's transition
// mass onto n, so the first-order contribution toward WNI is
//
//	contribution = ΔW · (PPR(n, WNI) − PPR(n, rec))
func (s *session) reweightCandidates() []candidate {
	u := s.q.User
	opts := s.ex.opts
	total := s.ex.g.OutWeightSum(u)
	if total <= 0 {
		return nil
	}
	var cands []candidate
	for _, e := range s.ex.g.OutEdgesOfType(u, opts.AllowedEdgeTypes) {
		if e.Weight >= opts.ReweightTo {
			continue
		}
		delta := (opts.ReweightTo - e.Weight) / total
		newEdge := e
		newEdge.Weight = opts.ReweightTo
		cands = append(cands, candidate{
			edge:         newEdge,
			op:           Reweight,
			transDelta:   delta,
			contribution: delta * (s.toWNI[e.To] - s.toRec[e.To]),
		})
	}
	return cands
}

func (s *session) targetTypeMask() []bool {
	mask := make([]bool, 256)
	types := s.ex.opts.AddTargetTypes
	if len(types) == 0 {
		types = s.ex.r.Config().ItemTypes
	}
	for _, t := range types {
		mask[t] = true
	}
	return mask
}

// sortCandidates orders by descending contribution, breaking ties by
// (To, Type) for determinism.
func sortCandidates(cands []candidate) {
	sort.Slice(cands, func(i, j int) bool {
		if !fmath.Eq(cands[i].contribution, cands[j].contribution) {
			return cands[i].contribution > cands[j].contribution
		}
		if cands[i].edge.To != cands[j].edge.To {
			return cands[i].edge.To < cands[j].edge.To
		}
		if cands[i].edge.Type != cands[j].edge.Type {
			return cands[i].edge.Type < cands[j].edge.Type
		}
		return cands[i].op < cands[j].op
	})
}

// positiveCandidates returns the prefix of s.cands with strictly
// positive contribution (the pruning step of Algorithms 3 and 4),
// optionally capped to the top limit entries.
func (s *session) positiveCandidates(limit int) []candidate {
	n := 0
	for _, c := range s.cands {
		if c.contribution <= 0 {
			break // sorted descending: the rest are non-positive too
		}
		n++
	}
	pos := s.cands[:n]
	if limit > 0 && len(pos) > limit {
		pos = pos[:limit]
	}
	return pos
}
