package emigre

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"github.com/why-not-xai/emigre/internal/pprcache"
	"github.com/why-not-xai/emigre/internal/testleak"
)

// TestParallelABExplanationsIdentical is the acceptance A/B for the
// CHECK pipeline: every mode × method must produce byte-identical
// explanations (and Stats) when evaluated sequentially and with 2, 4
// and 8 speculative workers. Ordered commit may only change how much
// work runs, never what is returned.
func TestParallelABExplanationsIdentical(t *testing.T) {
	testleak.Check(t) // speculative CHECK workers must all be joined
	for _, mode := range []Mode{Remove, Add, Combined, Reweight} {
		for _, method := range allMethods(mode) {
			seq := newFixture(t, Options{Mode: mode, Method: method})
			want, errW := seq.ex.Explain(seq.query())
			for _, workers := range []int{2, 4, 8} {
				par := newFixture(t, Options{Mode: mode, Method: method, Parallelism: workers})
				got, errG := par.ex.Explain(par.query())
				if (errW == nil) != (errG == nil) {
					t.Fatalf("%v/%v w=%d: seq err=%v par err=%v", mode, method, workers, errW, errG)
				}
				if errW != nil {
					if errW.Error() != errG.Error() {
						t.Fatalf("%v/%v w=%d: error mismatch:\nseq: %q\npar: %q",
							mode, method, workers, errW, errG)
					}
					continue
				}
				// Wall-clock is the only field allowed to differ.
				w, g := *want, *got
				w.Stats.Duration, g.Stats.Duration = 0, 0
				if !reflect.DeepEqual(&w, &g) {
					t.Errorf("%v/%v w=%d: explanations diverge:\nseq: %+v\npar: %+v",
						mode, method, workers, &w, &g)
				}
			}
		}
	}
}

// TestParallelABBudgetIdentical pins budget determinism: with a tiny
// MaxTests budget, the parallel pipeline must stop at exactly the same
// stream position as the sequential search and render byte-identical
// budget-exhaustion errors and Stats — even though its workers may have
// speculatively completed checks past the budget line.
func TestParallelABBudgetIdentical(t *testing.T) {
	for _, mode := range []Mode{Remove, Add} {
		for _, method := range allMethods(mode) {
			if method == ExhaustiveDirect {
				continue // runs no CHECK, has no budget to exhaust
			}
			for _, maxTests := range []int{1, 2, 3} {
				seq := newFixture(t, Options{Mode: mode, Method: method, MaxTests: maxTests})
				want, errW := seq.ex.Explain(seq.query())
				for _, workers := range []int{2, 8} {
					par := newFixture(t, Options{
						Mode: mode, Method: method, MaxTests: maxTests, Parallelism: workers,
					})
					got, errG := par.ex.Explain(par.query())
					if (errW == nil) != (errG == nil) {
						t.Fatalf("%v/%v b=%d w=%d: seq err=%v par err=%v",
							mode, method, maxTests, workers, errW, errG)
					}
					if errW != nil {
						if errW.Error() != errG.Error() {
							t.Fatalf("%v/%v b=%d w=%d: error mismatch:\nseq: %q\npar: %q",
								mode, method, maxTests, workers, errW, errG)
						}
						if errors.Is(errW, ErrBudgetExhausted) != errors.Is(errG, ErrBudgetExhausted) {
							t.Fatalf("%v/%v b=%d w=%d: budget sentinel mismatch", mode, method, maxTests, workers)
						}
						continue
					}
					w, g := *want, *got
					w.Stats.Duration, g.Stats.Duration = 0, 0
					if !reflect.DeepEqual(&w, &g) {
						t.Errorf("%v/%v b=%d w=%d: explanations diverge:\nseq: %+v\npar: %+v",
							mode, method, maxTests, workers, &w, &g)
					}
				}
			}
		}
	}
}

// TestParallelPipelineStatsAccounting checks the pipeline gauges: a
// parallel run is counted, its committed checks equal the query's
// Stats.Tests, waste is non-negative, and nothing stays in flight after
// the explainer returns.
func TestParallelPipelineStatsAccounting(t *testing.T) {
	f := newFixture(t, Options{Mode: Remove, Method: BruteForce, Parallelism: 4})
	expl, err := f.ex.Explain(f.query())
	if err != nil {
		t.Fatal(err)
	}
	ps := f.ex.PipelineStats()
	if ps.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", ps.Workers)
	}
	if ps.ParallelRuns != 1 {
		t.Fatalf("ParallelRuns = %d, want 1", ps.ParallelRuns)
	}
	if ps.ChecksCommitted != int64(expl.Stats.Tests) {
		t.Fatalf("ChecksCommitted = %d, want Stats.Tests = %d", ps.ChecksCommitted, expl.Stats.Tests)
	}
	if ps.SpeculativeWaste < 0 {
		t.Fatalf("SpeculativeWaste = %d, want >= 0", ps.SpeculativeWaste)
	}
	if ps.InflightChecks != 0 {
		t.Fatalf("InflightChecks = %d after return, want 0", ps.InflightChecks)
	}
}

// TestParallelSequentialFallbacks pins the degradation contract:
// Parallelism <= 1 and DynamicCheck must not touch the parallel
// evaluator at all.
func TestParallelSequentialFallbacks(t *testing.T) {
	for _, opts := range []Options{
		{Mode: Remove, Method: Powerset},
		{Mode: Remove, Method: Powerset, Parallelism: 1},
		{Mode: Remove, Method: Powerset, Parallelism: 8, DynamicCheck: true},
	} {
		f := newFixture(t, opts)
		if _, err := f.ex.Explain(f.query()); err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if ps := f.ex.PipelineStats(); ps.ParallelRuns != 0 {
			t.Fatalf("%+v: ParallelRuns = %d, want 0 (sequential path)", opts, ps.ParallelRuns)
		}
	}
}

// TestParallelRequestStatsTally checks the per-request context tally the
// server's request log consumes.
func TestParallelRequestStatsTally(t *testing.T) {
	f := newFixture(t, Options{Mode: Remove, Method: Powerset, Parallelism: 4})
	var prs PipelineRequestStats
	ctx := WithPipelineRequestStats(context.Background(), &prs)
	expl, err := f.ex.ExplainContext(ctx, f.query())
	if err != nil {
		t.Fatal(err)
	}
	if prs.Committed() != int64(expl.Stats.Tests) {
		t.Fatalf("request Committed = %d, want Stats.Tests = %d", prs.Committed(), expl.Stats.Tests)
	}
	if prs.Wasted() < 0 {
		t.Fatalf("request Wasted = %d, want >= 0", prs.Wasted())
	}
}

// TestParallelExplainUnderCacheChurn is the -race stress: several
// goroutines answer the same query through one explainer whose vector
// cache is small enough to evict constantly, while parallel CHECK
// workers hammer it within each query. Correctness bar: every
// goroutine still gets the sequential answer.
func TestParallelExplainUnderCacheChurn(t *testing.T) {
	testleak.Check(t)
	tiny := pprcache.New(pprcache.Config{MaxEntries: 4, Shards: 1})
	f := newFixture(t, Options{Mode: Remove, Method: Powerset, Parallelism: 8, Cache: tiny})
	want, err := newFixture(t, Options{Mode: Remove, Method: Powerset}).ex.Explain(f.query())
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 4
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	expls := make([]*Explanation, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			expls[i], errs[i] = f.ex.Explain(f.query())
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		w, g := *want, *expls[i]
		w.Stats.Duration, g.Stats.Duration = 0, 0
		if !reflect.DeepEqual(&w, &g) {
			t.Errorf("goroutine %d diverged from sequential:\nseq: %+v\ngot: %+v", i, &w, &g)
		}
	}
	if s := tiny.Stats(); s.Evictions == 0 {
		t.Logf("warning: tiny cache saw no evictions (%+v); churn not exercised", s)
	}
}
