// Package emigre implements EMiGRe, the Why-Not explainer for graph
// recommenders from "Why-Not Explainable Graph Recommender" (Attolou,
// Tzompanaki, Stefanidis, Kotzinos — ICDE 2024).
//
// Given a user u whose current top-1 recommendation is rec, and a
// Why-Not item WNI the user expected instead (Definition 4.1), EMiGRe
// computes a counterfactual set of user-rooted edges A* (Definition
// 4.2) such that applying A* to the graph — removing past actions
// (Remove mode) or adding suggested actions (Add mode) — makes WNI the
// top-1 recommendation.
//
// Three explanation strategies are provided, mirroring §5.2:
//
//   - Incremental (Algorithm 3): greedily commits the most influential
//     candidate edges one at a time — fastest, possibly larger
//     explanations;
//   - Powerset (Algorithm 4): examines candidate combinations in
//     ascending size order — favors minimal explanations;
//   - Exhaustive Comparison (Algorithm 5): compares WNI against every
//     item of the current top-k list via a contribution matrix and a
//     per-target threshold vector — best success rate.
//
// Two baselines from §6.2 complete the set: ExhaustiveDirect (the
// Exhaustive Comparison without the final CHECK — demonstrably returns
// false positives) and BruteForce (subset enumeration over the user's
// past actions — the success-rate and size oracle in Remove mode).
//
// Every non-direct strategy verifies its answer with the paper's CHECK
// step: the candidate edit is applied as a copy-on-write overlay and
// the recommender is re-run; the edit is an explanation iff the new
// top-1 equals WNI.
package emigre

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/why-not-xai/emigre/internal/fmath"
	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/ppr"
	"github.com/why-not-xai/emigre/internal/pprcache"
	"github.com/why-not-xai/emigre/internal/rec"
)

// Mode selects the search space of Definition 4.2.
type Mode int

const (
	// Remove searches among the user's existing outgoing edges (past
	// actions, the set A⁻).
	Remove Mode = iota
	// Add searches among non-existing user-to-item edges (suggested
	// actions, the set A⁺).
	Add
	// Combined searches both spaces at once, mixing removals of past
	// actions with suggested new ones. The paper names this extension
	// as future work for the "out of scope item" failures of §6.4 that
	// neither pure mode can answer.
	Combined
	// Reweight searches among the user's existing edges for weight
	// increases ("You should have rated book A with 5 stars") — the
	// second future-work extension named in §7.
	Reweight
)

// String returns the lower-case mode name.
func (m Mode) String() string {
	switch m {
	case Remove:
		return "remove"
	case Add:
		return "add"
	case Combined:
		return "combined"
	case Reweight:
		return "reweight"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Method selects the explanation strategy.
type Method int

const (
	// Incremental is the runtime-optimized heuristic (Algorithm 3).
	Incremental Method = iota
	// Powerset is the size-optimized heuristic (Algorithm 4).
	Powerset
	// Exhaustive is the Exhaustive Comparison strategy (Algorithm 5).
	Exhaustive
	// ExhaustiveDirect is Exhaustive without the CHECK step — a baseline
	// that may return unverified (possibly wrong) explanations.
	ExhaustiveDirect
	// BruteForce enumerates subsets of the user's actions in ascending
	// size order (Remove mode only).
	BruteForce
)

// String returns the method name used in the paper's plots.
func (m Method) String() string {
	switch m {
	case Incremental:
		return "incremental"
	case Powerset:
		return "powerset"
	case Exhaustive:
		return "exhaustive"
	case ExhaustiveDirect:
		return "exhaustive-direct"
	case BruteForce:
		return "brute-force"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Errors returned by the explainer.
var (
	// ErrNoExplanation is returned when the selected strategy exhausts
	// its (budgeted) search space without a verified explanation.
	ErrNoExplanation = errors.New("emigre: no explanation found")
	// ErrAlreadyTop is returned when the Why-Not item already is the
	// top-1 recommendation.
	ErrAlreadyTop = errors.New("emigre: item already is the top recommendation")
	// ErrNotWhyNotItem is returned when the Why-Not item violates
	// Definition 4.1 (not an item, or already interacted with).
	ErrNotWhyNotItem = errors.New("emigre: invalid Why-Not item")
	// ErrBruteForceAddMode is returned when BruteForce is requested in
	// Add mode, whose search space the paper deems prohibitive (§6.2).
	ErrBruteForceAddMode = errors.New("emigre: brute force is only available in Remove mode")
	// ErrBudgetExhausted wraps ErrNoExplanation when a search budget
	// (MaxTests, MaxCombinationSize, ...) stopped the search early.
	ErrBudgetExhausted = errors.New("emigre: search budget exhausted")
	// ErrCanceled is returned by the Context entry points when the
	// search was stopped by context cancellation or deadline expiry
	// before its space was exhausted. The concrete error is a
	// *CanceledError carrying the partial Stats; errors.Is also matches
	// the underlying context error (context.Canceled or
	// context.DeadlineExceeded).
	ErrCanceled = errors.New("emigre: search canceled")
)

// CanceledError reports a search interrupted by its context. It wraps
// both ErrCanceled and the context's own error, and carries the work
// statistics accumulated up to the interruption so callers can observe
// how far a timed-out search got.
type CanceledError struct {
	// Stats is the partial per-query work tally at cancellation time.
	Stats Stats
	// Partial, when non-nil, is the best unverified partial explanation
	// the interrupted search can offer: the last candidate set it was
	// about to CHECK (or the single highest-contribution candidate when
	// it never reached a CHECK). It has the same epistemic status as an
	// ExhaustiveDirect result — Verified is false, Partial is true, and
	// NewTop is unknown — and exists so a deadline-squeezed server can
	// degrade to a useful answer instead of a bare timeout.
	Partial *Explanation
	// Cause is the context error that stopped the search.
	Cause error
}

// Error implements error.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("%v after %d checks: %v", ErrCanceled, e.Stats.Tests, e.Cause)
}

// Unwrap exposes ErrCanceled and the context error to errors.Is.
func (e *CanceledError) Unwrap() []error { return []error{ErrCanceled, e.Cause} }

// wrapCtxErr converts a raw context error surfacing from a PPR engine
// or recommender call into a *CanceledError carrying the given partial
// stats. Errors that already are CanceledError, and non-context errors,
// pass through unchanged.
func wrapCtxErr(err error, stats Stats) error {
	if err == nil {
		return nil
	}
	var ce *CanceledError
	if errors.As(err, &ce) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &CanceledError{Stats: stats, Cause: err}
	}
	return err
}

// Options configures an Explainer.
type Options struct {
	// Mode selects Remove or Add; Method selects the strategy.
	Mode   Mode
	Method Method

	// AllowedEdgeTypes is the paper's T_e: the edge types that may
	// appear in explanations. The zero value allows every type. The
	// paper's experiments restrict T_e to user-item edges.
	AllowedEdgeTypes hin.EdgeTypeSet

	// AddEdgeType and AddEdgeWeight describe the hypothetical edges
	// created in Add mode. AddEdgeWeight defaults to 1.
	AddEdgeType   hin.EdgeTypeID
	AddEdgeWeight float64

	// AddTargetTypes restricts the node types reachable by added edges.
	// Empty means "the recommender's item types".
	AddTargetTypes []hin.NodeTypeID

	// TopKTargets is |T| for the Exhaustive Comparison: WNI must beat
	// the current top-K items. Default 10 (the paper's top-10 list).
	TopKTargets int

	// MaxSearchSpace caps |H|, keeping the highest-contribution
	// candidates (0 = no cap for Incremental; combination strategies
	// default to 16 to bound the powerset).
	MaxSearchSpace int

	// MaxCombinationSize caps the size of candidate combinations for
	// Powerset, Exhaustive and BruteForce. Default 5.
	MaxCombinationSize int

	// MaxTests caps the number of CHECK invocations per query.
	// Default 2000.
	MaxTests int

	// ReweightTo is the target weight of Reweight-mode explanations
	// (e.g. the weight of a 5-star rating). Default 1.
	ReweightTo float64

	// TargetRank relaxes the success criterion of Definition 4.2 from
	// "WNI becomes the top-1" (the default, 1) to "WNI enters the
	// top-k". The candidate-selection heuristics still aim at the top;
	// only the CHECK step and the ErrAlreadyTop validation use the
	// relaxed rank.
	TargetRank int

	// Cache is the PPR-vector cache backing the explainer's reverse
	// columns (the session's PPR(·,rec) and PPR(·,WNI) plus the
	// Exhaustive Comparison's per-target columns) and — through the
	// recommender — its forward vectors. Nil means an explainer-private
	// cache with default bounds; share one pprcache.Cache across the
	// explainer and the serving recommender to get cross-request reuse.
	Cache *pprcache.Cache

	// DisableCache turns vector caching off entirely (A/B comparisons,
	// memory-constrained runs). Explanations are byte-identical with and
	// without the cache; only the work performed differs.
	DisableCache bool

	// DynamicCheck accelerates the CHECK step with the dynamic
	// forward-push engine (ppr.DynamicForwardPush): instead of
	// re-running PPR from scratch on every counterfactual overlay, the
	// push state is repaired locally for the changed user row — the
	// optimization avenue the paper points at in §5.3 via Zhang,
	// Lofgren & Goel. Rejections are decided dynamically; passes are
	// confirmed with one static run, so returned explanations are
	// exactly as sound as without the option. A rejection may disagree
	// with the static path on tolerance-level near-ties.
	//
	// DynamicCheck forces sequential CHECK evaluation: the push state
	// is repaired incrementally from one counterfactual to the next,
	// which is inherently a serial walk of the candidate stream.
	DynamicCheck bool

	// DeltaCheck accelerates the CHECK step with stateless warm-start
	// pushes (ppr.ForwardPush.UpdateForEdit): the session fetches the
	// user's full base push state — estimates AND residuals — once
	// through the result cache, and every counterfactual CHECK repairs
	// that shared immutable base at the user's edited row instead of
	// re-running PPR from scratch, O(Δ) per check. Unlike DynamicCheck
	// the base is never mutated, so DeltaCheck composes with
	// Parallelism: each speculative worker warm-starts from the same
	// base with its own scratch. Rejections are decided on the warm
	// estimates; passes are confirmed with one static run, so returned
	// explanations are exactly as sound as without the option. When a
	// counterfactual's edit set exceeds DeltaMaxEdits the screen is
	// skipped and the full recompute runs (Stats.DeltaFallbacks).
	//
	// DynamicCheck takes precedence when both options are set.
	DeltaCheck bool

	// DeltaMaxEdits caps the per-counterfactual edit-set size (total
	// weight changes across edited rows) the delta screen will repair;
	// larger edit sets fall back to the full recompute, whose cost the
	// repair would approach anyway. Default 32.
	DeltaMaxEdits int

	// Parallelism is the number of CHECK evaluations run concurrently
	// per query. The strategies emit their candidate sets as an ordered
	// stream; with Parallelism > 1 a worker pool verifies sets
	// speculatively while results are committed in stream order, so
	// explanations, Stats and budget errors are byte-identical to the
	// sequential search (see pipeline.go). 0 or 1 (the default) runs
	// the classic sequential path; DynamicCheck forces it.
	Parallelism int
}

// Defaults used when an Options field is zero.
const (
	DefaultTopKTargets        = 10
	DefaultMaxSearchSpace     = 16
	DefaultMaxCombinationSize = 5
	DefaultMaxTests           = 2000
	DefaultAddEdgeWeight      = 1.0
	DefaultReweightTo         = 1.0
	DefaultDeltaMaxEdits      = 32
)

func (o Options) withDefaults() Options {
	if fmath.Eq(o.AddEdgeWeight, 0) {
		o.AddEdgeWeight = DefaultAddEdgeWeight
	}
	if o.TopKTargets == 0 {
		o.TopKTargets = DefaultTopKTargets
	}
	if o.MaxSearchSpace == 0 {
		o.MaxSearchSpace = DefaultMaxSearchSpace
	}
	if o.MaxCombinationSize == 0 {
		o.MaxCombinationSize = DefaultMaxCombinationSize
	}
	if o.MaxTests == 0 {
		o.MaxTests = DefaultMaxTests
	}
	if fmath.Eq(o.ReweightTo, 0) {
		o.ReweightTo = DefaultReweightTo
	}
	if o.DeltaMaxEdits == 0 {
		o.DeltaMaxEdits = DefaultDeltaMaxEdits
	}
	if o.TargetRank == 0 {
		o.TargetRank = 1
	}
	return o
}

// Query is one Why-Not question: "user User expected item WNI — why is
// it not the top recommendation?".
type Query struct {
	User hin.NodeID
	WNI  hin.NodeID
}

// Stats records the work performed while answering one query.
type Stats struct {
	// SearchSpace is |H|, the number of candidate edges considered.
	SearchSpace int
	// CombosExamined counts candidate combinations inspected (before
	// threshold filtering).
	CombosExamined int
	// Tests counts CHECK invocations (each one is a full PPR run on a
	// counterfactual overlay — or a warm-start repair under DeltaCheck).
	Tests int
	// DeltaScreened counts CHECKs evaluated by the warm-start delta
	// screen (Options.DeltaCheck): rejections it decided outright plus
	// passes it forwarded to the static confirmation run.
	DeltaScreened int
	// DeltaFallbacks counts CHECKs where the delta screen stepped aside
	// for the full recompute (edit set larger than DeltaMaxEdits).
	DeltaFallbacks int
	// Duration is the wall-clock time of the Explain call.
	Duration time.Duration
}

// Explanation is a verified Why-Not explanation: applying Edges to the
// graph (removing them in Remove mode, adding them in Add mode) makes
// the Why-Not item the top-1 recommendation.
type Explanation struct {
	Query  Query
	Mode   Mode
	Method Method
	// Group carries the full Why-Not set for group-granularity queries
	// (nil for single-item questions). NewTop is then some member of
	// the group, not necessarily Query.WNI.
	Group []hin.NodeID
	// Edges is A*, the user-rooted edge set of Definition 4.2 — the
	// union of Removals and Additions.
	Edges []hin.Edge
	// Removals are the past actions to undo (all of Edges in Remove
	// mode; empty in Add mode).
	Removals []hin.Edge
	// Additions are the suggested new actions (all of Edges in Add
	// mode; empty in Remove mode).
	Additions []hin.Edge
	// Reweights are existing edges whose Weight field carries the
	// counterfactual new weight (Reweight mode only).
	Reweights []hin.Edge
	// Verified reports whether the CHECK step confirmed the explanation.
	// It is false only for ExhaustiveDirect results and for Partial
	// explanations surfaced by an interrupted search.
	Verified bool
	// Partial marks an unverified best-effort explanation recovered from
	// an interrupted search (CanceledError.Partial): the candidate set
	// the search was evaluating when its deadline hit. NewTop is then
	// hin.InvalidNode — no counterfactual claim is made.
	Partial bool
	// NewTop is the top-1 recommendation after applying Edges (equal to
	// Query.WNI when Verified).
	NewTop hin.NodeID
	// OldTop is the recommendation the explanation displaces.
	OldTop hin.NodeID
	// TargetRank echoes the success criterion the explanation was
	// verified against (1 = top-1).
	TargetRank int
	Stats      Stats
}

// Size returns the number of edges in the explanation.
func (e *Explanation) Size() int { return len(e.Edges) }

// Describe renders the explanation as the natural-language reading used
// in the paper's Figure 1, resolving node labels through g.
func (e *Explanation) Describe(g *hin.Graph) string {
	name := func(v hin.NodeID) string {
		if l := g.Label(v); l != "" {
			return l
		}
		return fmt.Sprintf("node %d", v)
	}
	names := func(edges []hin.Edge) string {
		var items []string
		for _, edge := range edges {
			items = append(items, name(edge.To))
		}
		return strings.Join(items, " and ")
	}
	goal := fmt.Sprintf("your top recommendation would be %s", name(e.Query.WNI))
	if e.TargetRank > 1 {
		goal = fmt.Sprintf("%s would be among your top %d recommendations", name(e.Query.WNI), e.TargetRank)
	}
	switch {
	case len(e.Reweights) > 0:
		var items []string
		for _, edge := range e.Reweights {
			items = append(items, fmt.Sprintf("%s at weight %g", name(edge.To), edge.Weight))
		}
		return fmt.Sprintf("Had you rated %s, %s.", strings.Join(items, " and "), goal)
	case len(e.Removals) > 0 && len(e.Additions) > 0:
		return fmt.Sprintf("Had you not interacted with %s but interacted with %s, %s.",
			names(e.Removals), names(e.Additions), goal)
	case e.Mode == Remove || len(e.Removals) > 0:
		edges := e.Removals
		if len(edges) == 0 {
			edges = e.Edges
		}
		return fmt.Sprintf("Had you not interacted with %s, %s.", names(edges), goal)
	default:
		edges := e.Additions
		if len(edges) == 0 {
			edges = e.Edges
		}
		return fmt.Sprintf("Had you interacted with %s, %s.", names(edges), goal)
	}
}

// Explainer answers Why-Not queries over a fixed graph and recommender.
// An Explainer is safe for concurrent use: sessions only read the graph
// and recommender, and the pipeline metrics are atomics.
type Explainer struct {
	g       *hin.Graph
	r       *rec.Recommender
	opts    Options
	rev     *ppr.ReversePush
	cache   *pprcache.Cache // nil when Options.DisableCache
	metrics *pipelineMetrics
}

// New builds an explainer. The recommender must have been built over g
// (or over a view of it); opts.Mode/Method select the default strategy
// used by Explain.
//
// Unless opts.DisableCache is set, the explainer serves its PPR vectors
// through a pprcache.Cache: opts.Cache when given, else a private one.
// A recommender without its own cache is rebound to the same cache (via
// a copy — the caller's recommender is never mutated) so the session
// baseline forward vector and the CHECK step share it too.
func New(g *hin.Graph, r *rec.Recommender, opts Options) *Explainer {
	o := opts.withDefaults()
	cache := o.Cache
	if o.DisableCache {
		cache = nil
	} else if cache == nil {
		cache = pprcache.New(pprcache.Config{})
	}
	if cache != nil && r.Cache() == nil {
		r = r.WithCache(cache)
	}
	return &Explainer{
		g:       g,
		r:       r,
		opts:    o,
		rev:     ppr.NewReversePush(r.Config().PPR),
		cache:   cache,
		metrics: &pipelineMetrics{},
	}
}

// Options returns the explainer's effective options (defaults applied).
func (e *Explainer) Options() Options { return e.opts }

// Cache returns the PPR-vector cache the explainer serves from, nil
// when caching is disabled.
func (e *Explainer) Cache() *pprcache.Cache { return e.cache }

// Explain answers the query with the explainer's configured mode and
// method.
func (e *Explainer) Explain(q Query) (*Explanation, error) {
	return e.ExplainContext(context.Background(), q)
}

// ExplainContext is Explain with cancellation: the search — including
// every PPR pass it triggers — aborts once ctx is canceled or its
// deadline passes, returning a *CanceledError that wraps ErrCanceled
// and carries the partial Stats.
func (e *Explainer) ExplainContext(ctx context.Context, q Query) (*Explanation, error) {
	return e.ExplainWithContext(ctx, q, e.opts.Mode, e.opts.Method)
}

// ExplainWith answers the query with an explicit mode and method,
// overriding the configured defaults.
func (e *Explainer) ExplainWith(q Query, mode Mode, method Method) (*Explanation, error) {
	return e.ExplainWithContext(context.Background(), q, mode, method)
}

// ExplainWithContext is ExplainWith with cancellation (see
// ExplainContext for the semantics).
func (e *Explainer) ExplainWithContext(ctx context.Context, q Query, mode Mode, method Method) (*Explanation, error) {
	return e.explain(ctx, q, nil, mode, method)
}

// explain runs one attempt. accept, when non-nil, widens the success
// criterion of the CHECK step to "the new top-1 is any member of
// accept" — the group-granularity semantics of ExplainGroup.
func (e *Explainer) explain(ctx context.Context, q Query, accept map[hin.NodeID]bool, mode Mode, method Method) (*Explanation, error) {
	start := time.Now()
	s, err := e.newSession(ctx, q, mode)
	if err != nil {
		return nil, err
	}
	s.accept = accept
	var expl *Explanation
	switch method {
	case Incremental:
		expl, err = s.incremental()
	case Powerset:
		expl, err = s.powerset()
	case Exhaustive:
		expl, err = s.exhaustive(true)
	case ExhaustiveDirect:
		expl, err = s.exhaustive(false)
	case BruteForce:
		if mode != Remove {
			return nil, ErrBruteForceAddMode
		}
		expl, err = s.bruteForce()
	default:
		return nil, fmt.Errorf("emigre: unknown method %v", method)
	}
	if err != nil {
		// Stamp the elapsed time into the partial stats of a canceled
		// search so a 504 handler can report how long it actually ran,
		// and attach the best partial explanation the session tracked so
		// a degraded handler can answer with it.
		var ce *CanceledError
		if errors.As(err, &ce) {
			ce.Stats.Duration = time.Since(start)
			if ce.Partial == nil {
				if p := s.partialExplanation(); p != nil {
					p.Method = method
					p.Stats = ce.Stats
					ce.Partial = p
				}
			}
		}
		return nil, err
	}
	expl.Query = q
	expl.Mode = mode
	expl.Method = method
	expl.OldTop = s.rec
	expl.TargetRank = e.opts.TargetRank
	expl.Stats = s.stats
	expl.Stats.Duration = time.Since(start)
	return expl, nil
}

// CurrentRecommendation returns the top-1 recommendation EMiGRe
// explains against.
func (e *Explainer) CurrentRecommendation(u hin.NodeID) (hin.NodeID, error) {
	return e.r.Recommend(u)
}

// Verify re-runs the CHECK step for an explanation: it applies the
// edges to a fresh overlay and reports whether the Why-Not item becomes
// the top-1 recommendation. It is used by the evaluation harness to
// audit ExhaustiveDirect results.
func (e *Explainer) Verify(expl *Explanation) (bool, error) {
	return e.VerifyContext(context.Background(), expl)
}

// VerifyContext is Verify with cancellation.
func (e *Explainer) VerifyContext(ctx context.Context, expl *Explanation) (bool, error) {
	s, err := e.newSession(ctx, expl.Query, expl.Mode)
	if err != nil {
		return false, err
	}
	var cands []candidate
	for _, edge := range expl.Removals {
		cands = append(cands, candidate{edge: edge, op: Remove})
	}
	for _, edge := range expl.Additions {
		cands = append(cands, candidate{edge: edge, op: Add})
	}
	for _, edge := range expl.Reweights {
		cands = append(cands, candidate{edge: edge, op: Reweight})
	}
	if len(cands) == 0 {
		// Explanations built outside the package may only fill Edges;
		// fall back to the explanation's mode.
		for _, edge := range expl.Edges {
			cands = append(cands, candidate{edge: edge, op: expl.Mode})
		}
	}
	ok, _, err := s.check(cands)
	return ok, err
}

// session carries the per-query state shared by the strategies.
type session struct {
	ex *Explainer
	// ctx cancels the search; the strategies poll it at their loop
	// boundaries and every CHECK, and the PPR engines poll it inside
	// their own iteration loops.
	ctx   context.Context
	q     Query
	mode  Mode
	rec   hin.NodeID // current top-1 recommendation
	view  hin.View   // the β-mixed transition view scores are taken on
	toRec ppr.Vector // PPR(·, rec)
	toWNI ppr.Vector // PPR(·, WNI)
	cands []candidate
	tau   float64
	stats Stats
	// accept optionally widens the CHECK success criterion to a set of
	// items (group-granularity queries); nil means {WNI}.
	accept map[hin.NodeID]bool
	// dyn is the lazily created dynamic-push state used when
	// Options.DynamicCheck is set.
	dyn *ppr.DynamicForwardPush
	// base is the user's full forward push state over the unedited view,
	// fetched once (through the result cache) when Options.DeltaCheck is
	// active. Immutable and shared: every delta screen — sequential or
	// on a pipeline worker — warm-starts from it with its own scratch.
	base *ppr.PushResult
	// dsc is the sequential evaluator's reusable delta scratch; pipeline
	// workers allocate their own per goroutine.
	dsc deltaScratch
	// lastAttempt is the most recent candidate set submitted to CHECK,
	// kept so an interrupted search can surface it as an unverified
	// partial explanation (see CanceledError.Partial). Written by the
	// evaluators at each yield; in parallel mode the generator goroutine
	// writes it and the session reads it only after the pipeline joins.
	lastAttempt []candidate
}

// candidate is one entry of the paper's list H: an edge that could be
// removed from (or added to) the user's neighborhood, with its relative
// contribution (Eq. 5 / Eq. 6). op is Remove or Add per candidate so
// the Combined mode can mix both kinds in one list.
type candidate struct {
	edge         hin.Edge
	op           Mode
	contribution float64
	// transDelta is the estimated transition-probability change of a
	// Reweight candidate (unused for other ops).
	transDelta float64
}

func (e *Explainer) newSession(ctx context.Context, q Query, mode Mode) (*session, error) {
	if q.User < 0 || int(q.User) >= e.g.NumNodes() || q.WNI < 0 || int(q.WNI) >= e.g.NumNodes() {
		return nil, fmt.Errorf("%w: node out of range", ErrNotWhyNotItem)
	}
	if !e.r.IsCandidate(q.User, q.WNI) {
		return nil, fmt.Errorf("%w: node %d is not a recommendable item for user %d (Definition 4.1 requires an item the user has not interacted with)",
			ErrNotWhyNotItem, q.WNI, q.User)
	}
	var base *ppr.PushResult
	if e.deltaActive() {
		// Fetch the base pair before the baseline recommendation: the
		// result-level fill populates (or upgrades) the cache entry the
		// RecommendContext below then hits, so the session still runs
		// one full forward push in total. Without a cache this costs one
		// extra push — DeltaCheck is built for the cached serving path.
		var err error
		base, err = e.r.ForwardResultContext(ctx, q.User)
		if err != nil {
			return nil, wrapCtxErr(err, Stats{})
		}
	}
	current, err := e.r.RecommendContext(ctx, q.User)
	if err != nil {
		return nil, wrapCtxErr(err, Stats{})
	}
	if current == q.WNI {
		return nil, fmt.Errorf("%w: item %d", ErrAlreadyTop, q.WNI)
	}
	if k := e.opts.TargetRank; k > 1 {
		rank, err := e.r.RankOfContext(ctx, q.User, q.WNI)
		if err != nil {
			return nil, wrapCtxErr(err, Stats{})
		}
		if rank <= k {
			return nil, fmt.Errorf("%w: item %d already at rank %d ≤ target %d", ErrAlreadyTop, q.WNI, rank, k)
		}
	}
	s := &session{ex: e, ctx: ctx, q: q, mode: mode, rec: current, view: e.r.Flat(), base: base}
	s.toRec, err = s.reverseColumn(current)
	if err != nil {
		return nil, wrapCtxErr(err, Stats{})
	}
	s.toWNI, err = s.reverseColumn(q.WNI)
	if err != nil {
		return nil, wrapCtxErr(err, Stats{})
	}
	if err := s.defineSearchSpace(); err != nil {
		return nil, err
	}
	return s, nil
}

// splitOps partitions a candidate selection into removal, addition and
// reweight edge lists according to each candidate's op.
func splitOps(cands []candidate) (removals, additions, reweights []hin.Edge) {
	for _, c := range cands {
		switch c.op {
		case Add:
			additions = append(additions, c.edge)
		case Reweight:
			reweights = append(reweights, c.edge)
		default:
			removals = append(removals, c.edge)
		}
	}
	return removals, additions, reweights
}

// reverseColumn returns PPR(·, t) over the session's scoring view,
// served through the explainer's vector cache when one is attached (the
// CSR snapshot carries the β-mixed view's version, so columns computed
// for one request are reused by every later request over the same
// graph). The returned vector is shared and must not be mutated.
func (s *session) reverseColumn(t hin.NodeID) (ppr.Vector, error) {
	if c := s.ex.cache; c != nil {
		if k, ok := pprcache.ReverseKey(s.view, s.ex.rev, t); ok {
			vec, _, err := c.GetOrCompute(s.ctx, k, func(cctx context.Context) (ppr.Vector, error) {
				return s.ex.rev.ToTargetContext(cctx, s.view, t)
			})
			return vec, err
		}
	}
	return s.ex.rev.ToTargetContext(s.ctx, s.view, t)
}

// canceled reports a pending cancellation of the session's context as
// a *CanceledError carrying the partial stats; nil when the search may
// continue. Strategies poll it at their loop boundaries.
func (s *session) canceled() error {
	if s.ctx == nil {
		return nil
	}
	if err := s.ctx.Err(); err != nil {
		return &CanceledError{Stats: s.stats, Cause: err}
	}
	return nil
}

// wrapCtx tags a context error that surfaced from a nested PPR or
// recommender call with the session's partial stats.
func (s *session) wrapCtx(err error) error { return wrapCtxErr(err, s.stats) }

// deltaActive reports whether the warm-start delta screen runs for
// this explainer's sessions. DynamicCheck takes precedence: its serial
// repaired state subsumes the stateless screen.
func (e *Explainer) deltaActive() bool {
	return e.opts.DeltaCheck && !e.opts.DynamicCheck
}

// deltaScratch is one evaluator's reusable warm-start working set: the
// push scratch plus the edited-row list. The session owns one for the
// sequential path; each pipeline worker goroutine owns its own.
type deltaScratch struct {
	sc   ppr.UpdateScratch
	rows []hin.NodeID
}

// deltaFlags records how the delta screen participated in one CHECK,
// so the parallel committer can fold per-check outcomes into Stats in
// stream order (worker-count-deterministic, like Tests).
type deltaFlags struct {
	// screened: the warm screen produced the verdict (a rejection) or
	// forwarded a tentative pass to the static confirmation.
	screened bool
	// fallback: the edit set exceeded DeltaMaxEdits; full recompute ran.
	fallback bool
}

// check is the paper's CHECK/TEST step with the session's sequential
// bookkeeping: cancellation poll, CHECK budget, Tests tally, and the
// optional dynamic-push or delta-screen fast rejection. The parallel
// pipeline performs the same bookkeeping at commit time and calls
// checkOnce instead.
func (s *session) check(cands []candidate) (bool, hin.NodeID, error) {
	if err := s.canceled(); err != nil {
		return false, hin.InvalidNode, err
	}
	if err := checkSite.Hit(s.ctx); err != nil {
		return false, hin.InvalidNode, s.wrapCtx(err)
	}
	if s.stats.Tests >= s.ex.opts.MaxTests {
		return false, hin.InvalidNode, budgetExhausted(s.stats.Tests)
	}
	s.stats.Tests++
	r2, o, err := s.counterfactual(cands)
	if err != nil {
		return false, hin.InvalidNode, err
	}
	if s.ex.opts.DynamicCheck {
		ok, _, err := s.dynamicCheck(r2)
		if err != nil {
			return false, hin.InvalidNode, s.wrapCtx(err)
		}
		if !ok {
			// Fast rejection: the overwhelming majority of CHECK calls
			// end here, each for the price of a local push repair.
			return false, hin.InvalidNode, nil
		}
		// A dynamic PASS is confirmed with one static run so returned
		// explanations stay sound even on tolerance-level near-ties.
	} else if s.ex.deltaActive() {
		ok, _, flags, err := s.deltaScreen(s.ctx, r2, o, &s.dsc)
		if err != nil {
			return false, hin.InvalidNode, s.wrapCtx(err)
		}
		s.tallyDelta(flags)
		if flags.screened && !ok {
			// Warm rejection: decided on the repaired estimates alone,
			// no full PPR run. Passes fall through to the static
			// confirmation below, mirroring DynamicCheck soundness.
			return false, hin.InvalidNode, nil
		}
	}
	ok, top, err := s.rankCheck(s.ctx, r2)
	if err != nil {
		return false, hin.InvalidNode, s.wrapCtx(err)
	}
	return ok, top, nil
}

// tallyDelta folds one CHECK's delta-screen outcome into the session
// stats. The sequential evaluator calls it at check time; the parallel
// committer calls it per committed job, in stream order.
func (s *session) tallyDelta(flags deltaFlags) {
	if flags.screened {
		s.stats.DeltaScreened++
	}
	if flags.fallback {
		s.stats.DeltaFallbacks++
	}
}

// checkOnce is one stateless CHECK: overlay, patched recommender,
// optional delta screen, rank comparison. It performs no budget or
// Tests accounting, never touches the session's dynamic-push state,
// and returns context errors raw (the caller wraps them with the stats
// it has committed) — which makes it safe to run from many pipeline
// workers at once. The shared state it reads (graph, recommender
// snapshot, accept set, base push state, cache) is read-only for the
// session's lifetime; dsc is the caller's own scratch (nil for an
// uncached one-shot).
func (s *session) checkOnce(ctx context.Context, cands []candidate, dsc *deltaScratch) (bool, hin.NodeID, deltaFlags, error) {
	// The same CHECK seam the sequential path gates in check(): one
	// failpoint hit per evaluation, whichever pipeline runs it.
	if err := checkSite.Hit(ctx); err != nil {
		return false, hin.InvalidNode, deltaFlags{}, err
	}
	r2, o, err := s.counterfactual(cands)
	if err != nil {
		return false, hin.InvalidNode, deltaFlags{}, err
	}
	var flags deltaFlags
	if s.ex.deltaActive() {
		if dsc == nil {
			dsc = &deltaScratch{}
		}
		ok, _, f, err := s.deltaScreen(ctx, r2, o, dsc)
		if err != nil {
			return false, hin.InvalidNode, deltaFlags{}, err
		}
		flags = f
		if flags.screened && !ok {
			return false, hin.InvalidNode, flags, nil
		}
	}
	ok, top, err := s.rankCheck(ctx, r2)
	return ok, top, flags, err
}

// deltaScreen evaluates the counterfactual on warm-start estimates:
// the overlay's edited rows are repaired against the session's shared
// base push state and the verdict is read off the resulting estimate
// vector — the same decision rule as dynamicCheck, but stateless, so
// any number of workers can screen concurrently. Edit sets larger than
// DeltaMaxEdits fall back (screened=false) to the full recompute.
func (s *session) deltaScreen(ctx context.Context, r2 *rec.Recommender, o *hin.Overlay, dsc *deltaScratch) (bool, hin.NodeID, deltaFlags, error) {
	edits := o.RowEdits()
	changes := 0
	for _, re := range edits {
		changes += len(re.Changes)
	}
	if changes > s.ex.opts.DeltaMaxEdits {
		recordDeltaFallback()
		return false, hin.InvalidNode, deltaFlags{fallback: true}, nil
	}
	dsc.rows = dsc.rows[:0]
	for _, re := range edits {
		dsc.rows = append(dsc.rows, re.Node)
	}
	// The base pair was pushed over the unpatched scoring view (the
	// β-mixed transition view, not the raw flat snapshot): pair it with
	// the counterfactual's scoring view, which differs only at rows.
	res, err := r2.WarmScoresContext(ctx, s.ex.r.ScoringView(), s.base, dsc.rows, &dsc.sc)
	if err != nil {
		return false, hin.InvalidNode, deltaFlags{}, err
	}
	ok, top := s.estimateVerdict(r2, res.Estimates)
	recordDeltaScreen()
	return ok, top, deltaFlags{screened: true}, nil
}

// counterfactual applies the candidate selection as an overlay and
// binds the recommender to it. Counterfactuals only touch the user's
// outgoing row, so the recommender scores over a one-row patch of its
// flat snapshot instead of re-flattening the overlay; the overlay is
// returned alongside so the delta screen can enumerate its row edits.
func (s *session) counterfactual(cands []candidate) (*rec.Recommender, *hin.Overlay, error) {
	removals, additions, reweights := splitOps(cands)
	// A reweight is expressed as removing the typed edge and re-adding
	// it with the counterfactual weight.
	removals = append(removals, reweights...)
	additions = append(additions, reweights...)
	o, err := hin.NewOverlay(s.ex.g, removals, additions)
	if err != nil {
		return nil, nil, fmt.Errorf("emigre: building counterfactual overlay: %w", err)
	}
	return s.ex.r.WithUserPatch(o, s.q.User), o, nil
}

// rankCheck re-runs the recommender over the counterfactual and reports
// whether an accepted item reached the target rank, plus the new top-1.
func (s *session) rankCheck(ctx context.Context, r2 *rec.Recommender) (bool, hin.NodeID, error) {
	k := s.ex.opts.TargetRank
	list, err := r2.TopNContext(ctx, s.q.User, k)
	if err != nil {
		if errors.Is(err, rec.ErrNoCandidates) {
			return false, hin.InvalidNode, nil
		}
		return false, hin.InvalidNode, err
	}
	for _, sc := range list {
		if s.accepted(sc.Node) {
			return true, list[0].Node, nil
		}
	}
	return false, list[0].Node, nil
}

// accepted reports whether a counterfactual list entry satisfies the
// query: it equals WNI, or falls in the group accept set.
func (s *session) accepted(top hin.NodeID) bool {
	return top == s.q.WNI || (s.accept != nil && s.accept[top])
}

// dynamicCheck evaluates the counterfactual with the maintained
// dynamic-push state instead of a fresh PPR run. Successive
// counterfactuals all differ from each other only in the user's
// outgoing row, which is exactly the update shape
// ppr.DynamicForwardPush repairs locally.
func (s *session) dynamicCheck(r2 *rec.Recommender) (bool, hin.NodeID, error) {
	view := r2.ScoringView()
	if s.dyn == nil {
		var err error
		s.dyn, err = ppr.NewDynamicForwardPushContext(s.ctx, s.ex.r.Config().PPR, s.ex.r.View(), s.q.User)
		if err != nil {
			return false, hin.InvalidNode, err
		}
	}
	if err := s.dyn.UpdateContext(s.ctx, view, s.q.User); err != nil {
		return false, hin.InvalidNode, err
	}
	ok, top := s.estimateVerdict(r2, s.dyn.Estimates())
	return ok, top, nil
}

// estimateVerdict reads a CHECK verdict off an estimate vector for the
// patched recommender r2: the tolerance-ordered top candidate, and
// whether an accepted item reaches the target rank. Shared by the
// serial dynamic-push path and the stateless delta screen.
func (s *session) estimateVerdict(r2 *rec.Recommender, est ppr.Vector) (bool, hin.NodeID) {
	top := hin.InvalidNode
	best := 0.0
	for v := range est {
		id := hin.NodeID(v)
		if !r2.IsCandidate(s.q.User, id) {
			continue
		}
		if top == hin.InvalidNode || fmath.Before(est[v], best, int(id), int(top)) {
			top = id
			best = est[v]
		}
	}
	if top == hin.InvalidNode {
		return false, hin.InvalidNode
	}
	if k := s.ex.opts.TargetRank; k > 1 {
		return s.dynamicRankAccepted(r2, est, k), top
	}
	return s.accepted(top), top
}

// dynamicRankAccepted reports whether any accepted item sits within the
// top-k of the dynamic estimates.
func (s *session) dynamicRankAccepted(r2 *rec.Recommender, est ppr.Vector, k int) bool {
	targets := []hin.NodeID{s.q.WNI}
	for a := range s.accept {
		if a != s.q.WNI {
			targets = append(targets, a)
		}
	}
	for _, a := range targets {
		if !r2.IsCandidate(s.q.User, a) {
			continue
		}
		better := 0
		sa := est[a]
		for v := range est {
			id := hin.NodeID(v)
			if id == a || !r2.IsCandidate(s.q.User, id) {
				continue
			}
			if fmath.Before(est[v], sa, int(id), int(a)) {
				better++
				if better >= k {
					break
				}
			}
		}
		if better < k {
			return true
		}
	}
	return false
}

// gapFlipped reports whether a running gap estimate has crossed zero,
// with a relative tolerance so that floating-point residue from
// summation order (τ − Σc can land at ±1e-20 when every candidate is
// committed) does not suppress the CHECK step.
func (s *session) gapFlipped(tau float64) bool {
	return tau <= 1e-12*(1+math.Abs(s.tau))
}

// noteAttempt records the candidate set about to be CHECKed so a later
// interruption can surface it via partialExplanation. The set is copied:
// generators may reuse or extend their yield buffers.
func (s *session) noteAttempt(cands []candidate) {
	s.lastAttempt = append(s.lastAttempt[:0], cands...)
}

// partialExplanation renders the session's best-effort answer at
// interruption time: the last candidate set submitted to CHECK, or —
// when the search died before its first CHECK — the single
// highest-contribution candidate of the search space. Nil when the
// session has nothing defensible to offer. The result is unverified
// (same epistemic status as ExhaustiveDirect) and marked Partial; the
// caller stamps Method and Stats.
func (s *session) partialExplanation() *Explanation {
	cands := s.lastAttempt
	if len(cands) == 0 {
		if len(s.cands) == 0 {
			return nil
		}
		cands = s.cands[:1]
	}
	p := s.found(cands, false, hin.InvalidNode)
	p.Partial = true
	p.Query = s.q
	p.Mode = s.mode
	p.OldTop = s.rec
	p.TargetRank = s.ex.opts.TargetRank
	p.Stats = s.stats
	return p
}

func (s *session) found(cands []candidate, verified bool, newTop hin.NodeID) *Explanation {
	removals, additions, reweights := splitOps(cands)
	edges := make([]hin.Edge, 0, len(cands))
	edges = append(edges, removals...)
	edges = append(edges, additions...)
	edges = append(edges, reweights...)
	return &Explanation{
		Edges:     edges,
		Removals:  removals,
		Additions: additions,
		Reweights: reweights,
		Verified:  verified,
		NewTop:    newTop,
	}
}
